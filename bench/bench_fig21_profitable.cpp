//===- bench/bench_fig21_profitable.cpp - Figure 21 ----------------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
// Figure 21 of the paper: the number of profitable merge operations found
// by FMSA vs SalSSA on SPEC CPU2006 at t=1. Paper totals: FMSA 9,271 vs
// SalSSA 12,224 (+31%); much of SalSSA's gain comes from pairs FMSA cannot
// merge profitably at all.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

using namespace salssa;
using namespace salssa::bench;

int main() {
  printHeader("Figure 21: profitable merge operations, SPEC CPU2006, t=1");
  std::printf("%-18s %10s %10s %10s\n", "benchmark", "FMSA", "SalSSA",
              "increase");
  printRule(52);

  unsigned TotalF = 0, TotalS = 0;
  for (const BenchmarkProfile &P : spec2006Profiles()) {
    BenchmarkProfile SP = scaled(P);
    SuiteResult RF = runConfiguration(SP, MergeTechnique::FMSA, 1,
                                      TargetArch::X86Like);
    SuiteResult RS = runConfiguration(SP, MergeTechnique::SalSSA, 1,
                                      TargetArch::X86Like);
    TotalF += RF.Driver.ProfitableMerges;
    TotalS += RS.Driver.ProfitableMerges;
    double Inc = RF.Driver.ProfitableMerges
                     ? 100.0 * (double(RS.Driver.ProfitableMerges) /
                                    RF.Driver.ProfitableMerges -
                                1.0)
                     : (RS.Driver.ProfitableMerges ? 100.0 : 0.0);
    std::printf("%-18s %10u %10u %+9.0f%%\n", P.Name.c_str(),
                RF.Driver.ProfitableMerges, RS.Driver.ProfitableMerges,
                Inc);
    std::fflush(stdout);
  }
  printRule(52);
  double TotalInc = TotalF ? 100.0 * (double(TotalS) / TotalF - 1.0) : 0.0;
  std::printf("%-18s %10u %10u %+9.0f%%\n", "total", TotalF, TotalS,
              TotalInc);
  std::printf("\npaper totals: FMSA 9,271 vs SalSSA 12,224 (+31%%)\n");
  return 0;
}
