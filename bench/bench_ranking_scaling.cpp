//===- bench/bench_ranking_scaling.cpp - Pairing-phase scaling -----------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
// Measures the candidate-pairing phase (fingerprint ranking only, not
// alignment/codegen) as the pool grows, for both ranking strategies:
//
//   brute   - the paper's O(n²·buckets) all-pairs rescan
//   index   - CandidateIndex: LSH-seeded, size-bounded exact top-k
//
// Both strategies commit identical merges by construction (checked here
// and in ranking_test.cpp), so the comparison is pure pairing cost. The
// printed exponent is the log-log slope of pairing time between
// consecutive pool sizes: ~2 for brute force, ~1 for the index.
//
// Modes:
//   (default)  scaling table over pool sizes 64..4096
//   --smoke    one small pool; FAILS (exit 1) if the index path is
//              slower than 1.5x brute force or commits different
//              merges — wired into ctest as a perf-regression guard.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"
#include <cstring>

using namespace salssa;
using namespace salssa::bench;

namespace {

BenchmarkProfile rankingProfile(unsigned NumFunctions) {
  BenchmarkProfile P;
  P.Name = "pool" + std::to_string(NumFunctions);
  P.NumFunctions = NumFunctions;
  P.MinSize = 6;
  P.AvgSize = 45;
  P.MaxSize = 220;
  P.CloneFamilyPercent = 45;
  P.MinFamily = 2;
  P.MaxFamily = 5;
  P.FamilyDriftPercent = 12;
  P.LoopPercent = 50;
  P.Seed = 0x5ca11ab1;
  return P;
}

struct StrategyRun {
  double RankingSeconds = 0;
  double TotalSeconds = 0;
  uint64_t SizeAfter = 0;
  unsigned CommittedMerges = 0;
};

StrategyRun runOnce(unsigned NumFunctions, RankingStrategy Strategy) {
  Context Ctx;
  BenchmarkProfile P = rankingProfile(NumFunctions);
  std::unique_ptr<Module> M = buildBenchmarkModule(P, Ctx);
  MergeDriverOptions DO;
  DO.Technique = MergeTechnique::SalSSA;
  DO.ExplorationThreshold = 2;
  DO.Ranking = Strategy;
  MergeDriverStats S = runFunctionMerging(*M, DO);
  StrategyRun R;
  R.RankingSeconds = S.RankingSeconds;
  R.TotalSeconds = S.TotalSeconds;
  R.SizeAfter = estimateModuleSize(*M, TargetArch::X86Like);
  R.CommittedMerges = S.CommittedMerges;
  return R;
}

/// Pairing time for one strategy, best of \p Repeats runs (damps
/// scheduler noise; module construction is re-done each time so runs are
/// independent).
StrategyRun bestOf(unsigned NumFunctions, RankingStrategy Strategy,
                   int Repeats) {
  StrategyRun Best = runOnce(NumFunctions, Strategy);
  for (int R = 1; R < Repeats; ++R) {
    StrategyRun Next = runOnce(NumFunctions, Strategy);
    if (Next.RankingSeconds < Best.RankingSeconds) {
      // Merge outcomes are deterministic across runs.
      if (Next.SizeAfter != Best.SizeAfter) {
        std::fprintf(stderr, "FATAL: nondeterministic merge outcome\n");
        std::abort();
      }
      Best = Next;
    }
  }
  return Best;
}

int smokeMode() {
  // Small-pool guard: the index path must commit the same merges and must
  // not be slower than 1.5x brute force. Run up to 3 attempts so a noisy
  // neighbour cannot fail the suite spuriously.
  const unsigned PoolSize = 256;
  printHeader("bench_ranking_scaling --smoke (pool " +
              std::to_string(PoolSize) + ")");
  double BestRatio = 1e9;
  for (int Attempt = 0; Attempt < 3; ++Attempt) {
    StrategyRun Brute = runOnce(PoolSize, RankingStrategy::BruteForce);
    StrategyRun Index = runOnce(PoolSize, RankingStrategy::CandidateIndex);
    if (Brute.SizeAfter != Index.SizeAfter ||
        Brute.CommittedMerges != Index.CommittedMerges) {
      std::printf("FAIL: strategies disagree (brute: size %llu, %u merges; "
                  "index: size %llu, %u merges)\n",
                  (unsigned long long)Brute.SizeAfter, Brute.CommittedMerges,
                  (unsigned long long)Index.SizeAfter,
                  Index.CommittedMerges);
      return 1;
    }
    double Ratio = Brute.RankingSeconds > 0
                       ? Index.RankingSeconds / Brute.RankingSeconds
                       : 0.0;
    BestRatio = std::min(BestRatio, Ratio);
    std::printf("attempt %d: brute %.3f ms, index %.3f ms, ratio %.3fx "
                "(committed %u, size %llu)\n",
                Attempt + 1, Brute.RankingSeconds * 1e3,
                Index.RankingSeconds * 1e3, Ratio, Index.CommittedMerges,
                (unsigned long long)Index.SizeAfter);
    if (Ratio <= 1.5) {
      JsonSummary Json("bench_ranking_scaling");
      Json.add("pool_functions", uint64_t(PoolSize));
      Json.add("pairing_ratio_vs_brute", Ratio);
      Json.add("index_pairing_seconds", Index.RankingSeconds);
      Json.add("commits", Index.CommittedMerges);
      std::printf("PASS: index pairing is %.2fx of brute force "
                  "(threshold 1.5x)\n", Ratio);
      return 0;
    }
  }
  std::printf("FAIL: index pairing stayed above 1.5x brute force "
              "(best %.2fx)\n", BestRatio);
  return 1;
}

int scalingMode() {
  printHeader("Pairing-phase scaling: brute-force rescan vs CandidateIndex");
  std::printf("%-8s %14s %14s %9s %8s %8s %10s\n", "pool", "brute (ms)",
              "index (ms)", "speedup", "a.brute", "a.index", "same-size");
  printRule(80);

  // The 1024+ rows are where the flat size-bucket expansion pays off:
  // the multimap walk's pointer chasing used to push the index exponent
  // toward ~1.6 up here.
  std::vector<unsigned> Sizes{64, 128, 256, 512, 1024, 2048, 4096};
  unsigned Scale = benchScale();
  if (Scale > 1)
    for (unsigned &S : Sizes)
      S = std::max(8u, S / Scale);

  double PrevBrute = 0, PrevIndex = 0;
  unsigned PrevN = 0;
  bool AllEqual = true;
  double SpeedupAtLargest = 0;
  for (unsigned N : Sizes) {
    StrategyRun Brute = bestOf(N, RankingStrategy::BruteForce, 3);
    StrategyRun Index = bestOf(N, RankingStrategy::CandidateIndex, 3);
    bool Equal = Brute.SizeAfter == Index.SizeAfter &&
                 Brute.CommittedMerges == Index.CommittedMerges;
    AllEqual &= Equal;
    double Speedup = Index.RankingSeconds > 0
                         ? Brute.RankingSeconds / Index.RankingSeconds
                         : 0.0;
    SpeedupAtLargest = Speedup;
    // Log-log slope vs the previous pool size: ~2 quadratic, ~1 linear.
    auto slope = [&](double Cur, double Prev) {
      if (PrevN == 0 || Prev <= 0 || Cur <= 0)
        return 0.0;
      return std::log(Cur / Prev) / std::log(double(N) / PrevN);
    };
    std::printf("%-8u %14.3f %14.3f %8.1fx %8.2f %8.2f %10s\n", N,
                Brute.RankingSeconds * 1e3, Index.RankingSeconds * 1e3,
                Speedup, slope(Brute.RankingSeconds, PrevBrute),
                slope(Index.RankingSeconds, PrevIndex),
                Equal ? "yes" : "NO");
    std::fflush(stdout);
    PrevBrute = Brute.RankingSeconds;
    PrevIndex = Index.RankingSeconds;
    PrevN = N;
  }
  printRule(80);
  // Exit status enforces both halves of the acceptance criterion; the
  // speedup check only applies at unscaled pool sizes (small scaled
  // pools sit below the index's break-even point).
  bool SpeedupOk = Scale > 1 || SpeedupAtLargest >= 5.0;
  std::printf("\nacceptance: identical merges on every pool: %s; "
              "speedup at %u functions: %.1fx (need >= 5x%s)\n",
              AllEqual ? "yes" : "NO", PrevN, SpeedupAtLargest,
              Scale > 1 ? ", not enforced when scaled" : "");
  return AllEqual && SpeedupOk ? 0 : 1;
}

} // namespace

int main(int argc, char **argv) {
  for (int I = 1; I < argc; ++I)
    if (std::strcmp(argv[I], "--smoke") == 0)
      return smokeMode();
  return scalingMode();
}
