//===- bench/bench_ablation_codegen.cpp - Extra ablations ----------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
// Ablation study for the two §4.2 operand-assignment optimizations the
// paper describes but does not plot separately: commutative operand
// reordering (Fig 9) and xor branch fusion (Fig 11). Each is toggled off
// in turn on SPEC CPU2006 (t=1) and the lost reduction plus the change in
// select/label-selection counts is reported.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

using namespace salssa;
using namespace salssa::bench;

namespace {

struct Config {
  const char *Name;
  bool Reorder;
  bool Xor;
};

SuiteResult runWith(const BenchmarkProfile &P, const Config &C) {
  Context Ctx;
  std::unique_ptr<Module> M = buildBenchmarkModule(P, Ctx);
  SuiteResult R;
  R.Benchmark = P.Name;
  R.BaselineSize = estimateModuleSize(*M, TargetArch::X86Like);
  MergeDriverOptions DO;
  DO.Technique = MergeTechnique::SalSSA;
  DO.ExplorationThreshold = 1;
  // Re-plumb codegen options through a custom run: the driver reads
  // technique defaults, so this ablation drives attemptMerge pair-wise on
  // the same ranking the driver would use. For simplicity the full driver
  // is used with the flags threaded via MergeCodeGenOptions defaults.
  MergeDriverStats Stats;
  {
    // The driver's technique options cover coalescing only; reordering
    // and fusion are fixed per technique. Emulate the ablation by running
    // the pairwise pipeline over the driver's committed pairs.
    MergeDriverOptions Probe = DO;
    Context CP;
    std::unique_ptr<Module> MP = buildBenchmarkModule(P, CP);
    MergeDriverStats Full = runFunctionMerging(*MP, Probe);
    MergeCodeGenOptions CG =
        MergeCodeGenOptions::forTechnique(MergeTechnique::SalSSA);
    CG.EnableOperandReordering = C.Reorder;
    CG.EnableXorBranchFusion = C.Xor;
    for (const MergeRecord &Rec : Full.Records) {
      if (!Rec.Committed)
        continue;
      Function *F1 = M->getFunction(Rec.Name1);
      Function *F2 = M->getFunction(Rec.Name2);
      if (!F1 || !F2)
        continue;
      MergeAttempt A = attemptMerge(
          *F1, *F2, CG, TargetArch::X86Like,
          estimateFunctionSize(*F1, TargetArch::X86Like),
          estimateFunctionSize(*F2, TargetArch::X86Like));
      if (!A.Valid)
        continue;
      Stats.Attempts++;
      Stats.Records.push_back({Rec.Name1, Rec.Name2, A.Stats, true});
      commitMerge(A, Ctx);
    }
  }
  R.Driver = Stats;
  R.OptimizedSize = estimateModuleSize(*M, TargetArch::X86Like);
  return R;
}

} // namespace

int main() {
  printHeader("Ablation: operand reordering (Fig 9) and xor branch fusion "
              "(Fig 11), SPEC CPU2006 subset, SalSSA t=1");
  const Config Configs[] = {
      {"full", true, true},
      {"no-reorder", false, true},
      {"no-xor", true, false},
      {"neither", false, false},
  };
  std::printf("%-18s", "benchmark");
  for (const Config &C : Configs)
    std::printf(" %12s", C.Name);
  std::printf("   (object size reduction; selects inserted)\n");
  printRule(96);

  // A representative subset keeps this ablation fast.
  std::vector<BenchmarkProfile> Suite;
  for (const BenchmarkProfile &P : spec2006Profiles())
    if (P.Name == "444.namd" || P.Name == "456.hmmer" ||
        P.Name == "462.libquantum" || P.Name == "447.dealII" ||
        P.Name == "482.sphinx3")
      Suite.push_back(scaled(P));

  for (const BenchmarkProfile &P : Suite) {
    std::printf("%-18s", P.Name.c_str());
    for (const Config &C : Configs) {
      SuiteResult R = runWith(P, C);
      unsigned Selects = 0;
      for (const MergeRecord &Rec : R.Driver.Records)
        Selects += Rec.Stats.SelectsInserted;
      std::printf(" %6.1f%%/%4u", R.reductionPercent(), Selects);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("\nexpected shape: disabling either optimization never "
              "improves reduction and increases select pressure\n");
  return 0;
}
