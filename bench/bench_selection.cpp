//===- bench/bench_selection.cpp - Selection-strategy A/B ----------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
// Measures what profit-guided candidate selection buys over the paper's
// distance ranking. One clone-heavy suite is merged three ways —
//
//   distance   SelectionStrategy::Distance, the paper's top-t by
//              fingerprint distance (the PR 3 baseline, bit-identical);
//   profit     widened slate re-ranked by the calibrated ProfitModel
//              estimate with same-module tie-breaking;
//   adaptive   profit ranking plus the outcome-driven exploration
//              threshold and (in parallel runs) the conflict-driven
//              commit window.
//
// and the table reports committed merges, size reduction, attempts, and
// the pairing-phase cost (Stats.RankingSeconds) of each.
//
// Modes:
//   (default)  the A/B table over three pool sizes.
//   --smoke    one pool, and FAILS (exit 1) unless profit mode commits
//              at least as many merges and reduces at least as much as
//              distance mode, and its pairing phase stays within 10% of
//              distance mode's. The pairing bar is enforced on the
//              deterministic work counter (exact distance evaluations,
//              MergeDriverStats::PairingDistanceCalls) — the
//              load-independent form of "pairing time"; wall-clock
//              numbers are reported best-of-3 for humans, and skipped
//              when SALSSA_BENCH_NO_TIMING=1 (sanitizer configurations).
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"
#include <cstring>

using namespace salssa;
using namespace salssa::bench;

namespace {

BenchmarkProfile selectionProfile(unsigned NumFunctions) {
  BenchmarkProfile P;
  P.Name = "sel" + std::to_string(NumFunctions);
  P.NumFunctions = NumFunctions;
  P.MinSize = 6;
  P.AvgSize = 50;
  P.MaxSize = 240;
  P.CloneFamilyPercent = 50;
  P.MinFamily = 2;
  P.MaxFamily = 6;
  P.FamilyDriftPercent = 12;
  P.LoopPercent = 50;
  P.Seed = 0x5E1EC7;
  return P;
}

struct ModeResult {
  uint64_t SizeBefore = 0;
  uint64_t SizeAfter = 0;
  unsigned Commits = 0;
  unsigned Attempts = 0;
  double RankingSeconds = 0;
  uint64_t PairingDistanceCalls = 0;
  bool VerifierOk = true;

  double reduction() const {
    return 100.0 * (1.0 - double(SizeAfter) / double(SizeBefore));
  }
};

ModeResult runMode(unsigned NumFunctions, SelectionStrategy Selection) {
  const BenchmarkProfile P = selectionProfile(NumFunctions);
  Context Ctx;
  std::unique_ptr<Module> M = buildBenchmarkModule(P, Ctx);
  ModeResult R;
  R.SizeBefore = estimateModuleSize(*M, TargetArch::X86Like);
  MergeDriverOptions DO;
  DO.Technique = MergeTechnique::SalSSA;
  DO.ExplorationThreshold = 5;
  DO.Selection = Selection;
  MergeDriverStats S = runFunctionMerging(*M, DO);
  R.SizeAfter = estimateModuleSize(*M, TargetArch::X86Like);
  R.Commits = S.CommittedMerges;
  R.Attempts = S.Attempts;
  R.RankingSeconds = S.RankingSeconds;
  R.PairingDistanceCalls = S.PairingDistanceCalls;
  R.VerifierOk = verifyModule(*M).ok();
  return R;
}

int smokeMode() {
  const unsigned PoolFns = std::max(32u, 256u / benchScale());
  printHeader("bench_selection --smoke (pool " + std::to_string(PoolFns) +
              ")");

  ModeResult Distance = runMode(PoolFns, SelectionStrategy::Distance);
  ModeResult Profit = runMode(PoolFns, SelectionStrategy::Profit);
  std::printf("distance: %u commits, %.2f%%, %u attempts | "
              "profit: %u commits, %.2f%%, %u attempts\n",
              Distance.Commits, Distance.reduction(), Distance.Attempts,
              Profit.Commits, Profit.reduction(), Profit.Attempts);
  if (!Distance.VerifierOk || !Profit.VerifierOk) {
    std::printf("FAIL: verifier errors after merging\n");
    return 1;
  }
  if (Profit.Commits < Distance.Commits) {
    std::printf("FAIL: profit selection committed fewer merges than "
                "distance selection (%u vs %u)\n",
                Profit.Commits, Distance.Commits);
    return 1;
  }
  if (Profit.SizeAfter > Distance.SizeAfter) {
    std::printf("FAIL: profit selection reduced less than distance "
                "selection (%llu B vs %llu B after)\n",
                (unsigned long long)Profit.SizeAfter,
                (unsigned long long)Distance.SizeAfter);
    return 1;
  }

  // Pairing leg, part 1 — deterministic: the bounded-extension contract
  // is that profit-guided slates never widen the search walk, so the
  // exact-distance-evaluation count must stay within 10% of distance
  // mode's. This is the noise-free form of the "pairing must not
  // regress" bar and runs in every configuration, TSan included.
  double WorkRatio = Distance.PairingDistanceCalls
                         ? double(Profit.PairingDistanceCalls) /
                               double(Distance.PairingDistanceCalls)
                         : 1.0;
  std::printf("pairing work: distance %llu evals, profit %llu evals "
              "(ratio %.3f)\n",
              (unsigned long long)Distance.PairingDistanceCalls,
              (unsigned long long)Profit.PairingDistanceCalls, WorkRatio);
  if (WorkRatio > 1.10) {
    std::printf("FAIL: profit pairing does more than 10%% extra distance "
                "work (ratio %.3f) — the bounded extension leaked\n",
                WorkRatio);
    return 1;
  }

  JsonSummary Json("bench_selection");
  Json.add("pool_functions", uint64_t(PoolFns));
  Json.add("profit_commits", Profit.Commits);
  Json.add("profit_reduction_pct", Profit.reduction());
  Json.add("distance_reduction_pct", Distance.reduction());
  Json.add("pairing_work_ratio", WorkRatio);
  Json.add("pairing_distance_calls", Profit.PairingDistanceCalls);

  // Pairing leg, part 2 — wall clock, best of 3 per mode, *reported*
  // but never enforced: the phase totals a few milliseconds, so under a
  // loaded CI machine (ctest -j next to a sanitizer build) the ratio
  // can inflate arbitrarily without any code regression. The
  // deterministic work ratio above carries the 10% bar in a
  // load-independent form; the wall numbers are for humans reading the
  // log. Skipped entirely under sanitizers (SALSSA_BENCH_NO_TIMING=1,
  // set by CMakeLists.txt in the TSan configuration).
  if (const char *NoTiming = std::getenv("SALSSA_BENCH_NO_TIMING");
      NoTiming && NoTiming[0] == '1') {
    std::printf("PASS (wall-clock report skipped: SALSSA_BENCH_NO_TIMING)\n");
    return 0;
  }
  double BestDistance = Distance.RankingSeconds;
  double BestProfit = Profit.RankingSeconds;
  for (int Rep = 0; Rep < 2; ++Rep) {
    BestDistance = std::min(
        BestDistance,
        runMode(PoolFns, SelectionStrategy::Distance).RankingSeconds);
    BestProfit = std::min(
        BestProfit, runMode(PoolFns, SelectionStrategy::Profit).RankingSeconds);
  }
  std::printf("pairing time (informational): distance %.4fs, profit %.4fs "
              "(ratio %.2f)\n",
              BestDistance, BestProfit,
              BestDistance > 0 ? BestProfit / BestDistance : 1.0);
  std::printf("PASS: profit >= distance on commits and reduction, pairing "
              "work within 10%%\n");
  return 0;
}

int tableMode() {
  printHeader("Selection strategies: distance vs profit vs adaptive");
  std::printf("%-8s %-9s %12s %12s %10s %10s %12s\n", "pool", "select",
              "base (B)", "after (B)", "red %", "commits", "pairing (s)");
  printRule(80);
  for (unsigned PoolFns : {128u, 256u, 512u}) {
    unsigned Scaled = std::max(16u, PoolFns / benchScale());
    for (SelectionStrategy Sel :
         {SelectionStrategy::Distance, SelectionStrategy::Profit,
          SelectionStrategy::Adaptive}) {
      ModeResult R = runMode(Scaled, Sel);
      std::printf("%-8u %-9s %12llu %12llu %9.2f%% %10u %12.4f%s\n", Scaled,
                  selectionName(Sel), (unsigned long long)R.SizeBefore,
                  (unsigned long long)R.SizeAfter, R.reduction(), R.Commits,
                  R.RankingSeconds, R.VerifierOk ? "" : "  VERIFIER-FAIL");
      std::fflush(stdout);
    }
    printRule(80);
  }
  std::printf("\nprofit re-ranks a widened distance slate by the calibrated "
              "ProfitModel estimate; adaptive additionally drives the "
              "exploration threshold from selection outcomes.\n");
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  for (int I = 1; I < argc; ++I)
    if (std::strcmp(argv[I], "--smoke") == 0)
      return smokeMode();
  return tableMode();
}
