//===- bench/bench_fig05_demotion.cpp - Figure 5 ------------------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
// Figure 5 of the paper: average normalized function size before/after
// register demotion across all functions of each SPEC CPU2006 benchmark.
// The paper reports a geometric mean inflation of ~1.73x; this is the root
// cause of FMSA's quality, time and memory problems.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"
#include "transforms/Reg2Mem.h"

using namespace salssa;
using namespace salssa::bench;

int main() {
  printHeader("Figure 5: normalized function size after register demotion "
              "(SPEC CPU2006)");
  std::printf("%-18s %10s %10s %12s\n", "benchmark", "before", "after",
              "normalized");
  printRule(54);

  std::vector<double> Ratios;
  for (const BenchmarkProfile &P : spec2006Profiles()) {
    Context Ctx;
    std::unique_ptr<Module> M = buildBenchmarkModule(scaled(P), Ctx);
    uint64_t Before = 0, After = 0;
    double RatioSum = 0;
    unsigned N = 0;
    for (Function *F : M->functions()) {
      if (F->isDeclaration())
        continue;
      Reg2MemStats S = demoteRegistersToMemory(*F, Ctx);
      Before += S.InstructionsBefore;
      After += S.InstructionsAfter;
      RatioSum += S.inflation();
      ++N;
    }
    double AvgRatio = N ? RatioSum / N : 1.0;
    Ratios.push_back(AvgRatio);
    std::printf("%-18s %10llu %10llu %11.2fx\n", P.Name.c_str(),
                static_cast<unsigned long long>(Before),
                static_cast<unsigned long long>(After), AvgRatio);
  }
  printRule(54);
  std::printf("%-18s %33.2fx\n", "GMean", geomean(Ratios));
  std::printf("\npaper reports: GMean 1.73x (demotion inflates functions "
              "by ~75%% on average)\n");
  return 0;
}
