//===- bench/bench_fig17_spec.cpp - Figure 17a/17b -----------------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
// Figure 17 of the paper: linked-object size reduction over the LTO
// baseline when merging with FMSA or SalSSA on SPEC CPU2006 (a) and
// CPU2017 (b), for exploration thresholds t = 1, 5, 10, on the x86-like
// target. Paper headline: SalSSA reduces 9.3-9.7% (2006) / 7.9-9.2% (2017),
// roughly twice FMSA's 3.8-3.9% / 4.1-4.4%.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

using namespace salssa;
using namespace salssa::bench;

namespace {

void runSuite(const char *Title, const std::vector<BenchmarkProfile> &Suite,
              const char *PaperNote) {
  printHeader(Title);
  const unsigned Thresholds[] = {1, 5, 10};
  std::printf("%-18s", "benchmark");
  for (const char *Tech : {"FMSA", "SalSSA"})
    for (unsigned T : Thresholds)
      std::printf(" %6s[%2u]", Tech, T);
  std::printf("\n");
  printRule(86);

  std::vector<std::vector<SuiteResult>> Columns(6);
  for (const BenchmarkProfile &P : Suite) {
    BenchmarkProfile SP = scaled(P);
    std::printf("%-18s", P.Name.c_str());
    unsigned Col = 0;
    for (MergeTechnique Tech :
         {MergeTechnique::FMSA, MergeTechnique::SalSSA}) {
      for (unsigned T : Thresholds) {
        SuiteResult R =
            runConfiguration(SP, Tech, T, TargetArch::X86Like);
        std::printf(" %9.1f%%", R.reductionPercent());
        std::fflush(stdout);
        Columns[Col++].push_back(R);
      }
    }
    std::printf("\n");
  }
  printRule(86);
  std::printf("%-18s", "GMean");
  for (unsigned C = 0; C < 6; ++C)
    std::printf(" %9.1f%%", geomeanReduction(Columns[C]));
  std::printf("\n%s\n", PaperNote);
}

} // namespace

int main() {
  runSuite("Figure 17a: SPEC CPU2006 object size reduction over LTO "
           "(x86-like)",
           spec2006Profiles(),
           "paper reports GMean: FMSA 3.8/3.9/3.9%  SalSSA 9.3/9.7/9.5%");
  runSuite("Figure 17b: SPEC CPU2017 object size reduction over LTO "
           "(x86-like)",
           spec2017Profiles(),
           "paper reports GMean: FMSA 4.1/4.4/4.4%  SalSSA 7.9/8.8/9.2%");
  return 0;
}
