//===- bench/bench_fig23_speedup.cpp - Figure 23 -------------------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
// Figure 23 of the paper: SalSSA's speedup over FMSA in the time spent on
// sequence alignment and on code generation (SPEC CPU2006, t=1). Alignment
// is quadratic in sequence length, so avoiding demotion yields a roughly
// quadratic speedup (paper GMean 3.16x); code generation is roughly linear
// (paper GMean 1.68x).
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

using namespace salssa;
using namespace salssa::bench;

int main() {
  printHeader("Figure 23: SalSSA speedup over FMSA in alignment and "
              "codegen time, SPEC CPU2006, t=1");
  std::printf("%-18s %12s %12s %12s %12s\n", "benchmark", "align F(s)",
              "align S(s)", "align spdup", "codegen spdup");
  printRule(72);

  std::vector<double> AlignSpeedups, CodeGenSpeedups;
  for (const BenchmarkProfile &P : spec2006Profiles()) {
    BenchmarkProfile SP = scaled(P);
    SuiteResult RF = runConfiguration(SP, MergeTechnique::FMSA, 1,
                                      TargetArch::X86Like);
    SuiteResult RS = runConfiguration(SP, MergeTechnique::SalSSA, 1,
                                      TargetArch::X86Like);
    double AlignUp = RS.Driver.AlignmentSeconds > 0
                         ? RF.Driver.AlignmentSeconds /
                               RS.Driver.AlignmentSeconds
                         : 0;
    double CgUp = RS.Driver.CodeGenSeconds > 0
                      ? RF.Driver.CodeGenSeconds / RS.Driver.CodeGenSeconds
                      : 0;
    if (AlignUp > 0)
      AlignSpeedups.push_back(AlignUp);
    if (CgUp > 0)
      CodeGenSpeedups.push_back(CgUp);
    std::printf("%-18s %12.4f %12.4f %11.2fx %11.2fx\n", P.Name.c_str(),
                RF.Driver.AlignmentSeconds, RS.Driver.AlignmentSeconds,
                AlignUp, CgUp);
    std::fflush(stdout);
  }
  printRule(72);
  std::printf("%-18s %25s %12.2fx %11.2fx\n", "GMean", "",
              geomean(AlignSpeedups), geomean(CodeGenSpeedups));
  std::printf("\npaper reports GMean speedups: alignment 3.16x, "
              "code generation 1.68x\n");
  return 0;
}
