//===- bench/bench_micro_kernels.cpp - Microbenchmarks -------------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
// google-benchmark microbenchmarks of the pass's computational kernels:
// Needleman-Wunsch alignment (quadratic; the paper's §5.5/§5.6 bottleneck),
// register demotion/promotion, and the SalSSA code generator. These expose
// the asymptotics that explain Figures 22-24.
//
//===----------------------------------------------------------------------===//

#include "align/Matcher.h"
#include "merge/FunctionMerger.h"
#include "transforms/Mem2Reg.h"
#include "transforms/Reg2Mem.h"
#include "workloads/Suites.h"
#include <benchmark/benchmark.h>

using namespace salssa;

namespace {

/// Builds a pair of similar functions of the requested size.
struct PairFixture {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F1 = nullptr;
  Function *F2 = nullptr;

  explicit PairFixture(unsigned Size) {
    M = std::make_unique<Module>("micro", Ctx);
    RNG Rng(Size * 7919 + 13);
    WorkloadEnvironment Env(*M, Rng);
    RandomFunctionOptions FO;
    FO.TargetSize = Size;
    RNG G = Rng.fork(1);
    F1 = generateRandomFunction(Env, G, "a", FO);
    DriftOptions DO;
    DO.MutatePercent = 8;
    RNG D = Rng.fork(2);
    F2 = cloneWithDrift(F1, "b", Env, D, DO);
  }
};

void BM_Alignment(benchmark::State &State) {
  PairFixture Fix(static_cast<unsigned>(State.range(0)));
  std::vector<SeqItem> S1 = linearizeFunction(*Fix.F1);
  std::vector<SeqItem> S2 = linearizeFunction(*Fix.F2);
  for (auto _ : State) {
    AlignmentResult R = alignSequences(S1, S2, itemsMatch);
    benchmark::DoNotOptimize(R.MatchedPairs);
  }
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_Alignment)->Range(32, 1024)->Complexity(benchmark::oNSquared);

void BM_RegisterDemotion(benchmark::State &State) {
  for (auto _ : State) {
    State.PauseTiming();
    PairFixture Fix(static_cast<unsigned>(State.range(0)));
    State.ResumeTiming();
    demoteRegistersToMemory(*Fix.F1, Fix.Ctx);
  }
}
BENCHMARK(BM_RegisterDemotion)->Range(64, 512)->Iterations(30);

void BM_RegisterPromotion(benchmark::State &State) {
  for (auto _ : State) {
    State.PauseTiming();
    PairFixture Fix(static_cast<unsigned>(State.range(0)));
    demoteRegistersToMemory(*Fix.F1, Fix.Ctx);
    State.ResumeTiming();
    promoteAllocasToRegisters(*Fix.F1, Fix.Ctx);
  }
}
BENCHMARK(BM_RegisterPromotion)->Range(64, 512)->Iterations(30);

void BM_SalSSAMergePair(benchmark::State &State) {
  for (auto _ : State) {
    State.PauseTiming();
    PairFixture Fix(static_cast<unsigned>(State.range(0)));
    State.ResumeTiming();
    MergeAttempt A = attemptMerge(
        *Fix.F1, *Fix.F2,
        MergeCodeGenOptions::forTechnique(MergeTechnique::SalSSA),
        TargetArch::X86Like, 0, 0);
    benchmark::DoNotOptimize(A.Stats.SizeMerged);
    State.PauseTiming();
    discardMerge(A);
    State.ResumeTiming();
  }
}
BENCHMARK(BM_SalSSAMergePair)->Range(64, 512)->Iterations(20);

void BM_FMSAMergePair(benchmark::State &State) {
  for (auto _ : State) {
    State.PauseTiming();
    PairFixture Fix(static_cast<unsigned>(State.range(0)));
    demoteRegistersToMemory(*Fix.F1, Fix.Ctx);
    demoteRegistersToMemory(*Fix.F2, Fix.Ctx);
    State.ResumeTiming();
    MergeAttempt A = attemptMerge(
        *Fix.F1, *Fix.F2,
        MergeCodeGenOptions::forTechnique(MergeTechnique::FMSA),
        TargetArch::X86Like, 0, 0);
    benchmark::DoNotOptimize(A.Stats.SizeMerged);
    State.PauseTiming();
    discardMerge(A);
    State.ResumeTiming();
  }
}
BENCHMARK(BM_FMSAMergePair)->Range(64, 512)->Iterations(20);

} // namespace

BENCHMARK_MAIN();
