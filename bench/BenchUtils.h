//===- bench/BenchUtils.h - Shared experiment harness -------------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared machinery for the per-figure benchmark binaries: suite
/// execution, reduction computation, geometric means and table printing.
/// Each binary regenerates one table/figure of the paper and prints the
/// measured series next to the paper's published numbers (EXPERIMENTS.md
/// records the comparison).
///
/// Environment knobs:
///   SALSSA_BENCH_SCALE  - divide every profile's function count by this
///                         factor (quick smoke runs); default 1.
///   SALSSA_BENCH_JSON   - when set, every benchmark's smoke run appends
///                         one JSON object (name + headline metrics) per
///                         line to this file; CI assembles the lines
///                         into the BENCH_ci.json artifact that tracks
///                         the perf trajectory per PR (JsonSummary).
///
//===----------------------------------------------------------------------===//

#ifndef SALSSA_BENCH_BENCHUTILS_H
#define SALSSA_BENCH_BENCHUTILS_H

#include "codesize/SizeModel.h"
#include "ir/Verifier.h"
#include "merge/MergeDriver.h"
#include "workloads/Suites.h"
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace salssa {
namespace bench {

inline unsigned benchScale() {
  const char *S = std::getenv("SALSSA_BENCH_SCALE");
  if (!S)
    return 1;
  int V = std::atoi(S);
  return V < 1 ? 1 : static_cast<unsigned>(V);
}

inline BenchmarkProfile scaled(BenchmarkProfile P) {
  unsigned S = benchScale();
  if (S > 1) {
    P.NumFunctions = std::max(2u, P.NumFunctions / S);
    P.GiantPairSize /= S;
  }
  return P;
}

inline const char *selectionName(SelectionStrategy S) {
  switch (S) {
  case SelectionStrategy::Distance:
    return "distance";
  case SelectionStrategy::Profit:
    return "profit";
  case SelectionStrategy::Adaptive:
    return "adaptive";
  }
  return "?";
}

/// Result of one (benchmark, configuration) cell.
struct SuiteResult {
  std::string Benchmark;
  uint64_t BaselineSize = 0;
  uint64_t OptimizedSize = 0;
  MergeDriverStats Driver;

  double reductionPercent() const {
    if (BaselineSize == 0)
      return 0;
    return 100.0 * (1.0 - double(OptimizedSize) / double(BaselineSize));
  }
};

/// Builds the profile's module, runs one merge configuration, returns the
/// sizes and driver statistics.
inline SuiteResult runConfiguration(const BenchmarkProfile &Profile,
                                    MergeTechnique Technique, unsigned T,
                                    TargetArch Arch,
                                    bool PhiCoalescing = true) {
  Context Ctx;
  std::unique_ptr<Module> M = buildBenchmarkModule(Profile, Ctx);
  SuiteResult R;
  R.Benchmark = Profile.Name;
  R.BaselineSize = estimateModuleSize(*M, Arch);
  MergeDriverOptions DO;
  DO.Technique = Technique;
  DO.ExplorationThreshold = T;
  DO.Arch = Arch;
  DO.EnablePhiCoalescing = PhiCoalescing;
  R.Driver = runFunctionMerging(*M, DO);
  R.OptimizedSize = estimateModuleSize(*M, Arch);
  VerifierReport VR = verifyModule(*M);
  if (!VR.ok()) {
    std::fprintf(stderr, "verifier FAILED on %s:\n%s\n",
                 Profile.Name.c_str(), VR.str().c_str());
    std::abort();
  }
  return R;
}

/// Geometric mean of size ratios, reported as a reduction percentage.
inline double geomeanReduction(const std::vector<SuiteResult> &Results) {
  double LogSum = 0;
  unsigned N = 0;
  for (const SuiteResult &R : Results) {
    if (R.BaselineSize == 0)
      continue;
    double Ratio = double(R.OptimizedSize) / double(R.BaselineSize);
    LogSum += std::log(std::max(Ratio, 1e-9));
    ++N;
  }
  if (N == 0)
    return 0;
  return 100.0 * (1.0 - std::exp(LogSum / N));
}

/// Geometric mean of arbitrary positive values.
inline double geomean(const std::vector<double> &Values) {
  double LogSum = 0;
  unsigned N = 0;
  for (double V : Values) {
    if (V <= 0)
      continue;
    LogSum += std::log(V);
    ++N;
  }
  return N == 0 ? 0 : std::exp(LogSum / N);
}

/// One benchmark's machine-readable summary line. Collects (key, value)
/// pairs and, when the SALSSA_BENCH_JSON environment variable names a
/// file, appends them as a single JSON object line on destruction —
/// nothing happens without the variable, so interactive runs stay
/// byte-identical. Values are numbers or plain identifier-ish strings;
/// keys are snake_case literals (no escaping is attempted beyond
/// quoting, by construction of the call sites).
class JsonSummary {
public:
  explicit JsonSummary(const std::string &Bench) {
    Line = "{\"bench\": \"" + Bench + "\"";
  }
  JsonSummary(const JsonSummary &) = delete;
  JsonSummary &operator=(const JsonSummary &) = delete;

  void add(const std::string &Key, double V) {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%.6g", V);
    Line += ", \"" + Key + "\": " + Buf;
  }
  void add(const std::string &Key, uint64_t V) {
    Line += ", \"" + Key + "\": " + std::to_string(V);
  }
  void add(const std::string &Key, unsigned V) { add(Key, uint64_t(V)); }
  void add(const std::string &Key, const std::string &V) {
    Line += ", \"" + Key + "\": \"" + V + "\"";
  }

  ~JsonSummary() {
    const char *Path = std::getenv("SALSSA_BENCH_JSON");
    if (!Path)
      return;
    if (std::FILE *F = std::fopen(Path, "a")) {
      std::fprintf(F, "%s}\n", Line.c_str());
      std::fclose(F);
    }
  }

private:
  std::string Line;
};

inline void printHeader(const std::string &Title) {
  std::printf("\n=== %s ===\n", Title.c_str());
}

inline void printRule(unsigned Width = 100) {
  for (unsigned I = 0; I < Width; ++I)
    std::putchar('-');
  std::putchar('\n');
}

} // namespace bench
} // namespace salssa

#endif // SALSSA_BENCH_BENCHUTILS_H
