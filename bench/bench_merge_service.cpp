//===- bench/bench_merge_service.cpp - Incremental session payoff --------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
// Measures the incremental merge service (merge/MergeService.h): a warm
// session absorbing a small delta against a from-scratch re-merge of the
// same edited pool.
//
// Modes:
//   (default)  sweep: delta vs cold wall-clock and pairing work across
//              selection modes and thread counts on a multi-class pool,
//              one edit step per epoch.
//   --smoke    the deterministic acceptance bar on a CI-sized pool: a
//              delta epoch must do strictly less pairing work (distance
//              calls + probes) and strictly fewer attempts than the cold
//              session over the identical final pool, while landing on
//              the cold run's exact merge set. Wall-clock is reported
//              (skipped under SALSSA_BENCH_NO_TIMING) but never gated.
//              Writes a JsonSummary (SALSSA_BENCH_JSON):
//              cold_pairing_calls, delta_pairing_calls, cold_attempts,
//              delta_attempts, dirty_classes, total_classes,
//              cold_seconds, delta_seconds.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"
#include "ir/IRPrinter.h"
#include "merge/MergeService.h"
#include "support/Chrono.h"
#include "workloads/EditScript.h"
#include <cstring>

using namespace salssa;
using namespace salssa::bench;

namespace {

BenchmarkProfile serviceProfile(unsigned NumFns) {
  BenchmarkProfile P;
  P.Name = "inc_service";
  P.NumFunctions = NumFns;
  P.MinSize = 8;
  P.AvgSize = 42;
  P.MaxSize = 160;
  P.CloneFamilyPercent = 55;
  P.MinFamily = 2;
  P.MaxFamily = 5;
  P.FamilyDriftPercent = 10;
  P.LoopPercent = 45;
  P.RetTypeVariety = 4;
  P.Seed = 0x15eed;
  return P;
}

EditScriptOptions editOptions(unsigned NumSteps) {
  EditScriptOptions EO;
  EO.NumSteps = NumSteps;
  EO.ChangesPerStep = 3;
  EO.AddsPerStep = 1;
  EO.DeletesPerStep = 1;
  EO.Generate.TargetSize = 36;
  EO.Generate.RetTypeVariety = 4;
  EO.Seed = 0xed1f;
  return EO;
}

MergeDriverOptions baseOptions() {
  MergeDriverOptions DO;
  DO.Technique = MergeTechnique::SalSSA;
  DO.ExplorationThreshold = 3;
  return DO;
}

std::vector<Module *> modsOf(const ModuleGroup &Group) {
  std::vector<Module *> Mods;
  for (size_t I = 0; I < Group.size(); ++I)
    Mods.push_back(&Group[I]);
  return Mods;
}

unsigned poolSize(unsigned Default) {
  unsigned Scale = benchScale();
  return Scale > 1 ? std::max(32u, Default / Scale) : Default;
}

bool timingEnabled() {
  return std::getenv("SALSSA_BENCH_NO_TIMING") == nullptr;
}

struct EpochCost {
  uint64_t Pairing = 0; ///< distance calls + probes
  unsigned Attempts = 0;
  double Seconds = 0;
};

/// One incremental session: initialize, then apply every scripted step,
/// returning the LAST epoch's cost plus the final session print.
struct ServiceRun {
  EpochCost LastDelta;
  unsigned CommittedMerges = 0;
  std::string Print;
  double InitSeconds = 0;
};

ServiceRun runService(const BenchmarkProfile &P, const EditScript &Script,
                      MergeDriverOptions DO) {
  Context Ctx;
  ModuleGroup Group = buildBenchmarkModuleGroup(P, Ctx, 2);
  std::vector<Module *> Mods = modsOf(Group);
  MergeServiceOptions SO;
  SO.Driver = DO;
  MergeService Svc(SO);
  for (Module *M : Mods)
    Svc.addModule(*M);
  ServiceRun R;
  auto T0 = std::chrono::steady_clock::now();
  Svc.initialize();
  R.InitSeconds = secondsSince(T0);
  MergeServiceStats Last;
  for (unsigned S = 0; S < Script.numSteps(); ++S) {
    auto TD = std::chrono::steady_clock::now();
    MergeService::DeltaBatch Batch = Svc.beginDelta();
    EditScript::AppliedStep A = Script.applyStep(
        Mods, S, [&](Function *F) { Batch.checkoutForEdit(F); });
    MergeDelta D;
    D.Changed = A.Changed;
    D.Added = A.Added;
    D.Deleted = A.Deleted;
    Last = Batch.apply(D);
    R.LastDelta.Seconds = secondsSince(TD);
  }
  R.LastDelta.Pairing =
      Last.EpochPairingDistanceCalls + Last.EpochPairingProbes;
  R.LastDelta.Attempts = Last.EpochAttempts;
  R.CommittedMerges = Last.Session.Driver.CommittedMerges;
  for (Module *M : Mods)
    R.Print += printModule(*M);
  return R;
}

/// Cold baseline: fresh group, all edit steps applied up front, one
/// from-scratch merge.
struct ColdRun {
  EpochCost Cost;
  unsigned CommittedMerges = 0;
  std::string Print;
  bool VerifierOk = false;
};

ColdRun runCold(const BenchmarkProfile &P, const EditScript &Script,
                MergeDriverOptions DO) {
  Context Ctx;
  ModuleGroup Group = buildBenchmarkModuleGroup(P, Ctx, 2);
  std::vector<Module *> Mods = modsOf(Group);
  for (unsigned S = 0; S < Script.numSteps(); ++S) {
    EditScript::AppliedStep A = Script.applyStep(Mods, S);
    for (Function *F : A.Deleted)
      F->getParent()->eraseFunction(F);
  }
  DO.ShardCount = 1;
  CrossModuleMerger Session(DO);
  for (Module *M : Mods)
    Session.addModule(*M);
  auto T0 = std::chrono::steady_clock::now();
  CrossModuleStats S = Session.run();
  ColdRun R;
  R.Cost.Seconds = secondsSince(T0);
  R.Cost.Pairing = S.Driver.PairingDistanceCalls + S.Driver.PairingProbes;
  R.Cost.Attempts = S.Driver.Attempts;
  R.CommittedMerges = S.Driver.CommittedMerges;
  R.VerifierOk = true;
  for (Module *M : Mods) {
    R.Print += printModule(*M);
    R.VerifierOk = R.VerifierOk && verifyModule(*M).ok();
  }
  return R;
}

int smokeMode() {
  const unsigned PoolFns = poolSize(96);
  printHeader("bench_merge_service --smoke (pool " +
              std::to_string(PoolFns) + " x 2 modules)");
  BenchmarkProfile P = serviceProfile(PoolFns);
  EditScript Script = [&] {
    Context Ctx;
    ModuleGroup Group = buildBenchmarkModuleGroup(P, Ctx, 2);
    return EditScript(modsOf(Group), editOptions(3));
  }();
  MergeDriverOptions DO = baseOptions();
  DO.NumThreads = 2;

  ServiceRun Inc = runService(P, Script, DO);
  ColdRun Cold = runCold(P, Script, DO);

  std::printf("cold session: %u commits, %llu pairing ops, %u attempts\n",
              Cold.CommittedMerges, (unsigned long long)Cold.Cost.Pairing,
              Cold.Cost.Attempts);
  std::printf("last delta:   %u commits (whole session), %llu pairing "
              "ops, %u attempts\n",
              Inc.CommittedMerges,
              (unsigned long long)Inc.LastDelta.Pairing,
              Inc.LastDelta.Attempts);
  if (timingEnabled())
    std::printf("wall-clock (not gated): init %.3fs, last delta %.3fs, "
                "cold %.3fs\n",
                Inc.InitSeconds, Inc.LastDelta.Seconds, Cold.Cost.Seconds);

  if (!Cold.VerifierOk) {
    std::printf("FAIL: verifier errors after the cold merge\n");
    return 1;
  }
  if (Inc.Print != Cold.Print) {
    std::printf("FAIL: incremental session is not byte-identical to the "
                "from-scratch run over the final pool\n");
    return 1;
  }
  if (Cold.CommittedMerges == 0) {
    std::printf("FAIL: the pool produced no merges — the workload no "
                "longer exercises the session\n");
    return 1;
  }
  // The incrementality bar: a delta touches only its dirty classes, so
  // its re-ranking and attempt work must be strictly under the cold
  // session's over the identical final pool.
  if (Inc.LastDelta.Pairing >= Cold.Cost.Pairing) {
    std::printf("FAIL: delta pairing work must be strictly less than a "
                "cold run (%llu vs %llu)\n",
                (unsigned long long)Inc.LastDelta.Pairing,
                (unsigned long long)Cold.Cost.Pairing);
    return 1;
  }
  if (Inc.LastDelta.Attempts >= Cold.Cost.Attempts) {
    std::printf("FAIL: delta attempts must be strictly fewer than a cold "
                "run (%u vs %u)\n",
                Inc.LastDelta.Attempts, Cold.Cost.Attempts);
    return 1;
  }

  JsonSummary Json("bench_merge_service");
  Json.add("pool_functions", uint64_t(PoolFns) * 2);
  Json.add("cold_pairing_calls", Cold.Cost.Pairing);
  Json.add("delta_pairing_calls", Inc.LastDelta.Pairing);
  Json.add("cold_attempts", uint64_t(Cold.Cost.Attempts));
  Json.add("delta_attempts", uint64_t(Inc.LastDelta.Attempts));
  Json.add("committed_merges", uint64_t(Cold.CommittedMerges));
  Json.add("cold_seconds", Cold.Cost.Seconds);
  Json.add("delta_seconds", Inc.LastDelta.Seconds);
  Json.add("init_seconds", Inc.InitSeconds);

  std::printf("PASS: delta re-merge does strictly less pairing and "
              "attempt work than from-scratch, byte-identical result\n");
  return 0;
}

int sweepMode() {
  const unsigned PoolFns = poolSize(256);
  printHeader("Incremental delta vs from-scratch re-merge, " +
              std::to_string(PoolFns) + " x 2 modules");
  std::printf("%-10s %-8s %12s %12s %10s %10s %8s\n", "selection",
              "threads", "cold pair", "delta pair", "cold s", "delta s",
              "equal");
  printRule(78);
  bool Ok = true;
  BenchmarkProfile P = serviceProfile(PoolFns);
  EditScript Script = [&] {
    Context Ctx;
    ModuleGroup Group = buildBenchmarkModuleGroup(P, Ctx, 2);
    return EditScript(modsOf(Group), editOptions(4));
  }();
  for (SelectionStrategy Sel :
       {SelectionStrategy::Distance, SelectionStrategy::Profit,
        SelectionStrategy::Adaptive})
    for (unsigned NT : {1u, 4u}) {
      MergeDriverOptions DO = baseOptions();
      DO.Selection = Sel;
      DO.NumThreads = NT;
      ServiceRun Inc = runService(P, Script, DO);
      ColdRun Cold = runCold(P, Script, DO);
      bool Equal = Inc.Print == Cold.Print && Cold.VerifierOk;
      // Only equivalence gates the sweep: a step that happens to dirty
      // every class re-ranks the full pool, so the pairing columns are
      // informational here. The --smoke pool is sized so its delta
      // leaves classes clean, and gates strictly.
      Ok &= Equal;
      std::printf("%-10s %-8u %12llu %12llu %10.3f %10.3f %8s\n",
                  selectionName(Sel), NT,
                  (unsigned long long)Cold.Cost.Pairing,
                  (unsigned long long)Inc.LastDelta.Pairing,
                  Cold.Cost.Seconds, Inc.LastDelta.Seconds,
                  Equal ? "yes" : "NO");
    }
  if (!Ok) {
    std::printf("FAIL: a configuration lost equivalence\n");
    return 1;
  }
  std::printf("\nPASS\n");
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  bool Smoke = false;
  for (int I = 1; I < argc; ++I)
    if (std::strcmp(argv[I], "--smoke") == 0)
      Smoke = true;
  return Smoke ? smokeMode() : sweepMode();
}
