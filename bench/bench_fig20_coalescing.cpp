//===- bench/bench_fig20_coalescing.cpp - Figure 20 ----------------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
// Figure 20 of the paper: the phi-node coalescing ablation. SalSSA is
// compared against SalSSA-NoPC (coalescing disabled) and FMSA on SPEC
// CPU2006 at t=1. Paper: coalescing adds ~1.2% extra reduction on average
// (GMean 9.3% vs 8.1%), up to +7% on 444.namd.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

using namespace salssa;
using namespace salssa::bench;

int main() {
  printHeader("Figure 20: phi-node coalescing ablation, SPEC CPU2006, t=1 "
              "(x86-like)");
  std::printf("%-18s %10s %14s %10s %12s\n", "benchmark", "FMSA",
              "SalSSA-NoPC", "SalSSA", "PC gain");
  printRule(70);

  std::vector<SuiteResult> ColF, ColNoPC, ColS;
  for (const BenchmarkProfile &P : spec2006Profiles()) {
    BenchmarkProfile SP = scaled(P);
    SuiteResult RF = runConfiguration(SP, MergeTechnique::FMSA, 1,
                                      TargetArch::X86Like);
    SuiteResult RN = runConfiguration(SP, MergeTechnique::SalSSA, 1,
                                      TargetArch::X86Like,
                                      /*PhiCoalescing=*/false);
    SuiteResult RS = runConfiguration(SP, MergeTechnique::SalSSA, 1,
                                      TargetArch::X86Like,
                                      /*PhiCoalescing=*/true);
    std::printf("%-18s %9.1f%% %13.1f%% %9.1f%% %+11.2f%%\n",
                P.Name.c_str(), RF.reductionPercent(),
                RN.reductionPercent(), RS.reductionPercent(),
                RS.reductionPercent() - RN.reductionPercent());
    std::fflush(stdout);
    ColF.push_back(RF);
    ColNoPC.push_back(RN);
    ColS.push_back(RS);
  }
  printRule(70);
  std::printf("%-18s %9.1f%% %13.1f%% %9.1f%%\n", "GMean",
              geomeanReduction(ColF), geomeanReduction(ColNoPC),
              geomeanReduction(ColS));
  std::printf("\npaper reports GMean: FMSA 3.8%%, SalSSA-NoPC 8.1%%, "
              "SalSSA 9.3%% (coalescing worth ~1.2%%)\n");
  return 0;
}
