//===- bench/bench_fig22_memory.cpp - Figure 22 --------------------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
// Figure 22 of the paper: peak memory used by the merging pass on SPEC
// CPU2006 (t=1). Memory is dominated by the quadratic Needleman-Wunsch DP
// state; demotion-inflated sequences cost FMSA roughly (1.73x)^2 ~ 3x in
// DP footprint, and the 403.gcc giant pair dominates the absolute peak
// (paper: 6.5 GB FMSA vs 2.4 GB SalSSA; scaled down here with the suite).
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

using namespace salssa;
using namespace salssa::bench;

int main() {
  printHeader("Figure 22: peak alignment memory during merging, SPEC "
              "CPU2006, t=1");
  std::printf("%-18s %14s %14s %8s\n", "benchmark", "FMSA (MB)",
              "SalSSA (MB)", "ratio");
  printRule(60);

  std::vector<double> Ratios;
  for (const BenchmarkProfile &P : spec2006Profiles()) {
    BenchmarkProfile SP = scaled(P);
    SuiteResult RF = runConfiguration(SP, MergeTechnique::FMSA, 1,
                                      TargetArch::X86Like);
    SuiteResult RS = runConfiguration(SP, MergeTechnique::SalSSA, 1,
                                      TargetArch::X86Like);
    double MBF = double(RF.Driver.PeakAlignmentBytes) / (1024.0 * 1024.0);
    double MBS = double(RS.Driver.PeakAlignmentBytes) / (1024.0 * 1024.0);
    double Ratio = MBS > 0 ? MBF / MBS : 0;
    if (Ratio > 0)
      Ratios.push_back(Ratio);
    std::printf("%-18s %14.2f %14.2f %7.2fx\n", P.Name.c_str(), MBF, MBS,
                Ratio);
    std::fflush(stdout);
  }
  printRule(60);
  std::printf("%-18s %37.2fx\n", "GMean ratio", geomean(Ratios));
  std::printf("\npaper: SalSSA uses less than half of FMSA's memory on "
              "average; 403.gcc peak 6.5 GB (FMSA) vs 2.4 GB (SalSSA), a "
              "2.7x reduction\n");
  return 0;
}
