//===- bench/bench_fig18_mibench.cpp - Figure 18 -------------------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
// Figure 18 of the paper: linked-object size reduction on the MiBench
// embedded suite, ARM-Thumb-like target, including the "FMSA Residue"
// series (the effect of FMSA's mandatory whole-module register demotion
// round trip even when nothing merges). Paper headline: SalSSA 1.4-1.6%
// gmean, about twice FMSA's 0.8%; residue ~0.1%.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

using namespace salssa;
using namespace salssa::bench;

int main() {
  printHeader("Figure 18: MiBench object size reduction over LTO "
              "(Thumb-like)");
  const unsigned Thresholds[] = {1, 5, 10};
  std::printf("%-14s %8s", "benchmark", "Residue");
  for (const char *Tech : {"FMSA", "SalSSA"})
    for (unsigned T : Thresholds)
      std::printf(" %6s[%2u]", Tech, T);
  std::printf("\n");
  printRule(92);

  std::vector<SuiteResult> ResidueCol;
  std::vector<std::vector<SuiteResult>> Columns(6);
  for (const BenchmarkProfile &P : mibenchProfiles()) {
    BenchmarkProfile SP = scaled(P);
    std::printf("%-14s", P.Name.c_str());

    // FMSA Residue: demote+promote+simplify round trip, no merging.
    {
      Context Ctx;
      std::unique_ptr<Module> M = buildBenchmarkModule(SP, Ctx);
      SuiteResult R;
      R.Benchmark = SP.Name;
      R.BaselineSize = estimateModuleSize(*M, TargetArch::ThumbLike);
      runFMSAResidueOnly(*M);
      R.OptimizedSize = estimateModuleSize(*M, TargetArch::ThumbLike);
      std::printf(" %7.2f%%", R.reductionPercent());
      ResidueCol.push_back(R);
    }

    unsigned Col = 0;
    for (MergeTechnique Tech :
         {MergeTechnique::FMSA, MergeTechnique::SalSSA}) {
      for (unsigned T : Thresholds) {
        SuiteResult R =
            runConfiguration(SP, Tech, T, TargetArch::ThumbLike);
        std::printf(" %9.2f%%", R.reductionPercent());
        std::fflush(stdout);
        Columns[Col++].push_back(R);
      }
    }
    std::printf("\n");
  }
  printRule(92);
  std::printf("%-14s %7.2f%%", "GMean", geomeanReduction(ResidueCol));
  for (unsigned C = 0; C < 6; ++C)
    std::printf(" %9.2f%%", geomeanReduction(Columns[C]));
  std::printf("\npaper reports GMean: Residue 0.1%%, FMSA 0.8%%, "
              "SalSSA 1.4/1.5/1.6%%\n");
  return 0;
}
