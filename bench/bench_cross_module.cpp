//===- bench/bench_cross_module.cpp - Cross-module vs per-module merging -------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
// Measures what the module boundary costs: one clone-heavy suite is split
// round-robin across K "translation units" (buildBenchmarkModuleGroup, so
// clone families span modules), then merged two ways —
//
//   per-module    runFunctionMerging on each module independently (what a
//                 per-TU pipeline can do);
//   cross-module  one CrossModuleMerger session over all K modules (the
//                 whole-program configuration, cf. "Optimistic Global
//                 Function Merger").
//
// Both start from byte-identical module groups (deterministic rebuild).
// The headline series is total size reduction (SizeModel) at K = 1/2/4/8:
// per-module reduction decays as the split hides family members from each
// other, cross-module reduction stays ~flat, and the gap is the win.
//
// Modes:
//   (default)  the split-sweep table above, plus cross/intra commit
//              counts. Exits non-zero if cross-module ever reduces less
//              than per-module at K > 1.
//   --smoke    K = 4 only, and FAILS (exit 1) unless the cross-module
//              session reduces *strictly* more than per-module merging —
//              the acceptance bar — and every module stays
//              verifier-clean. Deterministic (no wall-clock thresholds),
//              so it runs in ctest in every configuration, TSan included.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"
#include "merge/CrossModuleMerger.h"
#include <cstring>

using namespace salssa;
using namespace salssa::bench;

namespace {

BenchmarkProfile crossProfile(unsigned NumFunctions) {
  BenchmarkProfile P;
  P.Name = "xmod" + std::to_string(NumFunctions);
  P.NumFunctions = NumFunctions;
  P.MinSize = 6;
  P.AvgSize = 50;
  P.MaxSize = 240;
  P.CloneFamilyPercent = 55; // dealII-like: the families are the payload
  P.MinFamily = 2;
  P.MaxFamily = 6;
  P.FamilyDriftPercent = 10;
  P.LoopPercent = 50;
  P.Seed = 0xC0DE;
  return P;
}

MergeDriverOptions driverOptions(SelectionStrategy Selection) {
  MergeDriverOptions DO;
  DO.Technique = MergeTechnique::SalSSA;
  DO.ExplorationThreshold = 2;
  DO.Selection = Selection;
  return DO;
}

struct SplitResult {
  uint64_t SizeBefore = 0;
  uint64_t PerModuleAfter = 0;
  uint64_t CrossModuleAfter = 0;
  unsigned PerModuleCommits = 0;
  unsigned CrossCommits = 0;
  unsigned CrossOfWhichCrossModule = 0;
  double PerModuleSeconds = 0;
  double CrossSeconds = 0;
  bool VerifierOk = true;

  double perModuleReduction() const {
    return 100.0 * (1.0 - double(PerModuleAfter) / double(SizeBefore));
  }
  double crossReduction() const {
    return 100.0 * (1.0 - double(CrossModuleAfter) / double(SizeBefore));
  }
};

SplitResult runSplit(unsigned NumFunctions, unsigned NumModules,
                     SelectionStrategy Selection) {
  const BenchmarkProfile P = crossProfile(NumFunctions);
  const MergeDriverOptions DO = driverOptions(Selection);
  SplitResult R;

  // Per-module: each module merged in isolation.
  {
    Context Ctx;
    ModuleGroup Group = buildBenchmarkModuleGroup(P, Ctx, NumModules);
    for (size_t I = 0; I < Group.size(); ++I)
      R.SizeBefore += estimateModuleSize(Group[I], DO.Arch);
    for (size_t I = 0; I < Group.size(); ++I) {
      MergeDriverStats S = runFunctionMerging(Group[I], DO);
      R.PerModuleCommits += S.CommittedMerges;
      R.PerModuleSeconds += S.TotalSeconds;
      R.PerModuleAfter += estimateModuleSize(Group[I], DO.Arch);
      R.VerifierOk = R.VerifierOk && verifyModule(Group[I]).ok();
    }
  }

  // Cross-module: one session over a byte-identical rebuild.
  {
    Context Ctx;
    ModuleGroup Group = buildBenchmarkModuleGroup(P, Ctx, NumModules);
    CrossModuleMerger Session(DO);
    for (size_t I = 0; I < Group.size(); ++I)
      Session.addModule(Group[I]);
    CrossModuleStats S = Session.run();
    R.CrossModuleAfter = S.SizeAfter;
    R.CrossCommits = S.Driver.CommittedMerges;
    R.CrossOfWhichCrossModule = S.CrossModuleMerges;
    R.CrossSeconds = S.Driver.TotalSeconds;
    if (S.SizeBefore != R.SizeBefore) {
      std::fprintf(stderr,
                   "FATAL: nondeterministic group rebuild (%llu vs %llu)\n",
                   (unsigned long long)S.SizeBefore,
                   (unsigned long long)R.SizeBefore);
      std::abort();
    }
    for (size_t I = 0; I < Group.size(); ++I)
      R.VerifierOk = R.VerifierOk && verifyModule(Group[I]).ok();
  }
  return R;
}

unsigned poolSize(unsigned Default) {
  unsigned Scale = benchScale();
  return Scale > 1 ? std::max(16u, Default / Scale) : Default;
}

int smokeMode() {
  const unsigned PoolFns = poolSize(160);
  printHeader("bench_cross_module --smoke (pool " + std::to_string(PoolFns) +
              ")");
  // Leg 1 (the PR 3 bar): at a 4-way split, distance-ranked cross-module
  // merging must reduce strictly more than per-module merging.
  SplitResult R = runSplit(PoolFns, 4, SelectionStrategy::Distance);
  std::printf("distance K=4: baseline %llu B | per-module: %u commits, "
              "%.2f%% | cross-module: %u commits (%u cross), %.2f%%\n",
              (unsigned long long)R.SizeBefore, R.PerModuleCommits,
              R.perModuleReduction(), R.CrossCommits,
              R.CrossOfWhichCrossModule, R.crossReduction());
  if (!R.VerifierOk) {
    std::printf("FAIL: verifier errors after merging\n");
    return 1;
  }
  if (R.CrossOfWhichCrossModule == 0) {
    std::printf("FAIL: the split suite produced no cross-module merges\n");
    return 1;
  }
  if (R.CrossModuleAfter >= R.PerModuleAfter) {
    std::printf("FAIL: cross-module merging must reduce strictly more than "
                "per-module merging (%llu B vs %llu B after)\n",
                (unsigned long long)R.CrossModuleAfter,
                (unsigned long long)R.PerModuleAfter);
    return 1;
  }
  // Leg 2 (this PR's bar): profit-guided selection closes the K=2 greedy
  // gap — the one split where global greedy order used to consume
  // partners that per-module runs paired better.
  SplitResult P2 = runSplit(PoolFns, 2, SelectionStrategy::Profit);
  std::printf("profit   K=2: baseline %llu B | per-module: %u commits, "
              "%.2f%% | cross-module: %u commits (%u cross), %.2f%%\n",
              (unsigned long long)P2.SizeBefore, P2.PerModuleCommits,
              P2.perModuleReduction(), P2.CrossCommits,
              P2.CrossOfWhichCrossModule, P2.crossReduction());
  if (!P2.VerifierOk) {
    std::printf("FAIL: verifier errors after profit-mode merging\n");
    return 1;
  }
  if (P2.CrossModuleAfter > P2.PerModuleAfter) {
    std::printf("FAIL: profit-ranked cross-module session must reduce at "
                "least as much as per-module merging at K=2 "
                "(%llu B vs %llu B after)\n",
                (unsigned long long)P2.CrossModuleAfter,
                (unsigned long long)P2.PerModuleAfter);
    return 1;
  }
  JsonSummary Json("bench_cross_module");
  Json.add("pool_functions", uint64_t(PoolFns));
  Json.add("cross_reduction_pct", R.crossReduction());
  Json.add("per_module_reduction_pct", R.perModuleReduction());
  Json.add("cross_commits", R.CrossCommits);
  Json.add("cross_module_commits", R.CrossOfWhichCrossModule);
  Json.add("cross_seconds", R.CrossSeconds);
  std::printf("PASS: distance K=4 cross %.2f%% > per-module %.2f%%; "
              "profit K=2 cross %.2f%% >= per-module %.2f%%\n",
              R.crossReduction(), R.perModuleReduction(),
              P2.crossReduction(), P2.perModuleReduction());
  return 0;
}

int sweepMode() {
  const unsigned PoolFns = poolSize(256);
  printHeader("Cross-module vs per-module merging, " +
              std::to_string(PoolFns) + " functions split K ways");
  std::printf("%-9s %-6s %12s %12s %12s %10s %10s %12s %12s\n", "select",
              "K", "base (B)", "per-mod %", "cross %", "commits",
              "x-commits", "per-mod (s)", "cross (s)");
  printRule(102);
  bool Ok = true;
  for (SelectionStrategy Sel :
       {SelectionStrategy::Distance, SelectionStrategy::Profit}) {
    for (unsigned K : {1u, 2u, 4u, 8u}) {
      SplitResult R = runSplit(PoolFns, K, Sel);
      // Distance selection keeps the PR 3 bar: enforced from K = 4 up (a
      // coarse split can land within greedy-ordering noise of per-module
      // merging). Profit selection is held to the stronger bar this PR
      // exists for: cross-module >= per-module at EVERY split, closing
      // the K=2 greedy gap — and still strictly better from K = 4 up.
      bool RowOk = R.VerifierOk;
      if (Sel == SelectionStrategy::Distance)
        RowOk = RowOk && (K < 4 || R.CrossModuleAfter < R.PerModuleAfter);
      else
        RowOk = RowOk && R.CrossModuleAfter <= R.PerModuleAfter &&
                (K < 4 || R.CrossModuleAfter < R.PerModuleAfter);
      Ok &= RowOk;
      std::printf(
          "%-9s %-6u %12llu %11.2f%% %11.2f%% %10u %10u %12.3f %12.3f%s\n",
          selectionName(Sel), K, (unsigned long long)R.SizeBefore,
          R.perModuleReduction(), R.crossReduction(), R.CrossCommits,
          R.CrossOfWhichCrossModule, R.PerModuleSeconds, R.CrossSeconds,
          RowOk ? "" : "  REGRESSION");
      std::fflush(stdout);
    }
    printRule(102);
  }
  std::printf("\nper-module reduction decays with K (the split hides clone "
              "families); the cross-module session sees the whole pool and "
              "stays flat — the gap is the whole-program win. Profit-guided "
              "selection additionally closes the K=2 greedy gap (same-module "
              "tie-breaking stops the global greedy order from consuming "
              "partners per-module runs pair better).\n");
  return Ok ? 0 : 1;
}

} // namespace

int main(int argc, char **argv) {
  for (int I = 1; I < argc; ++I)
    if (std::strcmp(argv[I], "--smoke") == 0)
      return smokeMode();
  return sweepMode();
}
