//===- bench/bench_fig25_runtime.cpp - Figure 25 -------------------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
// Figure 25 of the paper: the impact of merging on program run time
// (SPEC CPU2006, t=1), normalized to the unmerged baseline. Runtime is
// proxied by dynamic instruction counts in the interpreter: the merged
// code executes extra fid-conditional branches and selects on the hot
// path. Paper: FMSA ~2%, SalSSA ~4% average overhead (SalSSA merges more
// functions, so it pays slightly more at run time).
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"
#include "interp/Interpreter.h"

using namespace salssa;
using namespace salssa::bench;

namespace {

/// Total dynamic instructions running every definition on a few inputs.
uint64_t dynamicSteps(Module &M) {
  ExecOptions Opts;
  Opts.MaxSteps = 50000;
  Interpreter Interp(M, Opts);
  uint64_t Total = 0;
  // Thunks redirect to merged functions, so original entry points measure
  // the post-merging execution faithfully.
  for (Function *F : M.functions()) {
    if (F->isDeclaration() ||
        F->getName().find(".m.") != std::string::npos)
      continue; // merged bodies are reached through the originals
    for (uint64_t In : {2ull, 9ull}) {
      std::vector<RuntimeValue> Args(F->getNumArgs(),
                                     RuntimeValue::makeInt(In));
      Interp.resetMemory();
      ExecResult R = Interp.run(F, Args);
      Total += R.StepCount;
    }
  }
  return Total;
}

} // namespace

int main() {
  printHeader("Figure 25: run-time (dynamic instructions) normalized to "
              "no-merging baseline, SPEC CPU2006, t=1");
  std::printf("%-18s %10s %10s\n", "benchmark", "FMSA", "SalSSA");
  printRule(42);

  std::vector<double> ColF, ColS;
  for (const BenchmarkProfile &P : spec2006Profiles()) {
    BenchmarkProfile SP = scaled(P);
    Context C0;
    std::unique_ptr<Module> Base = buildBenchmarkModule(SP, C0);
    uint64_t BaseSteps = dynamicSteps(*Base);

    double Norm[2];
    unsigned Idx = 0;
    for (MergeTechnique Tech :
         {MergeTechnique::FMSA, MergeTechnique::SalSSA}) {
      Context C1;
      std::unique_ptr<Module> M = buildBenchmarkModule(SP, C1);
      MergeDriverOptions DO;
      DO.Technique = Tech;
      DO.ExplorationThreshold = 1;
      runFunctionMerging(*M, DO);
      uint64_t Steps = dynamicSteps(*M);
      Norm[Idx++] = BaseSteps ? double(Steps) / double(BaseSteps) : 1.0;
    }
    std::printf("%-18s %9.3fx %9.3fx\n", P.Name.c_str(), Norm[0], Norm[1]);
    std::fflush(stdout);
    ColF.push_back(Norm[0]);
    ColS.push_back(Norm[1]);
  }
  printRule(42);
  std::printf("%-18s %9.3fx %9.3fx\n", "GMean", geomean(ColF),
              geomean(ColS));
  std::printf("\npaper reports GMean: FMSA ~1.02x, SalSSA ~1.04x (SalSSA "
              "merges more, costing slightly more at run time)\n");
  return 0;
}
