//===- bench/bench_sharded_sessions.cpp - Sharded vs unsharded sessions --------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
// Measures what sharding buys a whole-program session: a heterogeneous
// group (several suites, several return-type classes, split across TUs)
// is merged as one unsharded CrossModuleMerger session and as a
// ShardedSessionRunner at several shard counts, on the same thread
// budget. Sharding replaces the optimistic attempt-stage parallelism
// (speculation waste, serial commit bottleneck, window barriers) with
// fully independent pipelines over provably independent partitions — the
// whole session, ranking and commits included, runs in parallel.
//
// Both flavours commit the bit-identical merge set (the tentpole
// contract, enforced here too), so every row differs in wall-clock only.
//
// Modes:
//   (default)  sweep: shard counts {1, 2, 4, 8} x thread counts {1, 4, 8}
//              on a 512-function group; reports wall-clock, speedup over
//              the unsharded run at the same thread count, and the
//              balancer's ShardImbalance.
//   --smoke    the acceptance bar: on the 512-function heterogeneous
//              group at 4 threads, the sharded session (4 shards) must
//              not be slower than the unsharded session (best of 2 runs
//              each), and must commit the identical merge set. The
//              timing leg is skipped under SALSSA_BENCH_NO_TIMING (TSan
//              builds — wall-clock there measures the sanitizer, not the
//              code). Writes a JsonSummary (SALSSA_BENCH_JSON).
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"
#include "ir/IRPrinter.h"
#include "merge/ShardedSessionRunner.h"
#include <cstring>
#include <thread>

using namespace salssa;
using namespace salssa::bench;

namespace {

/// Four suites x 128 functions = 512 functions, several return-type
/// classes each, every suite split across 2 TUs (8 modules total).
std::vector<BenchmarkProfile> heterogeneousSuites(unsigned Total) {
  const unsigned Each = std::max(8u, Total / 4);
  auto P = [&](const char *Name, uint64_t Seed, unsigned Variety,
               unsigned AvgSize) {
    BenchmarkProfile B;
    B.Name = Name;
    B.NumFunctions = Each;
    B.MinSize = 6;
    B.AvgSize = AvgSize;
    B.MaxSize = 4 * AvgSize;
    B.CloneFamilyPercent = 55;
    B.MinFamily = 2;
    B.MaxFamily = 6;
    B.FamilyDriftPercent = 10;
    B.LoopPercent = 50;
    B.RetTypeVariety = Variety;
    B.Seed = Seed;
    return B;
  };
  return {P("shard_a", 0x51A, 5, 45), P("shard_b", 0x51B, 4, 55),
          P("shard_c", 0x51C, 5, 40), P("shard_d", 0x51D, 3, 60)};
}

MergeDriverOptions driverOptions(unsigned NumThreads, unsigned Shards) {
  MergeDriverOptions DO;
  DO.Technique = MergeTechnique::SalSSA;
  DO.ExplorationThreshold = 2;
  DO.NumThreads = NumThreads;
  DO.ShardCount = Shards;
  return DO;
}

struct SessionRun {
  double Seconds = 0;
  unsigned Commits = 0;
  unsigned ShardCount = 0;
  double Imbalance = 0;
  uint64_t SizeBefore = 0;
  uint64_t SizeAfter = 0;
  uint64_t PairingDistanceCalls = 0;
  std::string Prints;
  bool VerifierOk = true;

  double reductionPercent() const {
    if (SizeBefore == 0)
      return 0;
    return 100.0 * (1.0 - double(SizeAfter) / double(SizeBefore));
  }
};

SessionRun runSession(unsigned Total, unsigned NumThreads, unsigned Shards) {
  Context Ctx;
  ModuleGroup Group = buildSuiteModuleGroup(heterogeneousSuites(Total), Ctx, 2);
  CrossModuleMerger Session(driverOptions(NumThreads, Shards));
  for (size_t I = 0; I < Group.size(); ++I)
    Session.addModule(Group[I]);
  CrossModuleStats S = Session.run();
  SessionRun R;
  R.Seconds = S.Driver.TotalSeconds;
  R.Commits = S.Driver.CommittedMerges;
  R.ShardCount = S.Driver.ShardCount;
  R.Imbalance = S.Driver.ShardImbalance;
  R.SizeBefore = S.SizeBefore;
  R.SizeAfter = S.SizeAfter;
  R.PairingDistanceCalls = S.Driver.PairingDistanceCalls;
  for (size_t I = 0; I < Group.size(); ++I) {
    R.Prints += printModule(Group[I]);
    R.VerifierOk = R.VerifierOk && verifyModule(Group[I]).ok();
  }
  return R;
}

unsigned poolSize(unsigned Default) {
  unsigned Scale = benchScale();
  return Scale > 1 ? std::max(32u, Default / Scale) : Default;
}

bool timingEnabled() { return std::getenv("SALSSA_BENCH_NO_TIMING") == nullptr; }

int smokeMode() {
  const unsigned PoolFns = poolSize(512);
  printHeader("bench_sharded_sessions --smoke (pool " +
              std::to_string(PoolFns) + ", 4 threads)");

  // Deterministic leg: sharded and unsharded sessions must commit the
  // bit-identical merge set (merges, reduction, module bytes).
  SessionRun Unsharded = runSession(PoolFns, 4, 1);
  SessionRun Sharded = runSession(PoolFns, 4, 4);
  std::printf("unsharded: %u commits, %.2f%% reduction, %.3fs\n",
              Unsharded.Commits, Unsharded.reductionPercent(),
              Unsharded.Seconds);
  std::printf("sharded:   %u commits, %.2f%% reduction, %.3fs "
              "(%u shards, imbalance %.2f)\n",
              Sharded.Commits, Sharded.reductionPercent(), Sharded.Seconds,
              Sharded.ShardCount, Sharded.Imbalance);
  if (!Unsharded.VerifierOk || !Sharded.VerifierOk) {
    std::printf("FAIL: verifier errors after merging\n");
    return 1;
  }
  if (Sharded.Commits != Unsharded.Commits ||
      Sharded.SizeAfter != Unsharded.SizeAfter ||
      Sharded.Prints != Unsharded.Prints) {
    std::printf("FAIL: sharded session diverged from the unsharded merge "
                "set (%u vs %u commits, %llu vs %llu B after)\n",
                Sharded.Commits, Unsharded.Commits,
                (unsigned long long)Sharded.SizeAfter,
                (unsigned long long)Unsharded.SizeAfter);
    return 1;
  }
  if (Sharded.ShardCount < 2) {
    std::printf("FAIL: the heterogeneous pool produced only %u shard(s) — "
                "the workload no longer exercises sharding\n",
                Sharded.ShardCount);
    return 1;
  }

  JsonSummary Json("bench_sharded_sessions");
  Json.add("pool_functions", uint64_t(PoolFns));
  Json.add("commits", Unsharded.Commits);
  Json.add("reduction_pct", Unsharded.reductionPercent());
  Json.add("pairing_distance_calls", Unsharded.PairingDistanceCalls);
  Json.add("shards", Sharded.ShardCount);
  Json.add("shard_imbalance", Sharded.Imbalance);

  if (!timingEnabled()) {
    std::printf("PASS: identical merge sets (timing leg skipped: "
                "SALSSA_BENCH_NO_TIMING)\n");
    return 0;
  }

  // Timing leg: at 4 shards the sharded session must not lose to the
  // unsharded optimistic pipeline on the same thread budget. Up to 3
  // best-so-far attempts damp a noisy neighbour (the ctest registration
  // is additionally RUN_SERIAL so no sibling test competes for cores);
  // on <4-core machines both flavours degenerate toward serial, so like
  // bench_pipeline_scaling we only require the overhead to stay bounded
  // there instead of demanding a win the hardware cannot express.
  const unsigned HW = std::thread::hardware_concurrency();
  const double Allowed = HW >= 4 ? 1.0 : 1.10;
  double UnshardedBest = Unsharded.Seconds;
  double ShardedBest = Sharded.Seconds;
  for (int Attempt = 0; Attempt < 2 && ShardedBest > UnshardedBest * Allowed;
       ++Attempt) {
    UnshardedBest = std::min(UnshardedBest, runSession(PoolFns, 4, 1).Seconds);
    ShardedBest = std::min(ShardedBest, runSession(PoolFns, 4, 4).Seconds);
  }
  Json.add("unsharded_seconds", UnshardedBest);
  Json.add("sharded_seconds", ShardedBest);
  std::printf("best so far: unsharded %.3fs, sharded %.3fs (%.2fx, "
              "allowed ratio %.2f on %u hw cores)\n",
              UnshardedBest, ShardedBest, UnshardedBest / ShardedBest,
              Allowed, HW);
  if (ShardedBest > UnshardedBest * Allowed) {
    std::printf("FAIL: sharded session slower than unsharded at 4 shards "
                "(%.3fs vs %.3fs)\n",
                ShardedBest, UnshardedBest);
    return 1;
  }
  std::printf("PASS: sharded <= unsharded wall-clock, identical merge set\n");
  return 0;
}

int sweepMode() {
  const unsigned PoolFns = poolSize(512);
  printHeader("Sharded vs unsharded whole-program sessions, " +
              std::to_string(PoolFns) + " functions (4 suites x 2 TUs)");
  std::printf("%-8s %-8s %10s %10s %12s %10s %10s\n", "threads", "shards",
              "commits", "red %", "wall (s)", "speedup", "imbalance");
  printRule(74);
  bool Ok = true;
  for (unsigned NT : {1u, 4u, 8u}) {
    double UnshardedSecs = 0;
    for (unsigned Shards : {1u, 2u, 4u, 8u}) {
      SessionRun R = runSession(PoolFns, NT, Shards);
      Ok &= R.VerifierOk;
      if (Shards == 1)
        UnshardedSecs = R.Seconds;
      std::printf("%-8u %-8u %10u %9.2f%% %12.3f %9.2fx %10.2f\n", NT,
                  R.ShardCount, R.Commits, R.reductionPercent(), R.Seconds,
                  UnshardedSecs / std::max(1e-9, R.Seconds), R.Imbalance);
      std::fflush(stdout);
    }
    printRule(74);
  }
  std::printf("\nSharding runs whole pipelines — ranking, attempts, commits "
              "— concurrently over independent per-return-type partitions; "
              "the unsharded rows parallelize only the attempt stage and "
              "pay speculation waste. Identical merge sets throughout (the "
              "smoke mode enforces it).\n");
  return Ok ? 0 : 1;
}

} // namespace

int main(int argc, char **argv) {
  for (int I = 1; I < argc; ++I)
    if (std::strcmp(argv[I], "--smoke") == 0)
      return smokeMode();
  return sweepMode();
}
