//===- bench/bench_warm_cache.cpp - Fast path + decision cache payoff ----------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
// Measures the two cold-start shortcuts (per *Optimistic Global Function
// Merger*):
//
//   Leg A - structural-hash pre-clustering: a clone-heavy workload (>=25%
//           hash-identical functions) merged with and without
//           MergeDriverOptions::HashClustering. The fast path must cut
//           exact pairing-distance evaluations by >= 2x at no reduction
//           cost (direct thunks skip fid dispatch, so the clustered
//           module can only be smaller or equal).
//
//   Leg B - persistent decision cache: the same session run cold
//           (recording) and warm (replaying) through one
//           DecisionCachePath. The warm run must replay every entry —
//           zero pairing work, zero alignment bytes — and emit a
//           byte-identical merged module.
//
// Modes:
//   (default)  sweep: cold/warm wall-clock and work counters across
//              selection modes and shard counts on a 512-function pool.
//   --smoke    the acceptance bars above on a CI-sized pool; wall-clock
//              is reported but never gated (the counters are the
//              deterministic signal). Writes a JsonSummary
//              (SALSSA_BENCH_JSON): cache_hits, hash_cluster_commits,
//              cold_pairing_calls, warm_pairing_calls, reduction_pct.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"
#include "ir/IRPrinter.h"
#include <cstdio>
#include <cstring>

using namespace salssa;
using namespace salssa::bench;

namespace {

/// Clone-heavy pool: 60% of functions in families, zero drift — the
/// families are exact clones, the workload shape Leg A exists for.
BenchmarkProfile cloneHeavyProfile(unsigned NumFns) {
  BenchmarkProfile P;
  P.Name = "warm_cache";
  P.NumFunctions = NumFns;
  P.MinSize = 8;
  P.AvgSize = 42;
  P.MaxSize = 160;
  P.CloneFamilyPercent = 60;
  P.MinFamily = 3;
  P.MaxFamily = 6;
  P.FamilyDriftPercent = 0;
  P.LoopPercent = 45;
  P.RetTypeVariety = 4;
  P.Seed = 0xCAC4E;
  return P;
}

/// Drifted variant for Leg B: near-miss clones produce real multi-attempt
/// slates, so warm replay has non-winners to skip.
BenchmarkProfile driftedProfile(unsigned NumFns) {
  BenchmarkProfile P = cloneHeavyProfile(NumFns);
  P.Name = "warm_cache_drift";
  P.FamilyDriftPercent = 10;
  P.Seed = 0xCAC4F;
  return P;
}

struct CacheRun {
  MergeDriverStats Stats;
  uint64_t SizeBefore = 0;
  uint64_t SizeAfter = 0;
  std::string Print;
  bool VerifierOk = false;

  double reductionPercent() const {
    if (SizeBefore == 0)
      return 0;
    return 100.0 * (1.0 - double(SizeAfter) / double(SizeBefore));
  }
};

CacheRun runOnce(const BenchmarkProfile &P, MergeDriverOptions DO) {
  Context Ctx;
  std::unique_ptr<Module> M = buildBenchmarkModule(P, Ctx);
  CacheRun R;
  R.SizeBefore = estimateModuleSize(*M, DO.Arch);
  R.Stats = runFunctionMerging(*M, DO);
  R.SizeAfter = estimateModuleSize(*M, DO.Arch);
  R.Print = printModule(*M);
  R.VerifierOk = verifyModule(*M).ok();
  return R;
}

MergeDriverOptions baseOptions() {
  MergeDriverOptions DO;
  DO.Technique = MergeTechnique::SalSSA;
  DO.ExplorationThreshold = 3;
  return DO;
}

unsigned poolSize(unsigned Default) {
  unsigned Scale = benchScale();
  return Scale > 1 ? std::max(32u, Default / Scale) : Default;
}

int smokeMode() {
  const unsigned PoolFns = poolSize(192);
  printHeader("bench_warm_cache --smoke (pool " + std::to_string(PoolFns) +
              ")");

  // --- Leg A: structural-hash pre-clustering -----------------------------
  BenchmarkProfile Clones = cloneHeavyProfile(PoolFns);
  MergeDriverOptions Off = baseOptions();
  CacheRun Base = runOnce(Clones, Off);
  MergeDriverOptions On = Off;
  On.HashClustering = true;
  CacheRun Fast = runOnce(Clones, On);
  std::printf("clustering off: %u commits, %.2f%% reduction, %llu pairing "
              "calls, %.3fs\n",
              Base.Stats.CommittedMerges, Base.reductionPercent(),
              (unsigned long long)Base.Stats.PairingDistanceCalls,
              Base.Stats.TotalSeconds);
  std::printf("clustering on:  %u commits + %llu cluster groups, %.2f%% "
              "reduction, %llu pairing calls, %.3fs\n",
              Fast.Stats.CommittedMerges,
              (unsigned long long)Fast.Stats.HashClusterCommits,
              Fast.reductionPercent(),
              (unsigned long long)Fast.Stats.PairingDistanceCalls,
              Fast.Stats.TotalSeconds);
  if (!Base.VerifierOk || !Fast.VerifierOk) {
    std::printf("FAIL: verifier errors after merging\n");
    return 1;
  }
  if (Fast.Stats.HashClusterCommits == 0) {
    std::printf("FAIL: the clone-heavy pool produced no hash clusters — "
                "the workload no longer exercises the fast path\n");
    return 1;
  }
  if (Fast.Stats.PairingDistanceCalls * 2 > Base.Stats.PairingDistanceCalls) {
    std::printf("FAIL: pre-clustering must cut pairing distance calls by "
                ">= 2x (%llu vs %llu)\n",
                (unsigned long long)Fast.Stats.PairingDistanceCalls,
                (unsigned long long)Base.Stats.PairingDistanceCalls);
    return 1;
  }
  if (Fast.SizeAfter > Base.SizeAfter) {
    std::printf("FAIL: clustering lost reduction (%llu B vs %llu B after)\n",
                (unsigned long long)Fast.SizeAfter,
                (unsigned long long)Base.SizeAfter);
    return 1;
  }

  // --- Leg B: cold write / warm read -------------------------------------
  BenchmarkProfile Drifted = driftedProfile(PoolFns);
  const std::string CachePath = "bench_warm_cache.decisions.bin";
  std::remove(CachePath.c_str());
  MergeDriverOptions Cached = baseOptions();
  Cached.DecisionCachePath = CachePath;
  CacheRun Cold = runOnce(Drifted, Cached);
  CacheRun Warm = runOnce(Drifted, Cached);
  std::remove(CachePath.c_str());
  std::printf("cold: %u commits, %llu pairing calls, %zu peak align B, "
              "%.3fs\n",
              Cold.Stats.CommittedMerges,
              (unsigned long long)Cold.Stats.PairingDistanceCalls,
              Cold.Stats.PeakAlignmentBytes, Cold.Stats.TotalSeconds);
  std::printf("warm: %u commits, %llu hits / %llu misses / %llu skips, "
              "%llu pairing calls, %zu peak align B, %.3fs\n",
              Warm.Stats.CommittedMerges,
              (unsigned long long)Warm.Stats.CacheHits,
              (unsigned long long)Warm.Stats.CacheMisses,
              (unsigned long long)Warm.Stats.CacheSkips,
              (unsigned long long)Warm.Stats.PairingDistanceCalls,
              Warm.Stats.PeakAlignmentBytes, Warm.Stats.TotalSeconds);
  if (!Cold.VerifierOk || !Warm.VerifierOk) {
    std::printf("FAIL: verifier errors after merging\n");
    return 1;
  }
  if (Warm.Print != Cold.Print) {
    std::printf("FAIL: warm run is not byte-identical to its cold run\n");
    return 1;
  }
  if (Warm.Stats.CacheHits == 0 || Warm.Stats.CacheMisses != 0) {
    std::printf("FAIL: warm run must replay every entry (%llu hits, %llu "
                "misses)\n",
                (unsigned long long)Warm.Stats.CacheHits,
                (unsigned long long)Warm.Stats.CacheMisses);
    return 1;
  }
  if (Warm.Stats.PairingDistanceCalls >= Cold.Stats.PairingDistanceCalls ||
      Warm.Stats.PairingDistanceCalls != 0) {
    std::printf("FAIL: warm run must do zero pairing work (%llu vs cold "
                "%llu)\n",
                (unsigned long long)Warm.Stats.PairingDistanceCalls,
                (unsigned long long)Cold.Stats.PairingDistanceCalls);
    return 1;
  }
  if (Warm.Stats.PeakAlignmentBytes != 0) {
    std::printf("FAIL: warm run must do zero alignment work (%zu peak B)\n",
                Warm.Stats.PeakAlignmentBytes);
    return 1;
  }

  JsonSummary Json("bench_warm_cache");
  Json.add("pool_functions", uint64_t(PoolFns));
  Json.add("hash_cluster_commits", Fast.Stats.HashClusterCommits);
  Json.add("clustered_pairing_calls", Fast.Stats.PairingDistanceCalls);
  Json.add("baseline_pairing_calls", Base.Stats.PairingDistanceCalls);
  Json.add("cache_hits", Warm.Stats.CacheHits);
  Json.add("cache_skips", Warm.Stats.CacheSkips);
  Json.add("cold_pairing_calls", Cold.Stats.PairingDistanceCalls);
  Json.add("warm_pairing_calls", Warm.Stats.PairingDistanceCalls);
  Json.add("reduction_pct", Cold.reductionPercent());
  Json.add("cold_seconds", Cold.Stats.TotalSeconds);
  Json.add("warm_seconds", Warm.Stats.TotalSeconds);

  std::printf("PASS: >=2x pairing cut from clustering, warm replay "
              "byte-identical with zero alignment work\n");
  return 0;
}

int sweepMode() {
  const unsigned PoolFns = poolSize(512);
  printHeader("Cold vs warm decision-cache sessions, " +
              std::to_string(PoolFns) + " functions");
  std::printf("%-10s %-8s %-6s %10s %12s %12s %12s %10s\n", "selection",
              "shards", "run", "commits", "pairing", "align B", "hits",
              "wall (s)");
  printRule(88);
  bool Ok = true;
  BenchmarkProfile P = driftedProfile(PoolFns);
  for (SelectionStrategy Sel :
       {SelectionStrategy::Distance, SelectionStrategy::Profit,
        SelectionStrategy::Adaptive}) {
    for (unsigned Shards : {1u, 4u}) {
      const std::string CachePath = "bench_warm_cache.sweep.bin";
      std::remove(CachePath.c_str());
      MergeDriverOptions DO = baseOptions();
      DO.Selection = Sel;
      DO.ShardCount = Shards;
      DO.NumThreads = 4;
      DO.DecisionCachePath = CachePath;
      CacheRun Cold = runOnce(P, DO);
      CacheRun Warm = runOnce(P, DO);
      std::remove(CachePath.c_str());
      Ok &= Cold.VerifierOk && Warm.VerifierOk && Warm.Print == Cold.Print;
      std::printf("%-10s %-8u %-6s %10u %12llu %12zu %12llu %10.3f\n",
                  selectionName(Sel), Shards, "cold",
                  Cold.Stats.CommittedMerges,
                  (unsigned long long)Cold.Stats.PairingDistanceCalls,
                  Cold.Stats.PeakAlignmentBytes,
                  (unsigned long long)Cold.Stats.CacheHits,
                  Cold.Stats.TotalSeconds);
      std::printf("%-10s %-8u %-6s %10u %12llu %12zu %12llu %10.3f\n",
                  selectionName(Sel), Shards, "warm",
                  Warm.Stats.CommittedMerges,
                  (unsigned long long)Warm.Stats.PairingDistanceCalls,
                  Warm.Stats.PeakAlignmentBytes,
                  (unsigned long long)Warm.Stats.CacheHits,
                  Warm.Stats.TotalSeconds);
      std::fflush(stdout);
    }
    printRule(88);
  }
  std::printf("\nWarm rows replay the cold run's serial decisions: ranking "
              "and alignment drop to zero, codegen runs with the recorded "
              "alignment, and the merged module is byte-identical (the "
              "smoke mode enforces it).\n");
  return Ok ? 0 : 1;
}

} // namespace

int main(int argc, char **argv) {
  for (int I = 1; I < argc; ++I)
    if (std::strcmp(argv[I], "--smoke") == 0)
      return smokeMode();
  return sweepMode();
}
