//===- bench/bench_service_daemon.cpp - Daemon front-end overhead --------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
// Measures and gates the salssad socket front end (service/Daemon.h):
// the wire path must add protocol plumbing, not merge work.
//
// Modes:
//   (default)  sweep: per-epoch wall clock of the same edit script driven
//              in-process vs through the socket, plus a warm-restart
//              timing of the daemon's decision-cache replay.
//   --smoke    the deterministic acceptance bar (the CI daemon smoke):
//                - a 3-epoch edit script through a real socket lands
//                  byte-identical to the in-process MergeService at
//                  every epoch;
//                - a daemon restart on the same --decision-cache file
//                  warm-replays its first session (CacheHits > 0) to the
//                  byte-identical epoch-0 state;
//                - a protocol-fault soak (truncate/checksum/disconnect
//                  armed) completes with every request eventually served
//                  and zero wedged sessions, still byte-identical.
//              Wall-clock is reported (skipped under
//              SALSSA_BENCH_NO_TIMING) but never gated. Writes a
//              JsonSummary (SALSSA_BENCH_JSON): epochs_verified,
//              restart_cache_hits, soak_faults_injected,
//              soak_client_retries, wire_seconds, inprocess_seconds.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"
#include "ir/IRPrinter.h"
#include "merge/MergeService.h"
#include "service/Client.h"
#include "service/Daemon.h"
#include "support/Chrono.h"
#include "support/RNG.h"
#include "workloads/EditScript.h"
#include <cstdio>
#include <cstring>

using namespace salssa;
using namespace salssa::bench;

namespace {

BenchmarkProfile daemonProfile(unsigned NumFns) {
  BenchmarkProfile P;
  P.Name = "daemon_bench";
  P.NumFunctions = NumFns;
  P.MinSize = 6;
  P.AvgSize = 36;
  P.MaxSize = 120;
  P.CloneFamilyPercent = 55;
  P.MinFamily = 2;
  P.MaxFamily = 4;
  P.FamilyDriftPercent = 10;
  P.LoopPercent = 50;
  P.RetTypeVariety = 3;
  P.Seed = 9001;
  return P;
}

EditScriptOptions editOptions(unsigned NumSteps) {
  EditScriptOptions EO;
  EO.NumSteps = NumSteps;
  EO.ChangesPerStep = 3;
  EO.AddsPerStep = 1;
  EO.DeletesPerStep = 1;
  EO.Generate.TargetSize = 30;
  EO.Generate.RetTypeVariety = 3;
  EO.Seed = 314;
  return EO;
}

unsigned poolSize(unsigned Default) {
  unsigned Scale = benchScale();
  return Scale > 1 ? std::max(26u, Default / Scale) : Default;
}

bool timingEnabled() {
  return std::getenv("SALSSA_BENCH_NO_TIMING") == nullptr;
}

std::vector<Module *> modsOf(const ModuleGroup &Group) {
  std::vector<Module *> Mods;
  for (size_t I = 0; I < Group.size(); ++I)
    Mods.push_back(&Group[I]);
  return Mods;
}

std::string groupPrints(const std::vector<Module *> &Mods) {
  std::string Prints;
  for (Module *M : Mods)
    Prints += printModule(*M);
  return Prints;
}

uint64_t digestOf(const std::string &Prints) {
  return fnv1a64(reinterpret_cast<const uint8_t *>(Prints.data()),
                 Prints.size());
}

std::string benchSocket(const std::string &Tag) {
  std::string Path = "salssa_bench_" + Tag + ".sock";
  std::remove(Path.c_str());
  return Path;
}

RegisterModulesRequest registerRequest(const BenchmarkProfile &P) {
  RegisterModulesRequest RM;
  RM.Profile = P;
  RM.NumModules = 2;
  RM.ExplorationThreshold = 3;
  return RM;
}

ClientOptions clientOptions(const std::string &Socket) {
  ClientOptions CO;
  CO.SocketPath = Socket;
  CO.MaxRetries = 10;
  CO.BackoffBaseMillis = 2;
  CO.BackoffMaxMillis = 50;
  return CO;
}

/// In-process twin session over its own group copy.
struct InProcess {
  Context Ctx;
  ModuleGroup Group;
  std::vector<Module *> Mods;
  std::unique_ptr<MergeService> Svc;

  explicit InProcess(const BenchmarkProfile &P) {
    Group = buildBenchmarkModuleGroup(P, Ctx, 2);
    Mods = modsOf(Group);
    MergeServiceOptions SO;
    SO.Driver.ExplorationThreshold = 3;
    Svc = std::make_unique<MergeService>(SO);
    for (Module *M : Mods)
      Svc->addModule(*M);
    Svc->initialize();
  }

  void applySpec(const EditStepSpec &Spec) {
    MergeService::DeltaBatch Batch = Svc->beginDelta();
    AppliedEditStep A = applyEditStep(
        Mods, Spec, [&](Function *F) { Batch.checkoutForEdit(F); });
    MergeDelta D;
    D.Changed = A.Changed;
    D.Added = A.Added;
    D.Deleted = A.Deleted;
    Batch.apply(D);
  }
};

int smokeMode() {
  const unsigned PoolFns = poolSize(26);
  printHeader("bench_service_daemon --smoke (pool " +
              std::to_string(PoolFns) + " x 2 modules, 3 epochs)");
  BenchmarkProfile P = daemonProfile(PoolFns);
  EditScript Script = [&] {
    Context Ctx;
    ModuleGroup Group = buildBenchmarkModuleGroup(P, Ctx, 2);
    return EditScript(modsOf(Group), editOptions(3));
  }();

  // --- Leg 1: socket differential -----------------------------------------
  unsigned EpochsVerified = 0;
  double WireSeconds = 0, InprocSeconds = 0;
  {
    std::string Socket = benchSocket("diff");
    DaemonOptions DOpts;
    DOpts.SocketPath = Socket;
    Daemon D(DOpts);
    if (!D.start()) {
      std::printf("FAIL: daemon start: %s\n", D.lastError().c_str());
      return 1;
    }
    InProcess Twin(P);
    DaemonClient Client(clientOptions(Socket));
    StatsSnapshot Init;
    DaemonClient::Result R = Client.registerModules(registerRequest(P), Init);
    if (!R.TransportOk || R.Status != StatusCode::Ok) {
      std::printf("FAIL: register: %s\n", R.ErrorMessage.c_str());
      return 1;
    }
    if (Init.ModuleDigest != digestOf(groupPrints(Twin.Mods))) {
      std::printf("FAIL: epoch 0 diverged over the wire\n");
      return 1;
    }
    ++EpochsVerified;
    for (unsigned S = 0; S < Script.numSteps(); ++S) {
      EditStepSpec Spec = Script.stepSpec(S);
      ApplyDeltaResponse Resp;
      auto TW = std::chrono::steady_clock::now();
      R = Client.applyStep(Spec, mix64(0xBE7C + S), Resp);
      WireSeconds += secondsSince(TW);
      if (!R.TransportOk || R.Status != StatusCode::Ok) {
        std::printf("FAIL: step %u: %s\n", S, R.ErrorMessage.c_str());
        return 1;
      }
      auto TI = std::chrono::steady_clock::now();
      Twin.applySpec(Spec);
      InprocSeconds += secondsSince(TI);
      if (Resp.Stats.ModuleDigest != digestOf(groupPrints(Twin.Mods))) {
        std::printf("FAIL: epoch %u diverged over the wire\n", S + 1);
        return 1;
      }
      ++EpochsVerified;
    }
    QueryStatsResponse Final;
    R = Client.queryStats(true, Final);
    if (!R.TransportOk || R.Status != StatusCode::Ok ||
        Final.Prints != groupPrints(Twin.Mods)) {
      std::printf("FAIL: final module text differs from in-process\n");
      return 1;
    }
    D.stop();
    std::printf("socket differential: %u epochs byte-identical\n",
                EpochsVerified);
    if (timingEnabled())
      std::printf("wall-clock (not gated): wire %.3fs vs in-process %.3fs "
                  "over %u deltas\n",
                  WireSeconds, InprocSeconds, Script.numSteps());
  }

  // --- Leg 2: warm restart through the decision cache ----------------------
  uint64_t RestartCacheHits = 0;
  {
    std::string Cache = "salssa_bench_daemon_cache.bin";
    std::remove(Cache.c_str());
    std::string Socket = benchSocket("restart");
    DaemonOptions DOpts;
    DOpts.SocketPath = Socket;
    DOpts.Defaults.Driver.DecisionCachePath = Cache;
    uint64_t ColdDigest = 0;
    {
      Daemon A(DOpts);
      if (!A.start()) {
        std::printf("FAIL: daemon A start: %s\n", A.lastError().c_str());
        return 1;
      }
      DaemonClient Client(clientOptions(Socket));
      StatsSnapshot Init;
      DaemonClient::Result R =
          Client.registerModules(registerRequest(P), Init);
      if (!R.TransportOk || R.Status != StatusCode::Ok) {
        std::printf("FAIL: cold register: %s\n", R.ErrorMessage.c_str());
        return 1;
      }
      ColdDigest = Init.ModuleDigest;
      A.stop();
    }
    {
      Daemon B(DOpts);
      if (!B.start()) {
        std::printf("FAIL: daemon B start: %s\n", B.lastError().c_str());
        return 1;
      }
      DaemonClient Client(clientOptions(Socket));
      StatsSnapshot Warm;
      DaemonClient::Result R =
          Client.registerModules(registerRequest(P), Warm);
      if (!R.TransportOk || R.Status != StatusCode::Ok) {
        std::printf("FAIL: warm register: %s\n", R.ErrorMessage.c_str());
        return 1;
      }
      if (Warm.CacheHits == 0) {
        std::printf("FAIL: restarted daemon did not warm-replay "
                    "(CacheHits == 0)\n");
        return 1;
      }
      if (Warm.ModuleDigest != ColdDigest) {
        std::printf("FAIL: warm-replayed session is not byte-identical\n");
        return 1;
      }
      RestartCacheHits = Warm.CacheHits;
      B.stop();
    }
    std::remove(Cache.c_str());
    std::printf("warm restart: replayed with %llu cache hits, "
                "byte-identical epoch 0\n",
                (unsigned long long)RestartCacheHits);
  }

  // --- Leg 3: protocol-fault soak ------------------------------------------
  uint64_t SoakFaults = 0, SoakRetries = 0;
  {
    std::string Socket = benchSocket("soak");
    DaemonOptions DOpts;
    DOpts.SocketPath = Socket;
    DOpts.Faults.Seed = 1234;
    DOpts.Faults.setRate(FaultKind::Protocol, 250);
    Daemon D(DOpts);
    if (!D.start()) {
      std::printf("FAIL: soak daemon start: %s\n", D.lastError().c_str());
      return 1;
    }
    InProcess Twin(P);
    DaemonClient Client(clientOptions(Socket));
    StatsSnapshot Init;
    DaemonClient::Result R = Client.registerModules(registerRequest(P), Init);
    if (!R.TransportOk || R.Status != StatusCode::Ok) {
      std::printf("FAIL: soak register: %s\n", R.ErrorMessage.c_str());
      return 1;
    }
    for (unsigned S = 0; S < Script.numSteps(); ++S) {
      EditStepSpec Spec = Script.stepSpec(S);
      ApplyDeltaResponse Resp;
      R = Client.applyStep(Spec, mix64(0x50AC + S), Resp);
      if (!R.TransportOk || R.Status != StatusCode::Ok) {
        std::printf("FAIL: soak step %u never landed: %s\n", S,
                    R.ErrorMessage.c_str());
        return 1;
      }
      Twin.applySpec(Spec);
      if (Resp.Stats.ModuleDigest != digestOf(groupPrints(Twin.Mods))) {
        std::printf("FAIL: soak epoch %u diverged\n", S + 1);
        return 1;
      }
    }
    // Zero wedged sessions: a fresh client gets the lease immediately.
    DaemonClient Probe(clientOptions(Socket));
    ApplyDeltaResponse Empty;
    EditStepSpec Noop;
    R = Probe.applyStep(Noop, 0xF1A8, Empty);
    if (!R.TransportOk || R.Status != StatusCode::Ok) {
      std::printf("FAIL: daemon wedged after the soak\n");
      return 1;
    }
    DaemonCounters C = D.counters();
    SoakFaults = C.ProtocolFaultsInjected;
    SoakRetries = Client.retriesUsed() + Probe.retriesUsed();
    D.stop();
    if (SoakFaults == 0) {
      std::printf("FAIL: the soak injected no protocol faults — the leg "
                  "no longer exercises the containment\n");
      return 1;
    }
    std::printf("fault soak: %llu faults injected, %llu client retries, "
                "0 wedged sessions, end state byte-identical\n",
                (unsigned long long)SoakFaults,
                (unsigned long long)SoakRetries);
  }

  std::printf("PASS\n");
  JsonSummary Json("bench_service_daemon");
  Json.add("pool_functions", uint64_t(PoolFns) * 2);
  Json.add("epochs_verified", uint64_t(EpochsVerified));
  Json.add("restart_cache_hits", RestartCacheHits);
  Json.add("soak_faults_injected", SoakFaults);
  Json.add("soak_client_retries", SoakRetries);
  if (timingEnabled()) {
    Json.add("wire_seconds", WireSeconds);
    Json.add("inprocess_seconds", InprocSeconds);
  }
  return 0;
}

int sweepMode() {
  const unsigned PoolFns = poolSize(96);
  printHeader("bench_service_daemon sweep (pool " + std::to_string(PoolFns) +
              " x 2 modules)");
  BenchmarkProfile P = daemonProfile(PoolFns);
  EditScript Script = [&] {
    Context Ctx;
    ModuleGroup Group = buildBenchmarkModuleGroup(P, Ctx, 2);
    return EditScript(modsOf(Group), editOptions(4));
  }();

  std::string Socket = benchSocket("sweep");
  DaemonOptions DOpts;
  DOpts.SocketPath = Socket;
  Daemon D(DOpts);
  if (!D.start()) {
    std::printf("FAIL: daemon start: %s\n", D.lastError().c_str());
    return 1;
  }
  InProcess Twin(P);
  DaemonClient Client(clientOptions(Socket));
  StatsSnapshot Init;
  if (!Client.registerModules(registerRequest(P), Init).TransportOk) {
    std::printf("FAIL: register\n");
    return 1;
  }
  std::printf("%-8s %14s %14s %12s\n", "epoch", "wire (s)", "in-proc (s)",
              "overhead");
  printRule(52);
  for (unsigned S = 0; S < Script.numSteps(); ++S) {
    EditStepSpec Spec = Script.stepSpec(S);
    ApplyDeltaResponse Resp;
    auto TW = std::chrono::steady_clock::now();
    Client.applyStep(Spec, mix64(0x5EE7 + S), Resp);
    double Wire = secondsSince(TW);
    auto TI = std::chrono::steady_clock::now();
    Twin.applySpec(Spec);
    double Inproc = secondsSince(TI);
    std::printf("%-8u %14.4f %14.4f %11.1f%%\n", S + 1, Wire, Inproc,
                Inproc > 0 ? 100.0 * (Wire - Inproc) / Inproc : 0.0);
  }
  D.stop();
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  bool Smoke = false;
  for (int I = 1; I < argc; ++I)
    if (std::strcmp(argv[I], "--smoke") == 0)
      Smoke = true;
  return Smoke ? smokeMode() : sweepMode();
}
