//===- bench/bench_fault_containment.cpp - Fault soak & containment cost -------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
// Measures the failure-containment machinery (attempt guard, budget
// gates, commit firewall, quarantine ladder — src/merge/README.md) from
// two angles:
//
//   1. What does a healthy session pay for it? The guard/firewall path
//      is always on; the zero-fault armed run must cost the same as the
//      disarmed run (and stay bit-identical, which the smoke enforces).
//   2. How does a session degrade as the world gets hostile? A fault
//      ladder sweeps the alignment-throw rate and reports how commits,
//      contained failures and size reduction respond. The paper's
//      pipeline assumes attempts never fail; this is the series that
//      shows the session surviving when they do.
//
// Modes:
//   (default)  the fault ladder: align-throw rates {0, 50, 100, 200,
//              500, 1000} per-mille on a heterogeneous whole-program
//              group (4 shards x 4 threads), reporting commits,
//              contained attempts, quarantines and reduction.
//   --smoke    the acceptance soak: the mixed-fault configuration
//              (every kind armed, >=10% of attempts faulting) on the
//              sharded parallel session must complete, produce
//              verifier-clean modules, still commit merges, and be
//              deterministic (two runs, identical merges/records/module
//              bytes); the zero-fault armed run must match the disarmed
//              run bit for bit. Purely deterministic — runs under every
//              sanitizer. Writes a JsonSummary (SALSSA_BENCH_JSON).
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "merge/CrossModuleMerger.h"
#include <cstring>

using namespace salssa;
using namespace salssa::bench;

namespace {

/// Two suites x ~half the pool each, several return-type classes, split
/// across 2 TUs — the sharded whole-program shape, sized for CI time.
std::vector<BenchmarkProfile> soakSuites(unsigned Total) {
  const unsigned Each = std::max(8u, Total / 2);
  auto P = [&](const char *Name, uint64_t Seed, unsigned Variety,
               unsigned AvgSize) {
    BenchmarkProfile B;
    B.Name = Name;
    B.NumFunctions = Each;
    B.MinSize = 6;
    B.AvgSize = AvgSize;
    B.MaxSize = 4 * AvgSize;
    B.CloneFamilyPercent = 55;
    B.MinFamily = 2;
    B.MaxFamily = 6;
    B.FamilyDriftPercent = 10;
    B.LoopPercent = 50;
    B.RetTypeVariety = Variety;
    B.Seed = Seed;
    return B;
  };
  return {P("soak_a", 0xFA01, 4, 45), P("soak_b", 0xFA02, 3, 55)};
}

/// The acceptance arming: every fault kind live, tuned so well over 10%
/// of attempts fail (the smoke asserts the floor, not the tuning).
FaultInjectionConfig soakFaults() {
  FaultInjectionConfig F;
  F.Seed = 0x50AC;
  F.setRate(FaultKind::AlignmentThrow, 120);
  F.setRate(FaultKind::CodeGenCorruption, 80);
  F.setRate(FaultKind::TaskFailure, 60);
  F.setRate(FaultKind::BudgetBlowout, 50);
  return F;
}

struct SoakRun {
  MergeDriverStats Driver;
  uint64_t SizeBefore = 0;
  uint64_t SizeAfter = 0;
  std::string Prints;
  std::string RecordTrace;
  bool VerifierOk = true;

  double reductionPercent() const {
    if (SizeBefore == 0)
      return 0;
    return 100.0 * (1.0 - double(SizeAfter) / double(SizeBefore));
  }
  unsigned contained() const {
    return Driver.AttemptFailures + Driver.BudgetRejects +
           Driver.VerifierRejects;
  }
};

SoakRun runSoak(unsigned Total, const FaultInjectionConfig &Faults,
                unsigned NumThreads = 4, unsigned Shards = 4) {
  Context Ctx;
  ModuleGroup Group = buildSuiteModuleGroup(soakSuites(Total), Ctx, 2);
  MergeDriverOptions DO;
  DO.ExplorationThreshold = 2;
  DO.NumThreads = NumThreads;
  DO.ShardCount = Shards;
  DO.Faults = Faults;
  CrossModuleMerger Session(DO);
  for (size_t I = 0; I < Group.size(); ++I)
    Session.addModule(Group[I]);
  CrossModuleStats S = Session.run();
  SoakRun R;
  R.Driver = S.Driver;
  R.SizeBefore = S.SizeBefore;
  R.SizeAfter = S.SizeAfter;
  for (const MergeRecord &Rec : S.Driver.Records)
    R.RecordTrace += Rec.Name1 + "|" + Rec.Name2 + "|" +
                     std::to_string(Rec.Committed) + "|" +
                     std::to_string(unsigned(Rec.Stats.Outcome)) + "\n";
  for (size_t I = 0; I < Group.size(); ++I) {
    R.Prints += printModule(Group[I]);
    R.VerifierOk = R.VerifierOk && verifyModule(Group[I]).ok();
  }
  return R;
}

bool sameMergeSet(const SoakRun &A, const SoakRun &B) {
  return A.Driver.CommittedMerges == B.Driver.CommittedMerges &&
         A.SizeAfter == B.SizeAfter && A.RecordTrace == B.RecordTrace &&
         A.Prints == B.Prints;
}

unsigned poolSize(unsigned Default) {
  unsigned Scale = benchScale();
  return Scale > 1 ? std::max(32u, Default / Scale) : Default;
}

int smokeMode() {
  const unsigned PoolFns = poolSize(256);
  printHeader("bench_fault_containment --smoke (pool " +
              std::to_string(PoolFns) + ", 4 shards x 4 threads)");

  // Leg 1: zero-fault bit-identity — arming the machinery with every
  // rate at 0 must change nothing about a healthy session.
  SoakRun Plain = runSoak(PoolFns, FaultInjectionConfig());
  FaultInjectionConfig ZeroArmed;
  ZeroArmed.Seed = 1; // armed, every rate 0
  SoakRun Armed = runSoak(PoolFns, ZeroArmed);
  if (!sameMergeSet(Plain, Armed)) {
    std::printf("FAIL: zero-rate arming changed the merge set (%u vs %u "
                "commits)\n",
                Armed.Driver.CommittedMerges, Plain.Driver.CommittedMerges);
    return 1;
  }
  std::printf("zero-fault: %u commits, %.2f%% reduction — armed run "
              "bit-identical\n",
              Plain.Driver.CommittedMerges, Plain.reductionPercent());

  // Leg 2: the soak. Mixed faults, sharded, parallel; the session must
  // finish, stay verifier-clean, keep committing, and reproduce itself.
  SoakRun Faulted = runSoak(PoolFns, soakFaults());
  std::printf("faulted:    %u commits, %.2f%% reduction; contained "
              "%u/%u attempts (%u thrown, %u budget, %u firewalled), "
              "%u quarantined, %u task deaths\n",
              Faulted.Driver.CommittedMerges, Faulted.reductionPercent(),
              Faulted.contained(), Faulted.Driver.Attempts,
              Faulted.Driver.AttemptFailures, Faulted.Driver.BudgetRejects,
              Faulted.Driver.VerifierRejects,
              Faulted.Driver.QuarantinedFunctions,
              Faulted.Driver.TaskFailures);
  if (!Faulted.VerifierOk) {
    std::printf("FAIL: faulted session left verifier errors behind\n");
    return 1;
  }
  if (Faulted.contained() * 10 < Faulted.Driver.Attempts) {
    std::printf("FAIL: soak faulted only %u of %u attempts — under the "
                "10%% acceptance floor; retune the rates\n",
                Faulted.contained(), Faulted.Driver.Attempts);
    return 1;
  }
  if (Faulted.Driver.CommittedMerges == 0) {
    std::printf("FAIL: the faulted session committed nothing\n");
    return 1;
  }
  SoakRun Again = runSoak(PoolFns, soakFaults());
  if (!sameMergeSet(Faulted, Again)) {
    std::printf("FAIL: the faulted session is not deterministic\n");
    return 1;
  }

  JsonSummary Json("bench_fault_containment");
  Json.add("pool_functions", uint64_t(PoolFns));
  Json.add("clean_commits", Plain.Driver.CommittedMerges);
  Json.add("clean_reduction_pct", Plain.reductionPercent());
  Json.add("faulted_commits", Faulted.Driver.CommittedMerges);
  Json.add("faulted_reduction_pct", Faulted.reductionPercent());
  Json.add("faulted_attempts", Faulted.Driver.Attempts);
  Json.add("contained_failures", Faulted.contained());
  Json.add("quarantined", Faulted.Driver.QuarantinedFunctions);

  std::printf("PASS: soak complete, verifier-clean, deterministic; "
              "zero-fault arming bit-identical\n");
  return 0;
}

int ladderMode() {
  const unsigned PoolFns = poolSize(256);
  printHeader("Fault ladder: session degradation vs alignment-throw rate, " +
              std::to_string(PoolFns) + " functions (4 shards x 4 threads)");
  std::printf("%-10s %10s %10s %12s %12s %10s\n", "rate ‰", "commits",
              "contained", "quarantined", "red %", "wall (s)");
  printRule(70);
  bool Ok = true;
  for (unsigned Rate : {0u, 50u, 100u, 200u, 500u, 1000u}) {
    FaultInjectionConfig F;
    F.Seed = 0x50AC;
    F.setRate(FaultKind::AlignmentThrow, Rate);
    SoakRun R = runSoak(PoolFns, F);
    Ok &= R.VerifierOk;
    std::printf("%-10u %10u %10u %12u %11.2f%% %10.3f\n", Rate,
                R.Driver.CommittedMerges, R.contained(),
                R.Driver.QuarantinedFunctions, R.reductionPercent(),
                R.Driver.TotalSeconds);
    std::fflush(stdout);
  }
  printRule(70);
  std::printf("\nEvery attempt the ladder kills is a skipped pair, never a "
              "dead session: commits and reduction decay smoothly toward "
              "zero while the verifier stays clean throughout. At 1000‰ "
              "the quarantine ladder retires the whole pool after %u "
              "strikes per function.\n",
              MergeDriverOptions().QuarantineThreshold);
  return Ok ? 0 : 1;
}

} // namespace

int main(int argc, char **argv) {
  for (int I = 1; I < argc; ++I)
    if (std::strcmp(argv[I], "--smoke") == 0)
      return smokeMode();
  return ladderMode();
}
