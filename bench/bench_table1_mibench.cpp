//===- bench/bench_table1_mibench.cpp - Table 1 --------------------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
// Table 1 of the paper: per-MiBench-program function counts, function size
// statistics (just before merging) and the number of merge operations
// applied by FMSA[t=1] and SalSSA[t=1]. The headline shape: SalSSA commits
// strictly more merges than FMSA on every program where merging applies.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

using namespace salssa;
using namespace salssa::bench;

int main() {
  printHeader("Table 1: MiBench functions and merge operations (t=1)");
  std::printf("%-14s %6s %18s %10s %12s\n", "benchmark", "#fns",
              "min/avg/max size", "FMSA[t=1]", "SalSSA[t=1]");
  printRule(66);

  unsigned TotalF = 0, TotalS = 0;
  for (const BenchmarkProfile &P : mibenchProfiles()) {
    BenchmarkProfile SP = scaled(P);
    // Function size statistics before merging.
    Context Ctx;
    std::unique_ptr<Module> M = buildBenchmarkModule(SP, Ctx);
    unsigned N = 0;
    size_t Min = SIZE_MAX, Max = 0, Sum = 0;
    for (Function *F : M->functions()) {
      if (F->isDeclaration())
        continue;
      size_t S = F->getInstructionCount();
      Min = std::min(Min, S);
      Max = std::max(Max, S);
      Sum += S;
      ++N;
    }
    SuiteResult RF = runConfiguration(SP, MergeTechnique::FMSA, 1,
                                      TargetArch::ThumbLike);
    SuiteResult RS = runConfiguration(SP, MergeTechnique::SalSSA, 1,
                                      TargetArch::ThumbLike);
    TotalF += RF.Driver.CommittedMerges;
    TotalS += RS.Driver.CommittedMerges;
    char SizeBuf[40];
    std::snprintf(SizeBuf, sizeof(SizeBuf), "%zu/%.1f/%zu", Min,
                  N ? double(Sum) / N : 0.0, Max);
    std::printf("%-14s %6u %18s %10u %12u\n", P.Name.c_str(), N, SizeBuf,
                RF.Driver.CommittedMerges, RS.Driver.CommittedMerges);
  }
  printRule(66);
  std::printf("%-14s %25s %10u %12u\n", "total", "", TotalF, TotalS);
  std::printf("\npaper totals: FMSA 279, SalSSA 482 committed merges; "
              "SalSSA >= FMSA on every program\n");
  return 0;
}
