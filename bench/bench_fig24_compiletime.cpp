//===- bench/bench_fig24_compiletime.cpp - Figure 24 ---------------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
// Figure 24 of the paper: end-to-end compile time with function merging,
// normalized to the baseline compilation without merging, for t = 1, 5,
// 10 on SPEC CPU2006. The baseline "compilation" here is the rest of our
// pipeline (verification, clean-up simplification, size lowering); the
// merging pass time is measured by the driver. The paper's shape to
// reproduce: SalSSA's overhead is about 3x smaller than FMSA's at every
// threshold (paper GMeans: FMSA 14/44/66%, SalSSA 5/12/18%).
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"
#include "transforms/Simplify.h"
#include <chrono>

using namespace salssa;
using namespace salssa::bench;

namespace {

/// The non-merging part of the pipeline, timed: what "compilation"
/// costs without FM. Run over a fresh module.
double baselineCompileSeconds(const BenchmarkProfile &P) {
  Context Ctx;
  std::unique_ptr<Module> M = buildBenchmarkModule(P, Ctx);
  auto T0 = std::chrono::steady_clock::now();
  for (Function *F : M->functions())
    if (!F->isDeclaration())
      simplifyFunction(*F, Ctx);
  verifyModule(*M);
  volatile uint64_t Sink = estimateModuleSize(*M, TargetArch::X86Like);
  (void)Sink;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       T0)
      .count();
}

} // namespace

int main() {
  printHeader("Figure 24: compile time normalized to no-merging baseline, "
              "SPEC CPU2006");
  const unsigned Thresholds[] = {1, 5, 10};
  std::printf("%-18s", "benchmark");
  for (const char *Tech : {"FMSA", "SalSSA"})
    for (unsigned T : Thresholds)
      std::printf(" %6s[%2u]", Tech, T);
  std::printf("\n");
  printRule(86);

  std::vector<std::vector<double>> Columns(6);
  for (const BenchmarkProfile &P : spec2006Profiles()) {
    BenchmarkProfile SP = scaled(P);
    double Base = baselineCompileSeconds(SP);
    std::printf("%-18s", P.Name.c_str());
    unsigned Col = 0;
    for (MergeTechnique Tech :
         {MergeTechnique::FMSA, MergeTechnique::SalSSA}) {
      for (unsigned T : Thresholds) {
        SuiteResult R =
            runConfiguration(SP, Tech, T, TargetArch::X86Like);
        double Normalized =
            Base > 0 ? (Base + R.Driver.TotalSeconds) / Base : 1.0;
        std::printf(" %9.2fx", Normalized);
        std::fflush(stdout);
        Columns[Col++].push_back(Normalized);
      }
    }
    std::printf("\n");
  }
  printRule(86);
  std::printf("%-18s", "GMean");
  for (unsigned C = 0; C < 6; ++C)
    std::printf(" %9.2fx", geomean(Columns[C]));
  std::printf("\npaper reports GMean overhead: FMSA +14/+44/+66%%, SalSSA "
              "+5/+12/+18%% (3-3.7x lower); our thin baseline pipeline "
              "makes absolute ratios larger, but the FMSA-to-SalSSA "
              "overhead ratio is the reproduced shape\n");
  return 0;
}
