//===- bench/bench_canonical_recall.cpp - Canonical shadow view recall ---------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
// Measures what the canonical shadow view (MergeDriverOptions::
// Canonicalize, transforms/Canonicalize.h) buys on a drift-heavy pool:
// clone families whose members are interpreter-equivalent but spelled
// differently (commuted operands, rotated chains, add/sub constant
// flips, dead stores, redundant recomputes — workloads/RandomFunction.h
// SyntacticPercent). Raw
// fingerprints see the spelling noise and rank siblings poorly; the
// canonical view collapses the noise, so the same ranking machinery
// rediscovers the families.
//
// Ground truth for "family" comes from the generator's own emission
// order: a family is a base "_fn<n>" followed by its drift clones
// "_fam<id>_v<k>" (see buildFamilyMap), and a committed record between
// two members recovers the family. Small pair-families in a narrow size
// band are the regime where ranking actually breaks: a 14-instruction
// body is histogram-generic (adds, compares, branches), so the whole
// pool sits within a few Manhattan units — a couple of add/sub spelling
// flips plus a dead store push the true sibling past a handful of
// strangers, at t=1 that slot is spent on an unprofitable stranger, and
// with only two members the family has no second chance.
//
// Modes:
//   (default)  sweep: recall/reduction for raw vs canonical discovery
//              across selection modes and exploration thresholds.
//   --smoke    acceptance bars on a CI-sized pool:
//                - canonical recall >= 2x raw recall (committed drift
//                  families), and at least 2 families recovered;
//                - canonical reduction strictly better than raw;
//                - off path (Canonicalize explicitly false) byte-identical
//                  to a default-options run across selection modes x
//                  threads x shards;
//                - canonical-on merged module behaviourally equal to the
//                  pristine pool (interpreter differential).
//              Wall-clock is reported but never gated. Writes a
//              JsonSummary (SALSSA_BENCH_JSON): families_total,
//              recall_raw, recall_canonical, reduction_pct, seconds.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"
#include "interp/Interpreter.h"
#include "ir/IRPrinter.h"
#include "transforms/Canonicalize.h"
#include <cstdio>
#include <cstring>
#include <map>
#include <set>
#include <string>

using namespace salssa;
using namespace salssa::bench;

namespace {

/// Drift-family pool: small, histogram-generic functions in a *narrow*
/// size band, 60% in base+clone *pairs* with zero semantic drift and
/// 50% syntactic drift — every family is two equivalent-but-differently-
/// spelled functions. The narrow band packs strangers within a few
/// Manhattan units of each other, pair families give ranking no second
/// chances (a family of four survives one upset; a pair does not), and
/// one return-type class keeps the whole pool competing in one dense
/// ranking space. That is what makes raw spelling noise expensive.
BenchmarkProfile driftPoolProfile(unsigned NumFns) {
  BenchmarkProfile P;
  P.Name = "canon_recall";
  P.NumFunctions = NumFns;
  P.MinSize = 12;
  P.AvgSize = 14;
  P.MaxSize = 16;
  P.CloneFamilyPercent = 60;
  P.MinFamily = 2;
  P.MaxFamily = 2;
  P.FamilyDriftPercent = 0;
  P.SyntacticDriftPercent = 50;
  P.LoopPercent = 45;
  P.RetTypeVariety = 1;
  P.Seed = 0xCA201;
  return P;
}

/// Family id parsed from a generator clone name "<pool>_fam<id>_v<k>",
/// or -1 for base/independent functions.
int familyOf(const std::string &Name) {
  size_t Pos = Name.rfind("_fam");
  if (Pos == std::string::npos)
    return -1;
  size_t End = Name.find("_v", Pos + 4);
  if (End == std::string::npos || End == Pos + 4)
    return -1;
  return std::atoi(Name.substr(Pos + 4, End - Pos - 4).c_str());
}

/// Name -> family id for every family member, *including the base*: the
/// generator emits a family as base "_fn<n>" immediately followed by its
/// clones "_fam<id>_v<k>" (workloads/Suites.cpp), so the definition
/// preceding a family's first clone is its base — equivalent to the
/// clones and just as legitimate a recovery target.
std::map<std::string, int> buildFamilyMap(const Module &M) {
  std::map<std::string, int> Fam;
  std::string PrevDef;
  for (const Function *F : M.functions()) {
    if (F->isDeclaration())
      continue;
    int Id = familyOf(F->getName());
    if (Id >= 0) {
      Fam[F->getName()] = Id;
      if (!PrevDef.empty() && !Fam.count(PrevDef))
        Fam[PrevDef] = Id;
    }
    PrevDef = F->getName();
  }
  return Fam;
}

struct RecallRun {
  MergeDriverStats Stats;
  uint64_t SizeBefore = 0;
  uint64_t SizeAfter = 0;
  unsigned FamiliesTotal = 0;
  unsigned FamiliesRecovered = 0;
  std::string Print;
  bool VerifierOk = false;

  double reductionPercent() const {
    if (SizeBefore == 0)
      return 0;
    return 100.0 * (1.0 - double(SizeAfter) / double(SizeBefore));
  }
  double recallPercent() const {
    return FamiliesTotal == 0
               ? 0
               : 100.0 * double(FamiliesRecovered) / double(FamiliesTotal);
  }
};

RecallRun runOnce(const BenchmarkProfile &P, MergeDriverOptions DO) {
  Context Ctx;
  std::unique_ptr<Module> M = buildBenchmarkModule(P, Ctx);

  // Ground truth: families with at least two members (base + clones) —
  // only those can produce an intra-family commit record.
  std::map<std::string, int> Fam = buildFamilyMap(*M);
  std::map<int, unsigned> MembersPerFamily;
  for (const auto &KV : Fam)
    ++MembersPerFamily[KV.second];
  RecallRun R;
  for (const auto &KV : MembersPerFamily)
    if (KV.second >= 2)
      ++R.FamiliesTotal;
  R.SizeBefore = estimateModuleSize(*M, DO.Arch);
  R.Stats = runFunctionMerging(*M, DO);
  R.SizeAfter = estimateModuleSize(*M, DO.Arch);
  R.Print = printModule(*M);
  R.VerifierOk = verifyModule(*M).ok();

  auto famOf = [&Fam](const std::string &Name) {
    auto It = Fam.find(Name);
    return It == Fam.end() ? -1 : It->second;
  };
  std::set<int> Recovered;
  for (const MergeRecord &Rec : R.Stats.Records) {
    if (!Rec.Committed)
      continue;
    int A = famOf(Rec.Name1);
    if (A >= 0 && A == famOf(Rec.Name2))
      Recovered.insert(A);
  }
  R.FamiliesRecovered = static_cast<unsigned>(Recovered.size());
  return R;
}

MergeDriverOptions baseOptions() {
  MergeDriverOptions DO;
  DO.Technique = MergeTechnique::SalSSA;
  // t = 1: each function attempts only its single nearest candidate —
  // the regime where ranking quality is the whole game (one spelling-
  // noise upset and the family is lost), and the paper's cheapest
  // compile-time setting.
  DO.ExplorationThreshold = 1;
  return DO;
}

unsigned poolSize(unsigned Default) {
  unsigned Scale = benchScale();
  return Scale > 1 ? std::max(32u, Default / Scale) : Default;
}

/// Interpreter differential: every definition of the canonical-on merged
/// module behaves like its pristine counterpart on three argument
/// vectors (zeros + two seeded draws).
bool differentialOk(const BenchmarkProfile &P,
                    const MergeDriverOptions &DO) {
  Context CtxRef, CtxNew;
  std::unique_ptr<Module> Ref = buildBenchmarkModule(P, CtxRef);
  std::unique_ptr<Module> M = buildBenchmarkModule(P, CtxNew);
  runFunctionMerging(*M, DO);
  ExecOptions Opts;
  Opts.MaxSteps = 150000;
  Interpreter RefInterp(*Ref, Opts);
  Interpreter MergedInterp(*M, Opts);
  for (Function *RefF : Ref->functions()) {
    if (RefF->isDeclaration())
      continue;
    Function *NewF = M->getFunction(RefF->getName());
    if (!NewF) {
      std::printf("FAIL: merged module lost %s\n", RefF->getName().c_str());
      return false;
    }
    RNG ArgRng(mix64(P.Seed) ^ std::hash<std::string>{}(RefF->getName()));
    for (int Vec = 0; Vec < 3; ++Vec) {
      std::vector<RuntimeValue> Args;
      Args.reserve(RefF->getNumArgs());
      for (unsigned A = 0; A < RefF->getNumArgs(); ++A)
        Args.push_back(RuntimeValue::makeInt(
            Vec == 0 ? 0 : ArgRng.nextBelow(1u << 16)));
      RefInterp.resetMemory();
      ExecResult R1 = RefInterp.run(RefF, Args);
      MergedInterp.resetMemory();
      ExecResult R2 = MergedInterp.run(NewF, Args);
      if (!behaviourallyEqual(R1, R2)) {
        std::printf("FAIL: behaviour of %s changed on argument vector %d\n",
                    RefF->getName().c_str(), Vec);
        return false;
      }
    }
  }
  return true;
}

int smokeMode() {
  const unsigned PoolFns = poolSize(96);
  const BenchmarkProfile P = driftPoolProfile(PoolFns);
  printHeader("bench_canonical_recall --smoke (pool " +
              std::to_string(PoolFns) + ")");

  // --- Leg A: recall + reduction -----------------------------------------
  MergeDriverOptions Raw = baseOptions();
  RecallRun RawRun = runOnce(P, Raw);
  MergeDriverOptions Canon = Raw;
  Canon.Canonicalize = true;
  RecallRun CanonRun = runOnce(P, Canon);
  std::printf("families in pool: %u\n", RawRun.FamiliesTotal);
  std::printf("raw discovery:   %u/%u families (%5.1f%%), %u commits, "
              "%.2f%% reduction, %.3fs\n",
              RawRun.FamiliesRecovered, RawRun.FamiliesTotal,
              RawRun.recallPercent(), RawRun.Stats.CommittedMerges,
              RawRun.reductionPercent(), RawRun.Stats.TotalSeconds);
  std::printf("canonical view:  %u/%u families (%5.1f%%), %u commits, "
              "%.2f%% reduction, %.3fs\n",
              CanonRun.FamiliesRecovered, CanonRun.FamiliesTotal,
              CanonRun.recallPercent(), CanonRun.Stats.CommittedMerges,
              CanonRun.reductionPercent(), CanonRun.Stats.TotalSeconds);
  if (!RawRun.VerifierOk || !CanonRun.VerifierOk) {
    std::printf("FAIL: verifier errors after merging\n");
    return 1;
  }
  if (CanonRun.FamiliesRecovered < 2 ||
      CanonRun.FamiliesRecovered < 2 * RawRun.FamiliesRecovered) {
    std::printf("FAIL: canonical discovery must recover >= 2x the drift "
                "families of raw discovery (%u vs %u)\n",
                CanonRun.FamiliesRecovered, RawRun.FamiliesRecovered);
    return 1;
  }
  if (CanonRun.SizeAfter >= RawRun.SizeAfter) {
    std::printf("FAIL: canonical discovery must reduce strictly more "
                "(%llu B vs %llu B after)\n",
                (unsigned long long)CanonRun.SizeAfter,
                (unsigned long long)RawRun.SizeAfter);
    return 1;
  }

  // --- Leg B: off path is inert ------------------------------------------
  // Canonicalize=false must be byte-identical to an options struct that
  // never heard of the flag, in every execution shape.
  for (SelectionStrategy Sel :
       {SelectionStrategy::Distance, SelectionStrategy::Profit,
        SelectionStrategy::Adaptive})
    for (unsigned Shards : {1u, 4u})
      for (unsigned NT : {1u, 4u}) {
        MergeDriverOptions Default = baseOptions();
        Default.Selection = Sel;
        Default.ShardCount = Shards;
        Default.NumThreads = NT;
        MergeDriverOptions Off = Default;
        Off.Canonicalize = false;
        RecallRun A = runOnce(P, Default);
        RecallRun B = runOnce(P, Off);
        if (A.Print != B.Print) {
          std::printf("FAIL: Canonicalize=false diverges from default "
                      "options (sel %u, %u shards, %u threads)\n",
                      static_cast<unsigned>(Sel), Shards, NT);
          return 1;
        }
      }

  // --- Leg C: canonical-on behaviour -------------------------------------
  if (!differentialOk(P, Canon))
    return 1;

  JsonSummary Json("bench_canonical_recall");
  Json.add("pool_functions", uint64_t(PoolFns));
  Json.add("families_total", uint64_t(RawRun.FamiliesTotal));
  Json.add("recall_raw", RawRun.recallPercent());
  Json.add("recall_canonical", CanonRun.recallPercent());
  Json.add("raw_commits", uint64_t(RawRun.Stats.CommittedMerges));
  Json.add("canon_commits", uint64_t(CanonRun.Stats.CommittedMerges));
  Json.add("reduction_raw_pct", RawRun.reductionPercent());
  Json.add("reduction_pct", CanonRun.reductionPercent());
  Json.add("seconds", CanonRun.Stats.TotalSeconds);

  std::printf("PASS: canonical recall %u/%u vs raw %u/%u, reduction "
              "%.2f%% > %.2f%%, off path inert, behaviour preserved\n",
              CanonRun.FamiliesRecovered, CanonRun.FamiliesTotal,
              RawRun.FamiliesRecovered, RawRun.FamiliesTotal,
              CanonRun.reductionPercent(), RawRun.reductionPercent());
  return 0;
}

int sweepMode() {
  const unsigned PoolFns = poolSize(96);
  printHeader("Raw vs canonical candidate discovery, " +
              std::to_string(PoolFns) + " functions");
  std::printf("%-10s %-3s %-10s %10s %10s %12s %10s\n", "selection", "t",
              "discovery", "families", "commits", "reduction", "wall (s)");
  printRule(72);
  bool Ok = true;
  BenchmarkProfile P = driftPoolProfile(PoolFns);
  for (SelectionStrategy Sel :
       {SelectionStrategy::Distance, SelectionStrategy::Profit,
        SelectionStrategy::Adaptive}) {
    for (unsigned T : {1u, 2u, 3u}) {
      for (bool Canonical : {false, true}) {
        MergeDriverOptions DO = baseOptions();
        DO.Selection = Sel;
        DO.ExplorationThreshold = T;
        DO.NumThreads = 4;
        DO.Canonicalize = Canonical;
        RecallRun R = runOnce(P, DO);
        Ok &= R.VerifierOk;
        std::printf("%-10s %-3u %-10s %4u/%-5u %10u %11.2f%% %10.3f\n",
                    selectionName(Sel), T, Canonical ? "canonical" : "raw",
                    R.FamiliesRecovered, R.FamiliesTotal,
                    R.Stats.CommittedMerges, R.reductionPercent(),
                    R.Stats.TotalSeconds);
        std::fflush(stdout);
      }
    }
    printRule(72);
  }
  std::printf("\nThe canonical rows rank on the normalized shadow view: "
              "spelling noise (commutes, rotations, dead stores, "
              "recomputes) stops costing candidate slots, so drift "
              "families re-enter the slates and commit.\n");
  return Ok ? 0 : 1;
}

} // namespace

int main(int argc, char **argv) {
  for (int I = 1; I < argc; ++I)
    if (std::strcmp(argv[I], "--smoke") == 0)
      return smokeMode();
  return sweepMode();
}
