//===- bench/bench_fig19_breakdown.cpp - Figure 19 -----------------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
// Figure 19 of the paper: the isolated contribution of each merge
// operation SalSSA[t=1] commits on djpeg to the final object size. Each
// committed pair is re-applied alone to a fresh module and the size delta
// measured. The paper's point: every contribution is small, and the
// profitability cost model has false positives — some "profitable" merges
// actually grow the final object.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"
#include <algorithm>

using namespace salssa;
using namespace salssa::bench;

int main() {
  printHeader("Figure 19: per-merge size contribution, SalSSA[t=1] on "
              "djpeg (Thumb-like)");

  BenchmarkProfile P;
  for (const BenchmarkProfile &Q : mibenchProfiles())
    if (Q.Name == "djpeg")
      P = Q;
  P = scaled(P);

  // Full run to learn which pairs commit.
  Context Ctx;
  std::unique_ptr<Module> M = buildBenchmarkModule(P, Ctx);
  MergeDriverOptions DO;
  DO.Technique = MergeTechnique::SalSSA;
  DO.ExplorationThreshold = 1;
  DO.Arch = TargetArch::ThumbLike;
  MergeDriverStats Full = runFunctionMerging(*M, DO);

  std::vector<std::pair<std::string, std::string>> Pairs;
  for (const MergeRecord &R : Full.Records)
    if (R.Committed)
      Pairs.push_back({R.Name1, R.Name2});

  // Re-apply each committed pair in isolation and measure the delta.
  std::vector<double> Deltas;
  for (const auto &[N1, N2] : Pairs) {
    Context C2;
    std::unique_ptr<Module> M2 = buildBenchmarkModule(P, C2);
    Function *F1 = M2->getFunction(N1);
    Function *F2 = M2->getFunction(N2);
    if (!F1 || !F2)
      continue; // pair involves an intermediate merged function
    uint64_t Before = estimateModuleSize(*M2, TargetArch::ThumbLike);
    MergeAttempt A = attemptMerge(
        *F1, *F2, MergeCodeGenOptions::forTechnique(MergeTechnique::SalSSA),
        TargetArch::ThumbLike,
        estimateFunctionSize(*F1, TargetArch::ThumbLike),
        estimateFunctionSize(*F2, TargetArch::ThumbLike));
    if (!A.Valid)
      continue;
    commitMerge(A, C2);
    uint64_t After = estimateModuleSize(*M2, TargetArch::ThumbLike);
    Deltas.push_back(100.0 * (1.0 - double(After) / double(Before)));
  }
  std::sort(Deltas.begin(), Deltas.end());

  std::printf("%zu committed merges; isolated contribution to object size "
              "(positive = reduction):\n",
              Deltas.size());
  unsigned FalsePositives = 0;
  for (size_t I = 0; I < Deltas.size(); ++I) {
    std::printf("  merge %2zu: %+6.3f%%%s\n", I, Deltas[I],
                Deltas[I] < 0 ? "  <- cost-model false positive" : "");
    if (Deltas[I] < 0)
      ++FalsePositives;
  }
  std::printf("\n%u of %zu merges are cost-model false positives\n",
              FalsePositives, Deltas.size());
  std::printf("paper: each contribution is well under 0.5%%; enough false "
              "positives existed to cause a ~0.3%% overall increase on "
              "djpeg at t=1\n");
  return 0;
}
