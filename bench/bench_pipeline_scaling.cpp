//===- bench/bench_pipeline_scaling.cpp - Attempt-stage thread scaling ---------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
// Measures the staged merge driver (MergePipeline) as the worker count
// grows on a fixed clone-heavy pool. The serial path (1 thread) is the
// legacy driver; every other row runs the optimistic rounds described in
// merge/README.md. Committed merges, records and final module bytes are
// identical across rows by construction — the table verifies that on
// every run — so the comparison is pure attempt-stage wall time.
//
// Modes:
//   (default)  scaling table over 1/2/4/8 threads at a 512-function pool,
//              with speculation/conflict counters. Exits non-zero if any
//              row commits different merges, or if 4 threads fail the
//              >= 2x speedup acceptance bar on hardware with >= 4 cores.
//   --smoke    one 512-function pool, serial vs multi-thread; FAILS
//              (exit 1) if outcomes differ or the multi-thread driver
//              falls below serial throughput (with head-room for
//              single-core machines, where threading can only add
//              overhead) — wired into ctest as a regression guard.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"
#include "support/ThreadPool.h"
#include <cstring>

using namespace salssa;
using namespace salssa::bench;

namespace {

BenchmarkProfile pipelineProfile(unsigned NumFunctions) {
  BenchmarkProfile P;
  P.Name = "pipeline" + std::to_string(NumFunctions);
  P.NumFunctions = NumFunctions;
  P.MinSize = 6;
  P.AvgSize = 45;
  P.MaxSize = 220;
  P.CloneFamilyPercent = 45;
  P.MinFamily = 2;
  P.MaxFamily = 5;
  P.FamilyDriftPercent = 12;
  P.LoopPercent = 50;
  P.Seed = 0x9a11e1;
  return P;
}

struct ThreadRun {
  double TotalSeconds = 0;
  uint64_t SizeAfter = 0;
  unsigned CommittedMerges = 0;
  unsigned SpeculativeAttempts = 0;
  unsigned SpeculativeDiscarded = 0;
  unsigned CommitConflicts = 0;
  unsigned InlineReattempts = 0;
};

ThreadRun runOnce(unsigned NumFunctions, unsigned NumThreads) {
  Context Ctx;
  BenchmarkProfile P = pipelineProfile(NumFunctions);
  std::unique_ptr<Module> M = buildBenchmarkModule(P, Ctx);
  MergeDriverOptions DO;
  DO.Technique = MergeTechnique::SalSSA;
  DO.ExplorationThreshold = 2;
  DO.NumThreads = NumThreads;
  MergeDriverStats S = runFunctionMerging(*M, DO);
  ThreadRun R;
  R.TotalSeconds = S.TotalSeconds;
  R.SizeAfter = estimateModuleSize(*M, TargetArch::X86Like);
  R.CommittedMerges = S.CommittedMerges;
  R.SpeculativeAttempts = S.SpeculativeAttempts;
  R.SpeculativeDiscarded = S.SpeculativeDiscarded;
  R.CommitConflicts = S.CommitConflicts;
  R.InlineReattempts = S.InlineReattempts;
  return R;
}

ThreadRun bestOf(unsigned NumFunctions, unsigned NumThreads, int Repeats) {
  ThreadRun Best = runOnce(NumFunctions, NumThreads);
  for (int R = 1; R < Repeats; ++R) {
    ThreadRun Next = runOnce(NumFunctions, NumThreads);
    if (Next.SizeAfter != Best.SizeAfter ||
        Next.CommittedMerges != Best.CommittedMerges) {
      std::fprintf(stderr, "FATAL: nondeterministic merge outcome\n");
      std::abort();
    }
    if (Next.TotalSeconds < Best.TotalSeconds)
      Best = Next;
  }
  return Best;
}

unsigned poolSize() {
  unsigned N = 512;
  unsigned Scale = benchScale();
  return Scale > 1 ? std::max(16u, N / Scale) : N;
}

int smokeMode() {
  const unsigned PoolFns = poolSize();
  const unsigned HW = ThreadPool::resolveThreadCount(0);
  const unsigned MT = std::min(4u, std::max(2u, HW));
  // With enough cores for real parallelism the driver must not lose to
  // serial (in practice it is >= 2x there, so 1.0 has ample head-room).
  // On 1-2 core machines threading can only add overhead, and a loaded
  // small CI runner legitimately lands just under parity — require the
  // overhead to stay bounded instead.
  const double NeedSpeedup = HW >= 4 ? 1.0 : 0.8;
  printHeader("bench_pipeline_scaling --smoke (pool " +
              std::to_string(PoolFns) + ", " + std::to_string(MT) +
              " threads, " + std::to_string(HW) + " hw cores)");
  double BestSpeedup = 0;
  for (int Attempt = 0; Attempt < 3; ++Attempt) {
    ThreadRun Serial = runOnce(PoolFns, 1);
    ThreadRun Multi = runOnce(PoolFns, MT);
    if (Serial.SizeAfter != Multi.SizeAfter ||
        Serial.CommittedMerges != Multi.CommittedMerges) {
      std::printf("FAIL: thread counts disagree (serial: size %llu, %u "
                  "merges; %u threads: size %llu, %u merges)\n",
                  (unsigned long long)Serial.SizeAfter,
                  Serial.CommittedMerges, MT,
                  (unsigned long long)Multi.SizeAfter, Multi.CommittedMerges);
      return 1;
    }
    double Speedup = Multi.TotalSeconds > 0
                         ? Serial.TotalSeconds / Multi.TotalSeconds
                         : 0.0;
    BestSpeedup = std::max(BestSpeedup, Speedup);
    std::printf("attempt %d: serial %.3f s, %u threads %.3f s, speedup "
                "%.2fx (committed %u, conflicts %u)\n",
                Attempt + 1, Serial.TotalSeconds, MT, Multi.TotalSeconds,
                Speedup, Multi.CommittedMerges, Multi.CommitConflicts);
    if (Speedup >= NeedSpeedup) {
      JsonSummary Json("bench_pipeline_scaling");
      Json.add("pool_functions", uint64_t(PoolFns));
      Json.add("threads", MT);
      Json.add("speedup_vs_serial", Speedup);
      Json.add("serial_seconds", Serial.TotalSeconds);
      Json.add("multi_seconds", Multi.TotalSeconds);
      Json.add("commits", Multi.CommittedMerges);
      std::printf("PASS: multi-thread throughput is %.2fx of serial "
                  "(threshold %.2fx)\n", Speedup, NeedSpeedup);
      return 0;
    }
  }
  std::printf("FAIL: multi-thread throughput stayed below %.2fx of serial "
              "(best %.2fx)\n", NeedSpeedup, BestSpeedup);
  return 1;
}

int scalingMode() {
  const unsigned PoolFns = poolSize();
  const unsigned HW = ThreadPool::resolveThreadCount(0);
  printHeader("Attempt-stage scaling: MergePipeline at a " +
              std::to_string(PoolFns) + "-function pool (" +
              std::to_string(HW) + " hw cores)");
  std::printf("%-8s %12s %9s %10s %10s %10s %10s %10s\n", "threads",
              "total (s)", "speedup", "committed", "spec.att", "discarded",
              "conflicts", "redone");
  printRule(88);

  double SerialSeconds = 0;
  uint64_t SerialSize = 0;
  unsigned SerialCommitted = 0;
  bool AllEqual = true;
  double SpeedupAt4 = 0;
  for (unsigned NT : {1u, 2u, 4u, 8u}) {
    ThreadRun R = bestOf(PoolFns, NT, 3);
    if (NT == 1) {
      SerialSeconds = R.TotalSeconds;
      SerialSize = R.SizeAfter;
      SerialCommitted = R.CommittedMerges;
    }
    bool Equal =
        R.SizeAfter == SerialSize && R.CommittedMerges == SerialCommitted;
    AllEqual &= Equal;
    double Speedup = R.TotalSeconds > 0 ? SerialSeconds / R.TotalSeconds : 0;
    if (NT == 4)
      SpeedupAt4 = Speedup;
    std::printf("%-8u %12.3f %8.2fx %10u %10u %10u %10u %10u%s\n", NT,
                R.TotalSeconds, Speedup, R.CommittedMerges,
                R.SpeculativeAttempts, R.SpeculativeDiscarded,
                R.CommitConflicts, R.InlineReattempts,
                Equal ? "" : "  OUTCOME MISMATCH");
    std::fflush(stdout);
  }
  printRule(88);
  // The >= 2x bar needs real cores; report but do not enforce elsewhere.
  bool SpeedupOk = HW < 4 || SpeedupAt4 >= 2.0;
  std::printf("\nacceptance: identical merges on every thread count: %s; "
              "speedup at 4 threads: %.2fx (need >= 2x%s)\n",
              AllEqual ? "yes" : "NO", SpeedupAt4,
              HW < 4 ? ", not enforced on < 4 hw cores" : "");
  return AllEqual && SpeedupOk ? 0 : 1;
}

} // namespace

int main(int argc, char **argv) {
  for (int I = 1; I < argc; ++I)
    if (std::strcmp(argv[I], "--smoke") == 0)
      return smokeMode();
  return scalingMode();
}
