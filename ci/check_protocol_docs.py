#!/usr/bin/env python3
"""Doc-drift gate: docs/PROTOCOL.md must track src/service/Protocol.h.

Usage: check_protocol_docs.py [REPO_ROOT]

The wire protocol is documented by hand (docs/PROTOCOL.md) and defined
by code (src/service/Protocol.h). Hand-written specs rot the day someone
adds a request kind or status code and forgets the doc, so CI greps the
header's surface out of the source of truth and requires every name to
appear in the spec:

  - every enumerator of RequestKind, StatusCode and FrameError
    (except the None sentinel);
  - every framing constant (ProtocolMagic, ProtocolVersion,
    MaxFramePayloadBytes, FrameHeaderBytes).

This is deliberately a *presence* check, not a semantics check: it
cannot prove the prose is right, only that the spec at least mentions
everything the header defines — which is exactly the failure mode of
drift (new code, stale doc). Renames fail loudly on both sides.

Exits 0 when the spec covers the header, 1 with one line per missing
name otherwise.
"""

import re
import sys
from pathlib import Path

ENUMS = ("RequestKind", "StatusCode", "FrameError")
CONSTANT_RE = re.compile(
    r"^constexpr\s+\w+(?:_t)?\s+(\w+)\s*=", re.MULTILINE)
ENUM_RE = re.compile(
    r"enum\s+class\s+(\w+)\s*:\s*\w+\s*\{(.*?)\};", re.DOTALL)
ENUMERATOR_RE = re.compile(r"^\s*(\w+)\s*[=,]", re.MULTILINE)


def header_surface(header_text):
    """Yields (context, name) pairs the spec must mention."""
    enums = dict(ENUM_RE.findall(header_text))
    for enum in ENUMS:
        if enum not in enums:
            # The header lost a whole enum: that is a rename/refactor the
            # gate itself must be updated for, so fail loudly.
            yield ("Protocol.h", enum)
            continue
        yield ("enum", enum)
        for name in ENUMERATOR_RE.findall(enums[enum]):
            if name != "None":  # internal sentinel, not a wire value
                yield (enum, name)
    for name in CONSTANT_RE.findall(header_text):
        yield ("constant", name)


def main(argv):
    root = Path(argv[1]) if len(argv) > 1 else Path(__file__).parent.parent
    header = root / "src" / "service" / "Protocol.h"
    spec = root / "docs" / "PROTOCOL.md"
    try:
        header_text = header.read_text()
    except OSError as e:
        print(f"error: cannot read {header}: {e}")
        return 1
    try:
        spec_text = spec.read_text()
    except OSError as e:
        print(f"error: cannot read {spec}: {e}")
        return 1

    missing = []
    checked = 0
    for context, name in header_surface(header_text):
        checked += 1
        if not re.search(r"\b" + re.escape(name) + r"\b", spec_text):
            missing.append((context, name))
    for context, name in missing:
        print(f"drift: {context}::{name} is defined in "
              f"src/service/Protocol.h but never mentioned in "
              f"docs/PROTOCOL.md")
    if missing:
        print(f"\nprotocol doc-drift gate FAILED: {len(missing)} of "
              f"{checked} names undocumented — update docs/PROTOCOL.md")
        return 1
    print(f"protocol doc-drift gate passed: all {checked} wire names "
          f"appear in docs/PROTOCOL.md")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
