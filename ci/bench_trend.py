#!/usr/bin/env python3
"""Gate the smoke-bench trend: current BENCH_ci.json vs the previous run's.

Usage: bench_trend.py BASELINE.json CURRENT.json

Each file is the artifact the smoke-bench CI job assembles: a document
with a "benches" list of per-bench JSON objects (one per smoke bench,
see bench/BenchUtils.h JsonSummary). Two families of keys are gated,
everything else is informational:

  *seconds         wall-clock legs. Fail when the current value exceeds
                   the baseline by more than WALL_TOLERANCE (15%), with
                   an absolute floor (ABS_FLOOR_SECONDS) so micro-legs
                   whose baseline is a few milliseconds cannot fail on
                   scheduler noise.
  *reduction_pct   size-reduction percentages — the paper's headline
                   metric. These are deterministic, so the tolerance is
                   a flat REDUCTION_TOLERANCE_PCT (15% relative) and any
                   drop beyond it fails.
  recall_*         candidate-discovery recall percentages (drift families
                   recovered, bench_canonical_recall). Deterministic like
                   reduction and gated the same way: lower is a
                   regression, RECALL_TOLERANCE_PCT (15% relative).

A missing baseline (first run on a branch, expired artifact) exits 0
with a notice: the gate only ever compares, it never blocks bootstrap.
Benches or keys present on one side only are reported but not failed —
adding or retiring a bench must not break the pipeline.
"""

import json
import sys

WALL_TOLERANCE = 0.15  # +15% wall-clock allowed before failing
REDUCTION_TOLERANCE_PCT = 0.15  # -15% (relative) reduction allowed
RECALL_TOLERANCE_PCT = 0.15  # -15% (relative) discovery recall allowed
ABS_FLOOR_SECONDS = 0.05  # ignore wall regressions under this baseline


def load_benches(path):
    """Returns {bench_name: {key: value}} or None when unreadable."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"notice: cannot read {path}: {e}")
        return None
    benches = {}
    for entry in doc.get("benches", []):
        name = entry.get("bench")
        if isinstance(name, str):
            benches[name] = entry
    return benches


def gated_keys(entry):
    for key, value in entry.items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        if key.endswith("seconds"):
            yield key, float(value), "wall"
        elif key.endswith("reduction_pct"):
            yield key, float(value), "reduction"
        elif key.startswith("recall_"):
            yield key, float(value), "recall"


def main(argv):
    if len(argv) != 3:
        print(__doc__)
        return 2
    baseline = load_benches(argv[1])
    current = load_benches(argv[2])
    if baseline is None:
        print("notice: no usable baseline — trend gate skipped (bootstrap)")
        return 0
    if current is None:
        print("error: current BENCH_ci.json unreadable")
        return 1

    failures = []
    compared = 0
    for name, entry in sorted(current.items()):
        base_entry = baseline.get(name)
        if base_entry is None:
            print(f"notice: bench '{name}' has no baseline (new bench?)")
            continue
        for key, value, kind in gated_keys(entry):
            if key not in base_entry:
                print(f"notice: {name}.{key} new-key (no baseline) — "
                      f"not gated")
                continue
            try:
                base = float(base_entry[key])
            except (TypeError, ValueError):
                # A baseline written by an older bench revision may carry a
                # non-numeric value under a now-gated key; benches evolve
                # PR over PR, so treat it like a missing baseline rather
                # than crashing the gate.
                print(f"notice: {name}.{key} baseline is non-numeric "
                      f"({base_entry[key]!r}) — not gated")
                continue
            compared += 1
            if kind == "wall":
                if base < ABS_FLOOR_SECONDS:
                    print(f"ok:     {name}.{key} {base:.3f}s -> {value:.3f}s "
                          f"(under the {ABS_FLOOR_SECONDS}s floor, not gated)")
                    continue
                limit = base * (1 + WALL_TOLERANCE)
                verdict = "FAIL" if value > limit else "ok"
                print(f"{verdict + ':':7} {name}.{key} {base:.3f}s -> "
                      f"{value:.3f}s (limit {limit:.3f}s)")
                if value > limit:
                    failures.append(f"{name}.{key}")
            else:  # reduction / recall: lower is worse
                tolerance = (REDUCTION_TOLERANCE_PCT if kind == "reduction"
                             else RECALL_TOLERANCE_PCT)
                limit = base * (1 - tolerance)
                verdict = "FAIL" if value < limit else "ok"
                print(f"{verdict + ':':7} {name}.{key} {base:.2f}% -> "
                      f"{value:.2f}% (floor {limit:.2f}%)")
                if value < limit:
                    failures.append(f"{name}.{key}")
        # The other direction: a gated key the baseline has but this run
        # lacks (timing disabled under TSan, a retired leg, an older bench
        # revision). Surface it as a new-key notice rather than letting it
        # read as — or turn into — a regression: a key with nothing to
        # compare against is a schema change, not a measurement.
        for key, _, _ in gated_keys(base_entry):
            if key not in entry:
                print(f"notice: {name}.{key} new-key in the baseline only "
                      f"(absent from the current run) — not gated")
    for name in sorted(set(baseline) - set(current)):
        print(f"notice: bench '{name}' vanished from the current run")

    if failures:
        print(f"\ntrend gate FAILED: {len(failures)} regression(s): "
              + ", ".join(failures))
        return 1
    print(f"\ntrend gate passed: {compared} gated value(s) within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
