//===- tests/index_churn_test.cpp - CandidateIndex under heavy churn -----------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
// The incremental merge service (merge/MergeService.h) never rebuilds
// its planner index: every delta retires the touched entries and
// re-inserts them under fresh (monotonically growing) ids, across
// arbitrarily many epochs. This suite pins the property that makes that
// safe: an index that has seen heavy interleaved insert/retire traffic
// is *query- and summary-equivalent* to one rebuilt from scratch over
// the surviving entries —
//
//  - query(): identical hit lists (distance, id, module payload, order)
//    for every surviving entry's fingerprint, at several K/ExtraK
//    shapes, with the churned index's ids mapped to the rebuilt one's;
//  - partitionSummaries(): identical live aggregates (Live, SizeSum,
//    CostSum, CoarseBucket) per return type — modulo the documented
//    difference that the churned index still reports fully-retired
//    partitions (Live == 0) to keep FirstSeen ranks stable.
//
//===----------------------------------------------------------------------===//

#include "merge/CandidateIndex.h"
#include "support/RNG.h"
#include "workloads/Suites.h"
#include <algorithm>
#include <gtest/gtest.h>
#include <map>

using namespace salssa;

namespace {

/// A pool of real fingerprints to churn with: enough functions, sizes
/// and return types that size buckets, band buckets and partitions all
/// see non-trivial traffic.
std::vector<Fingerprint> fingerprintPool(Context &Ctx) {
  BenchmarkProfile P;
  P.Name = "churn";
  P.NumFunctions = 120;
  P.MinSize = 4;
  P.AvgSize = 40;
  P.MaxSize = 200;
  P.CloneFamilyPercent = 50;
  P.MinFamily = 2;
  P.MaxFamily = 5;
  P.FamilyDriftPercent = 12;
  P.RetTypeVariety = 4;
  P.Seed = 4242;
  std::unique_ptr<Module> M = buildBenchmarkModule(P, Ctx);
  std::vector<Fingerprint> FPs;
  for (Function *F : M->functions())
    if (!F->isDeclaration())
      FPs.push_back(Fingerprint::compute(*F));
  return FPs;
}

struct Survivor {
  uint32_t ChurnedId;
  uint32_t RebuiltId;
  const Fingerprint *FP;
  uint32_t ModuleId;
};

void expectSameHits(const std::vector<CandidateIndex::Hit> &Got,
                    const std::vector<CandidateIndex::Hit> &Want,
                    const std::map<uint32_t, uint32_t> &ChurnedToRebuilt,
                    const std::string &Tag) {
  ASSERT_EQ(Got.size(), Want.size()) << Tag;
  for (size_t I = 0; I < Got.size(); ++I) {
    EXPECT_EQ(Got[I].Distance, Want[I].Distance) << Tag << " hit " << I;
    EXPECT_EQ(ChurnedToRebuilt.at(Got[I].Id), Want[I].Id)
        << Tag << " hit " << I;
    EXPECT_EQ(Got[I].ModuleId, Want[I].ModuleId) << Tag << " hit " << I;
  }
}

TEST(IndexChurnTest, ChurnedIndexEquivalentToRebuiltFromScratch) {
  Context Ctx;
  std::vector<Fingerprint> FPs = fingerprintPool(Ctx);
  ASSERT_GE(FPs.size(), 100u);

  // The service's traffic pattern: every epoch retires a random slice
  // of the live set and re-inserts fresh entries (re-registered edits
  // and brand-new functions) under monotonically growing ids.
  CandidateIndex Churned;
  struct LiveEntry {
    uint32_t Id;
    size_t FPIdx;
    uint32_t ModuleId;
  };
  std::vector<LiveEntry> Live;
  uint32_t NextId = 0;
  RNG Rng(0xc0ffee);
  auto insertOne = [&](size_t FPIdx) {
    uint32_t ModuleId = static_cast<uint32_t>(Rng.nextBelow(4));
    Churned.insert(NextId, FPs[FPIdx], ModuleId);
    Live.push_back({NextId, FPIdx, ModuleId});
    ++NextId;
  };
  for (size_t I = 0; I < 60; ++I)
    insertOne(I);
  size_t NextFreshFP = 60;
  for (unsigned Epoch = 0; Epoch < 40; ++Epoch) {
    // Retire a batch (capped at half the live set so the population
    // never drains — the service keeps most of the program registered)...
    unsigned Retires = static_cast<unsigned>(
        Rng.nextBelow(std::min<size_t>(4, Live.size() / 2)));
    for (unsigned R = 0; R < Retires; ++R) {
      size_t Pick = Rng.nextBelow(Live.size());
      Churned.retire(Live[Pick].Id);
      Live.erase(Live.begin() + static_cast<ptrdiff_t>(Pick));
    }
    // ...re-insert some retired fingerprints under fresh ids (edited
    // functions keep their bodies' general shape)...
    for (unsigned I = 0; I < Rng.nextBelow(5); ++I)
      insertOne(Rng.nextBelow(FPs.size()));
    // ...and occasionally add a never-seen fingerprint.
    if (NextFreshFP < FPs.size() && Rng.chancePercent(60))
      insertOne(NextFreshFP++);
  }
  ASSERT_GT(Live.size(), 20u);
  ASSERT_GT(NextId, static_cast<uint32_t>(FPs.size()))
      << "churn must have recycled ids past a from-scratch build";
  EXPECT_EQ(Churned.liveCount(), Live.size());

  // Rebuild from scratch over the survivors, in churned-id order (the
  // order a fresh session would register them is immaterial to query
  // results; id order keeps the tie-break mapping trivial).
  CandidateIndex Rebuilt;
  std::vector<Survivor> Survivors;
  std::map<uint32_t, uint32_t> ChurnedToRebuilt;
  for (size_t I = 0; I < Live.size(); ++I) {
    Rebuilt.insert(static_cast<uint32_t>(I), FPs[Live[I].FPIdx],
                   Live[I].ModuleId);
    Survivors.push_back({Live[I].Id, static_cast<uint32_t>(I),
                         &FPs[Live[I].FPIdx], Live[I].ModuleId});
    ChurnedToRebuilt[Live[I].Id] = static_cast<uint32_t>(I);
  }

  // Query equivalence for every survivor, at the driver's K shapes.
  // Distance ties break by id, and both indices were registered in the
  // same relative order, so mapped hit lists must match exactly.
  for (const Survivor &S : Survivors)
    for (auto [K, ExtraK] : {std::pair<unsigned, unsigned>{1, 0},
                             {3, 0},
                             {3, 4},
                             {8, 8}}) {
      std::vector<CandidateIndex::Hit> Got =
          Churned.query(*S.FP, K, S.ChurnedId, nullptr, ExtraK);
      std::vector<CandidateIndex::Hit> Want =
          Rebuilt.query(*S.FP, K, S.RebuiltId, nullptr, ExtraK);
      expectSameHits(Got, Want, ChurnedToRebuilt,
                     "survivor " + std::to_string(S.ChurnedId) + " K=" +
                         std::to_string(K) + "+" + std::to_string(ExtraK));
    }

  // Summary equivalence: identical live aggregates per return type. The
  // churned index may additionally report fully-retired partitions —
  // documented behaviour (FirstSeen stability) — with zeroed aggregates.
  std::map<Type *, CandidateIndex::PartitionSummary> WantByTy;
  for (const CandidateIndex::PartitionSummary &C :
       Rebuilt.partitionSummaries())
    WantByTy[C.RetTy] = C;
  size_t LiveParts = 0;
  for (const CandidateIndex::PartitionSummary &C :
       Churned.partitionSummaries()) {
    if (C.Live == 0) {
      EXPECT_EQ(C.SizeSum, 0u);
      EXPECT_EQ(C.CostSum, 0u);
      EXPECT_EQ(WantByTy.count(C.RetTy), 0u)
          << "partition dead in the churned index but alive rebuilt";
      continue;
    }
    ++LiveParts;
    auto It = WantByTy.find(C.RetTy);
    ASSERT_NE(It, WantByTy.end());
    EXPECT_EQ(C.Live, It->second.Live);
    EXPECT_EQ(C.SizeSum, It->second.SizeSum);
    EXPECT_EQ(C.CostSum, It->second.CostSum);
    EXPECT_EQ(C.CoarseBucket, It->second.CoarseBucket);
  }
  EXPECT_EQ(LiveParts, WantByTy.size());
}

TEST(IndexChurnTest, RetireInsertRoundTripRestoresQueries) {
  // The narrow service invariant: retire(id) + insert(fresh id, same
  // fingerprint) — a no-op edit — leaves every OTHER entry's query
  // results unchanged, and the re-registered entry ranks exactly where
  // the original did (modulo its new id in ties).
  Context Ctx;
  std::vector<Fingerprint> FPs = fingerprintPool(Ctx);
  CandidateIndex Index;
  for (size_t I = 0; I < 50; ++I)
    Index.insert(static_cast<uint32_t>(I), FPs[I], 0);

  // Tie-complete queries: ExtraK large enough to pull in the whole
  // distance-tie group at the K boundary, so the result SET is
  // invariant under the re-registered entry's id change (only the
  // within-tie order moves, and sorting normalizes that).
  auto tieCompleteQuery = [&](uint32_t Id, const Fingerprint &FP) {
    std::vector<CandidateIndex::Hit> Hits = Index.query(FP, 4, Id, nullptr, 46);
    std::vector<std::pair<uint64_t, uint32_t>> Flat;
    for (const CandidateIndex::Hit &H : Hits)
      Flat.emplace_back(H.Distance, H.Id);
    return Flat;
  };

  const uint32_t Target = 17;
  std::map<uint32_t, std::vector<std::pair<uint64_t, uint32_t>>> Before;
  for (uint32_t Id = 0; Id < 50; ++Id)
    if (Id != Target)
      Before[Id] = tieCompleteQuery(Id, FPs[Id]);

  Index.retire(Target);
  Index.insert(50, FPs[Target], 0);

  for (uint32_t Id = 0; Id < 50; ++Id) {
    if (Id == Target)
      continue;
    std::vector<std::pair<uint64_t, uint32_t>> After =
        tieCompleteQuery(Id, FPs[Id]);
    std::vector<std::pair<uint64_t, uint32_t>> Want = Before[Id];
    for (auto &DistId : Want)
      if (DistId.second == Target)
        DistId.second = 50;
    std::sort(Want.begin(), Want.end());
    std::sort(After.begin(), After.end());
    EXPECT_EQ(After, Want) << "id " << Id;
  }
}

} // namespace
