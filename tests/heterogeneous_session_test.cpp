//===- tests/heterogeneous_session_test.cpp - Mixed-suite sessions -------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
// Whole-program sessions over *heterogeneous* groups: several benchmark
// suites' modules linked into one session (workloads/Suites.h,
// buildSuiteModuleGroup). The bars:
//
//  1. Profitability: one session over suites A+B merges at least as much
//     as merging each suite's group alone — extra unrelated candidates
//     must never cost commits or size (the greedy order stays inside
//     each suite's compatibility classes unless a cross-suite pair
//     genuinely wins).
//  2. Determinism: byte-identical outcomes at 1 and 4 threads, sharded
//     and unsharded (this file runs under the tsan preset, racing the
//     attempt stage and the shard pool under TSan).
//
//===----------------------------------------------------------------------===//

#include "codesize/SizeModel.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "merge/ShardedSessionRunner.h"
#include "workloads/Suites.h"
#include <gtest/gtest.h>

using namespace salssa;

namespace {

BenchmarkProfile suiteProfile(const char *Name, uint64_t Seed,
                              unsigned NumFns, unsigned Variety) {
  BenchmarkProfile P;
  P.Name = Name;
  P.NumFunctions = NumFns;
  P.MinSize = 6;
  P.AvgSize = 42;
  P.MaxSize = 180;
  P.CloneFamilyPercent = 55;
  P.MinFamily = 2;
  P.MaxFamily = 5;
  P.FamilyDriftPercent = 10;
  P.LoopPercent = 50;
  P.RetTypeVariety = Variety;
  P.Seed = Seed;
  return P;
}

std::vector<BenchmarkProfile> mixedSuites() {
  return {suiteProfile("gamma", 311, 36, 3),
          suiteProfile("delta", 412, 32, 4)};
}

MergeDriverOptions defaultOptions(unsigned NumThreads, unsigned Shards = 1) {
  MergeDriverOptions DO;
  DO.Technique = MergeTechnique::SalSSA;
  DO.ExplorationThreshold = 3;
  DO.NumThreads = NumThreads;
  DO.ShardCount = Shards;
  return DO;
}

struct SessionResult {
  unsigned Commits = 0;
  uint64_t SizeBefore = 0;
  uint64_t SizeAfter = 0;
  std::string Prints;
  bool VerifierOk = true;
};

SessionResult runOver(ModuleGroup &Group, const MergeDriverOptions &DO) {
  CrossModuleMerger Session(DO);
  for (size_t I = 0; I < Group.size(); ++I)
    Session.addModule(Group[I]);
  CrossModuleStats S = Session.run();
  SessionResult R;
  R.Commits = S.Driver.CommittedMerges;
  R.SizeBefore = S.SizeBefore;
  R.SizeAfter = S.SizeAfter;
  for (size_t I = 0; I < Group.size(); ++I) {
    R.Prints += printModule(Group[I]);
    R.VerifierOk = R.VerifierOk && verifyModule(Group[I]).ok();
  }
  return R;
}

TEST(HeterogeneousSessionTest, MixedSuitesMergeAtLeastEachSuiteAlone) {
  MergeDriverOptions DO = defaultOptions(1);
  unsigned AloneCommits = 0;
  uint64_t AloneAfter = 0;
  for (const BenchmarkProfile &P : mixedSuites()) {
    Context Ctx;
    ModuleGroup Group = buildSuiteModuleGroup({P}, Ctx, 2);
    SessionResult R = runOver(Group, DO);
    EXPECT_TRUE(R.VerifierOk) << P.Name;
    EXPECT_GT(R.Commits, 0u) << P.Name;
    AloneCommits += R.Commits;
    AloneAfter += R.SizeAfter;
  }
  Context Ctx;
  ModuleGroup Mixed = buildSuiteModuleGroup(mixedSuites(), Ctx, 2);
  SessionResult R = runOver(Mixed, DO);
  EXPECT_TRUE(R.VerifierOk);
  EXPECT_GE(R.Commits, AloneCommits)
      << "mixing suites into one session must not lose merges";
  EXPECT_LE(R.SizeAfter, AloneAfter)
      << "mixing suites into one session must not lose size reduction";
}

TEST(HeterogeneousSessionTest, DeterministicAcrossThreadCounts) {
  auto run = [](unsigned NumThreads, unsigned Shards) {
    Context Ctx;
    ModuleGroup Group = buildSuiteModuleGroup(mixedSuites(), Ctx, 2);
    return runOver(Group, defaultOptions(NumThreads, Shards));
  };
  for (unsigned Shards : {1u, 4u}) {
    SessionResult Serial = run(1, Shards);
    ASSERT_TRUE(Serial.VerifierOk);
    EXPECT_GT(Serial.Commits, 0u);
    SessionResult Parallel = run(4, Shards);
    EXPECT_TRUE(Parallel.VerifierOk);
    EXPECT_EQ(Parallel.Commits, Serial.Commits) << "shards=" << Shards;
    EXPECT_EQ(Parallel.SizeAfter, Serial.SizeAfter) << "shards=" << Shards;
    EXPECT_EQ(Parallel.Prints, Serial.Prints) << "shards=" << Shards;
  }
}

TEST(HeterogeneousSessionTest, GroupRebuildIsDeterministic) {
  auto build = [] {
    Context Ctx;
    ModuleGroup Group = buildSuiteModuleGroup(mixedSuites(), Ctx, 2);
    std::string Prints;
    for (size_t I = 0; I < Group.size(); ++I)
      Prints += printModule(Group[I]);
    return Prints;
  };
  EXPECT_EQ(build(), build());
}

} // namespace
