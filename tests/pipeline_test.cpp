//===- tests/pipeline_test.cpp - MergePipeline determinism tests --------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
// The MergePipeline contract is that threading is a pure wall-clock
// optimization: for any NumThreads the driver commits the same merges,
// produces the same records in the same (serial) order, allocates the
// same merged-function names, and leaves behind a byte-identical module
// print. These tests run the driver over randomized clone-heavy modules
// at NumThreads in {1, 2, 4, 8} and compare everything observable; the
// same binary runs under ThreadSanitizer in the SALSSA_TSAN=ON
// configuration, which additionally proves the attempt stage races on
// nothing.
//
//===----------------------------------------------------------------------===//

#include "codesize/SizeModel.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "merge/MergeDriver.h"
#include "support/ThreadPool.h"
#include "workloads/Suites.h"
#include <atomic>
#include <gtest/gtest.h>

using namespace salssa;

namespace {

BenchmarkProfile pipelineProfile(uint64_t Seed, unsigned NumFns = 32) {
  BenchmarkProfile P;
  P.Name = "pipeline";
  P.NumFunctions = NumFns;
  P.MinSize = 6;
  P.AvgSize = 45;
  P.MaxSize = 200;
  P.CloneFamilyPercent = 50;
  P.MaxFamily = 5;
  P.FamilyDriftPercent = 10;
  P.LoopPercent = 50;
  P.Seed = Seed;
  return P;
}

/// Everything observable about one driver run (timings excluded).
struct RunOutcome {
  unsigned Attempts = 0;
  unsigned ProfitableMerges = 0;
  unsigned CommittedMerges = 0;
  std::vector<std::tuple<std::string, std::string, bool>> Records;
  uint64_t ModuleSize = 0;
  std::string ModulePrint;
  bool VerifierOk = false;
};

RunOutcome runDriver(const BenchmarkProfile &P, MergeDriverOptions DO,
                     unsigned NumThreads) {
  Context Ctx;
  std::unique_ptr<Module> M = buildBenchmarkModule(P, Ctx);
  DO.NumThreads = NumThreads;
  MergeDriverStats S = runFunctionMerging(*M, DO);
  RunOutcome O;
  O.Attempts = S.Attempts;
  O.ProfitableMerges = S.ProfitableMerges;
  O.CommittedMerges = S.CommittedMerges;
  for (const MergeRecord &R : S.Records)
    O.Records.emplace_back(R.Name1, R.Name2, R.Committed);
  O.ModuleSize = estimateModuleSize(*M, TargetArch::X86Like);
  O.ModulePrint = printModule(*M);
  O.VerifierOk = verifyModule(*M).ok();
  return O;
}

void expectSameOutcome(const RunOutcome &Got, const RunOutcome &Want,
                       const std::string &Tag) {
  EXPECT_TRUE(Got.VerifierOk) << Tag;
  EXPECT_EQ(Got.CommittedMerges, Want.CommittedMerges) << Tag;
  EXPECT_EQ(Got.Attempts, Want.Attempts) << Tag;
  EXPECT_EQ(Got.ProfitableMerges, Want.ProfitableMerges) << Tag;
  EXPECT_EQ(Got.ModuleSize, Want.ModuleSize) << Tag;
  ASSERT_EQ(Got.Records.size(), Want.Records.size()) << Tag;
  for (size_t I = 0; I < Got.Records.size(); ++I)
    EXPECT_EQ(Got.Records[I], Want.Records[I]) << Tag << " record " << I;
  // The strongest check last: the final IR must print byte-identically
  // (same merges, same merged-function names, same function order).
  EXPECT_EQ(Got.ModulePrint, Want.ModulePrint) << Tag;
}

class PipelineDeterminismTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PipelineDeterminismTest, ThreadCountsProduceIdenticalMerges) {
  for (MergeTechnique Tech :
       {MergeTechnique::SalSSA, MergeTechnique::FMSA}) {
    BenchmarkProfile P = pipelineProfile(GetParam());
    MergeDriverOptions DO;
    DO.Technique = Tech;
    DO.ExplorationThreshold = 3;
    RunOutcome Serial = runDriver(P, DO, 1);
    ASSERT_TRUE(Serial.VerifierOk);
    EXPECT_GT(Serial.CommittedMerges, 0u); // the workload must exercise commits
    for (unsigned NT : {2u, 4u, 8u}) {
      RunOutcome Parallel = runDriver(P, DO, NT);
      expectSameOutcome(Parallel, Serial,
                        std::string(Tech == MergeTechnique::SalSSA
                                        ? "salssa"
                                        : "fmsa") +
                            " threads=" + std::to_string(NT));
    }
  }
}

TEST_P(PipelineDeterminismTest, BruteForceRankingMatchesAcrossThreads) {
  BenchmarkProfile P = pipelineProfile(GetParam() + 7, 24);
  MergeDriverOptions DO;
  DO.ExplorationThreshold = 2;
  DO.Ranking = RankingStrategy::BruteForce;
  RunOutcome Serial = runDriver(P, DO, 1);
  expectSameOutcome(runDriver(P, DO, 4), Serial, "brute-force threads=4");
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineDeterminismTest,
                         ::testing::Values(5ull, 23ull, 77ull));

TEST(PipelineTest, CommitWindowDoesNotChangeOutcomes) {
  // The optimistic window only bounds staleness and memory; shrinking it
  // to a degenerate 1 entry per round (maximum barriers, minimum
  // speculation) must not change what gets committed.
  BenchmarkProfile P = pipelineProfile(41);
  MergeDriverOptions DO;
  DO.ExplorationThreshold = 3;
  RunOutcome Serial = runDriver(P, DO, 1);
  for (unsigned Window : {1u, 3u, 64u}) {
    MergeDriverOptions WDO = DO;
    WDO.CommitWindow = Window;
    expectSameOutcome(runDriver(P, WDO, 2), Serial,
                      "window=" + std::to_string(Window));
  }
}

TEST(PipelineTest, HardwareThreadCountResolvesAndMatchesSerial) {
  BenchmarkProfile P = pipelineProfile(9, 20);
  MergeDriverOptions DO;
  DO.ExplorationThreshold = 2;
  RunOutcome Serial = runDriver(P, DO, 1);
  // NumThreads = 0 resolves to the hardware concurrency, whatever it is.
  expectSameOutcome(runDriver(P, DO, 0), Serial, "threads=hw");
}

TEST(PipelineTest, NoRemergeStaysDeterministic) {
  BenchmarkProfile P = pipelineProfile(13);
  MergeDriverOptions DO;
  DO.ExplorationThreshold = 2;
  DO.AllowRemerge = false;
  expectSameOutcome(runDriver(P, DO, 4), runDriver(P, DO, 1), "no-remerge");
}

TEST(ThreadPoolTest, RunsEveryJobExactlyOnce) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.numThreads(), 4u);
  std::atomic<int> Counter{0};
  for (int I = 0; I < 1000; ++I)
    Pool.submit([&Counter] { Counter.fetch_add(1); });
  Pool.wait();
  EXPECT_EQ(Counter.load(), 1000);
  // The pool stays usable after a wait.
  Pool.submit([&Counter] { Counter.fetch_add(1); });
  Pool.wait();
  Pool.wait(); // idempotent
  EXPECT_EQ(Counter.load(), 1001);
}

TEST(ThreadPoolTest, ResolveThreadCount) {
  EXPECT_EQ(ThreadPool::resolveThreadCount(3), 3u);
  EXPECT_GE(ThreadPool::resolveThreadCount(0), 1u);
}

TEST(ThreadPoolTest, JobExceptionRethrownAtWait) {
  // A throwing job must not std::terminate the worker; wait() rethrows
  // the captured exception to the caller.
  ThreadPool Pool(2);
  Pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(Pool.wait(), std::runtime_error);
  // The exception is consumed: a second wait is clean, and the pool
  // stays fully usable.
  Pool.wait();
  std::atomic<int> Counter{0};
  for (int I = 0; I < 100; ++I)
    Pool.submit([&Counter] { Counter.fetch_add(1); });
  Pool.wait();
  EXPECT_EQ(Counter.load(), 100);
}

TEST(ThreadPoolTest, FirstExceptionWinsAndOtherJobsStillRun) {
  ThreadPool Pool(4);
  std::atomic<int> Counter{0};
  for (int I = 0; I < 200; ++I)
    Pool.submit([&Counter, I] {
      Counter.fetch_add(1);
      if (I % 10 == 3)
        throw std::runtime_error("job " + std::to_string(I));
    });
  // Exactly one of the twenty throwers surfaces; the queue still drains
  // completely (a thrown job counts as executed, not retried).
  bool Caught = false;
  try {
    Pool.wait();
  } catch (const std::runtime_error &E) {
    Caught = true;
    EXPECT_EQ(std::string(E.what()).rfind("job ", 0), 0u) << E.what();
  }
  EXPECT_TRUE(Caught);
  EXPECT_EQ(Counter.load(), 200);
  Pool.wait(); // later exceptions were dropped, not queued
}

TEST(ThreadPoolTest, DestructionWithPendingExceptionIsSafe) {
  // Destroying a pool whose exception was never collected by wait()
  // must not terminate or leak the throw.
  ThreadPool Pool(2);
  Pool.submit([] { throw std::runtime_error("never collected"); });
  // Give the job a chance to run; destruction joins the workers either
  // way and drops the pending exception.
}

} // namespace
