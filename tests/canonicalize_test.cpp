//===- tests/canonicalize_test.cpp - Canonical shadow view ---------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
// The Canonicalize contract (transforms/Canonicalize.h):
//
//  1. canonicalizeFunction is deterministic and idempotent: a second
//     application changes nothing.
//  2. The canonical StructuralHash is blind to names AND to
//     semantics-preserving syntactic spelling: commuted operands,
//     mirrored compares, reassociated chains, renamed temporaries, dead
//     stores and redundant recomputes all hash identically.
//  3. It stays a *hash of meaning-bearing structure*: non-equivalent
//     functions (different constants, different opcodes) keep distinct
//     hashes.
//  4. canonicalFingerprint / canonicalStructuralHash never touch the
//     original body: the module prints byte-identically before and
//     after, which is what keeps codegen, thunks and the interpreter
//     differential unaffected by the flag.
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "merge/StructuralHash.h"
#include "transforms/Canonicalize.h"
#include "transforms/Cloning.h"
#include "workloads/RandomFunction.h"
#include "workloads/Suites.h"
#include <gtest/gtest.h>

using namespace salssa;

namespace {

/// f(a, b) = (a + b) * a, spelled straight.
Function *buildStraight(Module &M, const std::string &Name) {
  Context &Ctx = M.getContext();
  Type *I32 = Ctx.int32Ty();
  Function *F =
      M.createFunction(Name, Ctx.types().getFunctionTy(I32, {I32, I32}));
  IRBuilder B(Ctx, F->createBlock("entry"));
  Value *Sum = B.createAdd(F->getArg(0), F->getArg(1), "sum");
  B.createRet(B.createMul(Sum, F->getArg(0), "prod"));
  return F;
}

/// The same function with both binops commuted.
Function *buildCommuted(Module &M, const std::string &Name) {
  Context &Ctx = M.getContext();
  Type *I32 = Ctx.int32Ty();
  Function *F =
      M.createFunction(Name, Ctx.types().getFunctionTy(I32, {I32, I32}));
  IRBuilder B(Ctx, F->createBlock("blk"));
  Value *Sum = B.createAdd(F->getArg(1), F->getArg(0), "weird_name");
  B.createRet(B.createMul(F->getArg(0), Sum, "other_name"));
  return F;
}

/// g(a, b, c) with the add chain parenthesized as \p RightLeaning
/// dictates: ((a+b)+c)+5 versus a+((b+c)+5) — plus folded-vs-split
/// constants when \p SplitConst.
Function *buildChain(Module &M, const std::string &Name, bool RightLeaning,
                     bool SplitConst) {
  Context &Ctx = M.getContext();
  Type *I32 = Ctx.int32Ty();
  Function *F =
      M.createFunction(Name, Ctx.types().getFunctionTy(I32, {I32, I32, I32}));
  IRBuilder B(Ctx, F->createBlock("entry"));
  Value *A = F->getArg(0), *Bv = F->getArg(1), *C = F->getArg(2);
  Value *Chain;
  if (RightLeaning) {
    Value *Inner = B.createAdd(Bv, C);
    Inner = B.createAdd(Inner, Ctx.getInt32(5));
    Chain = B.createAdd(A, Inner);
  } else if (SplitConst) {
    Chain = B.createAdd(B.createAdd(B.createAdd(A, Bv), C), Ctx.getInt32(2));
    Chain = B.createAdd(Chain, Ctx.getInt32(3));
  } else {
    Chain = B.createAdd(B.createAdd(B.createAdd(A, Bv), C), Ctx.getInt32(5));
  }
  B.createRet(Chain);
  return F;
}

/// h(a) with a mirrored compare: a < 10 versus 10 > a.
Function *buildCompare(Module &M, const std::string &Name, bool Mirrored) {
  Context &Ctx = M.getContext();
  Type *I32 = Ctx.int32Ty();
  Function *F =
      M.createFunction(Name, Ctx.types().getFunctionTy(I32, {I32}));
  IRBuilder B(Ctx, F->createBlock("entry"));
  Value *Cond =
      Mirrored
          ? B.createICmp(CmpPredicate::SGT, Ctx.getInt32(10), F->getArg(0))
          : B.createICmp(CmpPredicate::SLT, F->getArg(0), Ctx.getInt32(10));
  B.createRet(B.createSelect(Cond, Ctx.getInt32(1), Ctx.getInt32(0)));
  return F;
}

/// k(a) = a * 3, optionally obscured by a dead store into a fresh slot
/// and a redundant recompute of the product.
Function *buildWithNoise(Module &M, const std::string &Name, bool Noisy) {
  Context &Ctx = M.getContext();
  Type *I32 = Ctx.int32Ty();
  Function *F =
      M.createFunction(Name, Ctx.types().getFunctionTy(I32, {I32}));
  IRBuilder B(Ctx, F->createBlock("entry"));
  Value *Prod = B.createMul(F->getArg(0), Ctx.getInt32(3), "p");
  if (Noisy) {
    AllocaInst *Slot = B.createAlloca(I32, 1, "slot");
    B.createStore(Prod, Slot);
    // Recompute the same product; return the duplicate.
    Prod = B.createMul(F->getArg(0), Ctx.getInt32(3), "p_again");
  }
  B.createRet(Prod);
  return F;
}

} // namespace

//===----------------------------------------------------------------------===//
// Idempotence and determinism
//===----------------------------------------------------------------------===//

TEST(CanonicalizeTest, IdempotentOnHandWrittenBodies) {
  Context Ctx;
  Module M("m", Ctx);
  std::vector<Function *> Fns = {
      buildStraight(M, "straight"), buildCommuted(M, "commuted"),
      buildChain(M, "chain", true, false), buildCompare(M, "cmp", true),
      buildWithNoise(M, "noisy", true)};
  for (Function *F : Fns) {
    canonicalizeFunction(*F, Ctx);
    std::string Once = printFunction(*F);
    CanonicalizeStats Again = canonicalizeFunction(*F, Ctx);
    EXPECT_TRUE(Again.unchanged())
        << F->getName() << ": second canonicalization still rewrote";
    EXPECT_EQ(Once, printFunction(*F))
        << F->getName() << ": canon(canon(f)) != canon(f)";
    EXPECT_TRUE(verifyFunction(*F).ok()) << F->getName();
  }
}

TEST(CanonicalizeTest, IdempotentOnGeneratedWorkloads) {
  Context Ctx;
  BenchmarkProfile P;
  P.Name = "canon_idem";
  P.NumFunctions = 12;
  P.Seed = 0xCA501;
  P.SyntacticDriftPercent = 40;
  std::unique_ptr<Module> M = buildBenchmarkModule(P, Ctx);
  for (Function *F : M->functions()) {
    if (F->isDeclaration())
      continue;
    canonicalizeFunction(*F, Ctx);
    std::string Once = printFunction(*F);
    CanonicalizeStats Again = canonicalizeFunction(*F, Ctx);
    EXPECT_TRUE(Again.unchanged()) << F->getName();
    EXPECT_EQ(Once, printFunction(*F)) << F->getName();
  }
  EXPECT_TRUE(verifyModule(*M).ok());
}

//===----------------------------------------------------------------------===//
// What the canonical hash no longer sees
//===----------------------------------------------------------------------===//

TEST(CanonicalizeTest, BlindToNames) {
  Context Ctx;
  Module M("m", Ctx);
  Function *A = buildStraight(M, "one_name");
  Function *B = buildStraight(M, "a_completely_different_name");
  for (unsigned I = 0; I < B->getNumArgs(); ++I)
    B->getArg(I)->setName("renamed_arg" + std::to_string(I));
  EXPECT_EQ(canonicalStructuralHash(*A), canonicalStructuralHash(*B));
}

TEST(CanonicalizeTest, CommutedOperandsHashEqual) {
  Context Ctx;
  Module M("m", Ctx);
  Function *A = buildStraight(M, "straight");
  Function *B = buildCommuted(M, "commuted");
  // Meaningful only because the raw hash disagrees.
  EXPECT_NE(computeStructuralHash(*A), computeStructuralHash(*B));
  EXPECT_EQ(canonicalStructuralHash(*A), canonicalStructuralHash(*B));
}

TEST(CanonicalizeTest, ReassociatedChainsHashEqual) {
  Context Ctx;
  Module M("m", Ctx);
  Function *Left = buildChain(M, "left", false, false);
  Function *Right = buildChain(M, "right", true, false);
  Function *Split = buildChain(M, "split", false, true);
  EXPECT_NE(computeStructuralHash(*Left), computeStructuralHash(*Right));
  EXPECT_EQ(canonicalStructuralHash(*Left), canonicalStructuralHash(*Right));
  // "x+2+3" and "x+5": constant leaves fold during reassociation.
  EXPECT_EQ(canonicalStructuralHash(*Left), canonicalStructuralHash(*Split));
}

TEST(CanonicalizeTest, MirroredComparesHashEqual) {
  Context Ctx;
  Module M("m", Ctx);
  Function *Lt = buildCompare(M, "lt", false);
  Function *Gt = buildCompare(M, "gt", true);
  EXPECT_NE(computeStructuralHash(*Lt), computeStructuralHash(*Gt));
  EXPECT_EQ(canonicalStructuralHash(*Lt), canonicalStructuralHash(*Gt));
}

TEST(CanonicalizeTest, SubConstantRespellingHashEqual) {
  // "a - 7" and "a + (-7)" are one wraparound operation in two
  // spellings; the canonical view must collapse them (and must not
  // collapse subtractions of *different* constants).
  Context Ctx;
  Module M("m", Ctx);
  Type *I32 = Ctx.int32Ty();
  auto build = [&](const std::string &Name, bool AsAdd, uint64_t C) {
    Function *F =
        M.createFunction(Name, Ctx.types().getFunctionTy(I32, {I32}));
    IRBuilder B(Ctx, F->createBlock("entry"));
    Value *V = AsAdd ? B.createAdd(F->getArg(0), Ctx.getInt(I32, 0 - C))
                     : B.createSub(F->getArg(0), Ctx.getInt(I32, C));
    B.createRet(V);
    return F;
  };
  Function *Sub7 = build("sub7", false, 7);
  Function *AddNeg7 = build("addneg7", true, 7);
  Function *Sub8 = build("sub8", false, 8);
  EXPECT_NE(computeStructuralHash(*Sub7), computeStructuralHash(*AddNeg7));
  EXPECT_EQ(canonicalStructuralHash(*Sub7), canonicalStructuralHash(*AddNeg7));
  EXPECT_NE(canonicalStructuralHash(*Sub7), canonicalStructuralHash(*Sub8));
}

TEST(CanonicalizeTest, DeadStoresAndRecomputesHashEqual) {
  Context Ctx;
  Module M("m", Ctx);
  Function *Clean = buildWithNoise(M, "clean", false);
  Function *Noisy = buildWithNoise(M, "noisy", true);
  EXPECT_NE(computeStructuralHash(*Clean), computeStructuralHash(*Noisy));
  EXPECT_EQ(canonicalStructuralHash(*Clean), canonicalStructuralHash(*Noisy));
}

TEST(CanonicalizeTest, SyntacticDriftClonesHashEqual) {
  // End to end against the workload knob: a pure-syntactic drift clone
  // must land on its base's canonical hash (that is the recall story).
  Context Ctx;
  Module M("m", Ctx);
  RNG Rng(0xD21F7);
  WorkloadEnvironment Env(M, Rng);
  RandomFunctionOptions FO;
  FO.TargetSize = 40;
  for (unsigned I = 0; I < 6; ++I) {
    RNG FnRng = Rng.fork(I);
    Function *Base =
        generateRandomFunction(Env, FnRng, "fn" + std::to_string(I), FO);
    DriftOptions DO;
    DO.MutatePercent = 0;
    DO.InsertPercent = 0;
    DO.SyntacticPercent = 35;
    RNG DriftRng = Rng.fork(1000 + I);
    Function *Clone = cloneWithDrift(Base, "fn" + std::to_string(I) + "_syn",
                                     Env, DriftRng, DO);
    EXPECT_EQ(canonicalStructuralHash(*Base), canonicalStructuralHash(*Clone))
        << Base->getName();
  }
  EXPECT_TRUE(verifyModule(M).ok());
}

//===----------------------------------------------------------------------===//
// What it still sees
//===----------------------------------------------------------------------===//

TEST(CanonicalizeTest, NonEquivalentFunctionsStayDistinct) {
  Context Ctx;
  Module M("m", Ctx);
  Type *I32 = Ctx.int32Ty();
  auto build = [&](const std::string &Name, ValueKind Op, uint64_t C) {
    Function *F =
        M.createFunction(Name, Ctx.types().getFunctionTy(I32, {I32}));
    IRBuilder B(Ctx, F->createBlock("entry"));
    B.createRet(B.createBinOp(Op, F->getArg(0), Ctx.getInt32(C)));
    return F;
  };
  Function *Base = build("base", ValueKind::Add, 7);
  Function *OtherConst = build("other_const", ValueKind::Add, 8);
  Function *OtherOp = build("other_op", ValueKind::Mul, 7);
  Function *NonCommute = build("non_commute", ValueKind::Sub, 7);
  EXPECT_NE(canonicalStructuralHash(*Base),
            canonicalStructuralHash(*OtherConst));
  EXPECT_NE(canonicalStructuralHash(*Base), canonicalStructuralHash(*OtherOp));
  EXPECT_NE(canonicalStructuralHash(*Base),
            canonicalStructuralHash(*NonCommute));
  // a - b is NOT b - a: the commute pass must leave non-commutative
  // operations alone.
  Function *SubAB =
      M.createFunction("sub_ab", Ctx.types().getFunctionTy(I32, {I32, I32}));
  {
    IRBuilder B(Ctx, SubAB->createBlock("entry"));
    B.createRet(B.createSub(SubAB->getArg(0), SubAB->getArg(1)));
  }
  Function *SubBA =
      M.createFunction("sub_ba", Ctx.types().getFunctionTy(I32, {I32, I32}));
  {
    IRBuilder B(Ctx, SubBA->createBlock("entry"));
    B.createRet(B.createSub(SubBA->getArg(1), SubBA->getArg(0)));
  }
  EXPECT_NE(canonicalStructuralHash(*SubAB), canonicalStructuralHash(*SubBA));
}

//===----------------------------------------------------------------------===//
// The shadow-view contract: originals never change
//===----------------------------------------------------------------------===//

TEST(CanonicalizeTest, OriginalBodiesByteUnchanged) {
  Context Ctx;
  BenchmarkProfile P;
  P.Name = "canon_shadow";
  P.NumFunctions = 16;
  P.Seed = 0xCA502;
  P.SyntacticDriftPercent = 30;
  std::unique_ptr<Module> M = buildBenchmarkModule(P, Ctx);
  std::string Before = printModule(*M);
  uint64_t NameCounterBefore = M->uniqueNameCounter();
  for (Function *F : M->functions()) {
    if (F->isDeclaration())
      continue;
    (void)canonicalFingerprint(*F);
    (void)canonicalStructuralHash(*F);
  }
  EXPECT_EQ(Before, printModule(*M))
      << "shadow-view computation rewrote an original body";
  EXPECT_EQ(NameCounterBefore, M->uniqueNameCounter());
  EXPECT_TRUE(verifyModule(*M).ok());
}
