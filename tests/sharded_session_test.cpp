//===- tests/sharded_session_test.cpp - ShardedSessionRunner contract ----------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
// The tentpole contract of the sharded whole-program session
// (merge/ShardedSessionRunner.h):
//
//  1. Bit-identity: under the default Distance selection, a sharded run
//     commits a bit-identical merge set to the unsharded
//     CrossModuleMerger session — same merges, same records, same names,
//     byte-identical module prints — at every shard count x thread
//     count. Pinned here for shard counts {1, 2, 4, 8} x thread counts
//     {1, 4} on a heterogeneous (two-suite, multi-return-type) group,
//     plus FMSA and the auto shard count, plus the
//     MergeDriverOptions::ShardCount routing through runFunctionMerging.
//  2. Shard counts clamp to the pool's merge-compatibility classes, and
//     the imbalance of the balancer's packing is reported.
//  3. Host policy: MergeDriverOptions::Host resolves Biggest/Hottest
//     deterministically; an explicit setHostModule always wins; merged
//     functions live only in the resolved host.
//  4. The profit-guided modes are shard-count-invariant too: their
//     ProfitModel/adaptive-threshold state is kept per
//     merge-compatibility class (MergePipeline.h), so every shard plan
//     reproduces the unsharded session bit for bit — the property that
//     lets one decision-cache file warm sessions at any shard count.
//
//===----------------------------------------------------------------------===//

#include "codesize/SizeModel.h"
#include "ir/IRBuilder.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "merge/ShardedSessionRunner.h"
#include "workloads/Suites.h"
#include <gtest/gtest.h>

using namespace salssa;

namespace {

BenchmarkProfile varietyProfile(const char *Name, uint64_t Seed,
                                unsigned NumFns, unsigned Variety) {
  BenchmarkProfile P;
  P.Name = Name;
  P.NumFunctions = NumFns;
  P.MinSize = 6;
  P.AvgSize = 40;
  P.MaxSize = 160;
  P.CloneFamilyPercent = 55;
  P.MinFamily = 2;
  P.MaxFamily = 5;
  P.FamilyDriftPercent = 10;
  P.LoopPercent = 50;
  P.RetTypeVariety = Variety;
  P.Seed = Seed;
  return P;
}

/// Two suites, two TUs each: clone families span modules AND the pool
/// spans several return-type classes — the shape sharding exists for.
std::vector<BenchmarkProfile> twoSuites() {
  return {varietyProfile("alpha", 101, 48, 5),
          varietyProfile("beta", 202, 40, 4)};
}

MergeDriverOptions defaultOptions(unsigned NumThreads, unsigned Shards) {
  MergeDriverOptions DO;
  DO.Technique = MergeTechnique::SalSSA;
  DO.ExplorationThreshold = 3;
  DO.NumThreads = NumThreads;
  DO.ShardCount = Shards;
  return DO;
}

struct GroupOutcome {
  unsigned Attempts = 0;
  unsigned CommittedMerges = 0;
  unsigned CrossModuleMerges = 0;
  unsigned ShardCount = 0;
  double ShardImbalance = 0;
  std::vector<std::tuple<std::string, std::string, bool>> Records;
  uint64_t SizeAfter = 0;
  std::string Prints;
  bool VerifierOk = false;
};

GroupOutcome outcomeOf(const ModuleGroup &Group, const CrossModuleStats &S) {
  GroupOutcome O;
  O.Attempts = S.Driver.Attempts;
  O.CommittedMerges = S.Driver.CommittedMerges;
  O.CrossModuleMerges = S.CrossModuleMerges;
  O.ShardCount = S.Driver.ShardCount;
  O.ShardImbalance = S.Driver.ShardImbalance;
  for (const MergeRecord &R : S.Driver.Records)
    O.Records.emplace_back(R.Name1, R.Name2, R.Committed);
  O.SizeAfter = S.SizeAfter;
  O.VerifierOk = true;
  for (size_t I = 0; I < Group.size(); ++I) {
    O.Prints += printModule(Group[I]);
    O.VerifierOk = O.VerifierOk && verifyModule(Group[I]).ok();
  }
  return O;
}

/// Unsharded baseline: the plain CrossModuleMerger session.
GroupOutcome runUnsharded(MergeDriverOptions DO) {
  Context Ctx;
  ModuleGroup Group = buildSuiteModuleGroup(twoSuites(), Ctx, 2);
  DO.ShardCount = 1;
  CrossModuleMerger Session(DO);
  for (size_t I = 0; I < Group.size(); ++I)
    Session.addModule(Group[I]);
  CrossModuleStats S = Session.run();
  return outcomeOf(Group, S);
}

/// Sharded run over a byte-identical rebuild, via the runner directly.
GroupOutcome runSharded(MergeDriverOptions DO) {
  Context Ctx;
  ModuleGroup Group = buildSuiteModuleGroup(twoSuites(), Ctx, 2);
  ShardedSessionRunner Runner(DO);
  for (size_t I = 0; I < Group.size(); ++I)
    Runner.addModule(Group[I]);
  CrossModuleStats S = Runner.run();
  return outcomeOf(Group, S);
}

void expectSameMergeSet(const GroupOutcome &Got, const GroupOutcome &Want,
                        const std::string &Tag) {
  EXPECT_TRUE(Got.VerifierOk) << Tag;
  EXPECT_EQ(Got.CommittedMerges, Want.CommittedMerges) << Tag;
  EXPECT_EQ(Got.CrossModuleMerges, Want.CrossModuleMerges) << Tag;
  EXPECT_EQ(Got.Attempts, Want.Attempts) << Tag;
  EXPECT_EQ(Got.SizeAfter, Want.SizeAfter) << Tag;
  ASSERT_EQ(Got.Records.size(), Want.Records.size()) << Tag;
  for (size_t I = 0; I < Got.Records.size(); ++I)
    EXPECT_EQ(Got.Records[I], Want.Records[I]) << Tag << " record " << I;
  EXPECT_EQ(Got.Prints, Want.Prints) << Tag;
}

TEST(ShardedSessionTest, BitIdenticalToUnshardedAtEveryShardAndThreadCount) {
  GroupOutcome Baseline = runUnsharded(defaultOptions(1, 1));
  ASSERT_TRUE(Baseline.VerifierOk);
  ASSERT_GT(Baseline.CommittedMerges, 0u);
  ASSERT_GT(Baseline.CrossModuleMerges, 0u);
  for (unsigned Shards : {1u, 2u, 4u, 8u})
    for (unsigned NT : {1u, 4u}) {
      GroupOutcome Sharded = runSharded(defaultOptions(NT, Shards));
      expectSameMergeSet(Sharded, Baseline,
                         "shards=" + std::to_string(Shards) +
                             " threads=" + std::to_string(NT));
      EXPECT_GE(Sharded.ShardCount, 1u);
      EXPECT_LE(Sharded.ShardCount, Shards == 0 ? 8u : Shards);
    }
}

TEST(ShardedSessionTest, AutoShardCountMatchesToo) {
  GroupOutcome Baseline = runUnsharded(defaultOptions(1, 1));
  MergeDriverOptions DO = defaultOptions(4, 0); // 0 = auto (threads)
  GroupOutcome Auto = runSharded(DO);
  expectSameMergeSet(Auto, Baseline, "auto shard count");
  EXPECT_GE(Auto.ShardCount, 1u);
  EXPECT_LE(Auto.ShardCount, 4u);
  EXPECT_GE(Auto.ShardImbalance, 1.0);
}

TEST(ShardedSessionTest, FMSATechniqueIsBitIdenticalToo) {
  MergeDriverOptions DO = defaultOptions(1, 1);
  DO.Technique = MergeTechnique::FMSA;
  GroupOutcome Baseline = runUnsharded(DO);
  ASSERT_GT(Baseline.CommittedMerges, 0u);
  MergeDriverOptions Sharded = defaultOptions(2, 4);
  Sharded.Technique = MergeTechnique::FMSA;
  expectSameMergeSet(runSharded(Sharded), Baseline, "fmsa shards=4");
}

TEST(ShardedSessionTest, RankingStrategiesAgreeWhenSharded) {
  MergeDriverOptions DO = defaultOptions(2, 4);
  DO.Ranking = RankingStrategy::CandidateIndex;
  GroupOutcome Index = runSharded(DO);
  DO.Ranking = RankingStrategy::BruteForce;
  GroupOutcome Brute = runSharded(DO);
  expectSameMergeSet(Index, Brute, "index-vs-brute sharded");
}

TEST(ShardedSessionTest, ShardCountRoutesThroughRunFunctionMerging) {
  // MergeDriverOptions::ShardCount != 1 must route the single-module
  // driver through the session layer and still reproduce the direct
  // path bit for bit.
  BenchmarkProfile P = varietyProfile("solo", 77, 40, 4);
  auto runOne = [&](unsigned Shards) {
    Context Ctx;
    std::unique_ptr<Module> M = buildBenchmarkModule(P, Ctx);
    MergeDriverOptions DO = defaultOptions(1, Shards);
    MergeDriverStats S = runFunctionMerging(*M, DO);
    EXPECT_TRUE(verifyModule(*M).ok());
    std::string Serialized;
    for (const MergeRecord &R : S.Records)
      Serialized += R.Name1 + "|" + R.Name2 + "|" +
                    (R.Committed ? "C" : "-") + "\n";
    Serialized += printModule(*M);
    return std::make_tuple(S.Attempts, S.CommittedMerges, Serialized);
  };
  EXPECT_EQ(runOne(1), runOne(4));
}

TEST(ShardedSessionTest, ShardCountClampsToCompatibilityClasses) {
  // A variety-1 pool has a single class (every function returns i32):
  // any requested shard count collapses to 1, and the run still matches
  // the unsharded session exactly.
  BenchmarkProfile P = varietyProfile("mono", 55, 32, 1);
  auto session = [&](unsigned Shards) {
    Context Ctx;
    ModuleGroup Group = buildBenchmarkModuleGroup(P, Ctx, 2);
    ShardedSessionRunner Runner(defaultOptions(2, Shards));
    for (size_t I = 0; I < Group.size(); ++I)
      Runner.addModule(Group[I]);
    CrossModuleStats S = Runner.run();
    return outcomeOf(Group, S);
  };
  GroupOutcome Eight = session(8);
  EXPECT_EQ(Eight.ShardCount, 1u);
  EXPECT_DOUBLE_EQ(Eight.ShardImbalance, 1.0);
  expectSameMergeSet(Eight, session(1), "mono-class clamp");
}

TEST(ShardedSessionTest, ProfitModesAreShardCountInvariant) {
  // Calibration is per merge-compatibility class, and a class's serial
  // observation sequence is the same in every shard plan: the
  // profit-guided merge set is a function of (modules, options) alone —
  // never of the shard or thread count.
  for (SelectionStrategy Sel :
       {SelectionStrategy::Profit, SelectionStrategy::Adaptive}) {
    MergeDriverOptions Base = defaultOptions(1, 1);
    Base.Selection = Sel;
    GroupOutcome Unsharded = runUnsharded(Base);
    EXPECT_TRUE(Unsharded.VerifierOk);
    EXPECT_GT(Unsharded.CommittedMerges, 0u);
    for (unsigned Shards : {1u, 2u, 4u, 8u})
      for (unsigned NT : {1u, 4u}) {
        MergeDriverOptions DO = defaultOptions(NT, Shards);
        DO.Selection = Sel;
        expectSameMergeSet(runSharded(DO), Unsharded,
                           "profit-mode sel=" + std::to_string(int(Sel)) +
                               " shards=" + std::to_string(Shards) +
                               " threads=" + std::to_string(NT));
      }
  }
}

TEST(ShardedSessionTest, HostPolicyBiggestPicksTheLargestModule) {
  // Profile "alpha" is bigger than "beta"; with 2 TUs per profile the
  // biggest module is one of alpha's. Verify against an independent
  // size scan, for both session flavours.
  for (bool Sharded : {false, true}) {
    Context Ctx;
    ModuleGroup Group = buildSuiteModuleGroup(twoSuites(), Ctx, 2);
    MergeDriverOptions DO = defaultOptions(2, Sharded ? 4u : 1u);
    DO.Host = HostPolicy::Biggest;
    size_t Expect = 0;
    uint64_t Best = 0;
    for (size_t I = 0; I < Group.size(); ++I) {
      uint64_t Sz = estimateModuleSize(Group[I], DO.Arch);
      if (Sz > Best) {
        Best = Sz;
        Expect = I;
      }
    }
    ASSERT_GT(Expect, 0u) << "host must not default to first for this "
                             "configuration to prove anything";
    CrossModuleMerger Session(DO);
    for (size_t I = 0; I < Group.size(); ++I)
      Session.addModule(Group[I]);
    CrossModuleStats S = Session.run();
    EXPECT_GT(S.Driver.CommittedMerges, 0u);
    EXPECT_EQ(Session.hostModule(), &Group[Expect])
        << (Sharded ? "sharded" : "unsharded");
    // Merged functions (named "<fn>.m.N") live only in the host.
    for (size_t I = 0; I < Group.size(); ++I) {
      EXPECT_TRUE(verifyModule(Group[I]).ok());
      for (Function *F : Group[I].functions())
        if (F->getName().find(".m") != std::string::npos) {
          EXPECT_EQ(I, Expect) << "merged function " << F->getName()
                               << " outside the policy host";
        }
    }
  }
}

TEST(ShardedSessionTest, HostPolicyHottestFollowsCallSiteInDegree) {
  // Handcrafted group: M1's definition receives the most call sites
  // (3 from M0 + 1 from M2), so Hottest must pick M1 even though M0 is
  // registered first and M2 is bigger.
  Context Ctx;
  ModuleGroup Group;
  for (const char *Name : {"m0", "m1", "m2"})
    Group.add(std::make_unique<Module>(Name, Ctx));
  Type *I32 = Ctx.int32Ty();
  Type *FnTy = Ctx.types().getFunctionTy(I32, {I32});
  auto defineLeaf = [&](Module &M, const std::string &Name,
                        unsigned Pad) {
    Function *F = M.createFunction(Name, FnTy);
    IRBuilder B(Ctx, F->createBlock("entry"));
    Value *V = F->getArg(0);
    for (unsigned I = 0; I < Pad; ++I)
      V = B.createAdd(V, Ctx.getInt32(I + 1));
    B.createRet(V);
    return F;
  };
  auto defineCaller = [&](Module &M, const std::string &Name,
                          Function *Callee, unsigned Calls) {
    Function *F = M.createFunction(Name, FnTy);
    IRBuilder B(Ctx, F->createBlock("entry"));
    Value *V = F->getArg(0);
    for (unsigned I = 0; I < Calls; ++I)
      V = B.createCall(Callee, {V});
    B.createRet(V);
    return F;
  };
  Function *Hot = defineLeaf(Group[1], "hot", 2);
  defineCaller(Group[0], "caller0", Hot, 3);
  defineCaller(Group[2], "caller2", Hot, 1);
  defineLeaf(Group[2], "bulk", 24); // M2 is the biggest module
  ASSERT_TRUE(verifyModule(Group[0]).ok() && verifyModule(Group[1]).ok() &&
              verifyModule(Group[2]).ok());

  std::vector<Module *> Modules = {&Group[0], &Group[1], &Group[2]};
  EXPECT_EQ(selectHostModule(Modules, HostPolicy::Hottest,
                             TargetArch::X86Like),
            &Group[1]);
  EXPECT_EQ(selectHostModule(Modules, HostPolicy::Biggest,
                             TargetArch::X86Like),
            &Group[2]);
  EXPECT_EQ(selectHostModule(Modules, HostPolicy::First,
                             TargetArch::X86Like),
            &Group[0]);
}

TEST(ShardedSessionTest, ExplicitHostOverridesPolicy) {
  Context Ctx;
  ModuleGroup Group = buildSuiteModuleGroup(twoSuites(), Ctx, 2);
  MergeDriverOptions DO = defaultOptions(2, 4);
  DO.Host = HostPolicy::Biggest;
  ShardedSessionRunner Runner(DO);
  for (size_t I = 0; I < Group.size(); ++I)
    Runner.addModule(Group[I]);
  Runner.setHostModule(Group[3]);
  CrossModuleStats S = Runner.run();
  EXPECT_GT(S.Driver.CommittedMerges, 0u);
  EXPECT_EQ(Runner.hostModule(), &Group[3]);
  for (size_t I = 0; I < Group.size(); ++I)
    for (Function *F : Group[I].functions())
      if (F->getName().find(".m") != std::string::npos) {
        EXPECT_EQ(I, 3u) << "merged function outside the explicit host";
      }
}

} // namespace
