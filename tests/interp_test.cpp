//===- tests/interp_test.cpp - Interpreter unit tests -------------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "transforms/Cloning.h"
#include <gtest/gtest.h>

using namespace salssa;

namespace {

/// int add3(int a) { return a + 3; }
static Function *buildAdd3(Module &M) {
  Context &Ctx = M.getContext();
  Type *FnTy = Ctx.types().getFunctionTy(Ctx.int32Ty(), {Ctx.int32Ty()});
  Function *F = M.createFunction("add3", FnTy);
  IRBuilder B(Ctx, F->createBlock("entry"));
  B.createRet(B.createAdd(F->getArg(0), Ctx.getInt32(3)));
  return F;
}

/// int sum(int n) { s = 0; for (i = 0; i < n; ++i) s += i; return s; }
static Function *buildSumLoop(Module &M, const std::string &Name = "sum") {
  Context &Ctx = M.getContext();
  Type *FnTy = Ctx.types().getFunctionTy(Ctx.int32Ty(), {Ctx.int32Ty()});
  Function *F = M.createFunction(Name, FnTy);
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Header = F->createBlock("header");
  BasicBlock *Body = F->createBlock("body");
  BasicBlock *Exit = F->createBlock("exit");
  IRBuilder B(Ctx, Entry);
  B.createBr(Header);
  B.setInsertPoint(Header);
  PhiInst *I = B.createPhi(Ctx.int32Ty(), "i");
  PhiInst *S = B.createPhi(Ctx.int32Ty(), "s");
  Value *Cmp = B.createICmp(CmpPredicate::SLT, I, F->getArg(0));
  B.createCondBr(Cmp, Body, Exit);
  B.setInsertPoint(Body);
  Value *S2 = B.createAdd(S, I);
  Value *I2 = B.createAdd(I, Ctx.getInt32(1));
  B.createBr(Header);
  I->addIncoming(Ctx.getInt32(0), Entry);
  I->addIncoming(I2, Body);
  S->addIncoming(Ctx.getInt32(0), Entry);
  S->addIncoming(S2, Body);
  B.setInsertPoint(Exit);
  B.createRet(S);
  return F;
}

TEST(InterpTest, StraightLineArithmetic) {
  Context Ctx;
  Module M("m", Ctx);
  Function *F = buildAdd3(M);
  Interpreter Interp(M);
  ExecResult R = Interp.run(F, {RuntimeValue::makeInt(39)});
  ASSERT_TRUE(R.ok()) << R.TrapReason;
  EXPECT_EQ(R.Return.Bits, 42u);
  EXPECT_EQ(R.StepCount, 2u); // add + ret
}

TEST(InterpTest, LoopWithPhis) {
  Context Ctx;
  Module M("m", Ctx);
  Function *F = buildSumLoop(M);
  Interpreter Interp(M);
  ExecResult R = Interp.run(F, {RuntimeValue::makeInt(10)});
  ASSERT_TRUE(R.ok()) << R.TrapReason;
  EXPECT_EQ(R.Return.Bits, 45u); // 0+1+...+9
  // Negative trip count: loop never executes.
  R = Interp.run(F, {RuntimeValue::makeInt(0xFFFFFFF6)}); // -10 in i32
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Return.Bits, 0u);
}

TEST(InterpTest, IntegerWidthSemantics) {
  Context Ctx;
  Module M("m", Ctx);
  Type *FnTy = Ctx.types().getFunctionTy(Ctx.int8Ty(), {Ctx.int8Ty()});
  Function *F = M.createFunction("w", FnTy);
  IRBuilder B(Ctx, F->createBlock("entry"));
  B.createRet(B.createAdd(F->getArg(0), Ctx.getInt(Ctx.int8Ty(), 200)));
  Interpreter Interp(M);
  // 100 + 200 wraps at 8 bits.
  ExecResult R = Interp.run(F, {RuntimeValue::makeInt(100)});
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Return.Bits, (100 + 200) & 0xFFu);
}

TEST(InterpTest, MemoryRoundTrip) {
  Context Ctx;
  Module M("m", Ctx);
  Type *FnTy = Ctx.types().getFunctionTy(Ctx.int32Ty(), {Ctx.int32Ty()});
  Function *F = M.createFunction("mem", FnTy);
  IRBuilder B(Ctx, F->createBlock("entry"));
  AllocaInst *A = B.createAlloca(Ctx.int32Ty(), 4, "buf");
  Value *P1 = B.createGep(Ctx.int32Ty(), A, Ctx.getInt32(2));
  B.createStore(F->getArg(0), P1);
  Value *L = B.createLoad(Ctx.int32Ty(), P1);
  B.createRet(L);
  Interpreter Interp(M);
  ExecResult R = Interp.run(F, {RuntimeValue::makeInt(777)});
  ASSERT_TRUE(R.ok()) << R.TrapReason;
  EXPECT_EQ(R.Return.Bits, 777u);
}

TEST(InterpTest, GlobalMemoryAndHash) {
  Context Ctx;
  Module M("m", Ctx);
  GlobalVariable *G = M.createGlobal("g", Ctx.int32Ty(), 1);
  Type *FnTy = Ctx.types().getFunctionTy(Ctx.voidTy(), {Ctx.int32Ty()});
  Function *F = M.createFunction("setg", FnTy);
  IRBuilder B(Ctx, F->createBlock("entry"));
  B.createStore(F->getArg(0), G);
  B.createRetVoid();
  Interpreter Interp(M);
  ExecResult R1 = Interp.run(F, {RuntimeValue::makeInt(1)});
  uint64_t H1 = R1.GlobalMemoryHash;
  Interp.resetMemory();
  ExecResult R2 = Interp.run(F, {RuntimeValue::makeInt(2)});
  EXPECT_NE(H1, R2.GlobalMemoryHash); // different stores -> different state
  Interp.resetMemory();
  ExecResult R3 = Interp.run(F, {RuntimeValue::makeInt(1)});
  EXPECT_EQ(H1, R3.GlobalMemoryHash); // deterministic reset
}

TEST(InterpTest, ExternalCallsAreDeterministicAndTraced) {
  Context Ctx;
  Module M("m", Ctx);
  Type *ExtTy = Ctx.types().getFunctionTy(Ctx.int32Ty(), {Ctx.int32Ty()});
  Function *Ext = M.createFunction("ext", ExtTy); // declaration
  Type *FnTy = Ctx.types().getFunctionTy(Ctx.int32Ty(), {Ctx.int32Ty()});
  Function *F = M.createFunction("caller", FnTy);
  IRBuilder B(Ctx, F->createBlock("entry"));
  Value *C1 = B.createCall(Ext, {F->getArg(0)});
  Value *C2 = B.createCall(Ext, {C1});
  B.createRet(C2);
  Interpreter Interp(M);
  ExecResult R1 = Interp.run(F, {RuntimeValue::makeInt(5)});
  ASSERT_TRUE(R1.ok());
  ASSERT_EQ(R1.Trace.size(), 2u);
  EXPECT_EQ(R1.Trace[0].Callee, "ext");
  EXPECT_EQ(R1.Trace[0].Args, std::vector<uint64_t>{5});
  // Rerun: bit-identical behaviour.
  Interp.resetMemory();
  ExecResult R2 = Interp.run(F, {RuntimeValue::makeInt(5)});
  EXPECT_TRUE(behaviourallyEqual(R1, R2));
  // Different input: different trace.
  Interp.resetMemory();
  ExecResult R3 = Interp.run(F, {RuntimeValue::makeInt(6)});
  EXPECT_FALSE(behaviourallyEqual(R1, R3));
}

TEST(InterpTest, NativeHandlerOverride) {
  Context Ctx;
  Module M("m", Ctx);
  Type *ExtTy = Ctx.types().getFunctionTy(Ctx.int32Ty(), {Ctx.int32Ty()});
  Function *Ext = M.createFunction("twice", ExtTy);
  Type *FnTy = Ctx.types().getFunctionTy(Ctx.int32Ty(), {Ctx.int32Ty()});
  Function *F = M.createFunction("caller", FnTy);
  IRBuilder B(Ctx, F->createBlock("entry"));
  B.createRet(B.createCall(Ext, {F->getArg(0)}));
  Interpreter Interp(M);
  Interp.registerNative("twice", [](const std::vector<RuntimeValue> &Args) {
    return RuntimeValue::makeInt(Args[0].Bits * 2);
  });
  ExecResult R = Interp.run(F, {RuntimeValue::makeInt(21)});
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Return.Bits, 42u);
}

TEST(InterpTest, RecursionDefinedCalls) {
  Context Ctx;
  Module M("m", Ctx);
  // fib(n) = n < 2 ? n : fib(n-1) + fib(n-2)
  Type *FnTy = Ctx.types().getFunctionTy(Ctx.int32Ty(), {Ctx.int32Ty()});
  Function *F = M.createFunction("fib", FnTy);
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Base = F->createBlock("base");
  BasicBlock *Rec = F->createBlock("rec");
  IRBuilder B(Ctx, Entry);
  Value *Cmp = B.createICmp(CmpPredicate::SLT, F->getArg(0), Ctx.getInt32(2));
  B.createCondBr(Cmp, Base, Rec);
  B.setInsertPoint(Base);
  B.createRet(F->getArg(0));
  B.setInsertPoint(Rec);
  Value *N1 = B.createSub(F->getArg(0), Ctx.getInt32(1));
  Value *N2 = B.createSub(F->getArg(0), Ctx.getInt32(2));
  Value *F1 = B.createCall(F, {N1});
  Value *F2 = B.createCall(F, {N2});
  B.createRet(B.createAdd(F1, F2));
  ASSERT_TRUE(verifyFunction(*F).ok());
  Interpreter Interp(M);
  ExecResult R = Interp.run(F, {RuntimeValue::makeInt(10)});
  ASSERT_TRUE(R.ok()) << R.TrapReason;
  EXPECT_EQ(R.Return.Bits, 55u);
}

TEST(InterpTest, TrapsOnDivByZeroAndUnreachable) {
  Context Ctx;
  Module M("m", Ctx);
  Type *FnTy = Ctx.types().getFunctionTy(Ctx.int32Ty(),
                                         {Ctx.int32Ty(), Ctx.int32Ty()});
  Function *F = M.createFunction("div", FnTy);
  IRBuilder B(Ctx, F->createBlock("entry"));
  B.createRet(B.createBinOp(ValueKind::SDiv, F->getArg(0), F->getArg(1)));
  Interpreter Interp(M);
  ExecResult R =
      Interp.run(F, {RuntimeValue::makeInt(1), RuntimeValue::makeInt(0)});
  EXPECT_EQ(R.St, ExecResult::Status::Trap);
  EXPECT_NE(R.TrapReason.find("zero"), std::string::npos);

  Function *F2 = M.createFunction(
      "unr", Ctx.types().getFunctionTy(Ctx.voidTy(), {}));
  IRBuilder B2(Ctx, F2->createBlock("entry"));
  B2.createUnreachable();
  ExecResult R2 = Interp.run(F2, {});
  EXPECT_EQ(R2.St, ExecResult::Status::Trap);
}

TEST(InterpTest, FuelLimitStopsInfiniteLoop) {
  Context Ctx;
  Module M("m", Ctx);
  Type *FnTy = Ctx.types().getFunctionTy(Ctx.voidTy(), {});
  Function *F = M.createFunction("inf", FnTy);
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Loop = F->createBlock("loop");
  IRBuilder B(Ctx, Entry);
  B.createBr(Loop);
  B.setInsertPoint(Loop);
  B.createBr(Loop);
  ExecOptions Opts;
  Opts.MaxSteps = 1000;
  Interpreter Interp(M, Opts);
  ExecResult R = Interp.run(F, {});
  EXPECT_EQ(R.St, ExecResult::Status::OutOfFuel);
}

TEST(InterpTest, InvokeNormalPathWhenNoThrow) {
  Context Ctx;
  Module M("m", Ctx);
  Type *ExtTy = Ctx.types().getFunctionTy(Ctx.int32Ty(), {});
  Function *Ext = M.createFunction("mayfail", ExtTy);
  Type *FnTy = Ctx.types().getFunctionTy(Ctx.int32Ty(), {});
  Function *F = M.createFunction("f", FnTy);
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Normal = F->createBlock("normal");
  BasicBlock *Unwind = F->createBlock("unwind");
  IRBuilder B(Ctx, Entry);
  InvokeInst *Inv = B.createInvoke(Ext, {}, Normal, Unwind, "r");
  B.setInsertPoint(Normal);
  B.createRet(Inv);
  B.setInsertPoint(Unwind);
  Value *T = B.createLandingPad();
  B.createResume(T);
  ASSERT_TRUE(verifyFunction(*F).ok());
  Interpreter Interp(M); // throw percent 0
  ExecResult R = Interp.run(F, {});
  ASSERT_TRUE(R.ok());
  EXPECT_FALSE(R.Trace.empty());
  EXPECT_FALSE(R.Trace[0].Threw);
}

TEST(InterpTest, InvokeUnwindPathWhenThrowing) {
  Context Ctx;
  Module M("m", Ctx);
  Type *ExtTy = Ctx.types().getFunctionTy(Ctx.int32Ty(), {});
  Function *Ext = M.createFunction("mayfail", ExtTy);
  Type *FnTy = Ctx.types().getFunctionTy(Ctx.int32Ty(), {});
  Function *F = M.createFunction("f", FnTy);
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Normal = F->createBlock("normal");
  BasicBlock *Unwind = F->createBlock("unwind");
  IRBuilder B(Ctx, Entry);
  InvokeInst *Inv = B.createInvoke(Ext, {}, Normal, Unwind, "r");
  B.setInsertPoint(Normal);
  B.createRet(Inv);
  B.setInsertPoint(Unwind);
  B.createLandingPad();
  B.createRet(Ctx.getInt32(0xEE)); // "catch" and return a marker
  ASSERT_TRUE(verifyFunction(*F).ok());
  ExecOptions Opts;
  Opts.ExternalThrowPercent = 100;
  Interpreter Interp(M, Opts);
  ExecResult R = Interp.run(F, {});
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Return.Bits, 0xEEu);
  EXPECT_TRUE(R.Trace[0].Threw);
}

TEST(InterpTest, UnhandledExceptionViaResume) {
  Context Ctx;
  Module M("m", Ctx);
  Type *ExtTy = Ctx.types().getFunctionTy(Ctx.int32Ty(), {});
  Function *Ext = M.createFunction("mayfail", ExtTy);
  Type *FnTy = Ctx.types().getFunctionTy(Ctx.int32Ty(), {});
  Function *F = M.createFunction("f", FnTy);
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Normal = F->createBlock("normal");
  BasicBlock *Unwind = F->createBlock("unwind");
  IRBuilder B(Ctx, Entry);
  InvokeInst *Inv = B.createInvoke(Ext, {}, Normal, Unwind, "r");
  B.setInsertPoint(Normal);
  B.createRet(Inv);
  B.setInsertPoint(Unwind);
  Value *T = B.createLandingPad();
  B.createResume(T);
  ExecOptions Opts;
  Opts.ExternalThrowPercent = 100;
  Interpreter Interp(M, Opts);
  ExecResult R = Interp.run(F, {});
  EXPECT_EQ(R.St, ExecResult::Status::UnhandledException);
}

TEST(InterpTest, ClonedFunctionBehavesIdentically) {
  Context Ctx;
  Module M("m", Ctx);
  Type *ExtTy = Ctx.types().getFunctionTy(Ctx.int32Ty(), {Ctx.int32Ty()});
  Function *Ext = M.createFunction("sideeffect", ExtTy);
  Function *F = buildSumLoop(M);
  // Add an external call so the trace is non-trivial.
  IRBuilder B(Ctx);
  B.setInsertPoint(F->getEntryBlock()->getTerminator());
  B.createCall(Ext, {F->getArg(0)});
  Function *C = cloneFunction(F, "sum.clone");
  Interpreter Interp(M);
  for (int N : {0, 1, 7, 100}) {
    Interp.resetMemory();
    ExecResult R1 = Interp.run(F, {RuntimeValue::makeInt(
                                      static_cast<uint64_t>(N))});
    Interp.resetMemory();
    ExecResult R2 = Interp.run(C, {RuntimeValue::makeInt(
                                      static_cast<uint64_t>(N))});
    EXPECT_TRUE(behaviourallyEqual(R1, R2)) << "N=" << N;
  }
}

TEST(InterpTest, StepCountScalesWithWork) {
  Context Ctx;
  Module M("m", Ctx);
  Function *F = buildSumLoop(M);
  Interpreter Interp(M);
  ExecResult R10 = Interp.run(F, {RuntimeValue::makeInt(10)});
  ExecResult R100 = Interp.run(F, {RuntimeValue::makeInt(100)});
  EXPECT_GT(R100.StepCount, R10.StepCount);
  EXPECT_GT(R100.StepCount, 9 * R10.StepCount / 2); // roughly linear
}

TEST(InterpTest, SelectAndCasts) {
  Context Ctx;
  Module M("m", Ctx);
  Type *FnTy = Ctx.types().getFunctionTy(Ctx.int64Ty(), {Ctx.int32Ty()});
  Function *F = M.createFunction("sc", FnTy);
  IRBuilder B(Ctx, F->createBlock("entry"));
  Value *Neg = B.createICmp(CmpPredicate::SLT, F->getArg(0), Ctx.getInt32(0));
  Value *Abs = B.createSelect(
      Neg, B.createSub(Ctx.getInt32(0), F->getArg(0)), F->getArg(0));
  B.createRet(B.createSExt(Abs, Ctx.int64Ty()));
  Interpreter Interp(M);
  ExecResult R = Interp.run(F, {RuntimeValue::makeInt(0xFFFFFFFBu)}); // -5
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Return.Bits, 5u);
}

} // namespace
