//===- tests/merge_phenomena_test.cpp - Paper phenomena reproduction ----------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
// Direct tests for the *mechanisms* the paper's argument rests on:
//
//  - §3: merging demoted stores/loads with different slots routes the
//    address through a select, which blocks register promotion (FMSA's
//    failure mode). SalSSA, with no demotion, has no such slots at all.
//  - §4.4 / Fig 14: with coalescing, a select over two disjoint
//    definitions folds away entirely.
//  - §5.5/§5.6: demotion inflates alignment footprint quadratically.
//
// Plus a parameterized property sweep merging random drifted pairs under
// every technique/options combination with differential validation.
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"
#include "ir/IRBuilder.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "merge/FunctionMerger.h"
#include "transforms/Cloning.h"
#include "transforms/Mem2Reg.h"
#include "transforms/Reg2Mem.h"
#include "workloads/RandomFunction.h"
#include <gtest/gtest.h>

using namespace salssa;

namespace {

unsigned countOpcode(const Function &F, ValueKind K) {
  unsigned N = 0;
  for (const BasicBlock *BB : F)
    for (const Instruction *I : *BB)
      if (I->getOpcode() == K)
        ++N;
  return N;
}

/// Builds a pair of phi-rich diamond functions whose *values* differ so
/// that, after demotion, aligned memory operations reference different
/// slots — the exact §3 scenario.
class PhenomenaTest : public ::testing::Test {
protected:
  void SetUp() override {
    M = std::make_unique<Module>("m", Ctx);
    Type *I32 = Ctx.int32Ty();
    Sink = M->createFunction("sink",
                             Ctx.types().getFunctionTy(I32, {I32, I32}));
  }

  /// f(n, c): a diamond whose entry/join (compare, branches, final call)
  /// match across variants while the arm computations use entirely
  /// different opcodes — the partial-similarity shape where divergent
  /// definitions feed merged code through selects (Fig 14).
  Function *buildDiamond(const std::string &Name, bool Variant) {
    Type *I32 = Ctx.int32Ty();
    Function *F = M->createFunction(
        Name, Ctx.types().getFunctionTy(I32, {I32, I32}));
    BasicBlock *Entry = F->createBlock("entry");
    BasicBlock *T = F->createBlock("t");
    BasicBlock *E = F->createBlock("e");
    BasicBlock *J = F->createBlock("j");
    IRBuilder B(Ctx, Entry);
    Value *A = B.createAdd(F->getArg(0), Ctx.getInt32(Variant ? 11 : 13), "a");
    Value *Bv = B.createMul(F->getArg(1), Ctx.getInt32(Variant ? 3 : 5), "b");
    Value *C = B.createICmp(CmpPredicate::SLT, A, Bv, "c");
    B.createCondBr(C, T, E);
    B.setInsertPoint(T);
    Value *T1, *T2;
    if (!Variant) {
      T1 = B.createAdd(A, Bv, "t1");
      T2 = B.createSub(T1, Bv, "t2");
    } else {
      T1 = B.createMul(A, Bv, "t1");
      T2 = B.createAnd(T1, A, "t2");
    }
    B.createBr(J);
    B.setInsertPoint(E);
    Value *E1, *E2;
    if (!Variant) {
      E1 = B.createXor(A, Bv, "e1");
      E2 = B.createOr(E1, A, "e2");
    } else {
      E1 = B.createBinOp(ValueKind::Shl, A, Ctx.getInt32(2), "e1");
      E2 = B.createSub(E1, Bv, "e2");
    }
    B.createBr(J);
    B.setInsertPoint(J);
    PhiInst *P1 = B.createPhi(I32, "p1");
    PhiInst *P2 = B.createPhi(I32, "p2");
    P1->addIncoming(T1, T);
    P1->addIncoming(E1, E);
    P2->addIncoming(T2, T);
    P2->addIncoming(E2, E);
    B.createRet(B.createCall(Sink, {P1, P2}, "r"));
    return F;
  }

  Context Ctx;
  std::unique_ptr<Module> M;
  Function *Sink = nullptr;
};

TEST_F(PhenomenaTest, FMSALeavesUnpromotableSlotsWhereSalSSAHasNone) {
  // A drifted pair (fixed seed, structurally perturbed) whose demoted
  // slot sets misalign: FMSA merges stores/loads with mismatched slot
  // addresses, routing them through selects and blocking promotion.
  RNG Rng(3); // deterministic; this seed exhibits the phenomenon
  WorkloadEnvironment Env(*M, Rng);
  RandomFunctionOptions FO;
  FO.TargetSize = 80;
  FO.LoopPercent = 60;
  RNG G = Rng.fork(1);
  Function *F1 = generateRandomFunction(Env, G, "fm.a", FO);
  DriftOptions DO;
  DO.MutatePercent = 15;
  DO.InsertPercent = 10;
  RNG D = Rng.fork(2);
  Function *F2 = cloneWithDrift(F1, "fm.b", Env, D, DO);
  Function *S1 = cloneFunction(F1, "ss.a");
  Function *S2 = cloneFunction(F2, "ss.b");

  // FMSA path: demote, then merge.
  demoteRegistersToMemory(*F1, Ctx);
  demoteRegistersToMemory(*F2, Ctx);
  MergeAttempt FMSA = attemptMerge(
      *F1, *F2, MergeCodeGenOptions::forTechnique(MergeTechnique::FMSA),
      TargetArch::X86Like, 0, 0);
  ASSERT_TRUE(FMSA.Valid);
  unsigned FMSAAllocas = countOpcode(*FMSA.Gen.Merged, ValueKind::Alloca);

  // SalSSA path: merge the SSA-form originals directly.
  MergeAttempt SalSSA = attemptMerge(
      *S1, *S2, MergeCodeGenOptions::forTechnique(MergeTechnique::SalSSA),
      TargetArch::X86Like, 0, 0);
  ASSERT_TRUE(SalSSA.Valid);
  unsigned SalSSAAllocas = countOpcode(*SalSSA.Gen.Merged, ValueKind::Alloca);

  // The §3 phenomenon: FMSA's merged function retains stack traffic that
  // register promotion could not eliminate; SalSSA retains none.
  EXPECT_GT(FMSAAllocas, 0u) << printFunction(*FMSA.Gen.Merged);
  EXPECT_EQ(SalSSAAllocas, 0u) << printFunction(*SalSSA.Gen.Merged);
  EXPECT_GT(countOpcode(*FMSA.Gen.Merged, ValueKind::Load), 0u);
  // And the merged FMSA function is consequently bigger.
  EXPECT_GT(FMSA.Gen.Merged->getInstructionCount(),
            SalSSA.Gen.Merged->getInstructionCount());
}

TEST_F(PhenomenaTest, SelectAddressBlocksPromotionDirectly) {
  // A minimal reproduction of Fig 4's "prevents promotion" pair: two
  // slots, a store whose target is chosen by a select.
  Type *I32 = Ctx.int32Ty();
  Function *F = M->createFunction(
      "direct", Ctx.types().getFunctionTy(I32, {Ctx.int1Ty(), I32}));
  IRBuilder B(Ctx, F->createBlock("entry"));
  AllocaInst *Slot1 = B.createAlloca(I32, 1, "addr1");
  AllocaInst *Slot2 = B.createAlloca(I32, 1, "addr2");
  Value *Sel = B.createSelect(F->getArg(0), Slot1, Slot2, "sel");
  B.createStore(F->getArg(1), Sel);
  Value *L = B.createLoad(I32, Slot1);
  B.createRet(L);

  EXPECT_FALSE(isPromotableAlloca(Slot1));
  EXPECT_FALSE(isPromotableAlloca(Slot2));
  Mem2RegStats Stats = promoteAllocasToRegisters(*F, Ctx);
  EXPECT_EQ(Stats.PromotedAllocas, 0u);
  EXPECT_EQ(countOpcode(*F, ValueKind::Alloca), 2u); // both survive
}

TEST_F(PhenomenaTest, CoalescingFoldsDisjointSelects) {
  // Fig 14: with coalescing the fid-select over two disjoint defs
  // dissolves; without it, selects/phis survive.
  Function *W1 = buildDiamond("pcA.a", false);
  Function *W2 = buildDiamond("pcA.b", true);
  MergeCodeGenOptions WithPC =
      MergeCodeGenOptions::forTechnique(MergeTechnique::SalSSA);
  MergeAttempt A = attemptMerge(*W1, *W2, WithPC, TargetArch::X86Like, 0, 0);

  Function *N1 = buildDiamond("pcB.a", false);
  Function *N2 = buildDiamond("pcB.b", true);
  MergeCodeGenOptions NoPC = WithPC;
  NoPC.EnablePhiCoalescing = false;
  MergeAttempt Bt = attemptMerge(*N1, *N2, NoPC, TargetArch::X86Like, 0, 0);

  ASSERT_TRUE(A.Valid && Bt.Valid);
  EXPECT_GT(A.Stats.CoalescedPairs, 0u);
  EXPECT_EQ(Bt.Stats.CoalescedPairs, 0u);
  unsigned SelWith = countOpcode(*A.Gen.Merged, ValueKind::Select);
  unsigned SelWithout = countOpcode(*Bt.Gen.Merged, ValueKind::Select);
  unsigned PhiWith = countOpcode(*A.Gen.Merged, ValueKind::Phi);
  unsigned PhiWithout = countOpcode(*Bt.Gen.Merged, ValueKind::Phi);
  EXPECT_LE(SelWith + PhiWith, SelWithout + PhiWithout);
  EXPECT_LE(A.Gen.Merged->getInstructionCount(),
            Bt.Gen.Merged->getInstructionCount());
}

//===----------------------------------------------------------------------===//
// Parameterized property sweep over random pairs
//===----------------------------------------------------------------------===//

struct SweepConfig {
  uint64_t Seed;
  unsigned Drift;
  MergeTechnique Technique;
  bool Coalescing;
};

class MergeSweepTest : public ::testing::TestWithParam<SweepConfig> {};

std::string sweepName(const ::testing::TestParamInfo<SweepConfig> &Info) {
  const SweepConfig &C = Info.param;
  std::string S = C.Technique == MergeTechnique::FMSA ? "FMSA" : "SalSSA";
  S += C.Coalescing ? "_pc" : "_nopc";
  S += "_drift" + std::to_string(C.Drift);
  S += "_seed" + std::to_string(C.Seed);
  return S;
}

TEST_P(MergeSweepTest, MergedPairBehavesLikeOriginals) {
  const SweepConfig &C = GetParam();
  Context Ctx;
  Module M("sweep", Ctx);
  RNG Rng(C.Seed);
  WorkloadEnvironment Env(M, Rng);
  RandomFunctionOptions FO;
  FO.TargetSize = 70;
  FO.LoopPercent = 55;
  FO.InvokePercent = C.Seed % 2 ? 8 : 0;
  RNG G = Rng.fork(1);
  Function *F1 = generateRandomFunction(Env, G, "base", FO);
  DriftOptions DO;
  DO.MutatePercent = C.Drift;
  DO.InsertPercent = C.Drift / 2;
  RNG D = Rng.fork(2);
  Function *F2 = cloneWithDrift(F1, "variant", Env, D, DO);

  // Reference clones survive the merge commit untouched.
  Function *R1 = cloneFunction(F1, "ref1");
  Function *R2 = cloneFunction(F2, "ref2");

  if (C.Technique == MergeTechnique::FMSA) {
    demoteRegistersToMemory(*F1, Ctx);
    demoteRegistersToMemory(*F2, Ctx);
  }
  MergeCodeGenOptions CG =
      MergeCodeGenOptions::forTechnique(C.Technique, C.Coalescing);
  MergeAttempt A = attemptMerge(*F1, *F2, CG, TargetArch::X86Like, 0, 0);
  ASSERT_TRUE(A.Valid);
  VerifierReport VR = verifyFunction(*A.Gen.Merged);
  ASSERT_TRUE(VR.ok()) << VR.str() << printFunction(*A.Gen.Merged);
  commitMerge(A, Ctx);
  ASSERT_TRUE(verifyModule(M).ok()) << verifyModule(M).str();

  ExecOptions EO;
  EO.MaxSteps = 100000;
  EO.ExternalThrowPercent = C.Seed % 2 ? 15 : 0;
  Interpreter Interp(M, EO);
  for (uint64_t In : {0ull, 5ull, 64ull}) {
    for (auto [Thunk, Ref] : {std::pair{F1, R1}, std::pair{F2, R2}}) {
      std::vector<RuntimeValue> Args(Thunk->getNumArgs(),
                                     RuntimeValue::makeInt(In));
      Interp.resetMemory();
      ExecResult RRef = Interp.run(Ref, Args);
      Interp.resetMemory();
      ExecResult RNew = Interp.run(Thunk, Args);
      EXPECT_TRUE(behaviourallyEqual(RRef, RNew))
          << Thunk->getName() << " input " << In << "\n"
          << printFunction(*A.Gen.Merged);
    }
  }
}

std::vector<SweepConfig> makeSweep() {
  std::vector<SweepConfig> Configs;
  for (uint64_t Seed : {101ull, 202ull, 303ull, 404ull})
    for (unsigned Drift : {0u, 10u, 25u})
      for (MergeTechnique T :
           {MergeTechnique::SalSSA, MergeTechnique::FMSA})
        Configs.push_back(
            {Seed, Drift, T, T == MergeTechnique::SalSSA});
  // The NoPC ablation on a couple of seeds.
  Configs.push_back({101, 10, MergeTechnique::SalSSA, false});
  Configs.push_back({202, 25, MergeTechnique::SalSSA, false});
  return Configs;
}

INSTANTIATE_TEST_SUITE_P(Pairs, MergeSweepTest,
                         ::testing::ValuesIn(makeSweep()), sweepName);

} // namespace
