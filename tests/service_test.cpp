//===- tests/service_test.cpp - Daemon differential harness -------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//
//
// The salssad acceptance harness (service/Daemon.h + service/Client.h):
//
//  1. Differential matrix — N concurrent wire clients drive interleaved
//     delta batches through a real Unix-domain socket; after every epoch
//     and at the end, the daemon's modules and session stats must be
//     byte-identical to the same edit script applied to an in-process
//     MergeService — across {1,4} threads x {1,4} shards.
//  2. Warm restart — the daemon is killed and relaunched with the same
//     --decision-cache path; the new first session must warm-replay
//     (CacheHits > 0) to the byte-identical epoch-0 state, and absorb
//     the same edit script to the byte-identical end state.
//  3. Protocol-fault soak — with FaultKind::Protocol armed (truncated
//     frames, corrupt checksums, mid-request disconnects), every client
//     request must still eventually succeed via clean retries, the
//     session must end byte-identical to the in-process run, and no
//     batch may wedge (zero stuck lease holders; the daemon stays
//     responsive).
//  4. Error paths and the admission deadline — clean per-request status
//     codes, idempotent re-registration, retry-token replay over the
//     wire, DeadlineExpired on lease timeout.
//
//===----------------------------------------------------------------------===//

#include "ir/IRPrinter.h"
#include "merge/MergeService.h"
#include "service/Client.h"
#include "service/Daemon.h"
#include "support/RNG.h"
#include "workloads/EditScript.h"
#include "workloads/Suites.h"
#include "gtest/gtest.h"
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <thread>

using namespace salssa;

namespace {

BenchmarkProfile daemonProfile() {
  // The merge-service harness profile: clone families across two TUs,
  // three return types (several classes to dirty independently).
  BenchmarkProfile P;
  P.Name = "daemon";
  P.NumFunctions = 26;
  P.MinSize = 6;
  P.AvgSize = 36;
  P.MaxSize = 120;
  P.CloneFamilyPercent = 55;
  P.MinFamily = 2;
  P.MaxFamily = 4;
  P.FamilyDriftPercent = 10;
  P.LoopPercent = 50;
  P.RetTypeVariety = 3;
  P.Seed = 9001;
  return P;
}

EditScriptOptions scriptOptions(uint64_t Seed, unsigned Steps = 4) {
  EditScriptOptions EO;
  EO.NumSteps = Steps;
  EO.ChangesPerStep = 3;
  EO.AddsPerStep = 1;
  EO.DeletesPerStep = 1;
  EO.Generate.TargetSize = 30;
  EO.Generate.RetTypeVariety = 3;
  EO.Seed = Seed;
  return EO;
}

std::string socketPath(const std::string &Tag) {
  std::string Path = "salssa_" + Tag + ".sock";
  std::remove(Path.c_str());
  return Path;
}

std::string cachePath(const std::string &Tag) {
  std::string Path = "salssa_svc_" + Tag + ".bin";
  std::remove(Path.c_str());
  return Path;
}

std::string groupPrints(const std::vector<Module *> &Mods) {
  std::string Prints;
  for (Module *M : Mods)
    Prints += printModule(*M);
  return Prints;
}

uint64_t digestOf(const std::string &Prints) {
  return fnv1a64(reinterpret_cast<const uint8_t *>(Prints.data()),
                 Prints.size());
}

/// The in-process twin the daemon must stay byte-identical to: its own
/// module group built from the same profile, driven by the same specs.
struct Mirror {
  Context Ctx;
  ModuleGroup Group;
  std::vector<Module *> Mods;
  std::unique_ptr<MergeService> Svc;
  MergeServiceStats Last;

  Mirror(const BenchmarkProfile &P, unsigned NumModules, unsigned Threads,
         unsigned Shards) {
    Group = buildBenchmarkModuleGroup(P, Ctx, NumModules);
    for (size_t I = 0; I < Group.size(); ++I)
      Mods.push_back(&Group[I]);
    MergeServiceOptions SO;
    SO.Driver.NumThreads = Threads;
    SO.Driver.ShardCount = Shards;
    SO.Driver.ExplorationThreshold = 3;
    Svc = std::make_unique<MergeService>(SO);
    for (Module *M : Mods)
      Svc->addModule(*M);
    Last = Svc->initialize();
  }

  void applySpec(const EditStepSpec &Spec) {
    MergeService::DeltaBatch Batch = Svc->beginDelta();
    AppliedEditStep A = applyEditStep(
        Mods, Spec, [&](Function *F) { Batch.checkoutForEdit(F); });
    MergeDelta D;
    D.Changed = A.Changed;
    D.Added = A.Added;
    D.Deleted = A.Deleted;
    Last = Batch.apply(D);
  }

  uint64_t digest() const { return digestOf(groupPrints(Mods)); }
};

RegisterModulesRequest registerRequest(unsigned Threads, unsigned Shards) {
  RegisterModulesRequest RM;
  RM.Profile = daemonProfile();
  RM.NumModules = 2;
  RM.NumThreads = Threads;
  RM.ShardCount = Shards;
  RM.ExplorationThreshold = 3;
  return RM;
}

ClientOptions clientOptions(const std::string &Socket) {
  ClientOptions CO;
  CO.SocketPath = Socket;
  CO.MaxRetries = 10;
  CO.BackoffBaseMillis = 2;
  CO.BackoffMaxMillis = 50;
  return CO;
}

/// The wire-vs-mirror equality check: module bytes and the session-level
/// outcome the snapshot carries. Epoch is deliberately excluded (healed
/// or replayed batches may add no-op epochs without changing outcomes).
void expectSnapshotMatchesMirror(const StatsSnapshot &S, const Mirror &M,
                                 const std::string &Tag,
                                 bool CompareWork = true) {
  EXPECT_EQ(S.ModuleDigest, M.digest()) << Tag << ": module bytes diverged";
  EXPECT_EQ(S.CommittedMerges, M.Last.Session.Driver.CommittedMerges) << Tag;
  EXPECT_EQ(S.CrossModuleMerges, M.Last.Session.CrossModuleMerges) << Tag;
  EXPECT_EQ(S.SizeBefore, M.Last.Session.SizeBefore) << Tag;
  EXPECT_EQ(S.SizeAfter, M.Last.Session.SizeAfter) << Tag;
  if (CompareWork)
    EXPECT_EQ(S.Attempts, M.Last.Session.Driver.Attempts) << Tag;
}

//===----------------------------------------------------------------------===//
// 1. The concurrent differential matrix
//===----------------------------------------------------------------------===//

// For each thread x shard configuration: three concurrent wire clients
// apply the script's steps round-robin (a turnstile keeps script order;
// the connections and their batches interleave through the daemon's
// FIFO lease), while a fourth client hammers QueryStats concurrently.
// Every epoch must match the in-process mirror byte-for-byte.
TEST(ServiceDaemon, ConcurrentClientsMatchInProcessAcrossMatrix) {
  for (unsigned Threads : {1u, 4u}) {
    for (unsigned Shards : {1u, 4u}) {
      std::string Tag =
          "t" + std::to_string(Threads) + ".s" + std::to_string(Shards);
      std::string Socket = socketPath("matrix_" + Tag);
      DaemonOptions DOpts;
      DOpts.SocketPath = Socket;
      Daemon D(DOpts);
      ASSERT_TRUE(D.start()) << D.lastError();

      // Register through the wire; epoch 0 must already match.
      Mirror M(daemonProfile(), 2, Threads, Shards);
      DaemonClient Registrar(clientOptions(Socket));
      StatsSnapshot Init;
      DaemonClient::Result R =
          Registrar.registerModules(registerRequest(Threads, Shards), Init);
      ASSERT_TRUE(R.TransportOk && R.Status == StatusCode::Ok)
          << Tag << ": " << R.ErrorMessage;
      expectSnapshotMatchesMirror(Init, M, Tag + " epoch0");

      // Plan the script from a pristine local copy (same spec).
      Context PlanCtx;
      ModuleGroup PlanGroup =
          buildBenchmarkModuleGroup(daemonProfile(), PlanCtx, 2);
      std::vector<Module *> PlanMods;
      for (size_t I = 0; I < PlanGroup.size(); ++I)
        PlanMods.push_back(&PlanGroup[I]);
      EditScript Script(PlanMods, scriptOptions(1200 + Threads));

      constexpr unsigned NumWriters = 3;
      std::mutex TurnMutex;
      std::condition_variable TurnCV;
      unsigned NextStep = 0;
      std::atomic<bool> Failed{false};
      std::atomic<bool> Done{false};

      auto Writer = [&](unsigned K) {
        DaemonClient Client(clientOptions(Socket));
        for (;;) {
          std::unique_lock<std::mutex> L(TurnMutex);
          TurnCV.wait(L, [&] {
            return NextStep >= Script.numSteps() ||
                   NextStep % NumWriters == K;
          });
          if (NextStep >= Script.numSteps())
            return;
          unsigned S = NextStep;
          EditStepSpec Spec = Script.stepSpec(S);
          ApplyDeltaResponse Resp;
          uint64_t Token = mix64(0xAB5000 + Threads * 100 + Shards * 10 + S);
          DaemonClient::Result RR = Client.applyStep(Spec, Token, Resp);
          if (!RR.TransportOk || RR.Status != StatusCode::Ok) {
            ADD_FAILURE() << Tag << " step " << S << ": "
                          << statusCodeName(RR.Status) << " "
                          << RR.ErrorMessage;
            Failed.store(true);
            NextStep = Script.numSteps();
            TurnCV.notify_all();
            return;
          }
          M.applySpec(Spec);
          expectSnapshotMatchesMirror(Resp.Stats, M,
                                      Tag + " step " + std::to_string(S));
          ++NextStep;
          TurnCV.notify_all();
        }
      };
      auto Reader = [&] {
        DaemonClient Client(clientOptions(Socket));
        while (!Done.load()) {
          QueryStatsResponse Resp;
          DaemonClient::Result RR = Client.queryStats(false, Resp);
          if (RR.TransportOk && RR.Status == StatusCode::Ok)
            EXPECT_LE(Resp.Stats.SizeAfter, Resp.Stats.SizeBefore) << Tag;
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
      };

      std::vector<std::thread> Threads_;
      Threads_.emplace_back(Reader);
      for (unsigned K = 0; K < NumWriters; ++K)
        Threads_.emplace_back(Writer, K);
      for (size_t I = 1; I < Threads_.size(); ++I)
        Threads_[I].join();
      Done.store(true);
      Threads_[0].join();
      ASSERT_FALSE(Failed.load()) << Tag;

      // Full byte-identity witness: the printed modules themselves.
      QueryStatsResponse Final;
      R = Registrar.queryStats(true, Final);
      ASSERT_TRUE(R.TransportOk && R.Status == StatusCode::Ok) << Tag;
      EXPECT_EQ(Final.Prints, groupPrints(M.Mods))
          << Tag << ": final module text diverged";
      EXPECT_EQ(Final.Daemon.DeltasApplied, Script.numSteps()) << Tag;
      EXPECT_EQ(Final.Daemon.RequestErrors, 0u) << Tag;

      D.stop();
    }
  }
}

//===----------------------------------------------------------------------===//
// 2. Warm restart through the decision cache
//===----------------------------------------------------------------------===//

// Daemon A runs with --decision-cache defaults, serves a session, dies.
// Daemon B on the same cache file must warm-replay its first session to
// the byte-identical epoch-0 state (CacheHits > 0, zero extra cost for
// the client), then absorb the same script to the same end state.
TEST(ServiceDaemon, WarmRestartReplaysFirstSessionByteIdentical) {
  std::string Cache = cachePath("daemon_restart");
  std::string Socket = socketPath("restart");
  DaemonOptions DOpts;
  DOpts.SocketPath = Socket;
  DOpts.Defaults.Driver.DecisionCachePath = Cache;

  Context PlanCtx;
  ModuleGroup PlanGroup = buildBenchmarkModuleGroup(daemonProfile(), PlanCtx, 2);
  std::vector<Module *> PlanMods;
  for (size_t I = 0; I < PlanGroup.size(); ++I)
    PlanMods.push_back(&PlanGroup[I]);
  EditScript Script(PlanMods, scriptOptions(4242, 2));

  StatsSnapshot ColdInit;
  uint64_t ColdFinalDigest = 0;
  uint64_t ColdCommits = 0;
  {
    Daemon A(DOpts);
    ASSERT_TRUE(A.start()) << A.lastError();
    DaemonClient Client(clientOptions(Socket));
    DaemonClient::Result R =
        Client.registerModules(registerRequest(1, 1), ColdInit);
    ASSERT_TRUE(R.TransportOk && R.Status == StatusCode::Ok)
        << R.ErrorMessage;
    EXPECT_EQ(ColdInit.CacheHits, 0u) << "first daemon run must be cold";
    for (unsigned S = 0; S < Script.numSteps(); ++S) {
      ApplyDeltaResponse Resp;
      DaemonClient::Result RR =
          Client.applyStep(Script.stepSpec(S), 9100 + S, Resp);
      ASSERT_TRUE(RR.TransportOk && RR.Status == StatusCode::Ok);
      ColdFinalDigest = Resp.Stats.ModuleDigest;
      ColdCommits = Resp.Stats.CommittedMerges;
    }
    A.stop(); // kill without Shutdown: the cache file must already exist
  }

  {
    Daemon B(DOpts);
    ASSERT_TRUE(B.start()) << B.lastError();
    DaemonClient Client(clientOptions(Socket));
    StatsSnapshot WarmInit;
    DaemonClient::Result R =
        Client.registerModules(registerRequest(1, 1), WarmInit);
    ASSERT_TRUE(R.TransportOk && R.Status == StatusCode::Ok)
        << R.ErrorMessage;
    // The restarted daemon's first session replays from the cache —
    // byte-identical state, same committed merges, hits counted. (Warm
    // replay legitimately changes Attempts accounting — skipped
    // non-winners — so work counters are not compared.)
    EXPECT_GT(WarmInit.CacheHits, 0u) << "restart did not warm-replay";
    EXPECT_EQ(WarmInit.ModuleDigest, ColdInit.ModuleDigest);
    EXPECT_EQ(WarmInit.CommittedMerges, ColdInit.CommittedMerges);
    EXPECT_EQ(WarmInit.SizeBefore, ColdInit.SizeBefore);
    EXPECT_EQ(WarmInit.SizeAfter, ColdInit.SizeAfter);
    // Same script, same end bytes (tokens differ; sessions are fresh).
    uint64_t WarmFinalDigest = 0, WarmCommits = 0;
    for (unsigned S = 0; S < Script.numSteps(); ++S) {
      ApplyDeltaResponse Resp;
      DaemonClient::Result RR =
          Client.applyStep(Script.stepSpec(S), 9200 + S, Resp);
      ASSERT_TRUE(RR.TransportOk && RR.Status == StatusCode::Ok);
      WarmFinalDigest = Resp.Stats.ModuleDigest;
      WarmCommits = Resp.Stats.CommittedMerges;
    }
    EXPECT_EQ(WarmFinalDigest, ColdFinalDigest)
        << "post-restart deltas diverged from the first daemon's";
    EXPECT_EQ(WarmCommits, ColdCommits);
    B.stop();
  }
  std::remove(Cache.c_str());
}

//===----------------------------------------------------------------------===//
// 3. Protocol-fault soak
//===----------------------------------------------------------------------===//

// With FaultKind::Protocol armed at a heavy rate, frames get truncated,
// checksums corrupted and connections dropped mid-request — yet every
// apply must eventually land exactly once (the retry token absorbs
// replays), the end state must match the in-process mirror, and the
// daemon must stay fully responsive: zero wedged sessions.
TEST(ServiceDaemon, ProtocolFaultSoakNeverWedgesAndStaysByteIdentical) {
  std::string Socket = socketPath("soak");
  DaemonOptions DOpts;
  DOpts.SocketPath = Socket;
  DOpts.Faults.Seed = 77;
  DOpts.Faults.setRate(FaultKind::Protocol, 200); // 20% of responses damaged
  Daemon D(DOpts);
  ASSERT_TRUE(D.start()) << D.lastError();

  Mirror M(daemonProfile(), 2, 1, 1);
  DaemonClient Registrar(clientOptions(Socket));
  StatsSnapshot Init;
  DaemonClient::Result R =
      Registrar.registerModules(registerRequest(1, 1), Init);
  ASSERT_TRUE(R.TransportOk && R.Status == StatusCode::Ok) << R.ErrorMessage;

  Context PlanCtx;
  ModuleGroup PlanGroup = buildBenchmarkModuleGroup(daemonProfile(), PlanCtx, 2);
  std::vector<Module *> PlanMods;
  for (size_t I = 0; I < PlanGroup.size(); ++I)
    PlanMods.push_back(&PlanGroup[I]);
  EditScript Script(PlanMods, scriptOptions(6001));

  constexpr unsigned NumWriters = 2;
  std::mutex TurnMutex;
  std::condition_variable TurnCV;
  unsigned NextStep = 0;
  std::atomic<bool> Failed{false};
  std::atomic<uint64_t> TotalRetries{0};

  auto Writer = [&](unsigned K) {
    DaemonClient Client(clientOptions(Socket));
    for (;;) {
      std::unique_lock<std::mutex> L(TurnMutex);
      TurnCV.wait(L, [&] {
        return NextStep >= Script.numSteps() || NextStep % NumWriters == K;
      });
      if (NextStep >= Script.numSteps())
        break;
      unsigned S = NextStep;
      ApplyDeltaResponse Resp;
      DaemonClient::Result RR =
          Client.applyStep(Script.stepSpec(S), mix64(0x50AB + S), Resp);
      if (!RR.TransportOk || RR.Status != StatusCode::Ok) {
        ADD_FAILURE() << "soak step " << S << ": "
                      << statusCodeName(RR.Status) << " " << RR.ErrorMessage;
        Failed.store(true);
        NextStep = Script.numSteps();
        TurnCV.notify_all();
        break;
      }
      M.applySpec(Script.stepSpec(S));
      EXPECT_EQ(Resp.Stats.ModuleDigest, M.digest())
          << "soak step " << S << " diverged";
      ++NextStep;
      TurnCV.notify_all();
    }
    TotalRetries.fetch_add(Client.retriesUsed());
  };

  std::vector<std::thread> Writers;
  for (unsigned K = 0; K < NumWriters; ++K)
    Writers.emplace_back(Writer, K);
  for (std::thread &T : Writers)
    T.join();
  ASSERT_FALSE(Failed.load());

  // Zero wedged sessions: a fresh client must get the lease and stats
  // immediately (every batch either applied, replayed, or was healed).
  DaemonClient Probe(clientOptions(Socket));
  ApplyDeltaResponse Empty;
  EditStepSpec Noop;
  R = Probe.applyStep(Noop, 0xF1A7, Empty);
  ASSERT_TRUE(R.TransportOk && R.Status == StatusCode::Ok)
      << "daemon wedged after the soak: " << R.ErrorMessage;
  QueryStatsResponse Final;
  R = Probe.queryStats(true, Final);
  ASSERT_TRUE(R.TransportOk && R.Status == StatusCode::Ok);
  EXPECT_EQ(Final.Prints, groupPrints(M.Mods))
      << "soak end state diverged from in-process";
  // The soak must have actually soaked: injected faults on the daemon
  // side, transport retries on the client side.
  EXPECT_GT(Final.Daemon.ProtocolFaultsInjected, 0u);
  EXPECT_GT(TotalRetries.load() + Probe.retriesUsed(), 0u);
  // Every scripted delta landed exactly once — the token cache absorbed
  // every retried apply (the empty probe delta is the +1). No writer
  // ever checked functions out over the wire, so nothing needed healing.
  EXPECT_EQ(Final.Daemon.DeltasApplied, Script.numSteps() + 1);
  EXPECT_EQ(Final.Daemon.HealedBatches, 0u);
  D.stop();
}

//===----------------------------------------------------------------------===//
// 4. Error paths, idempotency, admission deadline
//===----------------------------------------------------------------------===//

TEST(ServiceDaemon, CleanStatusCodesOnEveryErrorPath) {
  std::string Socket = socketPath("errors");
  DaemonOptions DOpts;
  DOpts.SocketPath = Socket;
  Daemon D(DOpts);
  ASSERT_TRUE(D.start()) << D.lastError();
  DaemonClient Client(clientOptions(Socket));

  // Session requests before RegisterModules.
  DaemonClient::Result R = Client.beginDelta();
  EXPECT_EQ(R.Status, StatusCode::NotRegistered);
  ApplyDeltaResponse AResp;
  EditStepSpec Noop;
  R = Client.applyDelta(Noop, 1, AResp);
  EXPECT_EQ(R.Status, StatusCode::NotRegistered);

  StatsSnapshot Init;
  R = Client.registerModules(registerRequest(1, 1), Init);
  ASSERT_TRUE(R.TransportOk && R.Status == StatusCode::Ok) << R.ErrorMessage;

  // Idempotent re-registration with the identical spec...
  StatsSnapshot Again;
  R = Client.registerModules(registerRequest(1, 1), Again);
  EXPECT_EQ(R.Status, StatusCode::Ok);
  EXPECT_EQ(Again.ModuleDigest, Init.ModuleDigest);
  // ...but a different spec is refused.
  RegisterModulesRequest Other = registerRequest(1, 1);
  Other.Profile.Seed = 999;
  R = Client.registerModules(Other, Again);
  EXPECT_EQ(R.Status, StatusCode::AlreadyRegistered);

  // Checkout/apply without a batch.
  R = Client.checkoutForEdit(0, "whatever");
  EXPECT_EQ(R.Status, StatusCode::NoBatch);
  R = Client.applyDelta(Noop, 2, AResp);
  EXPECT_EQ(R.Status, StatusCode::NoBatch);

  // Unknown function inside a held batch.
  R = Client.beginDelta();
  ASSERT_EQ(R.Status, StatusCode::Ok);
  R = Client.checkoutForEdit(0, "no_such_function");
  EXPECT_EQ(R.Status, StatusCode::UnknownFunction);
  R = Client.checkoutForEdit(99, "f");
  EXPECT_EQ(R.Status, StatusCode::UnknownFunction);
  R = Client.applyDelta(Noop, 3, AResp); // close the batch cleanly
  EXPECT_EQ(R.Status, StatusCode::Ok);

  // Wire-level retry-token idempotency: the same token replays the
  // remembered response (Replayed=1) and does not advance the session.
  ApplyDeltaResponse First, Second;
  R = Client.applyStep(Noop, 0x70CEC, First);
  ASSERT_EQ(R.Status, StatusCode::Ok);
  EXPECT_FALSE(First.Replayed);
  R = Client.applyStep(Noop, 0x70CEC, Second);
  ASSERT_EQ(R.Status, StatusCode::Ok);
  EXPECT_TRUE(Second.Replayed) << "same token must replay, not re-apply";
  EXPECT_EQ(Second.Stats.Epoch, First.Stats.Epoch)
      << "a replayed token advanced the session";
  EXPECT_EQ(Second.Stats.ModuleDigest, First.Stats.ModuleDigest);

  D.stop();
}

TEST(ServiceDaemon, LeaseAdmissionDeadlineExpiresCleanly) {
  std::string Socket = socketPath("deadline");
  DaemonOptions DOpts;
  DOpts.SocketPath = Socket;
  Daemon D(DOpts);
  ASSERT_TRUE(D.start()) << D.lastError();

  DaemonClient Holder(clientOptions(Socket));
  StatsSnapshot Init;
  DaemonClient::Result R =
      Holder.registerModules(registerRequest(1, 1), Init);
  ASSERT_TRUE(R.TransportOk && R.Status == StatusCode::Ok) << R.ErrorMessage;
  ASSERT_EQ(Holder.beginDelta().Status, StatusCode::Ok);

  // A second client with a short admission deadline must fail cleanly —
  // DeadlineExpired, no side effects — while the lease is held.
  ClientOptions Short = clientOptions(Socket);
  Short.LeaseDeadlineMillis = 100;
  Short.MaxRetries = 0; // a deadline answer is an answer, not a failure
  DaemonClient Waiter(Short);
  R = Waiter.beginDelta();
  EXPECT_EQ(R.Status, StatusCode::DeadlineExpired);

  // The holder finishes; now the same waiter is admitted promptly.
  ApplyDeltaResponse Resp;
  EditStepSpec Noop;
  ASSERT_EQ(Holder.applyDelta(Noop, 0xDEAD1, Resp).Status, StatusCode::Ok);
  R = Waiter.beginDelta();
  EXPECT_EQ(R.Status, StatusCode::Ok);
  ASSERT_EQ(Waiter.applyDelta(Noop, 0xDEAD2, Resp).Status, StatusCode::Ok);

  EXPECT_GE(D.counters().DeadlineExpirations, 1u);
  D.stop();
}

// An abandoned batch (client dies holding the lease, functions checked
// out) must heal: the next client is admitted against a coherent
// session whose bytes did not drift.
TEST(ServiceDaemon, DisconnectedBatchHealsAndAdmitsNextWriter) {
  std::string Socket = socketPath("heal");
  DaemonOptions DOpts;
  DOpts.SocketPath = Socket;
  Daemon D(DOpts);
  ASSERT_TRUE(D.start()) << D.lastError();

  Mirror M(daemonProfile(), 2, 1, 1);
  DaemonClient Survivor(clientOptions(Socket));
  StatsSnapshot Init;
  DaemonClient::Result R =
      Survivor.registerModules(registerRequest(1, 1), Init);
  ASSERT_TRUE(R.TransportOk && R.Status == StatusCode::Ok) << R.ErrorMessage;
  std::string SomeFunction;
  for (Function *F : M.Mods[0]->functions())
    if (!F->isDeclaration()) {
      SomeFunction = F->getName();
      break;
    }
  ASSERT_FALSE(SomeFunction.empty());

  {
    // This client acquires the lease, checks a function out, and dies.
    DaemonClient Doomed(clientOptions(Socket));
    ASSERT_EQ(Doomed.beginDelta().Status, StatusCode::Ok);
    ASSERT_EQ(Doomed.checkoutForEdit(0, SomeFunction).Status, StatusCode::Ok);
  } // destructor closes the socket mid-batch

  // The survivor must be admitted (the daemon healed the abandoned
  // batch) and the session bytes must not have drifted.
  ApplyDeltaResponse Resp;
  EditStepSpec Noop;
  R = Survivor.applyStep(Noop, 0x4EA1, Resp);
  ASSERT_TRUE(R.TransportOk && R.Status == StatusCode::Ok)
      << "session wedged after an abandoned batch";
  EXPECT_EQ(Resp.Stats.ModuleDigest, M.digest())
      << "healing changed module bytes";
  EXPECT_GE(D.counters().HealedBatches, 1u);
  D.stop();
}

} // namespace
