//===- tests/cross_module_test.cpp - CrossModuleMerger contract tests ----------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
// The CrossModuleMerger contract has three legs:
//
//  1. N=1 equivalence: a session with one registered module reproduces
//     runFunctionMerging bit for bit (same merges, records, names,
//     module bytes) — also reachable via MergeDriverOptions::CrossModule.
//  2. Determinism: for any module split and any thread count the session
//     commits identical merges with identical records and byte-identical
//     module prints (the MergePipeline contract, extended to groups).
//  3. Correctness of the commit: after a session every registered module
//     is verifier-clean — thunks in every module dispatch into merged
//     functions that live only in the designated host module.
//
// Plus the profitability point of the whole exercise: a clone-heavy
// suite split across modules merges strictly better cross-module than
// per-module. These tests run under -DSALSSA_TSAN=ON as well (tsan
// preset), which races the cross-module attempt stage under TSan.
//
//===----------------------------------------------------------------------===//

#include "codesize/SizeModel.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "merge/CrossModuleMerger.h"
#include "workloads/Suites.h"
#include <gtest/gtest.h>

using namespace salssa;

namespace {

BenchmarkProfile crossProfile(uint64_t Seed, unsigned NumFns = 40) {
  BenchmarkProfile P;
  P.Name = "xmod";
  P.NumFunctions = NumFns;
  P.MinSize = 6;
  P.AvgSize = 45;
  P.MaxSize = 200;
  P.CloneFamilyPercent = 60; // split families are the cross-module payload
  P.MinFamily = 2;
  P.MaxFamily = 6;
  P.FamilyDriftPercent = 10;
  P.LoopPercent = 50;
  P.Seed = Seed;
  return P;
}

MergeDriverOptions defaultOptions(unsigned NumThreads) {
  MergeDriverOptions DO;
  DO.Technique = MergeTechnique::SalSSA;
  DO.ExplorationThreshold = 3;
  DO.NumThreads = NumThreads;
  return DO;
}

/// Everything observable about one session run (timings excluded).
struct GroupOutcome {
  unsigned Attempts = 0;
  unsigned CommittedMerges = 0;
  unsigned CrossModuleMerges = 0;
  unsigned IntraModuleMerges = 0;
  std::vector<std::tuple<std::string, std::string, bool>> Records;
  uint64_t SizeAfter = 0;
  std::string Prints; ///< all module prints, in registration order
  bool VerifierOk = false;
};

GroupOutcome runSession(const BenchmarkProfile &P, unsigned NumModules,
                        MergeDriverOptions DO, size_t HostIdx = 0) {
  Context Ctx;
  ModuleGroup Group = buildBenchmarkModuleGroup(P, Ctx, NumModules);
  CrossModuleMerger Session(DO);
  for (size_t I = 0; I < Group.size(); ++I)
    Session.addModule(Group[I]);
  Session.setHostModule(Group[HostIdx]);
  CrossModuleStats S = Session.run();

  GroupOutcome O;
  O.Attempts = S.Driver.Attempts;
  O.CommittedMerges = S.Driver.CommittedMerges;
  O.CrossModuleMerges = S.CrossModuleMerges;
  O.IntraModuleMerges = S.IntraModuleMerges;
  for (const MergeRecord &R : S.Driver.Records)
    O.Records.emplace_back(R.Name1, R.Name2, R.Committed);
  O.SizeAfter = S.SizeAfter;
  O.VerifierOk = true;
  for (size_t I = 0; I < Group.size(); ++I) {
    O.Prints += printModule(Group[I]);
    O.VerifierOk = O.VerifierOk && verifyModule(Group[I]).ok();
  }
  return O;
}

void expectSameOutcome(const GroupOutcome &Got, const GroupOutcome &Want,
                       const std::string &Tag) {
  EXPECT_TRUE(Got.VerifierOk) << Tag;
  EXPECT_EQ(Got.CommittedMerges, Want.CommittedMerges) << Tag;
  EXPECT_EQ(Got.CrossModuleMerges, Want.CrossModuleMerges) << Tag;
  EXPECT_EQ(Got.Attempts, Want.Attempts) << Tag;
  EXPECT_EQ(Got.SizeAfter, Want.SizeAfter) << Tag;
  ASSERT_EQ(Got.Records.size(), Want.Records.size()) << Tag;
  for (size_t I = 0; I < Got.Records.size(); ++I)
    EXPECT_EQ(Got.Records[I], Want.Records[I]) << Tag << " record " << I;
  EXPECT_EQ(Got.Prints, Want.Prints) << Tag;
}

TEST(CrossModuleTest, SingleModuleSessionMatchesDriverBitForBit) {
  // Leg 1 of the contract, via the MergeDriverOptions::CrossModule A/B:
  // the N=1 session must replay the direct driver exactly.
  BenchmarkProfile P = crossProfile(17);
  for (MergeTechnique Tech :
       {MergeTechnique::SalSSA, MergeTechnique::FMSA}) {
    auto runOne = [&](bool ViaSession) {
      Context Ctx;
      std::unique_ptr<Module> M = buildBenchmarkModule(P, Ctx);
      MergeDriverOptions DO = defaultOptions(1);
      DO.Technique = Tech;
      DO.CrossModule = ViaSession;
      MergeDriverStats S = runFunctionMerging(*M, DO);
      EXPECT_TRUE(verifyModule(*M).ok());
      std::string Serialized;
      for (const MergeRecord &R : S.Records)
        Serialized += R.Name1 + "|" + R.Name2 + "|" +
                      (R.Committed ? "C" : "-") + "\n";
      Serialized += printModule(*M);
      EXPECT_EQ(S.CrossModuleMerges, 0u);
      return std::make_tuple(S.Attempts, S.CommittedMerges, Serialized);
    };
    EXPECT_EQ(runOne(false), runOne(true))
        << (Tech == MergeTechnique::SalSSA ? "salssa" : "fmsa");
  }
}

class CrossModuleDeterminismTest
    : public ::testing::TestWithParam<unsigned> {};

TEST_P(CrossModuleDeterminismTest, ThreadCountsProduceIdenticalMerges) {
  // Leg 2: a K-way split commits identical merges at every thread count,
  // down to byte-identical prints of every module.
  const unsigned NumModules = GetParam();
  BenchmarkProfile P = crossProfile(23);
  MergeDriverOptions DO = defaultOptions(1);
  GroupOutcome Serial = runSession(P, NumModules, DO);
  ASSERT_TRUE(Serial.VerifierOk);
  EXPECT_GT(Serial.CommittedMerges, 0u);
  if (NumModules > 1) { // split families must actually cross the boundary
    EXPECT_GT(Serial.CrossModuleMerges, 0u);
  }
  for (unsigned NT : {2u, 4u, 8u}) {
    GroupOutcome Parallel = runSession(P, NumModules, defaultOptions(NT));
    expectSameOutcome(Parallel, Serial,
                      "modules=" + std::to_string(NumModules) +
                          " threads=" + std::to_string(NT));
  }
}

INSTANTIATE_TEST_SUITE_P(Splits, CrossModuleDeterminismTest,
                         ::testing::Values(1u, 2u, 4u, 8u));

TEST(CrossModuleTest, RankingStrategiesAgreeAcrossModules) {
  // The CandidateIndex ranks a mixed-module pool; it must still select
  // exactly the brute-force candidates.
  BenchmarkProfile P = crossProfile(31, 32);
  MergeDriverOptions DO = defaultOptions(1);
  DO.Ranking = RankingStrategy::CandidateIndex;
  GroupOutcome Index = runSession(P, 4, DO);
  DO.Ranking = RankingStrategy::BruteForce;
  GroupOutcome Brute = runSession(P, 4, DO);
  expectSameOutcome(Index, Brute, "index-vs-brute 4 modules");
}

TEST(CrossModuleTest, MergedFunctionsLiveOnlyInTheHost) {
  // Leg 3: thunks everywhere, merged bodies only in the designated host
  // — including a non-default host — and every module verifier-clean.
  BenchmarkProfile P = crossProfile(41);
  for (size_t HostIdx : {size_t(0), size_t(2)}) {
    Context Ctx;
    ModuleGroup Group = buildBenchmarkModuleGroup(P, Ctx, 4);
    CrossModuleMerger Session(defaultOptions(2));
    for (size_t I = 0; I < Group.size(); ++I)
      Session.addModule(Group[I]);
    Session.setHostModule(Group[HostIdx]);
    ASSERT_EQ(Session.hostModule(), &Group[HostIdx]);
    CrossModuleStats S = Session.run();
    EXPECT_GT(S.Driver.CommittedMerges, 0u);
    // Generated names contain no '.'; merged functions are "<name>.m.N".
    for (size_t I = 0; I < Group.size(); ++I) {
      VerifierReport VR = verifyModule(Group[I]);
      EXPECT_TRUE(VR.ok()) << "module " << I << ":\n" << VR.str();
      for (Function *F : Group[I].functions())
        if (F->getName().find(".m") != std::string::npos) {
          EXPECT_EQ(I, HostIdx)
              << "merged function " << F->getName() << " outside the host";
        }
    }
  }
}

TEST(CrossModuleTest, SplitSuiteMergesStrictlyBetterCrossModule) {
  // The acceptance property: merging a 4-way split as one session beats
  // merging each module independently — the split hides clone families
  // from per-module runs.
  BenchmarkProfile P = crossProfile(53, 48);
  MergeDriverOptions DO = defaultOptions(1);

  uint64_t PerModuleAfter = 0;
  unsigned PerModuleCommits = 0;
  {
    Context Ctx;
    ModuleGroup Group = buildBenchmarkModuleGroup(P, Ctx, 4);
    for (size_t I = 0; I < Group.size(); ++I) {
      MergeDriverStats S = runFunctionMerging(Group[I], DO);
      PerModuleCommits += S.CommittedMerges;
      PerModuleAfter += estimateModuleSize(Group[I], DO.Arch);
      EXPECT_TRUE(verifyModule(Group[I]).ok());
    }
  }

  GroupOutcome Session = runSession(P, 4, DO);
  ASSERT_TRUE(Session.VerifierOk);
  EXPECT_GT(Session.CrossModuleMerges, 0u);
  EXPECT_GE(Session.CommittedMerges, PerModuleCommits);
  EXPECT_LT(Session.SizeAfter, PerModuleAfter)
      << "cross-module session must reduce strictly more than "
      << PerModuleCommits << " per-module commits did";
}

TEST(CrossModuleTest, ProfitSelectionClosesTheTwoWayGreedyGap) {
  // The K=2 greedy-gap regression (ROADMAP "Next" items 1/3, closed by
  // the profit-guided selection layer): at a 2-way split the global
  // greedy order can consume partners that per-module runs pair better,
  // landing the distance-ranked session *above* per-module merging.
  // Profit-ranked selection — widened slate, estimate re-ranking,
  // same-module tie-breaking — must recover it: session reduction >=
  // per-module reduction. Both configurations here gap under Distance
  // (asserted, so the scenario stays a real one) and close under
  // Profit. The suite-scale version of this bar (every K in {1,2,4,8})
  // is enforced by bench_cross_module.
  struct Config {
    uint64_t Seed;
    unsigned NumFns;
  };
  for (Config C : {Config{83, 72}, Config{31, 56}}) {
    BenchmarkProfile P = crossProfile(C.Seed, C.NumFns);
    auto splitVsSession = [&](SelectionStrategy Sel) {
      MergeDriverOptions DO = defaultOptions(1);
      DO.ExplorationThreshold = 2;
      DO.Selection = Sel;
      uint64_t PerModuleAfter = 0;
      {
        Context Ctx;
        ModuleGroup Group = buildBenchmarkModuleGroup(P, Ctx, 2);
        for (size_t I = 0; I < Group.size(); ++I) {
          runFunctionMerging(Group[I], DO);
          PerModuleAfter += estimateModuleSize(Group[I], DO.Arch);
          EXPECT_TRUE(verifyModule(Group[I]).ok());
        }
      }
      GroupOutcome Session = runSession(P, 2, DO);
      EXPECT_TRUE(Session.VerifierOk);
      return std::make_pair(PerModuleAfter, Session);
    };
    auto [DistancePer, DistanceSession] =
        splitVsSession(SelectionStrategy::Distance);
    EXPECT_GT(DistanceSession.SizeAfter, DistancePer)
        << "seed " << C.Seed << ": the distance-mode greedy gap this "
        << "regression guards closed on its own — pick a gapping config";
    auto [ProfitPer, ProfitSession] = splitVsSession(SelectionStrategy::Profit);
    EXPECT_GT(ProfitSession.CrossModuleMerges, 0u) << "seed " << C.Seed;
    EXPECT_LE(ProfitSession.SizeAfter, ProfitPer)
        << "seed " << C.Seed << ": profit-ranked session must merge at "
        << "least as well as per-module runs at a 2-way split";
  }
}

TEST(CrossModuleTest, GroupRebuildIsDeterministic) {
  // buildBenchmarkModuleGroup's own contract: same (profile, K) twice →
  // byte-identical modules. Everything above leans on this.
  BenchmarkProfile P = crossProfile(71, 24);
  auto build = [&] {
    Context Ctx;
    ModuleGroup Group = buildBenchmarkModuleGroup(P, Ctx, 3);
    std::string Prints;
    for (size_t I = 0; I < Group.size(); ++I)
      Prints += printModule(Group[I]);
    return Prints;
  };
  EXPECT_EQ(build(), build());
}

} // namespace
