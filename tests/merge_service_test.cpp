//===- tests/merge_service_test.cpp - Incremental session contract -------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
// The tentpole contract of the incremental merge service
// (merge/MergeService.h), pinned differentially with a precomputed edit
// script (workloads/EditScript.h) replayed against three copies of one
// module group:
//
//  1. Equivalence: after every delta, the incremental session's merges,
//     records and module bytes equal a from-scratch CrossModuleMerger
//     run over the SAME pool state — at every selection mode x thread
//     count x shard configuration. Behaviour is additionally checked
//     through the multi-module interpreter after every step (service
//     group vs a never-merged reference copy under identical edits).
//  2. Fault containment: service-level injected faults (ranking, symbol
//     resolution) degrade a delta to a *counted* full re-merge; the
//     session is never corrupt and still lands on the cold-equivalent
//     state.
//  3. Quarantine decay: functions struck out by the quarantine ladder
//     stay out of candidacy until QuarantineDecayEpochs deltas pass,
//     then re-enter.
//  4. Concurrency: delta batches from racing client threads serialize
//     wholesale (snapshot isolation); the final session equals a cold
//     run over the final pool.
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "merge/MergeService.h"
#include "support/RNG.h"
#include "workloads/EditScript.h"
#include "workloads/Suites.h"
#include <gtest/gtest.h>
#include <thread>

using namespace salssa;

namespace {

BenchmarkProfile serviceProfile() {
  // Small but structurally rich: clone families across two TUs so
  // cross-module merges happen, three return types so the session has
  // several merge-compatibility classes to dirty independently.
  BenchmarkProfile P;
  P.Name = "incsvc";
  P.NumFunctions = 26;
  P.MinSize = 6;
  P.AvgSize = 36;
  P.MaxSize = 120;
  P.CloneFamilyPercent = 55;
  P.MinFamily = 2;
  P.MaxFamily = 4;
  P.FamilyDriftPercent = 10;
  P.LoopPercent = 50;
  P.RetTypeVariety = 3;
  P.Seed = 9001;
  return P;
}

ModuleGroup buildGroup(Context &Ctx) {
  return buildBenchmarkModuleGroup(serviceProfile(), Ctx, 2);
}

std::vector<Module *> modsOf(const ModuleGroup &Group) {
  std::vector<Module *> Mods;
  for (size_t I = 0; I < Group.size(); ++I)
    Mods.push_back(&Group[I]);
  return Mods;
}

EditScriptOptions scriptOptions(uint64_t Seed) {
  EditScriptOptions EO;
  EO.NumSteps = 4;
  EO.ChangesPerStep = 3;
  EO.AddsPerStep = 1;
  EO.DeletesPerStep = 1;
  EO.Generate.TargetSize = 30;
  EO.Generate.RetTypeVariety = 3;
  EO.Seed = Seed;
  return EO;
}

MergeDriverOptions driverOptions(SelectionStrategy Sel, unsigned NumThreads,
                                 unsigned Shards) {
  MergeDriverOptions DO;
  DO.Technique = MergeTechnique::SalSSA;
  DO.ExplorationThreshold = 3;
  DO.Selection = Sel;
  DO.NumThreads = NumThreads;
  DO.ShardCount = Shards;
  return DO;
}

/// Applies one scripted step to a copy that is never merged: drift and
/// adds via the script, deletes erased immediately (no call sites by
/// construction).
void applyStepPlain(const EditScript &Script, const std::vector<Module *> &Mods,
                    unsigned Step) {
  EditScript::AppliedStep A = Script.applyStep(Mods, Step);
  for (Function *F : A.Deleted)
    F->getParent()->eraseFunction(F);
}

/// Applies one scripted step through a service delta batch: every
/// changed function is checked out first (the delta protocol), deletes
/// go through the delta.
MergeServiceStats applyStepService(MergeService &Svc, const EditScript &Script,
                                   const std::vector<Module *> &Mods,
                                   unsigned Step) {
  MergeService::DeltaBatch Batch = Svc.beginDelta();
  EditScript::AppliedStep A = Script.applyStep(
      Mods, Step, [&](Function *F) { Batch.checkoutForEdit(F); });
  MergeDelta D;
  D.Changed = A.Changed;
  D.Added = A.Added;
  D.Deleted = A.Deleted;
  return Batch.apply(D);
}

/// What "the same session outcome" means: merges, records (names,
/// commit flags), size accounting and the exact module bytes.
struct Outcome {
  unsigned Attempts = 0;
  unsigned CommittedMerges = 0;
  unsigned CrossModuleMerges = 0;
  uint64_t SizeBefore = 0;
  uint64_t SizeAfter = 0;
  /// Pairing distance calls + probes. Not part of expectSameOutcome
  /// (probe counts are a speculative-work metric, not an outcome); the
  /// matrix test uses it as the cold-run work bound.
  uint64_t PairingWork = 0;
  std::vector<std::tuple<std::string, std::string, bool>> Records;
  std::string Prints;
  bool VerifierOk = false;
};

Outcome outcomeOf(const std::vector<Module *> &Mods,
                  const CrossModuleStats &S) {
  Outcome O;
  O.Attempts = S.Driver.Attempts;
  O.PairingWork = S.Driver.PairingDistanceCalls + S.Driver.PairingProbes;
  O.CommittedMerges = S.Driver.CommittedMerges;
  O.CrossModuleMerges = S.CrossModuleMerges;
  O.SizeBefore = S.SizeBefore;
  O.SizeAfter = S.SizeAfter;
  for (const MergeRecord &R : S.Driver.Records)
    O.Records.emplace_back(R.Name1, R.Name2, R.Committed);
  O.VerifierOk = true;
  for (Module *M : Mods) {
    O.Prints += printModule(*M);
    O.VerifierOk = O.VerifierOk && verifyModule(*M).ok();
  }
  return O;
}

void expectSameOutcome(const Outcome &Got, const Outcome &Want,
                       const std::string &Tag) {
  EXPECT_TRUE(Got.VerifierOk) << Tag;
  EXPECT_EQ(Got.CommittedMerges, Want.CommittedMerges) << Tag;
  EXPECT_EQ(Got.CrossModuleMerges, Want.CrossModuleMerges) << Tag;
  EXPECT_EQ(Got.Attempts, Want.Attempts) << Tag;
  EXPECT_EQ(Got.SizeBefore, Want.SizeBefore) << Tag;
  EXPECT_EQ(Got.SizeAfter, Want.SizeAfter) << Tag;
  ASSERT_EQ(Got.Records.size(), Want.Records.size()) << Tag;
  for (size_t I = 0; I < Got.Records.size(); ++I)
    EXPECT_EQ(Got.Records[I], Want.Records[I]) << Tag << " record " << I;
  EXPECT_EQ(Got.Prints, Want.Prints) << Tag;
}

/// Cold baseline over the final pool: a fresh group copy with edit steps
/// [0, NumSteps) applied up front, merged once from scratch.
Outcome coldOutcome(const EditScript &Script, unsigned NumSteps,
                    MergeDriverOptions DO) {
  Context Ctx;
  ModuleGroup Group = buildGroup(Ctx);
  std::vector<Module *> Mods = modsOf(Group);
  for (unsigned S = 0; S < NumSteps; ++S)
    applyStepPlain(Script, Mods, S);
  DO.ShardCount = 1; // unsharded == sharded is the sharded runner's contract
  CrossModuleMerger Session(DO);
  for (Module *M : Mods)
    Session.addModule(*M);
  CrossModuleStats S = Session.run();
  return outcomeOf(Mods, S);
}

/// Interpreter differential between a never-merged reference group and
/// the (merged, thunked) service group under identical edits: every
/// reference definition must behave identically through its same-named
/// service counterpart. Both sides interpret their whole group (merged
/// bodies reference globals of several modules).
void groupDifferential(const std::vector<Module *> &Ref,
                       const std::vector<Module *> &Svc, uint64_t Seed,
                       const std::string &Tag) {
  ExecOptions Opts;
  Opts.MaxSteps = 150000;
  Opts.ExternalThrowPercent = 10;
  Interpreter RefInterp(Ref, Opts);
  Interpreter SvcInterp(Svc, Opts);
  for (size_t MI = 0; MI < Ref.size(); ++MI)
    for (Function *RefF : Ref[MI]->functions()) {
      if (RefF->isDeclaration())
        continue;
      Function *SvcF = Svc[MI]->getFunction(RefF->getName());
      ASSERT_NE(SvcF, nullptr) << Tag << ": lost " << RefF->getName();
      RNG ArgRng(mix64(Seed) ^ std::hash<std::string>{}(RefF->getName()));
      for (int Vec = 0; Vec < 3; ++Vec) {
        std::vector<RuntimeValue> Args;
        Args.reserve(RefF->getNumArgs());
        for (unsigned A = 0; A < RefF->getNumArgs(); ++A)
          Args.push_back(RuntimeValue::makeInt(
              Vec == 0 ? 0 : ArgRng.nextBelow(1u << 16)));
        RefInterp.resetMemory();
        ExecResult R1 = RefInterp.run(RefF, Args);
        SvcInterp.resetMemory();
        ExecResult R2 = SvcInterp.run(SvcF, Args);
        EXPECT_TRUE(behaviourallyEqual(R1, R2))
            << Tag << ": behaviour of " << RefF->getName()
            << " changed on argument vector " << Vec;
      }
    }
}

//===----------------------------------------------------------------------===//
// 1. The differential edit-script matrix
//===----------------------------------------------------------------------===//

TEST(MergeServiceTest, IncrementalEquivalentToFromScratchEverywhere) {
  // One script, planned once from a pristine copy, replayed against
  // every config's service copy, reference copy and cold copy.
  EditScript Script = [] {
    Context Ctx;
    ModuleGroup Group = buildGroup(Ctx);
    return EditScript(modsOf(Group), scriptOptions(71));
  }();

  // The script must actually exercise locality somewhere: at least one
  // (config, step) pair has to leave a class clean, or the pairing-work
  // bound above never fires.
  bool SawPartialDirty = false;
  for (SelectionStrategy Sel :
       {SelectionStrategy::Distance, SelectionStrategy::Profit,
        SelectionStrategy::Adaptive})
    for (unsigned NT : {1u, 4u})
      for (unsigned Shards : {1u, 4u}) {
        MergeDriverOptions DO = driverOptions(Sel, NT, Shards);
        std::string Cfg = "sel=" + std::to_string(int(Sel)) +
                          " threads=" + std::to_string(NT) +
                          " shards=" + std::to_string(Shards);

        Context SvcCtx, RefCtx;
        // Teardown order: the service's archive holds operand
        // references into the group, so the service (declared after)
        // dies first.
        ModuleGroup SvcGroup = buildGroup(SvcCtx);
        ModuleGroup RefGroup = buildGroup(RefCtx);
        std::vector<Module *> SvcMods = modsOf(SvcGroup);
        std::vector<Module *> RefMods = modsOf(RefGroup);

        MergeServiceOptions SO;
        SO.Driver = DO;
        MergeService Svc(SO);
        for (Module *M : SvcMods)
          Svc.addModule(*M);
        MergeServiceStats Init = Svc.initialize();
        ASSERT_GT(Init.Session.Driver.CommittedMerges, 0u) << Cfg;
        groupDifferential(RefMods, SvcMods, 71, Cfg + " epoch 0");

        for (unsigned S = 0; S < Script.numSteps(); ++S) {
          MergeServiceStats St =
              applyStepService(Svc, Script, SvcMods, S);
          applyStepPlain(Script, RefMods, S);
          std::string Tag = Cfg + " epoch " + std::to_string(S + 1);
          EXPECT_EQ(St.Epoch, S + 1) << Tag;
          EXPECT_FALSE(St.DegradedToFullRemerge) << Tag;
          EXPECT_GT(St.DirtyClasses, 0u) << Tag;
          groupDifferential(RefMods, SvcMods, 71 + S, Tag);

          // Equivalence with a from-scratch run over this step's pool.
          Outcome Inc = outcomeOf(SvcMods, St.Session);
          Outcome Cold = coldOutcome(Script, S + 1, DO);
          expectSameOutcome(Inc, Cold, Tag);

          // Incrementality: a delta re-merges only its dirty classes, so
          // whenever a step leaves at least one class clean the delta
          // attempts strictly fewer pairs than a from-scratch run over
          // the same pool. (A step that dirties every class re-runs the
          // full pool and carries no such bound.) Pairing work is bound
          // the same way but only at serial configs, where ranking
          // counts decompose exactly per class; with worker threads the
          // per-class speculative probe counts are not comparable to the
          // cold run's global ones.
          if (St.DirtyClasses < St.TotalClasses) {
            SawPartialDirty = true;
            EXPECT_LT(St.EpochAttempts, Cold.Attempts) << Tag;
            if (NT == 1)
              EXPECT_LT(St.EpochPairingDistanceCalls +
                            St.EpochPairingProbes,
                        Cold.PairingWork)
                  << Tag;
          }
        }
        EXPECT_EQ(Svc.fullRemerges(), 0u) << Cfg;
      }
  EXPECT_TRUE(SawPartialDirty)
      << "the edit script never left a class clean — localized re-merge "
         "was not exercised";
}

TEST(MergeServiceTest, EmptyAndNoopDeltasKeepTheSessionStable) {
  Context Ctx;
  ModuleGroup Group = buildGroup(Ctx);
  std::vector<Module *> Mods = modsOf(Group);
  MergeServiceOptions SO;
  SO.Driver = driverOptions(SelectionStrategy::Distance, 1, 1);
  MergeService Svc(SO);
  for (Module *M : Mods)
    Svc.addModule(*M);
  MergeServiceStats Init = Svc.initialize();
  Outcome Baseline = outcomeOf(Mods, Init.Session);
  ASSERT_GT(Baseline.CommittedMerges, 0u);

  // An empty delta dirties nothing and replays the retained journals to
  // the identical session.
  {
    MergeService::DeltaBatch Batch = Svc.beginDelta();
    MergeServiceStats St = Batch.apply(MergeDelta());
    EXPECT_EQ(St.DirtyClasses, 0u);
    EXPECT_EQ(St.EpochAttempts, 0u);
    EXPECT_EQ(St.UncommittedMerges, 0u);
    expectSameOutcome(outcomeOf(Mods, St.Session), Baseline, "empty delta");
  }

  // A checkout + unchanged body is a structural no-op: counted, the
  // class still re-merges (checkout rewrote the thunk), and the session
  // lands back on the same bytes.
  {
    Function *Target = nullptr;
    for (Function *F : Mods[0]->functions())
      if (!F->isDeclaration()) {
        Target = F;
        break;
      }
    ASSERT_NE(Target, nullptr);
    StructuralHash Before = Svc.structuralHash(Target);
    MergeService::DeltaBatch Batch = Svc.beginDelta();
    Batch.checkoutForEdit(Target);
    MergeDelta D;
    D.Changed = {Target};
    MergeServiceStats St = Batch.apply(D);
    EXPECT_EQ(St.NoopChanges, 1u);
    EXPECT_EQ(St.DirtyClasses, 1u);
    EXPECT_EQ(Svc.structuralHash(Target), Before);
    expectSameOutcome(outcomeOf(Mods, St.Session), Baseline, "noop change");
  }
}

//===----------------------------------------------------------------------===//
// 2. Fault containment: degraded deltas are counted, never corrupt
//===----------------------------------------------------------------------===//

TEST(MergeServiceTest, SymbolResolutionFaultDegradesEveryDeltaCounted) {
  EditScript Script = [] {
    Context Ctx;
    ModuleGroup Group = buildGroup(Ctx);
    return EditScript(modsOf(Group), scriptOptions(72));
  }();
  MergeDriverOptions DO = driverOptions(SelectionStrategy::Distance, 2, 0);
  Context Ctx;
  ModuleGroup Group = buildGroup(Ctx);
  std::vector<Module *> Mods = modsOf(Group);
  MergeServiceOptions SO;
  SO.Driver = DO;
  // Rate 1000 = the service's symbol-resolution fault point fires on
  // every delta. Only the service fires this kind, so the pipelines —
  // and the cold baseline — stay unfaulted.
  SO.Driver.Faults = FaultInjectionConfig::parse("seed=7,symres=1000");
  MergeService Svc(SO);
  for (Module *M : Mods)
    Svc.addModule(*M);
  Svc.initialize(); // no delta planning: initialize never degrades

  for (unsigned S = 0; S < Script.numSteps(); ++S) {
    MergeServiceStats St = applyStepService(Svc, Script, Mods, S);
    EXPECT_TRUE(St.DegradedToFullRemerge) << "step " << S;
    EXPECT_EQ(Svc.fullRemerges(), S + 1);
    for (Module *M : Mods)
      EXPECT_TRUE(verifyModule(*M).ok()) << "step " << S;
    // Degraded or not, the session must land on the cold state.
    MergeDriverOptions CleanDO = DO;
    CleanDO.Faults = FaultInjectionConfig();
    expectSameOutcome(outcomeOf(Mods, St.Session),
                      coldOutcome(Script, S + 1, CleanDO),
                      "degraded step " + std::to_string(S));
  }
}

TEST(MergeServiceTest, RankingFaultSoakNeverCorruptsTheSession) {
  EditScript Script = [] {
    Context Ctx;
    ModuleGroup Group = buildGroup(Ctx);
    return EditScript(modsOf(Group), scriptOptions(73));
  }();
  MergeDriverOptions DO = driverOptions(SelectionStrategy::Profit, 4, 4);
  Context Ctx;
  ModuleGroup Group = buildGroup(Ctx);
  std::vector<Module *> Mods = modsOf(Group);
  MergeServiceOptions SO;
  SO.Driver = DO;
  // ~40% per changed function per delta: some deltas degrade, some
  // survive — both paths must keep the session cold-equivalent.
  SO.Driver.Faults = FaultInjectionConfig::parse("seed=11,ranking=400");
  MergeService Svc(SO);
  for (Module *M : Mods)
    Svc.addModule(*M);
  Svc.initialize();

  for (unsigned S = 0; S < Script.numSteps(); ++S) {
    MergeServiceStats St = applyStepService(Svc, Script, Mods, S);
    for (Module *M : Mods)
      EXPECT_TRUE(verifyModule(*M).ok()) << "step " << S;
    MergeDriverOptions CleanDO = DO;
    CleanDO.Faults = FaultInjectionConfig();
    expectSameOutcome(outcomeOf(Mods, St.Session),
                      coldOutcome(Script, S + 1, CleanDO),
                      "soak step " + std::to_string(S));
  }
  // The configured rate makes at least one of the four deltas degrade
  // (each delta rolls three ~40% dice); a fully quiet soak would mean
  // the fault points are not wired.
  EXPECT_GT(Svc.fullRemerges(), 0u);
  EXPECT_LE(Svc.fullRemerges(), Script.numSteps());
}

//===----------------------------------------------------------------------===//
// 3. Quarantine-ladder strike decay
//===----------------------------------------------------------------------===//

TEST(MergeServiceTest, QuarantinedFunctionsReenterAfterDecay) {
  // Alignment always faults and one strike retires a function: the
  // initial session quarantines every function that got an attempt.
  Context Ctx;
  ModuleGroup Group = buildGroup(Ctx);
  std::vector<Module *> Mods = modsOf(Group);
  MergeServiceOptions SO;
  SO.Driver = driverOptions(SelectionStrategy::Distance, 1, 1);
  SO.Driver.Faults = FaultInjectionConfig::parse("seed=3,align=1000");
  SO.Driver.QuarantineThreshold = 1;
  SO.QuarantineDecayEpochs = 2;
  MergeService Svc(SO);
  for (Module *M : Mods)
    Svc.addModule(*M);
  MergeServiceStats Init = Svc.initialize();
  EXPECT_EQ(Init.Session.Driver.CommittedMerges, 0u);
  size_t Struck = Svc.quarantinedCount();
  ASSERT_GT(Struck, 0u);
  Function *Victim = nullptr;
  for (Module *M : Mods)
    for (Function *F : M->functions())
      if (Svc.isQuarantined(F)) {
        Victim = F;
        break;
      }
  ASSERT_NE(Victim, nullptr);

  // Epoch 1: one epoch since the strikes — under the decay horizon, the
  // ledger holds, nothing re-enters, no work happens.
  {
    MergeService::DeltaBatch Batch = Svc.beginDelta();
    MergeServiceStats St = Batch.apply(MergeDelta());
    EXPECT_EQ(St.QuarantineReleases, 0u);
    EXPECT_EQ(St.EpochAttempts, 0u);
    EXPECT_TRUE(Svc.isQuarantined(Victim));
    EXPECT_EQ(Svc.quarantinedCount(), Struck);
  }

  // Epoch 2: the strikes are QuarantineDecayEpochs old — every ledger
  // entry decays, its class re-merges with the function back in the
  // pool (attempts happen again; with alignment still faulted they fail
  // again and re-quarantine at the new epoch).
  {
    MergeService::DeltaBatch Batch = Svc.beginDelta();
    MergeServiceStats St = Batch.apply(MergeDelta());
    EXPECT_EQ(St.QuarantineReleases, static_cast<unsigned>(Struck));
    EXPECT_GT(St.DirtyClasses, 0u);
    EXPECT_GT(St.EpochAttempts, 0u);
  }
  for (Module *M : Mods)
    EXPECT_TRUE(verifyModule(*M).ok());
}

TEST(MergeServiceTest, ZeroDecayMeansStrikesNeverAge) {
  Context Ctx;
  ModuleGroup Group = buildGroup(Ctx);
  std::vector<Module *> Mods = modsOf(Group);
  MergeServiceOptions SO;
  SO.Driver = driverOptions(SelectionStrategy::Distance, 1, 1);
  SO.Driver.Faults = FaultInjectionConfig::parse("seed=3,align=1000");
  SO.Driver.QuarantineThreshold = 1;
  SO.QuarantineDecayEpochs = 0; // batch-session behaviour
  MergeService Svc(SO);
  for (Module *M : Mods)
    Svc.addModule(*M);
  Svc.initialize();
  size_t Struck = Svc.quarantinedCount();
  ASSERT_GT(Struck, 0u);
  for (unsigned E = 0; E < 3; ++E) {
    MergeService::DeltaBatch Batch = Svc.beginDelta();
    MergeServiceStats St = Batch.apply(MergeDelta());
    EXPECT_EQ(St.QuarantineReleases, 0u) << "epoch " << E;
    EXPECT_EQ(St.EpochAttempts, 0u) << "epoch " << E;
    EXPECT_EQ(Svc.quarantinedCount(), Struck) << "epoch " << E;
  }
}

//===----------------------------------------------------------------------===//
// 4. Concurrent client batches: snapshot isolation
//===----------------------------------------------------------------------===//

TEST(MergeServiceTest, ConcurrentDeltaBatchesSerializeToTheColdState) {
  const unsigned IterationsPerThread = 3;
  MergeDriverOptions DO = driverOptions(SelectionStrategy::Distance, 2, 0);

  Context SvcCtx;
  ModuleGroup SvcGroup = buildGroup(SvcCtx);
  std::vector<Module *> SvcMods = modsOf(SvcGroup);
  MergeServiceOptions SO;
  SO.Driver = DO;
  MergeService Svc(SO);
  for (Module *M : SvcMods)
    Svc.addModule(*M);
  Svc.initialize();

  // Thread T edits module T's functions only (disjoint targets), each
  // iteration drifting one pre-chosen function with a pre-assigned
  // seed: any batch serialization order lands on the same final pool.
  auto targetsOf = [](Module *M, unsigned N) {
    std::vector<std::string> Names;
    for (Function *F : M->functions())
      if (!F->isDeclaration() && Names.size() < N)
        Names.push_back(F->getName());
    return Names;
  };
  std::vector<std::vector<std::string>> Targets = {
      targetsOf(SvcMods[0], IterationsPerThread),
      targetsOf(SvcMods[1], IterationsPerThread)};
  ASSERT_EQ(Targets[0].size(), IterationsPerThread);
  ASSERT_EQ(Targets[1].size(), IterationsPerThread);
  auto editSeed = [](unsigned T, unsigned I) {
    return mix64(0xed17 + T * 100 + I);
  };

  auto client = [&](unsigned T) {
    for (unsigned I = 0; I < IterationsPerThread; ++I) {
      MergeService::DeltaBatch Batch = Svc.beginDelta();
      Function *F = SvcMods[T]->getFunction(Targets[T][I]);
      ASSERT_NE(F, nullptr);
      Batch.checkoutForEdit(F);
      WorkloadEnvironment Env = WorkloadEnvironment::attach(*SvcMods[T]);
      RNG Rng(editSeed(T, I));
      driftFunctionBody(F, Env, Rng, DriftOptions());
      MergeDelta D;
      D.Changed = {F};
      Batch.apply(D);
    }
  };
  std::thread T0(client, 0), T1(client, 1);
  T0.join();
  T1.join();
  EXPECT_EQ(Svc.epoch(), 2 * IterationsPerThread);
  EXPECT_EQ(Svc.fullRemerges(), 0u);

  // Cold baseline: fresh copy, same per-function edits applied
  // serially (disjoint targets make the order immaterial), one
  // from-scratch merge.
  Context ColdCtx;
  ModuleGroup ColdGroup = buildGroup(ColdCtx);
  std::vector<Module *> ColdMods = modsOf(ColdGroup);
  for (unsigned T = 0; T < 2; ++T)
    for (unsigned I = 0; I < IterationsPerThread; ++I) {
      Function *F = ColdMods[T]->getFunction(Targets[T][I]);
      ASSERT_NE(F, nullptr);
      WorkloadEnvironment Env = WorkloadEnvironment::attach(*ColdMods[T]);
      RNG Rng(editSeed(T, I));
      driftFunctionBody(F, Env, Rng, DriftOptions());
    }
  MergeDriverOptions ColdDO = DO;
  ColdDO.ShardCount = 1;
  CrossModuleMerger Cold(ColdDO);
  for (Module *M : ColdMods)
    Cold.addModule(*M);
  CrossModuleStats ColdStats = Cold.run();
  expectSameOutcome(outcomeOf(SvcMods, Svc.lastStats().Session),
                    outcomeOf(ColdMods, ColdStats), "racing clients");
}

//===----------------------------------------------------------------------===//
// 5. Warm paths: clustering deltas, decision-cache warm starts, host
//    re-election
//===----------------------------------------------------------------------===//

BenchmarkProfile clusterProfile() {
  // Zero family drift: clone families are byte-identical, so the
  // structural-hash prologue actually commits clusters.
  BenchmarkProfile P = serviceProfile();
  P.Name = "incsvc.cluster";
  P.FamilyDriftPercent = 0;
  return P;
}

/// Cold baseline over an arbitrary profile (coldOutcome fixes the
/// default group).
Outcome coldOutcomeFor(const BenchmarkProfile &P, const EditScript &Script,
                       unsigned NumSteps, MergeDriverOptions DO) {
  Context Ctx;
  ModuleGroup Group = buildBenchmarkModuleGroup(P, Ctx, 2);
  std::vector<Module *> Mods = modsOf(Group);
  for (unsigned S = 0; S < NumSteps; ++S)
    applyStepPlain(Script, Mods, S);
  DO.ShardCount = 1;
  CrossModuleMerger Session(DO);
  for (Module *M : Mods)
    Session.addModule(*M);
  CrossModuleStats S = Session.run();
  return outcomeOf(Mods, S);
}

TEST(MergeServiceTest, HashClusteringDeltasRebuildToTheColdState) {
  // Every delta under HashClustering is a whole-session rebuild (the
  // smallest edit can re-form any group); the contract is the cold
  // clustered run's bytes, records and counters after every step —
  // including checkouts and deletes of consumed cluster members.
  BenchmarkProfile P = clusterProfile();
  EditScript Script = [&] {
    Context Ctx;
    ModuleGroup Group = buildBenchmarkModuleGroup(P, Ctx, 2);
    return EditScript(modsOf(Group), scriptOptions(81));
  }();
  for (unsigned NT : {1u, 4u}) {
    MergeDriverOptions DO =
        driverOptions(SelectionStrategy::Distance, NT, NT == 1 ? 1u : 4u);
    DO.HashClustering = true;
    std::string Cfg = "clustered threads=" + std::to_string(NT);

    Context SvcCtx, RefCtx;
    ModuleGroup SvcGroup = buildBenchmarkModuleGroup(P, SvcCtx, 2);
    ModuleGroup RefGroup = buildBenchmarkModuleGroup(P, RefCtx, 2);
    std::vector<Module *> SvcMods = modsOf(SvcGroup);
    std::vector<Module *> RefMods = modsOf(RefGroup);

    MergeServiceOptions SO;
    SO.Driver = DO;
    MergeService Svc(SO);
    for (Module *M : SvcMods)
      Svc.addModule(*M);
    MergeServiceStats Init = Svc.initialize();
    ASSERT_GT(Init.Session.Driver.HashClusterCommits, 0u)
        << Cfg << ": the zero-drift profile must form clusters";
    expectSameOutcome(outcomeOf(SvcMods, Init.Session),
                      coldOutcomeFor(P, Script, 0, DO), Cfg + " epoch 0");
    groupDifferential(RefMods, SvcMods, 81, Cfg + " epoch 0");

    for (unsigned S = 0; S < Script.numSteps(); ++S) {
      MergeServiceStats St = applyStepService(Svc, Script, SvcMods, S);
      applyStepPlain(Script, RefMods, S);
      std::string Tag = Cfg + " epoch " + std::to_string(S + 1);
      EXPECT_TRUE(St.ReclusteredFull) << Tag;
      EXPECT_FALSE(St.DegradedToFullRemerge) << Tag;
      EXPECT_EQ(St.DirtyClasses, St.TotalClasses) << Tag;
      groupDifferential(RefMods, SvcMods, 81 + S, Tag);
      expectSameOutcome(outcomeOf(SvcMods, St.Session),
                        coldOutcomeFor(P, Script, S + 1, DO), Tag);
    }
    EXPECT_EQ(Svc.fullRemerges(), 0u) << Cfg;
  }
}

TEST(MergeServiceTest, DecisionCacheWarmStartReplaysByteIdentical) {
  // Session A builds cold and persists its decisions; session B over a
  // fresh copy warm-starts from the file. Cache replay skips alignment
  // work, so Attempts/Records differ by design — the contract is the
  // module bytes, the committed merges and the size accounting.
  std::string Path = "salssa_svc_dcache.bin";
  std::remove(Path.c_str());
  MergeDriverOptions DO = driverOptions(SelectionStrategy::Distance, 1, 1);
  DO.DecisionCachePath = Path;
  MergeServiceOptions SO;
  SO.Driver = DO;

  Outcome ColdO;
  {
    Context Ctx;
    ModuleGroup Group = buildGroup(Ctx);
    std::vector<Module *> Mods = modsOf(Group);
    MergeService Svc(SO);
    for (Module *M : Mods)
      Svc.addModule(*M);
    MergeServiceStats Init = Svc.initialize();
    EXPECT_EQ(Init.Session.Driver.CacheHits, 0u);
    EXPECT_EQ(Init.Session.Driver.CacheLoadRejected, 0u);
    ColdO = outcomeOf(Mods, Init.Session);
    ASSERT_GT(ColdO.CommittedMerges, 0u);
  }

  Context Ctx;
  ModuleGroup Group = buildGroup(Ctx);
  std::vector<Module *> Mods = modsOf(Group);
  MergeService Svc(SO);
  for (Module *M : Mods)
    Svc.addModule(*M);
  MergeServiceStats Init = Svc.initialize();
  EXPECT_GT(Init.Session.Driver.CacheHits, 0u) << "warm start missed";
  EXPECT_EQ(Init.Session.Driver.CacheLoadRejected, 0u);
  Outcome WarmO = outcomeOf(Mods, Init.Session);
  EXPECT_TRUE(WarmO.VerifierOk);
  EXPECT_EQ(WarmO.Prints, ColdO.Prints) << "warm replay changed bytes";
  EXPECT_EQ(WarmO.CommittedMerges, ColdO.CommittedMerges);
  EXPECT_EQ(WarmO.CrossModuleMerges, ColdO.CrossModuleMerges);
  EXPECT_EQ(WarmO.SizeBefore, ColdO.SizeBefore);
  EXPECT_EQ(WarmO.SizeAfter, ColdO.SizeAfter);

  // Incremental deltas after a warm start stay on the ordinary
  // (uncached) localized path and keep cold equivalence.
  EditScript Script = [] {
    Context SCtx;
    ModuleGroup SGroup = buildGroup(SCtx);
    return EditScript(modsOf(SGroup), scriptOptions(82));
  }();
  MergeDriverOptions CleanDO = driverOptions(SelectionStrategy::Distance, 1, 1);
  MergeServiceStats St = applyStepService(Svc, Script, Mods, 0);
  EXPECT_FALSE(St.DegradedToFullRemerge);
  Outcome Inc = outcomeOf(Mods, St.Session);
  Outcome Cold = coldOutcome(Script, 1, CleanDO);
  // Retained clean classes keep their cache-backed records, so compare
  // the pool state, not the record stream.
  EXPECT_TRUE(Inc.VerifierOk);
  EXPECT_EQ(Inc.Prints, Cold.Prints) << "post-warm delta changed bytes";
  EXPECT_EQ(Inc.CommittedMerges, Cold.CommittedMerges);
  EXPECT_EQ(Inc.SizeBefore, Cold.SizeBefore);
  EXPECT_EQ(Inc.SizeAfter, Cold.SizeAfter);
  std::remove(Path.c_str());
}

TEST(MergeServiceTest, BiggestHostReelectionMovesWithTheScoreLeader) {
  // Grow the non-host module until it outweighs the host: the next
  // delta must re-elect, rebuild on the new host, and land on the bytes
  // a cold Biggest run over the same pool produces.
  MergeDriverOptions DO = driverOptions(SelectionStrategy::Distance, 1, 1);
  DO.Host = HostPolicy::Biggest;
  MergeServiceOptions SO;
  SO.Driver = DO;
  SO.ReelectHost = true;

  Context Ctx;
  ModuleGroup Group = buildGroup(Ctx);
  std::vector<Module *> Mods = modsOf(Group);
  MergeService Svc(SO);
  for (Module *M : Mods)
    Svc.addModule(*M);
  Svc.initialize();
  const Module *H0 = Svc.hostModule();
  size_t OtherIdx = (Mods[0] == H0) ? 1 : 0;
  Module *Other = Mods[OtherIdx];

  RandomFunctionOptions Grow;
  Grow.TargetSize = 200;
  Grow.RetTypeVariety = 3;
  auto growModule = [&Grow](Module &M, const std::string &Prefix) {
    std::vector<Function *> Added;
    WorkloadEnvironment Env = WorkloadEnvironment::attach(M);
    RNG Rng(0xb166e57);
    for (int I = 0; I < 4; ++I)
      Added.push_back(generateRandomFunction(
          Env, Rng, Prefix + std::to_string(I), Grow));
    return Added;
  };

  MergeService::DeltaBatch Batch = Svc.beginDelta();
  MergeDelta D;
  D.Added = growModule(*Other, "grow");
  MergeServiceStats St = Batch.apply(D);
  EXPECT_TRUE(St.HostReelected);
  EXPECT_FALSE(St.DegradedToFullRemerge);
  EXPECT_EQ(Svc.hostModule(), Other);
  EXPECT_EQ(Svc.hostReelections(), 1u);

  // Cold baseline: fresh copy, the same functions grown into the same
  // module, one from-scratch Biggest run.
  Context ColdCtx;
  ModuleGroup ColdGroup = buildGroup(ColdCtx);
  std::vector<Module *> ColdMods = modsOf(ColdGroup);
  growModule(*ColdMods[OtherIdx], "grow");
  CrossModuleMerger Cold(DO);
  for (Module *M : ColdMods)
    Cold.addModule(*M);
  CrossModuleStats ColdStats = Cold.run();
  expectSameOutcome(outcomeOf(Mods, St.Session),
                    outcomeOf(ColdMods, ColdStats), "re-elected host");

  // A quiet delta keeps the leader: no move, no rebuild.
  MergeService::DeltaBatch Batch2 = Svc.beginDelta();
  MergeServiceStats St2 = Batch2.apply(MergeDelta());
  EXPECT_FALSE(St2.HostReelected);
  EXPECT_EQ(Svc.hostReelections(), 1u);
  EXPECT_EQ(Svc.hostModule(), Other);
}

TEST(MergeServiceTest, HottestReelectionStaysColdEquivalentOverAScript) {
  // The Hottest policy re-scores from the pristine archive every delta;
  // whether or not the leader moves, each epoch must equal the cold
  // Hottest run over the same pool.
  EditScript Script = [] {
    Context Ctx;
    ModuleGroup Group = buildGroup(Ctx);
    return EditScript(modsOf(Group), scriptOptions(83));
  }();
  MergeDriverOptions DO = driverOptions(SelectionStrategy::Distance, 1, 1);
  DO.Host = HostPolicy::Hottest;
  MergeServiceOptions SO;
  SO.Driver = DO;
  SO.ReelectHost = true;

  Context Ctx;
  ModuleGroup Group = buildGroup(Ctx);
  std::vector<Module *> Mods = modsOf(Group);
  MergeService Svc(SO);
  for (Module *M : Mods)
    Svc.addModule(*M);
  Svc.initialize();
  for (unsigned S = 0; S < 2; ++S) {
    MergeServiceStats St = applyStepService(Svc, Script, Mods, S);
    EXPECT_FALSE(St.DegradedToFullRemerge) << "step " << S;
    expectSameOutcome(outcomeOf(Mods, St.Session),
                      coldOutcome(Script, S + 1, DO),
                      "hottest step " + std::to_string(S));
  }
}

} // namespace
