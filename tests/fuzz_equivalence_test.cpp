//===- tests/fuzz_equivalence_test.cpp - Semantic-equivalence fuzzing ----------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
// Seed-sweep property harness for the profit-guided selection layer: the
// selection mode may change WHICH functions merge, but never WHAT any
// function computes. For every seed the harness generates a random suite
// (workloads/RandomFunction via the benchmark builder), runs the driver
// under every SelectionStrategy x {1, 4} threads, and asserts through the
// interpreter that every public function — thunks into merged functions
// included — is observationally equivalent to its pristine counterpart
// (same status, return bits, external-call trace, and final global
// memory) on generated argument vectors.
//
// 64 seeds x 3 modes x 2 thread counts = 384 driver runs, each
// differentially checked; the same binary runs under the tsan preset,
// where the 4-thread runs race the attempt stage (skip-speculation and
// adaptive-window paths included) under ThreadSanitizer.
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "merge/MergeDriver.h"
#include "support/RNG.h"
#include "workloads/Suites.h"
#include <gtest/gtest.h>

using namespace salssa;

namespace {

BenchmarkProfile fuzzProfile(uint64_t Seed) {
  // Small but structurally rich: clone families (so merges actually
  // happen), loops/phis (the SSA-repair paths), and a few invokes (the
  // landing-pad paths). Kept small so the full 384-run matrix stays
  // CI-sized, TSan included.
  BenchmarkProfile P;
  P.Name = "fuzz" + std::to_string(Seed);
  P.NumFunctions = 10;
  P.MinSize = 5;
  P.AvgSize = 28;
  P.MaxSize = 90;
  P.CloneFamilyPercent = 55;
  P.MinFamily = 2;
  P.MaxFamily = 4;
  P.FamilyDriftPercent = 12;
  P.LoopPercent = 45;
  P.InvokePercent = 5;
  P.Seed = 0xF022ull * (Seed + 1); // decorrelate consecutive seeds
  return P;
}

/// Runs every definition of \p Merged against its same-named pristine
/// counterpart in \p Reference on argument vectors drawn from \p Seed.
void differentialCheck(Module &Reference, Module &Merged, uint64_t Seed,
                       const std::string &Tag) {
  ExecOptions Opts;
  Opts.MaxSteps = 150000;
  Opts.ExternalThrowPercent = 10;
  Interpreter RefInterp(Reference, Opts);
  Interpreter MergedInterp(Merged, Opts);
  for (Function *RefF : Reference.functions()) {
    if (RefF->isDeclaration())
      continue;
    Function *NewF = Merged.getFunction(RefF->getName());
    ASSERT_NE(NewF, nullptr) << Tag << ": lost " << RefF->getName();
    // Three generated vectors per function: zeros (the all-defaults
    // path), then two random draws — seeded per (suite seed, function),
    // so every seed probes different inputs but reruns reproduce.
    RNG ArgRng(mix64(Seed) ^ std::hash<std::string>{}(RefF->getName()));
    for (int Vec = 0; Vec < 3; ++Vec) {
      std::vector<RuntimeValue> Args;
      Args.reserve(RefF->getNumArgs());
      for (unsigned A = 0; A < RefF->getNumArgs(); ++A)
        Args.push_back(RuntimeValue::makeInt(
            Vec == 0 ? 0 : ArgRng.nextBelow(1u << 16)));
      RefInterp.resetMemory();
      ExecResult R1 = RefInterp.run(RefF, Args);
      MergedInterp.resetMemory();
      ExecResult R2 = MergedInterp.run(NewF, Args);
      EXPECT_TRUE(behaviourallyEqual(R1, R2))
          << Tag << ": behaviour of " << RefF->getName()
          << " changed on argument vector " << Vec;
    }
  }
}

class FuzzEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzEquivalenceTest, AllSelectionModesPreserveBehaviour) {
  const uint64_t Seed = GetParam();
  const BenchmarkProfile P = fuzzProfile(Seed);
  for (SelectionStrategy Sel :
       {SelectionStrategy::Distance, SelectionStrategy::Profit,
        SelectionStrategy::Adaptive}) {
    for (unsigned NT : {1u, 4u}) {
      Context CtxRef, CtxNew;
      std::unique_ptr<Module> Ref = buildBenchmarkModule(P, CtxRef);
      std::unique_ptr<Module> M = buildBenchmarkModule(P, CtxNew);
      MergeDriverOptions DO;
      DO.Technique = MergeTechnique::SalSSA;
      DO.ExplorationThreshold = 2;
      DO.Selection = Sel;
      DO.NumThreads = NT;
      runFunctionMerging(*M, DO);
      std::string Tag =
          "seed " + std::to_string(Seed) + " mode " +
          std::to_string(static_cast<unsigned>(Sel)) + " threads " +
          std::to_string(NT);
      VerifierReport VR = verifyModule(*M);
      ASSERT_TRUE(VR.ok()) << Tag << ":\n" << VR.str();
      differentialCheck(*Ref, *M, Seed, Tag);
    }
  }
}

// >= 64 seeds in ctest (the acceptance bar for the fuzz harness).
INSTANTIATE_TEST_SUITE_P(Seeds, FuzzEquivalenceTest,
                         ::testing::Range<uint64_t>(0, 64));

//===----------------------------------------------------------------------===//
// Canonicalize axis
//===----------------------------------------------------------------------===//

/// A drift-flavoured population: clone families diverged syntactically
/// (commutations, renames, rotations, dead stores, recomputes) but kept
/// interpreter-equivalent — the workload the canonical shadow view is
/// for. Low semantic drift keeps alignment interesting without
/// destroying families.
BenchmarkProfile canonFuzzProfile(uint64_t Seed) {
  BenchmarkProfile P = fuzzProfile(Seed);
  P.Name = "cfz" + std::to_string(Seed);
  P.FamilyDriftPercent = 5;
  P.SyntacticDriftPercent = 30;
  P.Seed = 0xCF01ull * (Seed + 1);
  return P;
}

class CanonFuzzTest : public ::testing::TestWithParam<uint64_t> {};

// Canonicalize=on changes which candidates hash together — never what
// any function computes. Same differential bar as the main sweep, over
// every selection mode x {1, 4} threads on drifted populations.
TEST_P(CanonFuzzTest, CanonicalHashingPreservesBehaviour) {
  const uint64_t Seed = GetParam();
  const BenchmarkProfile P = canonFuzzProfile(Seed);
  for (SelectionStrategy Sel :
       {SelectionStrategy::Distance, SelectionStrategy::Profit,
        SelectionStrategy::Adaptive}) {
    for (unsigned NT : {1u, 4u}) {
      Context CtxRef, CtxNew;
      std::unique_ptr<Module> Ref = buildBenchmarkModule(P, CtxRef);
      std::unique_ptr<Module> M = buildBenchmarkModule(P, CtxNew);
      MergeDriverOptions DO;
      DO.Technique = MergeTechnique::SalSSA;
      DO.ExplorationThreshold = 2;
      DO.Selection = Sel;
      DO.NumThreads = NT;
      DO.Canonicalize = true;
      runFunctionMerging(*M, DO);
      std::string Tag = "canon seed " + std::to_string(Seed) + " mode " +
                        std::to_string(static_cast<unsigned>(Sel)) +
                        " threads " + std::to_string(NT);
      VerifierReport VR = verifyModule(*M);
      ASSERT_TRUE(VR.ok()) << Tag << ":\n" << VR.str();
      differentialCheck(*Ref, *M, Seed, Tag);
    }
  }
}

// Canonicalize=off must be the PR 8 pipeline bit for bit: an explicit
// off run and a default-options run produce byte-identical merged
// modules under every mode x thread count. Guards both the flag's
// default and any accidental unconditional canonicalization.
TEST_P(CanonFuzzTest, OffPathBitIdenticalToDefault) {
  const uint64_t Seed = GetParam();
  const BenchmarkProfile P = canonFuzzProfile(Seed);
  for (SelectionStrategy Sel :
       {SelectionStrategy::Distance, SelectionStrategy::Profit,
        SelectionStrategy::Adaptive}) {
    for (unsigned NT : {1u, 4u}) {
      Context CtxA, CtxB;
      std::unique_ptr<Module> A = buildBenchmarkModule(P, CtxA);
      std::unique_ptr<Module> B = buildBenchmarkModule(P, CtxB);
      MergeDriverOptions Default;
      Default.Technique = MergeTechnique::SalSSA;
      Default.ExplorationThreshold = 2;
      Default.Selection = Sel;
      Default.NumThreads = NT;
      MergeDriverOptions ExplicitOff = Default;
      ExplicitOff.Canonicalize = false;
      runFunctionMerging(*A, Default);
      runFunctionMerging(*B, ExplicitOff);
      EXPECT_EQ(printModule(*A), printModule(*B))
          << "off-path diverged: seed " << Seed << " mode "
          << static_cast<unsigned>(Sel) << " threads " << NT;
    }
  }
}

// 16 seeds: 16 x 3 modes x 2 thread counts differential runs plus the
// same matrix of off-path identity pairs stays CI-sized next to the
// main 384-run sweep.
INSTANTIATE_TEST_SUITE_P(Seeds, CanonFuzzTest,
                         ::testing::Range<uint64_t>(0, 16));

} // namespace
