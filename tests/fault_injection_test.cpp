//===- tests/fault_injection_test.cpp - Failure-containment soak ---------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
// The failure-containment contract (attempt guard, budget rejects,
// always-on commit firewall, quarantine ladder — see "Failure
// containment & fault injection" in src/merge/README.md):
//
//  1. Zero-fault bit-identity: arming the machinery with all rates 0 (or
//     not at all) changes nothing — merges, records, names and module
//     bytes equal the plain pipeline's.
//  2. Soak: with faults injected into a double-digit percentage of
//     attempts, every session across Selection modes x {1,4} threads x
//     {1,4} shards completes without termination, every output module is
//     verifier-clean, and the surviving merge set is deterministic per
//     (config, seed) — including across thread counts and shard counts,
//     in every selection mode.
//  3. Budget caps reject deterministically; a firewall-rejected winner
//     rolls back to no-merge; repeat offenders are quarantined; task
//     failures are recovered without changing outcomes.
//
//===----------------------------------------------------------------------===//

#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "merge/MergeDriver.h"
#include "support/FaultInjection.h"
#include "workloads/Suites.h"
#include <cstdlib>
#include <gtest/gtest.h>

using namespace salssa;

namespace {

/// Clone-heavy, multi-return-type population: enough merge traffic to
/// give every fault kind targets, enough classes to shard.
BenchmarkProfile faultProfile(uint64_t Seed, unsigned NumFns = 48,
                              unsigned Variety = 4) {
  BenchmarkProfile P;
  P.Name = "faults";
  P.NumFunctions = NumFns;
  P.MinSize = 6;
  P.AvgSize = 40;
  P.MaxSize = 160;
  P.CloneFamilyPercent = 55;
  P.MaxFamily = 5;
  P.FamilyDriftPercent = 10;
  P.LoopPercent = 50;
  P.RetTypeVariety = Variety;
  P.Seed = Seed;
  return P;
}

/// The soak arming: roughly 12% of pairs fault in alignment, 8% corrupt
/// in codegen, 6% of worker tasks die, 5% blow their budget.
FaultInjectionConfig soakFaults(uint64_t Seed) {
  FaultInjectionConfig F;
  F.Seed = Seed;
  F.setRate(FaultKind::AlignmentThrow, 120);
  F.setRate(FaultKind::CodeGenCorruption, 80);
  F.setRate(FaultKind::TaskFailure, 60);
  F.setRate(FaultKind::BudgetBlowout, 50);
  return F;
}

/// Everything observable about one driver run (timings excluded).
struct RunOutcome {
  MergeDriverStats Stats;
  std::vector<std::tuple<std::string, std::string, bool, int, bool>> Records;
  std::string ModulePrint;
  bool VerifierOk = false;
};

RunOutcome runConfig(const BenchmarkProfile &P, MergeDriverOptions DO) {
  Context Ctx;
  std::unique_ptr<Module> M = buildBenchmarkModule(P, Ctx);
  RunOutcome O;
  O.Stats = runFunctionMerging(*M, DO);
  for (const MergeRecord &R : O.Stats.Records)
    O.Records.emplace_back(R.Name1, R.Name2, R.Committed,
                           static_cast<int>(R.Stats.Outcome),
                           R.Stats.VerifierRejected);
  O.ModulePrint = printModule(*M);
  O.VerifierOk = verifyModule(*M).ok();
  return O;
}

void expectSameOutcome(const RunOutcome &Got, const RunOutcome &Want,
                       const std::string &Tag) {
  EXPECT_TRUE(Got.VerifierOk) << Tag;
  EXPECT_EQ(Got.Stats.CommittedMerges, Want.Stats.CommittedMerges) << Tag;
  EXPECT_EQ(Got.Stats.Attempts, Want.Stats.Attempts) << Tag;
  EXPECT_EQ(Got.Stats.AttemptFailures, Want.Stats.AttemptFailures) << Tag;
  EXPECT_EQ(Got.Stats.BudgetRejects, Want.Stats.BudgetRejects) << Tag;
  EXPECT_EQ(Got.Stats.VerifierRejects, Want.Stats.VerifierRejects) << Tag;
  EXPECT_EQ(Got.Stats.QuarantinedFunctions, Want.Stats.QuarantinedFunctions)
      << Tag;
  ASSERT_EQ(Got.Records.size(), Want.Records.size()) << Tag;
  for (size_t I = 0; I < Got.Records.size(); ++I)
    EXPECT_EQ(Got.Records[I], Want.Records[I]) << Tag << " record " << I;
  EXPECT_EQ(Got.ModulePrint, Want.ModulePrint) << Tag;
}

//===----------------------------------------------------------------------===//
// The FaultInjection subsystem itself
//===----------------------------------------------------------------------===//

TEST(FaultInjectionConfigTest, ParseSpec) {
  FaultInjectionConfig C = FaultInjectionConfig::parse(
      "seed=42,align=100,codegen=50,task=25,budget=10");
  EXPECT_EQ(C.Seed, 42u);
  EXPECT_EQ(C.rate(FaultKind::AlignmentThrow), 100u);
  EXPECT_EQ(C.rate(FaultKind::CodeGenCorruption), 50u);
  EXPECT_EQ(C.rate(FaultKind::TaskFailure), 25u);
  EXPECT_EQ(C.rate(FaultKind::BudgetBlowout), 10u);
  EXPECT_TRUE(C.armed());
  // Rates clamp to per-mille; garbage and unknown keys are ignored.
  FaultInjectionConfig D =
      FaultInjectionConfig::parse("align=5000,bogus=1,task=xyz,,seed=");
  EXPECT_EQ(D.rate(FaultKind::AlignmentThrow), 1000u);
  EXPECT_EQ(D.rate(FaultKind::TaskFailure), 0u);
  EXPECT_EQ(D.Seed, 0u);
  EXPECT_FALSE(FaultInjectionConfig().armed());
  EXPECT_FALSE(FaultInjectionConfig::parse("seed=9").armed());
}

TEST(FaultInjectionConfigTest, DecisionsAreDeterministicAndRateish) {
  FaultInjectionConfig C;
  C.Seed = 7;
  C.setRate(FaultKind::AlignmentThrow, 100);
  unsigned Fired = 0;
  for (int I = 0; I < 2000; ++I) {
    std::string K1 = "fn_" + std::to_string(I);
    std::string K2 = "fn_" + std::to_string(I * 31 + 7);
    bool F = faultFires(C, FaultKind::AlignmentThrow, K1, K2);
    EXPECT_EQ(F, faultFires(C, FaultKind::AlignmentThrow, K1, K2));
    Fired += F;
  }
  // 100 per-mille over 2000 independent keys: expect ~200, allow wide
  // slack (the decision is a hash, not a sampler — this guards against
  // catastrophic bias like always/never firing).
  EXPECT_GT(Fired, 100u);
  EXPECT_LT(Fired, 400u);
  // Kinds and seeds decide independently.
  EXPECT_FALSE(faultFires(C, FaultKind::TaskFailure, "a", "b")); // rate 0
  C.setRate(FaultKind::AlignmentThrow, 1000);
  EXPECT_TRUE(faultFires(C, FaultKind::AlignmentThrow, "anything"));
  EXPECT_THROW(maybeInjectFault(C, FaultKind::AlignmentThrow, "x"),
               InjectedFault);
}

//===----------------------------------------------------------------------===//
// Zero-fault bit-identity
//===----------------------------------------------------------------------===//

TEST(FaultInjectionTest, ZeroRateArmingIsBitIdenticalToDisarmed) {
  BenchmarkProfile P = faultProfile(11);
  MergeDriverOptions Plain;
  Plain.ExplorationThreshold = 3;
  MergeDriverOptions Armed = Plain;
  Armed.Faults.Seed = 42; // a seed with every rate 0 must change nothing
  for (unsigned NT : {1u, 4u}) {
    MergeDriverOptions A = Plain, B = Armed;
    A.NumThreads = B.NumThreads = NT;
    expectSameOutcome(runConfig(P, B), runConfig(P, A),
                      "zero-rate threads=" + std::to_string(NT));
  }
}

TEST(FaultInjectionTest, EnvSpecArmsAStockDriver) {
  BenchmarkProfile P = faultProfile(13);
  MergeDriverOptions DO;
  DO.ExplorationThreshold = 3;
  RunOutcome Clean = runConfig(P, DO);
  ASSERT_EQ(setenv("SALSSA_FAULTS", "seed=5,align=300", 1), 0);
  RunOutcome Faulted = runConfig(P, DO);
  ASSERT_EQ(unsetenv("SALSSA_FAULTS"), 0);
  EXPECT_GT(Faulted.Stats.AttemptFailures, 0u);
  EXPECT_TRUE(Faulted.VerifierOk);
  // Programmatic arming takes precedence over the environment — and the
  // env must not leak into runs that armed their own config.
  EXPECT_EQ(Clean.Stats.AttemptFailures, 0u);
  // Unsetting restores the clean pipeline exactly.
  expectSameOutcome(runConfig(P, DO), Clean, "after unsetenv");
}

//===----------------------------------------------------------------------===//
// The soak: modes x threads x shards
//===----------------------------------------------------------------------===//

TEST(FaultInjectionTest, SoakCompletesCleanAndDeterministic) {
  BenchmarkProfile P = faultProfile(17);
  for (SelectionStrategy Mode :
       {SelectionStrategy::Distance, SelectionStrategy::Profit,
        SelectionStrategy::Adaptive}) {
    RunOutcome ShardOne;
    for (unsigned Shards : {1u, 4u}) {
      MergeDriverOptions DO;
      DO.ExplorationThreshold = 3;
      DO.Selection = Mode;
      DO.ShardCount = Shards;
      DO.Faults = soakFaults(7);
      std::string Tag = "mode=" + std::to_string(int(Mode)) +
                        " shards=" + std::to_string(Shards);
      DO.NumThreads = 1;
      RunOutcome Serial = runConfig(P, DO);
      // Clean completion, verifier-clean output, and real fault traffic:
      // the session must keep merging through double-digit-percent
      // attempt failure rates.
      EXPECT_TRUE(Serial.VerifierOk) << Tag;
      EXPECT_GT(Serial.Stats.CommittedMerges, 0u) << Tag;
      unsigned Contained = Serial.Stats.AttemptFailures +
                           Serial.Stats.BudgetRejects +
                           Serial.Stats.VerifierRejects;
      EXPECT_GT(Contained * 10, Serial.Stats.Attempts)
          << Tag << ": soak must fault >=10% of attempts (got " << Contained
          << "/" << Serial.Stats.Attempts << ")";
      EXPECT_GT(Serial.Stats.AttemptFailures, 0u) << Tag;
      EXPECT_GT(Serial.Stats.BudgetRejects, 0u) << Tag;
      // Determinism across thread counts, faults and all.
      DO.NumThreads = 4;
      expectSameOutcome(runConfig(P, DO), Serial, Tag + " threads=4");
      // In every selection mode the sharded faulted run must equal the
      // unsharded faulted run bit for bit: fault decisions are
      // name-keyed and the profit modes calibrate per
      // merge-compatibility class — both shard-plan-invariant.
      if (Shards == 1)
        ShardOne = Serial;
      else
        expectSameOutcome(Serial, ShardOne, Tag + " vs unsharded");
    }
  }
}

TEST(FaultInjectionTest, DifferentSeedsFaultDifferentPairs) {
  BenchmarkProfile P = faultProfile(19);
  MergeDriverOptions DO;
  DO.ExplorationThreshold = 3;
  DO.Faults = soakFaults(1);
  RunOutcome SeedA = runConfig(P, DO);
  DO.Faults = soakFaults(2);
  RunOutcome SeedB = runConfig(P, DO);
  EXPECT_TRUE(SeedA.VerifierOk);
  EXPECT_TRUE(SeedB.VerifierOk);
  EXPECT_NE(SeedA.Records, SeedB.Records);
  // ... but each seed reproduces itself exactly.
  DO.Faults = soakFaults(1);
  expectSameOutcome(runConfig(P, DO), SeedA, "seed=1 rerun");
}

//===----------------------------------------------------------------------===//
// Budgets, firewall, quarantine, task recovery
//===----------------------------------------------------------------------===//

TEST(FaultInjectionTest, BudgetCapsRejectDeterministically) {
  BenchmarkProfile P = faultProfile(23);
  MergeDriverOptions DO;
  DO.ExplorationThreshold = 3;
  DO.Budget.MaxAlignmentCells = 900; // ~30x30 instructions — tiny
  DO.NumThreads = 1;
  RunOutcome Cells = runConfig(P, DO);
  EXPECT_TRUE(Cells.VerifierOk);
  EXPECT_GT(Cells.Stats.BudgetRejects, 0u);
  DO.NumThreads = 4;
  expectSameOutcome(runConfig(P, DO), Cells, "cell cap threads=4");

  MergeDriverOptions Body;
  Body.ExplorationThreshold = 3;
  Body.Budget.MaxMergedBodySize = 60;
  Body.NumThreads = 1;
  RunOutcome Bodies = runConfig(P, Body);
  EXPECT_TRUE(Bodies.VerifierOk);
  EXPECT_GT(Bodies.Stats.BudgetRejects, 0u);
  Body.NumThreads = 4;
  expectSameOutcome(runConfig(P, Body), Bodies, "body cap threads=4");

  MergeDriverOptions Steps;
  Steps.ExplorationThreshold = 3;
  Steps.Budget.MaxAttemptSteps = 60;
  RunOutcome Stepped = runConfig(P, Steps);
  EXPECT_TRUE(Stepped.VerifierOk);
  EXPECT_GT(Stepped.Stats.BudgetRejects, 0u);
}

TEST(FaultInjectionTest, FirewallRollsBackEveryCorruptWinner) {
  // Corrupt every generated body: nothing may commit, the module must
  // come out byte-identical to its pre-run print, and the firewall must
  // have actually fired (verifier rejects + eventual quarantines).
  BenchmarkProfile P = faultProfile(29);
  Context Ctx;
  std::unique_ptr<Module> M = buildBenchmarkModule(P, Ctx);
  std::string Before = printModule(*M);
  MergeDriverOptions DO;
  DO.ExplorationThreshold = 3;
  DO.Faults.Seed = 3;
  DO.Faults.setRate(FaultKind::CodeGenCorruption, 1000);
  MergeDriverStats S = runFunctionMerging(*M, DO);
  EXPECT_EQ(S.CommittedMerges, 0u);
  EXPECT_GT(S.VerifierRejects, 0u);
  EXPECT_GT(S.QuarantinedFunctions, 0u);
  EXPECT_TRUE(verifyModule(*M).ok());
  EXPECT_EQ(printModule(*M), Before);
}

TEST(FaultInjectionTest, AllAttemptsFaultingStillTerminates) {
  // The degradation ladder's worst case: every single attempt throws.
  // The session must run to completion, commit nothing, and quarantine
  // the repeat offenders instead of spinning on them.
  BenchmarkProfile P = faultProfile(31);
  MergeDriverOptions DO;
  DO.ExplorationThreshold = 3;
  DO.Faults.Seed = 4;
  DO.Faults.setRate(FaultKind::AlignmentThrow, 1000);
  for (unsigned NT : {1u, 4u}) {
    DO.NumThreads = NT;
    RunOutcome O = runConfig(P, DO);
    EXPECT_TRUE(O.VerifierOk) << NT;
    EXPECT_EQ(O.Stats.CommittedMerges, 0u) << NT;
    EXPECT_GT(O.Stats.AttemptFailures, 0u) << NT;
    EXPECT_GT(O.Stats.QuarantinedFunctions, 0u) << NT;
  }
  // Quarantine off: the session still terminates (the pool walk is
  // finite), it just pays for every failing attempt.
  DO.QuarantineThreshold = 0;
  DO.NumThreads = 1;
  RunOutcome O = runConfig(P, DO);
  EXPECT_EQ(O.Stats.QuarantinedFunctions, 0u);
  EXPECT_EQ(O.Stats.CommittedMerges, 0u);
}

TEST(FaultInjectionTest, TaskFailuresAreRecoveredWithoutChangingOutcomes) {
  // TaskFailure hits whole worker tasks outside the attempt guard; the
  // per-task guard demotes them to the inline path. Against the
  // fault-free serial run the outcomes must be identical — task deaths
  // are pure wasted work.
  BenchmarkProfile P = faultProfile(37);
  MergeDriverOptions Clean;
  Clean.ExplorationThreshold = 3;
  Clean.NumThreads = 1;
  RunOutcome Serial = runConfig(P, Clean);
  MergeDriverOptions DO = Clean;
  DO.Faults.Seed = 6;
  DO.Faults.setRate(FaultKind::TaskFailure, 400);
  DO.NumThreads = 4;
  RunOutcome Faulted = runConfig(P, DO);
  expectSameOutcome(Faulted, Serial, "task faults vs clean serial");
  EXPECT_GT(Faulted.Stats.TaskFailures, 0u);
  EXPECT_EQ(Faulted.Stats.AttemptFailures, 0u);
}

} // namespace
