//===- tests/align_test.cpp - Alignment unit and property tests ---------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//

#include "align/Matcher.h"
#include "align/NeedlemanWunsch.h"
#include "ir/IRBuilder.h"
#include "transforms/Reg2Mem.h"
#include "workloads/RandomFunction.h"
#include <gtest/gtest.h>

using namespace salssa;

namespace {

/// Alignment over plain characters for the algorithmic tests.
struct CharSeq {
  std::vector<SeqItem> Items;
  // Each char is faked as a distinct label pointer bucket: we abuse the
  // Block pointer to carry the character identity.
  explicit CharSeq(const std::string &S) {
    for (char C : S)
      Items.push_back(
          {reinterpret_cast<BasicBlock *>(static_cast<uintptr_t>(C)),
           nullptr});
  }
};

MatchFn charMatch = [](const SeqItem &A, const SeqItem &B) {
  return A.Block == B.Block;
};

TEST(NeedlemanWunschTest, IdenticalSequencesFullyMatch) {
  CharSeq A("abcdef"), B("abcdef");
  AlignmentResult R = alignSequences(A.Items, B.Items, charMatch);
  EXPECT_EQ(R.MatchedPairs, 6u);
  EXPECT_EQ(R.Entries.size(), 6u);
  for (const AlignedEntry &E : R.Entries)
    EXPECT_TRUE(E.isMatch());
}

TEST(NeedlemanWunschTest, DisjointSequencesNeverMatch) {
  CharSeq A("aaaa"), B("bbb");
  AlignmentResult R = alignSequences(A.Items, B.Items, charMatch);
  EXPECT_EQ(R.MatchedPairs, 0u);
  EXPECT_EQ(R.Entries.size(), 7u); // all gaps
}

TEST(NeedlemanWunschTest, FindsLongestCommonSubsequence) {
  // LCS("abcbdab", "bdcaba") = 4 (e.g. "bcba" / "bdab").
  CharSeq A("abcbdab"), B("bdcaba");
  AlignmentResult R = alignSequences(A.Items, B.Items, charMatch);
  EXPECT_EQ(R.MatchedPairs, 4u);
}

TEST(NeedlemanWunschTest, EmptySequences) {
  CharSeq A(""), B("xyz");
  AlignmentResult R1 = alignSequences(A.Items, B.Items, charMatch);
  EXPECT_EQ(R1.MatchedPairs, 0u);
  EXPECT_EQ(R1.Entries.size(), 3u);
  AlignmentResult R2 = alignSequences(A.Items, A.Items, charMatch);
  EXPECT_EQ(R2.Entries.size(), 0u);
}

TEST(NeedlemanWunschTest, EntriesAreMonotone) {
  CharSeq A("xaxbxcx"), B("yaybycy");
  AlignmentResult R = alignSequences(A.Items, B.Items, charMatch);
  int Last1 = -1, Last2 = -1;
  size_t Seen1 = 0, Seen2 = 0;
  for (const AlignedEntry &E : R.Entries) {
    if (E.Idx1 >= 0) {
      EXPECT_GT(E.Idx1, Last1);
      Last1 = E.Idx1;
      ++Seen1;
    }
    if (E.Idx2 >= 0) {
      EXPECT_GT(E.Idx2, Last2);
      Last2 = E.Idx2;
      ++Seen2;
    }
  }
  // Every element of both sequences appears exactly once.
  EXPECT_EQ(Seen1, A.Items.size());
  EXPECT_EQ(Seen2, B.Items.size());
}

TEST(NeedlemanWunschTest, DPBytesIsQuadratic) {
  CharSeq A(std::string(100, 'a')), B(std::string(200, 'b'));
  AlignmentResult R = alignSequences(A.Items, B.Items, charMatch);
  // Traceback matrix dominates: (100+1)*(200+1) bytes.
  EXPECT_GE(R.DPBytes, 101u * 201u);
  EXPECT_LE(R.DPBytes, 2u * 101u * 201u + 4096u);
}

/// Property sweep: random sequences against themselves and against
/// shuffles.
class AlignmentPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(AlignmentPropertyTest, SelfAlignmentIsPerfect) {
  RNG Rng(static_cast<uint64_t>(GetParam()) * 77 + 5);
  std::string S;
  for (int I = 0; I < 20 + GetParam() * 13; ++I)
    S += static_cast<char>('a' + Rng.nextBelow(4));
  CharSeq A(S);
  AlignmentResult R = alignSequences(A.Items, A.Items, charMatch);
  EXPECT_EQ(R.MatchedPairs, S.size());
}

TEST_P(AlignmentPropertyTest, MatchCountBoundedByShorterSequence) {
  RNG Rng(static_cast<uint64_t>(GetParam()) * 99 + 7);
  std::string S1, S2;
  for (int I = 0; I < 30; ++I)
    S1 += static_cast<char>('a' + Rng.nextBelow(3));
  for (int I = 0; I < 10 + GetParam(); ++I)
    S2 += static_cast<char>('a' + Rng.nextBelow(3));
  CharSeq A(S1), B(S2);
  AlignmentResult R = alignSequences(A.Items, B.Items, charMatch);
  EXPECT_LE(R.MatchedPairs, std::min(S1.size(), S2.size()));
  // With a 3-letter alphabet there is always some common subsequence.
  EXPECT_GT(R.MatchedPairs, 0u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, AlignmentPropertyTest,
                         ::testing::Range(0, 8));

//===----------------------------------------------------------------------===//
// Linear-space (Hirschberg) variant
//===----------------------------------------------------------------------===//

/// A valid alignment: monotone, complete, and every matched pair really
/// matches.
void checkAlignmentValid(const AlignmentResult &R,
                         const std::vector<SeqItem> &S1,
                         const std::vector<SeqItem> &S2) {
  int Last1 = -1, Last2 = -1;
  size_t Seen1 = 0, Seen2 = 0, Matches = 0;
  for (const AlignedEntry &E : R.Entries) {
    if (E.Idx1 >= 0) {
      EXPECT_GT(E.Idx1, Last1);
      Last1 = E.Idx1;
      ++Seen1;
    }
    if (E.Idx2 >= 0) {
      EXPECT_GT(E.Idx2, Last2);
      Last2 = E.Idx2;
      ++Seen2;
    }
    if (E.isMatch()) {
      EXPECT_TRUE(charMatch(S1[E.Idx1], S2[E.Idx2]));
      ++Matches;
    }
  }
  EXPECT_EQ(Seen1, S1.size());
  EXPECT_EQ(Seen2, S2.size());
  EXPECT_EQ(Matches, R.MatchedPairs);
}

TEST(LinearSpaceAlignTest, SameOptimalScoreAsFullMatrix) {
  RNG Rng(0xa119);
  for (int Round = 0; Round < 40; ++Round) {
    std::string S1, S2;
    unsigned L1 = 1 + Rng.nextBelow(60), L2 = 1 + Rng.nextBelow(60);
    for (unsigned I = 0; I < L1; ++I)
      S1 += static_cast<char>('a' + Rng.nextBelow(4));
    for (unsigned I = 0; I < L2; ++I)
      S2 += static_cast<char>('a' + Rng.nextBelow(4));
    CharSeq A(S1), B(S2);
    AlignmentResult Full =
        alignSequences(A.Items, B.Items, charMatch, AlignMode::FullMatrix);
    AlignmentResult Lin =
        alignSequences(A.Items, B.Items, charMatch, AlignMode::LinearSpace);
    EXPECT_EQ(Lin.MatchedPairs, Full.MatchedPairs)
        << "round " << Round << ": '" << S1 << "' vs '" << S2 << "'";
    EXPECT_TRUE(Lin.UsedLinearSpace);
    EXPECT_FALSE(Full.UsedLinearSpace);
    checkAlignmentValid(Lin, A.Items, B.Items);
    checkAlignmentValid(Full, A.Items, B.Items);
  }
}

TEST(LinearSpaceAlignTest, EmptyAndDegenerateInputs) {
  CharSeq E(""), X("xyz");
  AlignmentResult R1 =
      alignSequences(E.Items, X.Items, charMatch, AlignMode::LinearSpace);
  EXPECT_EQ(R1.MatchedPairs, 0u);
  EXPECT_EQ(R1.Entries.size(), 3u);
  AlignmentResult R2 =
      alignSequences(X.Items, E.Items, charMatch, AlignMode::LinearSpace);
  EXPECT_EQ(R2.Entries.size(), 3u);
  AlignmentResult R3 =
      alignSequences(E.Items, E.Items, charMatch, AlignMode::LinearSpace);
  EXPECT_EQ(R3.Entries.size(), 0u);
}

TEST(LinearSpaceAlignTest, FootprintIsLinearNotQuadratic) {
  // 600x600: full matrix needs ~360 KB of traceback; linear space should
  // stay within a few row-widths.
  std::string S(600, 'a');
  CharSeq A(S), B(S);
  AlignmentResult Full =
      alignSequences(A.Items, B.Items, charMatch, AlignMode::FullMatrix);
  AlignmentResult Lin =
      alignSequences(A.Items, B.Items, charMatch, AlignMode::LinearSpace);
  EXPECT_EQ(Lin.MatchedPairs, 600u);
  EXPECT_GE(Full.DPBytes, 601u * 601u);
  EXPECT_LE(Lin.DPBytes, 32u * 601u * sizeof(int32_t));
  EXPECT_LT(Lin.DPBytes * 10, Full.DPBytes);
}

TEST(LinearSpaceAlignTest, AutoSwitchesPastCellLimit) {
  // Just over the limit on one axis: (N+1)*(M+1) > FullMatrixCellLimit.
  size_t N = 1 << 13, M = (FullMatrixCellLimit >> 13) + 8;
  std::string S1(N, 'a'), S2(M, 'a');
  CharSeq A(S1), B(S2);
  AlignmentResult R = alignSequences(A.Items, B.Items, charMatch);
  EXPECT_TRUE(R.UsedLinearSpace);
  EXPECT_EQ(R.MatchedPairs, std::min(N, M));
  // Below the limit Auto keeps the paper's full-matrix configuration.
  CharSeq C("abc"), D("abd");
  EXPECT_FALSE(alignSequences(C.Items, D.Items, charMatch).UsedLinearSpace);
}

//===----------------------------------------------------------------------===//
// Linearization
//===----------------------------------------------------------------------===//

TEST(LinearizeTest, SkipsPhisAndLandingPads) {
  Context Ctx;
  Module M("m", Ctx);
  Type *I32 = Ctx.int32Ty();
  Function *Ext = M.createFunction("ext", Ctx.types().getFunctionTy(I32, {}));
  Function *F = M.createFunction("f", Ctx.types().getFunctionTy(I32, {Ctx.int1Ty()}));
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *T = F->createBlock("t");
  BasicBlock *E = F->createBlock("e");
  BasicBlock *J = F->createBlock("j");
  BasicBlock *U = F->createBlock("u");
  IRBuilder B(Ctx, Entry);
  B.createCondBr(F->getArg(0), T, E);
  B.setInsertPoint(T);
  B.createBr(J);
  B.setInsertPoint(E);
  B.createBr(J);
  B.setInsertPoint(J);
  PhiInst *P = B.createPhi(I32, "p");
  P->addIncoming(Ctx.getInt32(1), T);
  P->addIncoming(Ctx.getInt32(2), E);
  InvokeInst *Inv = B.createInvoke(Ext, {}, T /*bogus but structural*/, U);
  (void)Inv;
  B.setInsertPoint(U);
  Value *Tok = B.createLandingPad();
  B.createResume(Tok);

  std::vector<SeqItem> Seq = linearizeFunction(*F);
  unsigned Labels = 0, Instrs = 0;
  for (const SeqItem &It : Seq) {
    if (It.isLabel())
      ++Labels;
    else {
      ++Instrs;
      EXPECT_FALSE(It.Inst->isPhi());
      EXPECT_FALSE(isa<LandingPadInst>(It.Inst));
    }
  }
  EXPECT_EQ(Labels, F->getNumBlocks());
  // entry condbr + 2 brs + invoke + resume = 5 instructions.
  EXPECT_EQ(Instrs, 5u);
}

//===----------------------------------------------------------------------===//
// Matcher
//===----------------------------------------------------------------------===//

class MatcherTest : public ::testing::Test {
protected:
  void SetUp() override {
    M = std::make_unique<Module>("m", Ctx);
    Type *I32 = Ctx.int32Ty();
    F = M->createFunction("f", Ctx.types().getFunctionTy(I32, {I32, I32}));
    BB = F->createBlock("entry");
    B = std::make_unique<IRBuilder>(Ctx, BB);
  }
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = nullptr;
  BasicBlock *BB = nullptr;
  std::unique_ptr<IRBuilder> B;
};

TEST_F(MatcherTest, SameOpcodeDifferentOperandsMerge) {
  auto *A1 = cast<Instruction>(B->createAdd(F->getArg(0), Ctx.getInt32(1)));
  auto *A2 = cast<Instruction>(B->createAdd(F->getArg(1), Ctx.getInt32(2)));
  EXPECT_TRUE(areMergeableInstructions(A1, A2));
}

TEST_F(MatcherTest, DifferentOpcodesDontMerge) {
  auto *A = cast<Instruction>(B->createAdd(F->getArg(0), F->getArg(1)));
  auto *S = cast<Instruction>(B->createSub(F->getArg(0), F->getArg(1)));
  EXPECT_FALSE(areMergeableInstructions(A, S));
}

TEST_F(MatcherTest, DifferentTypesDontMerge) {
  Value *W = B->createSExt(F->getArg(0), Ctx.int64Ty());
  auto *A32 = cast<Instruction>(B->createAdd(F->getArg(0), F->getArg(1)));
  auto *A64 = cast<Instruction>(B->createAdd(W, W));
  EXPECT_FALSE(areMergeableInstructions(A32, A64));
}

TEST_F(MatcherTest, CmpPredicatesMustAgree) {
  auto *C1 = cast<Instruction>(
      B->createICmp(CmpPredicate::SLT, F->getArg(0), F->getArg(1)));
  auto *C2 = cast<Instruction>(
      B->createICmp(CmpPredicate::SLT, F->getArg(1), F->getArg(0)));
  auto *C3 = cast<Instruction>(
      B->createICmp(CmpPredicate::NE, F->getArg(0), F->getArg(1)));
  EXPECT_TRUE(areMergeableInstructions(C1, C2));
  EXPECT_FALSE(areMergeableInstructions(C1, C3));
}

TEST_F(MatcherTest, CallsRequireSameCallee) {
  Type *I32 = Ctx.int32Ty();
  Function *E1 = M->createFunction("e1", Ctx.types().getFunctionTy(I32, {I32}));
  Function *E2 = M->createFunction("e2", Ctx.types().getFunctionTy(I32, {I32}));
  auto *C1 = B->createCall(E1, {F->getArg(0)});
  auto *C2 = B->createCall(E1, {F->getArg(1)});
  auto *C3 = B->createCall(E2, {F->getArg(0)});
  EXPECT_TRUE(areMergeableInstructions(C1, C2));
  EXPECT_FALSE(areMergeableInstructions(C1, C3));
}

TEST_F(MatcherTest, LoadsStoresMergeOnTypes) {
  AllocaInst *P1 = B->createAlloca(Ctx.int32Ty());
  AllocaInst *P2 = B->createAlloca(Ctx.int32Ty());
  auto *L1 = cast<Instruction>(B->createLoad(Ctx.int32Ty(), P1));
  auto *L2 = cast<Instruction>(B->createLoad(Ctx.int32Ty(), P2));
  auto *S1 = B->createStore(F->getArg(0), P1);
  auto *S2 = B->createStore(F->getArg(1), P2);
  // Loads from *different* slots still merge (address becomes a select) —
  // the FMSA promotion-blocking phenomenon depends on this.
  EXPECT_TRUE(areMergeableInstructions(L1, L2));
  EXPECT_TRUE(areMergeableInstructions(S1, S2));
}

TEST_F(MatcherTest, LabelsMatchLabels) {
  SeqItem L1{BB, nullptr};
  SeqItem L2{BB, nullptr};
  auto *A = cast<Instruction>(B->createAdd(F->getArg(0), F->getArg(1)));
  SeqItem I1{BB, A};
  EXPECT_TRUE(itemsMatch(L1, L2));
  EXPECT_FALSE(itemsMatch(L1, I1));
}

TEST_F(MatcherTest, BranchArityMustAgree) {
  BasicBlock *T = F->createBlock("t");
  BasicBlock *E = F->createBlock("e");
  Value *C = B->createICmp(CmpPredicate::EQ, F->getArg(0), F->getArg(1));
  auto *Cond = B->createCondBr(C, T, E);
  IRBuilder B2(Ctx, T);
  auto *Uncond = B2.createBr(E);
  EXPECT_FALSE(areMergeableInstructions(Cond, Uncond));
  IRBuilder B3(Ctx, E);
  auto *Uncond2 = B3.createBr(T);
  EXPECT_TRUE(areMergeableInstructions(Uncond, Uncond2));
}

//===----------------------------------------------------------------------===//
// Demotion doubles sequence lengths (the Fig 5/22/23 mechanism)
//===----------------------------------------------------------------------===//

TEST(AlignCostTest, DemotionInflatesAlignmentFootprint) {
  Context Ctx;
  Module M("m", Ctx);
  RNG Rng(4242);
  WorkloadEnvironment Env(M, Rng);
  RandomFunctionOptions FO;
  FO.TargetSize = 120;
  FO.LoopPercent = 70;
  RNG G1 = Rng.fork(1), G2 = Rng.fork(2);
  Function *F1 = generateRandomFunction(Env, G1, "a", FO);
  Function *F2 = generateRandomFunction(Env, G2, "b", FO);

  AlignmentResult Before = alignSequences(
      linearizeFunction(*F1), linearizeFunction(*F2), itemsMatch);
  demoteRegistersToMemory(*F1, Ctx);
  demoteRegistersToMemory(*F2, Ctx);
  AlignmentResult After = alignSequences(
      linearizeFunction(*F1), linearizeFunction(*F2), itemsMatch);
  // The paper's quadratic blowup: demoted sequences cost several times
  // the original DP footprint.
  EXPECT_GT(After.DPBytes, 2 * Before.DPBytes);
}

} // namespace
