//===- tests/driver_test.cpp - Module-level merging integration tests ---------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
// End-to-end property tests: the merge drivers (SalSSA and FMSA) run over
// deterministic synthetic modules, and every public function must behave
// exactly like its pristine counterpart (built from the same seed into a
// reference module) on a battery of inputs. This validates the whole
// pipeline: alignment, code generation, SSA repair, coalescing, clean-up,
// thunking — for both techniques.
//
//===----------------------------------------------------------------------===//

#include "codesize/SizeModel.h"
#include "interp/Interpreter.h"
#include "ir/Verifier.h"
#include "merge/MergeDriver.h"
#include "workloads/Suites.h"
#include <gtest/gtest.h>

using namespace salssa;

namespace {

BenchmarkProfile smallProfile(uint64_t Seed, unsigned NumFns = 24) {
  BenchmarkProfile P;
  P.Name = "prop";
  P.NumFunctions = NumFns;
  P.MinSize = 6;
  P.AvgSize = 45;
  P.MaxSize = 200;
  P.CloneFamilyPercent = 45;
  P.MaxFamily = 4;
  P.FamilyDriftPercent = 10;
  P.LoopPercent = 50;
  P.InvokePercent = 5;
  P.Seed = Seed;
  return P;
}

/// Runs every definition of \p Merged against its same-named counterpart
/// in \p Reference on a few inputs; fails the test on any behavioural
/// difference.
void differentialCheck(Module &Reference, Module &Merged,
                       const std::string &Tag) {
  ExecOptions Opts;
  Opts.MaxSteps = 200000;
  Opts.ExternalThrowPercent = 10;
  Interpreter RefInterp(Reference, Opts);
  Interpreter MergedInterp(Merged, Opts);
  for (Function *RefF : Reference.functions()) {
    if (RefF->isDeclaration())
      continue;
    Function *NewF = Merged.getFunction(RefF->getName());
    ASSERT_NE(NewF, nullptr) << Tag << ": lost " << RefF->getName();
    for (uint64_t In : {0ull, 3ull, 17ull}) {
      std::vector<RuntimeValue> Args(RefF->getNumArgs(),
                                     RuntimeValue::makeInt(In));
      RefInterp.resetMemory();
      ExecResult R1 = RefInterp.run(RefF, Args);
      MergedInterp.resetMemory();
      ExecResult R2 = MergedInterp.run(NewF, Args);
      EXPECT_TRUE(behaviourallyEqual(R1, R2))
          << Tag << ": behaviour of " << RefF->getName()
          << " changed for input " << In;
    }
  }
}

class DriverPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DriverPropertyTest, SalSSAPreservesBehaviour) {
  Context CtxRef, CtxNew;
  BenchmarkProfile P = smallProfile(GetParam());
  std::unique_ptr<Module> Ref = buildBenchmarkModule(P, CtxRef);
  std::unique_ptr<Module> M = buildBenchmarkModule(P, CtxNew);

  MergeDriverOptions DO;
  DO.Technique = MergeTechnique::SalSSA;
  DO.ExplorationThreshold = 2;
  MergeDriverStats Stats = runFunctionMerging(*M, DO);
  VerifierReport VR = verifyModule(*M);
  ASSERT_TRUE(VR.ok()) << VR.str();
  differentialCheck(*Ref, *M, "salssa-seed" + std::to_string(GetParam()));
  // The clone-heavy profile must yield actual merges.
  EXPECT_GT(Stats.CommittedMerges, 0u);
}

TEST_P(DriverPropertyTest, FMSAPreservesBehaviour) {
  Context CtxRef, CtxNew;
  BenchmarkProfile P = smallProfile(GetParam());
  std::unique_ptr<Module> Ref = buildBenchmarkModule(P, CtxRef);
  std::unique_ptr<Module> M = buildBenchmarkModule(P, CtxNew);

  MergeDriverOptions DO;
  DO.Technique = MergeTechnique::FMSA;
  DO.ExplorationThreshold = 2;
  runFunctionMerging(*M, DO);
  VerifierReport VR = verifyModule(*M);
  ASSERT_TRUE(VR.ok()) << VR.str();
  differentialCheck(*Ref, *M, "fmsa-seed" + std::to_string(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DriverPropertyTest,
                         ::testing::Values(11ull, 22ull, 33ull, 44ull,
                                           55ull));

TEST(DriverTest, SalSSAReducesCloneHeavyModules) {
  Context Ctx;
  BenchmarkProfile P = smallProfile(7, 40);
  P.CloneFamilyPercent = 70;
  P.FamilyDriftPercent = 5;
  std::unique_ptr<Module> M = buildBenchmarkModule(P, Ctx);
  uint64_t Before = estimateModuleSize(*M, TargetArch::X86Like);
  MergeDriverOptions DO;
  DO.Technique = MergeTechnique::SalSSA;
  MergeDriverStats Stats = runFunctionMerging(*M, DO);
  uint64_t After = estimateModuleSize(*M, TargetArch::X86Like);
  EXPECT_LT(After, Before);
  EXPECT_GT(Stats.CommittedMerges, 3u);
  EXPECT_TRUE(verifyModule(*M).ok());
}

TEST(DriverTest, SalSSABeatsFMSAOnPhiRichCode) {
  // The paper's headline: on phi/loop-rich code SalSSA reduces about
  // twice as much as FMSA (which suffers register demotion).
  Context C1, C2;
  BenchmarkProfile P = smallProfile(13, 36);
  P.LoopPercent = 70;
  P.CloneFamilyPercent = 55;
  std::unique_ptr<Module> MF = buildBenchmarkModule(P, C1);
  std::unique_ptr<Module> MS = buildBenchmarkModule(P, C2);
  uint64_t Before = estimateModuleSize(*MF, TargetArch::X86Like);

  MergeDriverOptions DO;
  DO.Technique = MergeTechnique::FMSA;
  runFunctionMerging(*MF, DO);
  DO.Technique = MergeTechnique::SalSSA;
  runFunctionMerging(*MS, DO);

  uint64_t AfterFMSA = estimateModuleSize(*MF, TargetArch::X86Like);
  uint64_t AfterSalSSA = estimateModuleSize(*MS, TargetArch::X86Like);
  double RedF = 1.0 - double(AfterFMSA) / double(Before);
  double RedS = 1.0 - double(AfterSalSSA) / double(Before);
  EXPECT_GE(RedS, RedF) << "SalSSA " << RedS << " vs FMSA " << RedF;
}

TEST(DriverTest, HigherThresholdNeverHurtsMuch) {
  Context C1, C2;
  BenchmarkProfile P = smallProfile(21, 30);
  std::unique_ptr<Module> M1 = buildBenchmarkModule(P, C1);
  std::unique_ptr<Module> M5 = buildBenchmarkModule(P, C2);
  uint64_t Before = estimateModuleSize(*M1, TargetArch::X86Like);

  MergeDriverOptions DO;
  DO.Technique = MergeTechnique::SalSSA;
  DO.ExplorationThreshold = 1;
  runFunctionMerging(*M1, DO);
  DO.ExplorationThreshold = 5;
  MergeDriverStats S5 = runFunctionMerging(*M5, DO);

  uint64_t After1 = estimateModuleSize(*M1, TargetArch::X86Like);
  uint64_t After5 = estimateModuleSize(*M5, TargetArch::X86Like);
  double Red1 = 1.0 - double(After1) / double(Before);
  double Red5 = 1.0 - double(After5) / double(Before);
  // t=5 explores a superset of candidates; allow a tiny cost-model noise
  // margin.
  EXPECT_GE(Red5, Red1 - 0.01);
  EXPECT_GT(S5.Attempts, 0u);
}

TEST(DriverTest, ResidueOnlyKeepsBehaviourAndSize) {
  Context CtxRef, CtxNew;
  BenchmarkProfile P = smallProfile(31, 20);
  std::unique_ptr<Module> Ref = buildBenchmarkModule(P, CtxRef);
  std::unique_ptr<Module> M = buildBenchmarkModule(P, CtxNew);
  uint64_t Before = estimateModuleSize(*M, TargetArch::ThumbLike);
  runFMSAResidueOnly(*M);
  ASSERT_TRUE(verifyModule(*M).ok()) << verifyModule(*M).str();
  differentialCheck(*Ref, *M, "residue");
  uint64_t After = estimateModuleSize(*M, TargetArch::ThumbLike);
  // Demote+promote+simplify round-trips to (almost) the same size.
  EXPECT_NEAR(double(After), double(Before), 0.03 * double(Before));
}

TEST(DriverTest, StatsAreInternallyConsistent) {
  Context Ctx;
  BenchmarkProfile P = smallProfile(41, 24);
  std::unique_ptr<Module> M = buildBenchmarkModule(P, Ctx);
  MergeDriverOptions DO;
  DO.Technique = MergeTechnique::SalSSA;
  DO.ExplorationThreshold = 3;
  MergeDriverStats Stats = runFunctionMerging(*M, DO);
  EXPECT_GE(Stats.ProfitableMerges, Stats.CommittedMerges);
  EXPECT_GE(Stats.Attempts, Stats.ProfitableMerges);
  EXPECT_EQ(Stats.Records.size(), Stats.Attempts);
  unsigned CommittedRecords = 0;
  for (const MergeRecord &R : Stats.Records)
    CommittedRecords += R.Committed;
  EXPECT_EQ(CommittedRecords, Stats.CommittedMerges);
  EXPECT_GT(Stats.TotalSeconds, 0.0);
  EXPECT_GT(Stats.PeakAlignmentBytes, 0u);
}

TEST(DriverTest, DeterministicOutcome) {
  Context C1, C2;
  BenchmarkProfile P = smallProfile(51, 20);
  std::unique_ptr<Module> M1 = buildBenchmarkModule(P, C1);
  std::unique_ptr<Module> M2 = buildBenchmarkModule(P, C2);
  MergeDriverOptions DO;
  DO.Technique = MergeTechnique::SalSSA;
  MergeDriverStats S1 = runFunctionMerging(*M1, DO);
  MergeDriverStats S2 = runFunctionMerging(*M2, DO);
  EXPECT_EQ(S1.CommittedMerges, S2.CommittedMerges);
  EXPECT_EQ(S1.Attempts, S2.Attempts);
  EXPECT_EQ(estimateModuleSize(*M1, TargetArch::X86Like),
            estimateModuleSize(*M2, TargetArch::X86Like));
}

} // namespace
