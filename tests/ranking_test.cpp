//===- tests/ranking_test.cpp - CandidateIndex correctness tests --------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
// The CandidateIndex contract is exactness: query(FP, k) must return the
// same candidates, in the same order, as the brute-force all-pairs
// ranking it replaces — LSH banding and the size-bounded walk are only
// allowed to make it faster. These tests check that property on
// randomized pools (including incremental retire/insert churn), the
// early-exit distance kernel, and finally that both driver strategies
// commit bit-identical merges on the seed workloads.
//
//===----------------------------------------------------------------------===//

#include "codesize/SizeModel.h"
#include "ir/Verifier.h"
#include "merge/CandidateIndex.h"
#include "merge/MergeDriver.h"
#include "support/RNG.h"
#include "workloads/Suites.h"
#include <algorithm>
#include <gtest/gtest.h>

using namespace salssa;

namespace {

/// Builds a clone-heavy module and returns the fingerprints of its
/// mergeable functions, ordered like the driver's pool (stable by
/// descending size).
std::vector<Fingerprint> poolFingerprints(uint64_t Seed, unsigned NumFns,
                                          Context &Ctx,
                                          std::unique_ptr<Module> &M) {
  BenchmarkProfile P;
  P.Name = "ranking";
  P.NumFunctions = NumFns;
  P.MinSize = 5;
  P.AvgSize = 40;
  P.MaxSize = 160;
  P.CloneFamilyPercent = 50;
  P.MaxFamily = 5;
  P.FamilyDriftPercent = 12;
  P.LoopPercent = 50;
  P.Seed = Seed;
  M = buildBenchmarkModule(P, Ctx);
  std::vector<Fingerprint> FPs;
  for (Function *F : M->functions())
    if (F->isMergeable())
      FPs.push_back(Fingerprint::compute(*F));
  std::stable_sort(FPs.begin(), FPs.end(),
                   [](const Fingerprint &A, const Fingerprint &B) {
                     return A.Size > B.Size;
                   });
  return FPs;
}

/// Reference ranking: scan every live id, sort by (distance, id), trim.
std::vector<CandidateIndex::Hit>
bruteForceTopK(const std::vector<Fingerprint> &FPs,
               const std::vector<bool> &Live, uint32_t Query, unsigned K) {
  std::vector<CandidateIndex::Hit> Hits;
  for (uint32_t J = 0; J < FPs.size(); ++J) {
    if (J == Query || !Live[J])
      continue;
    uint64_t D = fingerprintDistance(FPs[Query], FPs[J]);
    if (D == UINT64_MAX)
      continue;
    Hits.push_back({D, J});
  }
  std::stable_sort(Hits.begin(), Hits.end(),
                   [](const CandidateIndex::Hit &A,
                      const CandidateIndex::Hit &B) {
                     return A.Distance < B.Distance;
                   });
  if (Hits.size() > K)
    Hits.resize(K);
  return Hits;
}

void expectSameHits(const std::vector<CandidateIndex::Hit> &Got,
                    const std::vector<CandidateIndex::Hit> &Want,
                    const std::string &Tag) {
  ASSERT_EQ(Got.size(), Want.size()) << Tag;
  for (size_t I = 0; I < Got.size(); ++I) {
    EXPECT_EQ(Got[I].Id, Want[I].Id) << Tag << " position " << I;
    EXPECT_EQ(Got[I].Distance, Want[I].Distance) << Tag << " position " << I;
  }
}

class RankingPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RankingPropertyTest, TopKMatchesBruteForce) {
  Context Ctx;
  std::unique_ptr<Module> M;
  std::vector<Fingerprint> FPs = poolFingerprints(GetParam(), 40, Ctx, M);
  ASSERT_GT(FPs.size(), 10u);

  CandidateIndex Index;
  std::vector<bool> Live(FPs.size(), true);
  for (uint32_t I = 0; I < FPs.size(); ++I)
    Index.insert(I, FPs[I]);

  for (unsigned K : {1u, 2u, 5u, 10u, 1000u})
    for (uint32_t Q = 0; Q < FPs.size(); ++Q) {
      std::vector<CandidateIndex::Hit> Got = Index.query(FPs[Q], K, Q);
      std::vector<CandidateIndex::Hit> Want =
          bruteForceTopK(FPs, Live, Q, K);
      expectSameHits(Got, Want,
                     "k=" + std::to_string(K) + " q=" + std::to_string(Q));
    }
}

TEST_P(RankingPropertyTest, RetireAndReinsertStayExact) {
  Context Ctx;
  std::unique_ptr<Module> M;
  std::vector<Fingerprint> FPs = poolFingerprints(GetParam() + 101, 32, Ctx, M);

  CandidateIndex Index;
  std::vector<bool> Live(FPs.size(), true);
  for (uint32_t I = 0; I < FPs.size(); ++I)
    Index.insert(I, FPs[I]);

  // Churn: retire random pairs (the driver's commit pattern), re-query
  // everything live, occasionally resurrect an id (remerge insertion).
  RNG Rng(GetParam() * 31337 + 11);
  for (int Round = 0; Round < 12; ++Round) {
    size_t NumLive = Index.liveCount();
    if (NumLive > 4 && Rng.chancePercent(75)) {
      // Retire two random live ids.
      for (int Pick = 0; Pick < 2; ++Pick) {
        uint32_t Id;
        do
          Id = static_cast<uint32_t>(Rng.nextBelow(FPs.size()));
        while (!Live[Id]);
        Index.retire(Id);
        Live[Id] = false;
      }
    } else {
      // Resurrect one retired id, if any.
      for (uint32_t Id = 0; Id < Live.size(); ++Id)
        if (!Live[Id]) {
          Index.insert(Id, FPs[Id]);
          Live[Id] = true;
          break;
        }
    }
    ASSERT_EQ(Index.liveCount(),
              static_cast<size_t>(
                  std::count(Live.begin(), Live.end(), true)));
    unsigned K = 1 + static_cast<unsigned>(Rng.nextBelow(6));
    for (uint32_t Q = 0; Q < FPs.size(); ++Q) {
      if (!Live[Q])
        continue;
      expectSameHits(Index.query(FPs[Q], K, Q),
                     bruteForceTopK(FPs, Live, Q, K),
                     "round " + std::to_string(Round) + " q=" +
                         std::to_string(Q));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RankingPropertyTest,
                         ::testing::Values(1ull, 2ull, 3ull, 17ull, 99ull));

TEST(RankingTest, BoundedDistanceAgreesWithExact) {
  Context Ctx;
  std::unique_ptr<Module> M;
  std::vector<Fingerprint> FPs = poolFingerprints(7, 24, Ctx, M);
  RNG Rng(0xb0bb);
  for (int Trial = 0; Trial < 2000; ++Trial) {
    const Fingerprint &A = FPs[Rng.nextBelow(FPs.size())];
    const Fingerprint &B = FPs[Rng.nextBelow(FPs.size())];
    uint64_t Exact = fingerprintDistance(A, B);
    uint64_t Bound = Rng.nextBelow(120);
    uint64_t Bounded = fingerprintDistance(A, B, Bound);
    if (Exact <= Bound)
      EXPECT_EQ(Bounded, Exact);
    else {
      EXPECT_GT(Bounded, Bound);  // flagged as over-bound...
      EXPECT_LE(Bounded, Exact);  // ...via a lower bound of the truth
    }
  }
}

TEST(RankingTest, SketchIsDeterministicAndSizeGapBoundsDistance) {
  Context Ctx;
  std::unique_ptr<Module> M;
  std::vector<Fingerprint> FPs = poolFingerprints(21, 20, Ctx, M);
  // Recompute: bit-identical sketches.
  for (Function *F : M->functions()) {
    if (!F->isMergeable())
      continue;
    Fingerprint FP = Fingerprint::compute(*F);
    Fingerprint FP2 = Fingerprint::compute(*F);
    EXPECT_EQ(FP.MinHash, FP2.MinHash);
    for (size_t B = 0; B < Fingerprint::SketchBands; ++B)
      EXPECT_EQ(FP.bandHash(B), FP2.bandHash(B));
  }
  // The exactness argument rests on |SizeA - SizeB| <= distance(A, B).
  for (const Fingerprint &A : FPs)
    for (const Fingerprint &B : FPs) {
      uint64_t D = fingerprintDistance(A, B);
      if (D == UINT64_MAX)
        continue;
      uint64_t Gap = A.Size > B.Size ? A.Size - B.Size : B.Size - A.Size;
      EXPECT_GE(D, Gap);
    }
}

/// Both ranking strategies must commit identical merges — same pairs,
/// same order, same final module size — on the seed workloads.
class StrategyEquivalenceTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StrategyEquivalenceTest, StrategiesCommitIdenticalMerges) {
  for (MergeTechnique Tech :
       {MergeTechnique::SalSSA, MergeTechnique::FMSA}) {
    Context C1, C2;
    BenchmarkProfile P;
    P.Name = "equiv";
    P.NumFunctions = 28;
    P.MinSize = 6;
    P.AvgSize = 45;
    P.MaxSize = 200;
    P.CloneFamilyPercent = 45;
    P.MaxFamily = 4;
    P.FamilyDriftPercent = 10;
    P.LoopPercent = 50;
    P.Seed = GetParam();
    std::unique_ptr<Module> MB = buildBenchmarkModule(P, C1);
    std::unique_ptr<Module> MI = buildBenchmarkModule(P, C2);

    MergeDriverOptions DO;
    DO.Technique = Tech;
    DO.ExplorationThreshold = 3;
    DO.Ranking = RankingStrategy::BruteForce;
    MergeDriverStats SB = runFunctionMerging(*MB, DO);
    DO.Ranking = RankingStrategy::CandidateIndex;
    MergeDriverStats SI = runFunctionMerging(*MI, DO);

    EXPECT_EQ(SB.CommittedMerges, SI.CommittedMerges);
    EXPECT_EQ(SB.Attempts, SI.Attempts);
    EXPECT_EQ(SB.ProfitableMerges, SI.ProfitableMerges);
    ASSERT_EQ(SB.Records.size(), SI.Records.size());
    for (size_t I = 0; I < SB.Records.size(); ++I) {
      EXPECT_EQ(SB.Records[I].Name1, SI.Records[I].Name1) << "record " << I;
      EXPECT_EQ(SB.Records[I].Name2, SI.Records[I].Name2) << "record " << I;
      EXPECT_EQ(SB.Records[I].Committed, SI.Records[I].Committed)
          << "record " << I;
    }
    EXPECT_EQ(estimateModuleSize(*MB, TargetArch::X86Like),
              estimateModuleSize(*MI, TargetArch::X86Like))
        << "technique " << (Tech == MergeTechnique::SalSSA ? "salssa"
                                                           : "fmsa");
    EXPECT_TRUE(verifyModule(*MB).ok());
    EXPECT_TRUE(verifyModule(*MI).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StrategyEquivalenceTest,
                         ::testing::Values(11ull, 22ull, 33ull, 44ull,
                                           55ull));

TEST(RankingTest, CommittedRecordMarksTheWinningAttempt) {
  // The committed record must be the exact attempt that won, even when
  // the same pair shows up in several attempts across pool iterations.
  Context Ctx;
  BenchmarkProfile P;
  P.Name = "records";
  P.NumFunctions = 30;
  P.CloneFamilyPercent = 60;
  P.MaxFamily = 5;
  P.FamilyDriftPercent = 8;
  P.Seed = 77;
  std::unique_ptr<Module> M = buildBenchmarkModule(P, Ctx);
  MergeDriverOptions DO;
  DO.ExplorationThreshold = 4;
  MergeDriverStats S = runFunctionMerging(*M, DO);
  unsigned Committed = 0;
  for (const MergeRecord &R : S.Records) {
    if (!R.Committed)
      continue;
    ++Committed;
    // A committed record must correspond to a profitable valid attempt.
    EXPECT_TRUE(R.Stats.Profitable) << R.Name1 << " + " << R.Name2;
  }
  EXPECT_EQ(Committed, S.CommittedMerges);
}

} // namespace
