//===- tests/codesize_test.cpp - Size model tests -----------------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//

#include "codesize/SizeModel.h"
#include "ir/IRBuilder.h"
#include "ir/Module.h"
#include <gtest/gtest.h>

using namespace salssa;

namespace {

class SizeModelTest : public ::testing::Test {
protected:
  void SetUp() override {
    M = std::make_unique<Module>("m", Ctx);
    F = M->createFunction(
        "f", Ctx.types().getFunctionTy(Ctx.int32Ty(),
                                       {Ctx.int32Ty(), Ctx.int32Ty()}));
    BB = F->createBlock("entry");
    B = std::make_unique<IRBuilder>(Ctx, BB);
  }
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F = nullptr;
  BasicBlock *BB = nullptr;
  std::unique_ptr<IRBuilder> B;
};

TEST_F(SizeModelTest, DeclarationsCostNothing) {
  Function *D =
      M->createFunction("ext", Ctx.types().getFunctionTy(Ctx.voidTy(), {}));
  EXPECT_EQ(estimateFunctionSize(*D, TargetArch::X86Like), 0u);
  EXPECT_EQ(estimateFunctionSize(*D, TargetArch::ThumbLike), 0u);
}

TEST_F(SizeModelTest, FunctionOverheadCounted) {
  B->createRet(F->getArg(0));
  unsigned X86 = estimateFunctionSize(*F, TargetArch::X86Like);
  unsigned Thumb = estimateFunctionSize(*F, TargetArch::ThumbLike);
  EXPECT_GT(X86, estimateInstructionSize(*BB->back(), TargetArch::X86Like));
  EXPECT_GT(Thumb, 0u);
  // Thumb encodings are denser overall for the same IR.
  Value *Acc = F->getArg(0);
  for (int I = 0; I < 20; ++I)
    Acc = B->createAdd(Acc, F->getArg(1));
  EXPECT_LT(estimateFunctionSize(*F, TargetArch::ThumbLike),
            estimateFunctionSize(*F, TargetArch::X86Like));
}

TEST_F(SizeModelTest, AllocasAreFree) {
  AllocaInst *A = B->createAlloca(Ctx.int32Ty());
  EXPECT_EQ(estimateInstructionSize(*A, TargetArch::X86Like), 0u);
}

TEST_F(SizeModelTest, PhiCostScalesWithIncomingEdges) {
  auto *P2 = new PhiInst(Ctx.int32Ty());
  P2->addIncoming(Ctx.getInt32(1), BB);
  P2->addIncoming(Ctx.getInt32(2), BB);
  auto *P4 = new PhiInst(Ctx.int32Ty());
  for (int I = 0; I < 4; ++I)
    P4->addIncoming(Ctx.getInt32(static_cast<uint64_t>(I)), BB);
  EXPECT_LT(estimateInstructionSize(*P2, TargetArch::X86Like),
            estimateInstructionSize(*P4, TargetArch::X86Like));
  P2->dropAllReferences();
  P4->dropAllReferences();
  delete P2;
  delete P4;
}

TEST_F(SizeModelTest, SwitchCostScalesWithCases) {
  BasicBlock *D = F->createBlock("d");
  SwitchInst *SW = B->createSwitch(F->getArg(0), D);
  unsigned Size0 = estimateInstructionSize(*SW, TargetArch::X86Like);
  SW->addCase(Ctx.getInt32(1), D);
  SW->addCase(Ctx.getInt32(2), D);
  unsigned Size2 = estimateInstructionSize(*SW, TargetArch::X86Like);
  EXPECT_GT(Size2, Size0);
  IRBuilder BD(Ctx, D);
  BD.createRet(Ctx.getInt32(0));
}

TEST_F(SizeModelTest, SelectCostsMoreThanAdd) {
  // The cost model must penalize the select pressure merging creates,
  // or the profitability model would never reject a bad merge.
  auto *Add = cast<Instruction>(B->createAdd(F->getArg(0), F->getArg(1)));
  Value *C = B->createICmp(CmpPredicate::EQ, F->getArg(0), F->getArg(1));
  auto *Sel =
      cast<Instruction>(B->createSelect(C, F->getArg(0), F->getArg(1)));
  for (TargetArch A : {TargetArch::X86Like, TargetArch::ThumbLike})
    EXPECT_GT(estimateInstructionSize(*Sel, A),
              estimateInstructionSize(*Add, A));
}

TEST_F(SizeModelTest, ModuleSizeIsSumOfDefinitions) {
  B->createRet(F->getArg(0));
  Function *G =
      M->createFunction("g", Ctx.types().getFunctionTy(Ctx.voidTy(), {}));
  IRBuilder BG(Ctx, G->createBlock("entry"));
  BG.createRetVoid();
  M->createFunction("decl", Ctx.types().getFunctionTy(Ctx.voidTy(), {}));
  EXPECT_EQ(estimateModuleSize(*M, TargetArch::X86Like),
            estimateFunctionSize(*F, TargetArch::X86Like) +
                estimateFunctionSize(*G, TargetArch::X86Like));
}

TEST_F(SizeModelTest, EveryOpcodeHasACost) {
  // Conditional branch costs more than unconditional.
  BasicBlock *T = F->createBlock("t");
  BasicBlock *E = F->createBlock("e");
  Value *C = B->createICmp(CmpPredicate::EQ, F->getArg(0), F->getArg(1));
  auto *CBr = B->createCondBr(C, T, E);
  IRBuilder BT(Ctx, T);
  auto *UBr = BT.createBr(E);
  EXPECT_GT(estimateInstructionSize(*CBr, TargetArch::X86Like),
            estimateInstructionSize(*UBr, TargetArch::X86Like));
  IRBuilder BE(Ctx, E);
  BE.createRet(Ctx.getInt32(0));
}

} // namespace
