//===- tests/protocol_test.cpp - Wire protocol unit coverage ------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//
//
// Pure Protocol-layer coverage (service/Protocol.h) — no daemon, no
// sockets:
//   - frame round-trips through FrameAssembler, including byte-at-a-time
//     and multi-frame feeds;
//   - malformed frames (bad magic, wrong version, oversized length,
//     corrupt checksum, truncation) are rejected with the right sticky
//     FrameError and never yield a payload;
//   - every request/response struct round-trips byte-exactly and
//     rejects truncated bodies cleanly;
//   - the version-mismatch handshake carries the daemon version;
//   - ApplyTokenCache is idempotent (first response wins) and bounded
//     (FIFO eviction).
//
//===----------------------------------------------------------------------===//

#include "service/Protocol.h"
#include "gtest/gtest.h"

using namespace salssa;

namespace {

std::vector<uint8_t> somePayload(size_t N, uint8_t Salt = 7) {
  std::vector<uint8_t> P(N);
  for (size_t I = 0; I < N; ++I)
    P[I] = static_cast<uint8_t>((I * 131 + Salt) & 0xFF);
  return P;
}

//===----------------------------------------------------------------------===//
// Framing
//===----------------------------------------------------------------------===//

TEST(Framing, RoundTripsWholeAndByteAtATime) {
  std::vector<uint8_t> Payload = somePayload(300);
  std::vector<uint8_t> Frame = encodeFrame(Payload);
  EXPECT_EQ(Frame.size(), FrameHeaderBytes + Payload.size());

  FrameAssembler Whole;
  Whole.feed(Frame.data(), Frame.size());
  std::vector<uint8_t> Out;
  ASSERT_TRUE(Whole.next(Out));
  EXPECT_EQ(Out, Payload);
  EXPECT_FALSE(Whole.next(Out)) << "no second frame";
  EXPECT_EQ(Whole.error(), FrameError::None);

  FrameAssembler Dribble;
  for (uint8_t B : Frame) {
    EXPECT_FALSE(Dribble.error() != FrameError::None);
    Dribble.feed(&B, 1);
  }
  ASSERT_TRUE(Dribble.next(Out));
  EXPECT_EQ(Out, Payload);
}

TEST(Framing, ReassemblesSeveralFramesFromOneFeed) {
  std::vector<uint8_t> Stream;
  std::vector<std::vector<uint8_t>> Payloads;
  for (int I = 0; I < 5; ++I) {
    Payloads.push_back(somePayload(40 + 17 * I, static_cast<uint8_t>(I)));
    std::vector<uint8_t> F = encodeFrame(Payloads.back());
    Stream.insert(Stream.end(), F.begin(), F.end());
  }
  FrameAssembler Asm;
  Asm.feed(Stream.data(), Stream.size());
  std::vector<uint8_t> Out;
  for (int I = 0; I < 5; ++I) {
    ASSERT_TRUE(Asm.next(Out)) << "frame " << I;
    EXPECT_EQ(Out, Payloads[I]) << "frame " << I;
  }
  EXPECT_FALSE(Asm.next(Out));
  EXPECT_EQ(Asm.error(), FrameError::None);
}

TEST(Framing, EmptyPayloadFrameIsLegal) {
  std::vector<uint8_t> Frame = encodeFrame({});
  FrameAssembler Asm;
  Asm.feed(Frame.data(), Frame.size());
  std::vector<uint8_t> Out{1, 2, 3};
  ASSERT_TRUE(Asm.next(Out));
  EXPECT_TRUE(Out.empty());
}

TEST(Framing, BadMagicIsStickyRejection) {
  std::vector<uint8_t> Frame = encodeFrame(somePayload(16));
  Frame[0] ^= 0xFF;
  FrameAssembler Asm;
  Asm.feed(Frame.data(), Frame.size());
  std::vector<uint8_t> Out;
  EXPECT_FALSE(Asm.next(Out));
  EXPECT_EQ(Asm.error(), FrameError::BadMagic);
  // Sticky: even a following pristine frame is refused.
  std::vector<uint8_t> Good = encodeFrame(somePayload(8));
  Asm.feed(Good.data(), Good.size());
  EXPECT_FALSE(Asm.next(Out));
  EXPECT_EQ(Asm.error(), FrameError::BadMagic);
}

TEST(Framing, WrongVersionIsRejected) {
  std::vector<uint8_t> Frame = encodeFrame(somePayload(16));
  Frame[4] = static_cast<uint8_t>(ProtocolVersion + 1); // little-endian lsb
  FrameAssembler Asm;
  Asm.feed(Frame.data(), Frame.size());
  std::vector<uint8_t> Out;
  EXPECT_FALSE(Asm.next(Out));
  EXPECT_EQ(Asm.error(), FrameError::BadVersion);
}

TEST(Framing, OversizedLengthIsRejectedBeforeBuffering) {
  // Hand-build a header claiming a payload far above the bound; the
  // assembler must reject on the header alone, without waiting for (or
  // allocating) the claimed bytes.
  ByteWriter W;
  W.u32(ProtocolMagic);
  W.u32(ProtocolVersion);
  W.u32(MaxFramePayloadBytes + 1);
  W.u64(0);
  std::vector<uint8_t> Header = W.buffer();
  FrameAssembler Asm;
  Asm.feed(Header.data(), Header.size());
  std::vector<uint8_t> Out;
  EXPECT_FALSE(Asm.next(Out));
  EXPECT_EQ(Asm.error(), FrameError::Oversized);
}

TEST(Framing, CorruptChecksumIsRejected) {
  std::vector<uint8_t> Frame = encodeFrame(somePayload(64));
  Frame[12] ^= 0x01; // first checksum byte
  FrameAssembler Asm;
  Asm.feed(Frame.data(), Frame.size());
  std::vector<uint8_t> Out;
  EXPECT_FALSE(Asm.next(Out));
  EXPECT_EQ(Asm.error(), FrameError::BadChecksum);
}

TEST(Framing, CorruptPayloadByteIsRejected) {
  std::vector<uint8_t> Frame = encodeFrame(somePayload(64));
  Frame[FrameHeaderBytes + 10] ^= 0x80;
  FrameAssembler Asm;
  Asm.feed(Frame.data(), Frame.size());
  std::vector<uint8_t> Out;
  EXPECT_FALSE(Asm.next(Out));
  EXPECT_EQ(Asm.error(), FrameError::BadChecksum);
}

TEST(Framing, TruncatedFrameJustWaitsForMoreBytes) {
  std::vector<uint8_t> Frame = encodeFrame(somePayload(128));
  FrameAssembler Asm;
  Asm.feed(Frame.data(), Frame.size() - 1);
  std::vector<uint8_t> Out;
  EXPECT_FALSE(Asm.next(Out)) << "incomplete frame must not yield";
  EXPECT_EQ(Asm.error(), FrameError::None) << "truncation is not an error yet";
  uint8_t Last = Frame.back();
  Asm.feed(&Last, 1);
  EXPECT_TRUE(Asm.next(Out));
}

//===----------------------------------------------------------------------===//
// Struct round-trips
//===----------------------------------------------------------------------===//

RegisterModulesRequest sampleRegister() {
  RegisterModulesRequest RM;
  RM.Profile.Name = "proto.rt";
  RM.Profile.NumFunctions = 31;
  RM.Profile.AvgSize = 42;
  RM.Profile.RetTypeVariety = 3;
  RM.Profile.Seed = 0xfeedULL << 17;
  RM.NumModules = 3;
  RM.Selection = SelectionStrategy::Profit;
  RM.NumThreads = 4;
  RM.ShardCount = 2;
  RM.ExplorationThreshold = 5;
  RM.Host = HostPolicy::Hottest;
  RM.HashClustering = true;
  RM.Canonicalize = true;
  RM.DecisionCachePath = "/tmp/dc.bin";
  RM.QuarantineDecayEpochs = 7;
  RM.ReelectHost = true;
  return RM;
}

TEST(Payloads, RegisterModulesRoundTrips) {
  RegisterModulesRequest RM = sampleRegister();
  ByteWriter W;
  RM.encode(W);
  RegisterModulesRequest Back;
  ByteReader R(W.buffer().data(), W.buffer().size());
  ASSERT_TRUE(Back.decode(R));
  EXPECT_TRUE(R.atEnd());
  EXPECT_EQ(Back.Profile.Name, RM.Profile.Name);
  EXPECT_EQ(Back.Profile.NumFunctions, RM.Profile.NumFunctions);
  EXPECT_EQ(Back.Profile.Seed, RM.Profile.Seed);
  EXPECT_EQ(Back.NumModules, RM.NumModules);
  EXPECT_EQ(Back.Selection, RM.Selection);
  EXPECT_EQ(Back.NumThreads, RM.NumThreads);
  EXPECT_EQ(Back.ShardCount, RM.ShardCount);
  EXPECT_EQ(Back.ExplorationThreshold, RM.ExplorationThreshold);
  EXPECT_EQ(Back.Host, RM.Host);
  EXPECT_EQ(Back.HashClustering, RM.HashClustering);
  EXPECT_EQ(Back.Canonicalize, RM.Canonicalize);
  EXPECT_EQ(Back.DecisionCachePath, RM.DecisionCachePath);
  EXPECT_EQ(Back.QuarantineDecayEpochs, RM.QuarantineDecayEpochs);
  EXPECT_EQ(Back.ReelectHost, RM.ReelectHost);
}

TEST(Payloads, RegisterModulesEncodingIsDeterministic) {
  // The daemon's idempotent-registration check compares raw body bytes,
  // so identical requests must encode identically.
  ByteWriter A, B;
  sampleRegister().encode(A);
  sampleRegister().encode(B);
  EXPECT_EQ(A.buffer(), B.buffer());
}

TEST(Payloads, ApplyDeltaRoundTripsTheFullSpec) {
  ApplyDeltaRequest AR;
  AR.Token = 0xdeadbeefcafeULL;
  AR.Spec.Deletes.push_back({EditOp::Delete, 1, "gone", 11});
  AR.Spec.Changes.push_back({EditOp::Change, 0, "mutate_me", 22});
  AR.Spec.Changes.push_back({EditOp::Change, 1, "and_me", 33});
  AR.Spec.Adds.push_back({EditOp::Add, 0, "fresh", 44});
  AR.Spec.Drift.MutatePercent = 15;
  AR.Spec.Drift.InsertPercent = 5;
  AR.Spec.Generate.TargetSize = 30;
  AR.Spec.Generate.RetTypeVariety = 3;
  ByteWriter W;
  AR.encode(W);
  ApplyDeltaRequest Back;
  ByteReader R(W.buffer().data(), W.buffer().size());
  ASSERT_TRUE(Back.decode(R));
  EXPECT_TRUE(R.atEnd());
  EXPECT_EQ(Back.Token, AR.Token);
  ASSERT_EQ(Back.Spec.Deletes.size(), 1u);
  ASSERT_EQ(Back.Spec.Changes.size(), 2u);
  ASSERT_EQ(Back.Spec.Adds.size(), 1u);
  EXPECT_EQ(Back.Spec.Deletes[0].K, EditOp::Delete);
  EXPECT_EQ(Back.Spec.Deletes[0].Name, "gone");
  EXPECT_EQ(Back.Spec.Changes[1].ModuleIdx, 1u);
  EXPECT_EQ(Back.Spec.Changes[1].OpSeed, 33u);
  EXPECT_EQ(Back.Spec.Adds[0].Name, "fresh");
  EXPECT_EQ(Back.Spec.Drift.MutatePercent, 15u);
  EXPECT_EQ(Back.Spec.Generate.TargetSize, 30u);
}

TEST(Payloads, TruncatedBodiesAreRejectedCleanly) {
  ApplyDeltaRequest AR;
  AR.Token = 99;
  AR.Spec.Changes.push_back({EditOp::Change, 0, "victim", 5});
  ByteWriter W;
  AR.encode(W);
  // Every strict prefix must fail decode() — never crash, never spin.
  for (size_t Cut = 0; Cut < W.buffer().size(); ++Cut) {
    ApplyDeltaRequest Back;
    ByteReader R(W.buffer().data(), Cut);
    EXPECT_FALSE(Back.decode(R)) << "prefix " << Cut << " decoded";
  }
}

TEST(Payloads, StringWithClaimedLengthPastBufferIsRejected) {
  // A string header claiming more bytes than remain must fail instead
  // of over-reading (the reader is bounds-checked; decodeString must
  // not loop on zero-fill).
  ByteWriter W;
  W.u32(1000); // claimed length
  W.u8('x');   // only one actual byte
  ByteReader R(W.buffer().data(), W.buffer().size());
  std::string S;
  EXPECT_FALSE(decodeString(R, S));
}

TEST(Payloads, StatsAndCountersRoundTrip) {
  StatsSnapshot S;
  S.Epoch = 4;
  S.FullRemerges = 1;
  S.HostReelections = 2;
  S.QuarantinedCount = 3;
  S.Attempts = 123;
  S.CommittedMerges = 45;
  S.CrossModuleMerges = 6;
  S.SizeBefore = 7000;
  S.SizeAfter = 5600;
  S.CacheHits = 8;
  S.HashClusterCommits = 9;
  S.DegradedToFullRemerge = true;
  S.ReclusteredFull = true;
  S.ModuleDigest = 0x123456789abcdef0ULL;
  DaemonCounters C;
  C.Connections = 11;
  C.RequestsServed = 222;
  C.DeltasApplied = 33;
  C.TokenReplays = 4;
  C.HealedBatches = 5;
  C.DeadlineExpirations = 6;
  C.ProtocolFaultsInjected = 77;
  C.RequestErrors = 8;

  QueryStatsResponse Resp;
  Resp.Stats = S;
  Resp.Daemon = C;
  Resp.Prints = "define i32 @f()\n";
  ByteWriter W;
  Resp.encode(W);
  QueryStatsResponse Back;
  ByteReader R(W.buffer().data(), W.buffer().size());
  ASSERT_TRUE(Back.decode(R));
  EXPECT_TRUE(R.atEnd());
  EXPECT_EQ(Back.Stats.Epoch, S.Epoch);
  EXPECT_EQ(Back.Stats.Attempts, S.Attempts);
  EXPECT_EQ(Back.Stats.ModuleDigest, S.ModuleDigest);
  EXPECT_EQ(Back.Stats.DegradedToFullRemerge, S.DegradedToFullRemerge);
  EXPECT_EQ(Back.Stats.ReclusteredFull, S.ReclusteredFull);
  EXPECT_FALSE(Back.Stats.HostReelected);
  EXPECT_EQ(Back.Daemon.ProtocolFaultsInjected, C.ProtocolFaultsInjected);
  EXPECT_EQ(Back.Daemon.HealedBatches, C.HealedBatches);
  EXPECT_EQ(Back.Prints, Resp.Prints);
}

TEST(Payloads, RequestHeaderRoundTrips) {
  ByteWriter W;
  encodeRequestHeader(W, {RequestKind::ApplyDelta, 0x1122334455667788ULL,
                          2500});
  WireRequestHeader H;
  ByteReader R(W.buffer().data(), W.buffer().size());
  ASSERT_TRUE(decodeRequestHeader(R, H));
  EXPECT_EQ(H.Kind, RequestKind::ApplyDelta);
  EXPECT_EQ(H.RequestId, 0x1122334455667788ULL);
  EXPECT_EQ(H.DeadlineMillis, 2500u);
}

//===----------------------------------------------------------------------===//
// Version-mismatch handshake & error bodies
//===----------------------------------------------------------------------===//

TEST(Errors, VersionMismatchBodyCarriesTheDaemonVersion) {
  WireRequestHeader Req{RequestKind::RegisterModules, 42, 0};
  std::vector<uint8_t> Payload = buildErrorPayload(
      Req, StatusCode::VersionMismatch, "speak version 3", 3);
  ByteReader R(Payload.data(), Payload.size());
  WireResponseHeader Hdr;
  ASSERT_TRUE(decodeResponseHeader(R, Hdr));
  EXPECT_EQ(Hdr.Kind, RequestKind::RegisterModules);
  EXPECT_EQ(Hdr.RequestId, 42u);
  EXPECT_EQ(Hdr.Status, StatusCode::VersionMismatch);
  uint32_t Version = 0;
  std::string Message;
  ASSERT_TRUE(decodeErrorBody(R, Hdr.Status, Version, Message));
  EXPECT_EQ(Version, 3u);
  EXPECT_EQ(Message, "speak version 3");
}

TEST(Errors, PlainErrorBodyIsJustTheMessage) {
  WireRequestHeader Req{RequestKind::ApplyDelta, 7, 0};
  std::vector<uint8_t> Payload =
      buildErrorPayload(Req, StatusCode::NoBatch, "BeginDelta first");
  ByteReader R(Payload.data(), Payload.size());
  WireResponseHeader Hdr;
  ASSERT_TRUE(decodeResponseHeader(R, Hdr));
  EXPECT_EQ(Hdr.Status, StatusCode::NoBatch);
  uint32_t Version = 0;
  std::string Message;
  ASSERT_TRUE(decodeErrorBody(R, Hdr.Status, Version, Message));
  EXPECT_EQ(Version, ProtocolVersion);
  EXPECT_EQ(Message, "BeginDelta first");
}

TEST(Errors, EveryEnumeratorHasAName) {
  for (int K = 1; K <= 6; ++K)
    EXPECT_STRNE(requestKindName(static_cast<RequestKind>(K)), "Unknown");
  for (int S = 0; S <= 10; ++S)
    EXPECT_STRNE(statusCodeName(static_cast<StatusCode>(S)), "Unknown");
}

//===----------------------------------------------------------------------===//
// Retry-token idempotency
//===----------------------------------------------------------------------===//

TEST(TokenCache, FirstResponseWinsAndReplays) {
  ApplyTokenCache Cache(8);
  EXPECT_EQ(Cache.lookup(1), nullptr);
  Cache.remember(1, {0xAA, 0xBB});
  ASSERT_NE(Cache.lookup(1), nullptr);
  EXPECT_EQ(*Cache.lookup(1), (std::vector<uint8_t>{0xAA, 0xBB}));
  // A second remember for the same token must not overwrite: the first
  // response is the one the client may already have acted on.
  Cache.remember(1, {0xCC});
  EXPECT_EQ(*Cache.lookup(1), (std::vector<uint8_t>{0xAA, 0xBB}));
  EXPECT_EQ(Cache.size(), 1u);
}

TEST(TokenCache, EvictsOldestFirstAtTheBound) {
  ApplyTokenCache Cache(3);
  Cache.remember(1, {1});
  Cache.remember(2, {2});
  Cache.remember(3, {3});
  EXPECT_EQ(Cache.size(), 3u);
  Cache.remember(4, {4});
  EXPECT_EQ(Cache.size(), 3u);
  EXPECT_EQ(Cache.lookup(1), nullptr) << "oldest evicted";
  ASSERT_NE(Cache.lookup(2), nullptr);
  ASSERT_NE(Cache.lookup(4), nullptr);
  EXPECT_EQ(*Cache.lookup(4), std::vector<uint8_t>{4});
}

} // namespace
