//===- tests/selection_test.cpp - Profit-guided selection tests ---------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
// The selection layer's contract has four legs:
//
//  1. Regression anchor: SelectionStrategy::Distance (the default) is the
//     paper's scheme verbatim and must stay byte-identical to the PR 3
//     driver — pinned here by A/B-ing it against the untouched
//     brute-force ranking path on benchmark-suite profiles, and against
//     the cross-module session route.
//  2. Determinism: Profit and Adaptive commit identical merges with
//     identical records and module bytes at every thread count, and are
//     ranking-strategy-agnostic (CandidateIndex == BruteForce).
//  3. The ProfitModel: the estimate is monotone (decreasing in distance,
//     increasing in overlap at fixed total size), tracks actual
//     MergeAttempt::profit() ordering on representative pairs, and its
//     online calibration moves toward observations under clamps.
//  4. Adaptive bounds: the exploration threshold stays within
//     [t, t + AdaptiveRange] and converges back to t on pools where the
//     top-ranked candidate keeps winning; speculation-skip accounting
//     stays separate from CommitConflicts.
//
//===----------------------------------------------------------------------===//

#include "codesize/SizeModel.h"
#include "interp/Interpreter.h"
#include "ir/IRBuilder.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "merge/FunctionMerger.h"
#include "merge/MergeDriver.h"
#include "workloads/Suites.h"
#include <gtest/gtest.h>

using namespace salssa;

namespace {

/// Mirrors MergePipeline's adaptation ceiling (CurrentT <= t + 4); keep
/// in sync with MergePipeline::AdaptiveRange.
constexpr unsigned AdaptiveRange = 4;

BenchmarkProfile cloneHeavyProfile(uint64_t Seed, unsigned NumFns = 32) {
  BenchmarkProfile P;
  P.Name = "seltest";
  P.NumFunctions = NumFns;
  P.MinSize = 6;
  P.AvgSize = 45;
  P.MaxSize = 200;
  P.CloneFamilyPercent = 50;
  P.MaxFamily = 5;
  P.FamilyDriftPercent = 10;
  P.LoopPercent = 50;
  P.Seed = Seed;
  return P;
}

/// Everything observable about one driver run (timings excluded).
struct RunOutcome {
  unsigned Attempts = 0;
  unsigned CommittedMerges = 0;
  std::vector<std::tuple<std::string, std::string, bool>> Records;
  uint64_t ModuleSize = 0;
  std::string ModulePrint;
  bool VerifierOk = false;
  MergeDriverStats Stats;
};

RunOutcome runDriver(const BenchmarkProfile &P, MergeDriverOptions DO) {
  Context Ctx;
  std::unique_ptr<Module> M = buildBenchmarkModule(P, Ctx);
  MergeDriverStats S = runFunctionMerging(*M, DO);
  RunOutcome O;
  O.Attempts = S.Attempts;
  O.CommittedMerges = S.CommittedMerges;
  for (const MergeRecord &R : S.Records)
    O.Records.emplace_back(R.Name1, R.Name2, R.Committed);
  O.ModuleSize = estimateModuleSize(*M, TargetArch::X86Like);
  O.ModulePrint = printModule(*M);
  O.VerifierOk = verifyModule(*M).ok();
  O.Stats = std::move(S);
  return O;
}

void expectSameOutcome(const RunOutcome &Got, const RunOutcome &Want,
                       const std::string &Tag) {
  EXPECT_TRUE(Got.VerifierOk) << Tag;
  EXPECT_EQ(Got.CommittedMerges, Want.CommittedMerges) << Tag;
  EXPECT_EQ(Got.Attempts, Want.Attempts) << Tag;
  EXPECT_EQ(Got.ModuleSize, Want.ModuleSize) << Tag;
  ASSERT_EQ(Got.Records.size(), Want.Records.size()) << Tag;
  for (size_t I = 0; I < Got.Records.size(); ++I)
    EXPECT_EQ(Got.Records[I], Want.Records[I]) << Tag << " record " << I;
  EXPECT_EQ(Got.ModulePrint, Want.ModulePrint) << Tag;
}

//===----------------------------------------------------------------------===//
// Leg 1 — the Distance path is the PR 3 driver, bit for bit
//===----------------------------------------------------------------------===//

TEST(SelectionTest, DistanceIsTheDefault) {
  // New selection machinery must be opt-in: a default-constructed
  // options struct runs the paper's scheme.
  MergeDriverOptions DO;
  EXPECT_EQ(DO.Selection, SelectionStrategy::Distance);
}

TEST(SelectionTest, DistanceStaysByteIdenticalOnBenchmarkSuites) {
  // The regression A/B: Selection=Distance over the CandidateIndex must
  // reproduce the brute-force ranking path — which this PR did not
  // touch beyond pass-through parameters — byte for byte on benchmark
  // suites, exactly the PR 1-3 contract. Any accidental change to the
  // Distance path (widening, annotation, re-ranking leaking in) breaks
  // the print comparison immediately.
  std::vector<BenchmarkProfile> Suites = mibenchProfiles();
  unsigned Checked = 0;
  for (const BenchmarkProfile &P : Suites) {
    if (P.NumFunctions > 32) // keep the matrix CI-sized
      continue;
    MergeDriverOptions DO;
    DO.Technique = MergeTechnique::SalSSA;
    DO.ExplorationThreshold = 2;
    DO.Selection = SelectionStrategy::Distance;
    DO.Ranking = RankingStrategy::CandidateIndex;
    RunOutcome Index = runDriver(P, DO);
    DO.Ranking = RankingStrategy::BruteForce;
    RunOutcome Brute = runDriver(P, DO);
    expectSameOutcome(Index, Brute, "suite " + P.Name);
    ++Checked;
  }
  EXPECT_GE(Checked, 8u) << "suite filter got too aggressive";
}

TEST(SelectionTest, DistanceMatchesCrossModuleRouteAndThreads) {
  // The other two PR 3 anchors, under the new default: the one-module
  // session route and the thread matrix must still replay the serial
  // direct driver exactly.
  BenchmarkProfile P = cloneHeavyProfile(29);
  MergeDriverOptions DO;
  DO.ExplorationThreshold = 3;
  RunOutcome Serial = runDriver(P, DO);
  ASSERT_TRUE(Serial.VerifierOk);
  EXPECT_GT(Serial.CommittedMerges, 0u);
  {
    MergeDriverOptions Route = DO;
    Route.CrossModule = true;
    expectSameOutcome(runDriver(P, Route), Serial, "session route");
  }
  for (unsigned NT : {2u, 8u}) {
    MergeDriverOptions TDO = DO;
    TDO.NumThreads = NT;
    expectSameOutcome(runDriver(P, TDO), Serial,
                      "threads=" + std::to_string(NT));
  }
}

//===----------------------------------------------------------------------===//
// Leg 2 — Profit/Adaptive determinism
//===----------------------------------------------------------------------===//

class SelectionDeterminismTest
    : public ::testing::TestWithParam<SelectionStrategy> {};

TEST_P(SelectionDeterminismTest, ThreadCountsProduceIdenticalMerges) {
  // The selection layer only ever advances at the serial commit stage,
  // so the pipeline's determinism contract must hold unchanged: same
  // merges, records, names and bytes at every thread count — including
  // with the speculation-skip and adaptive-window machinery engaged.
  BenchmarkProfile P = cloneHeavyProfile(61);
  MergeDriverOptions DO;
  DO.ExplorationThreshold = 2;
  DO.Selection = GetParam();
  RunOutcome Serial = runDriver(P, DO);
  ASSERT_TRUE(Serial.VerifierOk);
  EXPECT_GT(Serial.CommittedMerges, 0u);
  for (unsigned NT : {2u, 4u, 8u}) {
    MergeDriverOptions TDO = DO;
    TDO.NumThreads = NT;
    expectSameOutcome(runDriver(P, TDO), Serial,
                      "threads=" + std::to_string(NT));
  }
}

TEST_P(SelectionDeterminismTest, RankingStrategiesAgree) {
  // The bounded extension and profit annotation must be bit-compatible
  // between CandidateIndex and the brute-force reference, like the
  // plain top-t query always was.
  BenchmarkProfile P = cloneHeavyProfile(67, 28);
  MergeDriverOptions DO;
  DO.ExplorationThreshold = 2;
  DO.Selection = GetParam();
  DO.Ranking = RankingStrategy::CandidateIndex;
  RunOutcome Index = runDriver(P, DO);
  DO.Ranking = RankingStrategy::BruteForce;
  RunOutcome Brute = runDriver(P, DO);
  expectSameOutcome(Index, Brute, "index-vs-brute");
}

INSTANTIATE_TEST_SUITE_P(Modes, SelectionDeterminismTest,
                         ::testing::Values(SelectionStrategy::Profit,
                                           SelectionStrategy::Adaptive),
                         [](const auto &Info) {
                           return Info.param == SelectionStrategy::Profit
                                      ? "Profit"
                                      : "Adaptive";
                         });

TEST(SelectionTest, CommitWindowDoesNotChangeAdaptiveOutcomes) {
  // The adaptive window (engaged when CommitWindow == 0) may only ever
  // change speculation waste; pinning the window must not change what
  // gets committed.
  BenchmarkProfile P = cloneHeavyProfile(71);
  MergeDriverOptions DO;
  DO.ExplorationThreshold = 2;
  DO.Selection = SelectionStrategy::Adaptive;
  RunOutcome Serial = runDriver(P, DO);
  for (unsigned Window : {1u, 16u, 128u}) {
    MergeDriverOptions WDO = DO;
    WDO.NumThreads = 4;
    WDO.CommitWindow = Window;
    expectSameOutcome(runDriver(P, WDO), Serial,
                      "window=" + std::to_string(Window));
  }
}

//===----------------------------------------------------------------------===//
// Leg 3 — the ProfitModel
//===----------------------------------------------------------------------===//

Fingerprint syntheticFingerprint(uint32_t Size) {
  // estimate() reads only Size (and the distance argument), so a bare
  // size-only fingerprint exercises it fully.
  Fingerprint FP;
  FP.Size = Size;
  return FP;
}

TEST(ProfitModelTest, EstimateIsMonotoneInDistanceAndOverlap) {
  const ProfitModel M = ProfitModel::forArch(TargetArch::X86Like);
  Fingerprint A = syntheticFingerprint(60);
  Fingerprint B = syntheticFingerprint(60);
  // At fixed |A| + |B|, growing distance shrinks overlap one-for-one:
  // both monotonicity claims are the same sweep.
  int64_t Prev = M.estimate(A, B, 0);
  for (uint64_t D = 2; D <= 120; D += 2) {
    int64_t Cur = M.estimate(A, B, D);
    EXPECT_LT(Cur, Prev) << "distance " << D;
    Prev = Cur;
  }
  // Exact-clone estimate must be clearly profitable; disjoint must not.
  EXPECT_GT(M.estimate(A, B, 0), 0);
  EXPECT_LT(M.estimate(A, B, 120), 0);
  // Overlap helper: the histogram-intersection identity.
  EXPECT_EQ(ProfitModel::overlap(A, B, 0), 60u);
  EXPECT_EQ(ProfitModel::overlap(A, B, 40), 40u);
  EXPECT_EQ(ProfitModel::overlap(A, B, 120), 0u);
  EXPECT_EQ(ProfitModel::overlap(A, B, 500), 0u); // saturates at disjoint
}

TEST(ProfitModelTest, EstimateTracksActualAttemptProfit) {
  // Representative pairs, most to least similar: an exact clone, a
  // drifted clone, and an unrelated function. The (uncalibrated) model
  // estimate must order them exactly like the executed attempts' actual
  // profit — this is the property that makes profit re-ranking mean
  // anything.
  Context Ctx;
  Module M("estimate", Ctx);
  RNG Rng(97);
  WorkloadEnvironment Env(M, Rng);
  RandomFunctionOptions FO;
  FO.TargetSize = 60;
  Function *Base = generateRandomFunction(Env, Rng, "base", FO);
  DriftOptions Exact;
  Exact.MutatePercent = 0;
  Exact.InsertPercent = 0;
  Function *Clone = cloneWithDrift(Base, "clone", Env, Rng, Exact);
  DriftOptions Drift;
  Drift.MutatePercent = 20;
  Drift.InsertPercent = 6;
  Function *Drifted = cloneWithDrift(Base, "drifted", Env, Rng, Drift);
  // An unrelated function with the same return type as Base (retry
  // seeds until the signature matches; generation is deterministic).
  Function *Other = nullptr;
  for (uint64_t Salt = 0; !Other; ++Salt) {
    RNG ORng = Rng.fork(Salt);
    Function *Cand = generateRandomFunction(
        Env, ORng, "other" + std::to_string(Salt), FO);
    if (Cand->getReturnType() == Base->getReturnType())
      Other = Cand;
    else
      M.eraseFunction(Cand);
  }

  const ProfitModel PM = ProfitModel::forArch(TargetArch::X86Like);
  const Fingerprint FB = Fingerprint::compute(*Base);
  MergeCodeGenOptions CG =
      MergeCodeGenOptions::forTechnique(MergeTechnique::SalSSA);
  auto evaluate = [&](Function *F2) {
    Fingerprint FP2 = Fingerprint::compute(*F2);
    uint64_t D = fingerprintDistance(FB, FP2);
    int64_t Est = PM.estimate(FB, FP2, D);
    MergeAttempt A = attemptMerge(
        *Base, *F2, CG, TargetArch::X86Like,
        estimateFunctionSize(*Base, TargetArch::X86Like),
        estimateFunctionSize(*F2, TargetArch::X86Like));
    EXPECT_TRUE(A.Valid);
    int Actual = A.profit();
    discardMerge(A);
    return std::make_pair(Est, Actual);
  };
  auto [EstClone, ActClone] = evaluate(Clone);
  auto [EstDrift, ActDrift] = evaluate(Drifted);
  auto [EstOther, ActOther] = evaluate(Other);
  // Actual profits must be ordered as constructed...
  EXPECT_GT(ActClone, ActDrift);
  EXPECT_GT(ActDrift, ActOther);
  // ...and the estimates must agree with that ordering, including a
  // clearly profitable exact clone. (No sign claim for the unrelated
  // pair: independently generated same-size functions share much of
  // their opcode histogram, so its estimate legitimately sits near
  // zero — the *ordering* is the contract that makes re-ranking work.)
  EXPECT_GT(EstClone, EstDrift);
  EXPECT_GT(EstDrift, EstOther);
  EXPECT_GT(EstClone, 0);
}

TEST(ProfitModelTest, CalibrationMovesTowardObservationsUnderClamps) {
  ProfitModel M = ProfitModel::forArch(TargetArch::X86Like);
  const double Seed = M.BytesPerOverlap;
  // Attempts that realize more bytes per overlap than the seed pull the
  // EMA up...
  M.observe(/*Overlap=*/100, /*Distance=*/0, /*ActualProfit=*/800);
  EXPECT_GT(M.BytesPerOverlap, Seed);
  // ...and pathological observations saturate at the clamp instead of
  // capsizing the model.
  ProfitModel Low = ProfitModel::forArch(TargetArch::X86Like);
  for (int I = 0; I < 1000; ++I)
    Low.observe(10, 0, -100000);
  EXPECT_GE(Low.BytesPerOverlap, ProfitModel::MinBytesPerOverlap);
  ProfitModel High = ProfitModel::forArch(TargetArch::X86Like);
  for (int I = 0; I < 1000; ++I)
    High.observe(10, 0, 100000);
  EXPECT_LE(High.BytesPerOverlap, ProfitModel::MaxBytesPerOverlap);
  // Zero overlap is a no-op, never a division by zero.
  ProfitModel Z = ProfitModel::forArch(TargetArch::X86Like);
  Z.observe(0, 50, 10);
  EXPECT_EQ(Z.BytesPerOverlap, Seed);
}

//===----------------------------------------------------------------------===//
// Leg 4 — adaptive threshold bounds and waste accounting
//===----------------------------------------------------------------------===//

TEST(SelectionTest, AdaptiveThresholdStaysWithinConvergenceBounds) {
  for (unsigned BaseT : {1u, 2u, 3u}) {
    BenchmarkProfile P = cloneHeavyProfile(83, 40);
    MergeDriverOptions DO;
    DO.ExplorationThreshold = BaseT;
    DO.Selection = SelectionStrategy::Adaptive;
    RunOutcome O = runDriver(P, DO);
    EXPECT_GE(O.Stats.AdaptiveThresholdMax, BaseT) << "base " << BaseT;
    EXPECT_LE(O.Stats.AdaptiveThresholdMax, BaseT + AdaptiveRange)
        << "base " << BaseT;
    EXPECT_GE(O.Stats.AdaptiveThresholdFinal, BaseT) << "base " << BaseT;
    EXPECT_LE(O.Stats.AdaptiveThresholdFinal, O.Stats.AdaptiveThresholdMax)
        << "base " << BaseT;
  }
}

TEST(SelectionTest, AdaptiveConvergesToBaseOnTopHeavyPools) {
  // Exact-clone families: the nearest candidate is a zero-distance
  // clone, so the top pick wins every entry, every vote is a shrink
  // vote, and t must never leave the configured base. Base 1 is the
  // sharp case: a slate of one is simultaneously the top pick and the
  // slate tail, and counting it as a deep win would ratchet t up on
  // exactly the pools that need no exploration.
  for (unsigned BaseT : {1u, 2u}) {
    BenchmarkProfile P = cloneHeavyProfile(89, 36);
    P.CloneFamilyPercent = 100;
    P.FamilyDriftPercent = 0;
    MergeDriverOptions DO;
    DO.ExplorationThreshold = BaseT;
    DO.Selection = SelectionStrategy::Adaptive;
    RunOutcome O = runDriver(P, DO);
    EXPECT_GT(O.CommittedMerges, 0u) << "base " << BaseT;
    EXPECT_EQ(O.Stats.AdaptiveThresholdMax, BaseT) << "base " << BaseT;
    EXPECT_EQ(O.Stats.AdaptiveThresholdFinal, BaseT) << "base " << BaseT;
  }
}

TEST(SelectionTest, DryEntriesDoNotBreakAdaptiveDeterminism) {
  // Entries with no same-return-type partner ("dry" entries) never
  // reach the commit stage in parallel rounds (the snapshot loop drops
  // empty slates), so they must carry no adaptive signal in the serial
  // path either — otherwise the adaptive t trajectory, and with it the
  // attempted pairs and records, would differ by thread count. The
  // benchmark generator only emits i32 returns, so plant the dry
  // entries by hand: two mergeable functions whose return types are
  // unique in the module.
  for (uint64_t Seed : {3ull, 7ull, 13ull}) {
    BenchmarkProfile P = cloneHeavyProfile(Seed, 28);
    auto runWithDryEntries = [&](unsigned NumThreads) {
      Context Ctx;
      std::unique_ptr<Module> M = buildBenchmarkModule(P, Ctx);
      for (Type *RetTy : {Ctx.int64Ty(), Ctx.doubleTy()}) {
        Function *F = M->createFunction(
            "dry" + std::to_string(RetTy == Ctx.int64Ty() ? 1 : 2),
            Ctx.types().getFunctionTy(RetTy, {Ctx.int32Ty()}));
        IRBuilder B(Ctx, F->createBlock("entry"));
        Value *V = B.createAdd(F->getArg(0), Ctx.getInt32(7));
        for (int I = 0; I < 10; ++I)
          V = B.createXor(B.createAdd(V, Ctx.getInt32(I)), F->getArg(0));
        if (RetTy == Ctx.int64Ty())
          B.createRet(B.createSExt(V, RetTy));
        else
          B.createRet(B.createCast(ValueKind::SIToFP, V, RetTy));
      }
      EXPECT_TRUE(verifyModule(*M).ok()) << verifyModule(*M).str();
      MergeDriverOptions DO;
      DO.ExplorationThreshold = 1;
      DO.Selection = SelectionStrategy::Adaptive;
      DO.NumThreads = NumThreads;
      DO.CommitWindow = NumThreads > 1 ? 4 : 0; // tight windows: many rounds
      MergeDriverStats S = runFunctionMerging(*M, DO);
      RunOutcome O;
      O.Attempts = S.Attempts;
      O.CommittedMerges = S.CommittedMerges;
      for (const MergeRecord &R : S.Records)
        O.Records.emplace_back(R.Name1, R.Name2, R.Committed);
      O.ModuleSize = estimateModuleSize(*M, TargetArch::X86Like);
      O.ModulePrint = printModule(*M);
      O.VerifierOk = verifyModule(*M).ok();
      O.Stats = std::move(S);
      return O;
    };
    RunOutcome Serial = runWithDryEntries(1);
    ASSERT_TRUE(Serial.VerifierOk);
    for (unsigned NT : {2u, 4u}) {
      RunOutcome Parallel = runWithDryEntries(NT);
      expectSameOutcome(Parallel, Serial,
                        "dry-entry seed " + std::to_string(Seed) +
                            " threads=" + std::to_string(NT));
      EXPECT_EQ(Parallel.Stats.AdaptiveThresholdMax,
                Serial.Stats.AdaptiveThresholdMax);
      EXPECT_EQ(Parallel.Stats.AdaptiveThresholdFinal,
                Serial.Stats.AdaptiveThresholdFinal);
    }
  }
}

TEST(SelectionTest, NonAdaptiveModesEchoTheConfiguredThreshold) {
  BenchmarkProfile P = cloneHeavyProfile(91, 20);
  for (SelectionStrategy Sel :
       {SelectionStrategy::Distance, SelectionStrategy::Profit}) {
    MergeDriverOptions DO;
    DO.ExplorationThreshold = 3;
    DO.Selection = Sel;
    RunOutcome O = runDriver(P, DO);
    EXPECT_EQ(O.Stats.AdaptiveThresholdMax, 3u);
    EXPECT_EQ(O.Stats.AdaptiveThresholdFinal, 3u);
  }
}

TEST(SelectionTest, SkippedSpeculationsAreCountedSeparately) {
  // Profit-guided parallel runs skip speculating for entries whose top
  // candidate an earlier window entry already claimed. The prediction
  // must be counted in SpeculationsSkipped — never conflated into
  // CommitConflicts — and must not exist at all in Distance mode (whose
  // stats must stay exactly PR 3's).
  BenchmarkProfile P = cloneHeavyProfile(93, 40);
  MergeDriverOptions DO;
  DO.ExplorationThreshold = 2;
  DO.NumThreads = 4;

  DO.Selection = SelectionStrategy::Distance;
  RunOutcome Distance = runDriver(P, DO);
  EXPECT_EQ(Distance.Stats.SpeculationsSkipped, 0u);

  DO.Selection = SelectionStrategy::Profit;
  RunOutcome Profit = runDriver(P, DO);
  // The clone-heavy pool guarantees claimed top candidates in the first
  // window (family members rank each other first).
  EXPECT_GT(Profit.Stats.SpeculationsSkipped, 0u);
  // Skipped entries run inline without Spec bookkeeping, so the skip
  // count is not double-reported as conflicts: every conflict still
  // corresponds to an entry that actually speculated.
  EXPECT_LE(Profit.Stats.CommitConflicts, Profit.Stats.SpeculativeAttempts);

  // And the serial run of the same configuration has no speculation at
  // all to skip.
  DO.NumThreads = 1;
  RunOutcome Serial = runDriver(P, DO);
  EXPECT_EQ(Serial.Stats.SpeculationsSkipped, 0u);
  expectSameOutcome(Profit, Serial, "skip-speculation parallel vs serial");
}

} // namespace
