//===- tests/edge_cases_test.cpp - Cross-cutting edge cases -------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
// Edge cases cutting across modules: switch merging, degenerate merge
// inputs (single-block, no-match, void returns), interpreter corner
// semantics, and simplification interactions discovered during
// development.
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"
#include "ir/IRBuilder.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "merge/FunctionMerger.h"
#include "transforms/Cloning.h"
#include "transforms/Simplify.h"
#include <gtest/gtest.h>

using namespace salssa;

namespace {

class EdgeCaseTest : public ::testing::Test {
protected:
  void SetUp() override { M = std::make_unique<Module>("m", Ctx); }

  MergeAttempt mergeSalSSA(Function *F1, Function *F2) {
    return attemptMerge(
        *F1, *F2, MergeCodeGenOptions::forTechnique(MergeTechnique::SalSSA),
        TargetArch::X86Like, 0, 0);
  }

  Context Ctx;
  std::unique_ptr<Module> M;
};

TEST_F(EdgeCaseTest, MergeSwitchesWithSameCasesDifferentDests) {
  Type *I32 = Ctx.int32Ty();
  auto Build = [&](const std::string &Name, int A, int B) {
    Function *F = M->createFunction(Name, Ctx.types().getFunctionTy(I32, {I32}));
    BasicBlock *Entry = F->createBlock("entry");
    BasicBlock *C1 = F->createBlock("c1");
    BasicBlock *C2 = F->createBlock("c2");
    BasicBlock *Def = F->createBlock("def");
    IRBuilder Bld(Ctx, Entry);
    SwitchInst *SW = Bld.createSwitch(F->getArg(0), Def);
    SW->addCase(Ctx.getInt32(1), C1);
    SW->addCase(Ctx.getInt32(2), C2);
    Bld.setInsertPoint(C1);
    Bld.createRet(Ctx.getInt32(static_cast<uint64_t>(A)));
    Bld.setInsertPoint(C2);
    Bld.createRet(Ctx.getInt32(static_cast<uint64_t>(B)));
    Bld.setInsertPoint(Def);
    Bld.createRet(Ctx.getInt32(0));
    return F;
  };
  Function *F1 = Build("swa", 10, 20);
  Function *F2 = Build("swb", 30, 40);
  MergeAttempt A = mergeSalSSA(F1, F2);
  ASSERT_TRUE(A.Valid);
  ASSERT_TRUE(verifyFunction(*A.Gen.Merged).ok())
      << verifyFunction(*A.Gen.Merged).str();
  commitMerge(A, Ctx);
  Interpreter I(*M);
  for (uint64_t In : {0ull, 1ull, 2ull, 7ull}) {
    ExecResult R1 = I.run(F1, {RuntimeValue::makeInt(In)});
    ExecResult R2 = I.run(F2, {RuntimeValue::makeInt(In)});
    ASSERT_TRUE(R1.ok() && R2.ok());
    uint64_t E1 = In == 1 ? 10 : In == 2 ? 20 : 0;
    uint64_t E2 = In == 1 ? 30 : In == 2 ? 40 : 0;
    EXPECT_EQ(R1.Return.Bits, E1) << In;
    EXPECT_EQ(R2.Return.Bits, E2) << In;
  }
}

TEST_F(EdgeCaseTest, MergeVoidFunctions) {
  Type *I32 = Ctx.int32Ty();
  GlobalVariable *G = M->createGlobal("g", I32, 2);
  auto Build = [&](const std::string &Name, int Slot) {
    Function *F =
        M->createFunction(Name, Ctx.types().getFunctionTy(Ctx.voidTy(), {I32}));
    IRBuilder Bld(Ctx, F->createBlock("entry"));
    Value *P = Bld.createGep(I32, G, Ctx.getInt32(static_cast<uint64_t>(Slot)));
    Bld.createStore(F->getArg(0), P);
    Bld.createRetVoid();
    return F;
  };
  Function *F1 = Build("va", 0);
  Function *F2 = Build("vb", 1);
  MergeAttempt A = mergeSalSSA(F1, F2);
  ASSERT_TRUE(A.Valid);
  commitMerge(A, Ctx);
  ASSERT_TRUE(verifyModule(*M).ok()) << verifyModule(*M).str();
  Interpreter I(*M);
  ExecResult R1 = I.run(F1, {RuntimeValue::makeInt(5)});
  uint64_t H1 = R1.GlobalMemoryHash;
  I.resetMemory();
  ExecResult R2 = I.run(F2, {RuntimeValue::makeInt(5)});
  EXPECT_TRUE(R1.ok() && R2.ok());
  EXPECT_NE(H1, R2.GlobalMemoryHash); // different slots were written
}

TEST_F(EdgeCaseTest, MergeCompletelyDissimilarFunctionsStillCorrect) {
  Type *I32 = Ctx.int32Ty();
  Function *F1 = M->createFunction("dis.a", Ctx.types().getFunctionTy(I32, {I32}));
  {
    IRBuilder B(Ctx, F1->createBlock("entry"));
    B.createRet(B.createMul(F1->getArg(0), Ctx.getInt32(3)));
  }
  Function *F2 = M->createFunction("dis.b", Ctx.types().getFunctionTy(I32, {I32}));
  {
    BasicBlock *E = F2->createBlock("entry");
    BasicBlock *T = F2->createBlock("t");
    BasicBlock *X = F2->createBlock("x");
    IRBuilder B(Ctx, E);
    Value *C = B.createICmp(CmpPredicate::SGT, F2->getArg(0), Ctx.getInt32(10));
    B.createCondBr(C, T, X);
    B.setInsertPoint(T);
    B.createRet(Ctx.getInt32(99));
    B.setInsertPoint(X);
    B.createRet(B.createSub(Ctx.getInt32(0), F2->getArg(0)));
  }
  MergeAttempt A = mergeSalSSA(F1, F2);
  ASSERT_TRUE(A.Valid);
  // Almost nothing aligns, so the merge is unprofitable -- but the
  // generated function must still be correct.
  ASSERT_TRUE(verifyFunction(*A.Gen.Merged).ok());
  commitMerge(A, Ctx);
  Interpreter I(*M);
  EXPECT_EQ(I.run(F1, {RuntimeValue::makeInt(7)}).Return.Bits, 21u);
  EXPECT_EQ(I.run(F2, {RuntimeValue::makeInt(20)}).Return.Bits, 99u);
  EXPECT_EQ(static_cast<int32_t>(
                I.run(F2, {RuntimeValue::makeInt(4)}).Return.Bits),
            -4);
}

TEST_F(EdgeCaseTest, MergeSingleInstructionFunctions) {
  Type *I32 = Ctx.int32Ty();
  auto Build = [&](const std::string &Name) {
    Function *F = M->createFunction(Name, Ctx.types().getFunctionTy(I32, {I32}));
    IRBuilder B(Ctx, F->createBlock("entry"));
    B.createRet(F->getArg(0));
    return F;
  };
  Function *F1 = Build("id.a");
  Function *F2 = Build("id.b");
  MergeAttempt A = mergeSalSSA(F1, F2);
  ASSERT_TRUE(A.Valid);
  EXPECT_FALSE(A.Stats.Profitable); // two thunks cost more than one ret
  discardMerge(A);
  EXPECT_EQ(M->getFunction("id.a"), F1); // inputs untouched
  EXPECT_TRUE(verifyModule(*M).ok());
}

TEST_F(EdgeCaseTest, RepeatedMergingOfMergedFunctions) {
  // Merge (A,B) -> M1, then (M1, C): the remerge path of the driver.
  Type *I32 = Ctx.int32Ty();
  Function *Lib =
      M->createFunction("lib", Ctx.types().getFunctionTy(I32, {I32}));
  auto Build = [&](const std::string &Name, int K) {
    Function *F = M->createFunction(Name, Ctx.types().getFunctionTy(I32, {I32}));
    IRBuilder B(Ctx, F->createBlock("entry"));
    Value *V = B.createAdd(F->getArg(0), Ctx.getInt32(static_cast<uint64_t>(K)));
    for (int J = 0; J < 5; ++J)
      V = B.createXor(B.createMul(V, Ctx.getInt32(3)), F->getArg(0));
    B.createRet(B.createCall(Lib, {V}));
    return F;
  };
  Function *A = Build("ma", 1);
  Function *B2 = Build("mb", 2);
  Function *C = Build("mc", 3);
  Function *RefC = cloneFunction(C, "mc.ref");

  MergeAttempt M1 = mergeSalSSA(A, B2);
  ASSERT_TRUE(M1.Valid);
  commitMerge(M1, Ctx);
  MergeAttempt M2 = mergeSalSSA(M1.Gen.Merged, C);
  ASSERT_TRUE(M2.Valid);
  ASSERT_TRUE(verifyFunction(*M2.Gen.Merged).ok())
      << verifyFunction(*M2.Gen.Merged).str();
  commitMerge(M2, Ctx);
  ASSERT_TRUE(verifyModule(*M).ok()) << verifyModule(*M).str();

  Interpreter I(*M);
  for (uint64_t In : {0ull, 9ull}) {
    I.resetMemory();
    ExecResult R1 = I.run(RefC, {RuntimeValue::makeInt(In)});
    I.resetMemory();
    ExecResult R2 = I.run(C, {RuntimeValue::makeInt(In)});
    EXPECT_TRUE(behaviourallyEqual(R1, R2)) << In;
  }
}

TEST_F(EdgeCaseTest, InterpreterGepNegativeIndex) {
  Type *I32 = Ctx.int32Ty();
  Function *F = M->createFunction("g", Ctx.types().getFunctionTy(I32, {}));
  IRBuilder B(Ctx, F->createBlock("entry"));
  AllocaInst *A = B.createAlloca(I32, 4);
  Value *P3 = B.createGep(I32, A, Ctx.getInt32(3));
  B.createStore(Ctx.getInt32(77), P3);
  // Walk back from element 3 to element 3 via +4 then -1.
  Value *P4 = B.createGep(I32, P3, Ctx.getInt32(1));
  Value *Back = B.createGep(I32, P4, Ctx.getInt(I32, static_cast<uint64_t>(-1)));
  B.createRet(B.createLoad(I32, Back));
  Interpreter I(*M);
  ExecResult R = I.run(F, {});
  ASSERT_TRUE(R.ok()) << R.TrapReason;
  EXPECT_EQ(R.Return.Bits, 77u);
}

TEST_F(EdgeCaseTest, SimplifyPreservesLandingPadStructure) {
  Type *I32 = Ctx.int32Ty();
  Function *Ext = M->createFunction("ext", Ctx.types().getFunctionTy(I32, {}));
  Function *F = M->createFunction("eh", Ctx.types().getFunctionTy(I32, {}));
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *N = F->createBlock("n");
  BasicBlock *U = F->createBlock("u");
  IRBuilder B(Ctx, Entry);
  InvokeInst *Inv = B.createInvoke(Ext, {}, N, U, "r");
  B.setInsertPoint(N);
  B.createRet(Inv);
  B.setInsertPoint(U);
  Value *T = B.createLandingPad();
  B.createResume(T);
  simplifyFunction(*F, Ctx);
  VerifierReport R = verifyFunction(*F);
  EXPECT_TRUE(R.ok()) << R.str();
  EXPECT_TRUE(U->getParent() == F && U->isLandingBlock());
}

TEST_F(EdgeCaseTest, PrinterHandlesAllConstantKinds) {
  Type *I32 = Ctx.int32Ty();
  GlobalVariable *G = M->createGlobal("gv", I32, 1);
  Function *F = M->createFunction(
      "p", Ctx.types().getFunctionTy(Ctx.voidTy(), {}));
  IRBuilder B(Ctx, F->createBlock("entry"));
  B.createStore(Ctx.getInt32(static_cast<uint64_t>(-5)), G);
  B.createStore(Ctx.getUndef(I32), G);
  Value *FC = B.createBinOp(ValueKind::FAdd, Ctx.getFP(Ctx.doubleTy(), 1.5),
                            Ctx.getFP(Ctx.doubleTy(), 2.5));
  (void)FC;
  B.createRetVoid();
  std::string S = printFunction(*F);
  EXPECT_NE(S.find("-5"), std::string::npos) << S;
  EXPECT_NE(S.find("undef"), std::string::npos) << S;
  EXPECT_NE(S.find("@gv"), std::string::npos) << S;
  EXPECT_NE(S.find("1.5"), std::string::npos) << S;
}

} // namespace
