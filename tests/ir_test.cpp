//===- tests/ir_test.cpp - IR core unit tests -------------------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Dominators.h"
#include "ir/IRBuilder.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include <gtest/gtest.h>

using namespace salssa;

namespace {

TEST(TypeTest, InterningAndProperties) {
  Context Ctx;
  EXPECT_EQ(Ctx.int32Ty(), Ctx.types().getIntegerTy(32));
  EXPECT_EQ(Ctx.int1Ty(), Ctx.types().getIntegerTy(1));
  EXPECT_NE(Ctx.int32Ty(), Ctx.int64Ty());
  EXPECT_TRUE(Ctx.int1Ty()->isBool());
  EXPECT_TRUE(Ctx.ptrTy()->isPointer());
  EXPECT_TRUE(Ctx.doubleTy()->isFloatingPoint());
  EXPECT_FALSE(Ctx.voidTy()->isFirstClass());
  EXPECT_EQ(Ctx.int32Ty()->getStoreSize(), 4u);
  EXPECT_EQ(Ctx.int1Ty()->getStoreSize(), 1u);
  EXPECT_EQ(Ctx.ptrTy()->getStoreSize(), 8u);
}

TEST(TypeTest, FunctionTypeInterning) {
  Context Ctx;
  Type *FnTy1 = Ctx.types().getFunctionTy(Ctx.int32Ty(), {Ctx.int32Ty()});
  Type *FnTy2 = Ctx.types().getFunctionTy(Ctx.int32Ty(), {Ctx.int32Ty()});
  Type *FnTy3 = Ctx.types().getFunctionTy(Ctx.int32Ty(), {Ctx.int64Ty()});
  EXPECT_EQ(FnTy1, FnTy2);
  EXPECT_NE(FnTy1, FnTy3);
  EXPECT_EQ(FnTy1->getReturnType(), Ctx.int32Ty());
  EXPECT_EQ(FnTy1->getParamTypes().size(), 1u);
  EXPECT_EQ(FnTy1->getName(), "i32 (i32)");
}

TEST(ConstantTest, IntegerInterningAndTruncation) {
  Context Ctx;
  EXPECT_EQ(Ctx.getInt32(7), Ctx.getInt32(7));
  EXPECT_NE(Ctx.getInt32(7), Ctx.getInt32(8));
  EXPECT_NE(Ctx.getInt32(7), Ctx.getInt64(7));
  // Truncation to the type width canonicalizes the pool key.
  EXPECT_EQ(Ctx.getInt(Ctx.int8Ty(), 0x1FF), Ctx.getInt(Ctx.int8Ty(), 0xFF));
  EXPECT_EQ(Ctx.getInt(Ctx.int8Ty(), 0xFF)->getSExtValue(), -1);
  EXPECT_EQ(Ctx.getInt(Ctx.int8Ty(), 0x7F)->getSExtValue(), 127);
  EXPECT_TRUE(Ctx.getTrue()->isTrue());
  EXPECT_FALSE(Ctx.getFalse()->isTrue());
}

TEST(ConstantTest, FPAndUndef) {
  Context Ctx;
  EXPECT_EQ(Ctx.getFP(Ctx.doubleTy(), 1.5), Ctx.getFP(Ctx.doubleTy(), 1.5));
  EXPECT_NE(Ctx.getFP(Ctx.doubleTy(), 1.5), Ctx.getFP(Ctx.floatTy(), 1.5));
  EXPECT_EQ(Ctx.getUndef(Ctx.int32Ty()), Ctx.getUndef(Ctx.int32Ty()));
  EXPECT_NE(Ctx.getUndef(Ctx.int32Ty()), Ctx.getUndef(Ctx.int64Ty()));
  EXPECT_TRUE(isa<UndefValue>(Ctx.getUndef(Ctx.int32Ty())));
  EXPECT_TRUE(isa<Constant>(Ctx.getNullPtr()));
}

/// Builds: define i32 @f(i32 %a, i32 %b) { ret (a+b)*a }
static Function *buildSimpleFunction(Module &M, const std::string &Name) {
  Context &Ctx = M.getContext();
  Type *FnTy =
      Ctx.types().getFunctionTy(Ctx.int32Ty(), {Ctx.int32Ty(), Ctx.int32Ty()});
  Function *F = M.createFunction(Name, FnTy);
  BasicBlock *Entry = F->createBlock("entry");
  IRBuilder B(Ctx, Entry);
  Value *Sum = B.createAdd(F->getArg(0), F->getArg(1), "sum");
  Value *Prod = B.createMul(Sum, F->getArg(0), "prod");
  B.createRet(Prod);
  return F;
}

TEST(ValueTest, UseListsAndRAUW) {
  Context Ctx;
  Module M("m", Ctx);
  Function *F = buildSimpleFunction(M, "f");
  Argument *A = F->getArg(0);
  // %a is used by the add and the mul.
  EXPECT_EQ(A->getNumUses(), 2u);
  Instruction *Add = F->getEntryBlock()->front();
  Instruction *Mul = *std::next(F->getEntryBlock()->begin());
  EXPECT_TRUE(isa<BinaryOperator>(Add));
  EXPECT_EQ(Add->getNumUses(), 1u);
  EXPECT_EQ(Mul->getNumUses(), 1u);

  // RAUW %a -> %b everywhere.
  Argument *BArg = F->getArg(1);
  A->replaceAllUsesWith(BArg);
  EXPECT_EQ(A->getNumUses(), 0u);
  EXPECT_EQ(BArg->getNumUses(), 3u);
  EXPECT_EQ(Add->getOperand(0), BArg);
  EXPECT_EQ(Mul->getOperand(1), BArg);
  EXPECT_TRUE(verifyFunction(*F).ok()) << verifyFunction(*F).str();
}

TEST(ValueTest, SetOperandMaintainsCounts) {
  Context Ctx;
  Module M("m", Ctx);
  Function *F = buildSimpleFunction(M, "f");
  auto *Add = cast<BinaryOperator>(F->getEntryBlock()->front());
  Value *C = Ctx.getInt32(5);
  Add->setOperand(1, C);
  EXPECT_EQ(F->getArg(1)->getNumUses(), 0u);
  // Interned constants are shared across functions (and threads) and do
  // not track users; see Value::isUseTracked.
  EXPECT_FALSE(C->isUseTracked());
  EXPECT_EQ(C->getNumUses(), 0u);
  EXPECT_EQ(Add->findOperand(C), 1);
  EXPECT_EQ(Add->findOperand(F->getArg(1)), -1);
}

TEST(ValueTest, DuplicateOperandUses) {
  Context Ctx;
  Module M("m", Ctx);
  Type *FnTy = Ctx.types().getFunctionTy(Ctx.int32Ty(), {Ctx.int32Ty()});
  Function *F = M.createFunction("dup", FnTy);
  IRBuilder B(Ctx, F->createBlock("entry"));
  Value *Sq = B.createMul(F->getArg(0), F->getArg(0), "sq");
  B.createRet(Sq);
  EXPECT_EQ(F->getArg(0)->getNumUses(), 2u);
  Value *C = Ctx.getInt32(3);
  F->getArg(0)->replaceAllUsesWith(C);
  EXPECT_EQ(F->getArg(0)->getNumUses(), 0u);
  // Both operand slots reference C, but constants are use-untracked.
  EXPECT_EQ(cast<User>(Sq)->findOperand(C), 0);
  EXPECT_EQ(C->getNumUses(), 0u);
}

TEST(InstructionTest, OpcodePropertyFlags) {
  Context Ctx;
  Module M("m", Ctx);
  Function *F = buildSimpleFunction(M, "f");
  Instruction *Add = F->getEntryBlock()->front();
  EXPECT_TRUE(Add->isBinaryOp());
  EXPECT_TRUE(Add->isCommutative());
  EXPECT_FALSE(Add->isTerminator());
  EXPECT_TRUE(Add->isSideEffectFree());
  Instruction *Ret = F->getEntryBlock()->back();
  EXPECT_TRUE(Ret->isTerminator());
  EXPECT_FALSE(Ret->isSideEffectFree());
  EXPECT_STREQ(Add->getOpcodeName(), "add");
  EXPECT_STREQ(Ret->getOpcodeName(), "ret");
}

TEST(InstructionTest, EraseAndMove) {
  Context Ctx;
  Module M("m", Ctx);
  Function *F = buildSimpleFunction(M, "f");
  BasicBlock *BB = F->getEntryBlock();
  auto *Add = cast<BinaryOperator>(BB->front());
  auto *Mul = cast<BinaryOperator>(*std::next(BB->begin()));
  // Replace mul's use of add, then erase add.
  Mul->setOperand(0, F->getArg(1));
  EXPECT_FALSE(Add->hasUses());
  Add->eraseFromParent();
  EXPECT_EQ(BB->size(), 2u);
  EXPECT_TRUE(verifyFunction(*F).ok()) << verifyFunction(*F).str();
}

TEST(InstructionTest, CmpPredicateSwap) {
  EXPECT_EQ(swapCmpPredicate(CmpPredicate::SLT), CmpPredicate::SGT);
  EXPECT_EQ(swapCmpPredicate(CmpPredicate::ULE), CmpPredicate::UGE);
  EXPECT_EQ(swapCmpPredicate(CmpPredicate::EQ), CmpPredicate::EQ);
  Context Ctx;
  Module M("m", Ctx);
  Function *F = buildSimpleFunction(M, "f");
  IRBuilder B(Ctx);
  B.setInsertPoint(F->getEntryBlock()->back());
  auto *Cmp = cast<CmpInst>(
      B.createICmp(CmpPredicate::SLT, F->getArg(0), F->getArg(1)));
  Cmp->swapOperandsAndPredicate();
  EXPECT_EQ(Cmp->getPredicate(), CmpPredicate::SGT);
  EXPECT_EQ(Cmp->getLHS(), F->getArg(1));
  EXPECT_EQ(Cmp->getRHS(), F->getArg(0));
}

TEST(PhiTest, IncomingManagement) {
  Context Ctx;
  Module M("m", Ctx);
  Type *FnTy = Ctx.types().getFunctionTy(Ctx.int32Ty(),
                                         {Ctx.int1Ty(), Ctx.int32Ty()});
  Function *F = M.createFunction("phifn", FnTy);
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Then = F->createBlock("then");
  BasicBlock *Else = F->createBlock("else");
  BasicBlock *Join = F->createBlock("join");
  IRBuilder B(Ctx, Entry);
  B.createCondBr(F->getArg(0), Then, Else);
  B.setInsertPoint(Then);
  Value *X = B.createAdd(F->getArg(1), Ctx.getInt32(1), "x");
  B.createBr(Join);
  B.setInsertPoint(Else);
  Value *Y = B.createMul(F->getArg(1), Ctx.getInt32(2), "y");
  B.createBr(Join);
  B.setInsertPoint(Join);
  PhiInst *P = B.createPhi(Ctx.int32Ty(), "p");
  P->addIncoming(X, Then);
  P->addIncoming(Y, Else);
  B.createRet(P);

  EXPECT_TRUE(verifyFunction(*F).ok()) << verifyFunction(*F).str();
  EXPECT_EQ(P->getNumIncoming(), 2u);
  EXPECT_EQ(P->getIncomingValueForBlock(Then), X);
  EXPECT_EQ(P->indexOfBlock(Else), 1);
  EXPECT_EQ(P->indexOfBlock(Entry), -1);
  EXPECT_EQ(P->hasConstantValue(), nullptr);

  // A phi whose incomings are all the same value reports it.
  P->setIncomingValue(1, X);
  EXPECT_EQ(P->hasConstantValue(), X);
}

TEST(CFGTest, SuccessorsAndPredecessors) {
  Context Ctx;
  Module M("m", Ctx);
  Type *FnTy = Ctx.types().getFunctionTy(Ctx.voidTy(), {Ctx.int1Ty()});
  Function *F = M.createFunction("g", FnTy);
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *A = F->createBlock("a");
  BasicBlock *B2 = F->createBlock("b");
  IRBuilder B(Ctx, Entry);
  B.createCondBr(F->getArg(0), A, B2);
  B.setInsertPoint(A);
  B.createBr(B2);
  B.setInsertPoint(B2);
  B.createRetVoid();

  EXPECT_EQ(Entry->successors().size(), 2u);
  EXPECT_EQ(B2->successors().size(), 0u);
  CFGInfo CFG(*F);
  EXPECT_EQ(CFG.predecessors(B2).size(), 2u);
  EXPECT_EQ(CFG.predecessors(Entry).size(), 0u);
  EXPECT_EQ(CFG.reversePostOrder().size(), 3u);
  EXPECT_EQ(CFG.reversePostOrder().front(), Entry);
  EXPECT_TRUE(CFG.isReachable(A));
}

TEST(CFGTest, UnreachableBlocksExcluded) {
  Context Ctx;
  Module M("m", Ctx);
  Type *FnTy = Ctx.types().getFunctionTy(Ctx.voidTy(), {});
  Function *F = M.createFunction("g", FnTy);
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Dead = F->createBlock("dead");
  IRBuilder B(Ctx, Entry);
  B.createRetVoid();
  B.setInsertPoint(Dead);
  B.createRetVoid();
  CFGInfo CFG(*F);
  EXPECT_TRUE(CFG.isReachable(Entry));
  EXPECT_FALSE(CFG.isReachable(Dead));
  EXPECT_EQ(CFG.getNumReachableBlocks(), 1u);
}

TEST(DominatorTest, DiamondCFG) {
  Context Ctx;
  Module M("m", Ctx);
  Type *FnTy = Ctx.types().getFunctionTy(Ctx.voidTy(), {Ctx.int1Ty()});
  Function *F = M.createFunction("d", FnTy);
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *T = F->createBlock("t");
  BasicBlock *E = F->createBlock("e");
  BasicBlock *Join = F->createBlock("join");
  IRBuilder B(Ctx, Entry);
  B.createCondBr(F->getArg(0), T, E);
  B.setInsertPoint(T);
  B.createBr(Join);
  B.setInsertPoint(E);
  B.createBr(Join);
  B.setInsertPoint(Join);
  B.createRetVoid();

  DominatorTree DT(*F);
  EXPECT_EQ(DT.getIDom(Entry), nullptr);
  EXPECT_EQ(DT.getIDom(T), Entry);
  EXPECT_EQ(DT.getIDom(E), Entry);
  EXPECT_EQ(DT.getIDom(Join), Entry);
  EXPECT_TRUE(DT.dominates(Entry, Join));
  EXPECT_FALSE(DT.dominates(T, Join));
  EXPECT_TRUE(DT.dominates(Join, Join));
  // Dominance frontiers: DF(t) = DF(e) = {join}.
  EXPECT_EQ(DT.dominanceFrontier(T).count(Join), 1u);
  EXPECT_EQ(DT.dominanceFrontier(E).count(Join), 1u);
  EXPECT_TRUE(DT.dominanceFrontier(Entry).empty());
}

TEST(DominatorTest, LoopFrontier) {
  Context Ctx;
  Module M("m", Ctx);
  Type *FnTy = Ctx.types().getFunctionTy(Ctx.voidTy(), {Ctx.int1Ty()});
  Function *F = M.createFunction("loop", FnTy);
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Header = F->createBlock("header");
  BasicBlock *Body = F->createBlock("body");
  BasicBlock *Exit = F->createBlock("exit");
  IRBuilder B(Ctx, Entry);
  B.createBr(Header);
  B.setInsertPoint(Header);
  B.createCondBr(F->getArg(0), Body, Exit);
  B.setInsertPoint(Body);
  B.createBr(Header);
  B.setInsertPoint(Exit);
  B.createRetVoid();

  DominatorTree DT(*F);
  EXPECT_EQ(DT.getIDom(Body), Header);
  EXPECT_EQ(DT.getIDom(Exit), Header);
  // The loop header is in its own frontier (back edge) and the body's.
  EXPECT_EQ(DT.dominanceFrontier(Body).count(Header), 1u);
  EXPECT_EQ(DT.dominanceFrontier(Header).count(Header), 1u);
}

TEST(DominatorTest, InstructionLevelDominance) {
  Context Ctx;
  Module M("m", Ctx);
  Function *F = buildSimpleFunction(M, "f");
  Instruction *Add = F->getEntryBlock()->front();
  Instruction *Mul = *std::next(F->getEntryBlock()->begin());
  DominatorTree DT(*F);
  EXPECT_TRUE(DT.dominates(Add, Mul));
  EXPECT_FALSE(DT.dominates(Mul, Add));
  EXPECT_FALSE(DT.dominates(Add, Add));
}

TEST(PrinterTest, SimpleFunctionRendering) {
  Context Ctx;
  Module M("m", Ctx);
  Function *F = buildSimpleFunction(M, "f");
  std::string S = printFunction(*F);
  EXPECT_NE(S.find("define i32 @f(i32 %arg0, i32 %arg1)"), std::string::npos)
      << S;
  EXPECT_NE(S.find("%sum = add i32 %arg0, %arg1"), std::string::npos) << S;
  EXPECT_NE(S.find("ret i32 %prod"), std::string::npos) << S;
}

TEST(PrinterTest, ControlFlowRendering) {
  Context Ctx;
  Module M("m", Ctx);
  Type *FnTy = Ctx.types().getFunctionTy(Ctx.int32Ty(), {Ctx.int1Ty()});
  Function *F = M.createFunction("cf", FnTy);
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *A = F->createBlock("a");
  BasicBlock *B2 = F->createBlock("b");
  IRBuilder B(Ctx, Entry);
  B.createCondBr(F->getArg(0), A, B2);
  B.setInsertPoint(A);
  B.createRet(Ctx.getInt32(1));
  B.setInsertPoint(B2);
  B.createRet(Ctx.getInt32(2));
  std::string S = printFunction(*F);
  EXPECT_NE(S.find("br i1 %arg0, a, b"), std::string::npos) << S;
  EXPECT_NE(S.find("ret i32 1"), std::string::npos) << S;
}

TEST(VerifierTest, AcceptsWellFormed) {
  Context Ctx;
  Module M("m", Ctx);
  buildSimpleFunction(M, "f");
  buildSimpleFunction(M, "g");
  EXPECT_TRUE(verifyModule(M).ok()) << verifyModule(M).str();
}

TEST(VerifierTest, DetectsMissingTerminator) {
  Context Ctx;
  Module M("m", Ctx);
  Type *FnTy = Ctx.types().getFunctionTy(Ctx.voidTy(), {});
  Function *F = M.createFunction("bad", FnTy);
  BasicBlock *Entry = F->createBlock("entry");
  IRBuilder B(Ctx, Entry);
  B.createAdd(Ctx.getInt32(1), Ctx.getInt32(2));
  VerifierReport R = verifyFunction(*F);
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.str().find("lacks a terminator"), std::string::npos) << R.str();
}

TEST(VerifierTest, DetectsDominanceViolation) {
  Context Ctx;
  Module M("m", Ctx);
  Type *FnTy = Ctx.types().getFunctionTy(Ctx.int32Ty(), {Ctx.int1Ty()});
  Function *F = M.createFunction("bad", FnTy);
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *A = F->createBlock("a");
  BasicBlock *B2 = F->createBlock("b");
  BasicBlock *Join = F->createBlock("join");
  IRBuilder B(Ctx, Entry);
  B.createCondBr(F->getArg(0), A, B2);
  B.setInsertPoint(A);
  Value *X = B.createAdd(Ctx.getInt32(1), Ctx.getInt32(2), "x");
  B.createBr(Join);
  B.setInsertPoint(B2);
  B.createBr(Join);
  B.setInsertPoint(Join);
  // Using %x here violates dominance (B2 path bypasses its definition).
  B.createRet(X);
  VerifierReport R = verifyFunction(*F);
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.str().find("dominance"), std::string::npos) << R.str();
}

TEST(VerifierTest, DetectsPhiPredecessorMismatch) {
  Context Ctx;
  Module M("m", Ctx);
  Type *FnTy = Ctx.types().getFunctionTy(Ctx.int32Ty(), {Ctx.int1Ty()});
  Function *F = M.createFunction("bad", FnTy);
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *A = F->createBlock("a");
  BasicBlock *Join = F->createBlock("join");
  IRBuilder B(Ctx, Entry);
  B.createCondBr(F->getArg(0), A, Join);
  B.setInsertPoint(A);
  B.createBr(Join);
  B.setInsertPoint(Join);
  PhiInst *P = B.createPhi(Ctx.int32Ty(), "p");
  P->addIncoming(Ctx.getInt32(1), A); // missing entry for Entry
  B.createRet(P);
  VerifierReport R = verifyFunction(*F);
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.str().find("missing incoming entry"), std::string::npos)
      << R.str();
}

TEST(VerifierTest, DetectsInvokeWithoutLandingPad) {
  Context Ctx;
  Module M("m", Ctx);
  Type *CalleeTy = Ctx.types().getFunctionTy(Ctx.voidTy(), {});
  Function *Callee = M.createFunction("ext", CalleeTy);
  Type *FnTy = Ctx.types().getFunctionTy(Ctx.voidTy(), {});
  Function *F = M.createFunction("bad", FnTy);
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Normal = F->createBlock("normal");
  BasicBlock *Unwind = F->createBlock("unwind");
  IRBuilder B(Ctx, Entry);
  B.createInvoke(Callee, {}, Normal, Unwind);
  B.setInsertPoint(Normal);
  B.createRetVoid();
  B.setInsertPoint(Unwind);
  B.createRetVoid(); // no landingpad -> invalid
  VerifierReport R = verifyFunction(*F);
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.str().find("landingpad"), std::string::npos) << R.str();
}

TEST(VerifierTest, AcceptsValidInvokeLandingPad) {
  Context Ctx;
  Module M("m", Ctx);
  Type *CalleeTy = Ctx.types().getFunctionTy(Ctx.voidTy(), {});
  Function *Callee = M.createFunction("ext", CalleeTy);
  Type *FnTy = Ctx.types().getFunctionTy(Ctx.voidTy(), {});
  Function *F = M.createFunction("ok", FnTy);
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Normal = F->createBlock("normal");
  BasicBlock *Unwind = F->createBlock("unwind");
  IRBuilder B(Ctx, Entry);
  B.createInvoke(Callee, {}, Normal, Unwind);
  B.setInsertPoint(Normal);
  B.createRetVoid();
  B.setInsertPoint(Unwind);
  Value *Token = B.createLandingPad("lp");
  B.createResume(Token);
  EXPECT_TRUE(verifyFunction(*F).ok()) << verifyFunction(*F).str();
}

TEST(ModuleTest, FunctionManagement) {
  Context Ctx;
  Module M("m", Ctx);
  Function *F = buildSimpleFunction(M, "f");
  EXPECT_EQ(M.getFunction("f"), F);
  EXPECT_EQ(M.getFunction("nope"), nullptr);
  EXPECT_EQ(M.functions().size(), 1u);
  EXPECT_EQ(M.getInstructionCount(), 3u);
  EXPECT_FALSE(F->isDeclaration());
  F->clearBody();
  EXPECT_TRUE(F->isDeclaration());
  M.eraseFunction(F);
  EXPECT_EQ(M.functions().size(), 0u);
}

TEST(ModuleTest, UniqueNames) {
  Context Ctx;
  Module M("m", Ctx);
  std::string N1 = M.makeUniqueName("merged");
  std::string N2 = M.makeUniqueName("merged");
  EXPECT_NE(N1, N2);
}

TEST(ModuleTest, TeardownWithGlobalUses) {
  // Regression: module members used to destruct in declaration order,
  // destroying globals while function bodies still referenced them.
  Context Ctx;
  auto M = std::make_unique<Module>("m", Ctx);
  GlobalVariable *G = M->createGlobal("g", Ctx.int32Ty(), 4);
  Type *FnTy = Ctx.types().getFunctionTy(Ctx.voidTy(), {Ctx.int32Ty()});
  Function *F = M->createFunction("touch", FnTy);
  IRBuilder B(Ctx, F->createBlock("entry"));
  B.createStore(F->getArg(0), G);
  B.createStore(F->getArg(0), B.createGep(Ctx.int32Ty(), G, Ctx.getInt32(1)));
  B.createRetVoid();
  // Globals are module-shared and use-untracked (like interned
  // constants), so teardown order cannot leave stale user edges.
  EXPECT_FALSE(G->isUseTracked());
  EXPECT_EQ(G->getNumUses(), 0u);
  M.reset(); // must not abort or touch freed memory
}

TEST(ModuleTest, Globals) {
  Context Ctx;
  Module M("m", Ctx);
  GlobalVariable *G = M.createGlobal("table", Ctx.int32Ty(), 16);
  EXPECT_TRUE(G->getType()->isPointer());
  EXPECT_EQ(G->getValueType(), Ctx.int32Ty());
  EXPECT_EQ(G->getStorageSize(), 64u);
  EXPECT_TRUE(isa<Constant>(G));
}

TEST(FunctionTest, InstructionCountAndClear) {
  Context Ctx;
  Module M("m", Ctx);
  Function *F = buildSimpleFunction(M, "f");
  EXPECT_EQ(F->getInstructionCount(), 3u);
  // clearBody handles cross-referencing instructions without dangling.
  F->clearBody();
  EXPECT_EQ(F->getInstructionCount(), 0u);
  EXPECT_EQ(F->getNumBlocks(), 0u);
}

TEST(SwitchTest, CasesAndPrinter) {
  Context Ctx;
  Module M("m", Ctx);
  Type *FnTy = Ctx.types().getFunctionTy(Ctx.int32Ty(), {Ctx.int32Ty()});
  Function *F = M.createFunction("sw", FnTy);
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *C1 = F->createBlock("c1");
  BasicBlock *C2 = F->createBlock("c2");
  BasicBlock *Def = F->createBlock("def");
  IRBuilder B(Ctx, Entry);
  SwitchInst *SW = B.createSwitch(F->getArg(0), Def);
  SW->addCase(Ctx.getInt32(1), C1);
  SW->addCase(Ctx.getInt32(2), C2);
  B.setInsertPoint(C1);
  B.createRet(Ctx.getInt32(10));
  B.setInsertPoint(C2);
  B.createRet(Ctx.getInt32(20));
  B.setInsertPoint(Def);
  B.createRet(Ctx.getInt32(0));

  EXPECT_EQ(SW->getNumCases(), 2u);
  EXPECT_EQ(SW->getNumSuccessors(), 3u);
  EXPECT_EQ(SW->getCaseDest(0), C1);
  EXPECT_EQ(SW->getDefaultDest(), Def);
  EXPECT_TRUE(verifyFunction(*F).ok()) << verifyFunction(*F).str();
  std::string S = printFunction(*F);
  EXPECT_NE(S.find("switch i32 %arg0, default def [1:c1 2:c2]"),
            std::string::npos)
      << S;
}

} // namespace
