//===- tests/suite_smoke_test.cpp - All-profile smoke tests -------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
// Guards the benchmark harness itself: every profile of every suite must
// generate a verifier-clean module (at reduced scale), and the merge
// drivers must run each to completion leaving valid IR. Parameterized
// over the full SPEC2006 + SPEC2017 + MiBench profile lists, so a broken
// profile knob or generator regression fails with the profile's name.
//
//===----------------------------------------------------------------------===//

#include "codesize/SizeModel.h"
#include "ir/Verifier.h"
#include "merge/MergeDriver.h"
#include "workloads/Suites.h"
#include <gtest/gtest.h>

using namespace salssa;

namespace {

std::vector<BenchmarkProfile> allProfilesReduced() {
  std::vector<BenchmarkProfile> All;
  for (auto Suite : {spec2006Profiles(), spec2017Profiles(),
                     mibenchProfiles()})
    for (BenchmarkProfile &P : Suite) {
      P.NumFunctions = std::min(P.NumFunctions, 10u);
      P.GiantPairSize = std::min(P.GiantPairSize, 150u);
      P.MaxSize = std::min(P.MaxSize, 400u);
      All.push_back(P);
    }
  return All;
}

class SuiteSmokeTest : public ::testing::TestWithParam<BenchmarkProfile> {};

std::string profileName(
    const ::testing::TestParamInfo<BenchmarkProfile> &Info) {
  std::string S = Info.param.Name;
  for (char &C : S)
    if (!isalnum(static_cast<unsigned char>(C)))
      C = '_';
  return S;
}

TEST_P(SuiteSmokeTest, GeneratesAndMergesCleanly) {
  const BenchmarkProfile &P = GetParam();
  Context Ctx;
  std::unique_ptr<Module> M = buildBenchmarkModule(P, Ctx);
  VerifierReport VR = verifyModule(*M);
  ASSERT_TRUE(VR.ok()) << P.Name << ":\n" << VR.str();
  uint64_t Baseline = estimateModuleSize(*M, TargetArch::X86Like);
  EXPECT_GT(Baseline, 0u);

  MergeDriverOptions DO;
  DO.Technique = MergeTechnique::SalSSA;
  DO.ExplorationThreshold = 1;
  runFunctionMerging(*M, DO);
  VR = verifyModule(*M);
  ASSERT_TRUE(VR.ok()) << P.Name << " post-merge:\n" << VR.str();
  // Merging never grows the module beyond the cost model's slack.
  uint64_t After = estimateModuleSize(*M, TargetArch::X86Like);
  EXPECT_LE(After, Baseline + Baseline / 10) << P.Name;
}

INSTANTIATE_TEST_SUITE_P(AllSuites, SuiteSmokeTest,
                         ::testing::ValuesIn(allProfilesReduced()),
                         profileName);

} // namespace
