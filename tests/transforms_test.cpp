//===- tests/transforms_test.cpp - Transform pass unit tests ----------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Dominators.h"
#include "ir/IRBuilder.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "transforms/Cloning.h"
#include "transforms/Mem2Reg.h"
#include "transforms/Reg2Mem.h"
#include "transforms/Simplify.h"
#include <gtest/gtest.h>

using namespace salssa;

namespace {

/// Counts instructions with a given opcode in \p F.
static unsigned countOpcode(const Function &F, ValueKind K) {
  unsigned N = 0;
  for (const BasicBlock *BB : F)
    for (const Instruction *I : *BB)
      if (I->getOpcode() == K)
        ++N;
  return N;
}

/// Builds a classic loop with phis:
///   int f(int n) { int s = 0; for (int i = 0; i < n; i++) s += i; return s; }
static Function *buildLoopFunction(Module &M, const std::string &Name) {
  Context &Ctx = M.getContext();
  Type *FnTy = Ctx.types().getFunctionTy(Ctx.int32Ty(), {Ctx.int32Ty()});
  Function *F = M.createFunction(Name, FnTy);
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Header = F->createBlock("header");
  BasicBlock *Body = F->createBlock("body");
  BasicBlock *Exit = F->createBlock("exit");
  IRBuilder B(Ctx, Entry);
  B.createBr(Header);

  B.setInsertPoint(Header);
  PhiInst *I = B.createPhi(Ctx.int32Ty(), "i");
  PhiInst *S = B.createPhi(Ctx.int32Ty(), "s");
  Value *Cmp = B.createICmp(CmpPredicate::SLT, I, F->getArg(0), "cmp");
  B.createCondBr(Cmp, Body, Exit);

  B.setInsertPoint(Body);
  Value *S2 = B.createAdd(S, I, "s2");
  Value *I2 = B.createAdd(I, Ctx.getInt32(1), "i2");
  B.createBr(Header);

  I->addIncoming(Ctx.getInt32(0), Entry);
  I->addIncoming(I2, Body);
  S->addIncoming(Ctx.getInt32(0), Entry);
  S->addIncoming(S2, Body);

  B.setInsertPoint(Exit);
  B.createRet(S);
  return F;
}

//===----------------------------------------------------------------------===//
// Reg2Mem
//===----------------------------------------------------------------------===//

TEST(Reg2MemTest, EliminatesAllPhis) {
  Context Ctx;
  Module M("m", Ctx);
  Function *F = buildLoopFunction(M, "loop");
  ASSERT_TRUE(verifyFunction(*F).ok()) << verifyFunction(*F).str();
  Reg2MemStats Stats = demoteRegistersToMemory(*F, Ctx);
  EXPECT_EQ(countOpcode(*F, ValueKind::Phi), 0u);
  EXPECT_EQ(Stats.DemotedPhis, 2u);
  EXPECT_TRUE(verifyFunction(*F).ok()) << verifyFunction(*F).str()
                                       << printFunction(*F);
}

TEST(Reg2MemTest, InflatesFunctionSize) {
  Context Ctx;
  Module M("m", Ctx);
  Function *F = buildLoopFunction(M, "loop");
  unsigned Before = static_cast<unsigned>(F->getInstructionCount());
  Reg2MemStats Stats = demoteRegistersToMemory(*F, Ctx);
  EXPECT_GT(F->getInstructionCount(), Before);
  EXPECT_GT(Stats.inflation(), 1.0);
  EXPECT_EQ(Stats.InstructionsBefore, Before);
}

TEST(Reg2MemTest, RoundTripThroughMem2RegPreservesShape) {
  Context Ctx;
  Module M("m", Ctx);
  Function *F = buildLoopFunction(M, "loop");
  size_t Original = F->getInstructionCount();
  demoteRegistersToMemory(*F, Ctx);
  Mem2RegStats PStats = promoteAllocasToRegisters(*F, Ctx);
  EXPECT_GT(PStats.PromotedAllocas, 0u);
  ASSERT_TRUE(verifyFunction(*F).ok()) << verifyFunction(*F).str();
  simplifyFunction(*F, Ctx);
  ASSERT_TRUE(verifyFunction(*F).ok()) << verifyFunction(*F).str();
  // After the round trip the function should be back to (about) its
  // original size: phis restored, spills gone.
  EXPECT_LE(F->getInstructionCount(), Original + 2);
  EXPECT_EQ(countOpcode(*F, ValueKind::Alloca), 0u);
}

TEST(Reg2MemTest, StraightLineCodeUntouchedExceptCrossBlock) {
  Context Ctx;
  Module M("m", Ctx);
  Type *FnTy = Ctx.types().getFunctionTy(Ctx.int32Ty(), {Ctx.int32Ty()});
  Function *F = M.createFunction("s", FnTy);
  IRBuilder B(Ctx, F->createBlock("entry"));
  Value *X = B.createAdd(F->getArg(0), Ctx.getInt32(1), "x");
  Value *Y = B.createMul(X, X, "y");
  B.createRet(Y);
  Reg2MemStats Stats = demoteRegistersToMemory(*F, Ctx);
  // Everything is block-local: no demotion at all.
  EXPECT_EQ(Stats.DemotedValues, 0u);
  EXPECT_EQ(Stats.DemotedPhis, 0u);
  EXPECT_EQ(Stats.inflation(), 1.0);
}

TEST(Reg2MemTest, DemotesInvokeResultViaEdgeSplit) {
  Context Ctx;
  Module M("m", Ctx);
  Type *CalleeTy = Ctx.types().getFunctionTy(Ctx.int32Ty(), {});
  Function *Callee = M.createFunction("ext", CalleeTy);
  Type *FnTy = Ctx.types().getFunctionTy(Ctx.int32Ty(), {});
  Function *F = M.createFunction("inv", FnTy);
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Normal = F->createBlock("normal");
  BasicBlock *Unwind = F->createBlock("unwind");
  IRBuilder B(Ctx, Entry);
  InvokeInst *Inv = B.createInvoke(Callee, {}, Normal, Unwind, "r");
  B.setInsertPoint(Normal);
  B.createRet(Inv); // cross-block use of the invoke result
  B.setInsertPoint(Unwind);
  Value *Token = B.createLandingPad("lp");
  B.createResume(Token);

  demoteRegistersToMemory(*F, Ctx);
  EXPECT_TRUE(verifyFunction(*F).ok()) << verifyFunction(*F).str()
                                       << printFunction(*F);
  // The spill lives on a split edge, not in the invoke's own block.
  EXPECT_GT(F->getNumBlocks(), 3u);
}

//===----------------------------------------------------------------------===//
// Mem2Reg
//===----------------------------------------------------------------------===//

TEST(Mem2RegTest, PromotableDetection) {
  Context Ctx;
  Module M("m", Ctx);
  Type *FnTy = Ctx.types().getFunctionTy(Ctx.int32Ty(), {Ctx.int32Ty()});
  Function *F = M.createFunction("p", FnTy);
  IRBuilder B(Ctx, F->createBlock("entry"));
  AllocaInst *Good = B.createAlloca(Ctx.int32Ty(), 1, "good");
  AllocaInst *Escaped = B.createAlloca(Ctx.int32Ty(), 1, "escaped");
  AllocaInst *Array = B.createAlloca(Ctx.int32Ty(), 4, "array");
  B.createStore(F->getArg(0), Good);
  Value *L = B.createLoad(Ctx.int32Ty(), Good);
  // Escaped: address flows into a gep.
  B.createGep(Ctx.int32Ty(), Escaped, Ctx.getInt32(1));
  B.createRet(L);
  EXPECT_TRUE(isPromotableAlloca(Good));
  EXPECT_FALSE(isPromotableAlloca(Escaped));
  EXPECT_FALSE(isPromotableAlloca(Array));
}

TEST(Mem2RegTest, StoredAddressIsNotPromotable) {
  Context Ctx;
  Module M("m", Ctx);
  Type *FnTy = Ctx.types().getFunctionTy(Ctx.voidTy(), {});
  Function *F = M.createFunction("p", FnTy);
  IRBuilder B(Ctx, F->createBlock("entry"));
  AllocaInst *A = B.createAlloca(Ctx.ptrTy(), 1, "a");
  AllocaInst *Target = B.createAlloca(Ctx.ptrTy(), 1, "t");
  B.createStore(A, Target); // A's address escapes as a stored value
  B.createRetVoid();
  EXPECT_FALSE(isPromotableAlloca(A));
  EXPECT_TRUE(isPromotableAlloca(Target));
}

TEST(Mem2RegTest, SingleBlockPromotion) {
  Context Ctx;
  Module M("m", Ctx);
  Type *FnTy = Ctx.types().getFunctionTy(Ctx.int32Ty(), {Ctx.int32Ty()});
  Function *F = M.createFunction("p", FnTy);
  IRBuilder B(Ctx, F->createBlock("entry"));
  AllocaInst *A = B.createAlloca(Ctx.int32Ty(), 1, "a");
  B.createStore(F->getArg(0), A);
  Value *L1 = B.createLoad(Ctx.int32Ty(), A, "l1");
  Value *Inc = B.createAdd(L1, Ctx.getInt32(1), "inc");
  B.createStore(Inc, A);
  Value *L2 = B.createLoad(Ctx.int32Ty(), A, "l2");
  B.createRet(L2);

  Mem2RegStats S = promoteAllocasToRegisters(*F, Ctx);
  EXPECT_EQ(S.PromotedAllocas, 1u);
  EXPECT_EQ(S.LoadsRemoved, 2u);
  EXPECT_EQ(S.StoresRemoved, 2u);
  EXPECT_EQ(S.PhisInserted, 0u);
  ASSERT_TRUE(verifyFunction(*F).ok()) << verifyFunction(*F).str();
  // ret now returns the add directly.
  auto *Ret = cast<RetInst>(F->getEntryBlock()->back());
  EXPECT_EQ(Ret->getReturnValue(), Inc);
}

TEST(Mem2RegTest, DiamondInsertsPhi) {
  Context Ctx;
  Module M("m", Ctx);
  Type *FnTy = Ctx.types().getFunctionTy(Ctx.int32Ty(), {Ctx.int1Ty()});
  Function *F = M.createFunction("p", FnTy);
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *T = F->createBlock("t");
  BasicBlock *E = F->createBlock("e");
  BasicBlock *Join = F->createBlock("join");
  IRBuilder B(Ctx, Entry);
  AllocaInst *A = B.createAlloca(Ctx.int32Ty(), 1, "a");
  B.createCondBr(F->getArg(0), T, E);
  B.setInsertPoint(T);
  B.createStore(Ctx.getInt32(10), A);
  B.createBr(Join);
  B.setInsertPoint(E);
  B.createStore(Ctx.getInt32(20), A);
  B.createBr(Join);
  B.setInsertPoint(Join);
  Value *L = B.createLoad(Ctx.int32Ty(), A, "l");
  B.createRet(L);

  Mem2RegStats S = promoteAllocasToRegisters(*F, Ctx);
  EXPECT_EQ(S.PhisInserted, 1u);
  ASSERT_TRUE(verifyFunction(*F).ok()) << verifyFunction(*F).str();
  auto *P = dyn_cast<PhiInst>(Join->front());
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(cast<ConstantInt>(P->getIncomingValueForBlock(T))->getSExtValue(),
            10);
  EXPECT_EQ(cast<ConstantInt>(P->getIncomingValueForBlock(E))->getSExtValue(),
            20);
}

TEST(Mem2RegTest, ReadBeforeWriteYieldsUndef) {
  Context Ctx;
  Module M("m", Ctx);
  Type *FnTy = Ctx.types().getFunctionTy(Ctx.int32Ty(), {});
  Function *F = M.createFunction("p", FnTy);
  IRBuilder B(Ctx, F->createBlock("entry"));
  AllocaInst *A = B.createAlloca(Ctx.int32Ty(), 1, "a");
  Value *L = B.createLoad(Ctx.int32Ty(), A, "l");
  B.createRet(L);
  promoteAllocasToRegisters(*F, Ctx);
  auto *Ret = cast<RetInst>(F->getEntryBlock()->back());
  EXPECT_TRUE(isa<UndefValue>(Ret->getReturnValue()));
}

TEST(Mem2RegTest, LoopPromotionMatchesHandWrittenPhis) {
  Context Ctx;
  Module M("m", Ctx);
  Function *F = buildLoopFunction(M, "loop");
  size_t HandWrittenPhis = countOpcode(*F, ValueKind::Phi);
  demoteRegistersToMemory(*F, Ctx);
  ASSERT_EQ(countOpcode(*F, ValueKind::Phi), 0u);
  promoteAllocasToRegisters(*F, Ctx);
  simplifyFunction(*F, Ctx);
  ASSERT_TRUE(verifyFunction(*F).ok()) << verifyFunction(*F).str();
  EXPECT_EQ(countOpcode(*F, ValueKind::Phi), HandWrittenPhis);
}

//===----------------------------------------------------------------------===//
// Simplify
//===----------------------------------------------------------------------===//

TEST(SimplifyTest, ConstantFolding) {
  Context Ctx;
  Module M("m", Ctx);
  Type *FnTy = Ctx.types().getFunctionTy(Ctx.int32Ty(), {});
  Function *F = M.createFunction("cf", FnTy);
  IRBuilder B(Ctx, F->createBlock("entry"));
  Value *X = B.createAdd(Ctx.getInt32(2), Ctx.getInt32(3), "x");
  Value *Y = B.createMul(X, Ctx.getInt32(4), "y");
  B.createRet(Y);
  simplifyFunction(*F, Ctx);
  auto *Ret = cast<RetInst>(F->getEntryBlock()->back());
  auto *C = dyn_cast<ConstantInt>(Ret->getReturnValue());
  ASSERT_NE(C, nullptr);
  EXPECT_EQ(C->getSExtValue(), 20);
  EXPECT_EQ(F->getInstructionCount(), 1u);
}

TEST(SimplifyTest, SelectIdenticalArmsFolds) {
  Context Ctx;
  Module M("m", Ctx);
  Type *FnTy = Ctx.types().getFunctionTy(Ctx.int32Ty(),
                                         {Ctx.int1Ty(), Ctx.int32Ty()});
  Function *F = M.createFunction("sel", FnTy);
  IRBuilder B(Ctx, F->createBlock("entry"));
  Value *S = B.createSelect(F->getArg(0), F->getArg(1), F->getArg(1), "s");
  B.createRet(S);
  simplifyFunction(*F, Ctx);
  auto *Ret = cast<RetInst>(F->getEntryBlock()->back());
  EXPECT_EQ(Ret->getReturnValue(), F->getArg(1));
}

TEST(SimplifyTest, SelectUndefArmFolds) {
  Context Ctx;
  Module M("m", Ctx);
  Type *FnTy =
      Ctx.types().getFunctionTy(Ctx.int32Ty(), {Ctx.int1Ty(), Ctx.int32Ty()});
  Function *F = M.createFunction("sel", FnTy);
  IRBuilder B(Ctx, F->createBlock("entry"));
  Value *S = B.createSelect(F->getArg(0), F->getArg(1),
                            Ctx.getUndef(Ctx.int32Ty()), "s");
  B.createRet(S);
  simplifyFunction(*F, Ctx);
  auto *Ret = cast<RetInst>(F->getEntryBlock()->back());
  EXPECT_EQ(Ret->getReturnValue(), F->getArg(1));
}

TEST(SimplifyTest, ConstantBranchFoldsAndDeadBlockGoes) {
  Context Ctx;
  Module M("m", Ctx);
  Type *FnTy = Ctx.types().getFunctionTy(Ctx.int32Ty(), {});
  Function *F = M.createFunction("cb", FnTy);
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *T = F->createBlock("t");
  BasicBlock *E = F->createBlock("e");
  IRBuilder B(Ctx, Entry);
  B.createCondBr(Ctx.getTrue(), T, E);
  B.setInsertPoint(T);
  B.createRet(Ctx.getInt32(1));
  B.setInsertPoint(E);
  B.createRet(Ctx.getInt32(2));
  SimplifyStats S = simplifyFunction(*F, Ctx);
  EXPECT_GE(S.BranchesFolded, 1u);
  // Entry merged with T; E unreachable and removed.
  EXPECT_EQ(F->getNumBlocks(), 1u);
  auto *Ret = cast<RetInst>(F->getEntryBlock()->back());
  EXPECT_EQ(cast<ConstantInt>(Ret->getReturnValue())->getSExtValue(), 1);
}

TEST(SimplifyTest, ThreadsTrivialBlock) {
  Context Ctx;
  Module M("m", Ctx);
  Type *FnTy = Ctx.types().getFunctionTy(Ctx.int32Ty(), {Ctx.int1Ty()});
  Function *F = M.createFunction("tt", FnTy);
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Mid = F->createBlock("mid"); // only a br
  BasicBlock *T = F->createBlock("t");
  BasicBlock *Join = F->createBlock("join");
  IRBuilder B(Ctx, Entry);
  B.createCondBr(F->getArg(0), Mid, T);
  B.setInsertPoint(Mid);
  B.createBr(Join);
  B.setInsertPoint(T);
  B.createBr(Join);
  B.setInsertPoint(Join);
  PhiInst *P = B.createPhi(Ctx.int32Ty(), "p");
  P->addIncoming(Ctx.getInt32(1), Mid);
  P->addIncoming(Ctx.getInt32(2), T);
  B.createRet(P);
  simplifyFunction(*F, Ctx);
  ASSERT_TRUE(verifyFunction(*F).ok()) << verifyFunction(*F).str()
                                       << printFunction(*F);
  // Mid and T are gone; phi entries retargeted to Entry... but both values
  // flow from Entry, which is impossible for a single block -- so the
  // threading must have kept at least one of them, or folded the phi by
  // rerouting only one side. Either way the function must stay correct:
  EXPECT_LE(F->getNumBlocks(), 3u);
}

TEST(SimplifyTest, MergesIdenticalPhis) {
  Context Ctx;
  Module M("m", Ctx);
  Type *FnTy = Ctx.types().getFunctionTy(Ctx.int32Ty(), {Ctx.int1Ty()});
  Function *F = M.createFunction("ip", FnTy);
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *T = F->createBlock("t");
  BasicBlock *E = F->createBlock("e");
  BasicBlock *Join = F->createBlock("join");
  IRBuilder B(Ctx, Entry);
  B.createCondBr(F->getArg(0), T, E);
  B.setInsertPoint(T);
  B.createBr(Join);
  B.setInsertPoint(E);
  B.createBr(Join);
  B.setInsertPoint(Join);
  PhiInst *P1 = B.createPhi(Ctx.int32Ty(), "p1");
  P1->addIncoming(Ctx.getInt32(1), T);
  P1->addIncoming(Ctx.getInt32(2), E);
  PhiInst *P2 = B.createPhi(Ctx.int32Ty(), "p2");
  P2->addIncoming(Ctx.getInt32(1), T);
  P2->addIncoming(Ctx.getInt32(2), E);
  Value *Sum = B.createAdd(P1, P2, "sum");
  B.createRet(Sum);
  SimplifyStats S = simplifyFunction(*F, Ctx);
  EXPECT_GE(S.PhisMerged, 1u);
  ASSERT_TRUE(verifyFunction(*F).ok()) << verifyFunction(*F).str();
  EXPECT_LE(countOpcode(*F, ValueKind::Phi), 1u);
}

TEST(SimplifyTest, RemovesUnreachableBlocks) {
  Context Ctx;
  Module M("m", Ctx);
  Type *FnTy = Ctx.types().getFunctionTy(Ctx.voidTy(), {});
  Function *F = M.createFunction("u", FnTy);
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Dead1 = F->createBlock("dead1");
  BasicBlock *Dead2 = F->createBlock("dead2");
  IRBuilder B(Ctx, Entry);
  B.createRetVoid();
  // Dead blocks reference each other.
  B.setInsertPoint(Dead1);
  B.createBr(Dead2);
  B.setInsertPoint(Dead2);
  B.createBr(Dead1);
  EXPECT_EQ(removeUnreachableBlocks(*F), 2u);
  EXPECT_EQ(F->getNumBlocks(), 1u);
  EXPECT_TRUE(verifyFunction(*F).ok());
}

TEST(SimplifyTest, DCERemovesChains) {
  Context Ctx;
  Module M("m", Ctx);
  Type *FnTy = Ctx.types().getFunctionTy(Ctx.int32Ty(), {Ctx.int32Ty()});
  Function *F = M.createFunction("dce", FnTy);
  IRBuilder B(Ctx, F->createBlock("entry"));
  Value *A = B.createAdd(F->getArg(0), Ctx.getInt32(1), "a");
  B.createMul(A, A, "dead"); // unused chain head
  B.createRet(F->getArg(0));
  unsigned Removed = eliminateDeadCode(*F);
  EXPECT_EQ(Removed, 2u); // mul then add
  EXPECT_EQ(F->getInstructionCount(), 1u);
}

TEST(SimplifyTest, CallsSurviveDCE) {
  Context Ctx;
  Module M("m", Ctx);
  Type *ExtTy = Ctx.types().getFunctionTy(Ctx.int32Ty(), {});
  Function *Ext = M.createFunction("ext", ExtTy);
  Type *FnTy = Ctx.types().getFunctionTy(Ctx.int32Ty(), {});
  Function *F = M.createFunction("keep", FnTy);
  IRBuilder B(Ctx, F->createBlock("entry"));
  B.createCall(Ext, {}, "unused"); // side effects: must stay
  B.createRet(Ctx.getInt32(0));
  EXPECT_EQ(eliminateDeadCode(*F), 0u);
  EXPECT_EQ(F->getInstructionCount(), 2u);
}

TEST(SimplifyTest, XorIdentities) {
  Context Ctx;
  Module M("m", Ctx);
  Type *FnTy = Ctx.types().getFunctionTy(Ctx.int1Ty(), {Ctx.int1Ty()});
  Function *F = M.createFunction("x", FnTy);
  IRBuilder B(Ctx, F->createBlock("entry"));
  // xor(c, false) == c -- the Fig 11 xor insertion should simplify away
  // when the function identifier is known.
  Value *X = B.createXor(F->getArg(0), Ctx.getFalse(), "x");
  B.createRet(X);
  simplifyFunction(*F, Ctx);
  auto *Ret = cast<RetInst>(F->getEntryBlock()->back());
  EXPECT_EQ(Ret->getReturnValue(), F->getArg(0));
}

//===----------------------------------------------------------------------===//
// Cloning
//===----------------------------------------------------------------------===//

TEST(CloningTest, CloneFunctionIsIdenticalAndIndependent) {
  Context Ctx;
  Module M("m", Ctx);
  Function *F = buildLoopFunction(M, "orig");
  Function *C = cloneFunction(F, "copy");
  ASSERT_TRUE(verifyFunction(*C).ok()) << verifyFunction(*C).str();
  EXPECT_EQ(printFunction(*F).substr(printFunction(*F).find('(')),
            printFunction(*C).substr(printFunction(*C).find('(')));
  // Mutating the clone leaves the original untouched.
  size_t Before = F->getInstructionCount();
  C->clearBody();
  EXPECT_EQ(F->getInstructionCount(), Before);
  EXPECT_TRUE(verifyFunction(*F).ok());
}

TEST(CloningTest, CloneInstructionSharesOperandsUntilRemap) {
  Context Ctx;
  Module M("m", Ctx);
  Type *FnTy = Ctx.types().getFunctionTy(Ctx.int32Ty(), {Ctx.int32Ty()});
  Function *F = M.createFunction("f", FnTy);
  IRBuilder B(Ctx, F->createBlock("entry"));
  auto *Add =
      cast<Instruction>(B.createAdd(F->getArg(0), Ctx.getInt32(7), "a"));
  B.createRet(Add);

  Instruction *Clone = cloneInstruction(Add, Ctx);
  EXPECT_EQ(Clone->getOperand(0), F->getArg(0));
  EXPECT_EQ(Clone->getOperand(1), Ctx.getInt32(7));
  // The placeholder operands are deliberately unregistered (the original
  // may be shared with merge attempts on other threads); only the remap
  // registers the final operands.
  EXPECT_EQ(F->getArg(0)->getNumUses(), 1u);
  CloneMaps Maps;
  Maps.Values[F->getArg(0)] = Ctx.getInt32(1);
  remapInstruction(Clone, Maps);
  EXPECT_EQ(Clone->getOperand(0), Ctx.getInt32(1));
  EXPECT_EQ(F->getArg(0)->getNumUses(), 1u);
  Clone->eraseFromParent(); // unlinked delete
}

TEST(CloningTest, ClonePreservesPhiStructure) {
  Context Ctx;
  Module M("m", Ctx);
  Function *F = buildLoopFunction(M, "orig2");
  Function *C = cloneFunction(F, "copy2");
  unsigned Phis = 0;
  for (BasicBlock *BB : *C)
    Phis += static_cast<unsigned>(BB->phis().size());
  EXPECT_EQ(Phis, 2u);
  // Phi incoming blocks must point at *cloned* blocks.
  for (BasicBlock *BB : *C)
    for (PhiInst *P : BB->phis())
      for (unsigned K = 0; K < P->getNumIncoming(); ++K)
        EXPECT_EQ(P->getIncomingBlock(K)->getParent(), C);
}

} // namespace
