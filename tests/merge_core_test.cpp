//===- tests/merge_core_test.cpp - Merged-code generator tests ---------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
// Exercises the SalSSA code generator on the paper's motivating example
// (Fig 2/3) and on targeted scenarios for each mechanism: operand selects,
// label selection, xor branch fusion, commutative reordering, landing
// blocks, SSA repair and phi-node coalescing. Every merge is validated
// differentially against the originals through the interpreter.
//
//===----------------------------------------------------------------------===//

#include "align/Matcher.h"
#include "interp/Interpreter.h"
#include "ir/IRBuilder.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "merge/FunctionMerger.h"
#include "transforms/Cloning.h"
#include <gtest/gtest.h>

using namespace salssa;

namespace {

/// Test fixture owning a module with the external callees the examples use.
class MergeCoreTest : public ::testing::Test {
protected:
  void SetUp() override {
    M = std::make_unique<Module>("m", Ctx);
    Type *I32 = Ctx.int32Ty();
    Start = M->createFunction("start",
                              Ctx.types().getFunctionTy(I32, {I32}));
    Body = M->createFunction("body", Ctx.types().getFunctionTy(I32, {I32}));
    Other =
        M->createFunction("other", Ctx.types().getFunctionTy(I32, {I32}));
    End = M->createFunction("end", Ctx.types().getFunctionTy(I32, {I32}));
  }

  /// Builds F1 from Fig 2 of the paper.
  Function *buildFig2F1() {
    Type *I32 = Ctx.int32Ty();
    Function *F =
        M->createFunction("fig2.f1", Ctx.types().getFunctionTy(I32, {I32}));
    BasicBlock *L1 = F->createBlock("L1");
    BasicBlock *L2 = F->createBlock("L2");
    BasicBlock *L3 = F->createBlock("L3");
    BasicBlock *L4 = F->createBlock("L4");
    IRBuilder B(Ctx, L1);
    Value *X1 = B.createCall(Start, {F->getArg(0)}, "x1");
    Value *X2 = B.createICmp(CmpPredicate::SLT, X1, Ctx.getInt32(0), "x2");
    B.createCondBr(X2, L2, L3);
    B.setInsertPoint(L2);
    Value *X3 = B.createCall(Body, {X1}, "x3");
    B.createBr(L4);
    B.setInsertPoint(L3);
    Value *X4 = B.createCall(Other, {X1}, "x4");
    B.createBr(L4);
    B.setInsertPoint(L4);
    PhiInst *X5 = B.createPhi(I32, "x5");
    X5->addIncoming(X3, L2);
    X5->addIncoming(X4, L3);
    Value *X6 = B.createCall(End, {X5}, "x6");
    B.createRet(X6);
    return F;
  }

  /// Builds F2 from Fig 2 of the paper (the loop variant).
  Function *buildFig2F2() {
    Type *I32 = Ctx.int32Ty();
    Function *F =
        M->createFunction("fig2.f2", Ctx.types().getFunctionTy(I32, {I32}));
    BasicBlock *L1 = F->createBlock("L1");
    BasicBlock *L2 = F->createBlock("L2");
    BasicBlock *L3 = F->createBlock("L3");
    BasicBlock *L4 = F->createBlock("L4");
    IRBuilder B(Ctx, L1);
    Value *V1 = B.createCall(Start, {F->getArg(0)}, "v1");
    B.createBr(L2);
    B.setInsertPoint(L2);
    PhiInst *V2 = B.createPhi(I32, "v2");
    Value *V3 = B.createICmp(CmpPredicate::NE, V2, Ctx.getInt32(0), "v3");
    B.createCondBr(V3, L3, L4);
    B.setInsertPoint(L3);
    Value *V4 = B.createCall(Body, {V2}, "v4");
    B.createBr(L2);
    V2->addIncoming(V1, L1);
    V2->addIncoming(V4, L3);
    B.setInsertPoint(L4);
    Value *V5 = B.createCall(End, {V2}, "v5");
    B.createRet(V5);
    return F;
  }

  /// Clones the pair, merges the originals, commits, and checks that the
  /// thunked originals behave exactly like the pristine clones on the
  /// given inputs. Returns the attempt for further inspection.
  MergeAttempt mergeAndCheck(Function *F1, Function *F2,
                             const MergeCodeGenOptions &Options,
                             const std::vector<int64_t> &Inputs,
                             unsigned ThrowPercent = 0) {
    Function *Ref1 = cloneFunction(F1, F1->getName() + ".ref");
    Function *Ref2 = cloneFunction(F2, F2->getName() + ".ref");
    MergeAttempt Attempt = attemptMerge(
        *F1, *F2, Options, TargetArch::X86Like,
        estimateFunctionSize(*F1, TargetArch::X86Like),
        estimateFunctionSize(*F2, TargetArch::X86Like));
    EXPECT_TRUE(Attempt.Valid);
    VerifierReport R = verifyFunction(*Attempt.Gen.Merged);
    EXPECT_TRUE(R.ok()) << R.str() << printFunction(*Attempt.Gen.Merged);
    commitMerge(Attempt, Ctx);
    EXPECT_TRUE(verifyModule(*M).ok()) << verifyModule(*M).str();

    ExecOptions Opts;
    Opts.ExternalThrowPercent = ThrowPercent;
    Opts.MaxSteps = 100000;
    Interpreter Interp(*M, Opts);
    // Convergent external semantics so loops driven by external results
    // terminate (body halves its input toward zero).
    Interp.registerNative("body", [](const std::vector<RuntimeValue> &A) {
      return RuntimeValue::makeInt(
          static_cast<uint64_t>(static_cast<int64_t>(
              static_cast<int32_t>(A[0].Bits)) / 2) & 0xFFFFFFFFu);
    });
    for (int64_t In : Inputs) {
      for (auto [Orig, Ref] : {std::pair{F1, Ref1}, std::pair{F2, Ref2}}) {
        std::vector<RuntimeValue> Args;
        for (unsigned A = 0; A < Orig->getNumArgs(); ++A)
          Args.push_back(RuntimeValue::makeInt(static_cast<uint64_t>(In)));
        Interp.resetMemory();
        ExecResult RRef = Interp.run(Ref, Args);
        Interp.resetMemory();
        ExecResult RNew = Interp.run(Orig, Args);
        EXPECT_TRUE(behaviourallyEqual(RRef, RNew))
            << "mismatch for " << Orig->getName() << " on input " << In
            << "\n"
            << printFunction(*Attempt.Gen.Merged);
      }
    }
    return Attempt;
  }

  Context Ctx;
  std::unique_ptr<Module> M;
  Function *Start = nullptr;
  Function *Body = nullptr;
  Function *Other = nullptr;
  Function *End = nullptr;
};

TEST_F(MergeCoreTest, MotivatingExampleMergesAndBehaves) {
  Function *F1 = buildFig2F1();
  Function *F2 = buildFig2F2();
  ASSERT_TRUE(verifyFunction(*F1).ok()) << verifyFunction(*F1).str();
  ASSERT_TRUE(verifyFunction(*F2).ok()) << verifyFunction(*F2).str();
  MergeAttempt A = mergeAndCheck(
      F1, F2, MergeCodeGenOptions::forTechnique(MergeTechnique::SalSSA),
      {-7, -1, 0, 1, 5, 42});
  // The four calls and the ret must have merged (start, body, end, cmp do
  // not all match — cmp predicates differ — but start/body/end/ret do).
  EXPECT_GE(A.Stats.MatchedPairs, 4u);
  // The automated merge keeps repair phis and dispatch branches that the
  // paper's hand-merged Fig 3 does not; it must still stay well below the
  // FMSA outcome for this example (50 instructions, per §3 of the paper).
  EXPECT_LE(A.Gen.Merged->getInstructionCount(), 30u);
}

TEST_F(MergeCoreTest, IdenticalFunctionsMergeNearPerfectly) {
  Type *I32 = Ctx.int32Ty();
  auto Build = [&](const std::string &Name) {
    Function *F =
        M->createFunction(Name, Ctx.types().getFunctionTy(I32, {I32, I32}));
    IRBuilder B(Ctx, F->createBlock("entry"));
    Value *V = B.createAdd(F->getArg(0), F->getArg(1), "s");
    // Enough body for the merge to amortize the two thunks.
    for (int K = 1; K <= 8; ++K)
      V = B.createMul(B.createAdd(V, Ctx.getInt32(static_cast<uint64_t>(K))),
                      F->getArg(0));
    V = B.createCall(Body, {V});
    V = B.createCall(Other, {V});
    B.createRet(B.createCall(End, {V}, "e"));
    return F;
  };
  Function *F1 = Build("twin.a");
  Function *F2 = Build("twin.b");
  MergeAttempt A = mergeAndCheck(
      F1, F2, MergeCodeGenOptions::forTechnique(MergeTechnique::SalSSA),
      {0, 3, -4, 100});
  // Everything matches; no selects needed.
  EXPECT_EQ(A.Stats.SelectsInserted, 0u);
  EXPECT_EQ(A.Stats.LabelSelectionBlocks, 0u);
  EXPECT_TRUE(A.Stats.Profitable);
  // Merged body is essentially one copy of the original (21 instrs).
  EXPECT_LE(A.Gen.Merged->getInstructionCount(), 23u);
}

TEST_F(MergeCoreTest, OperandMismatchCreatesSelect) {
  Type *I32 = Ctx.int32Ty();
  auto Build = [&](const std::string &Name, int Const) {
    Function *F =
        M->createFunction(Name, Ctx.types().getFunctionTy(I32, {I32}));
    IRBuilder B(Ctx, F->createBlock("entry"));
    Value *S = B.createAdd(F->getArg(0),
                           Ctx.getInt32(static_cast<uint64_t>(Const)), "s");
    // A second, different-constant user keeps the add from simplifying.
    Value *T = B.createMul(S, F->getArg(0), "t");
    B.createRet(T);
    return F;
  };
  Function *F1 = Build("selc.a", 10);
  Function *F2 = Build("selc.b", 20);
  MergeAttempt A = mergeAndCheck(
      F1, F2, MergeCodeGenOptions::forTechnique(MergeTechnique::SalSSA),
      {0, 1, -3, 7});
  EXPECT_GE(A.Stats.SelectsInserted, 1u);
}

TEST_F(MergeCoreTest, CommutativeReorderingAvoidsSelects) {
  Type *I32 = Ctx.int32Ty();
  // F1: add(%a, %b); F2: add(%b, %a) — swapped operands of a commutative
  // op (Fig 9 of the paper).
  auto Build = [&](const std::string &Name, bool Swapped) {
    Function *F =
        M->createFunction(Name, Ctx.types().getFunctionTy(I32, {I32, I32}));
    IRBuilder B(Ctx, F->createBlock("entry"));
    Value *L = Swapped ? F->getArg(1) : F->getArg(0);
    Value *R = Swapped ? F->getArg(0) : F->getArg(1);
    B.createRet(B.createAdd(L, R, "s"));
    return F;
  };
  Function *F1 = Build("comm.a", false);
  Function *F2 = Build("comm.b", true);
  MergeCodeGenOptions WithReorder =
      MergeCodeGenOptions::forTechnique(MergeTechnique::SalSSA);
  MergeAttempt A = mergeAndCheck(F1, F2, WithReorder, {1, 2, 9});
  EXPECT_EQ(A.Stats.SelectsInserted, 0u);

  // Ablation: without reordering, the same pair needs selects.
  Function *F3 = Build("comm.c", false);
  Function *F4 = Build("comm.d", true);
  MergeCodeGenOptions NoReorder = WithReorder;
  NoReorder.EnableOperandReordering = false;
  MergeAttempt B2 = mergeAndCheck(F3, F4, NoReorder, {1, 2, 9});
  EXPECT_GE(B2.Stats.SelectsInserted, 1u);
}

TEST_F(MergeCoreTest, XorBranchFusionOnCrossedBranches) {
  Type *I32 = Ctx.int32Ty();
  // F1: br c, T, E with T: ret call body(x), E: ret call other(x)
  // F2: identical but with swapped branch targets (Fig 11).
  auto Build = [&](const std::string &Name, bool Crossed) {
    Function *F =
        M->createFunction(Name, Ctx.types().getFunctionTy(I32, {I32}));
    BasicBlock *Entry = F->createBlock("entry");
    BasicBlock *T = F->createBlock("t");
    BasicBlock *E = F->createBlock("e");
    IRBuilder B(Ctx, Entry);
    Value *C =
        B.createICmp(CmpPredicate::SGT, F->getArg(0), Ctx.getInt32(0), "c");
    if (Crossed)
      B.createCondBr(C, E, T);
    else
      B.createCondBr(C, T, E);
    B.setInsertPoint(T);
    B.createRet(B.createCall(Body, {F->getArg(0)}, "b"));
    B.setInsertPoint(E);
    B.createRet(B.createCall(Other, {F->getArg(0)}, "o"));
    return F;
  };
  Function *F1 = Build("xor.a", false);
  Function *F2 = Build("xor.b", true);
  MergeAttempt A = mergeAndCheck(
      F1, F2, MergeCodeGenOptions::forTechnique(MergeTechnique::SalSSA),
      {-5, 0, 5});
  EXPECT_EQ(A.Stats.XorFusions, 1u);
  EXPECT_EQ(A.Stats.LabelSelectionBlocks, 0u);

  // Without fusion the crossed branch needs two label selections.
  Function *F3 = Build("xor.c", false);
  Function *F4 = Build("xor.d", true);
  MergeCodeGenOptions NoXor =
      MergeCodeGenOptions::forTechnique(MergeTechnique::SalSSA);
  NoXor.EnableXorBranchFusion = false;
  MergeAttempt B2 = mergeAndCheck(F3, F4, NoXor, {-5, 0, 5});
  EXPECT_EQ(B2.Stats.XorFusions, 0u);
  EXPECT_GE(B2.Stats.LabelSelectionBlocks, 1u);
}

TEST_F(MergeCoreTest, DifferentSignaturesMerge) {
  Type *I32 = Ctx.int32Ty();
  Type *I64 = Ctx.int64Ty();
  // F1(i32), F2(i32, i64): the i32 params share a slot, i64 is F2-only.
  Function *F1 =
      M->createFunction("sig.a", Ctx.types().getFunctionTy(I32, {I32}));
  {
    IRBuilder B(Ctx, F1->createBlock("entry"));
    B.createRet(B.createCall(Body, {F1->getArg(0)}, "r"));
  }
  Function *F2 =
      M->createFunction("sig.b", Ctx.types().getFunctionTy(I32, {I32, I64}));
  {
    IRBuilder B(Ctx, F2->createBlock("entry"));
    Value *T = B.createTrunc(F2->getArg(1), I32, "t");
    Value *S = B.createAdd(F2->getArg(0), T, "s");
    B.createRet(B.createCall(Body, {S}, "r"));
  }
  MergeAttempt A = mergeAndCheck(
      F1, F2, MergeCodeGenOptions::forTechnique(MergeTechnique::SalSSA),
      {0, 2, -9});
  EXPECT_EQ(A.Gen.Signature.FnTy->getParamTypes().size(), 3u);
  EXPECT_EQ(A.Gen.Signature.ArgIndex1[0], A.Gen.Signature.ArgIndex2[0]);
}

TEST_F(MergeCoreTest, PhiCoalescingReducesInstructions) {
  Type *I32 = Ctx.int32Ty();
  // Both functions compute a value in a (non-matching) way and pass it to
  // a matching call: the classic Fig 14 shape. The non-matching defs are
  // disjoint and feed the same merged call through a select.
  auto Build = [&](const std::string &Name, bool Variant) {
    Function *F =
        M->createFunction(Name, Ctx.types().getFunctionTy(I32, {I32}));
    BasicBlock *Entry = F->createBlock("entry");
    BasicBlock *Work = F->createBlock("work");
    BasicBlock *Done = F->createBlock("done");
    IRBuilder B(Ctx, Entry);
    Value *C =
        B.createICmp(CmpPredicate::SGT, F->getArg(0), Ctx.getInt32(0), "c");
    B.createCondBr(C, Work, Done);
    B.setInsertPoint(Work);
    // The non-matching part: different opcodes entirely.
    Value *V;
    if (Variant)
      V = B.createMul(F->getArg(0), Ctx.getInt32(3), "v");
    else
      V = B.createSub(Ctx.getInt32(100), F->getArg(0), "v");
    Value *W = B.createCall(Body, {V}, "w");
    B.createBr(Done);
    B.setInsertPoint(Done);
    PhiInst *P = B.createPhi(I32, "p");
    P->addIncoming(F->getArg(0), Entry);
    P->addIncoming(W, Work);
    B.createRet(B.createCall(End, {P}, "r"));
    return F;
  };
  Function *F1 = Build("pc.a", false);
  Function *F2 = Build("pc.b", true);
  Function *F3 = Build("pc.c", false);
  Function *F4 = Build("pc.d", true);

  MergeCodeGenOptions WithPC =
      MergeCodeGenOptions::forTechnique(MergeTechnique::SalSSA);
  MergeAttempt A = mergeAndCheck(F1, F2, WithPC, {-3, 0, 1, 10});

  MergeCodeGenOptions NoPC = WithPC;
  NoPC.EnablePhiCoalescing = false;
  MergeAttempt B2 = mergeAndCheck(F3, F4, NoPC, {-3, 0, 1, 10});

  // Coalescing must not be larger, and usually strictly smaller.
  EXPECT_LE(A.Gen.Merged->getInstructionCount(),
            B2.Gen.Merged->getInstructionCount());
}

TEST_F(MergeCoreTest, InvokeLandingPadMergesCorrectly) {
  Type *I32 = Ctx.int32Ty();
  auto Build = [&](const std::string &Name, Function *Callee) {
    Function *F =
        M->createFunction(Name, Ctx.types().getFunctionTy(I32, {I32}));
    BasicBlock *Entry = F->createBlock("entry");
    BasicBlock *Normal = F->createBlock("normal");
    BasicBlock *Unwind = F->createBlock("unwind");
    IRBuilder B(Ctx, Entry);
    InvokeInst *Inv =
        B.createInvoke(Callee, {F->getArg(0)}, Normal, Unwind, "r");
    B.setInsertPoint(Normal);
    B.createRet(Inv);
    B.setInsertPoint(Unwind);
    B.createLandingPad("lp");
    B.createRet(Ctx.getInt32(0xE0));
    return F;
  };
  Function *F1 = Build("eh.a", Body);
  Function *F2 = Build("eh.b", Body);
  // Both throwing and non-throwing environments must agree.
  MergeAttempt A = mergeAndCheck(
      F1, F2, MergeCodeGenOptions::forTechnique(MergeTechnique::SalSSA),
      {1, 2, 3}, /*ThrowPercent=*/0);
  EXPECT_TRUE(A.Valid);

  Function *F3 = Build("eh.c", Body);
  Function *F4 = Build("eh.d", Body);
  mergeAndCheck(F3, F4,
                MergeCodeGenOptions::forTechnique(MergeTechnique::SalSSA),
                {1, 2, 3}, /*ThrowPercent=*/60);
}

TEST_F(MergeCoreTest, MergedFunctionRunsBothSidesViaFid) {
  Function *F1 = buildFig2F1();
  Function *F2 = buildFig2F2();
  MergeAttempt A = mergeAndCheck(
      F1, F2, MergeCodeGenOptions::forTechnique(MergeTechnique::SalSSA),
      {3});
  // Direct dispatch through the merged function: fid selects the body.
  Interpreter Interp(*M);
  std::vector<Type *> Params = A.Gen.Signature.FnTy->getParamTypes();
  std::vector<RuntimeValue> Args1(Params.size(),
                                  RuntimeValue::makeInt(5));
  Args1[0] = RuntimeValue::makeInt(1); // fid = true -> F1
  ExecResult R1 = Interp.run(A.Gen.Merged, Args1);
  EXPECT_TRUE(R1.ok()) << R1.TrapReason;
  EXPECT_FALSE(R1.Trace.empty());
  EXPECT_EQ(R1.Trace.front().Callee, "start");
}

} // namespace
