//===- tests/decision_cache_test.cpp - Persistent decision cache contract ------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
// The cross-run decision cache contract (merge/DecisionCache.h):
//
//  1. Cold runs (cache enabled, no file) are bit-identical to the
//     no-cache pipeline across selection modes x threads x shards, and
//     leave a valid cache file behind.
//  2. Warm runs over unchanged input replay every entry — zero ranking
//     work, zero alignment work — and emit byte-identical merged
//     modules, at every shard and thread count, rewriting the cache
//     file byte-identically (sorted serialization).
//  3. Damaged or incompatible files self-invalidate: the load is
//     refused (Stats.CacheLoadRejected), the run proceeds cold and
//     correct, and a fresh cache is written. Missing files are plain
//     cold runs, not rejections.
//  4. CacheIO fault injection degrades both load and save to the
//     no-cache behavior — a broken cache can cost the fast path, never
//     a merge.
//
//===----------------------------------------------------------------------===//

#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "merge/DecisionCache.h"
#include "merge/MergeDriver.h"
#include "support/Serialization.h"
#include "workloads/Suites.h"
#include <cstdio>
#include <gtest/gtest.h>

using namespace salssa;

namespace {

/// Clone-heavy, multi-class population with drift: plenty of near-miss
/// attempts (so slates have real non-winners to skip on replay).
BenchmarkProfile cacheProfile(uint64_t Seed) {
  BenchmarkProfile P;
  P.Name = "cache";
  P.NumFunctions = 40;
  P.MinSize = 6;
  P.AvgSize = 36;
  P.MaxSize = 120;
  P.CloneFamilyPercent = 55;
  P.MaxFamily = 5;
  P.FamilyDriftPercent = 10;
  P.LoopPercent = 50;
  P.RetTypeVariety = 3;
  P.Seed = Seed;
  return P;
}

std::string cachePath(const std::string &Tag) {
  std::string P = "salssa_dcache_" + Tag + ".bin";
  std::remove(P.c_str()); // every test starts from a missing file
  return P;
}

struct RunOutcome {
  MergeDriverStats Stats;
  /// (Name1, Name2, Committed) — attempt *outcomes* are deliberately
  /// excluded: a warm run records skipped non-winners as CacheSkipped
  /// where the cold run saw Completed, by design.
  std::vector<std::tuple<std::string, std::string, bool>> Records;
  std::string Print;
  bool VerifierOk = false;
};

RunOutcome runConfig(const BenchmarkProfile &P, MergeDriverOptions DO) {
  Context Ctx;
  std::unique_ptr<Module> M = buildBenchmarkModule(P, Ctx);
  RunOutcome O;
  O.Stats = runFunctionMerging(*M, DO);
  for (const MergeRecord &R : O.Stats.Records)
    O.Records.emplace_back(R.Name1, R.Name2, R.Committed);
  O.Print = printModule(*M);
  O.VerifierOk = verifyModule(*M).ok();
  return O;
}

void expectSameMerges(const RunOutcome &Got, const RunOutcome &Want,
                      const std::string &Tag) {
  EXPECT_TRUE(Got.VerifierOk) << Tag;
  EXPECT_EQ(Got.Stats.CommittedMerges, Want.Stats.CommittedMerges) << Tag;
  ASSERT_EQ(Got.Records.size(), Want.Records.size()) << Tag;
  for (size_t I = 0; I < Got.Records.size(); ++I)
    EXPECT_EQ(Got.Records[I], Want.Records[I]) << Tag << " record " << I;
  EXPECT_EQ(Got.Print, Want.Print) << Tag;
}

MergeDriverOptions baseOptions() {
  MergeDriverOptions DO;
  DO.ExplorationThreshold = 3;
  return DO;
}

std::vector<uint8_t> fileBytes(const std::string &Path) {
  std::vector<uint8_t> Bytes;
  EXPECT_TRUE(readFileBytes(Path, Bytes)) << Path;
  return Bytes;
}

//===----------------------------------------------------------------------===//
// Cold runs
//===----------------------------------------------------------------------===//

TEST(DecisionCacheTest, ColdRunBitIdenticalToNoCachePipeline) {
  BenchmarkProfile P = cacheProfile(11);
  for (SelectionStrategy Sel :
       {SelectionStrategy::Distance, SelectionStrategy::Profit,
        SelectionStrategy::Adaptive})
    for (unsigned Shards : {1u, 4u})
      for (unsigned NT : {1u, 4u}) {
        MergeDriverOptions Plain = baseOptions();
        Plain.Selection = Sel;
        Plain.ShardCount = Shards;
        Plain.NumThreads = NT;
        RunOutcome Want = runConfig(P, Plain);
        std::string Tag = "mode=" + std::to_string(int(Sel)) +
                          " shards=" + std::to_string(Shards) +
                          " threads=" + std::to_string(NT);
        MergeDriverOptions Cached = Plain;
        Cached.DecisionCachePath = cachePath("cold_" + Tag);
        RunOutcome Got = runConfig(P, Cached);
        expectSameMerges(Got, Want, Tag);
        // Stats parity on the authoritative serial counters too.
        EXPECT_EQ(Got.Stats.Attempts, Want.Stats.Attempts) << Tag;
        EXPECT_EQ(Got.Stats.ProfitableMerges, Want.Stats.ProfitableMerges)
            << Tag;
        EXPECT_EQ(Got.Stats.CacheHits, 0u) << Tag;
        EXPECT_GT(Got.Stats.CacheMisses, 0u) << Tag;
        EXPECT_EQ(Got.Stats.CacheLoadRejected, 0u) << Tag;
        // ... and a cache file exists afterwards.
        EXPECT_FALSE(fileBytes(Cached.DecisionCachePath).empty()) << Tag;
        std::remove(Cached.DecisionCachePath.c_str());
      }
}

//===----------------------------------------------------------------------===//
// Warm runs
//===----------------------------------------------------------------------===//

TEST(DecisionCacheTest, WarmRunReplaysByteIdenticallyWithZeroAlignmentWork) {
  BenchmarkProfile P = cacheProfile(13);
  for (SelectionStrategy Sel :
       {SelectionStrategy::Distance, SelectionStrategy::Profit,
        SelectionStrategy::Adaptive}) {
    MergeDriverOptions DO = baseOptions();
    DO.Selection = Sel;
    DO.DecisionCachePath =
        cachePath("warm_mode" + std::to_string(int(Sel)));
    std::string Tag = "mode=" + std::to_string(int(Sel));
    RunOutcome Cold = runConfig(P, DO);
    ASSERT_TRUE(Cold.VerifierOk) << Tag;
    ASSERT_GT(Cold.Stats.CommittedMerges, 0u) << Tag;
    std::vector<uint8_t> ColdFile = fileBytes(DO.DecisionCachePath);

    RunOutcome Warm = runConfig(P, DO);
    expectSameMerges(Warm, Cold, Tag + " warm");
    // Every entry replays: no live entries, no ranking, no aligner.
    EXPECT_GT(Warm.Stats.CacheHits, 0u) << Tag;
    EXPECT_EQ(Warm.Stats.CacheMisses, 0u) << Tag;
    EXPECT_GT(Warm.Stats.CacheSkips, 0u) << Tag;
    EXPECT_EQ(Warm.Stats.PairingDistanceCalls, 0u) << Tag;
    EXPECT_EQ(Warm.Stats.PeakAlignmentBytes, 0u) << Tag;
    // Only winners execute attempts on a warm run.
    EXPECT_EQ(Warm.Stats.Attempts, Warm.Stats.CommittedMerges) << Tag;
    EXPECT_LT(Warm.Stats.Attempts, Cold.Stats.Attempts) << Tag;
    // The adaptive trajectory replays too.
    EXPECT_EQ(Warm.Stats.AdaptiveThresholdMax, Cold.Stats.AdaptiveThresholdMax)
        << Tag;
    // The rewritten cache file is byte-identical (sorted serialization,
    // same decisions).
    EXPECT_EQ(fileBytes(DO.DecisionCachePath), ColdFile) << Tag;
    std::remove(DO.DecisionCachePath.c_str());
  }
}

TEST(DecisionCacheTest, OneCacheFileWarmsEveryShardAndThreadCount) {
  BenchmarkProfile P = cacheProfile(17);
  MergeDriverOptions DO = baseOptions();
  DO.DecisionCachePath = cachePath("warm_sharded");
  RunOutcome Cold = runConfig(P, DO);
  ASSERT_GT(Cold.Stats.CommittedMerges, 0u);
  std::vector<uint8_t> ColdFile = fileBytes(DO.DecisionCachePath);
  for (unsigned Shards : {1u, 4u})
    for (unsigned NT : {1u, 4u}) {
      MergeDriverOptions Warm = DO;
      Warm.ShardCount = Shards;
      Warm.NumThreads = NT;
      std::string Tag = "shards=" + std::to_string(Shards) +
                        " threads=" + std::to_string(NT);
      RunOutcome O = runConfig(P, Warm);
      expectSameMerges(O, Cold, Tag);
      EXPECT_GT(O.Stats.CacheHits, 0u) << Tag;
      EXPECT_EQ(O.Stats.CacheMisses, 0u) << Tag;
      // Zero pairing work at every plan — including the parallel
      // unsharded one, where the snapshot loop must predict partners the
      // replays will consume instead of ranking them (they carry no
      // cached decision of their own: the cold run consumed them before
      // their turn).
      EXPECT_EQ(O.Stats.PairingDistanceCalls, 0u) << Tag;
      // The shared file is rewritten byte-identically by every plan.
      EXPECT_EQ(fileBytes(DO.DecisionCachePath), ColdFile) << Tag;
    }
  std::remove(DO.DecisionCachePath.c_str());
}

TEST(DecisionCacheTest, ComposesWithHashClustering) {
  BenchmarkProfile P = cacheProfile(19);
  P.FamilyDriftPercent = 0; // exact clones: give the fast path targets
  MergeDriverOptions DO = baseOptions();
  DO.HashClustering = true;
  DO.DecisionCachePath = cachePath("warm_clustered");
  RunOutcome Cold = runConfig(P, DO);
  ASSERT_TRUE(Cold.VerifierOk);
  ASSERT_GT(Cold.Stats.HashClusterCommits, 0u);
  RunOutcome Warm = runConfig(P, DO);
  expectSameMerges(Warm, Cold, "clustered warm");
  EXPECT_EQ(Warm.Stats.HashClusterCommits, Cold.Stats.HashClusterCommits);
  EXPECT_EQ(Warm.Stats.CacheMisses, 0u);
  std::remove(DO.DecisionCachePath.c_str());
}

//===----------------------------------------------------------------------===//
// Invalidation
//===----------------------------------------------------------------------===//

TEST(DecisionCacheTest, MissingFileIsAColdRunNotARejection) {
  BenchmarkProfile P = cacheProfile(23);
  MergeDriverOptions DO = baseOptions();
  DO.DecisionCachePath = cachePath("missing");
  RunOutcome O = runConfig(P, DO);
  EXPECT_TRUE(O.VerifierOk);
  EXPECT_EQ(O.Stats.CacheLoadRejected, 0u);
  EXPECT_EQ(O.Stats.CacheHits, 0u);
  EXPECT_GT(O.Stats.CacheMisses, 0u);
  std::remove(DO.DecisionCachePath.c_str());
}

TEST(DecisionCacheTest, DamagedFilesAreRejectedWithACounterNotACrash) {
  BenchmarkProfile P = cacheProfile(29);
  MergeDriverOptions DO = baseOptions();
  DO.DecisionCachePath = cachePath("damaged");
  RunOutcome Cold = runConfig(P, DO);
  ASSERT_GT(Cold.Stats.CommittedMerges, 0u);
  std::vector<uint8_t> Valid = fileBytes(DO.DecisionCachePath);
  ASSERT_GT(Valid.size(), 64u);

  auto corrupt = [&](const char *Tag,
                     std::vector<uint8_t> (*Damage)(std::vector<uint8_t>)) {
    ASSERT_TRUE(writeFileBytes(DO.DecisionCachePath, Damage(Valid))) << Tag;
    RunOutcome O = runConfig(P, DO);
    expectSameMerges(O, Cold, Tag);
    EXPECT_EQ(O.Stats.CacheLoadRejected, 1u) << Tag;
    EXPECT_EQ(O.Stats.CacheHits, 0u) << Tag;
    // The damaged file was replaced by a fresh, valid recording.
    EXPECT_EQ(fileBytes(DO.DecisionCachePath), Valid) << Tag;
  };
  // A flipped payload byte (checksum mismatch).
  corrupt("bitflip", +[](std::vector<uint8_t> B) {
    B[B.size() / 2] ^= 0x40;
    return B;
  });
  // Truncation (payload size mismatch).
  corrupt("truncated", +[](std::vector<uint8_t> B) {
    B.resize(B.size() / 2);
    return B;
  });
  // A foreign file (bad magic).
  corrupt("bad-magic", +[](std::vector<uint8_t> B) {
    B[0] ^= 0xff;
    return B;
  });
  // A future format version.
  corrupt("version-bump", +[](std::vector<uint8_t> B) {
    B[4] += 1;
    return B;
  });
  std::remove(DO.DecisionCachePath.c_str());
}

TEST(DecisionCacheTest, OptionChangesInvalidateTheFile) {
  // A cache recorded at t=3 must be refused by a t=1 run (the decision
  // geometry changed), which then records its own decisions.
  BenchmarkProfile P = cacheProfile(31);
  MergeDriverOptions Wide = baseOptions();
  Wide.DecisionCachePath = cachePath("options");
  runConfig(P, Wide);

  MergeDriverOptions Narrow = Wide;
  Narrow.ExplorationThreshold = 1;
  RunOutcome NoCacheNarrow = runConfig(P, [&] {
    MergeDriverOptions D = Narrow;
    D.DecisionCachePath.clear();
    return D;
  }());
  RunOutcome Got = runConfig(P, Narrow);
  expectSameMerges(Got, NoCacheNarrow, "narrow after wide");
  EXPECT_EQ(Got.Stats.CacheLoadRejected, 1u);
  // The file now carries the narrow fingerprint: a warm narrow run hits.
  RunOutcome Warm = runConfig(P, Narrow);
  EXPECT_EQ(Warm.Stats.CacheLoadRejected, 0u);
  EXPECT_GT(Warm.Stats.CacheHits, 0u);
  std::remove(Narrow.DecisionCachePath.c_str());
}

TEST(DecisionCacheTest, CanonicalizeFlagInvalidatesTheFile) {
  // Canonicalize changes which pairs rank as candidates (hashes are
  // computed over the canonical shadow view), so it is part of the
  // decision geometry: a cache recorded with the flag off must be
  // refused by a run with it on, and vice versa.
  BenchmarkProfile P = cacheProfile(41);
  P.SyntacticDriftPercent = 25; // make the two geometries actually differ
  MergeDriverOptions Raw = baseOptions();
  Raw.DecisionCachePath = cachePath("canon");
  runConfig(P, Raw);

  MergeDriverOptions Canon = Raw;
  Canon.Canonicalize = true;
  RunOutcome NoCacheCanon = runConfig(P, [&] {
    MergeDriverOptions D = Canon;
    D.DecisionCachePath.clear();
    return D;
  }());
  RunOutcome Got = runConfig(P, Canon);
  expectSameMerges(Got, NoCacheCanon, "canon after raw");
  EXPECT_EQ(Got.Stats.CacheLoadRejected, 1u);
  // The file now carries the canonical fingerprint: warm canon run hits,
  // and a raw run is refused right back.
  RunOutcome Warm = runConfig(P, Canon);
  EXPECT_EQ(Warm.Stats.CacheLoadRejected, 0u);
  EXPECT_GT(Warm.Stats.CacheHits, 0u);
  RunOutcome RawAgain = runConfig(P, Raw);
  EXPECT_EQ(RawAgain.Stats.CacheLoadRejected, 1u);
  std::remove(Raw.DecisionCachePath.c_str());
}

//===----------------------------------------------------------------------===//
// CacheIO fault injection
//===----------------------------------------------------------------------===//

TEST(DecisionCacheTest, CacheIOFaultsDegradeToAColdRunNeverAWrongMerge) {
  BenchmarkProfile P = cacheProfile(37);
  MergeDriverOptions DO = baseOptions();
  DO.DecisionCachePath = cachePath("cacheio");
  runConfig(P, DO); // leaves a valid warm file behind
  std::vector<uint8_t> Valid = fileBytes(DO.DecisionCachePath);

  MergeDriverOptions Plain = baseOptions();
  RunOutcome Want = runConfig(P, Plain);

  MergeDriverOptions Faulted = DO;
  Faulted.Faults = FaultInjectionConfig::parse("seed=2,cacheio=1000");
  ASSERT_TRUE(Faulted.Faults.armed());
  ASSERT_EQ(Faulted.Faults.rate(FaultKind::CacheIO), 1000u);
  RunOutcome Got = runConfig(P, Faulted);
  // The valid file is there, but the injected I/O fault refuses it: the
  // run is a plain cold run, and the failed save leaves the file alone.
  expectSameMerges(Got, Want, "cacheio-faulted");
  EXPECT_EQ(Got.Stats.CacheLoadRejected, 1u);
  EXPECT_EQ(Got.Stats.CacheHits, 0u);
  EXPECT_EQ(fileBytes(DO.DecisionCachePath), Valid);
  std::remove(DO.DecisionCachePath.c_str());
}

//===----------------------------------------------------------------------===//
// The container itself
//===----------------------------------------------------------------------===//

TEST(DecisionCacheTest, RoundTripPreservesDecisionsExactly) {
  DecisionCache Cache;
  std::vector<DecisionCacheUpdate> Updates;
  CachedDecision Win;
  CachedAttempt Lose;
  Lose.Partner = {{0x1111, 0x2222}, 3};
  Lose.Distance = 42;
  Lose.ProfitObs = -7;
  Lose.Profitable = false;
  CachedAttempt Best;
  Best.Partner = {{0x3333, 0x4444}, 0};
  Best.Distance = 5;
  Best.ProfitObs = 99;
  Best.Profitable = true;
  Best.SeqLen1 = 3;
  Best.SeqLen2 = 2;
  Best.Align = {{0, 0}, {1, -1}, {2, 1}};
  Win.Attempts = {Lose, Best};
  Win.Winner = 1;
  Win.VoteTallied = true;
  Win.VoteWiden = true;
  Updates.push_back({{{0xabcd, 0xef01}, 7}, Win});
  Updates.push_back({{{0x9999, 0x8888}, 0}, CachedDecision{}}); // ranked dry
  Cache.apply(std::move(Updates));
  ASSERT_EQ(Cache.size(), 2u);

  std::string Path = cachePath("roundtrip");
  ASSERT_TRUE(Cache.save(Path, 0xfeedULL, nullptr));

  DecisionCache Loaded;
  ASSERT_EQ(Loaded.load(Path, 0xfeedULL, nullptr),
            DecisionCache::LoadOutcome::Loaded);
  ASSERT_EQ(Loaded.size(), 2u);
  const CachedDecision *D = Loaded.lookup({{0xabcd, 0xef01}, 7});
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->Winner, 1);
  EXPECT_TRUE(D->VoteTallied);
  EXPECT_FALSE(D->VoteShrink);
  EXPECT_TRUE(D->VoteWiden);
  ASSERT_EQ(D->Attempts.size(), 2u);
  EXPECT_EQ(D->Attempts[0].Distance, 42u);
  EXPECT_EQ(D->Attempts[0].ProfitObs, -7);
  EXPECT_EQ(D->Attempts[1].SeqLen1, 3u);
  EXPECT_EQ(D->Attempts[1].Align, Best.Align);
  const CachedDecision *Dry = Loaded.lookup({{0x9999, 0x8888}, 0});
  ASSERT_NE(Dry, nullptr);
  EXPECT_TRUE(Dry->Attempts.empty());
  EXPECT_EQ(Dry->Winner, -1);
  // A fingerprint mismatch refuses the same bytes.
  DecisionCache Refused;
  EXPECT_EQ(Refused.load(Path, 0xbeefULL, nullptr),
            DecisionCache::LoadOutcome::Rejected);
  EXPECT_TRUE(Refused.empty());
  std::remove(Path.c_str());
}

} // namespace
