//===- tests/workloads_test.cpp - Workload generator tests --------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/CFG.h"
#include "codesize/SizeModel.h"
#include "interp/Interpreter.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "merge/Fingerprint.h"
#include "workloads/Suites.h"
#include <gtest/gtest.h>

using namespace salssa;

namespace {

TEST(RandomFunctionTest, GeneratesVerifiableFunctions) {
  Context Ctx;
  Module M("gen", Ctx);
  RNG Rng(42);
  WorkloadEnvironment Env(M, Rng);
  for (unsigned I = 0; I < 30; ++I) {
    RandomFunctionOptions FO;
    FO.TargetSize = 10 + I * 7;
    FO.InvokePercent = I % 3 == 0 ? 10 : 0;
    RNG FnRng = Rng.fork(I);
    Function *F =
        generateRandomFunction(Env, FnRng, "f" + std::to_string(I), FO);
    VerifierReport R = verifyFunction(*F);
    ASSERT_TRUE(R.ok()) << "function " << I << ":\n" << R.str();
    EXPECT_GE(F->getInstructionCount(), 3u);
  }
}

TEST(RandomFunctionTest, DeterministicAcrossRuns) {
  Context Ctx1, Ctx2;
  Module M1("gen", Ctx1), M2("gen", Ctx2);
  RNG R1(7), R2(7);
  WorkloadEnvironment E1(M1, R1), E2(M2, R2);
  RandomFunctionOptions FO;
  FO.TargetSize = 50;
  RNG F1Rng = R1.fork(0), F2Rng = R2.fork(0);
  Function *F1 = generateRandomFunction(E1, F1Rng, "f", FO);
  Function *F2 = generateRandomFunction(E2, F2Rng, "f", FO);
  EXPECT_EQ(F1->getInstructionCount(), F2->getInstructionCount());
  EXPECT_EQ(F1->getNumBlocks(), F2->getNumBlocks());
  EXPECT_EQ(Fingerprint::compute(*F1).OpcodeCount,
            Fingerprint::compute(*F2).OpcodeCount);
}

TEST(RandomFunctionTest, SizeRoughlyTracksTarget) {
  Context Ctx;
  Module M("gen", Ctx);
  RNG Rng(99);
  WorkloadEnvironment Env(M, Rng);
  for (unsigned Target : {20u, 80u, 300u}) {
    RandomFunctionOptions FO;
    FO.TargetSize = Target;
    RNG FnRng = Rng.fork(Target);
    Function *F = generateRandomFunction(
        Env, FnRng, "t" + std::to_string(Target), FO);
    EXPECT_GE(F->getInstructionCount(), Target / 2);
    EXPECT_LE(F->getInstructionCount(), Target * 3);
  }
}

TEST(RandomFunctionTest, GeneratedLoopsTerminateInInterpreter) {
  Context Ctx;
  Module M("gen", Ctx);
  RNG Rng(1234);
  WorkloadEnvironment Env(M, Rng);
  RandomFunctionOptions FO;
  FO.TargetSize = 120;
  FO.LoopPercent = 80;
  RNG FnRng = Rng.fork(5);
  Function *F = generateRandomFunction(Env, FnRng, "loopy", FO);
  ExecOptions Opts;
  Opts.MaxSteps = 500000;
  Interpreter Interp(M, Opts);
  std::vector<RuntimeValue> Args(F->getNumArgs(), RuntimeValue::makeInt(9));
  ExecResult R = Interp.run(F, Args);
  EXPECT_NE(R.St, ExecResult::Status::OutOfFuel) << "non-terminating loop";
}

TEST(CloneWithDriftTest, ZeroDriftIsExactClone) {
  Context Ctx;
  Module M("gen", Ctx);
  RNG Rng(55);
  WorkloadEnvironment Env(M, Rng);
  RandomFunctionOptions FO;
  FO.TargetSize = 60;
  RNG FnRng = Rng.fork(1);
  Function *Base = generateRandomFunction(Env, FnRng, "base", FO);
  DriftOptions DO;
  DO.MutatePercent = 0;
  DO.InsertPercent = 0;
  RNG DriftRng = Rng.fork(2);
  Function *Clone = cloneWithDrift(Base, "clone", Env, DriftRng, DO);
  ASSERT_TRUE(verifyFunction(*Clone).ok());
  EXPECT_EQ(Base->getInstructionCount(), Clone->getInstructionCount());
  EXPECT_EQ(fingerprintDistance(Fingerprint::compute(*Base),
                                Fingerprint::compute(*Clone)),
            0u);
}

TEST(CloneWithDriftTest, DriftChangesButStaysValidAndSimilar) {
  Context Ctx;
  Module M("gen", Ctx);
  RNG Rng(56);
  WorkloadEnvironment Env(M, Rng);
  RandomFunctionOptions FO;
  FO.TargetSize = 100;
  RNG FnRng = Rng.fork(1);
  Function *Base = generateRandomFunction(Env, FnRng, "base", FO);
  DriftOptions DO;
  DO.MutatePercent = 15;
  DO.InsertPercent = 5;
  RNG DriftRng = Rng.fork(3);
  Function *Clone = cloneWithDrift(Base, "drifted", Env, DriftRng, DO);
  VerifierReport R = verifyFunction(*Clone);
  ASSERT_TRUE(R.ok()) << R.str();
  uint64_t D = fingerprintDistance(Fingerprint::compute(*Base),
                                   Fingerprint::compute(*Clone));
  EXPECT_GT(D, 0u);                                // something changed
  EXPECT_LT(D, Base->getInstructionCount() / 2);   // ...but not too much
}

// Runs \p A and \p B on the same argument vector in fresh interpreters
// and asserts identical observable behaviour: status, return value, and
// final global memory image.
void expectSameBehaviour(Module &M, Function *A, Function *B,
                         const std::vector<RuntimeValue> &Args) {
  ExecOptions Opts;
  Opts.MaxSteps = 500000;
  Interpreter IA(M, Opts), IB(M, Opts);
  ExecResult RA = IA.run(A, Args);
  ExecResult RB = IB.run(B, Args);
  ASSERT_EQ(static_cast<int>(RA.St), static_cast<int>(RB.St))
      << A->getName() << " vs " << B->getName();
  if (RA.St == ExecResult::Status::Ok) {
    EXPECT_EQ(static_cast<int>(RA.Return.K), static_cast<int>(RB.Return.K));
    EXPECT_EQ(RA.Return.Bits, RB.Return.Bits);
    EXPECT_EQ(RA.Return.FPVal, RB.Return.FPVal);
  }
  EXPECT_EQ(RA.GlobalMemoryHash, RB.GlobalMemoryHash);
}

TEST(CloneWithDriftTest, SyntacticDriftStaysInterpreterEquivalent) {
  Context Ctx;
  Module M("gen", Ctx);
  RNG Rng(57);
  WorkloadEnvironment Env(M, Rng);
  RandomFunctionOptions FO;
  FO.TargetSize = 90;
  FO.LoopPercent = 50;
  FO.InvokePercent = 10;
  RNG FnRng = Rng.fork(1);
  Function *Base = generateRandomFunction(Env, FnRng, "base", FO);
  DriftOptions DO;
  DO.MutatePercent = 0; // isolate the semantics-preserving axis
  DO.InsertPercent = 0;
  DO.SyntacticPercent = 45;
  RNG DriftRng = Rng.fork(4);
  Function *Clone = cloneWithDrift(Base, "syn", Env, DriftRng, DO);
  VerifierReport R = verifyFunction(*Clone);
  ASSERT_TRUE(R.ok()) << R.str();
  // The spelling must actually diverge...
  EXPECT_NE(printFunction(*Base), printFunction(*Clone));
  // ...while the behaviour never does.
  for (uint64_t V = 0; V < 8; ++V) {
    std::vector<RuntimeValue> Args(
        Base->getNumArgs(), RuntimeValue::makeInt(V * 13 + (V % 3)));
    expectSameBehaviour(M, Base, Clone, Args);
  }
}

TEST(CloneWithDriftTest, DefaultSyntacticKnobIsByteIdenticalToExplicitZero) {
  // The knob's default must be inert: a caller that never heard of
  // SyntacticPercent gets the exact clone (body and RNG stream) it got
  // before the knob existed.
  Context Ctx;
  Module M("gen", Ctx);
  RNG Rng(58);
  WorkloadEnvironment Env(M, Rng);
  RandomFunctionOptions FO;
  FO.TargetSize = 70;
  RNG FnRng = Rng.fork(1);
  Function *Base = generateRandomFunction(Env, FnRng, "base", FO);
  DriftOptions Legacy; // SyntacticPercent left at its default
  Legacy.MutatePercent = 12;
  Legacy.InsertPercent = 4;
  DriftOptions Explicit = Legacy;
  Explicit.SyntacticPercent = 0;
  RNG R1 = Rng.fork(9), R2 = R1;
  Function *C1 = cloneWithDrift(Base, "c1", Env, R1, Legacy);
  Function *C2 = cloneWithDrift(Base, "c2", Env, R2, Explicit);
  // Compare bodies; the define line carries the (distinct) names.
  std::string P1 = printFunction(*C1), P2 = printFunction(*C2);
  EXPECT_EQ(P1.substr(P1.find('\n')), P2.substr(P2.find('\n')));
  // Zero syntactic drift consumes no RNG draws: both streams sit at the
  // same position after the clone.
  EXPECT_EQ(R1.next(), R2.next());
}

TEST(SuiteTest, SyntacticDriftFamiliesAreInterpreterEquivalent) {
  // A profile with only syntactic drift builds clone families whose
  // members all behave identically — the candidate population the
  // Canonicalize shadow view exists to recover.
  Context Ctx;
  BenchmarkProfile P;
  P.Name = "syn";
  P.NumFunctions = 18;
  P.AvgSize = 35;
  P.MaxSize = 120;
  P.CloneFamilyPercent = 100;
  P.MinFamily = 3;
  P.MaxFamily = 3;
  P.FamilyDriftPercent = 0; // no semantic drift...
  P.SyntacticDriftPercent = 40; // ...only spelling changes
  P.Seed = 4242;
  std::unique_ptr<Module> M = buildBenchmarkModule(P, Ctx);
  ASSERT_TRUE(verifyModule(*M).ok()) << verifyModule(*M).str();
  unsigned FamiliesChecked = 0;
  for (Function *F : M->functions()) {
    const std::string &N = F->getName();
    auto Pos = N.rfind("_v1");
    if (F->isDeclaration() || Pos == std::string::npos ||
        Pos + 3 != N.size())
      continue;
    Function *Sibling = M->getFunction(N.substr(0, Pos) + "_v2");
    if (!Sibling)
      continue;
    ++FamiliesChecked;
    for (uint64_t V = 0; V < 4; ++V) {
      std::vector<RuntimeValue> Args(
          F->getNumArgs(), RuntimeValue::makeInt(V * 17 + 1));
      expectSameBehaviour(*M, F, Sibling, Args);
    }
  }
  EXPECT_GE(FamiliesChecked, 3u);
}

TEST(SuiteTest, MiBenchProfilesMatchTable1Counts) {
  std::vector<BenchmarkProfile> Profiles = mibenchProfiles();
  ASSERT_EQ(Profiles.size(), 23u);
  // Spot-check the Table 1 numbers the profiles must mirror.
  auto Find = [&](const std::string &N) {
    for (const auto &P : Profiles)
      if (P.Name == N)
        return P;
    ADD_FAILURE() << "missing profile " << N;
    return Profiles[0];
  };
  EXPECT_EQ(Find("CRC32").NumFunctions, 4u);
  EXPECT_EQ(Find("qsort").NumFunctions, 2u);
  EXPECT_EQ(Find("cjpeg").NumFunctions, 322u);
  EXPECT_EQ(Find("djpeg").NumFunctions, 310u);
  EXPECT_EQ(Find("typeset").NumFunctions, 362u);
  EXPECT_EQ(Find("rijndael").MinSize, 45u);
}

TEST(SuiteTest, BuildsVerifiableModules) {
  Context Ctx;
  BenchmarkProfile P;
  P.Name = "unit";
  P.NumFunctions = 25;
  P.AvgSize = 40;
  P.MaxSize = 150;
  P.CloneFamilyPercent = 40;
  P.Seed = 777;
  std::unique_ptr<Module> M = buildBenchmarkModule(P, Ctx);
  EXPECT_TRUE(verifyModule(*M).ok()) << verifyModule(*M).str();
  unsigned Defs = 0;
  for (Function *F : M->functions())
    if (!F->isDeclaration())
      ++Defs;
  EXPECT_EQ(Defs, P.NumFunctions);
  EXPECT_GT(estimateModuleSize(*M, TargetArch::X86Like), 0u);
}

TEST(SuiteTest, GiantPairGenerated) {
  Context Ctx;
  BenchmarkProfile P;
  P.Name = "giant";
  P.NumFunctions = 5;
  P.GiantPairSize = 400;
  P.Seed = 3;
  std::unique_ptr<Module> M = buildBenchmarkModule(P, Ctx);
  Function *A = M->getFunction("giant_recog_16");
  Function *B = M->getFunction("giant_recog_26");
  ASSERT_NE(A, nullptr);
  ASSERT_NE(B, nullptr);
  EXPECT_GE(A->getInstructionCount(), 200u);
  // The pair must be similar enough to rank first for each other.
  uint64_t D = fingerprintDistance(Fingerprint::compute(*A),
                                   Fingerprint::compute(*B));
  EXPECT_LT(D, A->getInstructionCount() / 2);
}

TEST(SuiteTest, ProfilesAreDeterministic) {
  Context C1, C2;
  BenchmarkProfile P = mibenchProfiles()[5]; // bitcount
  std::unique_ptr<Module> M1 = buildBenchmarkModule(P, C1);
  std::unique_ptr<Module> M2 = buildBenchmarkModule(P, C2);
  EXPECT_EQ(M1->getInstructionCount(), M2->getInstructionCount());
  EXPECT_EQ(estimateModuleSize(*M1, TargetArch::ThumbLike),
            estimateModuleSize(*M2, TargetArch::ThumbLike));
}

TEST(SuiteTest, SuiteListsComplete) {
  EXPECT_EQ(spec2006Profiles().size(), 19u);
  EXPECT_EQ(spec2017Profiles().size(), 16u);
}

} // namespace
