//===- tests/workloads_test.cpp - Workload generator tests --------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/CFG.h"
#include "codesize/SizeModel.h"
#include "interp/Interpreter.h"
#include "ir/Verifier.h"
#include "merge/Fingerprint.h"
#include "workloads/Suites.h"
#include <gtest/gtest.h>

using namespace salssa;

namespace {

TEST(RandomFunctionTest, GeneratesVerifiableFunctions) {
  Context Ctx;
  Module M("gen", Ctx);
  RNG Rng(42);
  WorkloadEnvironment Env(M, Rng);
  for (unsigned I = 0; I < 30; ++I) {
    RandomFunctionOptions FO;
    FO.TargetSize = 10 + I * 7;
    FO.InvokePercent = I % 3 == 0 ? 10 : 0;
    RNG FnRng = Rng.fork(I);
    Function *F =
        generateRandomFunction(Env, FnRng, "f" + std::to_string(I), FO);
    VerifierReport R = verifyFunction(*F);
    ASSERT_TRUE(R.ok()) << "function " << I << ":\n" << R.str();
    EXPECT_GE(F->getInstructionCount(), 3u);
  }
}

TEST(RandomFunctionTest, DeterministicAcrossRuns) {
  Context Ctx1, Ctx2;
  Module M1("gen", Ctx1), M2("gen", Ctx2);
  RNG R1(7), R2(7);
  WorkloadEnvironment E1(M1, R1), E2(M2, R2);
  RandomFunctionOptions FO;
  FO.TargetSize = 50;
  RNG F1Rng = R1.fork(0), F2Rng = R2.fork(0);
  Function *F1 = generateRandomFunction(E1, F1Rng, "f", FO);
  Function *F2 = generateRandomFunction(E2, F2Rng, "f", FO);
  EXPECT_EQ(F1->getInstructionCount(), F2->getInstructionCount());
  EXPECT_EQ(F1->getNumBlocks(), F2->getNumBlocks());
  EXPECT_EQ(Fingerprint::compute(*F1).OpcodeCount,
            Fingerprint::compute(*F2).OpcodeCount);
}

TEST(RandomFunctionTest, SizeRoughlyTracksTarget) {
  Context Ctx;
  Module M("gen", Ctx);
  RNG Rng(99);
  WorkloadEnvironment Env(M, Rng);
  for (unsigned Target : {20u, 80u, 300u}) {
    RandomFunctionOptions FO;
    FO.TargetSize = Target;
    RNG FnRng = Rng.fork(Target);
    Function *F = generateRandomFunction(
        Env, FnRng, "t" + std::to_string(Target), FO);
    EXPECT_GE(F->getInstructionCount(), Target / 2);
    EXPECT_LE(F->getInstructionCount(), Target * 3);
  }
}

TEST(RandomFunctionTest, GeneratedLoopsTerminateInInterpreter) {
  Context Ctx;
  Module M("gen", Ctx);
  RNG Rng(1234);
  WorkloadEnvironment Env(M, Rng);
  RandomFunctionOptions FO;
  FO.TargetSize = 120;
  FO.LoopPercent = 80;
  RNG FnRng = Rng.fork(5);
  Function *F = generateRandomFunction(Env, FnRng, "loopy", FO);
  ExecOptions Opts;
  Opts.MaxSteps = 500000;
  Interpreter Interp(M, Opts);
  std::vector<RuntimeValue> Args(F->getNumArgs(), RuntimeValue::makeInt(9));
  ExecResult R = Interp.run(F, Args);
  EXPECT_NE(R.St, ExecResult::Status::OutOfFuel) << "non-terminating loop";
}

TEST(CloneWithDriftTest, ZeroDriftIsExactClone) {
  Context Ctx;
  Module M("gen", Ctx);
  RNG Rng(55);
  WorkloadEnvironment Env(M, Rng);
  RandomFunctionOptions FO;
  FO.TargetSize = 60;
  RNG FnRng = Rng.fork(1);
  Function *Base = generateRandomFunction(Env, FnRng, "base", FO);
  DriftOptions DO;
  DO.MutatePercent = 0;
  DO.InsertPercent = 0;
  RNG DriftRng = Rng.fork(2);
  Function *Clone = cloneWithDrift(Base, "clone", Env, DriftRng, DO);
  ASSERT_TRUE(verifyFunction(*Clone).ok());
  EXPECT_EQ(Base->getInstructionCount(), Clone->getInstructionCount());
  EXPECT_EQ(fingerprintDistance(Fingerprint::compute(*Base),
                                Fingerprint::compute(*Clone)),
            0u);
}

TEST(CloneWithDriftTest, DriftChangesButStaysValidAndSimilar) {
  Context Ctx;
  Module M("gen", Ctx);
  RNG Rng(56);
  WorkloadEnvironment Env(M, Rng);
  RandomFunctionOptions FO;
  FO.TargetSize = 100;
  RNG FnRng = Rng.fork(1);
  Function *Base = generateRandomFunction(Env, FnRng, "base", FO);
  DriftOptions DO;
  DO.MutatePercent = 15;
  DO.InsertPercent = 5;
  RNG DriftRng = Rng.fork(3);
  Function *Clone = cloneWithDrift(Base, "drifted", Env, DriftRng, DO);
  VerifierReport R = verifyFunction(*Clone);
  ASSERT_TRUE(R.ok()) << R.str();
  uint64_t D = fingerprintDistance(Fingerprint::compute(*Base),
                                   Fingerprint::compute(*Clone));
  EXPECT_GT(D, 0u);                                // something changed
  EXPECT_LT(D, Base->getInstructionCount() / 2);   // ...but not too much
}

TEST(SuiteTest, MiBenchProfilesMatchTable1Counts) {
  std::vector<BenchmarkProfile> Profiles = mibenchProfiles();
  ASSERT_EQ(Profiles.size(), 23u);
  // Spot-check the Table 1 numbers the profiles must mirror.
  auto Find = [&](const std::string &N) {
    for (const auto &P : Profiles)
      if (P.Name == N)
        return P;
    ADD_FAILURE() << "missing profile " << N;
    return Profiles[0];
  };
  EXPECT_EQ(Find("CRC32").NumFunctions, 4u);
  EXPECT_EQ(Find("qsort").NumFunctions, 2u);
  EXPECT_EQ(Find("cjpeg").NumFunctions, 322u);
  EXPECT_EQ(Find("djpeg").NumFunctions, 310u);
  EXPECT_EQ(Find("typeset").NumFunctions, 362u);
  EXPECT_EQ(Find("rijndael").MinSize, 45u);
}

TEST(SuiteTest, BuildsVerifiableModules) {
  Context Ctx;
  BenchmarkProfile P;
  P.Name = "unit";
  P.NumFunctions = 25;
  P.AvgSize = 40;
  P.MaxSize = 150;
  P.CloneFamilyPercent = 40;
  P.Seed = 777;
  std::unique_ptr<Module> M = buildBenchmarkModule(P, Ctx);
  EXPECT_TRUE(verifyModule(*M).ok()) << verifyModule(*M).str();
  unsigned Defs = 0;
  for (Function *F : M->functions())
    if (!F->isDeclaration())
      ++Defs;
  EXPECT_EQ(Defs, P.NumFunctions);
  EXPECT_GT(estimateModuleSize(*M, TargetArch::X86Like), 0u);
}

TEST(SuiteTest, GiantPairGenerated) {
  Context Ctx;
  BenchmarkProfile P;
  P.Name = "giant";
  P.NumFunctions = 5;
  P.GiantPairSize = 400;
  P.Seed = 3;
  std::unique_ptr<Module> M = buildBenchmarkModule(P, Ctx);
  Function *A = M->getFunction("giant_recog_16");
  Function *B = M->getFunction("giant_recog_26");
  ASSERT_NE(A, nullptr);
  ASSERT_NE(B, nullptr);
  EXPECT_GE(A->getInstructionCount(), 200u);
  // The pair must be similar enough to rank first for each other.
  uint64_t D = fingerprintDistance(Fingerprint::compute(*A),
                                   Fingerprint::compute(*B));
  EXPECT_LT(D, A->getInstructionCount() / 2);
}

TEST(SuiteTest, ProfilesAreDeterministic) {
  Context C1, C2;
  BenchmarkProfile P = mibenchProfiles()[5]; // bitcount
  std::unique_ptr<Module> M1 = buildBenchmarkModule(P, C1);
  std::unique_ptr<Module> M2 = buildBenchmarkModule(P, C2);
  EXPECT_EQ(M1->getInstructionCount(), M2->getInstructionCount());
  EXPECT_EQ(estimateModuleSize(*M1, TargetArch::ThumbLike),
            estimateModuleSize(*M2, TargetArch::ThumbLike));
}

TEST(SuiteTest, SuiteListsComplete) {
  EXPECT_EQ(spec2006Profiles().size(), 19u);
  EXPECT_EQ(spec2017Profiles().size(), 16u);
}

} // namespace
