//===- tests/structural_hash_test.cpp - Canonical hashing + pre-clustering -----===//
//
// Part of the SalSSA reproduction project, MIT license.
//
// The structural-hash fast path contract (merge/StructuralHash.h):
//
//  1. The hash is canonical: blind to value/block/function names and to
//     the owning module, sensitive to every structural fact (opcodes,
//     types, constants, operand wiring, called symbol).
//  2. structurallyEqual is strict where the hash is lenient: callees and
//     globals must be pointer-identical, so a hash collision across
//     same-named-but-distinct symbols can never cluster.
//  3. preClusterIdenticalFunctions commits each confirmed, profitable
//     group as one verbatim body + direct thunks, returns the surviving
//     pool, and degrades to the plain pipeline under Fingerprint faults.
//  4. End to end, HashClustering cuts pairing work on a clone-heavy
//     workload without losing reduction, stays deterministic at every
//     thread and shard count, and leaves the default pipeline untouched.
//
//===----------------------------------------------------------------------===//

#include "codesize/SizeModel.h"
#include "ir/IRBuilder.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "merge/MergeDriver.h"
#include "merge/StructuralHash.h"
#include "workloads/Suites.h"
#include <gtest/gtest.h>

using namespace salssa;

namespace {

/// One straight-line body: ((a + C) * a) cmp'd and selected via a
/// diamond — enough structure (blocks, phi, constants, branch) to make
/// the canonicalization tests meaningful.
Function *buildDiamond(Module &M, const std::string &Name, uint64_t C,
                       const char *BlockTag = "bb") {
  Context &Ctx = M.getContext();
  Type *I32 = Ctx.int32Ty();
  Function *F =
      M.createFunction(Name, Ctx.types().getFunctionTy(I32, {I32}));
  BasicBlock *Entry = F->createBlock(std::string(BlockTag) + "_entry");
  BasicBlock *Then = F->createBlock(std::string(BlockTag) + "_then");
  BasicBlock *Join = F->createBlock(std::string(BlockTag) + "_join");
  IRBuilder B(Ctx, Entry);
  Value *A = F->getArg(0);
  Value *Sum = B.createAdd(A, Ctx.getInt32(C));
  Value *Prod = B.createMul(Sum, A);
  Value *Cond = B.createICmp(CmpPredicate::SLT, Prod, Ctx.getInt32(100));
  B.createCondBr(Cond, Then, Join);
  B.setInsertPoint(Then);
  Value *Twice = B.createAdd(Prod, Prod);
  B.createBr(Join);
  B.setInsertPoint(Join);
  PhiInst *Phi = B.createPhi(I32);
  Phi->addIncoming(Prod, Entry);
  Phi->addIncoming(Twice, Then);
  B.createRet(Phi);
  return F;
}

/// A function whose only structure is a call into \p Callee.
Function *buildCaller(Module &M, const std::string &Name, Function *Callee) {
  Context &Ctx = M.getContext();
  Type *I32 = Ctx.int32Ty();
  Function *F =
      M.createFunction(Name, Ctx.types().getFunctionTy(I32, {I32}));
  IRBuilder B(Ctx, F->createBlock("entry"));
  Value *V = B.createCall(Callee, {F->getArg(0)});
  B.createRet(B.createAdd(V, Ctx.getInt32(7)));
  return F;
}

//===----------------------------------------------------------------------===//
// Canonical hashing
//===----------------------------------------------------------------------===//

TEST(StructuralHashTest, BlindToNamesAndOwningModule) {
  Context Ctx;
  Module M1("m1", Ctx), M2("m2", Ctx);
  Function *A = buildDiamond(M1, "alpha", 5, "x");
  Function *B = buildDiamond(M1, "a_very_different_name", 5, "yyyy");
  Function *C = buildDiamond(M2, "other_module", 5, "z");
  EXPECT_EQ(computeStructuralHash(*A), computeStructuralHash(*B));
  EXPECT_EQ(computeStructuralHash(*A), computeStructuralHash(*C));
  EXPECT_TRUE(structurallyEqual(*A, *B));
  EXPECT_TRUE(structurallyEqual(*A, *C)); // constants are Context-interned
}

TEST(StructuralHashTest, SeesEveryStructuralFact) {
  Context Ctx;
  Module M("m", Ctx);
  Function *Base = buildDiamond(M, "base", 5);
  StructuralHash H = computeStructuralHash(*Base);

  // A different constant.
  Function *Cst = buildDiamond(M, "cst", 6);
  EXPECT_NE(computeStructuralHash(*Cst), H);
  EXPECT_FALSE(structurallyEqual(*Base, *Cst));

  // A different signature type (i64 instead of i32) — structurally
  // different even before any instruction is compared.
  Type *I64 = Ctx.int64Ty();
  Function *Wide =
      M.createFunction("wide", Ctx.types().getFunctionTy(I64, {I64}));
  {
    IRBuilder B(Ctx, Wide->createBlock("entry"));
    B.createRet(B.createAdd(Wide->getArg(0), Ctx.getInt64(5)));
  }
  EXPECT_NE(computeStructuralHash(*Wide), H);

  // A different opcode on otherwise identical wiring.
  Type *I32 = Ctx.int32Ty();
  auto buildUnop = [&](const std::string &Name, bool Add) {
    Function *F =
        M.createFunction(Name, Ctx.types().getFunctionTy(I32, {I32}));
    IRBuilder B(Ctx, F->createBlock("entry"));
    Value *A = F->getArg(0);
    B.createRet(Add ? B.createAdd(A, Ctx.getInt32(3))
                    : B.createSub(A, Ctx.getInt32(3)));
    return F;
  };
  Function *AddF = buildUnop("addf", true);
  Function *SubF = buildUnop("subf", false);
  EXPECT_NE(computeStructuralHash(*AddF), computeStructuralHash(*SubF));
  EXPECT_FALSE(structurallyEqual(*AddF, *SubF));
}

TEST(StructuralHashTest, EqualityIsStrictWhereTheHashIsLenient) {
  // Two modules each define a callee under the same name and signature.
  // The hash content-addresses the call by symbol (equal hashes — the
  // cross-run property the DecisionCache needs); structurallyEqual
  // demands the same callee *object* and must refuse.
  Context Ctx;
  Module M1("m1", Ctx), M2("m2", Ctx);
  Function *Leaf1 = buildDiamond(M1, "leaf", 9);
  Function *Leaf2 = buildDiamond(M2, "leaf", 9);
  Function *C1 = buildCaller(M1, "caller", Leaf1);
  Function *C2 = buildCaller(M2, "caller", Leaf2);
  EXPECT_EQ(computeStructuralHash(*C1), computeStructuralHash(*C2));
  EXPECT_FALSE(structurallyEqual(*C1, *C2));
  // Same module, same callee object: both agree.
  Function *C3 = buildCaller(M1, "caller2", Leaf1);
  EXPECT_EQ(computeStructuralHash(*C1), computeStructuralHash(*C3));
  EXPECT_TRUE(structurallyEqual(*C1, *C3));
}

//===----------------------------------------------------------------------===//
// The pre-cluster pass
//===----------------------------------------------------------------------===//

TEST(PreClusterTest, CommitsOneBodyAndDirectThunks) {
  Context Ctx;
  Module M("m", Ctx);
  Function *K1 = buildDiamond(M, "k1", 5);
  Function *K2 = buildDiamond(M, "k2", 5, "other");
  Function *K3 = buildDiamond(M, "k3", 5, "names");
  Function *Lone = buildDiamond(M, "lone", 17);
  std::map<Function *, unsigned> Baseline;
  for (Function *F : M.functions())
    Baseline[F] = estimateFunctionSize(*F, TargetArch::X86Like);

  PreClusterStats S;
  std::vector<Module *> Mods{&M};
  auto Pool = preClusterIdenticalFunctions(Mods, M, TargetArch::X86Like,
                                           Baseline, nullptr, S);
  EXPECT_EQ(S.ClusterCommits, 1u);
  EXPECT_EQ(S.FingerprintFaults, 0u);

  // The merged body is a verbatim clone of the leader under "k1.m.N".
  Function *Merged = nullptr;
  for (Function *F : M.functions())
    if (F->getName().rfind("k1.m.", 0) == 0)
      Merged = F;
  ASSERT_NE(Merged, nullptr);
  EXPECT_TRUE(verifyModule(M).ok());
  EXPECT_TRUE(structurallyEqual(*Merged, *buildDiamond(M, "ref", 5, "r")));

  // Members became two-instruction direct thunks into the merged body.
  for (Function *F : {K1, K2, K3}) {
    ASSERT_EQ(F->getNumBlocks(), 1u) << F->getName();
    BasicBlock *BB = *F->blocks().begin();
    ASSERT_EQ(BB->size(), 2u) << F->getName();
    auto *Call = cast<CallInst>(*BB->begin());
    EXPECT_EQ(Call->getCallee(), Merged) << F->getName();
    EXPECT_FALSE(Pool.count(F)) << F->getName() << " must leave the pool";
  }
  // The merged body and the non-member survive in the pool, with the
  // body's baseline registered at its post-commit size.
  EXPECT_TRUE(Pool.count(Merged));
  EXPECT_TRUE(Pool.count(Lone));
  ASSERT_TRUE(Baseline.count(Merged));
  EXPECT_EQ(Baseline[Merged],
            estimateFunctionSize(*Merged, TargetArch::X86Like));
}

TEST(PreClusterTest, ProfitGateSkipsTinyGroups) {
  // Two-instruction bodies: thunking k of them costs more than the one
  // body it saves, so the group must be skipped.
  Context Ctx;
  Module M("m", Ctx);
  Type *I32 = Ctx.int32Ty();
  for (const char *Name : {"t1", "t2", "t3"}) {
    Function *F =
        M.createFunction(Name, Ctx.types().getFunctionTy(I32, {I32}));
    IRBuilder B(Ctx, F->createBlock("entry"));
    B.createRet(B.createAdd(F->getArg(0), Ctx.getInt32(1)));
  }
  std::map<Function *, unsigned> Baseline;
  PreClusterStats S;
  std::vector<Module *> Mods{&M};
  std::string Before = printModule(M);
  auto Pool = preClusterIdenticalFunctions(Mods, M, TargetArch::X86Like,
                                           Baseline, nullptr, S);
  EXPECT_EQ(S.ClusterCommits, 0u);
  EXPECT_EQ(Pool.size(), 3u);
  EXPECT_EQ(printModule(M), Before);
}

TEST(PreClusterTest, FingerprintFaultsDegradeToThePlainPool) {
  Context Ctx;
  Module M("m", Ctx);
  buildDiamond(M, "k1", 5);
  buildDiamond(M, "k2", 5, "other");
  buildDiamond(M, "k3", 5, "names");
  FaultInjectionConfig Faults = FaultInjectionConfig::parse(
      "seed=3,fingerprint=1000");
  ASSERT_TRUE(Faults.armed());
  std::map<Function *, unsigned> Baseline;
  PreClusterStats S;
  std::vector<Module *> Mods{&M};
  std::string Before = printModule(M);
  auto Pool = preClusterIdenticalFunctions(Mods, M, TargetArch::X86Like,
                                           Baseline, &Faults, S);
  // Every fingerprint faulted: no clustering, nothing mutated, every
  // function stays in the pool for the ordinary pipeline.
  EXPECT_EQ(S.ClusterCommits, 0u);
  EXPECT_EQ(S.FingerprintFaults, 3u);
  EXPECT_EQ(Pool.size(), 3u);
  EXPECT_EQ(printModule(M), Before);
}

//===----------------------------------------------------------------------===//
// End to end through the driver
//===----------------------------------------------------------------------===//

/// Clone-heavy population with zero drift: families are exact clones, the
/// workload shape the fast path exists for (>=25% hash-identical).
BenchmarkProfile exactCloneProfile(uint64_t Seed) {
  BenchmarkProfile P;
  P.Name = "clones";
  P.NumFunctions = 48;
  P.MinSize = 8;
  P.AvgSize = 40;
  P.MaxSize = 120;
  P.CloneFamilyPercent = 60;
  P.MinFamily = 3;
  P.MaxFamily = 6;
  P.FamilyDriftPercent = 0; // exact clones
  P.LoopPercent = 40;
  P.RetTypeVariety = 3;
  P.Seed = Seed;
  return P;
}

struct DriverOutcome {
  MergeDriverStats Stats;
  std::string Print;
  uint64_t SizeAfter = 0;
  bool VerifierOk = false;
};

DriverOutcome runDriver(const BenchmarkProfile &P, MergeDriverOptions DO) {
  Context Ctx;
  std::unique_ptr<Module> M = buildBenchmarkModule(P, Ctx);
  DriverOutcome O;
  O.Stats = runFunctionMerging(*M, DO);
  O.Print = printModule(*M);
  O.SizeAfter = estimateModuleSize(*M, DO.Arch);
  O.VerifierOk = verifyModule(*M).ok();
  return O;
}

TEST(HashClusteringTest, CutsPairingWorkWithoutLosingReduction) {
  BenchmarkProfile P = exactCloneProfile(11);
  MergeDriverOptions Off;
  Off.ExplorationThreshold = 3;
  DriverOutcome Base = runDriver(P, Off);
  ASSERT_TRUE(Base.VerifierOk);
  ASSERT_GT(Base.Stats.CommittedMerges, 0u);

  MergeDriverOptions On = Off;
  On.HashClustering = true;
  DriverOutcome Fast = runDriver(P, On);
  EXPECT_TRUE(Fast.VerifierOk);
  EXPECT_GT(Fast.Stats.HashClusterCommits, 0u);
  // The clone families collapse before ranking ever runs: the acceptance
  // bar is >= 2x fewer exact distance evaluations.
  EXPECT_LE(Fast.Stats.PairingDistanceCalls * 2,
            Base.Stats.PairingDistanceCalls)
      << "clustered: " << Fast.Stats.PairingDistanceCalls
      << " baseline: " << Base.Stats.PairingDistanceCalls;
  // ... at no reduction cost (direct thunks skip fid dispatch, so the
  // clustered module can only be smaller or equal).
  EXPECT_LE(Fast.SizeAfter, Base.SizeAfter);
}

TEST(HashClusteringTest, DeterministicAtEveryThreadAndShardCount) {
  BenchmarkProfile P = exactCloneProfile(13);
  MergeDriverOptions DO;
  DO.ExplorationThreshold = 3;
  DO.HashClustering = true;
  DriverOutcome Serial = runDriver(P, DO);
  ASSERT_TRUE(Serial.VerifierOk);
  ASSERT_GT(Serial.Stats.HashClusterCommits, 0u);
  for (unsigned Shards : {1u, 4u})
    for (unsigned NT : {1u, 4u}) {
      MergeDriverOptions V = DO;
      V.NumThreads = NT;
      V.ShardCount = Shards;
      DriverOutcome O = runDriver(P, V);
      std::string Tag = "shards=" + std::to_string(Shards) +
                        " threads=" + std::to_string(NT);
      EXPECT_EQ(O.Print, Serial.Print) << Tag;
      EXPECT_EQ(O.Stats.CommittedMerges, Serial.Stats.CommittedMerges) << Tag;
      EXPECT_EQ(O.Stats.HashClusterCommits, Serial.Stats.HashClusterCommits)
          << Tag;
      EXPECT_EQ(O.Stats.Attempts, Serial.Stats.Attempts) << Tag;
    }
}

} // namespace
