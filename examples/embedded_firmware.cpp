//===- examples/embedded_firmware.cpp - MiBench-style embedded scenario --------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
// The paper's embedded motivation (§1, §5.3): firmware for flash-limited
// devices, compiled for a compact Thumb-like target. This example builds a
// MiBench-style program (a synthetic codec with encoder/decoder families),
// compares FMSA and SalSSA end to end — including the FMSA residue effect —
// and reports flash savings on the Thumb-like size model.
//
// Build & run:  ./build/examples/embedded_firmware
//
//===----------------------------------------------------------------------===//

#include "codesize/SizeModel.h"
#include "ir/Verifier.h"
#include "merge/MergeDriver.h"
#include "workloads/Suites.h"
#include <cstdio>

using namespace salssa;

int main() {
  // A codec-like firmware image: a family of filter stages (encoder and
  // decoder variants sharing their skeleton) plus assorted glue.
  BenchmarkProfile P;
  P.Name = "firmware";
  P.NumFunctions = 48;
  P.MinSize = 8;
  P.AvgSize = 90;
  P.MaxSize = 600;
  P.CloneFamilyPercent = 45;
  P.MinFamily = 2;
  P.MaxFamily = 5;
  P.FamilyDriftPercent = 12;
  P.LoopPercent = 60;
  P.Seed = 20260610;

  std::printf("synthetic firmware: %u functions\n\n", P.NumFunctions);
  std::printf("%-28s %12s %12s %10s\n", "configuration", "flash bytes",
              "reduction", "merges");

  uint64_t Baseline = 0;
  {
    Context Ctx;
    std::unique_ptr<Module> M = buildBenchmarkModule(P, Ctx);
    Baseline = estimateModuleSize(*M, TargetArch::ThumbLike);
    std::printf("%-28s %12llu %12s %10s\n", "LTO baseline (no merging)",
                static_cast<unsigned long long>(Baseline), "-", "-");
  }

  // FMSA residue: what merely *running* FMSA's preprocessing costs.
  {
    Context Ctx;
    std::unique_ptr<Module> M = buildBenchmarkModule(P, Ctx);
    runFMSAResidueOnly(*M);
    uint64_t Size = estimateModuleSize(*M, TargetArch::ThumbLike);
    std::printf("%-28s %12llu %11.2f%% %10s\n", "FMSA residue (no merges)",
                static_cast<unsigned long long>(Size),
                100.0 * (1.0 - double(Size) / double(Baseline)), "0");
  }

  for (auto [Tech, Label] :
       {std::pair{MergeTechnique::FMSA, "FMSA        "},
        std::pair{MergeTechnique::SalSSA, "SalSSA      "}}) {
    for (unsigned T : {1u, 10u}) {
      Context Ctx;
      std::unique_ptr<Module> M = buildBenchmarkModule(P, Ctx);
      MergeDriverOptions DO;
      DO.Technique = Tech;
      DO.ExplorationThreshold = T;
      DO.Arch = TargetArch::ThumbLike;
      MergeDriverStats Stats = runFunctionMerging(*M, DO);
      if (!verifyModule(*M).ok()) {
        std::printf("verifier failed!\n");
        return 1;
      }
      uint64_t Size = estimateModuleSize(*M, TargetArch::ThumbLike);
      char Name[64];
      std::snprintf(Name, sizeof(Name), "%s t=%-2u", Label, T);
      std::printf("%-28s %12llu %11.2f%% %10u\n", Name,
                  static_cast<unsigned long long>(Size),
                  100.0 * (1.0 - double(Size) / double(Baseline)),
                  Stats.CommittedMerges);
    }
  }

  std::printf("\nas in the paper: SalSSA roughly doubles FMSA's flash "
              "savings on embedded code, and needs no residue-inducing "
              "preprocessing\n");
  return 0;
}
