//===- examples/motivating_example.cpp - The paper's Figure 2/3 example --------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
// Reconstructs the motivating example of §3 of the paper (Fig 2): a
// branchy function and a loopy function that share enough code to merge
// profitably, but that FMSA wrecks because register demotion creates
// memory operations whose merged addresses block register promotion.
//
// The example runs both pipelines and prints what the paper describes:
// FMSA's merged function balloons (the paper measured 50 instructions
// from 19), while SalSSA's stays close to the hand-merged version
// (Fig 3).
//
// Build & run:  ./build/examples/motivating_example
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "merge/FunctionMerger.h"
#include "transforms/Reg2Mem.h"
#include <cstdio>

using namespace salssa;

namespace {

struct ExampleModule {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F1 = nullptr;
  Function *F2 = nullptr;

  ExampleModule() {
    M = std::make_unique<Module>("motivating", Ctx);
    Type *I32 = Ctx.int32Ty();
    Function *Start =
        M->createFunction("start", Ctx.types().getFunctionTy(I32, {I32}));
    Function *Body =
        M->createFunction("body", Ctx.types().getFunctionTy(I32, {I32}));
    Function *Other =
        M->createFunction("other", Ctx.types().getFunctionTy(I32, {I32}));
    Function *End =
        M->createFunction("end", Ctx.types().getFunctionTy(I32, {I32}));

    // F1 (Fig 2, left): branch between body() and other(), then end().
    F1 = M->createFunction("f1", Ctx.types().getFunctionTy(I32, {I32}));
    {
      BasicBlock *L1 = F1->createBlock("L1");
      BasicBlock *L2 = F1->createBlock("L2");
      BasicBlock *L3 = F1->createBlock("L3");
      BasicBlock *L4 = F1->createBlock("L4");
      IRBuilder B(Ctx, L1);
      Value *X1 = B.createCall(Start, {F1->getArg(0)}, "x1");
      Value *X2 = B.createICmp(CmpPredicate::SLT, X1, Ctx.getInt32(0), "x2");
      B.createCondBr(X2, L2, L3);
      B.setInsertPoint(L2);
      Value *X3 = B.createCall(Body, {X1}, "x3");
      B.createBr(L4);
      B.setInsertPoint(L3);
      Value *X4 = B.createCall(Other, {X1}, "x4");
      B.createBr(L4);
      B.setInsertPoint(L4);
      PhiInst *X5 = B.createPhi(I32, "x5");
      X5->addIncoming(X3, L2);
      X5->addIncoming(X4, L3);
      B.createRet(B.createCall(End, {X5}, "x6"));
    }
    // F2 (Fig 2, right): loop body() until the value is zero, then end().
    F2 = M->createFunction("f2", Ctx.types().getFunctionTy(I32, {I32}));
    {
      BasicBlock *L1 = F2->createBlock("L1");
      BasicBlock *L2 = F2->createBlock("L2");
      BasicBlock *L3 = F2->createBlock("L3");
      BasicBlock *L4 = F2->createBlock("L4");
      IRBuilder B(Ctx, L1);
      Value *V1 = B.createCall(Start, {F2->getArg(0)}, "v1");
      B.createBr(L2);
      B.setInsertPoint(L2);
      PhiInst *V2 = B.createPhi(I32, "v2");
      Value *V3 = B.createICmp(CmpPredicate::NE, V2, Ctx.getInt32(0), "v3");
      B.createCondBr(V3, L3, L4);
      B.setInsertPoint(L3);
      Value *V4 = B.createCall(Body, {V2}, "v4");
      B.createBr(L2);
      V2->addIncoming(V1, L1);
      V2->addIncoming(V4, L3);
      B.setInsertPoint(L4);
      B.createRet(B.createCall(End, {V2}, "v5"));
    }
  }
};

} // namespace

int main() {
  std::printf("The motivating example of the paper, Fig 2: 19 input "
              "instructions total.\n");

  // --- SalSSA: merge directly in SSA form. --------------------------------
  size_t SalSSASize = 0;
  {
    ExampleModule E;
    MergeAttempt A = attemptMerge(
        *E.F1, *E.F2,
        MergeCodeGenOptions::forTechnique(MergeTechnique::SalSSA),
        TargetArch::X86Like,
        estimateFunctionSize(*E.F1, TargetArch::X86Like),
        estimateFunctionSize(*E.F2, TargetArch::X86Like));
    SalSSASize = A.Gen.Merged->getInstructionCount();
    std::printf("\n=== SalSSA merged function (%zu instructions) ===\n%s\n",
                SalSSASize, printFunction(*A.Gen.Merged).c_str());
  }

  // --- FMSA: register demotion first, like the state of the art. ----------
  size_t FMSASize = 0;
  {
    ExampleModule E;
    std::printf("=== FMSA pipeline ===\n");
    Reg2MemStats S1 = demoteRegistersToMemory(*E.F1, E.Ctx);
    Reg2MemStats S2 = demoteRegistersToMemory(*E.F2, E.Ctx);
    std::printf("after register demotion: F1 %u -> %u, F2 %u -> %u "
                "instructions (the Fig 4 bloat)\n",
                S1.InstructionsBefore, S1.InstructionsAfter,
                S2.InstructionsBefore, S2.InstructionsAfter);
    MergeAttempt A = attemptMerge(
        *E.F1, *E.F2,
        MergeCodeGenOptions::forTechnique(MergeTechnique::FMSA),
        TargetArch::X86Like,
        estimateFunctionSize(*E.F1, TargetArch::X86Like),
        estimateFunctionSize(*E.F2, TargetArch::X86Like));
    FMSASize = A.Gen.Merged->getInstructionCount();
    std::printf("\n=== FMSA merged function (%zu instructions) ===\n%s\n",
                FMSASize, printFunction(*A.Gen.Merged).c_str());
  }

  std::printf("summary: SalSSA %zu vs FMSA %zu merged instructions "
              "(paper: FMSA produced 50 from these 19; an expert produces "
              "~15, Fig 3)\n",
              SalSSASize, FMSASize);
  return 0;
}
