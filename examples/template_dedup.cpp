//===- examples/template_dedup.cpp - Template-instantiation deduplication -----===//
//
// Part of the SalSSA reproduction project, MIT license.
//
// The scenario behind the paper's biggest wins (447.dealII, 510.parest:
// >40% size reduction): C++ template instantiation stamps out many nearly
// identical functions — same skeleton, different widths/constants/calls.
// This example hand-builds a family of "instantiations" of a bounds-
// checked accumulate kernel, runs the whole-module SalSSA pass and shows
// how the family collapses into shared merged bodies plus thunks.
//
// Build & run:  ./build/examples/template_dedup
//
//===----------------------------------------------------------------------===//

#include "codesize/SizeModel.h"
#include "interp/Interpreter.h"
#include "ir/IRBuilder.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "merge/MergeDriver.h"
#include <cstdio>

using namespace salssa;

namespace {

/// Builds something like:
///   template <int Step, Pred P>
///   int accumulate(int n, int seed) {
///     int acc = seed;
///     for (int i = 0; i < min(n, 16); i += 1)
///       if (P(i)) acc = acc * Step + table[i & 15];
///     return finish(acc);
///   }
Function *buildInstance(Module &M, GlobalVariable *Table, Function *Finish,
                        const std::string &Name, int Step,
                        CmpPredicate Pred, int PredConst) {
  Context &Ctx = M.getContext();
  Type *I32 = Ctx.int32Ty();
  Function *F =
      M.createFunction(Name, Ctx.types().getFunctionTy(I32, {I32, I32}));
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Header = F->createBlock("header");
  BasicBlock *Body = F->createBlock("body");
  BasicBlock *Taken = F->createBlock("taken");
  BasicBlock *Latch = F->createBlock("latch");
  BasicBlock *Exit = F->createBlock("exit");

  IRBuilder B(Ctx, Entry);
  // bound = n < 16 ? n : 16
  Value *CmpN =
      B.createICmp(CmpPredicate::SLT, F->getArg(0), Ctx.getInt32(16));
  Value *Bound = B.createSelect(CmpN, F->getArg(0), Ctx.getInt32(16));
  B.createBr(Header);

  B.setInsertPoint(Header);
  PhiInst *IV = B.createPhi(I32, "i");
  PhiInst *Acc = B.createPhi(I32, "acc");
  Value *Cond = B.createICmp(CmpPredicate::SLT, IV, Bound);
  B.createCondBr(Cond, Body, Exit);

  B.setInsertPoint(Body);
  Value *Pd = B.createICmp(Pred, IV, Ctx.getInt32(PredConst), "p");
  B.createCondBr(Pd, Taken, Latch);

  B.setInsertPoint(Taken);
  Value *Idx = B.createAnd(IV, Ctx.getInt32(15));
  Value *Ptr = B.createGep(I32, Table, Idx);
  Value *Elem = B.createLoad(I32, Ptr);
  Value *Scaled = B.createMul(Acc, Ctx.getInt32(Step));
  Value *NewAcc = B.createAdd(Scaled, Elem, "newacc");
  B.createBr(Latch);

  B.setInsertPoint(Latch);
  PhiInst *AccNext = B.createPhi(I32, "accnext");
  AccNext->addIncoming(Acc, Body);
  AccNext->addIncoming(NewAcc, Taken);
  Value *IVNext = B.createAdd(IV, Ctx.getInt32(1));
  B.createBr(Header);

  IV->addIncoming(Ctx.getInt32(0), Entry);
  IV->addIncoming(IVNext, Latch);
  Acc->addIncoming(F->getArg(1), Entry);
  Acc->addIncoming(AccNext, Latch);

  B.setInsertPoint(Exit);
  B.createRet(B.createCall(Finish, {Acc}, "fin"));
  return F;
}

} // namespace

int main() {
  Context Ctx;
  Module M("template_dedup", Ctx);
  Type *I32 = Ctx.int32Ty();
  GlobalVariable *Table = M.createGlobal("table", I32, 16);
  Function *Finish =
      M.createFunction("finish", Ctx.types().getFunctionTy(I32, {I32}));

  // Eight "template instantiations".
  struct Inst {
    const char *Name;
    int Step;
    CmpPredicate Pred;
    int PredConst;
  } Instances[] = {
      {"accumulate_evens_x3", 3, CmpPredicate::NE, 0},
      {"accumulate_evens_x5", 5, CmpPredicate::NE, 0},
      {"accumulate_small_x3", 3, CmpPredicate::SLT, 8},
      {"accumulate_small_x7", 7, CmpPredicate::SLT, 8},
      {"accumulate_large_x2", 2, CmpPredicate::SGT, 4},
      {"accumulate_large_x9", 9, CmpPredicate::SGT, 4},
      {"accumulate_exact_x4", 4, CmpPredicate::EQ, 5},
      {"accumulate_exact_x6", 6, CmpPredicate::EQ, 5},
  };
  std::vector<Function *> Family;
  for (const Inst &I : Instances)
    Family.push_back(
        buildInstance(M, Table, Finish, I.Name, I.Step, I.Pred, I.PredConst));

  uint64_t Before = estimateModuleSize(M, TargetArch::X86Like);
  std::printf("module with %zu template instantiations: %llu bytes "
              "(x86-like estimate)\n",
              Family.size(), static_cast<unsigned long long>(Before));

  // Capture pre-merge behaviour.
  Interpreter Pre(M);
  std::vector<int32_t> Expected;
  for (Function *F : Family) {
    ExecResult R = Pre.run(
        F, {RuntimeValue::makeInt(12), RuntimeValue::makeInt(1)});
    Expected.push_back(static_cast<int32_t>(R.Return.Bits));
  }

  // Whole-module SalSSA pass, t = 5.
  MergeDriverOptions DO;
  DO.Technique = MergeTechnique::SalSSA;
  DO.ExplorationThreshold = 5;
  MergeDriverStats Stats = runFunctionMerging(M, DO);
  uint64_t After = estimateModuleSize(M, TargetArch::X86Like);

  std::printf("committed merges: %u (of %u attempts)\n",
              Stats.CommittedMerges, Stats.Attempts);
  std::printf("module size: %llu -> %llu bytes (%.1f%% reduction)\n",
              static_cast<unsigned long long>(Before),
              static_cast<unsigned long long>(After),
              100.0 * (1.0 - double(After) / double(Before)));

  VerifierReport VR = verifyModule(M);
  std::printf("verifier: %s\n", VR.ok() ? "clean" : VR.str().c_str());

  // Every instantiation still computes what it used to.
  Interpreter Post(M);
  bool AllMatch = true;
  for (size_t I = 0; I < Family.size(); ++I) {
    ExecResult R = Post.run(
        Family[I], {RuntimeValue::makeInt(12), RuntimeValue::makeInt(1)});
    bool Ok = static_cast<int32_t>(R.Return.Bits) == Expected[I];
    AllMatch &= Ok;
    std::printf("  %-22s -> %11d  %s\n", Instances[I].Name,
                static_cast<int32_t>(R.Return.Bits), Ok ? "ok" : "CHANGED!");
  }
  std::printf("%s\n", AllMatch ? "all instantiations behave identically "
                                 "after merging"
                               : "BEHAVIOUR CHANGED - bug!");
  return AllMatch ? 0 : 1;
}
