//===- examples/quickstart.cpp - Library quickstart ---------------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
// A five-minute tour of the public API:
//   1. build two similar functions in the SSA IR,
//   2. merge them with SalSSA,
//   3. inspect the merged function and the thunks,
//   4. run both through the interpreter to confirm behaviour is intact.
//
// Build & run:  ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"
#include "ir/IRBuilder.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "merge/FunctionMerger.h"
#include <cstdio>

using namespace salssa;

int main() {
  // --- 1. Build a module with two similar functions. ---------------------
  Context Ctx;
  Module M("quickstart", Ctx);
  Type *I32 = Ctx.int32Ty();

  // int scale_add(int a, int b) { return a * 3 + b; }
  // int scale_sub(int a, int b) { return a * 5 - b; }
  auto Build = [&](const char *Name, int K, ValueKind Op) {
    Function *F =
        M.createFunction(Name, Ctx.types().getFunctionTy(I32, {I32, I32}));
    IRBuilder B(Ctx, F->createBlock("entry"));
    Value *Scaled = B.createMul(F->getArg(0), Ctx.getInt32(K), "scaled");
    Value *Mixed = B.createBinOp(Op, Scaled, F->getArg(1), "mixed");
    // Some shared ballast so the merge amortizes its thunks.
    Value *Acc = Mixed;
    for (int I = 0; I < 6; ++I)
      Acc = B.createXor(B.createAdd(Acc, Ctx.getInt32(I + 1)), Scaled);
    B.createRet(Acc);
    return F;
  };
  Function *F1 = Build("scale_add", 3, ValueKind::Add);
  Function *F2 = Build("scale_sub", 5, ValueKind::Sub);

  std::printf("--- input functions ---\n%s\n%s\n",
              printFunction(*F1).c_str(), printFunction(*F2).c_str());

  // --- 2. Merge them with SalSSA. -----------------------------------------
  MergeAttempt Attempt = attemptMerge(
      *F1, *F2, MergeCodeGenOptions::forTechnique(MergeTechnique::SalSSA),
      TargetArch::X86Like, estimateFunctionSize(*F1, TargetArch::X86Like),
      estimateFunctionSize(*F2, TargetArch::X86Like));
  if (!Attempt.Valid) {
    std::printf("merge attempt failed\n");
    return 1;
  }
  std::printf("--- merge statistics ---\n");
  std::printf("matched pairs:      %zu\n", Attempt.Stats.MatchedPairs);
  std::printf("selects inserted:   %u\n", Attempt.Stats.SelectsInserted);
  std::printf("profitable:         %s (profit %d bytes)\n",
              Attempt.Stats.Profitable ? "yes" : "no", Attempt.profit());

  commitMerge(Attempt, Ctx);
  std::printf("\n--- merged function ---\n%s\n",
              printFunction(*Attempt.Gen.Merged).c_str());
  std::printf("--- thunked original ---\n%s\n", printFunction(*F1).c_str());

  VerifierReport VR = verifyModule(M);
  std::printf("verifier: %s\n", VR.ok() ? "clean" : VR.str().c_str());

  // --- 3. Execute: originals (now thunks) must behave identically. --------
  Interpreter Interp(M);
  for (auto [A, B] : {std::pair{7, 2}, std::pair{-4, 10}}) {
    std::vector<RuntimeValue> Args = {
        RuntimeValue::makeInt(static_cast<uint64_t>(A)),
        RuntimeValue::makeInt(static_cast<uint64_t>(B))};
    ExecResult R1 = Interp.run(F1, Args);
    ExecResult R2 = Interp.run(F2, Args);
    std::printf("scale_add(%d,%d) = %d   scale_sub(%d,%d) = %d\n", A, B,
                static_cast<int32_t>(R1.Return.Bits), A, B,
                static_cast<int32_t>(R2.Return.Bits));
  }
  return 0;
}
