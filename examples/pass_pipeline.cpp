//===- examples/pass_pipeline.cpp - Using the substrate as a compiler kit ------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
// The merging work sits on a complete (if small) SSA compiler substrate;
// this example uses it as such: build IR, run the classic pass pipeline
// (Reg2Mem -> Mem2Reg round trip, simplification, DCE), inspect dominator
// information, and execute the result. Useful as a template for writing
// new passes against this IR.
//
// Build & run:  ./build/examples/pass_pipeline
//
//===----------------------------------------------------------------------===//

#include "analysis/Dominators.h"
#include "interp/Interpreter.h"
#include "ir/IRBuilder.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "transforms/Mem2Reg.h"
#include "transforms/Reg2Mem.h"
#include "transforms/Simplify.h"
#include <cstdio>

using namespace salssa;

int main() {
  Context Ctx;
  Module M("pipeline", Ctx);
  Type *I32 = Ctx.int32Ty();

  // int collatz_steps(int n) {
  //   int steps = 0;
  //   while (n != 1 && steps < 64) {
  //     n = n % 2 ? 3 * n + 1 : n / 2;  (written as branches + phis)
  //     steps++;
  //   }
  //   return steps;
  // }
  Function *F =
      M.createFunction("collatz_steps", Ctx.types().getFunctionTy(I32, {I32}));
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Header = F->createBlock("header");
  BasicBlock *Odd = F->createBlock("odd");
  BasicBlock *Even = F->createBlock("even");
  BasicBlock *Latch = F->createBlock("latch");
  BasicBlock *Exit = F->createBlock("exit");
  IRBuilder B(Ctx, Entry);
  B.createBr(Header);

  B.setInsertPoint(Header);
  PhiInst *N = B.createPhi(I32, "n");
  PhiInst *Steps = B.createPhi(I32, "steps");
  Value *NotOne = B.createICmp(CmpPredicate::NE, N, Ctx.getInt32(1));
  Value *Bounded = B.createICmp(CmpPredicate::SLT, Steps, Ctx.getInt32(64));
  Value *Continue = B.createAnd(NotOne, Bounded);
  B.createCondBr(Continue, Odd, Exit);

  B.setInsertPoint(Odd);
  Value *Rem = B.createBinOp(ValueKind::SRem, N, Ctx.getInt32(2));
  Value *IsOdd = B.createICmp(CmpPredicate::NE, Rem, Ctx.getInt32(0));
  B.createBr(Even); // both arms computed below, joined with a select
  B.setInsertPoint(Even);
  Value *Tripled = B.createAdd(B.createMul(N, Ctx.getInt32(3)),
                               Ctx.getInt32(1), "tripled");
  Value *Halved = B.createBinOp(ValueKind::SDiv, N, Ctx.getInt32(2));
  Value *Next = B.createSelect(IsOdd, Tripled, Halved, "next");
  B.createBr(Latch);

  B.setInsertPoint(Latch);
  Value *StepsNext = B.createAdd(Steps, Ctx.getInt32(1));
  B.createBr(Header);

  N->addIncoming(F->getArg(0), Entry);
  N->addIncoming(Next, Latch);
  Steps->addIncoming(Ctx.getInt32(0), Entry);
  Steps->addIncoming(StepsNext, Latch);

  B.setInsertPoint(Exit);
  B.createRet(Steps);

  std::printf("--- original ---\n%s\n", printFunction(*F).c_str());
  VerifierReport VR = verifyFunction(*F);
  std::printf("verifier: %s\n\n", VR.ok() ? "clean" : VR.str().c_str());

  // Dominator facts.
  DominatorTree DT(*F);
  std::printf("idom(header) = %s, idom(exit) = %s\n",
              DT.getIDom(Header)->getName().c_str(),
              DT.getIDom(Exit)->getName().c_str());
  std::printf("header dominates latch: %s\n\n",
              DT.dominates(Header, Latch) ? "yes" : "no");

  // The round trip the paper's baselines rely on.
  Reg2MemStats Demote = demoteRegistersToMemory(*F, Ctx);
  std::printf("after Reg2Mem: %u -> %u instructions (%.2fx, no phis "
              "left)\n",
              Demote.InstructionsBefore, Demote.InstructionsAfter,
              Demote.inflation());
  Mem2RegStats Promote = promoteAllocasToRegisters(*F, Ctx);
  std::printf("after Mem2Reg: %u slots promoted, %u phis inserted\n",
              Promote.PromotedAllocas, Promote.PhisInserted);
  SimplifyStats Simp = simplifyFunction(*F, Ctx);
  std::printf("after simplify: %u instructions removed, %u blocks "
              "removed\n\n",
              Simp.InstructionsRemoved, Simp.BlocksRemoved);
  std::printf("--- after round trip ---\n%s\n", printFunction(*F).c_str());

  // Execute.
  Interpreter Interp(M);
  for (int In : {6, 7, 27}) {
    ExecResult R =
        Interp.run(F, {RuntimeValue::makeInt(static_cast<uint64_t>(In))});
    std::printf("collatz_steps(%d) = %d\n", In,
                static_cast<int32_t>(R.Return.Bits));
  }
  return 0;
}
