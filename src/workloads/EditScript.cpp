//===- workloads/EditScript.cpp - Deterministic edit scripts ------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/EditScript.h"
#include "ir/Module.h"
#include <algorithm>
#include <cassert>

using namespace salssa;

EditScript::EditScript(const std::vector<Module *> &InitialModules,
                       const EditScriptOptions &Options)
    : Options(Options) {
  // The evolving population model: every definition the script may
  // target, as (module index, name). Seeded from the pristine group in
  // modules-walk order so the plan is a pure function of (names, seed).
  struct Member {
    unsigned ModuleIdx;
    std::string Name;
  };
  std::vector<Member> Population;
  for (unsigned MI = 0; MI < InitialModules.size(); ++MI)
    for (Function *F : InitialModules[MI]->functions())
      if (!F->isDeclaration())
        Population.push_back({MI, F->getName()});

  RNG Rng(Options.Seed);
  unsigned NextAddId = 0;
  Steps.reserve(Options.NumSteps);
  for (unsigned S = 0; S < Options.NumSteps; ++S) {
    StepPlan Plan;
    // Deletes first: a deleted name can be neither changed this step nor
    // targeted ever again. Keep at least half the population alive so
    // the session always has something to merge.
    unsigned NumDeletes = std::min<unsigned>(
        Options.DeletesPerStep,
        static_cast<unsigned>(Population.size() / 2));
    for (unsigned I = 0; I < NumDeletes; ++I) {
      size_t Pick = Rng.nextBelow(Population.size());
      Plan.Deletes.push_back({Op::Delete, Population[Pick].ModuleIdx,
                              Population[Pick].Name, Rng.next()});
      Population.erase(Population.begin() +
                       static_cast<ptrdiff_t>(Pick));
    }
    // Changes over the survivors, each name at most once per step.
    std::vector<size_t> Candidates(Population.size());
    for (size_t I = 0; I < Candidates.size(); ++I)
      Candidates[I] = I;
    unsigned NumChanges = std::min<unsigned>(
        Options.ChangesPerStep, static_cast<unsigned>(Candidates.size()));
    for (unsigned I = 0; I < NumChanges; ++I) {
      size_t Pick = Rng.nextBelow(Candidates.size());
      const Member &M = Population[Candidates[Pick]];
      Plan.Changes.push_back({Op::Change, M.ModuleIdx, M.Name, Rng.next()});
      Candidates.erase(Candidates.begin() + static_cast<ptrdiff_t>(Pick));
    }
    // Adds: fresh names, random target module.
    for (unsigned I = 0; I < Options.AddsPerStep; ++I) {
      unsigned MI = static_cast<unsigned>(
          Rng.nextBelow(InitialModules.size()));
      std::string Name = "edit_add" + std::to_string(NextAddId++);
      Plan.Adds.push_back({Op::Add, MI, Name, Rng.next()});
      Population.push_back({MI, Name});
    }
    Steps.push_back(std::move(Plan));
  }
}

EditScript::AppliedStep
EditScript::applyStep(const std::vector<Module *> &Modules, unsigned StepIdx,
                      const std::function<void(Function *)> &PrepareEdit) const {
  assert(StepIdx < Steps.size() && "edit step out of range");
  const StepPlan &Plan = Steps[StepIdx];
  AppliedStep Out;
  for (const Op &O : Plan.Deletes) {
    Function *F = Modules[O.ModuleIdx]->getFunction(O.Name);
    assert(F && !F->isDeclaration() && "scripted delete target missing");
    Out.Deleted.push_back(F);
  }
  for (const Op &O : Plan.Changes) {
    Function *F = Modules[O.ModuleIdx]->getFunction(O.Name);
    assert(F && !F->isDeclaration() && "scripted change target missing");
    if (PrepareEdit)
      PrepareEdit(F);
    WorkloadEnvironment Env = WorkloadEnvironment::attach(*Modules[O.ModuleIdx]);
    RNG OpRng(O.OpSeed);
    driftFunctionBody(F, Env, OpRng, Options.Drift);
    Out.Changed.push_back(F);
  }
  for (const Op &O : Plan.Adds) {
    WorkloadEnvironment Env = WorkloadEnvironment::attach(*Modules[O.ModuleIdx]);
    RNG OpRng(O.OpSeed);
    Out.Added.push_back(
        generateRandomFunction(Env, OpRng, O.Name, Options.Generate));
  }
  return Out;
}
