//===- workloads/EditScript.cpp - Deterministic edit scripts ------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/EditScript.h"
#include "ir/Module.h"
#include <algorithm>
#include <cassert>

using namespace salssa;

EditScript::EditScript(const std::vector<Module *> &InitialModules,
                       const EditScriptOptions &Options)
    : Options(Options) {
  // The evolving population model: every definition the script may
  // target, as (module index, name). Seeded from the pristine group in
  // modules-walk order so the plan is a pure function of (names, seed).
  struct Member {
    unsigned ModuleIdx;
    std::string Name;
  };
  std::vector<Member> Population;
  for (unsigned MI = 0; MI < InitialModules.size(); ++MI)
    for (Function *F : InitialModules[MI]->functions())
      if (!F->isDeclaration())
        Population.push_back({MI, F->getName()});

  RNG Rng(Options.Seed);
  unsigned NextAddId = 0;
  Steps.reserve(Options.NumSteps);
  for (unsigned S = 0; S < Options.NumSteps; ++S) {
    StepPlan Plan;
    // Deletes first: a deleted name can be neither changed this step nor
    // targeted ever again. Keep at least half the population alive so
    // the session always has something to merge.
    unsigned NumDeletes = std::min<unsigned>(
        Options.DeletesPerStep,
        static_cast<unsigned>(Population.size() / 2));
    for (unsigned I = 0; I < NumDeletes; ++I) {
      size_t Pick = Rng.nextBelow(Population.size());
      Plan.Deletes.push_back({EditOp::Delete, Population[Pick].ModuleIdx,
                              Population[Pick].Name, Rng.next()});
      Population.erase(Population.begin() +
                       static_cast<ptrdiff_t>(Pick));
    }
    // Changes over the survivors, each name at most once per step.
    std::vector<size_t> Candidates(Population.size());
    for (size_t I = 0; I < Candidates.size(); ++I)
      Candidates[I] = I;
    unsigned NumChanges = std::min<unsigned>(
        Options.ChangesPerStep, static_cast<unsigned>(Candidates.size()));
    for (unsigned I = 0; I < NumChanges; ++I) {
      size_t Pick = Rng.nextBelow(Candidates.size());
      const Member &M = Population[Candidates[Pick]];
      Plan.Changes.push_back({EditOp::Change, M.ModuleIdx, M.Name, Rng.next()});
      Candidates.erase(Candidates.begin() + static_cast<ptrdiff_t>(Pick));
    }
    // Adds: fresh names, random target module.
    for (unsigned I = 0; I < Options.AddsPerStep; ++I) {
      unsigned MI = static_cast<unsigned>(
          Rng.nextBelow(InitialModules.size()));
      std::string Name = "edit_add" + std::to_string(NextAddId++);
      Plan.Adds.push_back({EditOp::Add, MI, Name, Rng.next()});
      Population.push_back({MI, Name});
    }
    Steps.push_back(std::move(Plan));
  }
}

AppliedEditStep
salssa::applyEditStep(const std::vector<Module *> &Modules,
                      const EditStepSpec &Spec,
                      const std::function<void(Function *)> &PrepareEdit) {
  AppliedEditStep Out;
  for (const EditOp &O : Spec.Deletes) {
    Function *F = Modules[O.ModuleIdx]->getFunction(O.Name);
    assert(F && !F->isDeclaration() && "scripted delete target missing");
    Out.Deleted.push_back(F);
  }
  for (const EditOp &O : Spec.Changes) {
    Function *F = Modules[O.ModuleIdx]->getFunction(O.Name);
    assert(F && !F->isDeclaration() && "scripted change target missing");
    if (PrepareEdit)
      PrepareEdit(F);
    WorkloadEnvironment Env = WorkloadEnvironment::attach(*Modules[O.ModuleIdx]);
    RNG OpRng(O.OpSeed);
    driftFunctionBody(F, Env, OpRng, Spec.Drift);
    Out.Changed.push_back(F);
  }
  for (const EditOp &O : Spec.Adds) {
    WorkloadEnvironment Env = WorkloadEnvironment::attach(*Modules[O.ModuleIdx]);
    RNG OpRng(O.OpSeed);
    Out.Added.push_back(
        generateRandomFunction(Env, OpRng, O.Name, Spec.Generate));
  }
  return Out;
}

EditStepSpec EditScript::stepSpec(unsigned StepIdx) const {
  assert(StepIdx < Steps.size() && "edit step out of range");
  const StepPlan &Plan = Steps[StepIdx];
  EditStepSpec Spec;
  Spec.Deletes = Plan.Deletes;
  Spec.Changes = Plan.Changes;
  Spec.Adds = Plan.Adds;
  Spec.Drift = Options.Drift;
  Spec.Generate = Options.Generate;
  return Spec;
}

EditScript::AppliedStep
EditScript::applyStep(const std::vector<Module *> &Modules, unsigned StepIdx,
                      const std::function<void(Function *)> &PrepareEdit) const {
  return applyEditStep(Modules, stepSpec(StepIdx), PrepareEdit);
}
