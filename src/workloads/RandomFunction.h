//===- workloads/RandomFunction.h - Random SSA function generation -----------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic random generation of well-formed SSA functions, and
/// "clone-with-drift" mutation. Together these synthesize the function
/// populations that drive the merging experiments:
///
///  - *clone families* model C++ template instantiations (the dealII /
///    parest effect in the paper: many highly similar functions);
///  - *drifted clones* model partially similar code (shared skeleton,
///    divergent details) where alignment finds partial matches;
///  - *independent functions* model the dissimilar remainder.
///
/// The generator emits loops and if/else diamonds with real phi-nodes —
/// the code shape whose register demotion penalty motivates the paper
/// (Fig 5) — plus calls to a shared pool of external "library" functions,
/// global-table accesses, and optionally invoke/landingpad clusters.
/// Generated loops have constant trip counts so the interpreter-based
/// differential tests and runtime measurements terminate.
///
//===----------------------------------------------------------------------===//

#ifndef SALSSA_WORKLOADS_RANDOMFUNCTION_H
#define SALSSA_WORKLOADS_RANDOMFUNCTION_H

#include "ir/Module.h"
#include "support/RNG.h"

namespace salssa {

/// Knobs for one generated function.
struct RandomFunctionOptions {
  /// Target instruction count (approximate; structure granularity means
  /// the result lands within ~20%).
  unsigned TargetSize = 60;
  /// Percent chance that a statement becomes control flow (if/loop).
  unsigned ControlFlowPercent = 30;
  /// Percent of control-flow statements that are loops (phi-rich shape).
  unsigned LoopPercent = 50;
  /// Percent chance of join-point phis after if/else diamonds.
  unsigned JoinPhiPercent = 60;
  /// Percent chance a call statement uses invoke + landingpad.
  unsigned InvokePercent = 0;
  /// Maximum nesting depth of structured control flow.
  unsigned MaxDepth = 3;
  /// How many distinct *return types* the generator draws from, 1-5 over
  /// the fixed palette [i32, i64, i1, f64, void]. Return types are the
  /// merge-compatibility boundary (cross-type pairs never merge), so
  /// variety > 1 is what gives sharded sessions real partitions to split
  /// (ShardedSessionRunner.h). The default 1 keeps the legacy i32-only
  /// shape AND the legacy RNG stream — no draw is consumed — so every
  /// pre-variety workload rebuilds byte-identically.
  unsigned RetTypeVariety = 1;
};

/// Shared context for generating one module's functions: the external
/// "library" declarations and global tables calls and memory ops target.
///
/// \p SymbolSuffix names the library/global symbols ("libN_<suffix>",
/// "tblN_<suffix>"); it defaults to the module's own name, which keeps
/// symbols distinct when many benchmark modules share a Context. Module
/// groups pass one shared suffix instead, so every "translation unit"
/// declares the *same-named* externals — the shape real TUs compiled
/// from common headers have, and what cross-module symbol resolution
/// (ir/SymbolResolution.h) binds back together at merge time.
class WorkloadEnvironment {
public:
  WorkloadEnvironment(Module &M, RNG &Rng, unsigned NumLibFunctions = 8,
                      unsigned NumGlobals = 4,
                      const std::string &SymbolSuffix = "");

  /// Re-attaches an environment to a module whose library declarations
  /// and global tables already exist (one previously built by the
  /// constructor above): the declarations are picked up in creation
  /// order, the globals likewise. This is how the edit-script generator
  /// (workloads/EditScript.h) adds functions to a live, possibly
  /// already-merged module mid-session — generated code only ever calls
  /// declarations, and originals/thunks/merged functions are all
  /// definitions, so the declaration scan recovers exactly the library.
  static WorkloadEnvironment attach(Module &M);

  Module &getModule() { return Mod; }
  const std::vector<Function *> &libFunctions() const { return LibFns; }
  const std::vector<GlobalVariable *> &globals() const { return Globals; }

private:
  explicit WorkloadEnvironment(Module &M) : Mod(M) {}
  Module &Mod;
  std::vector<Function *> LibFns;
  std::vector<GlobalVariable *> Globals;
};

/// Generates one well-formed function named \p Name. The signature is
/// randomized (i32-dominated, matching real integer code).
Function *generateRandomFunction(WorkloadEnvironment &Env, RNG &Rng,
                                 const std::string &Name,
                                 const RandomFunctionOptions &Options);

/// Mutation strength for cloneWithDrift.
struct DriftOptions {
  /// Per-instruction mutation probability, percent. 0 = exact clone.
  unsigned MutatePercent = 10;
  /// Per-instruction probability of inserting an extra instruction,
  /// percent (structural drift).
  unsigned InsertPercent = 3;
  /// Per-site probability, percent, of a *semantics-preserving* syntactic
  /// rewrite: commuted operands (binops and symmetric/mirrored compares),
  /// temporary renames, reassociation rotations of integer chains, dead
  /// stores into fresh never-read stack slots, redundant recomputes of
  /// pure expressions, and add/sub-by-constant spelling flips
  /// (x + C <-> x - (2^w - C), exact under wraparound). Unlike
  /// MutatePercent/InsertPercent the clone
  /// stays interpreter-equivalent to its base — this knob generates the
  /// "written differently, means the same" families the Canonicalize
  /// shadow view exists to recover. The default 0 consumes no RNG draws,
  /// so every legacy workload rebuilds byte-identically.
  unsigned SyntacticPercent = 0;
};

/// Clones \p Base as \p Name and perturbs it: constants change, opcodes
/// swap within their class, cmp predicates flip, commutative operands
/// swap, call targets retarget to same-signature library functions, and
/// extra instructions appear. The result is always verifier-clean.
///
/// \p Env may belong to a *different* module than \p Base (the
/// cross-module suites place clone-family members in different
/// "translation units"). The clone then lands in Env's module with its
/// library-call targets and global references remapped positionally to
/// Env's counterparts — which requires both modules' environments to
/// have been built from identical RNG streams, so their library
/// signatures and global shapes line up (buildBenchmarkModuleGroup
/// guarantees this, modelling TUs compiled from the same headers).
Function *cloneWithDrift(Function *Base, const std::string &Name,
                         WorkloadEnvironment &Env, RNG &Rng,
                         const DriftOptions &Options);

/// The mutation half of cloneWithDrift, applied to an existing function
/// *in place* (no clone): constants drift, opcodes swap within their
/// class, predicates flip, calls retarget among Env's same-signature
/// library functions, extra instructions appear. The result is always
/// verifier-clean and the function's signature never changes — which is
/// what makes this the edit model for incremental sessions
/// (workloads/EditScript.h): a "changed" function keeps its identity and
/// merge-compatibility class, only its body drifts.
void driftFunctionBody(Function *F, WorkloadEnvironment &Env, RNG &Rng,
                       const DriftOptions &Options);

} // namespace salssa

#endif // SALSSA_WORKLOADS_RANDOMFUNCTION_H
