//===- workloads/EditScript.h - Deterministic edit scripts --------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Precomputed, deterministic edit scripts over a generated module group:
/// the workload model for incremental merge sessions
/// (merge/MergeService.h). An EditScript is planned *entirely at
/// construction* from the group's initial definition names — every step
/// is a list of name-addressed operations (change this function with
/// this seed, add that function to that module, delete the other one) —
/// so one script instance can be replayed against any number of
/// byte-identical copies of the group and produce byte-identical edits
/// in each:
///
///  - the *service* copy applies steps one at a time through delta
///    batches (incremental re-merge after each step);
///  - a *reference* copy applies the same steps with no merging at all
///    (the interpreter-differential baseline);
///  - a *cold* copy applies all steps up front and merges from scratch
///    once (the equivalence baseline the service must reproduce).
///
/// Operations follow the service's delta rules by construction: changed
/// functions keep their signatures (driftFunctionBody), added functions
/// are fresh generated definitions, and deleted functions are generated
/// originals — which call only library declarations and are never called
/// themselves, so deletion leaves no dangling call sites.
///
//===----------------------------------------------------------------------===//

#ifndef SALSSA_WORKLOADS_EDITSCRIPT_H
#define SALSSA_WORKLOADS_EDITSCRIPT_H

#include "workloads/RandomFunction.h"
#include <functional>
#include <string>
#include <vector>

namespace salssa {

struct EditScriptOptions {
  unsigned NumSteps = 6;
  /// Operation counts per step (clamped when the population runs low).
  unsigned ChangesPerStep = 3;
  unsigned AddsPerStep = 1;
  unsigned DeletesPerStep = 1;
  /// Mutation strength for changed functions.
  DriftOptions Drift;
  /// Shape of added functions. Keep RetTypeVariety aligned with the
  /// group's profile so additions land in existing merge classes.
  RandomFunctionOptions Generate;
  uint64_t Seed = 1;
};

/// See the file comment. Construct once from the pristine group, then
/// replay against any copy.
class EditScript {
public:
  /// Plans the whole script from \p InitialModules' definition names
  /// (the modules are only read, never modified, at construction).
  EditScript(const std::vector<Module *> &InitialModules,
             const EditScriptOptions &Options);

  unsigned numSteps() const { return static_cast<unsigned>(Steps.size()); }

  /// One step's resolved effect on one group copy.
  struct AppliedStep {
    std::vector<Function *> Changed;
    std::vector<Function *> Added;
    std::vector<Function *> Deleted;
  };

  /// Applies step \p StepIdx to \p Modules, which must be name-identical
  /// to the population state after steps [0, StepIdx) (apply steps in
  /// order to each copy). Changed functions are mutated in place —
  /// \p PrepareEdit, when set, runs on each one first (the service copy
  /// passes Batch.checkoutForEdit there; plain copies pass nothing).
  /// Added functions are generated directly into their target modules.
  /// Deleted functions are *returned but not erased*: the caller owns
  /// the erase (a plain copy calls Module::eraseFunction immediately;
  /// the service erases through the delta).
  AppliedStep
  applyStep(const std::vector<Module *> &Modules, unsigned StepIdx,
            const std::function<void(Function *)> &PrepareEdit = {}) const;

private:
  struct Op {
    enum Kind { Change, Add, Delete } K;
    unsigned ModuleIdx;
    std::string Name;
    uint64_t OpSeed; ///< seeds the drift / generation RNG
  };
  struct StepPlan {
    std::vector<Op> Deletes; ///< applied first (frees the names)
    std::vector<Op> Changes;
    std::vector<Op> Adds;
  };

  EditScriptOptions Options;
  std::vector<StepPlan> Steps;
};

} // namespace salssa

#endif // SALSSA_WORKLOADS_EDITSCRIPT_H
