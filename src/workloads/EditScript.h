//===- workloads/EditScript.h - Deterministic edit scripts --------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Precomputed, deterministic edit scripts over a generated module group:
/// the workload model for incremental merge sessions
/// (merge/MergeService.h). An EditScript is planned *entirely at
/// construction* from the group's initial definition names — every step
/// is a list of name-addressed operations (change this function with
/// this seed, add that function to that module, delete the other one) —
/// so one script instance can be replayed against any number of
/// byte-identical copies of the group and produce byte-identical edits
/// in each:
///
///  - the *service* copy applies steps one at a time through delta
///    batches (incremental re-merge after each step);
///  - a *reference* copy applies the same steps with no merging at all
///    (the interpreter-differential baseline);
///  - a *cold* copy applies all steps up front and merges from scratch
///    once (the equivalence baseline the service must reproduce).
///
/// Operations follow the service's delta rules by construction: changed
/// functions keep their signatures (driftFunctionBody), added functions
/// are fresh generated definitions, and deleted functions are generated
/// originals — which call only library declarations and are never called
/// themselves, so deletion leaves no dangling call sites.
///
//===----------------------------------------------------------------------===//

#ifndef SALSSA_WORKLOADS_EDITSCRIPT_H
#define SALSSA_WORKLOADS_EDITSCRIPT_H

#include "workloads/RandomFunction.h"
#include <functional>
#include <string>
#include <vector>

namespace salssa {

/// One name-addressed operation of an edit step. Public (and plain data)
/// because deltas travel between processes as operation lists: the merge
/// daemon's wire protocol (service/Protocol.h) ships EditOps instead of
/// IR — there is no IR text parser, so both ends reconstruct the same
/// bytes by replaying the same seeded operation against name-identical
/// module copies.
struct EditOp {
  enum Kind : uint8_t { Change, Add, Delete } K;
  unsigned ModuleIdx;
  std::string Name;
  uint64_t OpSeed; ///< seeds the drift / generation RNG
};

/// One whole step as plain data: the operations plus the knobs their
/// replay needs. Self-contained — applyEditStep needs nothing else — so
/// a serialized EditStepSpec is a complete delta description.
struct EditStepSpec {
  std::vector<EditOp> Deletes; ///< applied first (frees the names)
  std::vector<EditOp> Changes;
  std::vector<EditOp> Adds;
  DriftOptions Drift;              ///< mutation strength for Changes
  RandomFunctionOptions Generate;  ///< shape of Adds
};

/// One step's resolved effect on one group copy.
struct AppliedEditStep {
  std::vector<Function *> Changed;
  std::vector<Function *> Added;
  std::vector<Function *> Deleted;
};

/// Replays \p Spec against \p Modules, which must be name-identical to
/// the population state the spec was planned for. Changed functions are
/// mutated in place — \p PrepareEdit, when set, runs on each one first
/// (a service copy passes DeltaBatch::checkoutForEdit there; plain
/// copies pass nothing). Added functions are generated directly into
/// their target modules. Deleted functions are *returned but not
/// erased*: the caller owns the erase (a plain copy calls
/// Module::eraseFunction immediately; a service erases through the
/// delta).
AppliedEditStep
applyEditStep(const std::vector<Module *> &Modules, const EditStepSpec &Spec,
              const std::function<void(Function *)> &PrepareEdit = {});

struct EditScriptOptions {
  unsigned NumSteps = 6;
  /// Operation counts per step (clamped when the population runs low).
  unsigned ChangesPerStep = 3;
  unsigned AddsPerStep = 1;
  unsigned DeletesPerStep = 1;
  /// Mutation strength for changed functions.
  DriftOptions Drift;
  /// Shape of added functions. Keep RetTypeVariety aligned with the
  /// group's profile so additions land in existing merge classes.
  RandomFunctionOptions Generate;
  uint64_t Seed = 1;
};

/// See the file comment. Construct once from the pristine group, then
/// replay against any copy.
class EditScript {
public:
  /// Plans the whole script from \p InitialModules' definition names
  /// (the modules are only read, never modified, at construction).
  EditScript(const std::vector<Module *> &InitialModules,
             const EditScriptOptions &Options);

  unsigned numSteps() const { return static_cast<unsigned>(Steps.size()); }

  using AppliedStep = AppliedEditStep;

  /// Step \p StepIdx as self-contained plain data (ops + the script's
  /// Drift/Generate knobs) — what the daemon client serializes onto the
  /// wire. applyEditStep(modules, stepSpec(I)) == applyStep(modules, I).
  EditStepSpec stepSpec(unsigned StepIdx) const;

  /// Applies step \p StepIdx to \p Modules, which must be name-identical
  /// to the population state after steps [0, StepIdx) (apply steps in
  /// order to each copy). Semantics of PrepareEdit / returned pointers:
  /// see applyEditStep above, to which this delegates.
  AppliedStep
  applyStep(const std::vector<Module *> &Modules, unsigned StepIdx,
            const std::function<void(Function *)> &PrepareEdit = {}) const;

private:
  struct StepPlan {
    std::vector<EditOp> Deletes; ///< applied first (frees the names)
    std::vector<EditOp> Changes;
    std::vector<EditOp> Adds;
  };

  EditScriptOptions Options;
  std::vector<StepPlan> Steps;
};

} // namespace salssa

#endif // SALSSA_WORKLOADS_EDITSCRIPT_H
