//===- workloads/Suites.h - Synthetic benchmark suites -------------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synthetic stand-ins for SPEC CPU2006, SPEC CPU2017 and MiBench. Each
/// benchmark profile controls the statistics that matter to function
/// merging: how many functions, how large, how phi/loop-rich (the register
/// demotion penalty of Fig 5), and how much similarity exists (clone
/// families for template-heavy C++ code, drifted clones for partially
/// similar C code). MiBench profiles mirror Table 1's published function
/// counts and size ranges exactly. SPEC sizes are scaled down ~10x from
/// the real suites so the full experiment matrix runs in CI time; all
/// relative effects are preserved.
///
//===----------------------------------------------------------------------===//

#ifndef SALSSA_WORKLOADS_SUITES_H
#define SALSSA_WORKLOADS_SUITES_H

#include "workloads/RandomFunction.h"
#include <memory>
#include <string>
#include <vector>

namespace salssa {

/// Generation parameters of one benchmark program.
struct BenchmarkProfile {
  std::string Name;
  unsigned NumFunctions = 50;
  unsigned MinSize = 4;    ///< instructions
  unsigned AvgSize = 60;
  unsigned MaxSize = 400;
  /// Percent of functions that belong to a clone family (template-like).
  unsigned CloneFamilyPercent = 30;
  /// Family size range.
  unsigned MinFamily = 2;
  unsigned MaxFamily = 5;
  /// Drift applied to family members (percent mutation per instruction).
  unsigned FamilyDriftPercent = 8;
  /// Semantics-preserving syntactic divergence applied to family members
  /// (percent per rewrite site; see DriftOptions::SyntacticPercent):
  /// commutations, temp renames, reassociation rotations, dead stores,
  /// redundant recomputes. Family clones stay interpreter-equivalent to
  /// their base — the workload shape the Canonicalize shadow view
  /// recovers. 0 (default, every stock profile) draws no RNG and keeps
  /// every legacy population byte-identical.
  unsigned SyntacticDriftPercent = 0;
  /// Percent of control-flow statements that are loops: drives phi
  /// density and hence the Reg2Mem inflation of Fig 5.
  unsigned LoopPercent = 50;
  /// Percent of calls emitted as invoke/landingpad (C++ profiles).
  unsigned InvokePercent = 0;
  /// When set, adds one pair of giant similar functions (the
  /// recog_16/recog_26 effect in 403.gcc driving peak memory, §5.5).
  unsigned GiantPairSize = 0;
  /// Distinct return types drawn per function, 1-5 (see
  /// RandomFunctionOptions::RetTypeVariety). 1 — the default for every
  /// stock profile — keeps the legacy i32-only population and RNG
  /// stream; > 1 populates multiple merge-compatibility classes, the
  /// workload shape sharded sessions split on.
  unsigned RetTypeVariety = 1;
  uint64_t Seed = 1;
};

/// Builds the module for one profile (functions + globals + libraries).
std::unique_ptr<Module> buildBenchmarkModule(const BenchmarkProfile &Profile,
                                             Context &Ctx);

/// Builds one profile's function population split across \p NumModules
/// modules ("translation units") round-robin, so clone families span
/// module boundaries — the workload cross-module merging exists for.
/// Every module gets an identically-shaped library/global environment
/// (same signatures, same table shapes — like TUs compiled from the same
/// headers), which is what lets family members in different modules stay
/// alignable. Deterministic in (Profile, NumModules): rebuilding with
/// the same arguments yields byte-identical modules. Returned as a
/// ModuleGroup because cross-module merging leaves cross-module operand
/// references that require group teardown (see ir/Module.h).
ModuleGroup buildBenchmarkModuleGroup(const BenchmarkProfile &Profile,
                                      Context &Ctx, unsigned NumModules);

/// Builds a *heterogeneous* group: every profile's population, each
/// split round-robin across its own \p ModulesPerProfile "translation
/// units" exactly as buildBenchmarkModuleGroup would (same per-profile
/// determinism, same shared-header environments), all owned by one
/// ModuleGroup in profile order — the whole-program shape where several
/// unrelated programs (or libraries) link into one session
/// (CrossModuleMerger / ShardedSessionRunner over the full group).
/// Profiles must have distinct names: symbol suffixes, and hence
/// cross-module symbol resolution, are per-profile.
ModuleGroup
buildSuiteModuleGroup(const std::vector<BenchmarkProfile> &Profiles,
                      Context &Ctx, unsigned ModulesPerProfile);

/// The 19 C/C++ SPEC CPU2006 benchmarks evaluated in the paper.
std::vector<BenchmarkProfile> spec2006Profiles();

/// The 16 C/C++ SPEC CPU2017 benchmarks evaluated in the paper.
std::vector<BenchmarkProfile> spec2017Profiles();

/// The 23 MiBench programs of Table 1 (exact function counts/sizes).
std::vector<BenchmarkProfile> mibenchProfiles();

} // namespace salssa

#endif // SALSSA_WORKLOADS_SUITES_H
