//===- workloads/Suites.cpp - Synthetic benchmark suites ------------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/Suites.h"
#include "ir/Verifier.h"
#include "transforms/Simplify.h"
#include <algorithm>
#include <cassert>

using namespace salssa;

std::unique_ptr<Module>
salssa::buildBenchmarkModule(const BenchmarkProfile &Profile, Context &Ctx) {
  auto M = std::make_unique<Module>(Profile.Name, Ctx);
  RNG Rng(Profile.Seed * 0x9e3779b97f4a7c15ULL + 0xABCDEF);
  WorkloadEnvironment Env(*M, Rng);

  auto sampleSize = [&](RNG &R) {
    // Triangular-ish distribution around AvgSize, clamped to [Min, Max].
    int64_t S = static_cast<int64_t>(Profile.AvgSize);
    int64_t Spread = std::max<int64_t>(2, S);
    int64_t V = S + R.nextRange(-Spread / 2, Spread) *
                        (R.chancePercent(25) ? 2 : 1);
    V = std::max<int64_t>(Profile.MinSize, V);
    V = std::min<int64_t>(Profile.MaxSize, V);
    return static_cast<unsigned>(V);
  };

  unsigned Made = 0;
  unsigned FamilyId = 0;
  while (Made < Profile.NumFunctions) {
    RandomFunctionOptions FO;
    FO.TargetSize = sampleSize(Rng);
    FO.LoopPercent = Profile.LoopPercent;
    FO.InvokePercent = Profile.InvokePercent;
    FO.RetTypeVariety = Profile.RetTypeVariety;
    std::string BaseName =
        Profile.Name + "_fn" + std::to_string(Made);
    RNG FnRng = Rng.fork(Made);
    Function *Base = generateRandomFunction(Env, FnRng, BaseName, FO);
    ++Made;

    // Clone family: template-instantiation-like population.
    if (Rng.chancePercent(Profile.CloneFamilyPercent) &&
        Made < Profile.NumFunctions) {
      unsigned Family =
          Profile.MinFamily +
          static_cast<unsigned>(Rng.nextBelow(
              Profile.MaxFamily - Profile.MinFamily + 1));
      DriftOptions DO;
      DO.MutatePercent = Profile.FamilyDriftPercent;
      DO.InsertPercent = Profile.FamilyDriftPercent / 2;
      DO.SyntacticPercent = Profile.SyntacticDriftPercent;
      for (unsigned K = 1; K < Family && Made < Profile.NumFunctions; ++K) {
        RNG DriftRng = Rng.fork(Made * 131 + K);
        cloneWithDrift(Base,
                       Profile.Name + "_fam" + std::to_string(FamilyId) +
                           "_v" + std::to_string(K),
                       Env, DriftRng, DO);
        ++Made;
      }
      ++FamilyId;
    }
  }

  // The 403.gcc effect: one pair of very large, similar functions that
  // dominates alignment time and memory.
  if (Profile.GiantPairSize > 0) {
    RandomFunctionOptions FO;
    FO.TargetSize = Profile.GiantPairSize;
    FO.LoopPercent = Profile.LoopPercent;
    FO.MaxDepth = 4;
    RNG GiantRng = Rng.fork(0x61616E74);
    Function *Recog16 =
        generateRandomFunction(Env, GiantRng, Profile.Name + "_recog_16", FO);
    DriftOptions DO;
    DO.MutatePercent = 6;
    DO.InsertPercent = 2;
    RNG DriftRng = Rng.fork(0x61616E75);
    cloneWithDrift(Recog16, Profile.Name + "_recog_26", Env, DriftRng, DO);
  }

  // The experiments' baseline is LTO-optimized code (Fig 16): clean up
  // generator artifacts (dead values, foldable constants) so size
  // comparisons are not inflated by code any pipeline would remove.
  for (Function *F : M->functions())
    if (!F->isDeclaration())
      simplifyFunction(*F, Ctx);

  assert(verifyModule(*M).ok() && "workload generator emitted invalid IR");
  return M;
}

ModuleGroup salssa::buildBenchmarkModuleGroup(const BenchmarkProfile &Profile,
                                              Context &Ctx,
                                              unsigned NumModules) {
  assert(NumModules >= 1 && "a module group needs at least one module");
  ModuleGroup Group;
  RNG Rng(Profile.Seed * 0x9e3779b97f4a7c15ULL + 0xC0DE5);

  // Identically-shaped environments: every module's WorkloadEnvironment
  // consumes a *copy* of the same RNG state, so library signatures and
  // global shapes match positionally across modules (the cross-module
  // cloneWithDrift remap depends on this).
  RNG EnvRng = Rng.fork(0x7E05);
  std::vector<std::unique_ptr<WorkloadEnvironment>> Envs;
  for (unsigned K = 0; K < NumModules; ++K) {
    Module &M = Group.add(std::make_unique<Module>(
        Profile.Name + ".tu" + std::to_string(K), Ctx));
    RNG Copy = EnvRng;
    // The shared symbol suffix gives every TU the *same-named* externals
    // (one set of headers); cross-module symbol resolution binds them.
    Envs.push_back(std::make_unique<WorkloadEnvironment>(
        M, Copy, 8, 4, Profile.Name));
  }

  auto sampleSize = [&](RNG &R) {
    int64_t S = static_cast<int64_t>(Profile.AvgSize);
    int64_t Spread = std::max<int64_t>(2, S);
    int64_t V = S + R.nextRange(-Spread / 2, Spread) *
                        (R.chancePercent(25) ? 2 : 1);
    V = std::max<int64_t>(Profile.MinSize, V);
    V = std::min<int64_t>(Profile.MaxSize, V);
    return static_cast<unsigned>(V);
  };

  // Same population as buildBenchmarkModule, dealt round-robin: function
  // i lands in module i % NumModules, so consecutive clone-family
  // members land in *different* modules — per-module merging cannot see
  // those pairs, a cross-module session can.
  unsigned Made = 0;
  unsigned FamilyId = 0;
  while (Made < Profile.NumFunctions) {
    RandomFunctionOptions FO;
    FO.TargetSize = sampleSize(Rng);
    FO.LoopPercent = Profile.LoopPercent;
    FO.InvokePercent = Profile.InvokePercent;
    FO.RetTypeVariety = Profile.RetTypeVariety;
    std::string BaseName = Profile.Name + "_fn" + std::to_string(Made);
    RNG FnRng = Rng.fork(Made);
    Function *Base = generateRandomFunction(*Envs[Made % NumModules], FnRng,
                                            BaseName, FO);
    ++Made;

    if (Rng.chancePercent(Profile.CloneFamilyPercent) &&
        Made < Profile.NumFunctions) {
      unsigned Family =
          Profile.MinFamily +
          static_cast<unsigned>(Rng.nextBelow(
              Profile.MaxFamily - Profile.MinFamily + 1));
      DriftOptions DO;
      DO.MutatePercent = Profile.FamilyDriftPercent;
      DO.InsertPercent = Profile.FamilyDriftPercent / 2;
      DO.SyntacticPercent = Profile.SyntacticDriftPercent;
      for (unsigned K = 1; K < Family && Made < Profile.NumFunctions; ++K) {
        RNG DriftRng = Rng.fork(Made * 131 + K);
        cloneWithDrift(Base,
                       Profile.Name + "_fam" + std::to_string(FamilyId) +
                           "_v" + std::to_string(K),
                       *Envs[Made % NumModules], DriftRng, DO);
        ++Made;
      }
      ++FamilyId;
    }
  }

  // The giant pair lands in two different modules, so its alignment cost
  // (and win) is only reachable cross-module.
  if (Profile.GiantPairSize > 0) {
    RandomFunctionOptions FO;
    FO.TargetSize = Profile.GiantPairSize;
    FO.LoopPercent = Profile.LoopPercent;
    FO.MaxDepth = 4;
    RNG GiantRng = Rng.fork(0x61616E74);
    Function *Recog16 = generateRandomFunction(
        *Envs[0], GiantRng, Profile.Name + "_recog_16", FO);
    DriftOptions DO;
    DO.MutatePercent = 6;
    DO.InsertPercent = 2;
    RNG DriftRng = Rng.fork(0x61616E75);
    cloneWithDrift(Recog16, Profile.Name + "_recog_26",
                   *Envs[1 % NumModules], DriftRng, DO);
  }

  for (const std::unique_ptr<Module> &M : Group.modules()) {
    for (Function *F : M->functions())
      if (!F->isDeclaration())
        simplifyFunction(*F, Ctx);
    assert(verifyModule(*M).ok() && "workload generator emitted invalid IR");
  }
  return Group;
}

ModuleGroup
salssa::buildSuiteModuleGroup(const std::vector<BenchmarkProfile> &Profiles,
                              Context &Ctx, unsigned ModulesPerProfile) {
  assert(!Profiles.empty() && "a suite group needs at least one profile");
#ifndef NDEBUG
  for (size_t I = 0; I < Profiles.size(); ++I)
    for (size_t J = I + 1; J < Profiles.size(); ++J)
      assert(Profiles[I].Name != Profiles[J].Name &&
             "suite group profiles must have distinct names (symbol "
             "suffixes are per-profile)");
#endif
  ModuleGroup All;
  for (const BenchmarkProfile &P : Profiles)
    All.adopt(buildBenchmarkModuleGroup(P, Ctx, ModulesPerProfile));
  return All;
}

std::vector<BenchmarkProfile> salssa::spec2006Profiles() {
  // Tuned per benchmark: C++ template-heavy programs get large clone
  // families (dealII's >40% reduction in the paper); phi/loop-rich C
  // programs (hmmer, libquantum, sphinx3...) get high loop density, which
  // is where FMSA's register demotion hurts most.
  //                name            #fn  min avg  max  fam% fmin fmax drift loop inv giant seed
  auto P = [](const char *Name, unsigned N, unsigned Mn, unsigned Av,
              unsigned Mx, unsigned Fam, unsigned FMin, unsigned FMax,
              unsigned Drift, unsigned Loop, unsigned Inv, unsigned Giant,
              uint64_t Seed) {
    BenchmarkProfile B;
    B.Name = Name;
    B.NumFunctions = N;
    B.MinSize = Mn;
    B.AvgSize = Av;
    B.MaxSize = Mx;
    B.CloneFamilyPercent = Fam;
    B.MinFamily = FMin;
    B.MaxFamily = FMax;
    B.FamilyDriftPercent = Drift;
    B.LoopPercent = Loop;
    B.InvokePercent = Inv;
    B.GiantPairSize = Giant;
    B.Seed = Seed;
    return B;
  };
  return {
      P("400.perlbench", 160, 6, 70, 500, 30, 2, 4, 18, 45, 0, 0, 2006401),
      P("401.bzip2", 60, 8, 80, 450, 20, 2, 3, 22, 55, 0, 0, 2006402),
      P("403.gcc", 220, 6, 60, 500, 25, 2, 4, 20, 45, 0, 1500, 2006403),
      P("429.mcf", 24, 10, 70, 300, 15, 2, 3, 20, 60, 0, 0, 2006404),
      P("433.milc", 50, 10, 75, 350, 25, 2, 3, 18, 55, 0, 0, 2006405),
      P("444.namd", 40, 20, 140, 600, 45, 3, 6, 12, 60, 5, 0, 2006406),
      P("445.gobmk", 180, 6, 55, 400, 22, 2, 3, 20, 40, 0, 0, 2006407),
      P("447.dealII", 200, 8, 90, 500, 65, 3, 8, 8, 45, 10, 0, 2006408),
      P("450.soplex", 90, 8, 85, 450, 45, 2, 5, 14, 45, 10, 0, 2006409),
      P("453.povray", 120, 8, 80, 450, 40, 2, 5, 15, 45, 8, 0, 2006410),
      P("456.hmmer", 70, 10, 90, 450, 35, 2, 4, 15, 65, 0, 0, 2006411),
      P("458.sjeng", 50, 8, 70, 350, 20, 2, 3, 20, 50, 0, 0, 2006412),
      P("462.libquantum", 30, 8, 60, 250, 35, 2, 4, 15, 65, 0, 0, 2006413),
      P("464.h264ref", 120, 10, 85, 500, 28, 2, 4, 18, 55, 0, 0, 2006414),
      P("470.lbm", 12, 12, 90, 300, 20, 2, 3, 18, 60, 0, 0, 2006415),
      P("471.omnetpp", 130, 6, 65, 400, 40, 2, 5, 15, 40, 12, 0, 2006416),
      P("473.astar", 30, 8, 70, 300, 30, 2, 4, 17, 50, 6, 0, 2006417),
      P("482.sphinx3", 60, 10, 80, 400, 35, 2, 4, 15, 60, 0, 0, 2006418),
      P("483.xalancbmk", 240, 5, 55, 350, 50, 2, 6, 12, 35, 12, 0, 2006419),
  };
}

std::vector<BenchmarkProfile> salssa::spec2017Profiles() {
  auto P = [](const char *Name, unsigned N, unsigned Av, unsigned Fam,
              unsigned FMax, unsigned Drift, unsigned Loop, unsigned Inv,
              uint64_t Seed) {
    BenchmarkProfile B;
    B.Name = Name;
    B.NumFunctions = N;
    B.MinSize = 6;
    B.AvgSize = Av;
    B.MaxSize = 8 * Av;
    B.CloneFamilyPercent = Fam;
    B.MinFamily = 2;
    B.MaxFamily = FMax;
    B.FamilyDriftPercent = Drift;
    B.LoopPercent = Loop;
    B.InvokePercent = Inv;
    B.Seed = Seed;
    return B;
  };
  return {
      P("508.namd_r", 50, 140, 45, 6, 12, 60, 5, 2017508),
      P("510.parest_r", 220, 85, 65, 8, 8, 45, 10, 2017510),
      P("511.povray_r", 120, 80, 40, 5, 15, 45, 8, 2017511),
      P("526.blender_r", 300, 65, 30, 4, 18, 45, 6, 2017526),
      P("600.perlbench_s", 160, 70, 30, 4, 18, 45, 0, 2017600),
      P("602.gcc_s", 260, 60, 25, 4, 20, 45, 0, 2017602),
      P("605.mcf_s", 24, 70, 15, 3, 20, 60, 0, 2017605),
      P("619.lbm_s", 12, 90, 22, 3, 22, 60, 0, 2017619),
      P("620.omnetpp_s", 140, 65, 40, 5, 15, 40, 12, 2017620),
      P("623.xalancbmk_s", 240, 55, 50, 6, 12, 35, 12, 2017623),
      P("625.x264_s", 90, 85, 25, 3, 22, 55, 0, 2017625),
      P("631.deepsjeng_s", 50, 70, 20, 3, 20, 50, 0, 2017631),
      P("638.imagick_s", 150, 80, 30, 4, 18, 55, 0, 2017638),
      P("641.leela_s", 60, 70, 35, 4, 15, 50, 8, 2017641),
      P("644.nab_s", 40, 80, 28, 3, 17, 55, 0, 2017644),
      P("657.xz_s", 50, 70, 30, 4, 17, 55, 0, 2017657),
  };
}

std::vector<BenchmarkProfile> salssa::mibenchProfiles() {
  // Function counts and min/avg/max sizes straight from Table 1 of the
  // paper. Similarity knobs are tuned so the per-benchmark merge counts
  // land in the neighbourhood of the published FMSA/SalSSA columns.
  auto P = [](const char *Name, unsigned N, unsigned Mn, unsigned Av,
              unsigned Mx, unsigned Fam, unsigned FMax, unsigned Drift,
              uint64_t Seed) {
    BenchmarkProfile B;
    B.Name = Name;
    B.NumFunctions = N;
    B.MinSize = std::max(3u, Mn); // a function below 3 IR instrs is a stub
    B.AvgSize = Av;
    B.MaxSize = Mx;
    B.CloneFamilyPercent = Fam;
    B.MinFamily = 2;
    B.MaxFamily = FMax;
    B.FamilyDriftPercent = Drift;
    B.LoopPercent = 55;
    B.Seed = Seed;
    return B;
  };
  return {
      P("CRC32", 4, 8, 24, 37, 0, 2, 15, 901),
      P("FFT", 7, 6, 45, 131, 0, 2, 15, 902),
      P("adpcm_c", 3, 35, 68, 93, 0, 2, 15, 903),
      P("adpcm_d", 3, 35, 68, 93, 0, 2, 15, 904),
      P("basicmath", 5, 4, 60, 204, 0, 2, 15, 905),
      P("bitcount", 19, 4, 21, 56, 35, 4, 14, 906),
      P("blowfish_d", 8, 3, 231, 790, 25, 2, 16, 907),
      P("blowfish_e", 8, 3, 231, 790, 25, 2, 16, 908),
      P("cjpeg", 322, 3, 93, 1198, 25, 4, 16, 909),
      P("dijkstra", 6, 3, 32, 83, 0, 2, 20, 910),
      P("djpeg", 310, 3, 91, 1198, 25, 4, 16, 911),
      P("ghostscript", 690, 3, 50, 750, 30, 4, 16, 912),
      P("gsm", 69, 3, 92, 696, 25, 3, 16, 913),
      P("ispell", 84, 3, 97, 1004, 20, 3, 16, 914),
      P("patricia", 5, 3, 74, 160, 0, 2, 20, 915),
      P("pgp", 310, 3, 80, 1706, 20, 3, 16, 916),
      P("qsort", 2, 11, 46, 80, 0, 2, 20, 917),
      P("rijndael", 7, 45, 444, 1182, 15, 2, 16, 918),
      P("rsynth", 47, 3, 84, 716, 15, 2, 18, 919),
      P("sha", 7, 12, 50, 147, 15, 2, 18, 920),
      P("stringsearch", 10, 3, 41, 81, 25, 2, 16, 921),
      P("susan", 19, 15, 275, 1153, 15, 2, 16, 922),
      P("typeset", 362, 3, 160, 1500, 25, 4, 16, 923),
  };
}
