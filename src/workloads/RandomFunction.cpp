//===- workloads/RandomFunction.cpp - Random SSA function generation -----------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/RandomFunction.h"
#include "ir/IRBuilder.h"
#include "transforms/Cloning.h"
#include <algorithm>

using namespace salssa;

WorkloadEnvironment::WorkloadEnvironment(Module &M, RNG &Rng,
                                         unsigned NumLibFunctions,
                                         unsigned NumGlobals,
                                         const std::string &SymbolSuffix)
    : Mod(M) {
  Context &Ctx = M.getContext();
  const std::string &Suffix =
      SymbolSuffix.empty() ? M.getName() : SymbolSuffix;
  Type *I32 = Ctx.int32Ty();
  // Library declarations come in a handful of signatures so that drifted
  // clones can retarget calls without changing types.
  std::vector<Type *> Sigs[3] = {{I32}, {I32, I32}, {I32, I32, I32}};
  for (unsigned I = 0; I < NumLibFunctions; ++I) {
    Type *FnTy = Ctx.types().getFunctionTy(
        I32, Sigs[Rng.nextBelow(3)]);
    LibFns.push_back(
        M.createFunction("lib" + std::to_string(I) + "_" + Suffix, FnTy));
  }
  for (unsigned I = 0; I < NumGlobals; ++I)
    Globals.push_back(
        M.createGlobal("tbl" + std::to_string(I) + "_" + Suffix, I32, 16));
}

WorkloadEnvironment WorkloadEnvironment::attach(Module &M) {
  WorkloadEnvironment Env(M);
  for (Function *F : M.functions())
    if (F->isDeclaration())
      Env.LibFns.push_back(F);
  for (const auto &G : M.globals())
    Env.Globals.push_back(G.get());
  return Env;
}

namespace {

/// Structured random code emitter with a scope stack of available values,
/// guaranteeing dominance by construction.
class FunctionSynthesizer {
public:
  FunctionSynthesizer(WorkloadEnvironment &Env, RNG &Rng,
                      const RandomFunctionOptions &Options)
      : Env(Env), Rng(Rng), Options(Options),
        Ctx(Env.getModule().getContext()), B(Ctx) {}

  Function *build(const std::string &Name) {
    Context &C = Ctx;
    Type *I32 = C.int32Ty();
    // Return-type palette (RandomFunctionOptions::RetTypeVariety): slot 0
    // is the legacy i32, and with variety 1 no RNG draw happens at all —
    // pre-variety profiles must rebuild on the exact legacy stream.
    Type *Palette[5] = {I32, C.int64Ty(), C.int1Ty(), C.doubleTy(),
                        C.voidTy()};
    unsigned Variety = std::min(Options.RetTypeVariety, 5u);
    Type *RetTy =
        Variety > 1 ? Palette[Rng.nextBelow(Variety)] : Palette[0];
    // 1-3 i32 params.
    std::vector<Type *> Params(1 + Rng.nextBelow(3), I32);
    Function *F = Env.getModule().createFunction(
        Name, C.types().getFunctionTy(RetTy, Params));
    BasicBlock *Entry = F->createBlock("entry");
    B.setInsertPoint(Entry);
    for (const auto &A : F->args())
      Pool.push_back(A.get());
    Pool.push_back(C.getInt32(1));
    Pool.push_back(C.getInt32(7));

    unsigned Budget = Options.TargetSize;
    emitRegion(Budget, /*Depth=*/0);
    // The value pool is i32 (bodies are integer code like the paper's C
    // suites); non-i32 returns coerce a pool value at the exit.
    if (RetTy->isVoid())
      B.createRetVoid();
    else if (RetTy == C.int64Ty())
      B.createRet(B.createSExt(pickValue(), RetTy, "retw"));
    else if (RetTy == C.int1Ty())
      B.createRet(
          B.createICmp(CmpPredicate::SLT, pickValue(), pickValue(), "retb"));
    else if (RetTy == C.doubleTy())
      B.createRet(
          B.createCast(ValueKind::SIToFP, pickValue(), RetTy, "retf"));
    else
      B.createRet(pickValue());
    return F;
  }

private:
  Value *pickValue() {
    // Bias toward recent definitions for realistic dependence chains.
    if (Pool.size() > 4 && Rng.chancePercent(60))
      return Pool[Pool.size() - 1 - Rng.nextBelow(4)];
    return Rng.pick(Pool);
  }

  void define(Value *V) { Pool.push_back(V); }

  /// Emits roughly \p Budget instructions into the current block (and
  /// nested structures), leaving the builder in a block that all emitted
  /// values' scopes have exited correctly.
  void emitRegion(unsigned &Budget, unsigned Depth) {
    while (Budget > 0) {
      bool Structured = Depth < Options.MaxDepth && Budget > 8 &&
                        Rng.chancePercent(Options.ControlFlowPercent);
      if (!Structured) {
        emitSimpleStatement(Budget);
        continue;
      }
      if (Rng.chancePercent(Options.LoopPercent))
        emitLoop(Budget, Depth);
      else
        emitIfElse(Budget, Depth);
    }
  }

  void emitSimpleStatement(unsigned &Budget) {
    unsigned Kind = static_cast<unsigned>(Rng.nextBelow(100));
    if (Kind < 55)
      emitArith(Budget);
    else if (Kind < 75)
      emitCall(Budget);
    else if (Kind < 90)
      emitGlobalAccess(Budget);
    else
      emitCompareSelect(Budget);
  }

  void emitArith(unsigned &Budget) {
    static const ValueKind Ops[] = {
        ValueKind::Add, ValueKind::Sub,  ValueKind::Mul, ValueKind::And,
        ValueKind::Or,  ValueKind::Xor,  ValueKind::Shl, ValueKind::LShr,
        ValueKind::AShr};
    ValueKind Op = Ops[Rng.nextBelow(std::size(Ops))];
    Value *L = pickValue();
    Value *R = Rng.chancePercent(40)
                   ? static_cast<Value *>(
                         Ctx.getInt32(Rng.nextBelow(64) + 1))
                   : pickValue();
    // Shift amounts must stay in range to keep semantics stable.
    if (Op == ValueKind::Shl || Op == ValueKind::LShr ||
        Op == ValueKind::AShr)
      R = Ctx.getInt32(Rng.nextBelow(31) + 1);
    define(B.createBinOp(Op, L, R));
    Budget -= std::min(Budget, 1u);
  }

  void emitCall(unsigned &Budget) {
    Function *Callee = Rng.pick(Env.libFunctions());
    std::vector<Value *> Args;
    for (size_t K = 0; K < Callee->getFunctionType()->getParamTypes().size();
         ++K)
      Args.push_back(pickValue());
    if (Rng.chancePercent(Options.InvokePercent)) {
      emitInvoke(Callee, Args, Budget);
      return;
    }
    define(B.createCall(Callee, Args));
    Budget -= std::min(Budget, 1u);
  }

  void emitInvoke(Function *Callee, const std::vector<Value *> &Args,
                  unsigned &Budget) {
    Function *F = B.getInsertBlock()->getParent();
    BasicBlock *Normal = F->createBlock("inv.cont");
    BasicBlock *Unwind = F->createBlock("inv.lpad");
    Value *Res = B.createInvoke(Callee, Args, Normal, Unwind);
    B.setInsertPoint(Unwind);
    Value *Token = B.createLandingPad();
    B.createResume(Token);
    B.setInsertPoint(Normal);
    define(Res);
    Budget -= std::min(Budget, 4u);
  }

  void emitGlobalAccess(unsigned &Budget) {
    GlobalVariable *G = Rng.pick(Env.globals());
    // Bounded index: idx = value & 15.
    Value *Idx = B.createAnd(pickValue(), Ctx.getInt32(15));
    Value *Ptr = B.createGep(Ctx.int32Ty(), G, Idx);
    if (Rng.chancePercent(50)) {
      define(B.createLoad(Ctx.int32Ty(), Ptr));
    } else {
      B.createStore(pickValue(), Ptr);
    }
    Budget -= std::min(Budget, 3u);
  }

  void emitCompareSelect(unsigned &Budget) {
    static const CmpPredicate Preds[] = {
        CmpPredicate::EQ,  CmpPredicate::NE,  CmpPredicate::SLT,
        CmpPredicate::SLE, CmpPredicate::SGT, CmpPredicate::SGE,
        CmpPredicate::ULT, CmpPredicate::UGT};
    Value *C = B.createICmp(Preds[Rng.nextBelow(std::size(Preds))],
                            pickValue(), pickValue());
    define(B.createSelect(C, pickValue(), pickValue()));
    Budget -= std::min(Budget, 2u);
  }

  void emitIfElse(unsigned &Budget, unsigned Depth) {
    Function *F = B.getInsertBlock()->getParent();
    BasicBlock *Then = F->createBlock("then");
    BasicBlock *Else = F->createBlock("else");
    BasicBlock *Join = F->createBlock("join");
    Value *Cond = B.createICmp(CmpPredicate::SLT, pickValue(), pickValue());
    B.createCondBr(Cond, Then, Else);
    Budget -= std::min(Budget, 2u);

    size_t Scope = Pool.size();
    unsigned ThenBudget = std::min(Budget, 3 + static_cast<unsigned>(
                                                   Rng.nextBelow(8)));
    Budget -= ThenBudget;
    B.setInsertPoint(Then);
    emitRegion(ThenBudget, Depth + 1);
    Value *ThenVal = pickValue();
    BasicBlock *ThenExit = B.getInsertBlock();
    B.createBr(Join);
    Pool.resize(Scope); // branch-local values fall out of scope

    unsigned ElseBudget = std::min(Budget, 3 + static_cast<unsigned>(
                                                   Rng.nextBelow(8)));
    Budget -= ElseBudget;
    B.setInsertPoint(Else);
    emitRegion(ElseBudget, Depth + 1);
    Value *ElseVal = pickValue();
    BasicBlock *ElseExit = B.getInsertBlock();
    B.createBr(Join);
    Pool.resize(Scope);

    B.setInsertPoint(Join);
    if (Rng.chancePercent(Options.JoinPhiPercent) &&
        ThenVal->getType() == ElseVal->getType()) {
      PhiInst *P = B.createPhi(ThenVal->getType());
      P->addIncoming(ThenVal, ThenExit);
      P->addIncoming(ElseVal, ElseExit);
      define(P);
    }
  }

  void emitLoop(unsigned &Budget, unsigned Depth) {
    Function *F = B.getInsertBlock()->getParent();
    BasicBlock *Header = F->createBlock("loop.h");
    BasicBlock *Body = F->createBlock("loop.b");
    BasicBlock *Exit = F->createBlock("loop.e");
    BasicBlock *Pre = B.getInsertBlock();

    Value *AccSeed = pickValue();
    B.createBr(Header);
    B.setInsertPoint(Header);
    PhiInst *IV = B.createPhi(Ctx.int32Ty(), "iv");
    PhiInst *Acc = B.createPhi(Ctx.int32Ty(), "acc");
    unsigned Trip = 2 + static_cast<unsigned>(Rng.nextBelow(11));
    Value *Cond = B.createICmp(CmpPredicate::SLT, IV,
                               Ctx.getInt32(Trip));
    B.createCondBr(Cond, Body, Exit);
    Budget -= std::min(Budget, 4u);

    size_t Scope = Pool.size();
    Pool.push_back(IV);
    Pool.push_back(Acc);
    unsigned BodyBudget = std::min(Budget, 4 + static_cast<unsigned>(
                                                   Rng.nextBelow(10)));
    Budget -= BodyBudget;
    B.setInsertPoint(Body);
    emitRegion(BodyBudget, Depth + 1);
    Value *AccNext = B.createAdd(Acc, pickValue());
    Value *IVNext = B.createAdd(IV, Ctx.getInt32(1));
    BasicBlock *Latch = B.getInsertBlock();
    B.createBr(Header);
    Pool.resize(Scope);

    IV->addIncoming(Ctx.getInt32(0), Pre);
    IV->addIncoming(IVNext, Latch);
    Acc->addIncoming(AccSeed, Pre);
    Acc->addIncoming(AccNext, Latch);

    B.setInsertPoint(Exit);
    // Header phis dominate the exit.
    Pool.push_back(Acc);
  }

  WorkloadEnvironment &Env;
  RNG &Rng;
  RandomFunctionOptions Options;
  Context &Ctx;
  IRBuilder B;
  std::vector<Value *> Pool;
};

/// Integer opcodes whose chains may be rotated without changing meaning
/// (commutative and associative; mirrors the canonicalizer's reassociation
/// set so every rotation is recoverable).
bool isRotatableKind(ValueKind K) {
  switch (K) {
  case ValueKind::Add:
  case ValueKind::Mul:
  case ValueKind::And:
  case ValueKind::Or:
  case ValueKind::Xor:
    return true;
  default:
    return false;
  }
}

/// Semantics-preserving syntactic divergence (DriftOptions::
/// SyntacticPercent): every rewrite leaves the function interpreter-
/// equivalent to its input — only the spelling changes. Callers gate on
/// Percent != 0, so the default knob value draws nothing from \p Rng.
void applySyntacticDrift(Function *F, RNG &Rng, unsigned Percent) {
  Context &Ctx = F->getParent()->getContext();
  for (BasicBlock *BB : *F) {
    // Snapshot: rewrites insert and erase instructions.
    std::vector<Instruction *> Insts(BB->begin(), BB->end());
    for (Instruction *I : Insts) {
      if (auto *BO = dyn_cast<BinaryOperator>(I)) {
        if (BO->isCommutative() && Rng.chancePercent(Percent))
          BO->swapOperands();
        if (isRotatableKind(BO->getOpcode()) && Rng.chancePercent(Percent)) {
          // Rotate (a op b) op c into a op (b op c) when the left
          // subtree is exclusively ours to re-express.
          auto *L = dyn_cast<BinaryOperator>(BO->getLHS());
          if (L && L->getOpcode() == BO->getOpcode() &&
              L->getType() == BO->getType() && L->hasOneUse()) {
            auto *Inner = new BinaryOperator(BO->getOpcode(), L->getRHS(),
                                             BO->getRHS());
            Inner->insertBefore(BO);
            auto *Outer =
                new BinaryOperator(BO->getOpcode(), L->getLHS(), Inner);
            Outer->setName(BO->getName());
            Outer->insertBefore(BO);
            BO->replaceAllUsesWith(Outer);
            BO->eraseFromParent();
            L->eraseFromParent();
            continue; // I is gone; the snapshot moves on
          }
        }
      } else if (auto *CI = dyn_cast<CmpInst>(I)) {
        if (Rng.chancePercent(Percent))
          CI->swapOperandsAndPredicate();
      }
      if (!I->getType()->isVoid() && Rng.chancePercent(Percent))
        I->setName("syn" + std::to_string(Rng.nextBelow(4096)));
      // Skip terminator-produced values (invoke results): the spill
      // would precede its own definition.
      if (I->getType()->isIntegerWidth(32) && !I->isPhi() &&
          I != BB->getTerminator() && Rng.chancePercent(Percent)) {
        // Dead store: spill the value into a fresh slot nothing reads.
        Instruction *Term = BB->getTerminator();
        auto *Slot = new AllocaInst(Ctx.int32Ty(), Ctx.ptrTy(), 1);
        Slot->insertBefore(Term);
        auto *Spill = new StoreInst(I, Slot, Ctx.voidTy());
        Spill->insertBefore(Term);
      }
      if (I->isBinaryOp() && I->hasUses() && Rng.chancePercent(Percent)) {
        // Redundant recompute: duplicate the expression at one use.
        auto *UI = cast<Instruction>(I->users().front());
        if (!UI->isPhi()) {
          auto *Dup = new BinaryOperator(I->getOpcode(), I->getOperand(0),
                                         I->getOperand(1));
          Dup->insertBefore(UI);
          int SlotIdx = UI->findOperand(I);
          if (SlotIdx >= 0)
            UI->setOperand(static_cast<unsigned>(SlotIdx), Dup);
        }
      }
      if (auto *BO = dyn_cast<BinaryOperator>(I)) {
        // Spelling flip: x + C and x - (2^w - C) are the same wraparound
        // operation, but the flip moves the add/sub opcode-histogram
        // buckets — the kind of surface divergence real refactors leave
        // behind. Last rewrite in the body: it replaces I.
        ValueKind Op = BO->getOpcode();
        if (Op == ValueKind::Add || Op == ValueKind::Sub) {
          auto *C = dyn_cast<ConstantInt>(BO->getRHS());
          if (C && BO->getType()->isInteger() && !BO->getType()->isBool() &&
              Rng.chancePercent(Percent)) {
            ValueKind Flip =
                Op == ValueKind::Add ? ValueKind::Sub : ValueKind::Add;
            auto *Repl = new BinaryOperator(
                Flip, BO->getLHS(),
                Ctx.getInt(BO->getType(), 0 - C->getZExtValue()));
            Repl->setName(BO->getName());
            Repl->insertBefore(BO);
            BO->replaceAllUsesWith(Repl);
            BO->eraseFromParent();
          }
        }
      }
    }
  }
}

} // namespace

Function *salssa::generateRandomFunction(WorkloadEnvironment &Env, RNG &Rng,
                                         const std::string &Name,
                                         const RandomFunctionOptions &Options) {
  FunctionSynthesizer S(Env, Rng, Options);
  return S.build(Name);
}

Function *salssa::cloneWithDrift(Function *Base, const std::string &Name,
                                 WorkloadEnvironment &Env, RNG &Rng,
                                 const DriftOptions &Options) {
  Module *SrcM = Base->getParent();
  Module &DstM = Env.getModule();
  Function *F;
  if (SrcM == &DstM) {
    F = cloneFunction(Base, Name);
  } else {
    // Cross-module clone: remap the source module's globals and library
    // declarations positionally onto the target environment's. The two
    // environments were built from identical RNG streams (see
    // buildBenchmarkModuleGroup), so counts and types line up.
    std::map<const Value *, Value *> ValueMap;
    const auto &SrcGlobals = SrcM->globals();
    const auto &DstGlobals = Env.globals();
    assert(SrcGlobals.size() >= DstGlobals.size() &&
           "source module missing environment globals");
    for (size_t I = 0; I < DstGlobals.size(); ++I)
      ValueMap[SrcGlobals[I].get()] = DstGlobals[I];

    std::vector<Function *> SrcLibs;
    for (Function *SrcF : SrcM->functions())
      if (SrcF->isDeclaration())
        SrcLibs.push_back(SrcF);
    const std::vector<Function *> &DstLibs = Env.libFunctions();
    assert(SrcLibs.size() == DstLibs.size() &&
           "library environments differ in shape");
    std::map<const Function *, Function *> CalleeMap;
    for (size_t I = 0; I < SrcLibs.size(); ++I) {
      assert(SrcLibs[I]->getFunctionType() == DstLibs[I]->getFunctionType() &&
             "library environments differ in signatures");
      CalleeMap[SrcLibs[I]] = DstLibs[I];
    }
    F = cloneFunctionInto(Base, DstM, Name, ValueMap, CalleeMap);
  }
  driftFunctionBody(F, Env, Rng, Options);
  return F;
}

void salssa::driftFunctionBody(Function *F, WorkloadEnvironment &Env,
                               RNG &Rng, const DriftOptions &Options) {
  Context &Ctx = F->getParent()->getContext();

  for (BasicBlock *BB : *F) {
    // Snapshot: insertions must not be revisited.
    std::vector<Instruction *> Insts(BB->begin(), BB->end());
    for (Instruction *I : Insts) {
      if (Rng.chancePercent(Options.InsertPercent) && !I->isTerminator() &&
          !I->isPhi() && I->getType()->isIntegerWidth(32) && I->hasUses()) {
        // Structural drift: interpose v' = v + c on one use of v.
        User *U = I->users().front();
        auto *UI = cast<Instruction>(U);
        if (!UI->isPhi()) {
          auto *Extra = new BinaryOperator(
              ValueKind::Add, I,
              Ctx.getInt32(Rng.nextBelow(32) + 1));
          Extra->insertBefore(UI);
          int Slot = UI->findOperand(I);
          // The new add itself now uses I; only rewire the original user.
          if (Slot >= 0 && UI != Extra)
            UI->setOperand(static_cast<unsigned>(Slot), Extra);
        }
      }
      if (!Rng.chancePercent(Options.MutatePercent))
        continue;
      Instruction *Cur = I; // survives opcode-swap replacement
      switch (I->getOpcode()) {
      case ValueKind::Add:
      case ValueKind::Sub:
      case ValueKind::Mul:
      case ValueKind::And:
      case ValueKind::Or:
      case ValueKind::Xor: {
        // Swap opcode within the integer class and/or constants.
        static const ValueKind Alt[] = {ValueKind::Add, ValueKind::Sub,
                                        ValueKind::Mul, ValueKind::And,
                                        ValueKind::Or, ValueKind::Xor};
        auto *Old = cast<BinaryOperator>(I);
        auto *New = new BinaryOperator(Alt[Rng.nextBelow(std::size(Alt))],
                                       Old->getLHS(), Old->getRHS());
        New->setName(Old->getName());
        New->insertBefore(Old);
        Old->replaceAllUsesWith(New);
        Old->eraseFromParent();
        Cur = New;
        break;
      }
      case ValueKind::ICmp: {
        auto *C = cast<ICmpInst>(I);
        static const CmpPredicate Preds[] = {
            CmpPredicate::EQ,  CmpPredicate::NE, CmpPredicate::SLT,
            CmpPredicate::SLE, CmpPredicate::SGT, CmpPredicate::SGE};
        C->setPredicate(Preds[Rng.nextBelow(std::size(Preds))]);
        break;
      }
      case ValueKind::Call: {
        auto *C = cast<CallInst>(I);
        // Retarget to a same-signature library function when one exists.
        std::vector<Function *> Compatible;
        for (Function *L : Env.libFunctions())
          if (L->getFunctionType() == C->getCallee()->getFunctionType())
            Compatible.push_back(L);
        if (!Compatible.empty() && C->getCallee()->isDeclaration())
          C->setCallee(Rng.pick(Compatible));
        break;
      }
      default:
        break;
      }
      // Constant operand drift — but never on address computations (gep
      // indices / and-masks guard the global tables' bounds).
      switch (Cur->getOpcode()) {
      case ValueKind::Add:
      case ValueKind::Sub:
      case ValueKind::Mul:
      case ValueKind::Or:
      case ValueKind::Xor:
      case ValueKind::ICmp:
      case ValueKind::Select:
      case ValueKind::Call:
      case ValueKind::Ret:
        for (unsigned K = 0; K < Cur->getNumOperands(); ++K) {
          auto *C = dyn_cast<ConstantInt>(Cur->getOperand(K));
          if (C && C->getType()->isIntegerWidth(32) &&
              Rng.chancePercent(50))
            Cur->setOperand(K, Ctx.getInt32(Rng.nextBelow(128) + 1));
        }
        break;
      default:
        break;
      }
    }
  }

  // Gated on the knob itself, not just per-site probabilities: the
  // default SyntacticPercent = 0 must consume no RNG draws so every
  // pre-existing workload rebuilds byte-identically.
  if (Options.SyntacticPercent != 0)
    applySyntacticDrift(F, Rng, Options.SyntacticPercent);
}
