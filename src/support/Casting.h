//===- support/Casting.h - LLVM-style isa/cast/dyn_cast ------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight reimplementation of LLVM's opt-in RTTI templates. A class
/// hierarchy participates by providing `static bool classof(const Base *)`
/// on each derived class; `isa<>`, `cast<>` and `dyn_cast<>` then work as
/// they do in LLVM.
///
//===----------------------------------------------------------------------===//

#ifndef SALSSA_SUPPORT_CASTING_H
#define SALSSA_SUPPORT_CASTING_H

#include <cassert>
#include <type_traits>

namespace salssa {

/// Returns true if \p Val is an instance of \p To (or a subclass of it).
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

/// Variadic form: true if \p Val is any of the listed classes.
template <typename To, typename To2, typename... Rest, typename From>
bool isa(const From *Val) {
  return isa<To>(Val) || isa<To2, Rest...>(Val);
}

/// Checked downcast: asserts that \p Val really is a \p To.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<To *>(Val);
}

template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<const To *>(Val);
}

/// Checking downcast: returns null when \p Val is not a \p To.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

/// Null-tolerant variants.
template <typename To, typename From> To *dyn_cast_or_null(From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

template <typename To, typename From>
const To *dyn_cast_or_null(const From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

} // namespace salssa

#endif // SALSSA_SUPPORT_CASTING_H
