//===- support/Chrono.h - Timing helpers -------------------------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one steady-clock delta helper every instrumented component uses
/// (merge attempts, the pipeline stages, the driver's pass total), so
/// all reported seconds share a single clock base.
///
//===----------------------------------------------------------------------===//

#ifndef SALSSA_SUPPORT_CHRONO_H
#define SALSSA_SUPPORT_CHRONO_H

#include <chrono>

namespace salssa {

/// Seconds elapsed since \p Start on the steady clock.
inline double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

} // namespace salssa

#endif // SALSSA_SUPPORT_CHRONO_H
