//===- support/ThreadPool.cpp - Fixed-size worker pool -----------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"
#include <algorithm>
#include <utility>

using namespace salssa;

unsigned ThreadPool::resolveThreadCount(unsigned Requested) {
  if (Requested != 0)
    return std::max(1u, Requested);
  unsigned HW = std::thread::hardware_concurrency();
  return HW == 0 ? 1 : HW;
}

ThreadPool::ThreadPool(unsigned NumThreads) {
  unsigned N = resolveThreadCount(NumThreads);
  Workers.reserve(N);
  for (unsigned I = 0; I < N; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    Stopping = true;
  }
  JobAvailable.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::submit(std::function<void()> Job) {
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    Queue.push_back(std::move(Job));
    ++InFlight;
  }
  JobAvailable.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Lock(Mutex);
  Quiescent.wait(Lock, [this] { return InFlight == 0; });
  // Surface the first job exception on the waiting thread. Stealing the
  // pointer before unlocking keeps the pool usable afterwards (a later
  // batch starts with a clean slate).
  if (FirstException) {
    std::exception_ptr E = std::exchange(FirstException, nullptr);
    Lock.unlock();
    std::rethrow_exception(E);
  }
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Job;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      JobAvailable.wait(Lock, [this] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // Stopping and drained
      Job = std::move(Queue.front());
      Queue.pop_front();
    }
    // A throwing job must not unwind the worker thread (std::terminate)
    // or wedge the quiescence accounting: capture the first exception
    // for the next wait() and keep draining.
    try {
      Job();
    } catch (...) {
      std::unique_lock<std::mutex> Lock(Mutex);
      if (!FirstException)
        FirstException = std::current_exception();
    }
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      if (--InFlight == 0)
        Quiescent.notify_all();
    }
  }
}
