//===- support/ThreadPool.cpp - Fixed-size worker pool -----------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"
#include <algorithm>

using namespace salssa;

unsigned ThreadPool::resolveThreadCount(unsigned Requested) {
  if (Requested != 0)
    return std::max(1u, Requested);
  unsigned HW = std::thread::hardware_concurrency();
  return HW == 0 ? 1 : HW;
}

ThreadPool::ThreadPool(unsigned NumThreads) {
  unsigned N = resolveThreadCount(NumThreads);
  Workers.reserve(N);
  for (unsigned I = 0; I < N; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    Stopping = true;
  }
  JobAvailable.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::submit(std::function<void()> Job) {
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    Queue.push_back(std::move(Job));
    ++InFlight;
  }
  JobAvailable.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Lock(Mutex);
  Quiescent.wait(Lock, [this] { return InFlight == 0; });
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Job;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      JobAvailable.wait(Lock, [this] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // Stopping and drained
      Job = std::move(Queue.front());
      Queue.pop_front();
    }
    Job();
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      if (--InFlight == 0)
        Quiescent.notify_all();
    }
  }
}
