//===- support/ThreadPool.h - Fixed-size worker pool -------------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal fixed-size worker pool for the merge pipeline's attempt
/// stage. Jobs are opaque callables executed in FIFO order by a fixed set
/// of threads; wait() blocks the caller until every submitted job has
/// finished, establishing a happens-before edge between all worker writes
/// and the caller (the property the optimistic commit stage relies on).
///
/// The pool is deliberately small: no futures, no task stealing, no
/// priorities. Callers that need per-worker state (staging modules,
/// timer accumulators) submit one "drain" job per worker slot, each
/// pulling shared work items off an atomic cursor.
///
//===----------------------------------------------------------------------===//

#ifndef SALSSA_SUPPORT_THREADPOOL_H
#define SALSSA_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace salssa {

/// Fixed-size thread pool with FIFO job dispatch and quiescence waiting.
class ThreadPool {
public:
  /// Spawns \p NumThreads workers. 0 resolves to the hardware concurrency
  /// (at least 1).
  explicit ThreadPool(unsigned NumThreads);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned numThreads() const { return static_cast<unsigned>(Workers.size()); }

  /// Enqueues one job. Never blocks (the queue is unbounded).
  void submit(std::function<void()> Job);

  /// Blocks until every job submitted so far has completed. Safe to call
  /// repeatedly; the pool stays usable afterwards.
  void wait();

  /// Resolves a user-facing thread-count knob: 0 means "use the
  /// hardware", anything else is taken literally (at least 1).
  static unsigned resolveThreadCount(unsigned Requested);

private:
  void workerLoop();

  std::vector<std::thread> Workers;
  std::deque<std::function<void()>> Queue;
  std::mutex Mutex;
  std::condition_variable JobAvailable; ///< signalled on submit/stop
  std::condition_variable Quiescent;    ///< signalled when work drains
  size_t InFlight = 0;                  ///< queued + currently executing
  bool Stopping = false;
};

} // namespace salssa

#endif // SALSSA_SUPPORT_THREADPOOL_H
