//===- support/ThreadPool.h - Fixed-size worker pool -------------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal fixed-size worker pool for the merge pipeline's attempt
/// stage. Jobs are opaque callables executed in FIFO order by a fixed set
/// of threads; wait() blocks the caller until every submitted job has
/// finished, establishing a happens-before edge between all worker writes
/// and the caller (the property the optimistic commit stage relies on).
///
/// The pool is deliberately small: no futures, no task stealing, no
/// priorities. Callers that need per-worker state (staging modules,
/// timer accumulators) submit one "drain" job per worker slot, each
/// pulling shared work items off an atomic cursor.
///
/// A throwing job does NOT terminate the process: the first exception a
/// worker observes is captured (std::exception_ptr) and rethrown from
/// the next wait() on the submitting thread; later exceptions from the
/// same batch are dropped (first-wins). The remaining jobs still run —
/// an exception never wedges the queue — and the pool stays usable after
/// the rethrow. An exception still pending at destruction is dropped
/// (there is no caller left to receive it).
///
//===----------------------------------------------------------------------===//

#ifndef SALSSA_SUPPORT_THREADPOOL_H
#define SALSSA_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace salssa {

/// Fixed-size thread pool with FIFO job dispatch and quiescence waiting.
class ThreadPool {
public:
  /// Spawns \p NumThreads workers. 0 resolves to the hardware concurrency
  /// (at least 1).
  explicit ThreadPool(unsigned NumThreads);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned numThreads() const { return static_cast<unsigned>(Workers.size()); }

  /// Enqueues one job. Never blocks (the queue is unbounded).
  void submit(std::function<void()> Job);

  /// Blocks until every job submitted so far has completed, then
  /// rethrows the first exception any of them threw (if one did). Safe
  /// to call repeatedly; the pool stays usable afterwards — including
  /// after a rethrow.
  void wait();

  /// Resolves a user-facing thread-count knob: 0 means "use the
  /// hardware", anything else is taken literally (at least 1).
  static unsigned resolveThreadCount(unsigned Requested);

private:
  void workerLoop();

  std::vector<std::thread> Workers;
  std::deque<std::function<void()>> Queue;
  std::mutex Mutex;
  std::condition_variable JobAvailable; ///< signalled on submit/stop
  std::condition_variable Quiescent;    ///< signalled when work drains
  size_t InFlight = 0;                  ///< queued + currently executing
  bool Stopping = false;
  std::exception_ptr FirstException;    ///< first job throw, pending wait()
};

} // namespace salssa

#endif // SALSSA_SUPPORT_THREADPOOL_H
