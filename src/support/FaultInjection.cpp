//===- support/FaultInjection.cpp - Deterministic fault points ----------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjection.h"
#include <cstdlib>

using namespace salssa;

namespace {

/// splitmix64 finalizer: the same mixer classSeed uses in
/// ShardedSessionRunner — full-avalanche, so nearby seeds/keys decide
/// independently.
uint64_t mix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

/// FNV-1a over the key bytes, folded through the mixer. Name strings are
/// the identity of a pool entry across thread/shard counts (pointers and
/// pool indices are not), which is why the fault keys are strings.
///
/// One wrinkle: merged-function names carry a module-unique numeric
/// counter after each ".m" hop ("f.m.22", "f.m.22.m.7"), and the counter
/// value depends on name-allocation history — a shard's scratch module
/// burns different counters than the final host even when the merge sets
/// are identical (the splice renames to the canonical sequence only
/// afterwards). Fault decisions must survive that renaming or a sharded
/// faulted session diverges from the unsharded one, so keys are hashed
/// with the counters dropped: "f.m.22.m.7" hashes as "f.m.m". Lineage
/// names stay unique among concurrently-live functions (a function is
/// retired when its merge commits, so at most one ".m" descendant per
/// origin is ever live), making this a faithful stable identity.
uint64_t hashKey(uint64_t H, std::string_view Key) {
  auto step = [&H](char C) {
    H ^= static_cast<unsigned char>(C);
    H *= 0x100000001b3ULL;
  };
  for (size_t I = 0; I < Key.size(); ++I) {
    step(Key[I]);
    // Just hashed a complete ".m" segment? Skip a ".<digits>" counter.
    if (Key[I] == 'm' && I >= 1 && Key[I - 1] == '.' && I + 1 < Key.size() &&
        Key[I + 1] == '.') {
      size_t K = I + 2;
      while (K < Key.size() && Key[K] >= '0' && Key[K] <= '9')
        ++K;
      if (K > I + 2 && (K == Key.size() || Key[K] == '.'))
        I = K - 1; // counter dropped; resume at the following char
    }
  }
  // Separator: ("ab", "c") must not collide with ("a", "bc").
  H ^= 0xffULL;
  H *= 0x100000001b3ULL;
  return H;
}

const char *kindName(FaultKind K) {
  switch (K) {
  case FaultKind::AlignmentThrow:
    return "injected fault: alignment throw";
  case FaultKind::CodeGenCorruption:
    return "injected fault: codegen corruption";
  case FaultKind::TaskFailure:
    return "injected fault: task failure";
  case FaultKind::BudgetBlowout:
    return "injected fault: budget blowout";
  case FaultKind::Fingerprint:
    return "injected fault: structural fingerprint";
  case FaultKind::CacheIO:
    return "injected fault: decision-cache I/O";
  case FaultKind::Ranking:
    return "injected fault: candidate ranking";
  case FaultKind::SymbolResolution:
    return "injected fault: symbol resolution";
  case FaultKind::Protocol:
    return "injected fault: protocol frame damage";
  }
  return "injected fault";
}

/// Parses one decimal field; returns \p Fallback on garbage (the spec
/// grammar is forgiving by design, see the header).
uint64_t parseNumber(const std::string &S, uint64_t Fallback) {
  if (S.empty())
    return Fallback;
  uint64_t V = 0;
  for (char C : S) {
    if (C < '0' || C > '9')
      return Fallback;
    V = V * 10 + static_cast<uint64_t>(C - '0');
  }
  return V;
}

} // namespace

FaultInjectionConfig FaultInjectionConfig::parse(const std::string &Spec) {
  FaultInjectionConfig C;
  size_t Pos = 0;
  while (Pos < Spec.size()) {
    size_t End = Spec.find(',', Pos);
    if (End == std::string::npos)
      End = Spec.size();
    std::string Field = Spec.substr(Pos, End - Pos);
    Pos = End + 1;
    size_t Eq = Field.find('=');
    if (Eq == std::string::npos)
      continue;
    std::string Key = Field.substr(0, Eq);
    std::string Val = Field.substr(Eq + 1);
    if (Key == "seed")
      C.Seed = parseNumber(Val, C.Seed);
    else if (Key == "align")
      C.setRate(FaultKind::AlignmentThrow,
                static_cast<uint32_t>(parseNumber(Val, 0)));
    else if (Key == "codegen")
      C.setRate(FaultKind::CodeGenCorruption,
                static_cast<uint32_t>(parseNumber(Val, 0)));
    else if (Key == "task")
      C.setRate(FaultKind::TaskFailure,
                static_cast<uint32_t>(parseNumber(Val, 0)));
    else if (Key == "budget")
      C.setRate(FaultKind::BudgetBlowout,
                static_cast<uint32_t>(parseNumber(Val, 0)));
    else if (Key == "fingerprint")
      C.setRate(FaultKind::Fingerprint,
                static_cast<uint32_t>(parseNumber(Val, 0)));
    else if (Key == "cacheio")
      C.setRate(FaultKind::CacheIO,
                static_cast<uint32_t>(parseNumber(Val, 0)));
    else if (Key == "ranking")
      C.setRate(FaultKind::Ranking,
                static_cast<uint32_t>(parseNumber(Val, 0)));
    else if (Key == "symres")
      C.setRate(FaultKind::SymbolResolution,
                static_cast<uint32_t>(parseNumber(Val, 0)));
    else if (Key == "protocol")
      C.setRate(FaultKind::Protocol,
                static_cast<uint32_t>(parseNumber(Val, 0)));
    // Unknown keys: ignored.
  }
  return C;
}

FaultInjectionConfig FaultInjectionConfig::fromEnv() {
  const char *Spec = std::getenv("SALSSA_FAULTS");
  if (!Spec || !*Spec)
    return FaultInjectionConfig();
  return parse(Spec);
}

InjectedFault::InjectedFault(FaultKind K)
    : std::runtime_error(kindName(K)), Kind(K) {}

bool salssa::faultFires(const FaultInjectionConfig &C, FaultKind K,
                        std::string_view Key1, std::string_view Key2) {
  uint32_t Rate = C.rate(K);
  if (Rate == 0)
    return false;
  if (Rate >= 1000)
    return true;
  uint64_t H = mix64(C.Seed ^ (0xf417ULL + static_cast<uint64_t>(K)));
  H = hashKey(H, Key1);
  H = hashKey(H, Key2);
  return mix64(H) % 1000 < Rate;
}

void salssa::maybeInjectFault(const FaultInjectionConfig &C, FaultKind K,
                              std::string_view Key1, std::string_view Key2) {
  if (faultFires(C, K, Key1, Key2))
    throw InjectedFault(K);
}
