//===- support/FaultInjection.h - Deterministic fault points -----------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic, seed-keyed fault injection for the merge pipeline's
/// failure-containment layer. A fault point asks "does kind K fire for
/// key (A, B)?" and the answer is a pure hash of (seed, kind, A, B) —
/// not a thread-local RNG — so the *same* attempts fault at every thread
/// count, every shard count, and on both the speculative and the inline
/// re-attempt path of one pair. That is what lets fault_injection_test
/// assert byte-identical surviving merge sets per seed while still
/// exercising the guards from arbitrary interleavings.
///
/// The config is carried on MergeDriverOptions (programmatic arming) or
/// parsed from the SALSSA_FAULTS environment variable (arming a stock
/// binary, e.g. a bench under soak):
///
///   SALSSA_FAULTS="seed=42,align=100,codegen=50,task=50,budget=25"
///
/// Rates are per-mille (0-1000) per fault kind; a kind left out stays
/// disarmed. This header is IR-free on purpose: what a fired fault *does*
/// (throw, corrupt a body, blow a budget) is decided by the merge layer;
/// support/ only answers the deterministic "does it fire" question.
///
//===----------------------------------------------------------------------===//

#ifndef SALSSA_SUPPORT_FAULTINJECTION_H
#define SALSSA_SUPPORT_FAULTINJECTION_H

#include <array>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace salssa {

/// The failure modes the containment layer is tested against.
enum class FaultKind : uint8_t {
  /// The attempt throws mid-alignment (before any code generation):
  /// models a pathological pair blowing up the aligner. Keyed by the
  /// pair, so the inline re-attempt of a faulted speculative attempt
  /// faults identically.
  AlignmentThrow = 0,
  /// Code generation completes but the merged body is deterministically
  /// corrupted (an extra terminator): models a codegen bug. The attempt
  /// itself succeeds — the always-on commit firewall must catch it.
  CodeGenCorruption,
  /// A worker task aborts *outside* the per-attempt guard: models an
  /// infrastructure failure. Recovered by the per-task guard + inline
  /// re-attempt, so it must never change outcomes, only waste work.
  TaskFailure,
  /// The attempt reports a blown resource budget even when no explicit
  /// caps are configured: exercises the budget-reject path.
  BudgetBlowout,
  /// Structural fingerprinting of one function throws during the
  /// pre-clustering ranking stage (merge/StructuralHash.h): the
  /// function silently loses its fast path and stays in the ordinary
  /// pipeline pool. Keyed by the function name.
  Fingerprint,
  /// Decision-cache I/O fails (merge/DecisionCache.h): a fired load
  /// point rejects the file (cold run, CacheLoadRejected counted) and a
  /// fired save point skips the write. Keyed by the cache path plus
  /// "load"/"save".
  CacheIO,
  /// Candidate ranking throws while a session plans work (e.g. the
  /// MergeService recomputing index entries for a delta): models a
  /// corrupted planner structure. Keyed by the touched function name —
  /// a long-lived session must degrade to a counted full re-merge, not
  /// a corrupt session.
  Ranking,
  /// Linker-style symbol resolution throws mid-delta: models a broken
  /// cross-module binding pass. Keyed by the session/delta identity.
  SymbolResolution,
  /// A wire-protocol frame is damaged in flight (service/Protocol.h):
  /// a fired point truncates the frame, corrupts its checksum, or drops
  /// the connection mid-request. Keyed by the connection and request
  /// identity plus the damage flavour ("truncate"/"checksum"/
  /// "disconnect"). The daemon must answer with a clean per-request
  /// error — never a wedged session.
  Protocol,
};

constexpr unsigned NumFaultKinds = 9;

/// Per-kind fault rates plus the seed that keys every decision.
struct FaultInjectionConfig {
  uint64_t Seed = 0;
  /// Firing probability per kind in per-mille (0 = disarmed, 1000 =
  /// every decision fires).
  std::array<uint32_t, NumFaultKinds> RatePerMille{};

  bool armed() const {
    for (uint32_t R : RatePerMille)
      if (R != 0)
        return true;
    return false;
  }
  uint32_t rate(FaultKind K) const {
    return RatePerMille[static_cast<size_t>(K)];
  }
  void setRate(FaultKind K, uint32_t PerMille) {
    RatePerMille[static_cast<size_t>(K)] = PerMille > 1000 ? 1000 : PerMille;
  }

  /// Parses a "seed=N,align=R,codegen=R,task=R,budget=R,fingerprint=R,
  /// cacheio=R,ranking=R,symres=R,protocol=R" spec. Unknown keys and
  /// malformed numbers are ignored (a
  /// soak harness must not crash the binary it is soaking); missing
  /// keys keep their defaults.
  static FaultInjectionConfig parse(const std::string &Spec);

  /// Config from the SALSSA_FAULTS environment variable; disarmed when
  /// the variable is unset or empty.
  static FaultInjectionConfig fromEnv();
};

/// Thrown by a fired throwing fault point. Deliberately a plain
/// std::runtime_error subclass: the guards catch std::exception, so an
/// injected fault travels exactly the path a real one would.
class InjectedFault : public std::runtime_error {
public:
  explicit InjectedFault(FaultKind K);
  FaultKind kind() const { return Kind; }

private:
  FaultKind Kind;
};

/// The deterministic decision: does \p K fire for keys (\p Key1, \p Key2)
/// under \p C? Pure in all arguments (splitmix64-style mixing of the
/// seed, the kind, and both key strings), uniform enough that the
/// configured per-mille rate is realized to within a few per-mille over
/// a few hundred decisions.
bool faultFires(const FaultInjectionConfig &C, FaultKind K,
                std::string_view Key1, std::string_view Key2 = {});

/// Throws InjectedFault(K) iff faultFires(...).
void maybeInjectFault(const FaultInjectionConfig &C, FaultKind K,
                      std::string_view Key1, std::string_view Key2 = {});

} // namespace salssa

#endif // SALSSA_SUPPORT_FAULTINJECTION_H
