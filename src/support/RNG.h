//===- support/RNG.h - Deterministic random number generation ------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small deterministic RNG (SplitMix64) used by the workload generators
/// and the property-based tests. We avoid <random> distributions because
/// their outputs are not guaranteed to be identical across standard library
/// implementations; experiment reproducibility requires bit-exact streams.
///
//===----------------------------------------------------------------------===//

#ifndef SALSSA_SUPPORT_RNG_H
#define SALSSA_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>
#include <vector>

namespace salssa {

/// The SplitMix64 finalizer: a cheap, well-mixed 64-bit permutation.
/// Shared by the RNG, the interpreter's hashing, and the fingerprint
/// sketches so the constants live in exactly one place.
inline uint64_t mix64(uint64_t Z) {
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

/// Deterministic 64-bit RNG with a tiny state, suitable for seeding many
/// independent streams (one per generated function/benchmark).
class RNG {
public:
  explicit RNG(uint64_t Seed) : State(Seed) {}

  /// Returns the next raw 64-bit value (SplitMix64).
  uint64_t next() { return mix64(State += 0x9e3779b97f4a7c15ULL); }

  /// Uniform integer in [0, Bound). \p Bound must be nonzero.
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound != 0 && "nextBelow(0) is meaningless");
    // Modulo bias is irrelevant for workload generation purposes.
    return next() % Bound;
  }

  /// Uniform integer in [Lo, Hi] inclusive.
  int64_t nextRange(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "empty range");
    return Lo + static_cast<int64_t>(
                    nextBelow(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// Bernoulli draw: true with probability \p Percent / 100.
  bool chancePercent(unsigned Percent) { return nextBelow(100) < Percent; }

  /// Uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Picks a uniformly random element of \p Items.
  template <typename T> const T &pick(const std::vector<T> &Items) {
    assert(!Items.empty() && "pick() from empty vector");
    return Items[nextBelow(Items.size())];
  }

  /// Derives an independent child stream; children with distinct salts are
  /// decorrelated from each other and from the parent.
  RNG fork(uint64_t Salt) {
    uint64_t Mixed = next() ^ (Salt * 0xd1342543de82ef95ULL + 0x2545f4914f6cdd1dULL);
    return RNG(Mixed);
  }

private:
  uint64_t State;
};

} // namespace salssa

#endif // SALSSA_SUPPORT_RNG_H
