//===- support/Serialization.h - Bounds-checked binary serialization ----------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal binary serialization for on-disk artifacts (the cross-run
/// DecisionCache is the first client). Fixed little-endian encoding —
/// byte-for-byte identical files across platforms — and a reader that is
/// bounds-checked on every access: a truncated or corrupted buffer turns
/// reads into zeros and flips ok() to false, never into UB. Callers are
/// expected to checksum payloads (fnv1a64) and treat any !ok() as "no
/// cache", which is what keeps a damaged file a cold run instead of a
/// crash or a wrong answer.
///
//===----------------------------------------------------------------------===//

#ifndef SALSSA_SUPPORT_SERIALIZATION_H
#define SALSSA_SUPPORT_SERIALIZATION_H

#include <cstdint>
#include <string>
#include <vector>

namespace salssa {

/// Append-only little-endian encoder.
class ByteWriter {
public:
  void u8(uint8_t V) { Buf.push_back(V); }
  void u32(uint32_t V) {
    for (int I = 0; I < 4; ++I)
      Buf.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }
  void u64(uint64_t V) {
    for (int I = 0; I < 8; ++I)
      Buf.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }
  void i32(int32_t V) { u32(static_cast<uint32_t>(V)); }
  void i64(int64_t V) { u64(static_cast<uint64_t>(V)); }

  const std::vector<uint8_t> &buffer() const { return Buf; }
  size_t size() const { return Buf.size(); }

private:
  std::vector<uint8_t> Buf;
};

/// Bounds-checked little-endian decoder. Out-of-range reads return 0 and
/// latch ok() to false; check ok() once after decoding a structure.
class ByteReader {
public:
  ByteReader(const uint8_t *Data, size_t Size) : P(Data), End(Data + Size) {}

  uint8_t u8() {
    if (!take(1))
      return 0;
    return P[-1];
  }
  uint32_t u32() {
    if (!take(4))
      return 0;
    uint32_t V = 0;
    for (int I = 0; I < 4; ++I)
      V |= static_cast<uint32_t>(P[I - 4]) << (8 * I);
    return V;
  }
  uint64_t u64() {
    if (!take(8))
      return 0;
    uint64_t V = 0;
    for (int I = 0; I < 8; ++I)
      V |= static_cast<uint64_t>(P[I - 8]) << (8 * I);
    return V;
  }
  int32_t i32() { return static_cast<int32_t>(u32()); }
  int64_t i64() { return static_cast<int64_t>(u64()); }

  bool ok() const { return Ok; }
  bool atEnd() const { return P == End; }
  size_t remaining() const { return static_cast<size_t>(End - P); }

private:
  bool take(size_t N) {
    if (!Ok || static_cast<size_t>(End - P) < N) {
      Ok = false;
      return false;
    }
    P += N;
    return true;
  }

  const uint8_t *P;
  const uint8_t *End;
  bool Ok = true;
};

/// FNV-1a over a byte range (the payload checksum primitive).
uint64_t fnv1a64(const uint8_t *Data, size_t Size);

/// Reads the whole file into \p Out. Returns false (leaving \p Out
/// empty) when the file is missing or unreadable.
bool readFileBytes(const std::string &Path, std::vector<uint8_t> &Out);

/// Writes \p Data to \p Path via a temporary + rename, so readers never
/// observe a half-written file. Returns false on any I/O failure.
bool writeFileBytes(const std::string &Path,
                    const std::vector<uint8_t> &Data);

} // namespace salssa

#endif // SALSSA_SUPPORT_SERIALIZATION_H
