//===- support/Serialization.cpp - Bounds-checked binary serialization --------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Serialization.h"
#include <cstdio>
#include <fstream>

namespace salssa {

uint64_t fnv1a64(const uint8_t *Data, size_t Size) {
  uint64_t H = 0xcbf29ce484222325ULL;
  for (size_t I = 0; I < Size; ++I)
    H = (H ^ Data[I]) * 0x100000001b3ULL;
  return H;
}

bool readFileBytes(const std::string &Path, std::vector<uint8_t> &Out) {
  Out.clear();
  std::ifstream In(Path, std::ios::binary | std::ios::ate);
  if (!In)
    return false;
  std::streamsize Size = In.tellg();
  if (Size < 0)
    return false;
  Out.resize(static_cast<size_t>(Size));
  In.seekg(0);
  if (Size > 0 &&
      !In.read(reinterpret_cast<char *>(Out.data()), Size)) {
    Out.clear();
    return false;
  }
  return true;
}

bool writeFileBytes(const std::string &Path,
                    const std::vector<uint8_t> &Data) {
  std::string Tmp = Path + ".tmp";
  {
    std::ofstream OutF(Tmp, std::ios::binary | std::ios::trunc);
    if (!OutF)
      return false;
    if (!Data.empty() &&
        !OutF.write(reinterpret_cast<const char *>(Data.data()),
                    static_cast<std::streamsize>(Data.size())))
      return false;
    if (!OutF.flush())
      return false;
  }
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    std::remove(Tmp.c_str());
    return false;
  }
  return true;
}

} // namespace salssa
