//===- service/Daemon.cpp - The salssad merge daemon --------------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/Daemon.h"
#include "ir/IRPrinter.h"
#include "workloads/EditScript.h"
#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace salssa;

namespace {

bool sendAll(int Fd, const uint8_t *Data, size_t N) {
  size_t Sent = 0;
  while (Sent < N) {
    ssize_t W = ::send(Fd, Data + Sent, N - Sent, MSG_NOSIGNAL);
    if (W <= 0) {
      if (W < 0 && (errno == EINTR || errno == EAGAIN))
        continue;
      return false;
    }
    Sent += static_cast<size_t>(W);
  }
  return true;
}

std::string faultKey(uint64_t ConnId, uint64_t RequestId) {
  return "conn" + std::to_string(ConnId) + ".req" + std::to_string(RequestId);
}

} // namespace

struct Daemon::Connection {
  uint64_t Id = 0;
  int Fd = -1;
  std::vector<Function *> Checkouts;
  bool HoldsLease = false;
};

Daemon::Daemon(const DaemonOptions &Opts)
    : Options(Opts), TokenCache(Opts.TokenCacheEntries) {
  if (!Options.Faults.armed())
    Options.Faults = FaultInjectionConfig::fromEnv();
}

Daemon::~Daemon() { stop(); }

bool Daemon::start() {
  if (Running.load())
    return true;
  if (Options.SocketPath.empty() ||
      Options.SocketPath.size() >= sizeof(sockaddr_un{}.sun_path)) {
    LastError = "invalid socket path";
    return false;
  }
  ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFd < 0) {
    LastError = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  ::unlink(Options.SocketPath.c_str());
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::strncpy(Addr.sun_path, Options.SocketPath.c_str(),
               sizeof(Addr.sun_path) - 1);
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
      0) {
    LastError = std::string("bind: ") + std::strerror(errno);
    ::close(ListenFd);
    ListenFd = -1;
    return false;
  }
  if (::listen(ListenFd, 64) < 0) {
    LastError = std::string("listen: ") + std::strerror(errno);
    ::close(ListenFd);
    ListenFd = -1;
    return false;
  }
  Stopping.store(false);
  Running.store(true);
  AcceptThread = std::thread([this] { acceptLoop(); });
  return true;
}

void Daemon::stop() {
  Stopping.store(true);
  LeaseCV.notify_all();
  if (AcceptThread.joinable())
    AcceptThread.join();
  std::vector<std::thread> Threads;
  {
    std::lock_guard<std::mutex> L(ThreadsMutex);
    Threads.swap(ConnThreads);
  }
  for (std::thread &T : Threads)
    if (T.joinable())
      T.join();
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ListenFd = -1;
    ::unlink(Options.SocketPath.c_str());
  }
  Running.store(false);
}

void Daemon::wait() {
  while (!Stopping.load())
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  stop();
}

DaemonCounters Daemon::counters() const {
  std::lock_guard<std::mutex> L(StatsMutex);
  return Counters;
}

void Daemon::acceptLoop() {
  while (!Stopping.load()) {
    pollfd P{ListenFd, POLLIN, 0};
    int R = ::poll(&P, 1, 200);
    if (R <= 0)
      continue;
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0)
      continue;
    uint64_t ConnId = NextConnId.fetch_add(1);
    {
      std::lock_guard<std::mutex> L(StatsMutex);
      ++Counters.Connections;
    }
    std::lock_guard<std::mutex> L(ThreadsMutex);
    ConnThreads.emplace_back(
        [this, Fd, ConnId] { serveConnection(Fd, ConnId); });
  }
}

void Daemon::serveConnection(int Fd, uint64_t ConnId) {
  Connection Conn;
  Conn.Id = ConnId;
  Conn.Fd = Fd;
  FrameAssembler Asm;
  uint8_t Buf[4096];
  bool Alive = true;
  while (Alive && !Stopping.load()) {
    pollfd P{Fd, POLLIN, 0};
    int R = ::poll(&P, 1, 200);
    if (R < 0)
      break;
    if (R == 0)
      continue;
    ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
    if (N <= 0)
      break; // peer closed or error
    Asm.feed(Buf, static_cast<size_t>(N));
    std::vector<uint8_t> Payload;
    while (Alive && Asm.next(Payload)) {
      {
        std::lock_guard<std::mutex> L(StatsMutex);
        ++Counters.RequestsServed;
      }
      // Peek the request identity for the fault key (a malformed header
      // still yields deterministic bytes for the key).
      ByteReader HR(Payload.data(), Payload.size());
      WireRequestHeader Req;
      decodeRequestHeader(HR, Req);
      std::string Key = faultKey(ConnId, Req.RequestId);
      if (faultFires(Options.Faults, FaultKind::Protocol, Key,
                     "disconnect")) {
        // Drop before processing: nothing applied, a retry re-applies.
        std::lock_guard<std::mutex> L(StatsMutex);
        ++Counters.ProtocolFaultsInjected;
        Alive = false;
        break;
      }
      std::vector<uint8_t> Response = handleRequest(Conn, Payload);
      std::vector<uint8_t> Frame = encodeFrame(Response);
      if (faultFires(Options.Faults, FaultKind::Protocol, Key, "truncate")) {
        {
          std::lock_guard<std::mutex> L(StatsMutex);
          ++Counters.ProtocolFaultsInjected;
        }
        sendAll(Fd, Frame.data(), Frame.size() / 2);
        Alive = false;
        break;
      }
      if (faultFires(Options.Faults, FaultKind::Protocol, Key, "checksum")) {
        {
          std::lock_guard<std::mutex> L(StatsMutex);
          ++Counters.ProtocolFaultsInjected;
        }
        Frame[12] ^= 0xFF; // first checksum byte
        sendAll(Fd, Frame.data(), Frame.size());
        Alive = false;
        break;
      }
      if (!sendAll(Fd, Frame.data(), Frame.size()))
        Alive = false;
    }
    if (Asm.error() != FrameError::None) {
      // Desynchronized stream: best-effort error frame, then tear down.
      WireRequestHeader Req;
      std::vector<uint8_t> Err = buildErrorPayload(
          Req,
          Asm.error() == FrameError::BadVersion ? StatusCode::VersionMismatch
                                                : StatusCode::BadFrame,
          "frame error: " + std::to_string(static_cast<int>(Asm.error())));
      {
        std::lock_guard<std::mutex> L(StatsMutex);
        ++Counters.RequestErrors;
      }
      std::vector<uint8_t> Frame = encodeFrame(Err);
      sendAll(Fd, Frame.data(), Frame.size());
      break;
    }
  }
  if (Conn.HoldsLease) {
    healAbandonedBatch(Conn);
    releaseLease(Conn.Id);
  }
  ::close(Fd);
}

std::vector<uint8_t>
Daemon::handleRequest(Connection &Conn, const std::vector<uint8_t> &Payload) {
  ByteReader R(Payload.data(), Payload.size());
  WireRequestHeader Req;
  auto error = [&](StatusCode S, const std::string &Msg) {
    std::lock_guard<std::mutex> L(StatsMutex);
    ++Counters.RequestErrors;
    return buildErrorPayload(Req, S, Msg);
  };
  if (!decodeRequestHeader(R, Req))
    return error(StatusCode::BadFrame, "short request header");
  switch (Req.Kind) {
  case RequestKind::RegisterModules:
    return handleRegister(Req, R);
  case RequestKind::BeginDelta: {
    std::vector<uint8_t> Resp = handleBeginDelta(Conn, Req);
    return Resp;
  }
  case RequestKind::CheckoutForEdit:
    return handleCheckout(Conn, Req, R);
  case RequestKind::ApplyDelta:
    return handleApplyDelta(Conn, Req, R);
  case RequestKind::QueryStats:
    return handleQueryStats(Req, R);
  case RequestKind::Shutdown:
    return handleShutdown(Req);
  }
  return error(StatusCode::UnknownRequest,
               "unknown request kind " +
                   std::to_string(static_cast<int>(Req.Kind)));
}

std::vector<uint8_t> Daemon::handleRegister(const WireRequestHeader &Req,
                                            ByteReader &Body) {
  auto error = [&](StatusCode S, const std::string &Msg) {
    std::lock_guard<std::mutex> L(StatsMutex);
    ++Counters.RequestErrors;
    return buildErrorPayload(Req, S, Msg);
  };
  // Idempotency witness: the raw body bytes, before decoding.
  std::vector<uint8_t> Bytes;
  Bytes.reserve(Body.remaining());
  {
    ByteReader Probe = Body;
    while (!Probe.atEnd())
      Bytes.push_back(Probe.u8());
  }
  std::lock_guard<std::mutex> Setup(SessionSetupMutex);
  if (Registered.load()) {
    if (Bytes == RegisterBody) {
      ByteWriter W;
      encodeResponseHeader(W, {Req.Kind, Req.RequestId, StatusCode::Ok});
      snapshotNow().encode(W);
      return W.buffer();
    }
    return error(StatusCode::AlreadyRegistered,
                 "session already registered with a different spec");
  }
  RegisterModulesRequest RM;
  if (!RM.decode(Body))
    return error(StatusCode::BadFrame, "malformed RegisterModules body");
  if (RM.NumModules == 0 || RM.NumModules > 64)
    return error(StatusCode::BadFrame, "module count out of range");
  // Daemon startup defaults fill warm-path knobs the request left unset:
  // this is how a restarted `salssad --decision-cache=PATH` warm-replays
  // its first session transparently to clients.
  if (RM.DecisionCachePath.empty())
    RM.DecisionCachePath = Options.Defaults.Driver.DecisionCachePath;
  if (!RM.HashClustering && Options.Defaults.Driver.HashClustering)
    RM.HashClustering = true;
  if (!RM.ReelectHost && Options.Defaults.ReelectHost)
    RM.ReelectHost = true;
  if (RM.QuarantineDecayEpochs == 0)
    RM.QuarantineDecayEpochs = Options.Defaults.QuarantineDecayEpochs;
  try {
    Group = buildBenchmarkModuleGroup(RM.Profile, Ctx, RM.NumModules);
    Mods.clear();
    for (size_t I = 0; I < Group.size(); ++I)
      Mods.push_back(&Group[I]);
    MergeServiceOptions SO;
    SO.Driver.Technique = MergeTechnique::SalSSA;
    SO.Driver.Selection = RM.Selection;
    SO.Driver.NumThreads = RM.NumThreads;
    SO.Driver.ShardCount = RM.ShardCount;
    SO.Driver.ExplorationThreshold = RM.ExplorationThreshold;
    SO.Driver.Host = RM.Host;
    SO.Driver.HashClustering = RM.HashClustering;
    SO.Driver.Canonicalize = RM.Canonicalize;
    SO.Driver.DecisionCachePath = RM.DecisionCachePath;
    SO.QuarantineDecayEpochs = RM.QuarantineDecayEpochs;
    SO.ReelectHost = RM.ReelectHost;
    Svc = std::make_unique<MergeService>(SO);
    for (Module *M : Mods)
      Svc->addModule(*M);
    MergeServiceStats St = Svc->initialize();
    refreshSnapshot(St);
  } catch (const std::exception &E) {
    Svc.reset();
    Mods.clear();
    return error(StatusCode::InternalError,
                 std::string("initialize failed: ") + E.what());
  }
  RegisterBody = std::move(Bytes);
  Registered.store(true);
  ByteWriter W;
  encodeResponseHeader(W, {Req.Kind, Req.RequestId, StatusCode::Ok});
  snapshotNow().encode(W);
  return W.buffer();
}

std::vector<uint8_t> Daemon::handleBeginDelta(Connection &Conn,
                                              const WireRequestHeader &Req) {
  auto error = [&](StatusCode S, const std::string &Msg) {
    std::lock_guard<std::mutex> L(StatsMutex);
    ++Counters.RequestErrors;
    return buildErrorPayload(Req, S, Msg);
  };
  if (!Registered.load())
    return error(StatusCode::NotRegistered, "RegisterModules first");
  if (Stopping.load())
    return error(StatusCode::ShuttingDown, "daemon is draining");
  if (!acquireLease(Conn.Id, Req.DeadlineMillis)) {
    if (Stopping.load())
      return error(StatusCode::ShuttingDown, "daemon is draining");
    return error(StatusCode::DeadlineExpired,
                 "writer lease not acquired within the deadline");
  }
  Conn.HoldsLease = true;
  ByteWriter W;
  encodeResponseHeader(W, {Req.Kind, Req.RequestId, StatusCode::Ok});
  return W.buffer();
}

std::vector<uint8_t> Daemon::handleCheckout(Connection &Conn,
                                            const WireRequestHeader &Req,
                                            ByteReader &Body) {
  auto error = [&](StatusCode S, const std::string &Msg) {
    std::lock_guard<std::mutex> L(StatsMutex);
    ++Counters.RequestErrors;
    return buildErrorPayload(Req, S, Msg);
  };
  if (!Registered.load())
    return error(StatusCode::NotRegistered, "RegisterModules first");
  if (!Conn.HoldsLease)
    return error(StatusCode::NoBatch, "BeginDelta first");
  CheckoutRequest CR;
  if (!CR.decode(Body))
    return error(StatusCode::BadFrame, "malformed CheckoutForEdit body");
  Function *F = findFunction(CR.ModuleIdx, CR.Name);
  if (!F)
    return error(StatusCode::UnknownFunction,
                 "no definition " + CR.Name + " in module " +
                     std::to_string(CR.ModuleIdx));
  if (std::find(Conn.Checkouts.begin(), Conn.Checkouts.end(), F) ==
      Conn.Checkouts.end())
    Conn.Checkouts.push_back(F);
  ByteWriter W;
  encodeResponseHeader(W, {Req.Kind, Req.RequestId, StatusCode::Ok});
  return W.buffer();
}

std::vector<uint8_t> Daemon::handleApplyDelta(Connection &Conn,
                                              const WireRequestHeader &Req,
                                              ByteReader &Body) {
  auto error = [&](StatusCode S, const std::string &Msg) {
    std::lock_guard<std::mutex> L(StatsMutex);
    ++Counters.RequestErrors;
    return buildErrorPayload(Req, S, Msg);
  };
  if (!Registered.load())
    return error(StatusCode::NotRegistered, "RegisterModules first");
  ApplyDeltaRequest AR;
  if (!AR.decode(Body))
    return error(StatusCode::BadFrame, "malformed ApplyDelta body");
  {
    // Idempotent retry: a token we already served replays the remembered
    // response body (encoded with Replayed=1) and never re-applies.
    std::lock_guard<std::mutex> L(TokenMutex);
    if (const std::vector<uint8_t> *Cached = TokenCache.lookup(AR.Token)) {
      {
        std::lock_guard<std::mutex> SL(StatsMutex);
        ++Counters.TokenReplays;
      }
      if (Conn.HoldsLease) { // the logical batch this retry belongs to is done
        Conn.Checkouts.clear();
        Conn.HoldsLease = false;
        releaseLease(Conn.Id);
      }
      ByteWriter W;
      encodeResponseHeader(W, {Req.Kind, Req.RequestId, StatusCode::Ok});
      for (uint8_t B : *Cached)
        W.u8(B);
      return W.buffer();
    }
  }
  if (!Conn.HoldsLease)
    return error(StatusCode::NoBatch, "BeginDelta first");
  MergeServiceStats St;
  try {
    MergeService::DeltaBatch Batch = Svc->beginDelta();
    AppliedEditStep A = applyEditStep(
        Mods, AR.Spec, [&](Function *F) { Batch.checkoutForEdit(F); });
    MergeDelta D;
    D.Changed = A.Changed;
    D.Added = A.Added;
    D.Deleted = A.Deleted;
    // Wire checkouts the spec did not change replay as no-op changes
    // (the client contract says they should be in Spec.Changes; tolerate
    // the gap rather than leak a stale checkout).
    for (Function *F : Conn.Checkouts) {
      if (std::find(D.Changed.begin(), D.Changed.end(), F) !=
          D.Changed.end())
        continue;
      if (std::find(D.Deleted.begin(), D.Deleted.end(), F) !=
          D.Deleted.end())
        continue;
      Batch.checkoutForEdit(F);
      D.Changed.push_back(F);
    }
    St = Batch.apply(D);
  } catch (const std::exception &E) {
    return error(StatusCode::InternalError,
                 std::string("delta failed: ") + E.what());
  }
  refreshSnapshot(St);
  {
    std::lock_guard<std::mutex> L(StatsMutex);
    ++Counters.DeltasApplied;
  }
  Conn.Checkouts.clear();
  Conn.HoldsLease = false;
  releaseLease(Conn.Id);

  ApplyDeltaResponse Resp;
  Resp.Stats = snapshotNow();
  Resp.Replayed = false;
  ByteWriter Fresh;
  Resp.encode(Fresh);
  Resp.Replayed = true;
  ByteWriter Replay;
  Resp.encode(Replay);
  {
    std::lock_guard<std::mutex> L(TokenMutex);
    TokenCache.remember(AR.Token, Replay.buffer());
  }
  ByteWriter W;
  encodeResponseHeader(W, {Req.Kind, Req.RequestId, StatusCode::Ok});
  for (uint8_t B : Fresh.buffer())
    W.u8(B);
  return W.buffer();
}

std::vector<uint8_t> Daemon::handleQueryStats(const WireRequestHeader &Req,
                                              ByteReader &Body) {
  QueryStatsRequest QR;
  QR.decode(Body); // zero-initialized on malformed body is fine
  QueryStatsResponse Resp;
  {
    std::lock_guard<std::mutex> L(StatsMutex);
    Resp.Stats = CachedStats;
    Resp.Daemon = Counters;
    if (QR.IncludePrints)
      Resp.Prints = CachedPrints;
  }
  ByteWriter W;
  encodeResponseHeader(W, {Req.Kind, Req.RequestId, StatusCode::Ok});
  Resp.encode(W);
  return W.buffer();
}

std::vector<uint8_t> Daemon::handleShutdown(const WireRequestHeader &Req) {
  Stopping.store(true);
  LeaseCV.notify_all();
  ByteWriter W;
  encodeResponseHeader(W, {Req.Kind, Req.RequestId, StatusCode::Ok});
  return W.buffer();
}

bool Daemon::acquireLease(uint64_t ConnId, uint32_t DeadlineMillis) {
  std::unique_lock<std::mutex> L(LeaseMutex);
  if (LeaseHolder == ConnId)
    return true;
  LeaseQueue.push_back(ConnId);
  auto Ready = [&] {
    return Stopping.load() ||
           (LeaseHolder == 0 && !LeaseQueue.empty() &&
            LeaseQueue.front() == ConnId);
  };
  bool Admitted;
  if (DeadlineMillis == 0) {
    LeaseCV.wait(L, Ready);
    Admitted = !Stopping.load();
  } else {
    Admitted = LeaseCV.wait_for(
                   L, std::chrono::milliseconds(DeadlineMillis), Ready) &&
               !Stopping.load();
  }
  if (!Admitted) {
    LeaseQueue.erase(
        std::remove(LeaseQueue.begin(), LeaseQueue.end(), ConnId),
        LeaseQueue.end());
    LeaseCV.notify_all(); // the next waiter may now be at the front
    if (!Stopping.load()) {
      std::lock_guard<std::mutex> SL(StatsMutex);
      ++Counters.DeadlineExpirations;
    }
    return false;
  }
  LeaseQueue.pop_front();
  LeaseHolder = ConnId;
  return true;
}

void Daemon::releaseLease(uint64_t ConnId) {
  std::lock_guard<std::mutex> L(LeaseMutex);
  if (LeaseHolder == ConnId) {
    LeaseHolder = 0;
    LeaseCV.notify_all();
  }
}

void Daemon::healAbandonedBatch(Connection &Conn) {
  // The connection died holding the lease. Its wire checkouts never
  // mutated anything (edits only land via ApplyDelta), so healing is a
  // no-op change delta over the checked-out set — the session stays
  // coherent and the next waiter is admitted against a clean state.
  if (Conn.Checkouts.empty() || !Registered.load() || !Svc)
    return;
  try {
    MergeServiceStats St;
    {
      MergeService::DeltaBatch Batch = Svc->beginDelta();
      MergeDelta D;
      for (Function *F : Conn.Checkouts) {
        Batch.checkoutForEdit(F);
        D.Changed.push_back(F);
      }
      St = Batch.apply(D);
    }
    refreshSnapshot(St);
    std::lock_guard<std::mutex> L(StatsMutex);
    ++Counters.HealedBatches;
  } catch (const std::exception &) {
    // Healing is best-effort; the session's own containment already
    // guarantees coherence.
  }
  Conn.Checkouts.clear();
}

void Daemon::refreshSnapshot(const MergeServiceStats &St) {
  StatsSnapshot S;
  S.Epoch = St.Epoch;
  S.FullRemerges = Svc->fullRemerges();
  S.HostReelections = Svc->hostReelections();
  S.QuarantinedCount = Svc->quarantinedCount();
  S.Attempts = St.Session.Driver.Attempts;
  S.CommittedMerges = St.Session.Driver.CommittedMerges;
  S.CrossModuleMerges = St.Session.CrossModuleMerges;
  S.SizeBefore = St.Session.SizeBefore;
  S.SizeAfter = St.Session.SizeAfter;
  S.CacheHits = St.Session.Driver.CacheHits;
  S.HashClusterCommits = St.Session.Driver.HashClusterCommits;
  S.DegradedToFullRemerge = St.DegradedToFullRemerge;
  S.HostReelected = St.HostReelected;
  S.ReclusteredFull = St.ReclusteredFull;
  std::string Prints;
  for (Module *M : Mods)
    Prints += printModule(*M);
  S.ModuleDigest =
      fnv1a64(reinterpret_cast<const uint8_t *>(Prints.data()), Prints.size());
  std::lock_guard<std::mutex> L(StatsMutex);
  CachedStats = S;
  CachedPrints = std::move(Prints);
}

StatsSnapshot Daemon::snapshotNow() const {
  std::lock_guard<std::mutex> L(StatsMutex);
  return CachedStats;
}

DaemonCounters Daemon::countersNow() const {
  std::lock_guard<std::mutex> L(StatsMutex);
  return Counters;
}

Function *Daemon::findFunction(uint32_t ModuleIdx,
                               const std::string &Name) const {
  if (ModuleIdx >= Mods.size())
    return nullptr;
  Function *F = Mods[ModuleIdx]->getFunction(Name);
  if (!F || F->isDeclaration())
    return nullptr;
  return F;
}
