//===- service/Protocol.h - salssad wire protocol -----------------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The versioned binary wire protocol between the merge daemon
/// (service/Daemon.h, `salssad`) and its clients (service/Client.h,
/// `salssa-client`). docs/PROTOCOL.md is the normative prose spec and is
/// kept in lockstep with this header by a CI grep — when you add or
/// rename a request kind, status code or frame field here, update the
/// doc in the same commit.
///
/// ## Framing
///
/// Every message travels in one length-prefixed frame over a
/// SOCK_STREAM Unix-domain socket:
///
///     magic    u32   ProtocolMagic ("SLSD", little-endian)
///     version  u32   ProtocolVersion
///     length   u32   payload byte count, <= MaxFramePayloadBytes
///     checksum u64   fnv1a64 over the payload bytes
///     payload  u8[length]
///
/// The 20-byte header layout is frozen across protocol versions; only
/// payload contents are versioned. A reader that sees a wrong magic,
/// an unknown version, an oversized length or a checksum mismatch
/// reports a sticky FrameError and the connection is torn down — a
/// damaged frame is a per-request error, never a desynchronized stream
/// (support/Serialization's bounds-checked reader gives the same
/// guarantee inside the payload).
///
/// ## Payloads
///
/// Request payload:  kind u8 | requestId u64 | deadlineMillis u32 | body
/// Response payload: kind u8 | requestId u64 | status u8 | body
///
/// `requestId` is chosen by the client and echoed verbatim; responses
/// are matched by it. `deadlineMillis` bounds the request's total
/// server-side wait+work time (0 = no deadline): a request that cannot
/// be admitted to the session writer lease before the deadline fails
/// with StatusCode::DeadlineExpired without side effects.
///
/// ## Module transport
///
/// There is no IR parser in this codebase, so modules never cross the
/// wire. RegisterModules carries the deterministic generator spec
/// (workloads/Suites.h BenchmarkProfile + module count) and edits
/// travel as EditStepSpec (workloads/EditScript.h): name-addressed,
/// seed-carrying ops both ends can replay to byte-identical IR. This is
/// the same differential-harness idiom the in-process tests use.
///
/// ## Idempotent retry
///
/// ApplyDelta carries a client-chosen `token`. The daemon remembers the
/// response it sent for each token (service/Daemon.h ApplyTokenCache);
/// a retried token returns the remembered response with Replayed=1 and
/// never double-applies the delta. Everything else (BeginDelta,
/// CheckoutForEdit, QueryStats, Shutdown, RegisterModules-with-
/// identical-spec) is naturally idempotent, so the client may retry any
/// timed-out request on a fresh connection.
///
//===----------------------------------------------------------------------===//

#ifndef SALSSA_SERVICE_PROTOCOL_H
#define SALSSA_SERVICE_PROTOCOL_H

#include "merge/MergeDriver.h"
#include "support/Serialization.h"
#include "workloads/EditScript.h"
#include "workloads/Suites.h"
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

namespace salssa {

// --- Frame constants ---------------------------------------------------------

/// "SLSD" as a little-endian u32.
constexpr uint32_t ProtocolMagic = 0x44534C53u;
constexpr uint32_t ProtocolVersion = 1;
/// Frames above this payload size are rejected before buffering
/// (FrameError::Oversized) — a garbage length prefix must not make the
/// reader allocate unbounded memory.
constexpr uint32_t MaxFramePayloadBytes = 16u << 20;
constexpr size_t FrameHeaderBytes = 20; // magic+version+length+checksum

// --- Request kinds and status codes ------------------------------------------

/// One enumerator per request the daemon serves. Values are wire
/// contract: never renumber, only append.
enum class RequestKind : uint8_t {
  RegisterModules = 1, ///< build the module group, initialize the session
  BeginDelta = 2,      ///< acquire the exclusive writer lease (FIFO)
  CheckoutForEdit = 3, ///< restore one function's pristine body
  ApplyDelta = 4,      ///< apply an edit step; idempotent via token
  QueryStats = 5,      ///< stats snapshot; never blocks on the session
  Shutdown = 6,        ///< drain and stop the daemon
};

/// Response status. Ok responses carry a kind-specific body; error
/// responses carry a human-readable message string.
enum class StatusCode : uint8_t {
  Ok = 0,
  BadFrame = 1,        ///< malformed payload inside a well-framed message
  VersionMismatch = 2, ///< body carries the daemon's version as u32
  UnknownRequest = 3,  ///< kind the daemon does not implement
  NotRegistered = 4,   ///< session requests before RegisterModules
  AlreadyRegistered = 5, ///< RegisterModules with a different spec
  UnknownFunction = 6, ///< checkout/edit target not in the session
  NoBatch = 7,         ///< CheckoutForEdit/ApplyDelta without BeginDelta
  DeadlineExpired = 8, ///< deadlineMillis elapsed before admission
  ShuttingDown = 9,    ///< daemon is draining; no new work
  InternalError = 10,  ///< unexpected server-side failure
};

const char *requestKindName(RequestKind K);
const char *statusCodeName(StatusCode S);

// --- Framing -----------------------------------------------------------------

/// Wraps \p Payload in one wire frame (header + checksum + bytes).
std::vector<uint8_t> encodeFrame(const std::vector<uint8_t> &Payload);

enum class FrameError : uint8_t {
  None = 0,
  BadMagic,
  BadVersion,
  Oversized,
  BadChecksum,
};

/// Incremental frame reassembly over an arbitrary byte stream. Feed
/// whatever recv() returned; next() yields complete payloads in order.
/// Any framing violation latches error() (sticky) and next() returns
/// false forever — the connection owner must tear down.
class FrameAssembler {
public:
  void feed(const uint8_t *Data, size_t N);
  /// Moves the next complete payload into \p Payload. Returns false
  /// when more bytes are needed or error() is set.
  bool next(std::vector<uint8_t> &Payload);
  FrameError error() const { return Err; }

private:
  std::vector<uint8_t> Buf;
  size_t Pos = 0; ///< consumed prefix of Buf
  FrameError Err = FrameError::None;
};

// --- Payload headers ---------------------------------------------------------

struct WireRequestHeader {
  RequestKind Kind = RequestKind::QueryStats;
  uint64_t RequestId = 0;
  uint32_t DeadlineMillis = 0; ///< 0 = no deadline
};

struct WireResponseHeader {
  RequestKind Kind = RequestKind::QueryStats;
  uint64_t RequestId = 0;
  StatusCode Status = StatusCode::Ok;
};

void encodeRequestHeader(ByteWriter &W, const WireRequestHeader &H);
bool decodeRequestHeader(ByteReader &R, WireRequestHeader &H);
void encodeResponseHeader(ByteWriter &W, const WireResponseHeader &H);
bool decodeResponseHeader(ByteReader &R, WireResponseHeader &H);

void encodeString(ByteWriter &W, const std::string &S);
bool decodeString(ByteReader &R, std::string &S);

// --- Request bodies ----------------------------------------------------------

/// RegisterModules: the deterministic session spec. The daemon builds
/// `NumModules` modules from `Profile` (workloads/Suites.h), applies
/// its own startup defaults for warm-path knobs the request leaves
/// unset (empty DecisionCachePath, false HashClustering/ReelectHost),
/// and runs MergeService::initialize(). Registering twice with the
/// byte-identical body is idempotent; a different body fails with
/// AlreadyRegistered.
struct RegisterModulesRequest {
  BenchmarkProfile Profile;
  uint32_t NumModules = 2;
  SelectionStrategy Selection = SelectionStrategy::Distance;
  uint32_t NumThreads = 1;
  uint32_t ShardCount = 1;
  uint32_t ExplorationThreshold = 1;
  HostPolicy Host = HostPolicy::First;
  bool HashClustering = false;
  bool Canonicalize = false;
  std::string DecisionCachePath;
  uint32_t QuarantineDecayEpochs = 0;
  bool ReelectHost = false;

  void encode(ByteWriter &W) const;
  bool decode(ByteReader &R);
};

/// CheckoutForEdit: one pristine-body restore inside the held batch.
struct CheckoutRequest {
  uint32_t ModuleIdx = 0;
  std::string Name;

  void encode(ByteWriter &W) const;
  bool decode(ByteReader &R);
};

/// ApplyDelta: one edit step plus the idempotency token. Functions the
/// client checked out explicitly (CheckoutForEdit) must appear among
/// Spec.Changes; functions only named in Spec are checked out
/// server-side before their edit replays.
struct ApplyDeltaRequest {
  uint64_t Token = 0;
  EditStepSpec Spec;

  void encode(ByteWriter &W) const;
  bool decode(ByteReader &R);
};

struct QueryStatsRequest {
  /// When set, the response carries the concatenated printModule() text
  /// of every registered module — the differential harness's
  /// byte-identity witness. Digest-only otherwise.
  bool IncludePrints = false;

  void encode(ByteWriter &W) const;
  bool decode(ByteReader &R);
};

// --- Response bodies ---------------------------------------------------------

/// The session snapshot every mutating request returns and QueryStats
/// serves from cache (the daemon refreshes it after each mutation, so
/// QueryStats never waits on a running merge).
struct StatsSnapshot {
  uint32_t Epoch = 0;
  uint32_t FullRemerges = 0;
  uint32_t HostReelections = 0;
  uint64_t QuarantinedCount = 0;
  uint64_t Attempts = 0;
  uint64_t CommittedMerges = 0;
  uint64_t CrossModuleMerges = 0;
  uint64_t SizeBefore = 0;
  uint64_t SizeAfter = 0;
  uint64_t CacheHits = 0;
  uint64_t HashClusterCommits = 0;
  bool DegradedToFullRemerge = false;
  bool HostReelected = false;
  bool ReclusteredFull = false;
  /// fnv1a64 over the concatenated printModule() text of every
  /// registered module, in registration order.
  uint64_t ModuleDigest = 0;

  void encode(ByteWriter &W) const;
  bool decode(ByteReader &R);
};

/// Daemon-level counters, served by QueryStats.
struct DaemonCounters {
  uint64_t Connections = 0;
  uint64_t RequestsServed = 0;
  uint64_t DeltasApplied = 0;
  uint64_t TokenReplays = 0;       ///< retried ApplyDelta served from cache
  uint64_t HealedBatches = 0;      ///< abandoned batches auto-closed
  uint64_t DeadlineExpirations = 0;
  uint64_t ProtocolFaultsInjected = 0;
  uint64_t RequestErrors = 0;      ///< non-Ok responses sent

  void encode(ByteWriter &W) const;
  bool decode(ByteReader &R);
};

struct ApplyDeltaResponse {
  StatsSnapshot Stats;
  bool Replayed = false; ///< served from the token cache, not re-applied

  void encode(ByteWriter &W) const;
  bool decode(ByteReader &R);
};

struct QueryStatsResponse {
  StatsSnapshot Stats;
  DaemonCounters Daemon;
  std::string Prints; ///< empty unless IncludePrints was set

  void encode(ByteWriter &W) const;
  bool decode(ByteReader &R);
};

// --- Whole-payload helpers ---------------------------------------------------

/// Error-response body: message string (VersionMismatch additionally
/// prefixes the daemon's version as u32 — see decodeErrorBody).
std::vector<uint8_t> buildErrorPayload(const WireRequestHeader &Req,
                                       StatusCode Status,
                                       const std::string &Message,
                                       uint32_t DaemonVersion = ProtocolVersion);

/// Splits an error body back into (version, message). For statuses
/// other than VersionMismatch the version slot is ProtocolVersion.
bool decodeErrorBody(ByteReader &R, StatusCode Status, uint32_t &Version,
                     std::string &Message);

// --- Idempotency token cache -------------------------------------------------

/// Bounded FIFO map of ApplyDelta token -> the exact response payload
/// that was (or should have been) delivered. A retried token replays
/// the payload byte-for-byte; the bound evicts oldest-first so a
/// long-lived daemon cannot grow without limit. Tokens are
/// client-chosen; reusing a token for a *different* delta is a client
/// contract violation (the cached response is returned regardless).
class ApplyTokenCache {
public:
  explicit ApplyTokenCache(size_t MaxEntries = 256) : Max(MaxEntries) {}

  /// Remembered payload for \p Token, or nullptr.
  const std::vector<uint8_t> *lookup(uint64_t Token) const;
  /// Records \p Payload for \p Token, evicting the oldest entry past
  /// the bound. Re-recording an existing token is a no-op (the first
  /// response wins — that is the one the client may have seen).
  void remember(uint64_t Token, std::vector<uint8_t> Payload);
  size_t size() const { return ByToken.size(); }

private:
  size_t Max;
  std::map<uint64_t, std::vector<uint8_t>> ByToken;
  std::deque<uint64_t> Order;
};

} // namespace salssa

#endif // SALSSA_SERVICE_PROTOCOL_H
