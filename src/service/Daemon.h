//===- service/Daemon.h - The salssad merge daemon ----------------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The merge daemon: a Unix-domain-socket server that multiplexes any
/// number of concurrent client connections onto one long-lived
/// MergeService session. The daemon is the compile-server deployment
/// shape of the incremental service — clients register a deterministic
/// module spec once, then stream edit deltas; the daemon keeps the merge
/// warm across all of them and across its own restarts.
///
/// ## Concurrency model
///
/// One accept thread plus one thread per live connection. The session
/// writer is exclusive by construction (MergeService::DeltaBatch), so
/// the daemon fronts it with a *fair FIFO admission lease*: BeginDelta
/// enqueues a ticket and blocks until every earlier ticket released (or
/// its deadline expires — DeadlineExpired, no side effects). The lease
/// is logical and connection-owned: the real DeltaBatch only exists
/// inside the ApplyDelta handler (and the healing path), so a client
/// that holds the lease but never applies cannot wedge the session —
/// its disconnect heals the batch (checked-out functions re-applied as
/// no-op changes, DaemonCounters::HealedBatches) and admits the next
/// waiter.
///
/// QueryStats never touches the session: the daemon refreshes a cached
/// StatsSnapshot (and module prints) after initialization and after
/// every applied delta, so stats reads are wait-free with respect to a
/// running merge.
///
/// ## Fault containment
///
/// FaultKind::Protocol points on the response path, keyed by connection
/// and request identity plus a damage flavour:
///   - "disconnect": the connection drops *before* the request is
///     processed (nothing applied; a retry re-applies for real);
///   - "truncate": the request was processed, then only half the
///     response frame is sent (a retry replays from the token cache);
///   - "checksum": the request was processed, then the response frame
///     goes out with a corrupted checksum (same retry path).
/// Every flavour degrades to a clean per-request error on the client —
/// never a wedged daemon, never a corrupt session (the token cache
/// guarantees a retried ApplyDelta is never double-applied).
///
//===----------------------------------------------------------------------===//

#ifndef SALSSA_SERVICE_DAEMON_H
#define SALSSA_SERVICE_DAEMON_H

#include "merge/MergeService.h"
#include "service/Protocol.h"
#include "support/FaultInjection.h"
#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>

namespace salssa {

struct DaemonOptions {
  /// Filesystem path of the Unix-domain listening socket. Unlinked (if
  /// stale) before bind and on shutdown.
  std::string SocketPath;
  /// Startup defaults merged into RegisterModules requests that leave
  /// the warm-path knobs unset (empty DecisionCachePath, false
  /// HashClustering/ReelectHost, zero QuarantineDecayEpochs). This is
  /// how `salssad --decision-cache=...` makes a restarted daemon
  /// warm-replay its first session without the client knowing.
  MergeServiceOptions Defaults;
  /// Protocol fault injection (FaultKind::Protocol rate applies).
  /// Resolved from SALSSA_FAULTS when left disarmed.
  FaultInjectionConfig Faults;
  /// ApplyDelta idempotency window (token cache bound).
  size_t TokenCacheEntries = 256;
};

/// The daemon. start() binds and spawns the accept loop; stop() (or a
/// client Shutdown request) drains it. One Daemon serves one
/// MergeService session, created by the first RegisterModules.
class Daemon {
public:
  explicit Daemon(const DaemonOptions &Options);
  ~Daemon();
  Daemon(const Daemon &) = delete;
  Daemon &operator=(const Daemon &) = delete;

  /// Binds SocketPath and starts serving. Returns false (with strerror
  /// detail in lastError()) when the socket cannot be created.
  bool start();
  /// Requests shutdown and joins every serving thread. Idempotent.
  void stop();
  /// Blocks until a Shutdown request (or stop()) drains the daemon.
  void wait();

  bool running() const { return Running.load(); }
  const std::string &lastError() const { return LastError; }
  DaemonCounters counters() const;

private:
  struct Connection;

  void acceptLoop();
  void serveConnection(int Fd, uint64_t ConnId);
  /// Dispatches one decoded request payload; returns the response
  /// payload (always — protocol faults are applied by the caller on the
  /// send path, not here).
  std::vector<uint8_t> handleRequest(Connection &Conn,
                                     const std::vector<uint8_t> &Payload);

  std::vector<uint8_t> handleRegister(const WireRequestHeader &Req,
                                      ByteReader &Body);
  std::vector<uint8_t> handleBeginDelta(Connection &Conn,
                                        const WireRequestHeader &Req);
  std::vector<uint8_t> handleCheckout(Connection &Conn,
                                      const WireRequestHeader &Req,
                                      ByteReader &Body);
  std::vector<uint8_t> handleApplyDelta(Connection &Conn,
                                        const WireRequestHeader &Req,
                                        ByteReader &Body);
  std::vector<uint8_t> handleQueryStats(const WireRequestHeader &Req,
                                        ByteReader &Body);
  std::vector<uint8_t> handleShutdown(const WireRequestHeader &Req);

  /// FIFO lease admission for \p ConnId; blocks up to \p DeadlineMillis
  /// (0 = forever). Returns false on deadline expiry.
  bool acquireLease(uint64_t ConnId, uint32_t DeadlineMillis);
  void releaseLease(uint64_t ConnId);
  /// Connection teardown while holding the lease: re-applies the
  /// checked-out functions as a no-op change delta so the session heals
  /// and the next waiter is admitted.
  void healAbandonedBatch(Connection &Conn);

  /// Re-caches the post-mutation stats snapshot and module prints.
  void refreshSnapshot(const MergeServiceStats &St);
  StatsSnapshot snapshotNow() const;
  DaemonCounters countersNow() const;

  Function *findFunction(uint32_t ModuleIdx, const std::string &Name) const;

  DaemonOptions Options;
  std::string LastError;

  int ListenFd = -1;
  std::thread AcceptThread;
  std::vector<std::thread> ConnThreads;
  std::mutex ThreadsMutex;
  std::atomic<bool> Running{false};
  std::atomic<bool> Stopping{false};
  std::atomic<uint64_t> NextConnId{1};

  // --- Session state (RegisterModules creates it) ---------------------------
  mutable std::mutex SessionSetupMutex;
  Context Ctx;
  ModuleGroup Group;
  std::vector<Module *> Mods;
  std::unique_ptr<MergeService> Svc;
  std::vector<uint8_t> RegisterBody; ///< idempotency witness
  std::atomic<bool> Registered{false};

  // --- FIFO writer lease ----------------------------------------------------
  std::mutex LeaseMutex;
  std::condition_variable LeaseCV;
  std::deque<uint64_t> LeaseQueue; ///< waiting connection ids, FIFO
  uint64_t LeaseHolder = 0;        ///< 0 = free

  // --- Cached stats ---------------------------------------------------------
  mutable std::mutex StatsMutex;
  StatsSnapshot CachedStats;
  std::string CachedPrints;
  DaemonCounters Counters;

  ApplyTokenCache TokenCache;
  std::mutex TokenMutex;
};

} // namespace salssa

#endif // SALSSA_SERVICE_DAEMON_H
