//===- service/Client.h - salssad client library ------------------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The client side of the merge daemon protocol (service/Protocol.h):
/// one Unix-domain connection with timeouts, bounded exponential backoff
/// and idempotent retry. This is what `salssa-client` and the service
/// differential tests drive; it is deliberately dependency-free beyond
/// the protocol layer so any tool can embed it.
///
/// ## Robustness contract
///
/// Every request runs under a transport retry loop: a connect failure,
/// request timeout, torn connection or damaged response frame closes
/// the socket, sleeps a bounded exponentially-growing backoff (with
/// deterministic jitter from a seeded RNG), reconnects and resends — up
/// to MaxRetries times. Because a reconnect gets a fresh connection id
/// on the daemon side, a deterministically-injected protocol fault
/// cannot fire identically forever.
///
/// Retries are safe by construction: ApplyDelta carries a client-chosen
/// token the daemon remembers, so a retried apply whose first attempt
/// *did* land replays the original response (Replayed=1) instead of
/// double-applying; every other request kind is naturally idempotent. A
/// reconnect forfeits the writer lease, so applyStep() re-issues
/// BeginDelta whenever ApplyDelta answers NoBatch.
///
/// A *clean* error response (NotRegistered, UnknownFunction, ...) is an
/// answer, not a transport failure — it is returned to the caller, not
/// retried.
///
//===----------------------------------------------------------------------===//

#ifndef SALSSA_SERVICE_CLIENT_H
#define SALSSA_SERVICE_CLIENT_H

#include "service/Protocol.h"
#include <cstdint>
#include <string>
#include <vector>

namespace salssa {

struct ClientOptions {
  std::string SocketPath;
  /// Socket connect() bound. Unit: milliseconds.
  uint32_t ConnectTimeoutMillis = 2000;
  /// Per-attempt response wait. Unit: milliseconds.
  uint32_t RequestTimeoutMillis = 20000;
  /// Transport-level retry attempts after the first try.
  unsigned MaxRetries = 5;
  /// Backoff schedule: min(BackoffMaxMillis, BackoffBaseMillis * 2^n)
  /// plus up to 50% deterministic jitter. Units: milliseconds.
  uint32_t BackoffBaseMillis = 10;
  uint32_t BackoffMaxMillis = 500;
  /// Seeds the jitter RNG (deterministic backoff sequences per client).
  uint64_t RetrySeed = 1;
  /// Deadline stamped on BeginDelta requests (admission bound server
  /// side). 0 = wait forever for the writer lease.
  uint32_t LeaseDeadlineMillis = 0;
};

/// One logical client session. Not thread-safe: drive one DaemonClient
/// per thread (connections are cheap; fairness comes from the daemon's
/// FIFO lease).
class DaemonClient {
public:
  explicit DaemonClient(const ClientOptions &Options);
  ~DaemonClient();
  DaemonClient(const DaemonClient &) = delete;
  DaemonClient &operator=(const DaemonClient &) = delete;

  /// The outcome of one request: the daemon's status plus transport
  /// success. TransportOk=false means retries were exhausted and Status
  /// is InternalError.
  struct Result {
    StatusCode Status = StatusCode::InternalError;
    bool TransportOk = false;
    std::string ErrorMessage;
  };

  Result registerModules(const RegisterModulesRequest &RM, StatsSnapshot &Out);
  Result beginDelta();
  Result checkoutForEdit(uint32_t ModuleIdx, const std::string &Name);
  Result applyDelta(const EditStepSpec &Spec, uint64_t Token,
                    ApplyDeltaResponse &Out);
  Result queryStats(bool IncludePrints, QueryStatsResponse &Out);
  Result shutdown();

  /// BeginDelta + ApplyDelta as one robust operation: re-acquires the
  /// writer lease whenever a transport retry forfeited it (NoBatch).
  Result applyStep(const EditStepSpec &Spec, uint64_t Token,
                   ApplyDeltaResponse &Out);

  /// Transport-level retries spent so far (observability for soaks).
  uint64_t retriesUsed() const { return Retries; }
  uint64_t reconnects() const { return Reconnects; }

private:
  /// Sends (Kind, Body) and waits for the matching response payload.
  /// Retries transport failures; returns the response body reader state
  /// via OutBody (positioned after the response header).
  Result request(RequestKind Kind, const std::vector<uint8_t> &Body,
                 std::vector<uint8_t> &OutPayload, WireResponseHeader &OutHdr,
                 uint32_t DeadlineMillis = 0);
  bool ensureConnected();
  void closeConnection();
  bool attemptOnce(RequestKind Kind, uint64_t RequestId,
                   const std::vector<uint8_t> &Body, uint32_t DeadlineMillis,
                   std::vector<uint8_t> &OutPayload);
  void backoff(unsigned Attempt);

  ClientOptions Options;
  int Fd = -1;
  uint64_t NextRequestId = 1;
  uint64_t JitterState;
  uint64_t Retries = 0;
  uint64_t Reconnects = 0;
};

} // namespace salssa

#endif // SALSSA_SERVICE_CLIENT_H
