//===- service/Protocol.cpp - salssad wire protocol ---------------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/Protocol.h"
#include <cassert>
#include <cstring>

using namespace salssa;

const char *salssa::requestKindName(RequestKind K) {
  switch (K) {
  case RequestKind::RegisterModules:
    return "RegisterModules";
  case RequestKind::BeginDelta:
    return "BeginDelta";
  case RequestKind::CheckoutForEdit:
    return "CheckoutForEdit";
  case RequestKind::ApplyDelta:
    return "ApplyDelta";
  case RequestKind::QueryStats:
    return "QueryStats";
  case RequestKind::Shutdown:
    return "Shutdown";
  }
  return "Unknown";
}

const char *salssa::statusCodeName(StatusCode S) {
  switch (S) {
  case StatusCode::Ok:
    return "Ok";
  case StatusCode::BadFrame:
    return "BadFrame";
  case StatusCode::VersionMismatch:
    return "VersionMismatch";
  case StatusCode::UnknownRequest:
    return "UnknownRequest";
  case StatusCode::NotRegistered:
    return "NotRegistered";
  case StatusCode::AlreadyRegistered:
    return "AlreadyRegistered";
  case StatusCode::UnknownFunction:
    return "UnknownFunction";
  case StatusCode::NoBatch:
    return "NoBatch";
  case StatusCode::DeadlineExpired:
    return "DeadlineExpired";
  case StatusCode::ShuttingDown:
    return "ShuttingDown";
  case StatusCode::InternalError:
    return "InternalError";
  }
  return "Unknown";
}

// --- Framing -----------------------------------------------------------------

std::vector<uint8_t> salssa::encodeFrame(const std::vector<uint8_t> &Payload) {
  assert(Payload.size() <= MaxFramePayloadBytes && "frame payload too large");
  ByteWriter W;
  W.u32(ProtocolMagic);
  W.u32(ProtocolVersion);
  W.u32(static_cast<uint32_t>(Payload.size()));
  W.u64(fnv1a64(Payload.data(), Payload.size()));
  std::vector<uint8_t> Out = W.buffer();
  Out.insert(Out.end(), Payload.begin(), Payload.end());
  return Out;
}

void FrameAssembler::feed(const uint8_t *Data, size_t N) {
  if (Err != FrameError::None)
    return;
  Buf.insert(Buf.end(), Data, Data + N);
}

bool FrameAssembler::next(std::vector<uint8_t> &Payload) {
  if (Err != FrameError::None)
    return false;
  // Compact once the consumed prefix dominates (keeps feed() amortized
  // O(1) without re-shifting on every extracted frame).
  if (Pos > 0 && Pos * 2 >= Buf.size()) {
    Buf.erase(Buf.begin(), Buf.begin() + static_cast<ptrdiff_t>(Pos));
    Pos = 0;
  }
  if (Buf.size() - Pos < FrameHeaderBytes)
    return false;
  ByteReader R(Buf.data() + Pos, FrameHeaderBytes);
  uint32_t Magic = R.u32();
  uint32_t Version = R.u32();
  uint32_t Length = R.u32();
  uint64_t Checksum = R.u64();
  if (Magic != ProtocolMagic) {
    Err = FrameError::BadMagic;
    return false;
  }
  if (Version != ProtocolVersion) {
    Err = FrameError::BadVersion;
    return false;
  }
  if (Length > MaxFramePayloadBytes) {
    Err = FrameError::Oversized;
    return false;
  }
  if (Buf.size() - Pos - FrameHeaderBytes < Length)
    return false; // need more bytes
  const uint8_t *Body = Buf.data() + Pos + FrameHeaderBytes;
  if (fnv1a64(Body, Length) != Checksum) {
    Err = FrameError::BadChecksum;
    return false;
  }
  Payload.assign(Body, Body + Length);
  Pos += FrameHeaderBytes + Length;
  return true;
}

// --- Payload headers ---------------------------------------------------------

void salssa::encodeRequestHeader(ByteWriter &W, const WireRequestHeader &H) {
  W.u8(static_cast<uint8_t>(H.Kind));
  W.u64(H.RequestId);
  W.u32(H.DeadlineMillis);
}

bool salssa::decodeRequestHeader(ByteReader &R, WireRequestHeader &H) {
  H.Kind = static_cast<RequestKind>(R.u8());
  H.RequestId = R.u64();
  H.DeadlineMillis = R.u32();
  return R.ok();
}

void salssa::encodeResponseHeader(ByteWriter &W, const WireResponseHeader &H) {
  W.u8(static_cast<uint8_t>(H.Kind));
  W.u64(H.RequestId);
  W.u8(static_cast<uint8_t>(H.Status));
}

bool salssa::decodeResponseHeader(ByteReader &R, WireResponseHeader &H) {
  H.Kind = static_cast<RequestKind>(R.u8());
  H.RequestId = R.u64();
  H.Status = static_cast<StatusCode>(R.u8());
  return R.ok();
}

void salssa::encodeString(ByteWriter &W, const std::string &S) {
  W.u32(static_cast<uint32_t>(S.size()));
  for (char C : S)
    W.u8(static_cast<uint8_t>(C));
}

bool salssa::decodeString(ByteReader &R, std::string &S) {
  uint32_t N = R.u32();
  if (!R.ok() || R.remaining() < N)
    return false;
  S.clear();
  S.reserve(N);
  for (uint32_t I = 0; I < N; ++I)
    S.push_back(static_cast<char>(R.u8()));
  return R.ok();
}

// --- Request bodies ----------------------------------------------------------

namespace {

void encodeProfile(ByteWriter &W, const BenchmarkProfile &P) {
  encodeString(W, P.Name);
  W.u32(P.NumFunctions);
  W.u32(P.MinSize);
  W.u32(P.AvgSize);
  W.u32(P.MaxSize);
  W.u32(P.CloneFamilyPercent);
  W.u32(P.MinFamily);
  W.u32(P.MaxFamily);
  W.u32(P.FamilyDriftPercent);
  W.u32(P.SyntacticDriftPercent);
  W.u32(P.LoopPercent);
  W.u32(P.InvokePercent);
  W.u32(P.GiantPairSize);
  W.u32(P.RetTypeVariety);
  W.u64(P.Seed);
}

bool decodeProfile(ByteReader &R, BenchmarkProfile &P) {
  if (!decodeString(R, P.Name))
    return false;
  P.NumFunctions = R.u32();
  P.MinSize = R.u32();
  P.AvgSize = R.u32();
  P.MaxSize = R.u32();
  P.CloneFamilyPercent = R.u32();
  P.MinFamily = R.u32();
  P.MaxFamily = R.u32();
  P.FamilyDriftPercent = R.u32();
  P.SyntacticDriftPercent = R.u32();
  P.LoopPercent = R.u32();
  P.InvokePercent = R.u32();
  P.GiantPairSize = R.u32();
  P.RetTypeVariety = R.u32();
  P.Seed = R.u64();
  return R.ok();
}

void encodeEditOps(ByteWriter &W, const std::vector<EditOp> &Ops) {
  W.u32(static_cast<uint32_t>(Ops.size()));
  for (const EditOp &O : Ops) {
    W.u8(static_cast<uint8_t>(O.K));
    W.u32(O.ModuleIdx);
    encodeString(W, O.Name);
    W.u64(O.OpSeed);
  }
}

bool decodeEditOps(ByteReader &R, std::vector<EditOp> &Ops) {
  uint32_t N = R.u32();
  if (!R.ok())
    return false;
  Ops.clear();
  for (uint32_t I = 0; I < N; ++I) {
    EditOp O;
    O.K = static_cast<EditOp::Kind>(R.u8());
    O.ModuleIdx = R.u32();
    if (!decodeString(R, O.Name))
      return false;
    O.OpSeed = R.u64();
    Ops.push_back(std::move(O));
  }
  return R.ok();
}

void encodeSpec(ByteWriter &W, const EditStepSpec &S) {
  encodeEditOps(W, S.Deletes);
  encodeEditOps(W, S.Changes);
  encodeEditOps(W, S.Adds);
  W.u32(S.Drift.MutatePercent);
  W.u32(S.Drift.InsertPercent);
  W.u32(S.Drift.SyntacticPercent);
  W.u32(S.Generate.TargetSize);
  W.u32(S.Generate.ControlFlowPercent);
  W.u32(S.Generate.LoopPercent);
  W.u32(S.Generate.JoinPhiPercent);
  W.u32(S.Generate.InvokePercent);
  W.u32(S.Generate.MaxDepth);
  W.u32(S.Generate.RetTypeVariety);
}

bool decodeSpec(ByteReader &R, EditStepSpec &S) {
  if (!decodeEditOps(R, S.Deletes) || !decodeEditOps(R, S.Changes) ||
      !decodeEditOps(R, S.Adds))
    return false;
  S.Drift.MutatePercent = R.u32();
  S.Drift.InsertPercent = R.u32();
  S.Drift.SyntacticPercent = R.u32();
  S.Generate.TargetSize = R.u32();
  S.Generate.ControlFlowPercent = R.u32();
  S.Generate.LoopPercent = R.u32();
  S.Generate.JoinPhiPercent = R.u32();
  S.Generate.InvokePercent = R.u32();
  S.Generate.MaxDepth = R.u32();
  S.Generate.RetTypeVariety = R.u32();
  return R.ok();
}

} // namespace

void RegisterModulesRequest::encode(ByteWriter &W) const {
  encodeProfile(W, Profile);
  W.u32(NumModules);
  W.u8(static_cast<uint8_t>(Selection));
  W.u32(NumThreads);
  W.u32(ShardCount);
  W.u32(ExplorationThreshold);
  W.u8(static_cast<uint8_t>(Host));
  W.u8(HashClustering ? 1 : 0);
  W.u8(Canonicalize ? 1 : 0);
  encodeString(W, DecisionCachePath);
  W.u32(QuarantineDecayEpochs);
  W.u8(ReelectHost ? 1 : 0);
}

bool RegisterModulesRequest::decode(ByteReader &R) {
  if (!decodeProfile(R, Profile))
    return false;
  NumModules = R.u32();
  Selection = static_cast<SelectionStrategy>(R.u8());
  NumThreads = R.u32();
  ShardCount = R.u32();
  ExplorationThreshold = R.u32();
  Host = static_cast<HostPolicy>(R.u8());
  HashClustering = R.u8() != 0;
  Canonicalize = R.u8() != 0;
  if (!decodeString(R, DecisionCachePath))
    return false;
  QuarantineDecayEpochs = R.u32();
  ReelectHost = R.u8() != 0;
  return R.ok();
}

void CheckoutRequest::encode(ByteWriter &W) const {
  W.u32(ModuleIdx);
  encodeString(W, Name);
}

bool CheckoutRequest::decode(ByteReader &R) {
  ModuleIdx = R.u32();
  return decodeString(R, Name) && R.ok();
}

void ApplyDeltaRequest::encode(ByteWriter &W) const {
  W.u64(Token);
  encodeSpec(W, Spec);
}

bool ApplyDeltaRequest::decode(ByteReader &R) {
  Token = R.u64();
  return decodeSpec(R, Spec) && R.ok();
}

void QueryStatsRequest::encode(ByteWriter &W) const {
  W.u8(IncludePrints ? 1 : 0);
}

bool QueryStatsRequest::decode(ByteReader &R) {
  IncludePrints = R.u8() != 0;
  return R.ok();
}

// --- Response bodies ---------------------------------------------------------

void StatsSnapshot::encode(ByteWriter &W) const {
  W.u32(Epoch);
  W.u32(FullRemerges);
  W.u32(HostReelections);
  W.u64(QuarantinedCount);
  W.u64(Attempts);
  W.u64(CommittedMerges);
  W.u64(CrossModuleMerges);
  W.u64(SizeBefore);
  W.u64(SizeAfter);
  W.u64(CacheHits);
  W.u64(HashClusterCommits);
  W.u8(DegradedToFullRemerge ? 1 : 0);
  W.u8(HostReelected ? 1 : 0);
  W.u8(ReclusteredFull ? 1 : 0);
  W.u64(ModuleDigest);
}

bool StatsSnapshot::decode(ByteReader &R) {
  Epoch = R.u32();
  FullRemerges = R.u32();
  HostReelections = R.u32();
  QuarantinedCount = R.u64();
  Attempts = R.u64();
  CommittedMerges = R.u64();
  CrossModuleMerges = R.u64();
  SizeBefore = R.u64();
  SizeAfter = R.u64();
  CacheHits = R.u64();
  HashClusterCommits = R.u64();
  DegradedToFullRemerge = R.u8() != 0;
  HostReelected = R.u8() != 0;
  ReclusteredFull = R.u8() != 0;
  ModuleDigest = R.u64();
  return R.ok();
}

void DaemonCounters::encode(ByteWriter &W) const {
  W.u64(Connections);
  W.u64(RequestsServed);
  W.u64(DeltasApplied);
  W.u64(TokenReplays);
  W.u64(HealedBatches);
  W.u64(DeadlineExpirations);
  W.u64(ProtocolFaultsInjected);
  W.u64(RequestErrors);
}

bool DaemonCounters::decode(ByteReader &R) {
  Connections = R.u64();
  RequestsServed = R.u64();
  DeltasApplied = R.u64();
  TokenReplays = R.u64();
  HealedBatches = R.u64();
  DeadlineExpirations = R.u64();
  ProtocolFaultsInjected = R.u64();
  RequestErrors = R.u64();
  return R.ok();
}

void ApplyDeltaResponse::encode(ByteWriter &W) const {
  Stats.encode(W);
  W.u8(Replayed ? 1 : 0);
}

bool ApplyDeltaResponse::decode(ByteReader &R) {
  if (!Stats.decode(R))
    return false;
  Replayed = R.u8() != 0;
  return R.ok();
}

void QueryStatsResponse::encode(ByteWriter &W) const {
  Stats.encode(W);
  Daemon.encode(W);
  encodeString(W, Prints);
}

bool QueryStatsResponse::decode(ByteReader &R) {
  return Stats.decode(R) && Daemon.decode(R) && decodeString(R, Prints) &&
         R.ok();
}

// --- Whole-payload helpers ---------------------------------------------------

std::vector<uint8_t> salssa::buildErrorPayload(const WireRequestHeader &Req,
                                               StatusCode Status,
                                               const std::string &Message,
                                               uint32_t DaemonVersion) {
  ByteWriter W;
  encodeResponseHeader(W, {Req.Kind, Req.RequestId, Status});
  if (Status == StatusCode::VersionMismatch)
    W.u32(DaemonVersion);
  encodeString(W, Message);
  return W.buffer();
}

bool salssa::decodeErrorBody(ByteReader &R, StatusCode Status,
                             uint32_t &Version, std::string &Message) {
  Version = Status == StatusCode::VersionMismatch ? R.u32() : ProtocolVersion;
  return decodeString(R, Message) && R.ok();
}

// --- Idempotency token cache -------------------------------------------------

const std::vector<uint8_t> *ApplyTokenCache::lookup(uint64_t Token) const {
  auto It = ByToken.find(Token);
  return It == ByToken.end() ? nullptr : &It->second;
}

void ApplyTokenCache::remember(uint64_t Token, std::vector<uint8_t> Payload) {
  if (ByToken.count(Token))
    return; // first response wins
  while (Order.size() >= Max) {
    ByToken.erase(Order.front());
    Order.pop_front();
  }
  ByToken.emplace(Token, std::move(Payload));
  Order.push_back(Token);
}
