//===- service/Client.cpp - salssad client library ----------------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/Client.h"
#include "support/RNG.h"
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>

using namespace salssa;

namespace {

bool sendAll(int Fd, const uint8_t *Data, size_t N) {
  size_t Sent = 0;
  while (Sent < N) {
    ssize_t W = ::send(Fd, Data + Sent, N - Sent, MSG_NOSIGNAL);
    if (W <= 0) {
      if (W < 0 && (errno == EINTR || errno == EAGAIN))
        continue;
      return false;
    }
    Sent += static_cast<size_t>(W);
  }
  return true;
}

} // namespace

DaemonClient::DaemonClient(const ClientOptions &Opts)
    : Options(Opts), JitterState(mix64(Opts.RetrySeed ^ 0x5a1d5ad0c11e47ULL)) {
}

DaemonClient::~DaemonClient() { closeConnection(); }

void DaemonClient::closeConnection() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

bool DaemonClient::ensureConnected() {
  if (Fd >= 0)
    return true;
  if (Options.SocketPath.empty() ||
      Options.SocketPath.size() >= sizeof(sockaddr_un{}.sun_path))
    return false;
  int S = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (S < 0)
    return false;
  // Bounded connect: nonblocking connect + poll for writability.
  int Flags = ::fcntl(S, F_GETFL, 0);
  ::fcntl(S, F_SETFL, Flags | O_NONBLOCK);
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::strncpy(Addr.sun_path, Options.SocketPath.c_str(),
               sizeof(Addr.sun_path) - 1);
  int R = ::connect(S, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr));
  if (R < 0 && errno == EINPROGRESS) {
    pollfd P{S, POLLOUT, 0};
    if (::poll(&P, 1, static_cast<int>(Options.ConnectTimeoutMillis)) <= 0) {
      ::close(S);
      return false;
    }
    int Err = 0;
    socklen_t Len = sizeof(Err);
    if (::getsockopt(S, SOL_SOCKET, SO_ERROR, &Err, &Len) < 0 || Err != 0) {
      ::close(S);
      return false;
    }
  } else if (R < 0) {
    ::close(S);
    return false;
  }
  ::fcntl(S, F_SETFL, Flags); // back to blocking; reads use poll
  Fd = S;
  ++Reconnects;
  return true;
}

void DaemonClient::backoff(unsigned Attempt) {
  uint64_t Delay = Options.BackoffBaseMillis;
  for (unsigned I = 0; I < Attempt && Delay < Options.BackoffMaxMillis; ++I)
    Delay *= 2;
  if (Delay > Options.BackoffMaxMillis)
    Delay = Options.BackoffMaxMillis;
  // Up to 50% deterministic jitter, decorrelating concurrent clients.
  JitterState = mix64(JitterState + 0x9e3779b97f4a7c15ULL);
  Delay += (JitterState % (Delay / 2 + 1));
  std::this_thread::sleep_for(std::chrono::milliseconds(Delay));
}

bool DaemonClient::attemptOnce(RequestKind Kind, uint64_t RequestId,
                               const std::vector<uint8_t> &Body,
                               uint32_t DeadlineMillis,
                               std::vector<uint8_t> &OutPayload) {
  if (!ensureConnected())
    return false;
  ByteWriter W;
  encodeRequestHeader(W, {Kind, RequestId, DeadlineMillis});
  for (uint8_t B : Body)
    W.u8(B);
  std::vector<uint8_t> Frame = encodeFrame(W.buffer());
  if (!sendAll(Fd, Frame.data(), Frame.size())) {
    closeConnection();
    return false;
  }
  FrameAssembler Asm;
  uint8_t Buf[4096];
  auto Deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(Options.RequestTimeoutMillis);
  for (;;) {
    auto Now = std::chrono::steady_clock::now();
    if (Now >= Deadline) {
      closeConnection();
      return false;
    }
    int WaitMs = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(Deadline - Now)
            .count());
    pollfd P{Fd, POLLIN, 0};
    int R = ::poll(&P, 1, WaitMs > 200 ? 200 : WaitMs);
    if (R < 0) {
      closeConnection();
      return false;
    }
    if (R == 0)
      continue;
    ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
    if (N <= 0) {
      closeConnection();
      return false;
    }
    Asm.feed(Buf, static_cast<size_t>(N));
    std::vector<uint8_t> Payload;
    while (Asm.next(Payload)) {
      ByteReader HR(Payload.data(), Payload.size());
      WireResponseHeader Hdr;
      if (!decodeResponseHeader(HR, Hdr))
        continue; // garbage payload; keep draining until timeout
      if (Hdr.RequestId != RequestId)
        continue; // stale response from a previous life of this id space
      OutPayload = std::move(Payload);
      return true;
    }
    if (Asm.error() != FrameError::None) {
      // Damaged response frame (or an injected protocol fault): clean
      // per-request failure — tear down and let the retry loop decide.
      closeConnection();
      return false;
    }
  }
}

DaemonClient::Result DaemonClient::request(RequestKind Kind,
                                           const std::vector<uint8_t> &Body,
                                           std::vector<uint8_t> &OutPayload,
                                           WireResponseHeader &OutHdr,
                                           uint32_t DeadlineMillis) {
  Result Res;
  for (unsigned Attempt = 0; Attempt <= Options.MaxRetries; ++Attempt) {
    if (Attempt > 0) {
      ++Retries;
      backoff(Attempt - 1);
    }
    uint64_t RequestId = NextRequestId++;
    if (!attemptOnce(Kind, RequestId, Body, DeadlineMillis, OutPayload))
      continue;
    ByteReader HR(OutPayload.data(), OutPayload.size());
    decodeResponseHeader(HR, OutHdr);
    Res.Status = OutHdr.Status;
    Res.TransportOk = true;
    if (OutHdr.Status != StatusCode::Ok) {
      uint32_t Version = 0;
      decodeErrorBody(HR, OutHdr.Status, Version, Res.ErrorMessage);
    }
    return Res;
  }
  Res.ErrorMessage = "transport retries exhausted";
  return Res;
}

DaemonClient::Result
DaemonClient::registerModules(const RegisterModulesRequest &RM,
                              StatsSnapshot &Out) {
  ByteWriter W;
  RM.encode(W);
  std::vector<uint8_t> Payload;
  WireResponseHeader Hdr;
  Result Res =
      request(RequestKind::RegisterModules, W.buffer(), Payload, Hdr);
  if (Res.TransportOk && Res.Status == StatusCode::Ok) {
    ByteReader R(Payload.data(), Payload.size());
    WireResponseHeader Skip;
    decodeResponseHeader(R, Skip);
    if (!Out.decode(R))
      Res.Status = StatusCode::BadFrame;
  }
  return Res;
}

DaemonClient::Result DaemonClient::beginDelta() {
  std::vector<uint8_t> Payload;
  WireResponseHeader Hdr;
  return request(RequestKind::BeginDelta, {}, Payload, Hdr,
                 Options.LeaseDeadlineMillis);
}

DaemonClient::Result DaemonClient::checkoutForEdit(uint32_t ModuleIdx,
                                                   const std::string &Name) {
  CheckoutRequest CR;
  CR.ModuleIdx = ModuleIdx;
  CR.Name = Name;
  ByteWriter W;
  CR.encode(W);
  std::vector<uint8_t> Payload;
  WireResponseHeader Hdr;
  return request(RequestKind::CheckoutForEdit, W.buffer(), Payload, Hdr);
}

DaemonClient::Result DaemonClient::applyDelta(const EditStepSpec &Spec,
                                              uint64_t Token,
                                              ApplyDeltaResponse &Out) {
  ApplyDeltaRequest AR;
  AR.Token = Token;
  AR.Spec = Spec;
  ByteWriter W;
  AR.encode(W);
  std::vector<uint8_t> Payload;
  WireResponseHeader Hdr;
  Result Res = request(RequestKind::ApplyDelta, W.buffer(), Payload, Hdr);
  if (Res.TransportOk && Res.Status == StatusCode::Ok) {
    ByteReader R(Payload.data(), Payload.size());
    WireResponseHeader Skip;
    decodeResponseHeader(R, Skip);
    if (!Out.decode(R))
      Res.Status = StatusCode::BadFrame;
  }
  return Res;
}

DaemonClient::Result DaemonClient::queryStats(bool IncludePrints,
                                              QueryStatsResponse &Out) {
  QueryStatsRequest QR;
  QR.IncludePrints = IncludePrints;
  ByteWriter W;
  QR.encode(W);
  std::vector<uint8_t> Payload;
  WireResponseHeader Hdr;
  Result Res = request(RequestKind::QueryStats, W.buffer(), Payload, Hdr);
  if (Res.TransportOk && Res.Status == StatusCode::Ok) {
    ByteReader R(Payload.data(), Payload.size());
    WireResponseHeader Skip;
    decodeResponseHeader(R, Skip);
    if (!Out.decode(R))
      Res.Status = StatusCode::BadFrame;
  }
  return Res;
}

DaemonClient::Result DaemonClient::shutdown() {
  std::vector<uint8_t> Payload;
  WireResponseHeader Hdr;
  return request(RequestKind::Shutdown, {}, Payload, Hdr);
}

DaemonClient::Result DaemonClient::applyStep(const EditStepSpec &Spec,
                                             uint64_t Token,
                                             ApplyDeltaResponse &Out) {
  // BeginDelta acquires the writer lease on the *current* connection; a
  // transport retry inside applyDelta forfeits it (fresh connection), in
  // which case the daemon answers NoBatch and we re-acquire. The token
  // makes the loop safe: an apply that already landed replays.
  Result Res;
  for (unsigned Round = 0; Round <= Options.MaxRetries; ++Round) {
    Res = beginDelta();
    if (!Res.TransportOk || Res.Status != StatusCode::Ok)
      return Res;
    Res = applyDelta(Spec, Token, Out);
    if (!Res.TransportOk)
      return Res;
    if (Res.Status != StatusCode::NoBatch)
      return Res;
  }
  return Res;
}
