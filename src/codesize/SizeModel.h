//===- codesize/SizeModel.h - Target code-size model ---------------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lowering-based code-size model standing in for the paper's measured
/// linked-object sizes. Each IR instruction is charged the bytes its
/// lowering would occupy on a CISC x86-like target (Fig 17) or a compact
/// Thumb-like target (Fig 18); functions carry fixed prologue/epilogue +
/// alignment overhead. Phi-nodes are charged per incoming edge (the copies
/// a register allocator places on edges), so phi-node coalescing has a
/// measurable size effect, as in the paper (Fig 20).
///
/// The same model doubles as the profitability cost model shared by FMSA
/// and SalSSA. The paper notes this model has false positives because it
/// cannot see later transformations (Fig 19); the same is true here, since
/// committed merges are followed by further clean-up and the per-function
/// constant overheads shift.
///
//===----------------------------------------------------------------------===//

#ifndef SALSSA_CODESIZE_SIZEMODEL_H
#define SALSSA_CODESIZE_SIZEMODEL_H

#include <cstdint>

namespace salssa {

class Function;
class Instruction;
class Module;

/// Lowering targets.
enum class TargetArch : uint8_t {
  X86Like,   ///< variable-length CISC encodings (SPEC experiments)
  ThumbLike, ///< compact 16/32-bit RISC encodings (MiBench experiments)
};

/// Estimated byte size of one lowered instruction.
unsigned estimateInstructionSize(const Instruction &I, TargetArch Arch);

/// Estimated byte size of a function (instructions + fixed overhead).
/// Declarations cost nothing.
unsigned estimateFunctionSize(const Function &F, TargetArch Arch);

/// Estimated linked-object size: the sum over all definitions.
uint64_t estimateModuleSize(const Module &M, TargetArch Arch);

} // namespace salssa

#endif // SALSSA_CODESIZE_SIZEMODEL_H
