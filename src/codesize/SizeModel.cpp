//===- codesize/SizeModel.cpp - Target code-size model --------------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//

#include "codesize/SizeModel.h"
#include "ir/Module.h"

using namespace salssa;

unsigned salssa::estimateInstructionSize(const Instruction &I,
                                         TargetArch Arch) {
  const bool X86 = Arch == TargetArch::X86Like;
  switch (I.getOpcode()) {
  case ValueKind::Add:
  case ValueKind::Sub:
  case ValueKind::And:
  case ValueKind::Or:
  case ValueKind::Xor:
  case ValueKind::Shl:
  case ValueKind::LShr:
  case ValueKind::AShr:
    return X86 ? 3 : 2;
  case ValueKind::Mul:
    return X86 ? 4 : 4;
  case ValueKind::SDiv:
  case ValueKind::UDiv:
  case ValueKind::SRem:
  case ValueKind::URem:
    return X86 ? 6 : 4; // div sequences / library-ish expansions
  case ValueKind::FAdd:
  case ValueKind::FSub:
  case ValueKind::FMul:
  case ValueKind::FDiv:
    return X86 ? 4 : 4;
  case ValueKind::ICmp:
  case ValueKind::FCmp:
    return X86 ? 3 : 2;
  case ValueKind::Select:
    // cmov on x86; an IT block + two moves on Thumb.
    return X86 ? 6 : 6;
  case ValueKind::ZExt:
  case ValueKind::SExt:
  case ValueKind::Trunc:
    return X86 ? 3 : 2;
  case ValueKind::SIToFP:
  case ValueKind::FPToSI:
    return X86 ? 4 : 4;
  case ValueKind::Alloca:
    return 0; // folded into the frame
  case ValueKind::Load:
  case ValueKind::Store:
    return X86 ? 4 : 2;
  case ValueKind::Gep:
    return X86 ? 4 : 2; // lea / add
  case ValueKind::Call:
    return X86 ? 5 : 4;
  case ValueKind::Invoke:
    return X86 ? 5 : 4;
  case ValueKind::LandingPad:
    return 8; // EH table entries attributed to the pad
  case ValueKind::Resume:
    return X86 ? 5 : 4;
  case ValueKind::Phi: {
    // Register copies on incoming edges.
    const auto &P = *cast<PhiInst>(&I);
    unsigned PerEdge = X86 ? 2 : 2;
    return P.getNumIncoming() * PerEdge;
  }
  case ValueKind::Br:
    return cast<BranchInst>(&I)->isConditional() ? (X86 ? 4 : 4)
                                                 : (X86 ? 2 : 2);
  case ValueKind::Switch: {
    const auto &S = *cast<SwitchInst>(&I);
    return (X86 ? 6 : 4) + S.getNumCases() * (X86 ? 4 : 4);
  }
  case ValueKind::Ret:
    return X86 ? 1 : 2;
  case ValueKind::Unreachable:
    return X86 ? 2 : 2; // ud2 / udf
  default:
    return 4;
  }
}

unsigned salssa::estimateFunctionSize(const Function &F, TargetArch Arch) {
  if (F.isDeclaration())
    return 0;
  // Prologue/epilogue, frame setup and linker alignment padding.
  unsigned Size = Arch == TargetArch::X86Like ? 12 : 8;
  for (const BasicBlock *BB : F)
    for (const Instruction *I : *BB)
      Size += estimateInstructionSize(*I, Arch);
  return Size;
}

uint64_t salssa::estimateModuleSize(const Module &M, TargetArch Arch) {
  uint64_t Size = 0;
  for (const Function *F : M.functions())
    Size += estimateFunctionSize(*F, Arch);
  return Size;
}
