//===- ir/Type.h - IR type system -----------------------------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The IR type system: void, integers (i1..i64), float, double, an opaque
/// pointer type, and function types. All types are interned in a
/// TypeContext, so type equality is pointer equality — the property the
/// merging code relies on when deciding whether two instructions or two
/// disjoint definitions are type-compatible.
///
//===----------------------------------------------------------------------===//

#ifndef SALSSA_IR_TYPE_H
#define SALSSA_IR_TYPE_H

#include <cassert>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace salssa {

class TypeContext;

/// A node in the interned type graph. Never constructed directly; obtain
/// instances through TypeContext.
class Type {
public:
  enum class Kind : uint8_t {
    Void,
    Integer,
    Float,
    Double,
    Pointer, // opaque, as in modern LLVM
    FunctionTy,
  };

  Kind getKind() const { return TheKind; }

  bool isVoid() const { return TheKind == Kind::Void; }
  bool isInteger() const { return TheKind == Kind::Integer; }
  bool isIntegerWidth(unsigned W) const {
    return isInteger() && BitWidth == W;
  }
  bool isBool() const { return isIntegerWidth(1); }
  bool isFloat() const { return TheKind == Kind::Float; }
  bool isDouble() const { return TheKind == Kind::Double; }
  bool isFloatingPoint() const { return isFloat() || isDouble(); }
  bool isPointer() const { return TheKind == Kind::Pointer; }
  bool isFunction() const { return TheKind == Kind::FunctionTy; }
  /// True for types a value of which can be produced/consumed by
  /// instructions (everything except void and function types).
  bool isFirstClass() const { return !isVoid() && !isFunction(); }

  /// Bit width of an integer type.
  unsigned getIntegerBitWidth() const {
    assert(isInteger() && "not an integer type");
    return BitWidth;
  }

  /// Return type of a function type.
  Type *getReturnType() const {
    assert(isFunction() && "not a function type");
    return RetTy;
  }

  /// Parameter types of a function type.
  const std::vector<Type *> &getParamTypes() const {
    assert(isFunction() && "not a function type");
    return ParamTys;
  }

  /// Size in bytes a value of this type occupies in the interpreter's
  /// memory model (also used by the Gep/Alloca sizing and the size model).
  unsigned getStoreSize() const;

  /// Renders the type in LLVM-like syntax, e.g. "i32", "ptr", "double".
  std::string getName() const;

private:
  friend class TypeContext;
  Type(Kind K, unsigned Width) : TheKind(K), BitWidth(Width) {}

  Kind TheKind;
  unsigned BitWidth = 0;           // integers only
  Type *RetTy = nullptr;           // function types only
  std::vector<Type *> ParamTys;    // function types only
};

/// Owns and interns all types. One per Context.
class TypeContext {
public:
  TypeContext();
  TypeContext(const TypeContext &) = delete;
  TypeContext &operator=(const TypeContext &) = delete;

  Type *getVoidTy() { return VoidTy.get(); }
  Type *getInt1Ty() { return Int1Ty.get(); }
  Type *getInt8Ty() { return Int8Ty.get(); }
  Type *getInt16Ty() { return Int16Ty.get(); }
  Type *getInt32Ty() { return Int32Ty.get(); }
  Type *getInt64Ty() { return Int64Ty.get(); }
  Type *getFloatTy() { return FloatTy.get(); }
  Type *getDoubleTy() { return DoubleTy.get(); }
  Type *getPointerTy() { return PointerTy.get(); }

  /// Integer type of width \p Bits (must be one of 1/8/16/32/64).
  Type *getIntegerTy(unsigned Bits);

  /// Interned function type. Thread-safe: merged signatures are computed
  /// by MergePipeline worker threads.
  Type *getFunctionTy(Type *Ret, const std::vector<Type *> &Params);

private:
  std::unique_ptr<Type> makeSimple(Type::Kind K, unsigned Width = 0) {
    return std::unique_ptr<Type>(new Type(K, Width));
  }

  std::unique_ptr<Type> VoidTy, Int1Ty, Int8Ty, Int16Ty, Int32Ty, Int64Ty,
      FloatTy, DoubleTy, PointerTy;
  std::mutex FunctionTysMutex; ///< guards FunctionTys
  std::map<std::pair<Type *, std::vector<Type *>>, std::unique_ptr<Type>>
      FunctionTys;
};

} // namespace salssa

#endif // SALSSA_IR_TYPE_H
