//===- ir/IRPrinter.h - Textual IR printing ---------------------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders IR in an LLVM-like textual form, mainly for debugging, golden
/// tests and the examples. Unnamed values get sequential %N numbers; block
/// labels likewise.
///
//===----------------------------------------------------------------------===//

#ifndef SALSSA_IR_IRPRINTER_H
#define SALSSA_IR_IRPRINTER_H

#include <string>

namespace salssa {

class Function;
class Module;
class Instruction;
class Value;

/// Renders a whole function as text.
std::string printFunction(const Function &F);

/// Renders every function of \p M.
std::string printModule(const Module &M);

/// One-line rendering of a single instruction (names resolved within its
/// parent function when linked; otherwise operands print as <badref>).
std::string printInstruction(const Instruction &I);

} // namespace salssa

#endif // SALSSA_IR_IRPRINTER_H
