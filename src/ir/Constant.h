//===- ir/Constant.h - Constant values ------------------------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Constants: integers, floating point, undef, null pointers, and global
/// variables (whose address is the constant). Constants are interned by the
/// Context (globals by the Module), so pointer equality is value equality —
/// the alignment code relies on this when comparing operands.
///
//===----------------------------------------------------------------------===//

#ifndef SALSSA_IR_CONSTANT_H
#define SALSSA_IR_CONSTANT_H

#include "ir/Type.h"
#include "ir/Value.h"

namespace salssa {

class Context;

/// Common base of all constants.
class Constant : public Value {
public:
  static bool classof(const Value *V) {
    ValueKind K = V->getValueKind();
    return K >= ConstFirstKind && K <= ConstLastKind;
  }

protected:
  Constant(ValueKind K, Type *T) : Value(K, T) {}
};

/// An integer constant of some integer type; the value is stored
/// sign-agnostically in 64 bits, truncated to the type's width.
class ConstantInt : public Constant {
public:
  /// Raw bits, zero-extended to 64.
  uint64_t getZExtValue() const { return Bits; }
  /// Sign-extended interpretation.
  int64_t getSExtValue() const;
  bool isZero() const { return Bits == 0; }
  bool isOne() const { return Bits == 1; }
  /// For i1 constants.
  bool isTrue() const { return getType()->isBool() && Bits == 1; }

  static bool classof(const Value *V) {
    return V->getValueKind() == ValueKind::ConstantInt;
  }

private:
  friend class Context;
  ConstantInt(Type *T, uint64_t B)
      : Constant(ValueKind::ConstantInt, T), Bits(B) {}
  uint64_t Bits;
};

/// A floating-point constant (float or double type).
class ConstantFP : public Constant {
public:
  double getValue() const { return Val; }

  static bool classof(const Value *V) {
    return V->getValueKind() == ValueKind::ConstantFP;
  }

private:
  friend class Context;
  ConstantFP(Type *T, double V) : Constant(ValueKind::ConstantFP, T), Val(V) {}
  double Val;
};

/// An undefined value of any first-class type. SalSSA's phi generation uses
/// undef for incoming flows that belong to "the other" input function
/// (§4.2.3 of the paper); by construction those flows are never taken.
class UndefValue : public Constant {
public:
  static bool classof(const Value *V) {
    return V->getValueKind() == ValueKind::UndefValue;
  }

private:
  friend class Context;
  explicit UndefValue(Type *T) : Constant(ValueKind::UndefValue, T) {}
};

/// The null pointer constant.
class ConstantPointerNull : public Constant {
public:
  static bool classof(const Value *V) {
    return V->getValueKind() == ValueKind::ConstantPointerNull;
  }

private:
  friend class Context;
  explicit ConstantPointerNull(Type *T)
      : Constant(ValueKind::ConstantPointerNull, T) {}
};

/// A module-level variable; the Value is its address (pointer type). Used
/// by workloads to model lookup tables and mutable program state.
class GlobalVariable : public Constant {
public:
  /// Type of the pointee storage.
  Type *getValueType() const { return ValueTy; }
  /// Number of elements of getValueType() the storage holds (arrays).
  unsigned getNumElements() const { return NumElements; }
  /// Total byte size of the storage.
  unsigned getStorageSize() const {
    return ValueTy->getStoreSize() * NumElements;
  }

  static bool classof(const Value *V) {
    return V->getValueKind() == ValueKind::GlobalVariable;
  }

private:
  friend class Module;
  GlobalVariable(Type *PtrTy, Type *ValTy, unsigned N,
                 const std::string &Name)
      : Constant(ValueKind::GlobalVariable, PtrTy), ValueTy(ValTy),
        NumElements(N) {
    setName(Name);
  }
  Type *ValueTy;
  unsigned NumElements;
};

} // namespace salssa

#endif // SALSSA_IR_CONSTANT_H
