//===- ir/BasicBlock.h - Basic block ---------------------------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A basic block: a label plus an ordered list of instructions ending in a
/// terminator. Blocks own their instructions. Predecessor queries are
/// served by the analysis layer (CFGInfo) — blocks do not keep incremental
/// predecessor lists that could drift out of sync during CFG surgery.
///
//===----------------------------------------------------------------------===//

#ifndef SALSSA_IR_BASICBLOCK_H
#define SALSSA_IR_BASICBLOCK_H

#include "ir/Instruction.h"
#include <list>

namespace salssa {

class Function;

/// A node of the control-flow graph.
class BasicBlock {
public:
  using InstListTy = std::list<Instruction *>;
  using iterator = InstListTy::iterator;
  using const_iterator = InstListTy::const_iterator;

  explicit BasicBlock(const std::string &Name = "") : Name(Name) {}
  BasicBlock(const BasicBlock &) = delete;
  BasicBlock &operator=(const BasicBlock &) = delete;
  ~BasicBlock();

  const std::string &getName() const { return Name; }
  void setName(const std::string &N) { Name = N; }

  Function *getParent() const { return Parent; }

  /// \name Instruction list.
  /// @{
  iterator begin() { return Insts.begin(); }
  iterator end() { return Insts.end(); }
  const_iterator begin() const { return Insts.begin(); }
  const_iterator end() const { return Insts.end(); }
  bool empty() const { return Insts.empty(); }
  size_t size() const { return Insts.size(); }
  Instruction *front() const { return Insts.front(); }
  Instruction *back() const { return Insts.back(); }
  const InstListTy &instructions() const { return Insts; }
  /// @}

  /// The block's terminator, or null if the block is not yet terminated.
  Instruction *getTerminator() const {
    if (Insts.empty() || !Insts.back()->isTerminator())
      return nullptr;
    return Insts.back();
  }

  /// First non-phi instruction (or null for an empty block).
  Instruction *getFirstNonPhi() const;

  /// The phi-nodes at the head of this block.
  std::vector<PhiInst *> phis() const;

  /// Successor blocks, taken from the terminator (empty when
  /// unterminated).
  std::vector<BasicBlock *> successors() const;

  /// Predecessors computed by scanning the parent function — O(E); use
  /// analysis::CFGInfo in hot paths.
  std::vector<BasicBlock *> predecessors() const;

  /// True when this block starts (after phis) with a landingpad.
  bool isLandingBlock() const;

  /// Appends \p I, transferring ownership to this block.
  void push_back(Instruction *I);

  /// Inserts \p I before \p Pos, transferring ownership.
  iterator insert(iterator Pos, Instruction *I);

  /// Unlinks this block from its parent function without deleting it.
  void removeFromParent();

  /// Unlinks and deletes. All instructions must be use-free (call
  /// dropAllBlockReferences first when tearing down whole subgraphs).
  void eraseFromParent();

  /// Calls dropAllReferences on every instruction; used before bulk
  /// deletion so cross-references don't dangle.
  void dropAllBlockReferences();

  /// Updates every phi in this block that has an incoming entry for
  /// \p OldPred to reference \p NewPred instead.
  void replacePhiUsesWith(BasicBlock *OldPred, BasicBlock *NewPred);

  /// Removes the incoming entries for \p Pred from all phis (when the edge
  /// Pred->this is deleted).
  void removePredecessorEntries(BasicBlock *Pred);

private:
  friend class Function;
  friend class Instruction;

  std::string Name;
  Function *Parent = nullptr;
  std::list<BasicBlock *>::iterator SelfIt;
  InstListTy Insts;
};

} // namespace salssa

#endif // SALSSA_IR_BASICBLOCK_H
