//===- ir/Context.cpp - IR ownership context -------------------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Context.h"
#include <cstring>

using namespace salssa;

static uint64_t truncateToWidth(uint64_t Bits, unsigned Width) {
  if (Width >= 64)
    return Bits;
  return Bits & ((uint64_t(1) << Width) - 1);
}

ConstantInt *Context::getInt(Type *Ty, uint64_t Bits) {
  assert(Ty->isInteger() && "integer constant of non-integer type");
  Bits = truncateToWidth(Bits, Ty->getIntegerBitWidth());
  auto Key = std::make_pair(Ty, Bits);
  std::lock_guard<std::mutex> Lock(PoolMutex);
  auto It = IntPool.find(Key);
  if (It != IntPool.end())
    return It->second.get();
  auto *C = new ConstantInt(Ty, Bits);
  IntPool.emplace(Key, std::unique_ptr<ConstantInt>(C));
  return C;
}

ConstantFP *Context::getFP(Type *Ty, double V) {
  assert(Ty->isFloatingPoint() && "fp constant of non-fp type");
  if (Ty->isFloat())
    V = static_cast<float>(V); // canonicalize to float precision
  uint64_t Key64;
  static_assert(sizeof(double) == sizeof(uint64_t));
  std::memcpy(&Key64, &V, sizeof(V));
  auto Key = std::make_pair(Ty, Key64);
  std::lock_guard<std::mutex> Lock(PoolMutex);
  auto It = FPPool.find(Key);
  if (It != FPPool.end())
    return It->second.get();
  auto *C = new ConstantFP(Ty, V);
  FPPool.emplace(Key, std::unique_ptr<ConstantFP>(C));
  return C;
}

UndefValue *Context::getUndef(Type *Ty) {
  assert(Ty->isFirstClass() && "undef of non-first-class type");
  std::lock_guard<std::mutex> Lock(PoolMutex);
  auto It = UndefPool.find(Ty);
  if (It != UndefPool.end())
    return It->second.get();
  auto *U = new UndefValue(Ty);
  UndefPool.emplace(Ty, std::unique_ptr<UndefValue>(U));
  return U;
}

ConstantPointerNull *Context::getNullPtr() {
  std::lock_guard<std::mutex> Lock(PoolMutex);
  if (!NullPtr)
    NullPtr.reset(new ConstantPointerNull(ptrTy()));
  return NullPtr.get();
}

int64_t ConstantInt::getSExtValue() const {
  unsigned W = getType()->getIntegerBitWidth();
  if (W >= 64)
    return static_cast<int64_t>(Bits);
  uint64_t SignBit = uint64_t(1) << (W - 1);
  if (Bits & SignBit)
    return static_cast<int64_t>(Bits | ~((uint64_t(1) << W) - 1));
  return static_cast<int64_t>(Bits);
}
