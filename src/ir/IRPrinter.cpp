//===- ir/IRPrinter.cpp - Textual IR printing --------------------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/IRPrinter.h"
#include "ir/Module.h"
#include <map>
#include <sstream>

using namespace salssa;

namespace {

/// Assigns stable local names (%0, %1, ... and ^bb0, ...) to anonymous
/// values and blocks within one function.
class SlotTracker {
public:
  explicit SlotTracker(const Function &F) {
    for (const auto &A : F.args())
      nameOf(A.get());
    for (const BasicBlock *BB : F) {
      blockNameOf(BB);
      for (const Instruction *I : *BB)
        if (!I->getType()->isVoid())
          nameOf(I);
    }
  }

  std::string nameOf(const Value *V) {
    if (V->hasName())
      return "%" + V->getName();
    auto It = ValueSlots.find(V);
    if (It != ValueSlots.end())
      return "%" + std::to_string(It->second);
    unsigned Slot = NextValue++;
    ValueSlots.emplace(V, Slot);
    return "%" + std::to_string(Slot);
  }

  std::string blockNameOf(const BasicBlock *BB) {
    if (!BB)
      return "<null-block>";
    if (!BB->getName().empty())
      return BB->getName();
    auto It = BlockSlots.find(BB);
    if (It != BlockSlots.end())
      return "bb" + std::to_string(It->second);
    unsigned Slot = NextBlock++;
    BlockSlots.emplace(BB, Slot);
    return "bb" + std::to_string(Slot);
  }

private:
  std::map<const Value *, unsigned> ValueSlots;
  std::map<const BasicBlock *, unsigned> BlockSlots;
  unsigned NextValue = 0;
  unsigned NextBlock = 0;
};

std::string renderOperand(const Value *V, SlotTracker *Slots) {
  if (!V)
    return "<null>";
  if (const auto *CI = dyn_cast<ConstantInt>(V)) {
    if (CI->getType()->isBool())
      return CI->isTrue() ? "true" : "false";
    return std::to_string(CI->getSExtValue());
  }
  if (const auto *CF = dyn_cast<ConstantFP>(V)) {
    std::ostringstream OS;
    OS << CF->getValue();
    return OS.str();
  }
  if (isa<UndefValue>(V))
    return "undef";
  if (isa<ConstantPointerNull>(V))
    return "null";
  if (const auto *G = dyn_cast<GlobalVariable>(V))
    return "@" + G->getName();
  if (Slots)
    return Slots->nameOf(V);
  return V->hasName() ? "%" + V->getName() : "<badref>";
}

void renderInstruction(const Instruction &I, SlotTracker *Slots,
                       std::ostringstream &OS) {
  auto Op = [&](const Value *V) { return renderOperand(V, Slots); };
  auto Blk = [&](const BasicBlock *BB) {
    return Slots ? Slots->blockNameOf(BB)
                 : (BB && !BB->getName().empty() ? BB->getName() : "<bb>");
  };

  if (!I.getType()->isVoid())
    OS << Op(&I) << " = ";

  switch (I.getOpcode()) {
  case ValueKind::ICmp:
  case ValueKind::FCmp: {
    const auto &C = *cast<CmpInst>(&I);
    OS << I.getOpcodeName() << " " << cmpPredicateName(C.getPredicate())
       << " " << C.getLHS()->getType()->getName() << " " << Op(C.getLHS())
       << ", " << Op(C.getRHS());
    return;
  }
  case ValueKind::Select: {
    const auto &S = *cast<SelectInst>(&I);
    OS << "select i1 " << Op(S.getCondition()) << ", "
       << S.getType()->getName() << " " << Op(S.getTrueValue()) << ", "
       << Op(S.getFalseValue());
    return;
  }
  case ValueKind::Alloca: {
    const auto &A = *cast<AllocaInst>(&I);
    OS << "alloca " << A.getAllocatedType()->getName();
    if (A.getNumElements() != 1)
      OS << ", " << A.getNumElements();
    return;
  }
  case ValueKind::Load: {
    const auto &L = *cast<LoadInst>(&I);
    OS << "load " << L.getType()->getName() << ", ptr "
       << Op(L.getPointerOperand());
    return;
  }
  case ValueKind::Store: {
    const auto &S = *cast<StoreInst>(&I);
    OS << "store " << S.getValueOperand()->getType()->getName() << " "
       << Op(S.getValueOperand()) << ", ptr " << Op(S.getPointerOperand());
    return;
  }
  case ValueKind::Gep: {
    const auto &G = *cast<GepInst>(&I);
    OS << "gep " << G.getElementType()->getName() << ", ptr "
       << Op(G.getBaseOperand()) << ", " << Op(G.getIndexOperand());
    return;
  }
  case ValueKind::Call:
  case ValueKind::Invoke: {
    const auto &C = *cast<CallBase>(&I);
    OS << I.getOpcodeName() << " " << I.getType()->getName() << " @"
       << (C.getCallee() ? C.getCallee()->getName() : "<null>") << "(";
    for (unsigned A = 0; A != C.getNumArgs(); ++A) {
      if (A)
        OS << ", ";
      OS << Op(C.getArg(A));
    }
    OS << ")";
    if (const auto *Inv = dyn_cast<InvokeInst>(&I))
      OS << " to " << Blk(Inv->getNormalDest()) << " unwind "
         << Blk(Inv->getUnwindDest());
    return;
  }
  case ValueKind::LandingPad:
    OS << "landingpad";
    return;
  case ValueKind::Resume:
    OS << "resume " << Op(cast<ResumeInst>(&I)->getToken());
    return;
  case ValueKind::Phi: {
    const auto &P = *cast<PhiInst>(&I);
    OS << "phi " << P.getType()->getName() << " ";
    for (unsigned K = 0; K != P.getNumIncoming(); ++K) {
      if (K)
        OS << ", ";
      OS << "[" << Op(P.getIncomingValue(K)) << ", "
         << Blk(P.getIncomingBlock(K)) << "]";
    }
    return;
  }
  case ValueKind::Br: {
    const auto &B = *cast<BranchInst>(&I);
    if (B.isConditional())
      OS << "br i1 " << Op(B.getCondition()) << ", " << Blk(B.getTrueDest())
         << ", " << Blk(B.getFalseDest());
    else
      OS << "br " << Blk(B.getTrueDest());
    return;
  }
  case ValueKind::Switch: {
    const auto &S = *cast<SwitchInst>(&I);
    OS << "switch " << S.getCondition()->getType()->getName() << " "
       << Op(S.getCondition()) << ", default " << Blk(S.getDefaultDest())
       << " [";
    for (unsigned C = 0; C != S.getNumCases(); ++C) {
      if (C)
        OS << " ";
      OS << Op(S.getCaseValue(C)) << ":" << Blk(S.getCaseDest(C));
    }
    OS << "]";
    return;
  }
  case ValueKind::Ret: {
    const auto &R = *cast<RetInst>(&I);
    if (R.hasReturnValue())
      OS << "ret " << R.getReturnValue()->getType()->getName() << " "
         << Op(R.getReturnValue());
    else
      OS << "ret void";
    return;
  }
  case ValueKind::Unreachable:
    OS << "unreachable";
    return;
  default:
    break;
  }

  // Binary operators and casts share a generic form.
  OS << I.getOpcodeName() << " ";
  if (I.isCast())
    OS << Op(I.getOperand(0)) << " to " << I.getType()->getName();
  else {
    OS << I.getType()->getName() << " ";
    for (unsigned K = 0; K != I.getNumOperands(); ++K) {
      if (K)
        OS << ", ";
      OS << Op(I.getOperand(K));
    }
  }
}

} // namespace

std::string salssa::printFunction(const Function &F) {
  std::ostringstream OS;
  OS << (F.isDeclaration() ? "declare " : "define ")
     << F.getReturnType()->getName() << " @" << F.getName() << "(";
  for (unsigned I = 0; I != F.getNumArgs(); ++I) {
    if (I)
      OS << ", ";
    OS << F.getArg(I)->getType()->getName() << " %"
       << F.getArg(I)->getName();
  }
  OS << ")";
  if (F.isDeclaration()) {
    OS << "\n";
    return OS.str();
  }
  SlotTracker Slots(F);
  OS << " {\n";
  for (const BasicBlock *BB : F) {
    OS << Slots.blockNameOf(BB) << ":\n";
    for (const Instruction *I : *BB) {
      OS << "  ";
      renderInstruction(*I, &Slots, OS);
      OS << "\n";
    }
  }
  OS << "}\n";
  return OS.str();
}

std::string salssa::printModule(const Module &M) {
  std::ostringstream OS;
  OS << "; module " << M.getName() << "\n";
  for (const auto &G : M.globals())
    OS << "@" << G->getName() << " = global " << G->getValueType()->getName()
       << " x " << G->getNumElements() << "\n";
  for (const Function *F : M.functions())
    OS << "\n" << printFunction(*F);
  return OS.str();
}

std::string salssa::printInstruction(const Instruction &I) {
  std::ostringstream OS;
  if (const Function *F = I.getFunction()) {
    SlotTracker Slots(*F);
    renderInstruction(I, &Slots, OS);
  } else {
    renderInstruction(I, nullptr, OS);
  }
  return OS.str();
}
