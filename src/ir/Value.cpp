//===- ir/Value.cpp - Value and User implementation -----------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Value.h"
#include "ir/Type.h"
#include <algorithm>

using namespace salssa;

// The suspension count lives (and is only ever touched) in this TU; see
// the note on detail::suspendUseTracking in Value.h.
static thread_local unsigned SuspendedUseTracking = 0;

void salssa::detail::suspendUseTracking() { ++SuspendedUseTracking; }
void salssa::detail::resumeUseTracking() { --SuspendedUseTracking; }
bool salssa::detail::useTrackingSuspended() {
  return SuspendedUseTracking != 0;
}

Value::~Value() {
  assert(UserList.empty() &&
         "deleting a value that still has users; fix the teardown order");
}

void Value::removeUser(User *U) {
  if (!isUseTracked())
    return;
  // One occurrence per operand slot; remove exactly one, searching from the
  // back (recently added uses are removed most often).
  for (size_t I = UserList.size(); I > 0; --I) {
    if (UserList[I - 1] == U) {
      UserList.erase(UserList.begin() + static_cast<ptrdiff_t>(I - 1));
      return;
    }
  }
  assert(false && "removeUser: user not found");
}

void Value::replaceAllUsesWith(Value *New) {
  assert(New != this && "RAUW with self would loop forever");
  assert(New->getType() == getType() && "RAUW across different types");
  assert(isUseTracked() && "RAUW needs a use list; constants have none");
  // Snapshot: setOperand mutates UserList.
  std::vector<User *> Snapshot = UserList;
  for (User *U : Snapshot) {
    for (unsigned I = 0, E = U->getNumOperands(); I != E; ++I)
      if (U->getOperand(I) == this)
        U->setOperand(I, New);
  }
  assert(UserList.empty() && "RAUW left stale uses behind");
}

void User::setOperand(unsigned I, Value *V) {
  assert(I < getNumOperands() && "setOperand index out of range");
  Value *Old = getOperand(I);
  if (Old == V)
    return;
  if (Old)
    Old->removeUser(this);
  const_cast<std::vector<Value *> &>(operands())[I] = V;
  if (V)
    V->addUser(this);
}

void User::initOperand(unsigned I, Value *V) {
  assert(I < getNumOperands() && "initOperand index out of range");
  const_cast<std::vector<Value *> &>(operands())[I] = V;
  if (V)
    V->addUser(this);
}

int User::findOperand(const Value *V) const {
  for (unsigned I = 0, E = getNumOperands(); I != E; ++I)
    if (getOperand(I) == V)
      return static_cast<int>(I);
  return -1;
}

void User::dropAllReferences() {
  for (Value *Op : Operands)
    if (Op)
      Op->removeUser(this);
  Operands.clear();
}

void User::appendOperand(Value *V) {
  Operands.push_back(V);
  if (V)
    V->addUser(this);
}

void User::eraseOperand(unsigned I) {
  assert(I < Operands.size() && "eraseOperand index out of range");
  if (Operands[I])
    Operands[I]->removeUser(this);
  Operands.erase(Operands.begin() + I);
}

const char *salssa::valueKindName(ValueKind K) {
  switch (K) {
  case ValueKind::Argument:
    return "argument";
  case ValueKind::GlobalVariable:
    return "global";
  case ValueKind::ConstantInt:
    return "constint";
  case ValueKind::ConstantFP:
    return "constfp";
  case ValueKind::UndefValue:
    return "undef";
  case ValueKind::ConstantPointerNull:
    return "null";
  case ValueKind::Add:
    return "add";
  case ValueKind::Sub:
    return "sub";
  case ValueKind::Mul:
    return "mul";
  case ValueKind::SDiv:
    return "sdiv";
  case ValueKind::UDiv:
    return "udiv";
  case ValueKind::SRem:
    return "srem";
  case ValueKind::URem:
    return "urem";
  case ValueKind::And:
    return "and";
  case ValueKind::Or:
    return "or";
  case ValueKind::Xor:
    return "xor";
  case ValueKind::Shl:
    return "shl";
  case ValueKind::LShr:
    return "lshr";
  case ValueKind::AShr:
    return "ashr";
  case ValueKind::FAdd:
    return "fadd";
  case ValueKind::FSub:
    return "fsub";
  case ValueKind::FMul:
    return "fmul";
  case ValueKind::FDiv:
    return "fdiv";
  case ValueKind::ICmp:
    return "icmp";
  case ValueKind::FCmp:
    return "fcmp";
  case ValueKind::Select:
    return "select";
  case ValueKind::ZExt:
    return "zext";
  case ValueKind::SExt:
    return "sext";
  case ValueKind::Trunc:
    return "trunc";
  case ValueKind::SIToFP:
    return "sitofp";
  case ValueKind::FPToSI:
    return "fptosi";
  case ValueKind::Alloca:
    return "alloca";
  case ValueKind::Load:
    return "load";
  case ValueKind::Store:
    return "store";
  case ValueKind::Gep:
    return "gep";
  case ValueKind::Call:
    return "call";
  case ValueKind::Invoke:
    return "invoke";
  case ValueKind::LandingPad:
    return "landingpad";
  case ValueKind::Phi:
    return "phi";
  case ValueKind::Br:
    return "br";
  case ValueKind::Switch:
    return "switch";
  case ValueKind::Ret:
    return "ret";
  case ValueKind::Resume:
    return "resume";
  case ValueKind::Unreachable:
    return "unreachable";
  }
  return "<unknown>";
}
