//===- ir/SymbolResolution.cpp - Linker-style callee resolution ----------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/SymbolResolution.h"
#include "ir/Module.h"
#include <map>

using namespace salssa;

SymbolResolutionStats
salssa::resolveCalleesAcrossModules(const std::vector<Module *> &Modules) {
  SymbolResolutionStats Stats;

  // One pass in (registration, creation) order decides each name's
  // canonical function: the unique definition, or the first declaration
  // when nobody defines it. Names defined more than once are poisoned —
  // in this IR those are distinct local functions, not an ODR merge.
  struct NameState {
    Function *Canonical = nullptr;
    unsigned Occurrences = 0;
    bool CanonicalIsDef = false;
    bool Poisoned = false;
  };
  std::map<std::string, NameState> Names;
  for (Module *M : Modules)
    for (Function *F : M->functions()) {
      NameState &S = Names[F->getName()];
      ++S.Occurrences;
      if (S.Poisoned)
        continue;
      if (!F->isDeclaration()) {
        if (S.CanonicalIsDef) { // second definition: distinct locals
          S.Poisoned = true;
          continue;
        }
        S.Canonical = F;
        S.CanonicalIsDef = true;
      } else if (!S.Canonical) {
        S.Canonical = F;
      }
    }

  for (auto &[Name, S] : Names)
    if (!S.Poisoned && S.Occurrences >= 2)
      ++Stats.CanonicalSymbols;

  // Bind call sites: a callee that is a same-named, same-typed
  // *declaration* other than the canonical function retargets to it.
  for (Module *M : Modules)
    for (Function *F : M->functions())
      for (BasicBlock *BB : *F)
        for (Instruction *I : *BB) {
          auto *CB = dyn_cast<CallBase>(I);
          if (!CB || !CB->getCallee())
            continue;
          Function *Callee = CB->getCallee();
          if (!Callee->isDeclaration())
            continue;
          auto It = Names.find(Callee->getName());
          if (It == Names.end() || It->second.Poisoned)
            continue;
          Function *Canonical = It->second.Canonical;
          if (!Canonical || Canonical == Callee ||
              Canonical->getFunctionType() != Callee->getFunctionType())
            continue;
          CB->setCallee(Canonical);
          ++Stats.RetargetedCalls;
        }
  return Stats;
}
