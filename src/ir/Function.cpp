//===- ir/Function.cpp - Function implementation ----------------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Function.h"
#include "ir/Module.h"

using namespace salssa;

Function::Function(const std::string &Name, Type *FnTy, Module *Parent)
    : Name(Name), FnTy(FnTy), Parent(Parent) {
  assert(FnTy->isFunction() && "function requires a function type");
  const std::vector<Type *> &Params = FnTy->getParamTypes();
  Args.reserve(Params.size());
  for (unsigned I = 0; I < Params.size(); ++I) {
    auto *A = new Argument(Params[I], I, this);
    A->setName("arg" + std::to_string(I));
    Args.emplace_back(A);
  }
}

Function::~Function() { clearBody(); }

BasicBlock *Function::createBlock(const std::string &Name,
                                  BasicBlock *Before) {
  auto *BB = new BasicBlock(Name);
  BB->Parent = this;
  if (Before) {
    assert(Before->getParent() == this && "insertion point in wrong function");
    BB->SelfIt = Blocks.insert(Before->SelfIt, BB);
  } else {
    Blocks.push_back(BB);
    BB->SelfIt = std::prev(Blocks.end());
  }
  return BB;
}

void Function::adoptBlock(BasicBlock *BB) {
  assert(!BB->getParent() && "block already linked");
  BB->Parent = this;
  Blocks.push_back(BB);
  BB->SelfIt = std::prev(Blocks.end());
}

size_t Function::getInstructionCount() const {
  size_t N = 0;
  for (const BasicBlock *BB : Blocks)
    N += BB->size();
  return N;
}

void Function::clearBody() {
  // Drop-then-delete: sever every operand edge before any instruction or
  // block dies so no destructor observes a dangling use.
  for (BasicBlock *BB : Blocks)
    BB->dropAllBlockReferences();
  for (BasicBlock *BB : Blocks) {
    BB->Parent = nullptr;
    delete BB;
  }
  Blocks.clear();
}
