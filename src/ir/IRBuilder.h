//===- ir/IRBuilder.h - Convenience IR construction -------------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The IRBuilder appends instructions to a basic block (or before an
/// insertion point) with type bookkeeping handled centrally. All examples,
/// workload generators and code generators build IR through it.
///
//===----------------------------------------------------------------------===//

#ifndef SALSSA_IR_IRBUILDER_H
#define SALSSA_IR_IRBUILDER_H

#include "ir/Context.h"
#include "ir/Function.h"
#include "ir/Module.h"

namespace salssa {

/// Instruction factory with an insertion point.
class IRBuilder {
public:
  explicit IRBuilder(Context &Ctx) : Ctx(Ctx) {}
  IRBuilder(Context &Ctx, BasicBlock *BB) : Ctx(Ctx), InsertBlock(BB) {}

  Context &getContext() { return Ctx; }

  /// Appends at the end of \p BB from now on.
  void setInsertPoint(BasicBlock *BB) {
    InsertBlock = BB;
    InsertBefore = nullptr;
  }

  /// Inserts before \p I from now on.
  void setInsertPoint(Instruction *I) {
    InsertBlock = I->getParent();
    InsertBefore = I;
  }

  BasicBlock *getInsertBlock() const { return InsertBlock; }

  /// \name Arithmetic.
  /// @{
  Value *createBinOp(ValueKind Op, Value *L, Value *R,
                     const std::string &Name = "") {
    return insert(new BinaryOperator(Op, L, R), Name);
  }
  Value *createAdd(Value *L, Value *R, const std::string &Name = "") {
    return createBinOp(ValueKind::Add, L, R, Name);
  }
  Value *createSub(Value *L, Value *R, const std::string &Name = "") {
    return createBinOp(ValueKind::Sub, L, R, Name);
  }
  Value *createMul(Value *L, Value *R, const std::string &Name = "") {
    return createBinOp(ValueKind::Mul, L, R, Name);
  }
  Value *createAnd(Value *L, Value *R, const std::string &Name = "") {
    return createBinOp(ValueKind::And, L, R, Name);
  }
  Value *createOr(Value *L, Value *R, const std::string &Name = "") {
    return createBinOp(ValueKind::Or, L, R, Name);
  }
  Value *createXor(Value *L, Value *R, const std::string &Name = "") {
    return createBinOp(ValueKind::Xor, L, R, Name);
  }
  /// @}

  /// \name Comparisons, select, casts.
  /// @{
  Value *createICmp(CmpPredicate P, Value *L, Value *R,
                    const std::string &Name = "") {
    return insert(new ICmpInst(P, L, R, Ctx.int1Ty()), Name);
  }
  Value *createFCmp(CmpPredicate P, Value *L, Value *R,
                    const std::string &Name = "") {
    return insert(new FCmpInst(P, L, R, Ctx.int1Ty()), Name);
  }
  Value *createSelect(Value *C, Value *T, Value *F,
                      const std::string &Name = "") {
    return insert(new SelectInst(C, T, F), Name);
  }
  Value *createCast(ValueKind Op, Value *V, Type *DestTy,
                    const std::string &Name = "") {
    return insert(new CastInst(Op, V, DestTy), Name);
  }
  Value *createZExt(Value *V, Type *DestTy, const std::string &Name = "") {
    return createCast(ValueKind::ZExt, V, DestTy, Name);
  }
  Value *createSExt(Value *V, Type *DestTy, const std::string &Name = "") {
    return createCast(ValueKind::SExt, V, DestTy, Name);
  }
  Value *createTrunc(Value *V, Type *DestTy, const std::string &Name = "") {
    return createCast(ValueKind::Trunc, V, DestTy, Name);
  }
  /// @}

  /// \name Memory.
  /// @{
  AllocaInst *createAlloca(Type *AllocTy, unsigned NumElems = 1,
                           const std::string &Name = "") {
    auto *A = new AllocaInst(AllocTy, Ctx.ptrTy(), NumElems);
    insert(A, Name);
    return A;
  }
  Value *createLoad(Type *Ty, Value *Ptr, const std::string &Name = "") {
    return insert(new LoadInst(Ty, Ptr), Name);
  }
  Instruction *createStore(Value *V, Value *Ptr) {
    return insert(new StoreInst(V, Ptr, Ctx.voidTy()), "");
  }
  Value *createGep(Type *ElemTy, Value *Base, Value *Index,
                   const std::string &Name = "") {
    return insert(new GepInst(ElemTy, Base, Index, Ctx.ptrTy()), Name);
  }
  /// @}

  /// \name Calls and EH.
  /// @{
  CallInst *createCall(Function *F, const std::vector<Value *> &Args,
                       const std::string &Name = "") {
    auto *C = new CallInst(F, Args, F->getReturnType());
    insert(C, Name);
    return C;
  }
  InvokeInst *createInvoke(Function *F, const std::vector<Value *> &Args,
                           BasicBlock *NormalDest, BasicBlock *UnwindDest,
                           const std::string &Name = "") {
    auto *I = new InvokeInst(F, Args, F->getReturnType(), NormalDest,
                             UnwindDest);
    insert(I, Name);
    return I;
  }
  LandingPadInst *createLandingPad(const std::string &Name = "") {
    auto *L = new LandingPadInst(Ctx.ptrTy());
    insert(L, Name);
    return L;
  }
  Instruction *createResume(Value *Token) {
    return insert(new ResumeInst(Token, Ctx.voidTy()), "");
  }
  /// @}

  /// \name Phi and terminators.
  /// @{
  PhiInst *createPhi(Type *Ty, const std::string &Name = "") {
    auto *P = new PhiInst(Ty);
    insert(P, Name);
    return P;
  }
  BranchInst *createBr(BasicBlock *Dest) {
    auto *B = new BranchInst(Dest, Ctx.voidTy());
    insert(B, "");
    return B;
  }
  BranchInst *createCondBr(Value *Cond, BasicBlock *TrueDest,
                           BasicBlock *FalseDest) {
    auto *B = new BranchInst(Cond, TrueDest, FalseDest, Ctx.voidTy());
    insert(B, "");
    return B;
  }
  SwitchInst *createSwitch(Value *Cond, BasicBlock *DefaultDest) {
    auto *S = new SwitchInst(Cond, DefaultDest, Ctx.voidTy());
    insert(S, "");
    return S;
  }
  Instruction *createRet(Value *V) {
    return insert(new RetInst(V, Ctx.voidTy()), "");
  }
  Instruction *createRetVoid() {
    return insert(new RetInst(Ctx.voidTy()), "");
  }
  Instruction *createUnreachable() {
    return insert(new UnreachableInst(Ctx.voidTy()), "");
  }
  /// @}

private:
  template <typename InstT> InstT *insert(InstT *I, const std::string &Name) {
    assert(InsertBlock && "no insertion point set");
    if (!Name.empty())
      I->setName(Name);
    if (InsertBefore)
      I->insertBefore(InsertBefore);
    else
      InsertBlock->push_back(I);
    return I;
  }

  Context &Ctx;
  BasicBlock *InsertBlock = nullptr;
  Instruction *InsertBefore = nullptr;
};

} // namespace salssa

#endif // SALSSA_IR_IRBUILDER_H
