//===- ir/Module.cpp - Module implementation ---------------------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Module.h"
#include <algorithm>

using namespace salssa;

Module::~Module() {
  // Drop-then-delete across the whole module: member destruction order
  // would otherwise destroy Globals while function bodies still hold
  // use-list edges into them.
  for (auto &Entry : FunctionMap)
    Entry.second->clearBody();
}

Function *Module::createFunction(const std::string &Name, Type *FnTy) {
  assert(!FunctionMap.count(Name) && "duplicate function name");
  auto *F = new Function(Name, FnTy, this);
  FunctionMap.emplace(Name, std::unique_ptr<Function>(F));
  FunctionOrder.push_back(F);
  return F;
}

Function *Module::getFunction(const std::string &Name) const {
  auto It = FunctionMap.find(Name);
  return It == FunctionMap.end() ? nullptr : It->second.get();
}

void Module::eraseFunction(Function *F) {
  auto It = FunctionMap.find(F->getName());
  assert(It != FunctionMap.end() && It->second.get() == F &&
         "function is not owned by this module");
  FunctionOrder.erase(
      std::find(FunctionOrder.begin(), FunctionOrder.end(), F));
  FunctionMap.erase(It);
}

std::unique_ptr<Function> Module::takeFunction(Function *F) {
  auto It = FunctionMap.find(F->getName());
  assert(It != FunctionMap.end() && It->second.get() == F &&
         "function is not owned by this module");
  std::unique_ptr<Function> Owned = std::move(It->second);
  FunctionMap.erase(It);
  FunctionOrder.erase(
      std::find(FunctionOrder.begin(), FunctionOrder.end(), F));
  F->Parent = nullptr;
  return Owned;
}

Function *Module::adoptFunction(std::unique_ptr<Function> F,
                                const std::string &NewName) {
  assert(!FunctionMap.count(NewName) && "duplicate function name");
  Function *Raw = F.get();
  Raw->Name = NewName;
  Raw->Parent = this;
  FunctionMap.emplace(NewName, std::move(F));
  FunctionOrder.push_back(Raw);
  return Raw;
}

GlobalVariable *Module::createGlobal(const std::string &Name, Type *ValTy,
                                     unsigned NumElements) {
  auto *G = new GlobalVariable(Ctx.ptrTy(), ValTy, NumElements, Name);
  Globals.emplace_back(G);
  return G;
}

size_t Module::getInstructionCount() const {
  size_t N = 0;
  for (const Function *F : FunctionOrder)
    N += F->getInstructionCount();
  return N;
}

void ModuleGroup::clearAllBodies() {
  // Group-wide drop-then-delete: no module's globals may be destroyed
  // while any module's bodies still hold operand references to them.
  for (const std::unique_ptr<Module> &M : Members)
    for (Function *F : M->functions())
      F->clearBody();
  // ~Module re-clears the (now empty) bodies harmlessly, then destroys
  // its globals with no cross-module references left anywhere.
}

ModuleGroup::~ModuleGroup() { clearAllBodies(); }

ModuleGroup &ModuleGroup::operator=(ModuleGroup &&Other) {
  if (this != &Other) {
    clearAllBodies(); // old members must tear down via the group protocol
    Members = std::move(Other.Members);
  }
  return *this;
}

Module &ModuleGroup::add(std::unique_ptr<Module> M) {
  Members.push_back(std::move(M));
  return *Members.back();
}

void ModuleGroup::adopt(ModuleGroup &&Other) {
  for (std::unique_ptr<Module> &M : Other.Members)
    Members.push_back(std::move(M));
  Other.Members.clear();
}

std::string Module::makeUniqueName(const std::string &Prefix) {
  std::string Candidate;
  do {
    Candidate = Prefix + "." + std::to_string(NextUniqueId++);
  } while (FunctionMap.count(Candidate));
  return Candidate;
}
