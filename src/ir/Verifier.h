//===- ir/Verifier.h - IR structural and SSA verification --------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The verifier checks everything the merge code generators can break:
/// terminator discipline, phi/predecessor consistency, the landing-pad
/// model (§4.2.2), use-list integrity, operand typing and — the property
/// at the heart of the paper's §4.3 — SSA dominance.
///
//===----------------------------------------------------------------------===//

#ifndef SALSSA_IR_VERIFIER_H
#define SALSSA_IR_VERIFIER_H

#include <string>
#include <vector>

namespace salssa {

class Function;
class Module;

/// Result of a verification run; empty Errors means the IR is well-formed.
/// Reports are bounded: a function contributes at most a fixed number of
/// error strings (plus one truncation marker) however broken it is — the
/// merge pipeline's always-on commit firewall verifies arbitrary
/// generated bodies, and a corrupt one must cost a bounded report.
struct VerifierReport {
  std::vector<std::string> Errors;
  bool ok() const { return Errors.empty(); }
  /// All errors joined with newlines (for test failure messages).
  std::string str() const;
};

/// Verifies a single function definition.
VerifierReport verifyFunction(const Function &F);

/// Verifies every definition in the module.
VerifierReport verifyModule(const Module &M);

} // namespace salssa

#endif // SALSSA_IR_VERIFIER_H
