//===- ir/Verifier.cpp - IR structural and SSA verification -------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"
#include "analysis/Dominators.h"
#include "ir/IRPrinter.h"
#include "ir/Module.h"
#include <algorithm>
#include <map>
#include <sstream>

using namespace salssa;

std::string VerifierReport::str() const {
  std::string S;
  for (const std::string &E : Errors) {
    S += E;
    S += "\n";
  }
  return S;
}

namespace {

/// Collects errors for one function.
class FunctionVerifier {
public:
  explicit FunctionVerifier(const Function &F) : F(F) {}

  void run(VerifierReport &Report) {
    checkStructure();
    if (!LocalErrors.empty()) {
      // Structural breakage makes dominance analysis unsafe; report what
      // we have.
      flush(Report);
      return;
    }
    checkUseListIntegrity();
    checkPhisAndLandingPads();
    checkTypesAndOperands();
    checkDominance();
    flush(Report);
  }

private:
  /// Per-function error cap (see Verifier.h): the merge pipeline's
  /// commit firewall verifies arbitrary generated bodies on every run,
  /// so a badly corrupt function must cost a bounded report, not one
  /// error string per broken instruction.
  static constexpr size_t MaxErrors = 64;

  void error(const std::string &Msg) {
    if (LocalErrors.size() >= MaxErrors) {
      Truncated = true;
      return;
    }
    LocalErrors.push_back("function '" + F.getName() + "': " + Msg);
  }

  void errorAt(const Instruction *I, const std::string &Msg) {
    error(Msg + " in: " + printInstruction(*I));
  }

  void flush(VerifierReport &Report) {
    Report.Errors.insert(Report.Errors.end(), LocalErrors.begin(),
                         LocalErrors.end());
    if (Truncated)
      Report.Errors.push_back("function '" + F.getName() +
                              "': ... further errors truncated");
  }

  void checkStructure() {
    if (F.getNumBlocks() == 0)
      return;
    std::set<const BasicBlock *> Blocks;
    for (const BasicBlock *BB : F)
      Blocks.insert(BB);
    for (const BasicBlock *BB : F) {
      if (BB->getParent() != &F)
        error("block with wrong parent");
      if (BB->empty()) {
        error("empty basic block '" + BB->getName() + "'");
        continue;
      }
      Instruction *Term = BB->getTerminator();
      if (!Term)
        error("block '" + BB->getName() + "' lacks a terminator");
      unsigned Index = 0;
      for (const Instruction *I : *BB) {
        if (I->getParent() != BB)
          errorAt(I, "instruction with wrong parent");
        if (I->isTerminator() && I != BB->back())
          errorAt(I, "terminator in the middle of a block");
        ++Index;
      }
      if (Term)
        for (BasicBlock *S : Term->successors())
          if (!Blocks.count(S))
            error("terminator of '" + BB->getName() +
                  "' targets a block outside the function");
    }
    // The entry block must have no predecessors.
    const BasicBlock *Entry = F.getEntryBlock();
    for (const BasicBlock *BB : F) {
      const Instruction *T = BB->getTerminator();
      if (!T)
        continue;
      for (BasicBlock *S : T->successors())
        if (S == Entry)
          error("entry block has a predecessor");
    }
  }

  void checkUseListIntegrity() {
    // Count operand references per (user, value) and compare with the
    // value's user list.
    std::map<std::pair<const User *, const Value *>, int> RefCount;
    for (const BasicBlock *BB : F)
      for (const Instruction *I : *BB)
        for (const Value *Op : I->operands())
          if (Op)
            ++RefCount[{I, Op}];
    for (const BasicBlock *BB : F)
      for (const Instruction *I : *BB) {
        // Every use of I must come from within this function.
        std::map<const User *, int> FromUsers;
        for (const User *U : I->users())
          ++FromUsers[U];
        for (auto &[U, N] : FromUsers) {
          auto *UI = dyn_cast<Instruction>(U);
          if (!UI || UI->getFunction() != &F) {
            errorAt(I, "used by an instruction outside this function");
            continue;
          }
          auto It = RefCount.find({U, I});
          int Expected = It == RefCount.end() ? 0 : It->second;
          if (Expected != N)
            errorAt(I, "use-list count mismatch");
        }
      }
  }

  void checkPhisAndLandingPads() {
    CFGInfo CFG(F);
    for (const BasicBlock *BB : F) {
      bool SeenNonPhi = false;
      for (const Instruction *I : *BB) {
        if (I->isPhi() && SeenNonPhi)
          errorAt(I, "phi after a non-phi instruction");
        if (!I->isPhi())
          SeenNonPhi = true;
      }
      // Phi incoming blocks must exactly match the predecessor set — over
      // *all* edges, including ones from unreachable blocks (as in LLVM).
      std::set<const BasicBlock *> PredSet;
      for (BasicBlock *P : BB->predecessors())
        PredSet.insert(P);
      for (const PhiInst *P : BB->phis()) {
        std::set<const BasicBlock *> Incoming;
        for (unsigned I = 0; I < P->getNumIncoming(); ++I) {
          const BasicBlock *In = P->getIncomingBlock(I);
          if (!Incoming.insert(In).second)
            errorAt(P, "duplicate incoming block");
          if (!PredSet.count(In))
            errorAt(P, "incoming block '" + In->getName() +
                           "' is not a predecessor");
        }
        for (const BasicBlock *Pred : PredSet)
          if (!Incoming.count(Pred))
            errorAt(P, "missing incoming entry for predecessor '" +
                           Pred->getName() + "'");
      }
      if (!CFG.isReachable(BB))
        continue;
      // Landing-pad model: landingpad iff all preds reach us on unwind
      // edges; landingpad must be the first non-phi.
      bool HasUnwindPred = false;
      bool HasNormalPred = false;
      for (BasicBlock *Pred : CFG.predecessors(BB)) {
        const Instruction *T = Pred->getTerminator();
        if (const auto *Inv = dyn_cast<InvokeInst>(T)) {
          if (Inv->getUnwindDest() == BB)
            HasUnwindPred = true;
          if (Inv->getNormalDest() == BB)
            HasNormalPred = true;
        } else {
          HasNormalPred = true;
        }
      }
      const Instruction *FirstNonPhi = BB->getFirstNonPhi();
      bool IsLanding = FirstNonPhi && isa<LandingPadInst>(FirstNonPhi);
      if (HasUnwindPred && !IsLanding)
        error("unwind destination '" + BB->getName() +
              "' does not start with a landingpad");
      if (IsLanding && HasNormalPred)
        error("landing block '" + BB->getName() +
              "' reachable through a normal edge");
      if (IsLanding && !HasUnwindPred && !PredSet.empty())
        error("landing block '" + BB->getName() + "' has no unwind edge");
      // Only one landingpad per block, and only at the head.
      for (const Instruction *I : *BB)
        if (isa<LandingPadInst>(I) && I != FirstNonPhi)
          errorAt(I, "stray landingpad");
    }
  }

  void checkTypesAndOperands() {
    for (const BasicBlock *BB : F)
      for (const Instruction *I : *BB) {
        for (const Value *Op : I->operands()) {
          if (!Op) {
            errorAt(I, "null operand");
            continue;
          }
          if (const auto *A = dyn_cast<Argument>(Op))
            if (A->getParent() != &F)
              errorAt(I, "argument operand from another function");
        }
        if (const auto *B = dyn_cast<BinaryOperator>(I)) {
          if (B->getLHS()->getType() != B->getType() ||
              B->getRHS()->getType() != B->getType())
            errorAt(I, "binary operator type mismatch");
        } else if (const auto *C = dyn_cast<CmpInst>(I)) {
          if (C->getLHS()->getType() != C->getRHS()->getType())
            errorAt(I, "cmp operand type mismatch");
        } else if (const auto *S = dyn_cast<SelectInst>(I)) {
          if (S->getTrueValue()->getType() != S->getType() ||
              S->getFalseValue()->getType() != S->getType())
            errorAt(I, "select arm type mismatch");
          if (!S->getCondition()->getType()->isBool())
            errorAt(I, "select condition is not i1");
        } else if (const auto *P = dyn_cast<PhiInst>(I)) {
          for (unsigned K = 0; K < P->getNumIncoming(); ++K)
            if (P->getIncomingValue(K)->getType() != P->getType())
              errorAt(I, "phi incoming type mismatch");
        } else if (const auto *CB = dyn_cast<CallBase>(I)) {
          const Function *Callee = CB->getCallee();
          if (!Callee) {
            errorAt(I, "call with null callee");
          } else {
            const auto &Params = Callee->getFunctionType()->getParamTypes();
            if (Params.size() != CB->getNumArgs())
              errorAt(I, "call argument count mismatch");
            else
              for (unsigned K = 0; K < Params.size(); ++K)
                if (CB->getArg(K)->getType() != Params[K])
                  errorAt(I, "call argument type mismatch");
            if (Callee->getReturnType() != CB->getType())
              errorAt(I, "call return type mismatch");
          }
        } else if (const auto *R = dyn_cast<RetInst>(I)) {
          Type *RetTy = F.getReturnType();
          if (R->hasReturnValue()) {
            if (R->getReturnValue()->getType() != RetTy)
              errorAt(I, "return value type mismatch");
          } else if (!RetTy->isVoid()) {
            errorAt(I, "void return from non-void function");
          }
        } else if (const auto *Br = dyn_cast<BranchInst>(I)) {
          if (Br->isConditional() &&
              !Br->getCondition()->getType()->isBool())
            errorAt(I, "branch condition is not i1");
        } else if (const auto *St = dyn_cast<StoreInst>(I)) {
          if (!St->getValueOperand()->getType()->isFirstClass())
            errorAt(I, "store of non-first-class value");
        }
      }
  }

  void checkDominance() {
    DominatorTree DT(F);
    const CFGInfo &CFG = DT.getCFG();
    for (const BasicBlock *BB : F) {
      if (!CFG.isReachable(BB))
        continue; // values in dead code are exempt, as in LLVM
      for (const Instruction *I : *BB) {
        if (const auto *P = dyn_cast<PhiInst>(I)) {
          for (unsigned K = 0; K < P->getNumIncoming(); ++K) {
            const auto *DefI = dyn_cast<Instruction>(P->getIncomingValue(K));
            if (!DefI)
              continue;
            if (!DT.dominatesBlockExit(DefI, P->getIncomingBlock(K)))
              errorAt(I, "phi incoming value does not dominate the "
                         "incoming block's exit");
          }
          continue;
        }
        for (const Value *Op : I->operands()) {
          const auto *DefI = dyn_cast<Instruction>(Op);
          if (!DefI)
            continue;
          if (!DefI->getParent()) {
            errorAt(I, "operand instruction is unlinked");
            continue;
          }
          if (DefI->getFunction() != &F) {
            errorAt(I, "operand instruction from another function");
            continue;
          }
          if (!DT.dominates(DefI, I))
            errorAt(I, "operand does not dominate use (SSA dominance "
                       "property violated)");
        }
      }
    }
  }

  const Function &F;
  std::vector<std::string> LocalErrors;
  bool Truncated = false; ///< errors past MaxErrors were dropped
};

} // namespace

VerifierReport salssa::verifyFunction(const Function &F) {
  VerifierReport Report;
  if (F.isDeclaration())
    return Report;
  FunctionVerifier(F).run(Report);
  return Report;
}

VerifierReport salssa::verifyModule(const Module &M) {
  VerifierReport Report;
  for (const Function *F : M.functions()) {
    if (F->isDeclaration())
      continue;
    FunctionVerifier(*F).run(Report);
  }
  return Report;
}
