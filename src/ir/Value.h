//===- ir/Value.h - Value and User base classes ---------------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The root of the IR object model. Every operand of every instruction is a
/// Value; instructions themselves are Users (Values with operands). Values
/// track their users so passes can query uses and perform
/// replaceAllUsesWith — the primitive that Mem2Reg, simplification, and the
/// merging code generators are built on.
///
/// The ValueKind enum is flattened: every instruction opcode is its own
/// kind, which makes `isa<>`/`dyn_cast<>` dispatch a pair of integer
/// comparisons and gives instructions their opcode for free.
///
//===----------------------------------------------------------------------===//

#ifndef SALSSA_IR_VALUE_H
#define SALSSA_IR_VALUE_H

#include "support/Casting.h"
#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace salssa {

class Type;
class User;

namespace detail {
/// When the per-thread suspension count is non-zero, Value::addUser is a
/// no-op: operand slots are filled without registering in the operand's
/// user list. Used exclusively by cloneInstruction, whose placeholder
/// operands reference the *original* (possibly shared across threads)
/// function's values and are always rewritten via User::initOperand
/// before the clone is observable. Never call these directly — use
/// UseTrackingSuspender. All three are defined out of line in Value.cpp:
/// touching an extern thread_local from header-inline code in another TU
/// goes through the compiler's TLS wrapper, a pattern UBSan flags (null
/// init-function load), so the TLS variable itself never leaves its
/// defining TU.
void suspendUseTracking();
void resumeUseTracking();
bool useTrackingSuspended();
} // namespace detail

/// RAII scope in which newly appended operands do not register users.
/// See detail::suspendUseTracking for the (single) legitimate use.
class UseTrackingSuspender {
public:
  UseTrackingSuspender() { detail::suspendUseTracking(); }
  ~UseTrackingSuspender() { detail::resumeUseTracking(); }
  UseTrackingSuspender(const UseTrackingSuspender &) = delete;
  UseTrackingSuspender &operator=(const UseTrackingSuspender &) = delete;
};

/// Discriminator for the whole Value hierarchy. Instruction opcodes live in
/// the [InstFirst, InstLast] range; constants in [ConstFirst, ConstLast].
enum class ValueKind : uint8_t {
  Argument,
  // Constants.
  GlobalVariable,
  ConstantInt,
  ConstantFP,
  UndefValue,
  ConstantPointerNull,
  // Instructions: integer arithmetic/bitwise.
  Add,
  Sub,
  Mul,
  SDiv,
  UDiv,
  SRem,
  URem,
  And,
  Or,
  Xor,
  Shl,
  LShr,
  AShr,
  // Floating point arithmetic.
  FAdd,
  FSub,
  FMul,
  FDiv,
  // Comparisons and selection.
  ICmp,
  FCmp,
  Select,
  // Casts.
  ZExt,
  SExt,
  Trunc,
  SIToFP,
  FPToSI,
  // Memory.
  Alloca,
  Load,
  Store,
  Gep,
  // Calls and exception handling.
  Call,
  Invoke,
  LandingPad,
  // SSA data flow.
  Phi,
  // Terminators.
  Br,
  Switch,
  Ret,
  Resume,
  Unreachable,
};

inline constexpr ValueKind ConstFirstKind = ValueKind::GlobalVariable;
inline constexpr ValueKind ConstLastKind = ValueKind::ConstantPointerNull;
inline constexpr ValueKind InstFirstKind = ValueKind::Add;
inline constexpr ValueKind InstLastKind = ValueKind::Unreachable;

/// Base class of everything that can appear as an operand.
class Value {
public:
  Value(const Value &) = delete;
  Value &operator=(const Value &) = delete;
  virtual ~Value();

  ValueKind getValueKind() const { return Kind; }
  Type *getType() const { return Ty; }

  const std::string &getName() const { return Name; }
  void setName(const std::string &N) { Name = N; }
  bool hasName() const { return !Name.empty(); }

  /// Whether this value maintains a user list. Constants and globals are
  /// interned/module-shared and referenced from arbitrarily many
  /// functions, so tracking their uses would (a) make popular constants'
  /// use-lists a quadratic hot spot and (b) turn every operand write into
  /// a data race once merge attempts run on worker threads. No pass
  /// queries uses of a constant, so — like LLVM's ConstantData — they
  /// simply opt out; users()/hasUses() on them always report empty.
  bool isUseTracked() const {
    return Kind < ConstFirstKind || Kind > ConstLastKind;
  }

  /// The users of this value. A user appears once per operand slot that
  /// references this value (so an instruction using a value twice appears
  /// twice). Always empty for untracked values (see isUseTracked). Do not
  /// mutate uses while iterating this list directly; take a copy, as
  /// replaceAllUsesWith does.
  const std::vector<User *> &users() const { return UserList; }
  unsigned getNumUses() const {
    return static_cast<unsigned>(UserList.size());
  }
  bool hasUses() const { return !UserList.empty(); }
  bool hasOneUse() const { return UserList.size() == 1; }

  /// Rewrites every operand slot that references this value to reference
  /// \p New instead. \p New must have the same type.
  void replaceAllUsesWith(Value *New);

  static bool classof(const Value *) { return true; }

protected:
  Value(ValueKind K, Type *T) : Kind(K), Ty(T) {
    assert(T && "values must be typed");
  }

private:
  friend class User;
  void addUser(User *U) {
    if (isUseTracked() && !detail::useTrackingSuspended())
      UserList.push_back(U);
  }
  void removeUser(User *U);

  ValueKind Kind;
  Type *Ty;
  std::string Name;
  std::vector<User *> UserList;
};

/// A Value that references other Values through an operand list.
class User : public Value {
public:
  unsigned getNumOperands() const {
    return static_cast<unsigned>(Operands.size());
  }

  Value *getOperand(unsigned I) const {
    assert(I < Operands.size() && "operand index out of range");
    return Operands[I];
  }

  const std::vector<Value *> &operands() const { return Operands; }

  /// Replaces operand \p I, maintaining both sides' use bookkeeping.
  void setOperand(unsigned I, Value *V);

  /// First assignment of a placeholder operand slot created under
  /// UseTrackingSuspender (i.e. by cloneInstruction): overwrites the
  /// slot and registers the use of \p V, without unregistering the
  /// placeholder — which, unlike setOperand's old operand, was never
  /// registered. Calling this on a normally-tracked slot leaks a stale
  /// user entry; calling setOperand on a placeholder slot instead fires
  /// the removeUser assertion.
  void initOperand(unsigned I, Value *V);

  /// Index of the first operand slot equal to \p V, or -1.
  int findOperand(const Value *V) const;

  /// Removes every operand reference this user holds. Must be called
  /// before destruction if operands may still be alive (the teardown
  /// protocol used by BasicBlock/Function destructors).
  void dropAllReferences();

  static bool classof(const Value *V) {
    ValueKind K = V->getValueKind();
    return K >= InstFirstKind && K <= InstLastKind;
  }

protected:
  User(ValueKind K, Type *T) : Value(K, T) {}
  ~User() override { dropAllReferences(); }

  /// Appends an operand during construction / phi growth.
  void appendOperand(Value *V);

  /// Removes the operand slot \p I entirely (shrinks the operand list);
  /// used by Phi::removeIncoming.
  void eraseOperand(unsigned I);

private:
  std::vector<Value *> Operands;
};

/// Returns a human-readable opcode/kind spelling ("add", "phi", ...).
const char *valueKindName(ValueKind K);

} // namespace salssa

#endif // SALSSA_IR_VALUE_H
