//===- ir/Context.h - IR ownership context ---------------------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Context owns the type system and interns context-wide constants
/// (integers, fp, undef, null). Modules, functions and instructions all
/// live against a single Context; the whole pipeline (workload generation,
/// merging, size modeling, interpretation) shares one.
///
/// Interning is thread-safe: the constant pools (and the function-type
/// pool in TypeContext) are guarded by a mutex so MergePipeline's worker
/// threads can build speculative functions against the shared Context.
/// Interned pointers are stable for the Context's lifetime, so readers
/// holding a Type*/Constant* never need the lock.
///
//===----------------------------------------------------------------------===//

#ifndef SALSSA_IR_CONTEXT_H
#define SALSSA_IR_CONTEXT_H

#include "ir/Constant.h"
#include "ir/Type.h"
#include <map>
#include <memory>
#include <mutex>

namespace salssa {

/// Owns types and interned constants.
class Context {
public:
  Context() = default;
  Context(const Context &) = delete;
  Context &operator=(const Context &) = delete;

  TypeContext &types() { return Types; }

  Type *voidTy() { return Types.getVoidTy(); }
  Type *int1Ty() { return Types.getInt1Ty(); }
  Type *int8Ty() { return Types.getInt8Ty(); }
  Type *int16Ty() { return Types.getInt16Ty(); }
  Type *int32Ty() { return Types.getInt32Ty(); }
  Type *int64Ty() { return Types.getInt64Ty(); }
  Type *floatTy() { return Types.getFloatTy(); }
  Type *doubleTy() { return Types.getDoubleTy(); }
  Type *ptrTy() { return Types.getPointerTy(); }

  /// Interned integer constant of type \p Ty; \p Bits is truncated to the
  /// type's width.
  ConstantInt *getInt(Type *Ty, uint64_t Bits);
  ConstantInt *getInt1(bool B) { return getInt(int1Ty(), B ? 1 : 0); }
  ConstantInt *getInt32(uint64_t V) { return getInt(int32Ty(), V); }
  ConstantInt *getInt64(uint64_t V) { return getInt(int64Ty(), V); }
  ConstantInt *getTrue() { return getInt1(true); }
  ConstantInt *getFalse() { return getInt1(false); }

  /// Interned floating-point constant.
  ConstantFP *getFP(Type *Ty, double V);

  /// Interned undef of any first-class type.
  UndefValue *getUndef(Type *Ty);

  /// The null pointer constant.
  ConstantPointerNull *getNullPtr();

private:
  TypeContext Types;
  std::mutex PoolMutex; ///< guards the four pools below
  std::map<std::pair<Type *, uint64_t>, std::unique_ptr<ConstantInt>> IntPool;
  std::map<std::pair<Type *, uint64_t>, std::unique_ptr<ConstantFP>> FPPool;
  std::map<Type *, std::unique_ptr<UndefValue>> UndefPool;
  std::unique_ptr<ConstantPointerNull> NullPtr;
};

} // namespace salssa

#endif // SALSSA_IR_CONTEXT_H
