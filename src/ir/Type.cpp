//===- ir/Type.cpp - IR type system ---------------------------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Type.h"

using namespace salssa;

unsigned Type::getStoreSize() const {
  switch (TheKind) {
  case Kind::Void:
  case Kind::FunctionTy:
    return 0;
  case Kind::Integer:
    return BitWidth <= 8 ? 1 : BitWidth / 8;
  case Kind::Float:
    return 4;
  case Kind::Double:
    return 8;
  case Kind::Pointer:
    return 8;
  }
  return 0;
}

std::string Type::getName() const {
  switch (TheKind) {
  case Kind::Void:
    return "void";
  case Kind::Integer:
    return "i" + std::to_string(BitWidth);
  case Kind::Float:
    return "float";
  case Kind::Double:
    return "double";
  case Kind::Pointer:
    return "ptr";
  case Kind::FunctionTy: {
    std::string S = RetTy->getName() + " (";
    for (size_t I = 0; I < ParamTys.size(); ++I) {
      if (I)
        S += ", ";
      S += ParamTys[I]->getName();
    }
    S += ")";
    return S;
  }
  }
  return "<invalid>";
}

TypeContext::TypeContext() {
  VoidTy = makeSimple(Type::Kind::Void);
  Int1Ty = makeSimple(Type::Kind::Integer, 1);
  Int8Ty = makeSimple(Type::Kind::Integer, 8);
  Int16Ty = makeSimple(Type::Kind::Integer, 16);
  Int32Ty = makeSimple(Type::Kind::Integer, 32);
  Int64Ty = makeSimple(Type::Kind::Integer, 64);
  FloatTy = makeSimple(Type::Kind::Float);
  DoubleTy = makeSimple(Type::Kind::Double);
  PointerTy = makeSimple(Type::Kind::Pointer);
}

Type *TypeContext::getIntegerTy(unsigned Bits) {
  switch (Bits) {
  case 1:
    return getInt1Ty();
  case 8:
    return getInt8Ty();
  case 16:
    return getInt16Ty();
  case 32:
    return getInt32Ty();
  case 64:
    return getInt64Ty();
  default:
    assert(false && "unsupported integer width");
    return nullptr;
  }
}

Type *TypeContext::getFunctionTy(Type *Ret,
                                 const std::vector<Type *> &Params) {
  auto Key = std::make_pair(Ret, Params);
  std::lock_guard<std::mutex> Lock(FunctionTysMutex);
  auto It = FunctionTys.find(Key);
  if (It != FunctionTys.end())
    return It->second.get();
  std::unique_ptr<Type> Ty(new Type(Type::Kind::FunctionTy, 0));
  Ty->RetTy = Ret;
  Ty->ParamTys = Params;
  Type *Raw = Ty.get();
  FunctionTys.emplace(std::move(Key), std::move(Ty));
  return Raw;
}
