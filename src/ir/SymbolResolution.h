//===- ir/SymbolResolution.h - Linker-style callee resolution ------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cross-module symbol resolution: the piece of a linker the cross-module
/// merger needs. In this IR a call binds to a Function *pointer*, not to
/// a name — so two translation units that both declare `extern i32
/// lib0(i32)` carry two distinct declaration objects, and their calls
/// compare unequal even though any real linker would bind them to the
/// same symbol. That inequality is fatal to cross-module merging
/// specifically: alignment (align/Matcher.cpp) refuses to pair direct
/// calls with different callees, so clone-family twins split across
/// modules stop aligning at every call site and their merges lose most
/// of their profit.
///
/// resolveCalleesAcrossModules performs the binding step a linker would:
/// for each symbol name it picks one canonical function across the whole
/// module set — the unique definition if exactly one module defines the
/// name, otherwise the first declaration in (module registration order,
/// creation order) — and retargets every call/invoke whose callee is a
/// same-named, same-typed *declaration* to the canonical function.
/// Definitions are never retargeted away from (two same-named
/// definitions in different modules are distinct local functions here;
/// such names are skipped entirely), and prototype mismatches are left
/// untouched. The pass only rewrites callee pointers — no operand,
/// no use-list, and no ownership changes — and is deterministic in
/// module order.
///
//===----------------------------------------------------------------------===//

#ifndef SALSSA_IR_SYMBOLRESOLUTION_H
#define SALSSA_IR_SYMBOLRESOLUTION_H

#include <vector>

namespace salssa {

class Module;

struct SymbolResolutionStats {
  /// Names that resolved to a canonical function shared by >= 2 modules.
  unsigned CanonicalSymbols = 0;
  /// Call/invoke sites whose callee was retargeted.
  unsigned RetargetedCalls = 0;
};

/// Binds same-named external symbols across \p Modules (see file
/// comment). Safe to run repeatedly; a second run is a no-op. A
/// single-module set is always a no-op (names are unique per module).
SymbolResolutionStats
resolveCalleesAcrossModules(const std::vector<Module *> &Modules);

} // namespace salssa

#endif // SALSSA_IR_SYMBOLRESOLUTION_H
