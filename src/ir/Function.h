//===- ir/Function.h - Function ---------------------------------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A function: a signature, arguments, and a list of basic blocks (the
/// first being the entry). Functions with no blocks are declarations
/// (external functions — the workloads use them to model calls into
/// libraries, and the interpreter gives them deterministic behaviour).
///
//===----------------------------------------------------------------------===//

#ifndef SALSSA_IR_FUNCTION_H
#define SALSSA_IR_FUNCTION_H

#include "ir/BasicBlock.h"
#include <memory>

namespace salssa {

class Module;
class Function;

/// A formal parameter of a function.
class Argument : public Value {
public:
  unsigned getArgIndex() const { return Index; }
  Function *getParent() const { return Parent; }

  static bool classof(const Value *V) {
    return V->getValueKind() == ValueKind::Argument;
  }

private:
  friend class Function;
  Argument(Type *T, unsigned Idx, Function *F)
      : Value(ValueKind::Argument, T), Index(Idx), Parent(F) {}
  unsigned Index;
  Function *Parent;
};

/// A function definition or declaration.
class Function {
public:
  using BlockListTy = std::list<BasicBlock *>;
  using iterator = BlockListTy::iterator;
  using const_iterator = BlockListTy::const_iterator;

  Function(const Function &) = delete;
  Function &operator=(const Function &) = delete;
  ~Function();

  const std::string &getName() const { return Name; }
  void setName(const std::string &N) { Name = N; }

  Module *getParent() const { return Parent; }
  Type *getFunctionType() const { return FnTy; }
  Type *getReturnType() const { return FnTy->getReturnType(); }

  unsigned getNumArgs() const { return static_cast<unsigned>(Args.size()); }
  Argument *getArg(unsigned I) const {
    assert(I < Args.size() && "argument index out of range");
    return Args[I].get();
  }
  const std::vector<std::unique_ptr<Argument>> &args() const { return Args; }

  bool isDeclaration() const { return Blocks.empty(); }

  /// \name Block list.
  /// @{
  iterator begin() { return Blocks.begin(); }
  iterator end() { return Blocks.end(); }
  const_iterator begin() const { return Blocks.begin(); }
  const_iterator end() const { return Blocks.end(); }
  size_t getNumBlocks() const { return Blocks.size(); }
  BasicBlock *getEntryBlock() const {
    assert(!Blocks.empty() && "declaration has no entry block");
    return Blocks.front();
  }
  const BlockListTy &blocks() const { return Blocks; }
  /// @}

  /// Creates a block appended at the end (or before \p Before if given)
  /// and returns it.
  BasicBlock *createBlock(const std::string &Name = "",
                          BasicBlock *Before = nullptr);

  /// Adopts an externally created block at the end of the list.
  void adoptBlock(BasicBlock *BB);

  /// Total number of instructions across all blocks — the "function size"
  /// metric the paper reports (e.g. Fig 5, Table 1).
  size_t getInstructionCount() const;

  /// Deletes the whole body, turning the function into a declaration.
  /// Handles cross-block references via the drop-then-delete protocol.
  void clearBody();

  /// True if this function is eligible for merging (definitions only;
  /// declarations model external library code).
  bool isMergeable() const { return !isDeclaration(); }

private:
  friend class Module;
  friend class BasicBlock;
  Function(const std::string &Name, Type *FnTy, Module *Parent);

  std::string Name;
  Type *FnTy;
  Module *Parent;
  std::vector<std::unique_ptr<Argument>> Args;
  BlockListTy Blocks;
};

} // namespace salssa

#endif // SALSSA_IR_FUNCTION_H
