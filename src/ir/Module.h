//===- ir/Module.h - Module -------------------------------------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A module: the unit of "link-time optimization" in this reproduction. It
/// owns functions and global variables. The merging pass operates over a
/// whole module, mirroring the paper's LTO pipeline (Fig 16).
///
//===----------------------------------------------------------------------===//

#ifndef SALSSA_IR_MODULE_H
#define SALSSA_IR_MODULE_H

#include "ir/Context.h"
#include "ir/Function.h"
#include <map>
#include <memory>

namespace salssa {

/// Owns functions and globals; belongs to a Context.
class Module {
public:
  Module(const std::string &Name, Context &Ctx) : Name(Name), Ctx(Ctx) {}
  Module(const Module &) = delete;
  Module &operator=(const Module &) = delete;
  /// Tears down all function bodies before members destruct, so no
  /// instruction outlives the globals (or other values) it references.
  ~Module();

  const std::string &getName() const { return Name; }
  Context &getContext() { return Ctx; }

  /// Staging provenance: the merge pipeline marks its per-worker
  /// scratch modules so commit-time checks can tell "speculative
  /// function still in a worker's staging module" from "function in a
  /// real module" structurally (not by naming convention). Nothing else
  /// should set this.
  void setStaging(bool S) { Staging = S; }
  bool isStaging() const { return Staging; }

  /// Creates a function with fresh arguments from \p FnTy. The name must
  /// be unique within the module.
  Function *createFunction(const std::string &Name, Type *FnTy);

  /// Returns the named function or null.
  Function *getFunction(const std::string &Name) const;

  /// Removes and deletes \p F. The caller guarantees no call sites
  /// reference it.
  void eraseFunction(Function *F);

  /// Releases ownership of \p F without destroying it (the inverse of
  /// adoptFunction). The function keeps its body but has no parent until
  /// adopted elsewhere. Used by the merge pipeline to move speculative
  /// functions out of per-worker staging modules.
  std::unique_ptr<Function> takeFunction(Function *F);

  /// Adopts \p F (previously released with takeFunction) under
  /// \p NewName, re-parenting it as if it had been created here.
  /// \p NewName must be unique within this module, and \p F must belong
  /// to the same Context.
  Function *adoptFunction(std::unique_ptr<Function> F,
                          const std::string &NewName);

  /// Creates a module-level variable of \p ValTy x \p NumElements and
  /// returns its address constant.
  GlobalVariable *createGlobal(const std::string &Name, Type *ValTy,
                               unsigned NumElements = 1);

  const std::vector<std::unique_ptr<GlobalVariable>> &globals() const {
    return Globals;
  }

  /// Functions in creation order.
  const std::vector<Function *> &functions() const { return FunctionOrder; }

  /// Total instruction count of all definitions.
  size_t getInstructionCount() const;

  /// Fresh name with the given prefix, unique within the module.
  std::string makeUniqueName(const std::string &Prefix);

  /// Snapshot / restore of the makeUniqueName counter. A long-lived
  /// session (merge/MergeService.h) re-plays its committed-merge name
  /// burns from a fixed base on every delta so that incremental name
  /// allocation stays byte-identical to a from-scratch run; nothing
  /// else should touch this.
  unsigned uniqueNameCounter() const { return NextUniqueId; }
  void setUniqueNameCounter(unsigned C) { NextUniqueId = C; }

private:
  std::string Name;
  Context &Ctx;
  std::map<std::string, std::unique_ptr<Function>> FunctionMap;
  std::vector<Function *> FunctionOrder;
  std::vector<std::unique_ptr<GlobalVariable>> Globals;
  unsigned NextUniqueId = 0;
  bool Staging = false;
};

/// Owns a set of modules whose functions may reference values across
/// module boundaries — the situation cross-module merging creates: a
/// merged function in the host module keeps operand references to the
/// input modules' globals, and thunks everywhere call into the host.
///
/// A lone Module handles teardown by clearing all of its bodies before
/// destroying its globals (see ~Module), but that protocol is per-module:
/// destroying cross-linked modules in the wrong order would drop operand
/// references into already-freed globals. ModuleGroup extends the
/// drop-then-delete protocol to the whole group: its destructor clears
/// every function body in every module first, and only then destroys the
/// modules — so member order (and hence destruction order) never
/// matters. Use it to own any module set handed to CrossModuleMerger.
class ModuleGroup {
public:
  ModuleGroup() = default;
  ModuleGroup(ModuleGroup &&) = default;
  /// Runs the group teardown protocol on the current members before
  /// adopting the new ones (a defaulted move-assign would destroy the
  /// old modules in member order — exactly the unsafe teardown this
  /// class exists to prevent).
  ModuleGroup &operator=(ModuleGroup &&Other);
  ModuleGroup(const ModuleGroup &) = delete;
  ModuleGroup &operator=(const ModuleGroup &) = delete;
  ~ModuleGroup();

  /// Takes ownership of \p M and returns a reference to it.
  Module &add(std::unique_ptr<Module> M);

  /// Moves every module of \p Other into this group, preserving order
  /// (\p Other is left empty). Used to assemble heterogeneous groups
  /// from independently built sub-groups (workloads/Suites.h).
  void adopt(ModuleGroup &&Other);

  size_t size() const { return Members.size(); }
  Module &operator[](size_t I) const { return *Members[I]; }
  const std::vector<std::unique_ptr<Module>> &modules() const {
    return Members;
  }

private:
  /// Clears every function body in every member (the first phase of the
  /// group-wide drop-then-delete protocol).
  void clearAllBodies();

  std::vector<std::unique_ptr<Module>> Members;
};

} // namespace salssa

#endif // SALSSA_IR_MODULE_H
