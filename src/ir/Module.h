//===- ir/Module.h - Module -------------------------------------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A module: the unit of "link-time optimization" in this reproduction. It
/// owns functions and global variables. The merging pass operates over a
/// whole module, mirroring the paper's LTO pipeline (Fig 16).
///
//===----------------------------------------------------------------------===//

#ifndef SALSSA_IR_MODULE_H
#define SALSSA_IR_MODULE_H

#include "ir/Context.h"
#include "ir/Function.h"
#include <map>
#include <memory>

namespace salssa {

/// Owns functions and globals; belongs to a Context.
class Module {
public:
  Module(const std::string &Name, Context &Ctx) : Name(Name), Ctx(Ctx) {}
  Module(const Module &) = delete;
  Module &operator=(const Module &) = delete;
  /// Tears down all function bodies before members destruct, so no
  /// instruction outlives the globals (or other values) it references.
  ~Module();

  const std::string &getName() const { return Name; }
  Context &getContext() { return Ctx; }

  /// Creates a function with fresh arguments from \p FnTy. The name must
  /// be unique within the module.
  Function *createFunction(const std::string &Name, Type *FnTy);

  /// Returns the named function or null.
  Function *getFunction(const std::string &Name) const;

  /// Removes and deletes \p F. The caller guarantees no call sites
  /// reference it.
  void eraseFunction(Function *F);

  /// Releases ownership of \p F without destroying it (the inverse of
  /// adoptFunction). The function keeps its body but has no parent until
  /// adopted elsewhere. Used by the merge pipeline to move speculative
  /// functions out of per-worker staging modules.
  std::unique_ptr<Function> takeFunction(Function *F);

  /// Adopts \p F (previously released with takeFunction) under
  /// \p NewName, re-parenting it as if it had been created here.
  /// \p NewName must be unique within this module, and \p F must belong
  /// to the same Context.
  Function *adoptFunction(std::unique_ptr<Function> F,
                          const std::string &NewName);

  /// Creates a module-level variable of \p ValTy x \p NumElements and
  /// returns its address constant.
  GlobalVariable *createGlobal(const std::string &Name, Type *ValTy,
                               unsigned NumElements = 1);

  const std::vector<std::unique_ptr<GlobalVariable>> &globals() const {
    return Globals;
  }

  /// Functions in creation order.
  const std::vector<Function *> &functions() const { return FunctionOrder; }

  /// Total instruction count of all definitions.
  size_t getInstructionCount() const;

  /// Fresh name with the given prefix, unique within the module.
  std::string makeUniqueName(const std::string &Prefix);

private:
  std::string Name;
  Context &Ctx;
  std::map<std::string, std::unique_ptr<Function>> FunctionMap;
  std::vector<Function *> FunctionOrder;
  std::vector<std::unique_ptr<GlobalVariable>> Globals;
  unsigned NextUniqueId = 0;
};

} // namespace salssa

#endif // SALSSA_IR_MODULE_H
