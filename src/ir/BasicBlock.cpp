//===- ir/BasicBlock.cpp - Basic block implementation ----------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/BasicBlock.h"
#include "ir/Function.h"

using namespace salssa;

BasicBlock::~BasicBlock() {
  // Teardown protocol: sever all cross-references first, then delete. A
  // block deleted in isolation must already have use-free instructions;
  // whole-function teardown calls dropAllBlockReferences across every
  // block before any destructor runs.
  for (Instruction *I : Insts)
    I->dropAllReferences();
  for (Instruction *I : Insts) {
    I->Parent = nullptr; // avoid removeFromParent touching the dead list
    delete I;
  }
  Insts.clear();
}

Instruction *BasicBlock::getFirstNonPhi() const {
  for (Instruction *I : Insts)
    if (!I->isPhi())
      return I;
  return nullptr;
}

std::vector<PhiInst *> BasicBlock::phis() const {
  std::vector<PhiInst *> Result;
  for (Instruction *I : Insts) {
    auto *P = dyn_cast<PhiInst>(I);
    if (!P)
      break;
    Result.push_back(P);
  }
  return Result;
}

std::vector<BasicBlock *> BasicBlock::successors() const {
  Instruction *T = getTerminator();
  if (!T)
    return {};
  return T->successors();
}

std::vector<BasicBlock *> BasicBlock::predecessors() const {
  std::vector<BasicBlock *> Preds;
  if (!Parent)
    return Preds;
  for (BasicBlock *BB : *Parent) {
    Instruction *T = BB->getTerminator();
    if (!T)
      continue;
    for (BasicBlock *Succ : T->successors())
      if (Succ == this) {
        Preds.push_back(BB);
        break; // unique blocks, not edges
      }
  }
  return Preds;
}

bool BasicBlock::isLandingBlock() const {
  Instruction *First = getFirstNonPhi();
  return First && isa<LandingPadInst>(First);
}

void BasicBlock::push_back(Instruction *I) {
  assert(!I->getParent() && "instruction already linked");
  Insts.push_back(I);
  I->SelfIt = std::prev(Insts.end());
  I->Parent = this;
}

BasicBlock::iterator BasicBlock::insert(iterator Pos, Instruction *I) {
  assert(!I->getParent() && "instruction already linked");
  auto It = Insts.insert(Pos, I);
  I->SelfIt = It;
  I->Parent = this;
  return It;
}

void BasicBlock::removeFromParent() {
  assert(Parent && "block is not linked");
  Parent->Blocks.erase(SelfIt);
  Parent = nullptr;
}

void BasicBlock::eraseFromParent() {
  if (Parent)
    removeFromParent();
  delete this;
}

void BasicBlock::dropAllBlockReferences() {
  for (Instruction *I : Insts)
    I->dropAllReferences();
}

void BasicBlock::replacePhiUsesWith(BasicBlock *OldPred,
                                    BasicBlock *NewPred) {
  for (PhiInst *P : phis())
    P->replaceIncomingBlockWith(OldPred, NewPred);
}

void BasicBlock::removePredecessorEntries(BasicBlock *Pred) {
  for (PhiInst *P : phis()) {
    int I = P->indexOfBlock(Pred);
    if (I >= 0)
      P->removeIncoming(static_cast<unsigned>(I));
  }
}
