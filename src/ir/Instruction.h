//===- ir/Instruction.h - Instruction hierarchy ----------------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// All instruction classes. The set mirrors the LLVM subset that the
/// SalSSA/FMSA algorithms care about: integer/fp arithmetic, comparisons,
/// select, casts, stack memory (alloca/load/store/gep), calls, the
/// invoke/landingpad exception-handling model (§4.2.2 of the paper),
/// phi-nodes, and the terminators (br/switch/ret/resume/unreachable).
///
/// Successor edges are held directly on terminator instructions;
/// predecessors are computed on demand by the analysis layer (no
/// incremental bookkeeping to get out of sync).
///
//===----------------------------------------------------------------------===//

#ifndef SALSSA_IR_INSTRUCTION_H
#define SALSSA_IR_INSTRUCTION_H

#include "ir/Constant.h"
#include "ir/Value.h"
#include <list>

namespace salssa {

class BasicBlock;
class Function;

/// Base class of all instructions.
class Instruction : public User {
public:
  /// Instruction opcodes are simply the ValueKind.
  ValueKind getOpcode() const { return getValueKind(); }
  const char *getOpcodeName() const { return valueKindName(getOpcode()); }

  BasicBlock *getParent() const { return Parent; }
  Function *getFunction() const;

  bool isTerminator() const {
    ValueKind K = getOpcode();
    return K == ValueKind::Br || K == ValueKind::Switch ||
           K == ValueKind::Ret || K == ValueKind::Invoke ||
           K == ValueKind::Resume || K == ValueKind::Unreachable;
  }

  bool isPhi() const { return getOpcode() == ValueKind::Phi; }

  bool isBinaryOp() const {
    ValueKind K = getOpcode();
    return K >= ValueKind::Add && K <= ValueKind::FDiv;
  }

  bool isCast() const {
    ValueKind K = getOpcode();
    return K >= ValueKind::ZExt && K <= ValueKind::FPToSI;
  }

  /// True for opcodes whose two operands may be swapped without changing
  /// semantics; the merge operand-assignment exploits this (Fig 9).
  bool isCommutative() const {
    switch (getOpcode()) {
    case ValueKind::Add:
    case ValueKind::Mul:
    case ValueKind::And:
    case ValueKind::Or:
    case ValueKind::Xor:
    case ValueKind::FAdd:
    case ValueKind::FMul:
      return true;
    default:
      return false;
    }
  }

  bool mayWriteMemory() const {
    ValueKind K = getOpcode();
    return K == ValueKind::Store || K == ValueKind::Call ||
           K == ValueKind::Invoke;
  }

  bool mayReadMemory() const {
    ValueKind K = getOpcode();
    return K == ValueKind::Load || K == ValueKind::Call ||
           K == ValueKind::Invoke;
  }

  /// True if this instruction can be erased when its result is unused.
  bool isSideEffectFree() const {
    ValueKind K = getOpcode();
    if (isTerminator())
      return false;
    return K != ValueKind::Store && K != ValueKind::Call &&
           K != ValueKind::Invoke && K != ValueKind::LandingPad;
  }

  /// True if executing this instruction can produce a *defined* trap in
  /// the reference interpreter: out-of-bounds/null memory access, zero
  /// divisor, signed-division overflow. Unlike LLVM — where these are UB
  /// and dead ones are fair game — the differential harnesses compare
  /// trap status, so transforms running on behaviour-pinned code (the
  /// merged-body cleanup) must not erase one even when its result is
  /// unused.
  bool mayTrap() const {
    ValueKind K = getOpcode();
    return K == ValueKind::Load || K == ValueKind::Store ||
           K == ValueKind::SDiv || K == ValueKind::UDiv ||
           K == ValueKind::SRem || K == ValueKind::URem;
  }

  /// \name Successor access (terminators; Invoke included).
  /// @{
  unsigned getNumSuccessors() const {
    return static_cast<unsigned>(Successors.size());
  }
  BasicBlock *getSuccessor(unsigned I) const {
    assert(I < Successors.size() && "successor index out of range");
    return Successors[I];
  }
  void setSuccessor(unsigned I, BasicBlock *BB) {
    assert(I < Successors.size() && "successor index out of range");
    Successors[I] = BB;
  }
  const std::vector<BasicBlock *> &successors() const { return Successors; }
  /// Replaces every successor edge to \p Old with \p New.
  void replaceSuccessorWith(BasicBlock *Old, BasicBlock *New);
  /// @}

  /// \name List management.
  /// @{
  /// Unlinks from the parent block without deleting.
  void removeFromParent();
  /// Unlinks and deletes. The instruction must have no remaining uses.
  void eraseFromParent();
  /// Inserts this (unlinked) instruction before \p Pos.
  void insertBefore(Instruction *Pos);
  /// Appends this (unlinked) instruction at the end of \p BB.
  void insertAtEnd(BasicBlock *BB);
  /// Moves an already-linked instruction before \p Pos.
  void moveBefore(Instruction *Pos);
  /// @}

  static bool classof(const Value *V) {
    ValueKind K = V->getValueKind();
    return K >= InstFirstKind && K <= InstLastKind;
  }

protected:
  Instruction(ValueKind K, Type *T) : User(K, T) {}

  void addSuccessorStorage(BasicBlock *BB) { Successors.push_back(BB); }

private:
  friend class BasicBlock;
  BasicBlock *Parent = nullptr;
  std::list<Instruction *>::iterator SelfIt;
  std::vector<BasicBlock *> Successors;
};

//===----------------------------------------------------------------------===//
// Arithmetic, logic, comparisons
//===----------------------------------------------------------------------===//

/// Two-operand arithmetic or bitwise instruction (add..fdiv).
class BinaryOperator : public Instruction {
public:
  BinaryOperator(ValueKind Op, Value *LHS, Value *RHS)
      : Instruction(Op, LHS->getType()) {
    assert(LHS->getType() == RHS->getType() && "operand type mismatch");
    appendOperand(LHS);
    appendOperand(RHS);
  }

  Value *getLHS() const { return getOperand(0); }
  Value *getRHS() const { return getOperand(1); }

  /// Swaps the two operands (valid for commutative opcodes; callers
  /// handling non-commutative swaps must compensate).
  void swapOperands();

  static bool classof(const Value *V) {
    ValueKind K = V->getValueKind();
    return K >= ValueKind::Add && K <= ValueKind::FDiv;
  }
};

/// Comparison predicates shared by ICmp and FCmp (FCmp uses the ordered
/// subset EQ/NE/LT/LE/GT/GE).
enum class CmpPredicate : uint8_t {
  EQ,
  NE,
  SLT,
  SLE,
  SGT,
  SGE,
  ULT,
  ULE,
  UGT,
  UGE,
};

/// Spelled predicate name ("eq", "slt", ...).
const char *cmpPredicateName(CmpPredicate P);
/// Predicate with operands swapped (slt -> sgt etc.).
CmpPredicate swapCmpPredicate(CmpPredicate P);

/// Common base for icmp/fcmp.
class CmpInst : public Instruction {
public:
  CmpPredicate getPredicate() const { return Pred; }
  void setPredicate(CmpPredicate P) { Pred = P; }
  Value *getLHS() const { return getOperand(0); }
  Value *getRHS() const { return getOperand(1); }
  /// Swaps operands and adjusts the predicate so semantics are preserved.
  void swapOperandsAndPredicate();

  static bool classof(const Value *V) {
    ValueKind K = V->getValueKind();
    return K == ValueKind::ICmp || K == ValueKind::FCmp;
  }

protected:
  CmpInst(ValueKind K, CmpPredicate P, Value *LHS, Value *RHS, Type *BoolTy)
      : Instruction(K, BoolTy), Pred(P) {
    assert(LHS->getType() == RHS->getType() && "cmp operand type mismatch");
    appendOperand(LHS);
    appendOperand(RHS);
  }

private:
  CmpPredicate Pred;
};

/// Integer comparison producing i1.
class ICmpInst : public CmpInst {
public:
  ICmpInst(CmpPredicate P, Value *LHS, Value *RHS, Type *BoolTy)
      : CmpInst(ValueKind::ICmp, P, LHS, RHS, BoolTy) {}

  static bool classof(const Value *V) {
    return V->getValueKind() == ValueKind::ICmp;
  }
};

/// Floating-point comparison (ordered predicates only) producing i1.
class FCmpInst : public CmpInst {
public:
  FCmpInst(CmpPredicate P, Value *LHS, Value *RHS, Type *BoolTy)
      : CmpInst(ValueKind::FCmp, P, LHS, RHS, BoolTy) {
    assert((P == CmpPredicate::EQ || P == CmpPredicate::NE ||
            P == CmpPredicate::SLT || P == CmpPredicate::SLE ||
            P == CmpPredicate::SGT || P == CmpPredicate::SGE) &&
           "fcmp uses the ordered predicate subset");
  }

  static bool classof(const Value *V) {
    return V->getValueKind() == ValueKind::FCmp;
  }
};

/// Conditional value selection: select i1 %c, %t, %f.
class SelectInst : public Instruction {
public:
  SelectInst(Value *Cond, Value *TrueV, Value *FalseV)
      : Instruction(ValueKind::Select, TrueV->getType()) {
    assert(Cond->getType()->isBool() && "select condition must be i1");
    assert(TrueV->getType() == FalseV->getType() &&
           "select arm type mismatch");
    appendOperand(Cond);
    appendOperand(TrueV);
    appendOperand(FalseV);
  }

  Value *getCondition() const { return getOperand(0); }
  Value *getTrueValue() const { return getOperand(1); }
  Value *getFalseValue() const { return getOperand(2); }

  static bool classof(const Value *V) {
    return V->getValueKind() == ValueKind::Select;
  }
};

/// Single-operand conversion (zext/sext/trunc/sitofp/fptosi).
class CastInst : public Instruction {
public:
  CastInst(ValueKind Op, Value *V, Type *DestTy) : Instruction(Op, DestTy) {
    appendOperand(V);
  }

  Value *getSource() const { return getOperand(0); }

  static bool classof(const Value *V) {
    ValueKind K = V->getValueKind();
    return K >= ValueKind::ZExt && K <= ValueKind::FPToSI;
  }
};

//===----------------------------------------------------------------------===//
// Memory
//===----------------------------------------------------------------------===//

/// Stack slot allocation; yields a pointer.
class AllocaInst : public Instruction {
public:
  AllocaInst(Type *AllocTy, Type *PtrTy, unsigned NumElems = 1)
      : Instruction(ValueKind::Alloca, PtrTy), AllocatedTy(AllocTy),
        NumElements(NumElems) {}

  Type *getAllocatedType() const { return AllocatedTy; }
  unsigned getNumElements() const { return NumElements; }
  unsigned getAllocationSize() const {
    return AllocatedTy->getStoreSize() * NumElements;
  }

  static bool classof(const Value *V) {
    return V->getValueKind() == ValueKind::Alloca;
  }

private:
  Type *AllocatedTy;
  unsigned NumElements;
};

/// Typed load through a pointer.
class LoadInst : public Instruction {
public:
  LoadInst(Type *LoadedTy, Value *Ptr) : Instruction(ValueKind::Load, LoadedTy) {
    assert(Ptr->getType()->isPointer() && "load from non-pointer");
    appendOperand(Ptr);
  }

  Value *getPointerOperand() const { return getOperand(0); }

  static bool classof(const Value *V) {
    return V->getValueKind() == ValueKind::Load;
  }
};

/// Typed store through a pointer. Produces no value (void type).
class StoreInst : public Instruction {
public:
  StoreInst(Value *Val, Value *Ptr, Type *VoidTy)
      : Instruction(ValueKind::Store, VoidTy) {
    assert(Ptr->getType()->isPointer() && "store to non-pointer");
    appendOperand(Val);
    appendOperand(Ptr);
  }

  Value *getValueOperand() const { return getOperand(0); }
  Value *getPointerOperand() const { return getOperand(1); }

  static bool classof(const Value *V) {
    return V->getValueKind() == ValueKind::Store;
  }
};

/// Pointer arithmetic: result = base + index * sizeof(ElementTy).
class GepInst : public Instruction {
public:
  GepInst(Type *ElemTy, Value *Base, Value *Index, Type *PtrTy)
      : Instruction(ValueKind::Gep, PtrTy), ElementTy(ElemTy) {
    assert(Base->getType()->isPointer() && "gep base must be a pointer");
    assert(Index->getType()->isInteger() && "gep index must be an integer");
    appendOperand(Base);
    appendOperand(Index);
  }

  Type *getElementType() const { return ElementTy; }
  Value *getBaseOperand() const { return getOperand(0); }
  Value *getIndexOperand() const { return getOperand(1); }

  static bool classof(const Value *V) {
    return V->getValueKind() == ValueKind::Gep;
  }

private:
  Type *ElementTy;
};

//===----------------------------------------------------------------------===//
// Calls and exception handling
//===----------------------------------------------------------------------===//

/// Base for direct calls (call/invoke). The callee is a Function, held as a
/// member rather than an operand (functions are not Values in this IR).
class CallBase : public Instruction {
public:
  Function *getCallee() const { return Callee; }
  void setCallee(Function *F) { Callee = F; }

  unsigned getNumArgs() const { return getNumOperands(); }
  Value *getArg(unsigned I) const { return getOperand(I); }
  void setArg(unsigned I, Value *V) { setOperand(I, V); }

  static bool classof(const Value *V) {
    ValueKind K = V->getValueKind();
    return K == ValueKind::Call || K == ValueKind::Invoke;
  }

protected:
  CallBase(ValueKind K, Function *F, const std::vector<Value *> &Args,
           Type *RetTy)
      : Instruction(K, RetTy), Callee(F) {
    for (Value *A : Args)
      appendOperand(A);
  }

private:
  Function *Callee;
};

/// A plain direct call.
class CallInst : public CallBase {
public:
  CallInst(Function *F, const std::vector<Value *> &Args, Type *RetTy)
      : CallBase(ValueKind::Call, F, Args, RetTy) {}

  static bool classof(const Value *V) {
    return V->getValueKind() == ValueKind::Call;
  }
};

/// A call with exceptional control flow: two successors, the normal
/// destination and the unwind destination (which must start with a
/// landingpad). This is a terminator.
class InvokeInst : public CallBase {
public:
  InvokeInst(Function *F, const std::vector<Value *> &Args, Type *RetTy,
             BasicBlock *NormalDest, BasicBlock *UnwindDest)
      : CallBase(ValueKind::Invoke, F, Args, RetTy) {
    addSuccessorStorage(NormalDest);
    addSuccessorStorage(UnwindDest);
  }

  BasicBlock *getNormalDest() const { return getSuccessor(0); }
  BasicBlock *getUnwindDest() const { return getSuccessor(1); }
  void setNormalDest(BasicBlock *BB) { setSuccessor(0, BB); }
  void setUnwindDest(BasicBlock *BB) { setSuccessor(1, BB); }

  static bool classof(const Value *V) {
    return V->getValueKind() == ValueKind::Invoke;
  }
};

/// Marks the start of an exception landing block; must be the first
/// non-phi instruction of every invoke unwind destination. Produces an
/// opaque token (pointer-typed here).
class LandingPadInst : public Instruction {
public:
  LandingPadInst(Type *TokenTy, bool IsCleanup = true)
      : Instruction(ValueKind::LandingPad, TokenTy), Cleanup(IsCleanup) {}

  bool isCleanup() const { return Cleanup; }

  static bool classof(const Value *V) {
    return V->getValueKind() == ValueKind::LandingPad;
  }

private:
  bool Cleanup;
};

/// Re-raises an in-flight exception from a landing block. Terminator with
/// no successors.
class ResumeInst : public Instruction {
public:
  ResumeInst(Value *Token, Type *VoidTy)
      : Instruction(ValueKind::Resume, VoidTy) {
    appendOperand(Token);
  }

  Value *getToken() const { return getOperand(0); }

  static bool classof(const Value *V) {
    return V->getValueKind() == ValueKind::Resume;
  }
};

//===----------------------------------------------------------------------===//
// Phi
//===----------------------------------------------------------------------===//

/// SSA phi-node. Incoming values are operands; incoming blocks are kept in
/// a parallel array (one entry per unique predecessor block).
class PhiInst : public Instruction {
public:
  explicit PhiInst(Type *Ty) : Instruction(ValueKind::Phi, Ty) {}

  unsigned getNumIncoming() const { return getNumOperands(); }
  Value *getIncomingValue(unsigned I) const { return getOperand(I); }
  void setIncomingValue(unsigned I, Value *V) { setOperand(I, V); }
  BasicBlock *getIncomingBlock(unsigned I) const {
    assert(I < IncomingBlocks.size() && "incoming index out of range");
    return IncomingBlocks[I];
  }
  void setIncomingBlock(unsigned I, BasicBlock *BB) {
    assert(I < IncomingBlocks.size() && "incoming index out of range");
    IncomingBlocks[I] = BB;
  }

  void addIncoming(Value *V, BasicBlock *BB) {
    assert(V->getType() == getType() && "phi incoming type mismatch");
    appendOperand(V);
    IncomingBlocks.push_back(BB);
  }

  /// Index of the entry for \p BB, or -1 if absent.
  int indexOfBlock(const BasicBlock *BB) const;

  /// Incoming value for \p BB; asserts the entry exists.
  Value *getIncomingValueForBlock(const BasicBlock *BB) const;

  /// Removes the incoming entry \p I.
  void removeIncoming(unsigned I) {
    eraseOperand(I);
    IncomingBlocks.erase(IncomingBlocks.begin() + I);
  }

  /// Redirects the incoming entry for \p Old to \p New.
  void replaceIncomingBlockWith(BasicBlock *Old, BasicBlock *New);

  /// If every incoming value is the same value V (ignoring self-references
  /// and undef), returns V; otherwise null. Used by simplification.
  Value *hasConstantValue() const;

  static bool classof(const Value *V) {
    return V->getValueKind() == ValueKind::Phi;
  }

private:
  std::vector<BasicBlock *> IncomingBlocks;
};

//===----------------------------------------------------------------------===//
// Terminators
//===----------------------------------------------------------------------===//

/// Branch: unconditional (one successor, no operands) or conditional (i1
/// condition operand, two successors: [true, false]).
class BranchInst : public Instruction {
public:
  /// Unconditional branch.
  BranchInst(BasicBlock *Dest, Type *VoidTy)
      : Instruction(ValueKind::Br, VoidTy) {
    addSuccessorStorage(Dest);
  }

  /// Conditional branch.
  BranchInst(Value *Cond, BasicBlock *TrueDest, BasicBlock *FalseDest,
             Type *VoidTy)
      : Instruction(ValueKind::Br, VoidTy) {
    assert(Cond->getType()->isBool() && "branch condition must be i1");
    appendOperand(Cond);
    addSuccessorStorage(TrueDest);
    addSuccessorStorage(FalseDest);
  }

  bool isConditional() const { return getNumOperands() == 1; }
  bool isUnconditional() const { return !isConditional(); }

  Value *getCondition() const {
    assert(isConditional() && "no condition on unconditional branch");
    return getOperand(0);
  }
  void setCondition(Value *C) {
    assert(isConditional() && "no condition on unconditional branch");
    setOperand(0, C);
  }

  BasicBlock *getTrueDest() const { return getSuccessor(0); }
  BasicBlock *getFalseDest() const {
    assert(isConditional() && "false dest on unconditional branch");
    return getSuccessor(1);
  }
  /// Swaps the true/false successors (the caller must compensate, e.g. by
  /// negating or xor-ing the condition — see the Fig 11 optimization).
  void swapSuccessors() {
    assert(isConditional() && "swapSuccessors on unconditional branch");
    BasicBlock *T = getSuccessor(0);
    setSuccessor(0, getSuccessor(1));
    setSuccessor(1, T);
  }

  static bool classof(const Value *V) {
    return V->getValueKind() == ValueKind::Br;
  }
};

/// Multi-way branch on an integer. Successor 0 is the default; case I maps
/// to successor I+1 with case value CaseValues[I].
class SwitchInst : public Instruction {
public:
  SwitchInst(Value *Cond, BasicBlock *DefaultDest, Type *VoidTy)
      : Instruction(ValueKind::Switch, VoidTy) {
    assert(Cond->getType()->isInteger() && "switch on non-integer");
    appendOperand(Cond);
    addSuccessorStorage(DefaultDest);
  }

  Value *getCondition() const { return getOperand(0); }
  BasicBlock *getDefaultDest() const { return getSuccessor(0); }

  unsigned getNumCases() const {
    return static_cast<unsigned>(CaseValues.size());
  }
  ConstantInt *getCaseValue(unsigned I) const {
    assert(I < CaseValues.size() && "case index out of range");
    return CaseValues[I];
  }
  BasicBlock *getCaseDest(unsigned I) const { return getSuccessor(I + 1); }

  void addCase(ConstantInt *Val, BasicBlock *Dest) {
    CaseValues.push_back(Val);
    addSuccessorStorage(Dest);
  }

  static bool classof(const Value *V) {
    return V->getValueKind() == ValueKind::Switch;
  }

private:
  std::vector<ConstantInt *> CaseValues;
};

/// Function return, with an optional value.
class RetInst : public Instruction {
public:
  explicit RetInst(Type *VoidTy) : Instruction(ValueKind::Ret, VoidTy) {}
  RetInst(Value *V, Type *VoidTy) : Instruction(ValueKind::Ret, VoidTy) {
    appendOperand(V);
  }

  bool hasReturnValue() const { return getNumOperands() == 1; }
  Value *getReturnValue() const {
    assert(hasReturnValue() && "void return has no value");
    return getOperand(0);
  }

  static bool classof(const Value *V) {
    return V->getValueKind() == ValueKind::Ret;
  }
};

/// Marks unreachable control flow.
class UnreachableInst : public Instruction {
public:
  explicit UnreachableInst(Type *VoidTy)
      : Instruction(ValueKind::Unreachable, VoidTy) {}

  static bool classof(const Value *V) {
    return V->getValueKind() == ValueKind::Unreachable;
  }
};

} // namespace salssa

#endif // SALSSA_IR_INSTRUCTION_H
