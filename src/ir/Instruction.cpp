//===- ir/Instruction.cpp - Instruction implementation --------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Instruction.h"
#include "ir/BasicBlock.h"
#include "ir/Function.h"

using namespace salssa;

Function *Instruction::getFunction() const {
  return Parent ? Parent->getParent() : nullptr;
}

void Instruction::replaceSuccessorWith(BasicBlock *Old, BasicBlock *New) {
  for (unsigned I = 0, E = getNumSuccessors(); I != E; ++I)
    if (getSuccessor(I) == Old)
      setSuccessor(I, New);
}

void Instruction::removeFromParent() {
  assert(Parent && "instruction is not linked");
  Parent->Insts.erase(SelfIt);
  Parent = nullptr;
}

void Instruction::eraseFromParent() {
  assert(!hasUses() && "erasing an instruction that still has uses");
  if (Parent)
    removeFromParent();
  delete this;
}

void Instruction::insertBefore(Instruction *Pos) {
  assert(!Parent && "instruction already linked");
  assert(Pos->Parent && "insertion point is not linked");
  BasicBlock *BB = Pos->Parent;
  SelfIt = BB->Insts.insert(Pos->SelfIt, this);
  Parent = BB;
}

void Instruction::insertAtEnd(BasicBlock *BB) {
  assert(!Parent && "instruction already linked");
  BB->push_back(this);
}

void Instruction::moveBefore(Instruction *Pos) {
  removeFromParent();
  insertBefore(Pos);
}

void BinaryOperator::swapOperands() {
  // Swap via raw operand rewrite; use bookkeeping is preserved because the
  // multiset of (user, value) references does not change.
  Value *L = getLHS();
  Value *R = getRHS();
  if (L == R)
    return;
  setOperand(0, R);
  setOperand(1, L);
}

const char *salssa::cmpPredicateName(CmpPredicate P) {
  switch (P) {
  case CmpPredicate::EQ:
    return "eq";
  case CmpPredicate::NE:
    return "ne";
  case CmpPredicate::SLT:
    return "slt";
  case CmpPredicate::SLE:
    return "sle";
  case CmpPredicate::SGT:
    return "sgt";
  case CmpPredicate::SGE:
    return "sge";
  case CmpPredicate::ULT:
    return "ult";
  case CmpPredicate::ULE:
    return "ule";
  case CmpPredicate::UGT:
    return "ugt";
  case CmpPredicate::UGE:
    return "uge";
  }
  return "<badpred>";
}

CmpPredicate salssa::swapCmpPredicate(CmpPredicate P) {
  switch (P) {
  case CmpPredicate::EQ:
    return CmpPredicate::EQ;
  case CmpPredicate::NE:
    return CmpPredicate::NE;
  case CmpPredicate::SLT:
    return CmpPredicate::SGT;
  case CmpPredicate::SLE:
    return CmpPredicate::SGE;
  case CmpPredicate::SGT:
    return CmpPredicate::SLT;
  case CmpPredicate::SGE:
    return CmpPredicate::SLE;
  case CmpPredicate::ULT:
    return CmpPredicate::UGT;
  case CmpPredicate::ULE:
    return CmpPredicate::UGE;
  case CmpPredicate::UGT:
    return CmpPredicate::ULT;
  case CmpPredicate::UGE:
    return CmpPredicate::ULE;
  }
  return P;
}

void CmpInst::swapOperandsAndPredicate() {
  Value *L = getLHS();
  Value *R = getRHS();
  if (L != R) {
    setOperand(0, R);
    setOperand(1, L);
  }
  setPredicate(swapCmpPredicate(getPredicate()));
}

int PhiInst::indexOfBlock(const BasicBlock *BB) const {
  for (unsigned I = 0, E = getNumIncoming(); I != E; ++I)
    if (getIncomingBlock(I) == BB)
      return static_cast<int>(I);
  return -1;
}

Value *PhiInst::getIncomingValueForBlock(const BasicBlock *BB) const {
  int I = indexOfBlock(BB);
  assert(I >= 0 && "block is not an incoming block of this phi");
  return getIncomingValue(static_cast<unsigned>(I));
}

void PhiInst::replaceIncomingBlockWith(BasicBlock *Old, BasicBlock *New) {
  for (unsigned I = 0, E = getNumIncoming(); I != E; ++I)
    if (getIncomingBlock(I) == Old)
      setIncomingBlock(I, New);
}

Value *PhiInst::hasConstantValue() const {
  Value *Common = nullptr;
  for (unsigned I = 0, E = getNumIncoming(); I != E; ++I) {
    Value *V = getIncomingValue(I);
    if (V == this || isa<UndefValue>(V))
      continue;
    if (Common && V != Common)
      return nullptr;
    Common = V;
  }
  return Common;
}
