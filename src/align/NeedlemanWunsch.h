//===- align/NeedlemanWunsch.h - Global sequence alignment --------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Needleman-Wunsch global alignment (Needleman & Wunsch 1970), the
/// "Alignment" stage shared by FMSA and SalSSA. The scoring scheme follows
/// FMSA: +1 for a mergeable pair, gaps are free, and non-mergeable pairs
/// are never aligned — so the optimizer maximizes the number of merged
/// items. Both time and memory are quadratic in the sequence lengths,
/// which is why register demotion (which roughly doubles sequence length)
/// costs FMSA ~4x in alignment time and memory (§3, §5.5, §5.6 of the
/// paper). The DP-matrix footprint is reported for the Fig 22 experiment.
///
//===----------------------------------------------------------------------===//

#ifndef SALSSA_ALIGN_NEEDLEMANWUNSCH_H
#define SALSSA_ALIGN_NEEDLEMANWUNSCH_H

#include "align/Linearize.h"
#include <cstdint>
#include <functional>

namespace salssa {

/// One element of an alignment: indices into the two sequences, or -1 on
/// the gapped side.
struct AlignedEntry {
  int Idx1 = -1;
  int Idx2 = -1;
  bool isMatch() const { return Idx1 >= 0 && Idx2 >= 0; }
};

/// Alignment output plus the resource instrumentation the benchmarks use.
struct AlignmentResult {
  std::vector<AlignedEntry> Entries; ///< in sequence order
  size_t MatchedPairs = 0;
  size_t DPBytes = 0; ///< bytes of DP state allocated (peak)
  bool UsedLinearSpace = false; ///< which variant ran
};

using MatchFn = std::function<bool(const SeqItem &, const SeqItem &)>;

/// DP-variant selection for alignSequences.
enum class AlignMode : uint8_t {
  /// FullMatrix below FullMatrixCellLimit cells, LinearSpace above: big
  /// pairs stop paying the quadratic Dir-matrix footprint.
  Auto,
  /// Always materialize the (N+1)x(M+1) traceback matrix (the paper's
  /// measured configuration, Fig 22).
  FullMatrix,
  /// Hirschberg divide-and-conquer: same optimal match count, O(N+M)
  /// rows of DP state, ~2x the score-pass arithmetic.
  LinearSpace,
};

/// Auto switches to linear space above this many DP cells (64 M cells =
/// 64 MB of traceback matrix). The suite workloads — including the
/// 403.gcc giant pair at ~16 M cells post-demotion — stay below it, so
/// the paper's Fig 22 measurements are unaffected by default.
inline constexpr size_t FullMatrixCellLimit = size_t(1) << 26;

/// Aligns \p Seq1 and \p Seq2 maximizing the number of matched pairs under
/// \p Match. Both variants return an optimal alignment (identical
/// MatchedPairs); the linear-space one may pick a different, equally
/// optimal pairing in tie cases.
AlignmentResult alignSequences(const std::vector<SeqItem> &Seq1,
                               const std::vector<SeqItem> &Seq2,
                               const MatchFn &Match,
                               AlignMode Mode = AlignMode::Auto);

} // namespace salssa

#endif // SALSSA_ALIGN_NEEDLEMANWUNSCH_H
