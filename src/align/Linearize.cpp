//===- align/Linearize.cpp - Function linearization ----------------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//

#include "align/Linearize.h"

using namespace salssa;

std::vector<SeqItem> salssa::linearizeFunction(Function &F) {
  std::vector<SeqItem> Seq;
  Seq.reserve(F.getInstructionCount() + F.getNumBlocks());
  for (BasicBlock *BB : F) {
    Seq.push_back({BB, nullptr});
    for (Instruction *I : *BB) {
      if (I->isPhi() || isa<LandingPadInst>(I))
        continue;
      Seq.push_back({BB, I});
    }
  }
  return Seq;
}
