//===- align/NeedlemanWunsch.cpp - Global sequence alignment -------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//

#include "align/NeedlemanWunsch.h"
#include <algorithm>

using namespace salssa;

AlignmentResult salssa::alignSequences(const std::vector<SeqItem> &Seq1,
                                       const std::vector<SeqItem> &Seq2,
                                       const MatchFn &Match) {
  const size_t N = Seq1.size();
  const size_t M = Seq2.size();
  AlignmentResult Result;

  // Direction codes for traceback.
  enum : uint8_t { DirDiag = 0, DirUp = 1, DirLeft = 2 };

  // Full traceback matrix (1 byte/cell) + two rolling score rows. This is
  // the quadratic footprint the paper measures (Fig 22).
  std::vector<uint8_t> Dir((N + 1) * (M + 1), DirLeft);
  std::vector<int32_t> Prev(M + 1, 0), Cur(M + 1, 0);
  Result.DPBytes = Dir.capacity() * sizeof(uint8_t) +
                   (Prev.capacity() + Cur.capacity()) * sizeof(int32_t);

  for (size_t J = 0; J <= M; ++J)
    Dir[J] = DirLeft;
  for (size_t I = 1; I <= N; ++I) {
    Dir[I * (M + 1)] = DirUp;
    Cur[0] = 0;
    for (size_t J = 1; J <= M; ++J) {
      int32_t Best = Prev[J]; // gap in Seq2 (move up)
      uint8_t D = DirUp;
      if (Cur[J - 1] > Best) { // gap in Seq1 (move left)
        Best = Cur[J - 1];
        D = DirLeft;
      }
      if (Match(Seq1[I - 1], Seq2[J - 1]) && Prev[J - 1] + 1 >= Best) {
        Best = Prev[J - 1] + 1;
        D = DirDiag;
      }
      Cur[J] = Best;
      Dir[I * (M + 1) + J] = D;
    }
    std::swap(Prev, Cur);
  }

  // Traceback from (N, M).
  size_t I = N, J = M;
  std::vector<AlignedEntry> Rev;
  Rev.reserve(N + M);
  while (I > 0 || J > 0) {
    uint8_t D = Dir[I * (M + 1) + J];
    if (I > 0 && J > 0 && D == DirDiag) {
      Rev.push_back({static_cast<int>(I - 1), static_cast<int>(J - 1)});
      ++Result.MatchedPairs;
      --I;
      --J;
    } else if (I > 0 && (D == DirUp || J == 0)) {
      Rev.push_back({static_cast<int>(I - 1), -1});
      --I;
    } else {
      Rev.push_back({-1, static_cast<int>(J - 1)});
      --J;
    }
  }
  Result.Entries.assign(Rev.rbegin(), Rev.rend());
  return Result;
}
