//===- align/NeedlemanWunsch.cpp - Global sequence alignment -------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//

#include "align/NeedlemanWunsch.h"
#include <algorithm>

using namespace salssa;

namespace {

enum : uint8_t { DirDiag = 0, DirUp = 1, DirLeft = 2 };

/// The paper's configuration: full (N+1)x(M+1) traceback matrix — the
/// quadratic footprint measured in Fig 22.
AlignmentResult alignFullMatrix(const std::vector<SeqItem> &Seq1,
                                const std::vector<SeqItem> &Seq2,
                                const MatchFn &Match) {
  const size_t N = Seq1.size();
  const size_t M = Seq2.size();
  AlignmentResult Result;

  // Full traceback matrix (1 byte/cell) + two rolling score rows.
  std::vector<uint8_t> Dir((N + 1) * (M + 1), DirLeft);
  std::vector<int32_t> Prev(M + 1, 0), Cur(M + 1, 0);
  Result.DPBytes = Dir.capacity() * sizeof(uint8_t) +
                   (Prev.capacity() + Cur.capacity()) * sizeof(int32_t);

  for (size_t J = 0; J <= M; ++J)
    Dir[J] = DirLeft;
  for (size_t I = 1; I <= N; ++I) {
    Dir[I * (M + 1)] = DirUp;
    Cur[0] = 0;
    for (size_t J = 1; J <= M; ++J) {
      int32_t Best = Prev[J]; // gap in Seq2 (move up)
      uint8_t D = DirUp;
      if (Cur[J - 1] > Best) { // gap in Seq1 (move left)
        Best = Cur[J - 1];
        D = DirLeft;
      }
      if (Match(Seq1[I - 1], Seq2[J - 1]) && Prev[J - 1] + 1 >= Best) {
        Best = Prev[J - 1] + 1;
        D = DirDiag;
      }
      Cur[J] = Best;
      Dir[I * (M + 1) + J] = D;
    }
    std::swap(Prev, Cur);
  }

  // Traceback from (N, M).
  size_t I = N, J = M;
  std::vector<AlignedEntry> Rev;
  Rev.reserve(N + M);
  while (I > 0 || J > 0) {
    uint8_t D = Dir[I * (M + 1) + J];
    if (I > 0 && J > 0 && D == DirDiag) {
      Rev.push_back({static_cast<int>(I - 1), static_cast<int>(J - 1)});
      ++Result.MatchedPairs;
      --I;
      --J;
    } else if (I > 0 && (D == DirUp || J == 0)) {
      Rev.push_back({static_cast<int>(I - 1), -1});
      --I;
    } else {
      Rev.push_back({-1, static_cast<int>(J - 1)});
      --J;
    }
  }
  Result.Entries.assign(Rev.rbegin(), Rev.rend());
  return Result;
}

/// Hirschberg linear-space alignment: divide-and-conquer over Seq1 with
/// forward/backward score rows instead of a traceback matrix. Tracks the
/// peak bytes of simultaneously-live DP rows in \p LiveBytes/\p PeakBytes.
class LinearSpaceAligner {
public:
  LinearSpaceAligner(const std::vector<SeqItem> &S1,
                     const std::vector<SeqItem> &S2, const MatchFn &M)
      : Seq1(S1), Seq2(S2), Match(M) {}

  AlignmentResult run() {
    AlignmentResult Result;
    Result.UsedLinearSpace = true;
    Result.Entries.reserve(Seq1.size() + Seq2.size());
    solve(0, Seq1.size(), 0, Seq2.size(), Result.Entries);
    for (const AlignedEntry &E : Result.Entries)
      Result.MatchedPairs += E.isMatch();
    Result.DPBytes = PeakBytes;
    return Result;
  }

private:
  using Row = std::vector<int32_t>;

  Row makeRow(size_t Len) {
    LiveBytes += Len * sizeof(int32_t);
    PeakBytes = std::max(PeakBytes, LiveBytes);
    return Row(Len, 0);
  }
  void dropRow(Row &R) {
    LiveBytes -= R.capacity() * sizeof(int32_t);
    Row().swap(R);
  }

  /// Score row of aligning Seq1[I0..I1) against every prefix of
  /// Seq2[J0..J1): Out[j] = optimal matches vs Seq2[J0..J0+j).
  Row forwardScores(size_t I0, size_t I1, size_t J0, size_t J1) {
    const size_t W = J1 - J0;
    Row Prev = makeRow(W + 1), Cur = makeRow(W + 1);
    for (size_t I = I0; I < I1; ++I) {
      Cur[0] = 0;
      for (size_t J = 1; J <= W; ++J) {
        int32_t Best = std::max(Prev[J], Cur[J - 1]);
        if (Match(Seq1[I], Seq2[J0 + J - 1]))
          Best = std::max(Best, Prev[J - 1] + 1);
        Cur[J] = Best;
      }
      std::swap(Prev, Cur);
    }
    dropRow(Cur);
    return Prev;
  }

  /// Mirror image: Out[j] = optimal matches of Seq1[I0..I1) vs the suffix
  /// Seq2[J0+j..J1).
  Row backwardScores(size_t I0, size_t I1, size_t J0, size_t J1) {
    const size_t W = J1 - J0;
    Row Prev = makeRow(W + 1), Cur = makeRow(W + 1);
    for (size_t I = I1; I > I0; --I) {
      Cur[W] = 0;
      for (size_t J = W; J > 0; --J) {
        int32_t Best = std::max(Prev[J - 1], Cur[J]);
        if (Match(Seq1[I - 1], Seq2[J0 + J - 1]))
          Best = std::max(Best, Prev[J] + 1);
        Cur[J - 1] = Best;
      }
      std::swap(Prev, Cur);
    }
    dropRow(Cur);
    return Prev;
  }

  void solve(size_t I0, size_t I1, size_t J0, size_t J1,
             std::vector<AlignedEntry> &Out) {
    // Base cases: one side exhausted -> all gaps.
    if (I1 == I0) {
      for (size_t J = J0; J < J1; ++J)
        Out.push_back({-1, static_cast<int>(J)});
      return;
    }
    if (J1 == J0) {
      for (size_t I = I0; I < I1; ++I)
        Out.push_back({static_cast<int>(I), -1});
      return;
    }
    if (I1 - I0 == 1) {
      // A single Seq1 item: match it against the first compatible Seq2
      // item (if any), gap everything else.
      size_t MatchAt = J1;
      for (size_t J = J0; J < J1; ++J)
        if (Match(Seq1[I0], Seq2[J])) {
          MatchAt = J;
          break;
        }
      for (size_t J = J0; J < MatchAt; ++J)
        Out.push_back({-1, static_cast<int>(J)});
      if (MatchAt < J1) {
        Out.push_back({static_cast<int>(I0), static_cast<int>(MatchAt)});
        for (size_t J = MatchAt + 1; J < J1; ++J)
          Out.push_back({-1, static_cast<int>(J)});
      } else {
        Out.push_back({static_cast<int>(I0), -1});
      }
      return;
    }

    // Divide: best column to split Seq2 at Seq1's midpoint.
    const size_t Mid = I0 + (I1 - I0) / 2;
    Row F = forwardScores(I0, Mid, J0, J1);
    Row B = backwardScores(Mid, I1, J0, J1);
    const size_t W = J1 - J0;
    size_t BestJ = 0;
    int32_t BestScore = INT32_MIN;
    for (size_t J = 0; J <= W; ++J)
      if (F[J] + B[J] > BestScore) {
        BestScore = F[J] + B[J];
        BestJ = J;
      }
    dropRow(F);
    dropRow(B);

    solve(I0, Mid, J0, J0 + BestJ, Out);
    solve(Mid, I1, J0 + BestJ, J1, Out);
  }

  const std::vector<SeqItem> &Seq1;
  const std::vector<SeqItem> &Seq2;
  const MatchFn &Match;
  size_t LiveBytes = 0;
  size_t PeakBytes = 0;
};

} // namespace

AlignmentResult salssa::alignSequences(const std::vector<SeqItem> &Seq1,
                                       const std::vector<SeqItem> &Seq2,
                                       const MatchFn &Match, AlignMode Mode) {
  if (Mode == AlignMode::Auto) {
    size_t Cells = (Seq1.size() + 1) * (Seq2.size() + 1);
    Mode = Cells > FullMatrixCellLimit ? AlignMode::LinearSpace
                                       : AlignMode::FullMatrix;
  }
  if (Mode == AlignMode::LinearSpace)
    return LinearSpaceAligner(Seq1, Seq2, Match).run();
  return alignFullMatrix(Seq1, Seq2, Match);
}
