//===- align/Linearize.h - Function linearization ------------------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Turns a function into the linear sequence of labels and instructions
/// that sequence alignment operates on (the "Linearization" stage of
/// Fig 1). Following the paper:
///
///  - phi-nodes never appear in the sequence: SalSSA treats them as
///    attached to their block's label (§4.1.1), and FMSA's input has none
///    (they were demoted);
///  - landingpad instructions are excluded as well; both code generators
///    re-materialize landing blocks during operand assignment (§4.2.2).
///
//===----------------------------------------------------------------------===//

#ifndef SALSSA_ALIGN_LINEARIZE_H
#define SALSSA_ALIGN_LINEARIZE_H

#include "ir/Function.h"
#include <vector>

namespace salssa {

/// One element of a linearized function: a block label or an instruction.
struct SeqItem {
  BasicBlock *Block = nullptr; ///< the label, or the instruction's parent
  Instruction *Inst = nullptr; ///< null for label items

  bool isLabel() const { return Inst == nullptr; }
};

/// Linearizes \p F in block order: Label(B), then B's instructions (phis
/// and landingpads skipped).
std::vector<SeqItem> linearizeFunction(Function &F);

} // namespace salssa

#endif // SALSSA_ALIGN_LINEARIZE_H
