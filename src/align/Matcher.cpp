//===- align/Matcher.cpp - Instruction mergeability -------------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//

#include "align/Matcher.h"

using namespace salssa;

bool salssa::areMergeableInstructions(const Instruction *I1,
                                      const Instruction *I2) {
  if (I1->getOpcode() != I2->getOpcode())
    return false;
  if (I1->getType() != I2->getType())
    return false;
  if (I1->getNumOperands() != I2->getNumOperands())
    return false;
  // Operand types must agree position-wise so selects are well-typed.
  for (unsigned K = 0; K < I1->getNumOperands(); ++K)
    if (I1->getOperand(K)->getType() != I2->getOperand(K)->getType())
      return false;

  switch (I1->getOpcode()) {
  case ValueKind::ICmp:
  case ValueKind::FCmp:
    return cast<CmpInst>(I1)->getPredicate() ==
           cast<CmpInst>(I2)->getPredicate();
  case ValueKind::Alloca: {
    const auto *A1 = cast<AllocaInst>(I1);
    const auto *A2 = cast<AllocaInst>(I2);
    return A1->getAllocatedType() == A2->getAllocatedType() &&
           A1->getNumElements() == A2->getNumElements();
  }
  case ValueKind::Gep:
    return cast<GepInst>(I1)->getElementType() ==
           cast<GepInst>(I2)->getElementType();
  case ValueKind::Call:
  case ValueKind::Invoke:
    // Direct-call IR: merging different callees would need an indirect
    // call; require identical callees (argument values may still differ).
    return cast<CallBase>(I1)->getCallee() == cast<CallBase>(I2)->getCallee();
  case ValueKind::Switch: {
    // Same case-value table (destinations may differ; they are labels).
    const auto *S1 = cast<SwitchInst>(I1);
    const auto *S2 = cast<SwitchInst>(I2);
    if (S1->getNumCases() != S2->getNumCases())
      return false;
    for (unsigned K = 0; K < S1->getNumCases(); ++K)
      if (S1->getCaseValue(K) != S2->getCaseValue(K))
        return false;
    return true;
  }
  case ValueKind::Br:
    // Arity check above already separates conditional from unconditional.
    return true;
  case ValueKind::Phi:
  case ValueKind::LandingPad:
    return false; // never aligned (handled structurally)
  default:
    return true;
  }
}

bool salssa::itemsMatch(const SeqItem &A, const SeqItem &B) {
  if (A.isLabel() != B.isLabel())
    return false;
  if (A.isLabel())
    return true;
  return areMergeableInstructions(A.Inst, B.Inst);
}
