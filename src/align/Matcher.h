//===- align/Matcher.h - Instruction mergeability --------------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The match predicate used by sequence alignment: decides whether two
/// labels/instructions may be merged into one. Mergeable instructions must
/// agree on opcode, result type and structural attributes (predicate,
/// callee, accessed type, case values...) but may differ in operands —
/// those are reconciled later with select instructions and label-selection
/// blocks (§4.2).
///
//===----------------------------------------------------------------------===//

#ifndef SALSSA_ALIGN_MATCHER_H
#define SALSSA_ALIGN_MATCHER_H

#include "align/Linearize.h"

namespace salssa {

/// True when \p I1 and \p I2 can be merged into a single instruction.
bool areMergeableInstructions(const Instruction *I1, const Instruction *I2);

/// Match predicate over sequence items: labels match labels, instructions
/// match per areMergeableInstructions.
bool itemsMatch(const SeqItem &A, const SeqItem &B);

} // namespace salssa

#endif // SALSSA_ALIGN_MATCHER_H
