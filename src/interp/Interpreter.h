//===- interp/Interpreter.h - IR interpreter ----------------------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An IR interpreter with three jobs in this reproduction:
///
///  1. *Differential testing*: after every merge, the original function and
///     the merged function (dispatched on the function identifier) are run
///     on the same inputs; return values and external-call traces must
///     match. This is the correctness oracle for the FMSA and SalSSA code
///     generators.
///  2. *Runtime proxy* (Fig 25): dynamic instruction counts stand in for
///     wall-clock execution time of the compiled program.
///  3. Executing the example programs.
///
/// External (declared) functions behave deterministically: their result is
/// a hash of the callee name and arguments, so traces are reproducible and
/// identical across original/merged executions. Invoked externals can be
/// configured to "throw" deterministically to exercise the landing-pad
/// paths.
///
//===----------------------------------------------------------------------===//

#ifndef SALSSA_INTERP_INTERPRETER_H
#define SALSSA_INTERP_INTERPRETER_H

#include "ir/Module.h"
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace salssa {

/// A dynamic value. Integers and pointers live in Bits; floats in FPVal.
struct RuntimeValue {
  enum class Kind : uint8_t { Int, FP, Ptr, Undef };
  Kind K = Kind::Undef;
  uint64_t Bits = 0;
  double FPVal = 0.0;

  static RuntimeValue makeInt(uint64_t B) {
    RuntimeValue V;
    V.K = Kind::Int;
    V.Bits = B;
    return V;
  }
  static RuntimeValue makeFP(double D) {
    RuntimeValue V;
    V.K = Kind::FP;
    V.FPVal = D;
    return V;
  }
  static RuntimeValue makePtr(uint64_t Addr) {
    RuntimeValue V;
    V.K = Kind::Ptr;
    V.Bits = Addr;
    return V;
  }
  static RuntimeValue makeUndef() { return RuntimeValue(); }
};

/// One external call observed during execution. The sequence of these is
/// the behavioural fingerprint the differential tests compare.
struct CallTraceEntry {
  std::string Callee;
  std::vector<uint64_t> Args; ///< raw bits of each argument
  uint64_t Result = 0;
  bool Threw = false;

  bool operator==(const CallTraceEntry &O) const {
    return Callee == O.Callee && Args == O.Args && Result == O.Result &&
           Threw == O.Threw;
  }
};

/// Interpreter knobs.
struct ExecOptions {
  uint64_t MaxSteps = 10'000'000;
  unsigned MaxCallDepth = 128;
  /// Percentage [0,100] of invoked external calls that unwind
  /// (deterministically chosen per call-site arguments).
  unsigned ExternalThrowPercent = 0;
  /// Seed mixed into external results and global initial contents.
  uint64_t EnvSeed = 0x5a155aULL;
};

/// Outcome of one execution.
struct ExecResult {
  enum class Status : uint8_t {
    Ok,
    Trap,               ///< division by zero, bad memory, unreachable...
    OutOfFuel,          ///< exceeded MaxSteps
    UnhandledException, ///< exception escaped the entry function
  };
  Status St = Status::Ok;
  RuntimeValue Return;
  uint64_t StepCount = 0; ///< dynamic instruction count
  std::vector<CallTraceEntry> Trace;
  uint64_t GlobalMemoryHash = 0;
  std::string TrapReason;

  bool ok() const { return St == Status::Ok; }
};

/// Interprets functions of one module. Construction "loads" the module:
/// globals receive deterministic pseudo-random initial contents derived
/// from EnvSeed.
class Interpreter {
public:
  Interpreter(Module &M, const ExecOptions &Opts = ExecOptions());

  /// Interprets a linked module group: the globals of every module in
  /// \p Group are laid out (in group order) into one arena, so merged
  /// functions whose bodies reference globals from several modules —
  /// exactly what cross-module merging produces — execute correctly.
  /// Group order is part of the memory-layout determinism contract:
  /// compare only runs constructed over the same module order.
  Interpreter(const std::vector<Module *> &Group,
              const ExecOptions &Opts = ExecOptions());

  /// Runs \p F with \p Args (must match the signature).
  ExecResult run(Function *F, const std::vector<RuntimeValue> &Args);

  /// Resets globals/heap to the initial deterministic state so that
  /// repeated runs are independent.
  void resetMemory();

  /// Registers a native handler for a declared function (overrides the
  /// hash-based default). The handler sees raw argument bits.
  using NativeHandler =
      std::function<RuntimeValue(const std::vector<RuntimeValue> &)>;
  void registerNative(const std::string &Name, NativeHandler H);

private:
  friend class ExecState;
  std::vector<Module *> Mods; ///< the loaded group (size 1 = classic)
  ExecOptions Opts;
  std::vector<uint8_t> Memory; ///< flat arena: [null page][globals][stack]
  size_t StackBase = 0;        ///< start of the stack region
  std::map<const GlobalVariable *, uint64_t> GlobalAddr;
  std::map<std::string, NativeHandler> Natives;
};

/// Compares two results for behavioural equivalence: status, return bits,
/// call traces and final global memory. Used by the merge tests.
bool behaviourallyEqual(const ExecResult &A, const ExecResult &B);

} // namespace salssa

#endif // SALSSA_INTERP_INTERPRETER_H
