//===- interp/Interpreter.cpp - IR interpreter ---------------------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"
#include "support/RNG.h"
#include <algorithm>
#include <cstring>

using namespace salssa;

namespace {

uint64_t hashCombine(uint64_t H, uint64_t V) {
  return mix64(H ^ (V + 0x9e3779b97f4a7c15ULL + (H << 6) + (H >> 2)));
}

uint64_t truncateToWidth(uint64_t Bits, unsigned Width) {
  if (Width >= 64)
    return Bits;
  return Bits & ((uint64_t(1) << Width) - 1);
}

int64_t signExtend(uint64_t Bits, unsigned Width) {
  if (Width >= 64)
    return static_cast<int64_t>(Bits);
  uint64_t SignBit = uint64_t(1) << (Width - 1);
  if (Bits & SignBit)
    return static_cast<int64_t>(Bits | ~((uint64_t(1) << Width) - 1));
  return static_cast<int64_t>(Bits);
}

} // namespace

Interpreter::Interpreter(Module &M, const ExecOptions &Opts)
    : Mods{&M}, Opts(Opts) {
  resetMemory();
}

Interpreter::Interpreter(const std::vector<Module *> &Group,
                         const ExecOptions &Opts)
    : Mods(Group), Opts(Opts) {
  resetMemory();
}

void Interpreter::resetMemory() {
  // Layout: one reserved null page, then the globals of every loaded
  // module in group order, then the stack region.
  const size_t NullPage = 64;
  size_t Total = NullPage;
  GlobalAddr.clear();
  for (Module *M : Mods)
    for (const auto &G : M->globals()) {
      GlobalAddr[G.get()] = Total;
      Total += std::max<size_t>(G->getStorageSize(), 1);
      Total = (Total + 7) & ~size_t(7);
    }
  StackBase = Total;
  const size_t StackBytes = 1 << 20;
  Memory.assign(Total + StackBytes, 0);
  // Deterministic pseudo-random initial contents for globals.
  for (Module *M : Mods)
    for (const auto &G : M->globals()) {
      uint64_t Addr = GlobalAddr[G.get()];
      uint64_t H = hashCombine(Opts.EnvSeed, std::hash<std::string>{}(
                                                 G->getName()));
      for (unsigned I = 0; I < G->getStorageSize(); ++I)
        Memory[Addr + I] = static_cast<uint8_t>(mix64(H + I));
    }
}

void Interpreter::registerNative(const std::string &Name, NativeHandler H) {
  Natives[Name] = std::move(H);
}

namespace salssa {

/// Per-run machine state (frames share the interpreter's memory arena).
class ExecState {
public:
  ExecState(Interpreter &Interp, ExecResult &Result)
      : I(Interp), R(Result), StackTop(Interp.StackBase) {}

  /// Executes \p F; fills R.Return on success. Returns false when
  /// execution stopped (trap / fuel / unhandled exception propagating).
  /// \p ExceptionOut is set when the function completed by throwing.
  bool callFunction(Function *F, const std::vector<RuntimeValue> &Args,
                    RuntimeValue &RetOut, bool &ThrewOut, unsigned Depth);

private:
  struct Frame {
    std::map<const Value *, RuntimeValue> Regs;
    size_t SavedStackTop;
  };

  bool trap(const std::string &Why) {
    R.St = ExecResult::Status::Trap;
    R.TrapReason = Why;
    return false;
  }

  RuntimeValue evalOperand(const Value *V, Frame &Fr);
  bool execExternalCall(const CallBase *CB, Frame &Fr, RuntimeValue &Out,
                        bool MayThrow, bool &Threw);
  bool loadFrom(uint64_t Addr, Type *Ty, RuntimeValue &Out);
  bool storeTo(uint64_t Addr, Type *Ty, const RuntimeValue &V);

  Interpreter &I;
  ExecResult &R;
  size_t StackTop;
};

} // namespace salssa

RuntimeValue ExecState::evalOperand(const Value *V, Frame &Fr) {
  if (const auto *C = dyn_cast<ConstantInt>(V))
    return RuntimeValue::makeInt(C->getZExtValue());
  if (const auto *C = dyn_cast<ConstantFP>(V))
    return RuntimeValue::makeFP(C->getValue());
  if (isa<UndefValue>(V)) {
    // A deterministic arbitrary value: undef reads must never influence
    // observable behaviour in well-formed merged code, but keeping it
    // stable makes accidental dependencies reproducible and testable.
    RuntimeValue U = RuntimeValue::makeInt(0xDEADDEADDEADDEADULL);
    if (V->getType()->isFloatingPoint())
      return RuntimeValue::makeFP(0.0);
    return U;
  }
  if (isa<ConstantPointerNull>(V))
    return RuntimeValue::makePtr(0);
  if (const auto *G = dyn_cast<GlobalVariable>(V))
    return RuntimeValue::makePtr(I.GlobalAddr.at(G));
  auto It = Fr.Regs.find(V);
  assert(It != Fr.Regs.end() && "operand evaluated before definition");
  return It->second;
}

bool ExecState::loadFrom(uint64_t Addr, Type *Ty, RuntimeValue &Out) {
  unsigned Size = Ty->getStoreSize();
  // Overflow-safe bounds check: Addr may be any 64-bit value (wild
  // pointer arithmetic), so never compute Addr + Size.
  if (Addr < 64 || Addr >= I.Memory.size() ||
      Size > I.Memory.size() - Addr)
    return trap("out-of-bounds or null load");
  uint64_t Bits = 0;
  std::memcpy(&Bits, &I.Memory[Addr], Size);
  if (Ty->isFloat()) {
    float FV;
    std::memcpy(&FV, &I.Memory[Addr], 4);
    Out = RuntimeValue::makeFP(FV);
  } else if (Ty->isDouble()) {
    double DV;
    std::memcpy(&DV, &I.Memory[Addr], 8);
    Out = RuntimeValue::makeFP(DV);
  } else if (Ty->isPointer()) {
    Out = RuntimeValue::makePtr(Bits);
  } else {
    Out = RuntimeValue::makeInt(truncateToWidth(Bits, Ty->getIntegerBitWidth()));
  }
  return true;
}

bool ExecState::storeTo(uint64_t Addr, Type *Ty, const RuntimeValue &V) {
  unsigned Size = Ty->getStoreSize();
  if (Addr < 64 || Addr >= I.Memory.size() ||
      Size > I.Memory.size() - Addr)
    return trap("out-of-bounds or null store");
  if (Ty->isFloat()) {
    float FV = static_cast<float>(V.FPVal);
    std::memcpy(&I.Memory[Addr], &FV, 4);
  } else if (Ty->isDouble()) {
    std::memcpy(&I.Memory[Addr], &V.FPVal, 8);
  } else {
    uint64_t Bits = V.Bits;
    std::memcpy(&I.Memory[Addr], &Bits, Size);
  }
  return true;
}

bool ExecState::execExternalCall(const CallBase *CB, Frame &Fr,
                                 RuntimeValue &Out, bool MayThrow,
                                 bool &Threw) {
  Function *Callee = CB->getCallee();
  CallTraceEntry Entry;
  Entry.Callee = Callee->getName();
  std::vector<RuntimeValue> Args;
  uint64_t H = hashCombine(I.Opts.EnvSeed,
                           std::hash<std::string>{}(Callee->getName()));
  for (unsigned K = 0; K < CB->getNumArgs(); ++K) {
    RuntimeValue AV = evalOperand(CB->getArg(K), Fr);
    Args.push_back(AV);
    uint64_t ArgBits =
        AV.K == RuntimeValue::Kind::FP
            ? static_cast<uint64_t>(static_cast<int64_t>(AV.FPVal * 4096.0))
            : AV.Bits;
    Entry.Args.push_back(ArgBits);
    H = hashCombine(H, ArgBits);
  }

  Threw = false;
  if (MayThrow && I.Opts.ExternalThrowPercent > 0 &&
      (mix64(H ^ 0x7477726f77ULL) % 100) < I.Opts.ExternalThrowPercent)
    Threw = true;

  auto NIt = I.Natives.find(Callee->getName());
  if (NIt != I.Natives.end()) {
    Out = NIt->second(Args);
  } else {
    Type *RetTy = Callee->getReturnType();
    if (RetTy->isFloatingPoint())
      Out = RuntimeValue::makeFP(
          static_cast<double>(mix64(H) % 65536) / 256.0);
    else if (RetTy->isPointer())
      Out = RuntimeValue::makePtr(0); // externals hand back null pointers
    else if (RetTy->isInteger())
      Out = RuntimeValue::makeInt(
          truncateToWidth(mix64(H), RetTy->getIntegerBitWidth()));
    else
      Out = RuntimeValue::makeUndef();
  }
  Entry.Result = Out.Bits;
  if (Out.K == RuntimeValue::Kind::FP)
    Entry.Result = static_cast<uint64_t>(
        static_cast<int64_t>(Out.FPVal * 4096.0));
  Entry.Threw = Threw;
  R.Trace.push_back(std::move(Entry));
  return true;
}

bool ExecState::callFunction(Function *F,
                             const std::vector<RuntimeValue> &Args,
                             RuntimeValue &RetOut, bool &ThrewOut,
                             unsigned Depth) {
  ThrewOut = false;
  if (Depth > I.Opts.MaxCallDepth)
    return trap("call depth exceeded");
  assert(!F->isDeclaration() && "callFunction on a declaration");
  assert(Args.size() == F->getNumArgs() && "argument count mismatch");

  Frame Fr;
  Fr.SavedStackTop = StackTop;
  for (unsigned K = 0; K < F->getNumArgs(); ++K)
    Fr.Regs[F->getArg(K)] = Args[K];

  BasicBlock *BB = F->getEntryBlock();
  BasicBlock *PrevBB = nullptr;

  while (true) {
    // Phase 1: evaluate all phis against the edge PrevBB->BB atomically.
    std::vector<std::pair<const PhiInst *, RuntimeValue>> PhiValues;
    for (const PhiInst *P : BB->phis()) {
      int Idx = P->indexOfBlock(PrevBB);
      if (Idx < 0)
        return trap("phi without entry for executed edge");
      PhiValues.push_back(
          {P, evalOperand(P->getIncomingValue(static_cast<unsigned>(Idx)),
                          Fr)});
      ++R.StepCount;
    }
    for (auto &[P, V] : PhiValues)
      Fr.Regs[P] = V;

    // Phase 2: straight-line execution to the terminator.
    const Instruction *Term = nullptr;
    bool Transferred = false;
    for (auto It = BB->begin(); It != BB->end() && !Transferred; ++It) {
      const Instruction *Ins = *It;
      if (Ins->isPhi())
        continue;
      if (++R.StepCount > I.Opts.MaxSteps) {
        R.St = ExecResult::Status::OutOfFuel;
        return false;
      }

      switch (Ins->getOpcode()) {
      case ValueKind::Alloca: {
        const auto *A = cast<AllocaInst>(Ins);
        StackTop = (StackTop + 7) & ~size_t(7);
        uint64_t Addr = StackTop;
        StackTop += std::max(1u, A->getAllocationSize());
        if (StackTop > I.Memory.size())
          return trap("stack overflow");
        Fr.Regs[Ins] = RuntimeValue::makePtr(Addr);
        break;
      }
      case ValueKind::Load: {
        const auto *L = cast<LoadInst>(Ins);
        RuntimeValue P = evalOperand(L->getPointerOperand(), Fr);
        RuntimeValue Out;
        if (!loadFrom(P.Bits, L->getType(), Out))
          return false;
        Fr.Regs[Ins] = Out;
        break;
      }
      case ValueKind::Store: {
        const auto *S = cast<StoreInst>(Ins);
        RuntimeValue P = evalOperand(S->getPointerOperand(), Fr);
        RuntimeValue V = evalOperand(S->getValueOperand(), Fr);
        if (!storeTo(P.Bits, S->getValueOperand()->getType(), V))
          return false;
        break;
      }
      case ValueKind::Gep: {
        const auto *G = cast<GepInst>(Ins);
        RuntimeValue Base = evalOperand(G->getBaseOperand(), Fr);
        RuntimeValue Idx = evalOperand(G->getIndexOperand(), Fr);
        int64_t SIdx = signExtend(
            Idx.Bits, G->getIndexOperand()->getType()->getIntegerBitWidth());
        uint64_t Addr =
            Base.Bits +
            static_cast<uint64_t>(SIdx *
                                  static_cast<int64_t>(
                                      G->getElementType()->getStoreSize()));
        Fr.Regs[Ins] = RuntimeValue::makePtr(Addr);
        break;
      }
      case ValueKind::Select: {
        const auto *S = cast<SelectInst>(Ins);
        RuntimeValue C = evalOperand(S->getCondition(), Fr);
        Fr.Regs[Ins] = (C.Bits & 1)
                           ? evalOperand(S->getTrueValue(), Fr)
                           : evalOperand(S->getFalseValue(), Fr);
        break;
      }
      case ValueKind::ICmp: {
        const auto *C = cast<ICmpInst>(Ins);
        RuntimeValue L = evalOperand(C->getLHS(), Fr);
        RuntimeValue Rv = evalOperand(C->getRHS(), Fr);
        Type *OpTy = C->getLHS()->getType();
        unsigned W = OpTy->isPointer() ? 64 : OpTy->getIntegerBitWidth();
        uint64_t A = truncateToWidth(L.Bits, W);
        uint64_t B = truncateToWidth(Rv.Bits, W);
        int64_t SA = signExtend(A, W), SB = signExtend(B, W);
        bool Res = false;
        switch (C->getPredicate()) {
        case CmpPredicate::EQ:
          Res = A == B;
          break;
        case CmpPredicate::NE:
          Res = A != B;
          break;
        case CmpPredicate::SLT:
          Res = SA < SB;
          break;
        case CmpPredicate::SLE:
          Res = SA <= SB;
          break;
        case CmpPredicate::SGT:
          Res = SA > SB;
          break;
        case CmpPredicate::SGE:
          Res = SA >= SB;
          break;
        case CmpPredicate::ULT:
          Res = A < B;
          break;
        case CmpPredicate::ULE:
          Res = A <= B;
          break;
        case CmpPredicate::UGT:
          Res = A > B;
          break;
        case CmpPredicate::UGE:
          Res = A >= B;
          break;
        }
        Fr.Regs[Ins] = RuntimeValue::makeInt(Res ? 1 : 0);
        break;
      }
      case ValueKind::FCmp: {
        const auto *C = cast<FCmpInst>(Ins);
        double A = evalOperand(C->getLHS(), Fr).FPVal;
        double B = evalOperand(C->getRHS(), Fr).FPVal;
        bool Res = false;
        switch (C->getPredicate()) {
        case CmpPredicate::EQ:
          Res = A == B;
          break;
        case CmpPredicate::NE:
          Res = A != B;
          break;
        case CmpPredicate::SLT:
          Res = A < B;
          break;
        case CmpPredicate::SLE:
          Res = A <= B;
          break;
        case CmpPredicate::SGT:
          Res = A > B;
          break;
        case CmpPredicate::SGE:
          Res = A >= B;
          break;
        default:
          return trap("bad fcmp predicate");
        }
        Fr.Regs[Ins] = RuntimeValue::makeInt(Res ? 1 : 0);
        break;
      }
      case ValueKind::ZExt: {
        RuntimeValue V = evalOperand(Ins->getOperand(0), Fr);
        unsigned SrcW = Ins->getOperand(0)->getType()->getIntegerBitWidth();
        Fr.Regs[Ins] = RuntimeValue::makeInt(truncateToWidth(V.Bits, SrcW));
        break;
      }
      case ValueKind::SExt: {
        RuntimeValue V = evalOperand(Ins->getOperand(0), Fr);
        unsigned SrcW = Ins->getOperand(0)->getType()->getIntegerBitWidth();
        unsigned DstW = Ins->getType()->getIntegerBitWidth();
        Fr.Regs[Ins] = RuntimeValue::makeInt(truncateToWidth(
            static_cast<uint64_t>(signExtend(V.Bits, SrcW)), DstW));
        break;
      }
      case ValueKind::Trunc: {
        RuntimeValue V = evalOperand(Ins->getOperand(0), Fr);
        Fr.Regs[Ins] = RuntimeValue::makeInt(
            truncateToWidth(V.Bits, Ins->getType()->getIntegerBitWidth()));
        break;
      }
      case ValueKind::SIToFP: {
        RuntimeValue V = evalOperand(Ins->getOperand(0), Fr);
        unsigned SrcW = Ins->getOperand(0)->getType()->getIntegerBitWidth();
        Fr.Regs[Ins] = RuntimeValue::makeFP(
            static_cast<double>(signExtend(V.Bits, SrcW)));
        break;
      }
      case ValueKind::FPToSI: {
        RuntimeValue V = evalOperand(Ins->getOperand(0), Fr);
        Fr.Regs[Ins] = RuntimeValue::makeInt(truncateToWidth(
            static_cast<uint64_t>(static_cast<int64_t>(V.FPVal)),
            Ins->getType()->getIntegerBitWidth()));
        break;
      }
      case ValueKind::LandingPad:
        // The token is opaque; nothing to compute.
        Fr.Regs[Ins] = RuntimeValue::makePtr(0);
        break;
      case ValueKind::Call: {
        const auto *CB = cast<CallInst>(Ins);
        RuntimeValue Out;
        if (CB->getCallee()->isDeclaration()) {
          bool Threw = false;
          if (!execExternalCall(CB, Fr, Out, /*MayThrow=*/false, Threw))
            return false;
        } else {
          std::vector<RuntimeValue> CallArgs;
          for (unsigned K = 0; K < CB->getNumArgs(); ++K)
            CallArgs.push_back(evalOperand(CB->getArg(K), Fr));
          bool CalleeThrew = false;
          if (!callFunction(CB->getCallee(), CallArgs, Out, CalleeThrew,
                            Depth + 1))
            return false;
          if (CalleeThrew) {
            // A plain call cannot catch: propagate upward.
            ThrewOut = true;
            StackTop = Fr.SavedStackTop;
            return true;
          }
        }
        if (!Ins->getType()->isVoid())
          Fr.Regs[Ins] = Out;
        break;
      }
      case ValueKind::Invoke: {
        const auto *Inv = cast<InvokeInst>(Ins);
        RuntimeValue Out;
        bool Threw = false;
        if (Inv->getCallee()->isDeclaration()) {
          if (!execExternalCall(Inv, Fr, Out, /*MayThrow=*/true, Threw))
            return false;
        } else {
          std::vector<RuntimeValue> CallArgs;
          for (unsigned K = 0; K < Inv->getNumArgs(); ++K)
            CallArgs.push_back(evalOperand(Inv->getArg(K), Fr));
          if (!callFunction(Inv->getCallee(), CallArgs, Out, Threw,
                            Depth + 1))
            return false;
        }
        if (!Ins->getType()->isVoid() && !Threw)
          Fr.Regs[Ins] = Out;
        PrevBB = BB;
        BB = Threw ? Inv->getUnwindDest() : Inv->getNormalDest();
        Transferred = true;
        break;
      }
      case ValueKind::Resume:
        ThrewOut = true;
        StackTop = Fr.SavedStackTop;
        return true;
      case ValueKind::Br: {
        const auto *Br = cast<BranchInst>(Ins);
        PrevBB = BB;
        if (Br->isConditional()) {
          RuntimeValue C = evalOperand(Br->getCondition(), Fr);
          BB = (C.Bits & 1) ? Br->getTrueDest() : Br->getFalseDest();
        } else {
          BB = Br->getTrueDest();
        }
        Transferred = true;
        break;
      }
      case ValueKind::Switch: {
        const auto *SW = cast<SwitchInst>(Ins);
        RuntimeValue C = evalOperand(SW->getCondition(), Fr);
        unsigned W = SW->getCondition()->getType()->getIntegerBitWidth();
        uint64_t CV = truncateToWidth(C.Bits, W);
        BasicBlock *Target = SW->getDefaultDest();
        for (unsigned K = 0; K < SW->getNumCases(); ++K)
          if (SW->getCaseValue(K)->getZExtValue() == CV) {
            Target = SW->getCaseDest(K);
            break;
          }
        PrevBB = BB;
        BB = Target;
        Transferred = true;
        break;
      }
      case ValueKind::Ret: {
        const auto *Rt = cast<RetInst>(Ins);
        RetOut = Rt->hasReturnValue()
                     ? evalOperand(Rt->getReturnValue(), Fr)
                     : RuntimeValue::makeUndef();
        StackTop = Fr.SavedStackTop;
        return true;
      }
      case ValueKind::Unreachable:
        return trap("executed unreachable");
      default: {
        // Binary operators.
        const auto *BO = cast<BinaryOperator>(Ins);
        RuntimeValue L = evalOperand(BO->getLHS(), Fr);
        RuntimeValue Rv = evalOperand(BO->getRHS(), Fr);
        Type *Ty = BO->getType();
        if (Ty->isFloatingPoint()) {
          double A = L.FPVal, B = Rv.FPVal, Res = 0;
          switch (BO->getOpcode()) {
          case ValueKind::FAdd:
            Res = A + B;
            break;
          case ValueKind::FSub:
            Res = A - B;
            break;
          case ValueKind::FMul:
            Res = A * B;
            break;
          case ValueKind::FDiv:
            Res = B == 0 ? 0 : A / B; // deterministic; avoids inf/nan noise
            break;
          default:
            return trap("fp op on int opcode");
          }
          if (Ty->isFloat())
            Res = static_cast<float>(Res);
          Fr.Regs[Ins] = RuntimeValue::makeFP(Res);
          break;
        }
        unsigned W = Ty->getIntegerBitWidth();
        uint64_t A = truncateToWidth(L.Bits, W);
        uint64_t B = truncateToWidth(Rv.Bits, W);
        int64_t SA = signExtend(A, W), SB = signExtend(B, W);
        uint64_t Res = 0;
        switch (BO->getOpcode()) {
        case ValueKind::Add:
          Res = A + B;
          break;
        case ValueKind::Sub:
          Res = A - B;
          break;
        case ValueKind::Mul:
          Res = A * B;
          break;
        case ValueKind::SDiv:
          if (SB == 0)
            return trap("sdiv by zero");
          if (SA == INT64_MIN && SB == -1)
            return trap("sdiv overflow");
          Res = static_cast<uint64_t>(SA / SB);
          break;
        case ValueKind::UDiv:
          if (B == 0)
            return trap("udiv by zero");
          Res = A / B;
          break;
        case ValueKind::SRem:
          if (SB == 0)
            return trap("srem by zero");
          if (SA == INT64_MIN && SB == -1)
            return trap("srem overflow");
          Res = static_cast<uint64_t>(SA % SB);
          break;
        case ValueKind::URem:
          if (B == 0)
            return trap("urem by zero");
          Res = A % B;
          break;
        case ValueKind::And:
          Res = A & B;
          break;
        case ValueKind::Or:
          Res = A | B;
          break;
        case ValueKind::Xor:
          Res = A ^ B;
          break;
        case ValueKind::Shl:
          Res = B >= W ? 0 : A << B;
          break;
        case ValueKind::LShr:
          Res = B >= W ? 0 : A >> B;
          break;
        case ValueKind::AShr:
          Res = B >= W ? (SA < 0 ? ~uint64_t(0) : 0)
                       : static_cast<uint64_t>(SA >> B);
          break;
        default:
          return trap("unhandled opcode");
        }
        Fr.Regs[Ins] = RuntimeValue::makeInt(truncateToWidth(Res, W));
        break;
      }
      }
      Term = Ins;
      (void)Term;
    }
    if (!Transferred)
      return trap("fell off the end of a block");
  }
}

ExecResult Interpreter::run(Function *F,
                            const std::vector<RuntimeValue> &Args) {
  ExecResult R;
  ExecState State(*this, R);
  RuntimeValue Ret;
  bool Threw = false;
  bool Completed = State.callFunction(F, Args, Ret, Threw, 0);
  if (Completed) {
    if (Threw)
      R.St = ExecResult::Status::UnhandledException;
    else
      R.Return = Ret;
  }
  R.StepCount = R.StepCount; // already accumulated
  // Hash of global memory (observable heap state).
  uint64_t H = 0xcbf29ce484222325ULL;
  for (size_t A = 64; A < StackBase; ++A)
    H = (H ^ Memory[A]) * 0x100000001b3ULL;
  R.GlobalMemoryHash = H;
  return R;
}

bool salssa::behaviourallyEqual(const ExecResult &A, const ExecResult &B) {
  // Fuel exhaustion cuts execution at an arbitrary point; two programs with
  // different per-iteration instruction counts (e.g. original vs merged)
  // stop mid-loop at different places. Only the common prefix of externally
  // observable behaviour is comparable then.
  if (A.St == ExecResult::Status::OutOfFuel ||
      B.St == ExecResult::Status::OutOfFuel) {
    size_t N = std::min(A.Trace.size(), B.Trace.size());
    for (size_t I = 0; I < N; ++I)
      if (!(A.Trace[I] == B.Trace[I]))
        return false;
    return true;
  }
  if (A.St != B.St)
    return false;
  if (A.Trace.size() != B.Trace.size())
    return false;
  for (size_t I = 0; I < A.Trace.size(); ++I)
    if (!(A.Trace[I] == B.Trace[I]))
      return false;
  if (A.GlobalMemoryHash != B.GlobalMemoryHash)
    return false;
  if (A.St == ExecResult::Status::Ok) {
    if (A.Return.K != B.Return.K)
      return false;
    if (A.Return.K == RuntimeValue::Kind::FP)
      return A.Return.FPVal == B.Return.FPVal;
    if (A.Return.K != RuntimeValue::Kind::Undef)
      return A.Return.Bits == B.Return.Bits;
  }
  return true;
}
