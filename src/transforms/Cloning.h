//===- transforms/Cloning.h - IR cloning utilities ----------------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Instruction and function cloning with value/block remapping. The merge
/// code generators clone instructions from the two input functions into the
/// merged function and then remap operands through their value maps; the
/// driver clones whole functions for rollback when a merge turns out to be
/// unprofitable.
///
//===----------------------------------------------------------------------===//

#ifndef SALSSA_TRANSFORMS_CLONING_H
#define SALSSA_TRANSFORMS_CLONING_H

#include <map>
#include <string>

namespace salssa {

class BasicBlock;
class Context;
class Function;
class GlobalVariable;
class Instruction;
class Module;
class Value;

/// Maps original values/blocks to their clones.
struct CloneMaps {
  std::map<const Value *, Value *> Values;
  std::map<const BasicBlock *, BasicBlock *> Blocks;

  /// Lookup with identity fallback (constants and globals map to
  /// themselves).
  Value *lookup(Value *V) const;
  BasicBlock *lookup(BasicBlock *BB) const;
};

/// Creates an unlinked copy of \p I referencing the *original* operands,
/// successors and incoming blocks; call remapInstruction afterwards. The
/// clone does not inherit the name.
Instruction *cloneInstruction(const Instruction *I, Context &Ctx);

/// Rewrites operands, successors and phi incoming blocks of \p I through
/// \p Maps (identity for unmapped entries).
void remapInstruction(Instruction *I, const CloneMaps &Maps);

/// Deep-copies \p F into a new function \p NewName in the same module.
Function *cloneFunction(const Function *F, const std::string &NewName);

/// Deep-copies \p F into \p TargetModule (which must share F's Context)
/// as \p NewName. \p ValueMap pre-seeds operand remapping — the caller
/// supplies it to redirect module-owned values (globals) from F's module
/// to their counterparts in \p TargetModule; unmapped values (constants,
/// Context-owned) pass through unchanged. \p CalleeMap rewrites
/// call/invoke targets: callees are direct Function pointers, not
/// operands, so CloneMaps cannot carry them. Cross-module clones with an
/// incomplete ValueMap keep operand references into the source module;
/// such module sets must then be owned by a ModuleGroup (see ir/Module.h)
/// so teardown stays safe.
Function *
cloneFunctionInto(const Function *F, Module &TargetModule,
                  const std::string &NewName,
                  const std::map<const Value *, Value *> &ValueMap,
                  const std::map<const Function *, Function *> &CalleeMap);

} // namespace salssa

#endif // SALSSA_TRANSFORMS_CLONING_H
