//===- transforms/Cloning.cpp - IR cloning utilities ---------------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//

#include "transforms/Cloning.h"
#include "ir/Context.h"
#include "ir/IRBuilder.h"
#include "ir/Module.h"

using namespace salssa;

Value *CloneMaps::lookup(Value *V) const {
  auto It = Values.find(V);
  return It == Values.end() ? V : It->second;
}

BasicBlock *CloneMaps::lookup(BasicBlock *BB) const {
  auto It = Blocks.find(BB);
  return It == Blocks.end() ? BB : It->second;
}

Instruction *salssa::cloneInstruction(const Instruction *I, Context &Ctx) {
  // The clone's operand slots hold the *original* operands as
  // placeholders until the caller rewrites them (remapInstruction /
  // MergedFunctionGenerator::resolveOperands, via User::initOperand).
  // Suspend use registration so the placeholders never touch the
  // originals' user lists: those originals may be shared with merge
  // attempts running on other threads, and a registered-then-removed
  // placeholder use would be a data race (and was, before this scope
  // existed).
  UseTrackingSuspender Suspend;
  auto Operand = [&](unsigned K) {
    return const_cast<Value *>(static_cast<const Value *>(I->getOperand(K)));
  };
  switch (I->getOpcode()) {
  case ValueKind::ICmp: {
    const auto *C = cast<ICmpInst>(I);
    return new ICmpInst(C->getPredicate(), Operand(0), Operand(1),
                        Ctx.int1Ty());
  }
  case ValueKind::FCmp: {
    const auto *C = cast<FCmpInst>(I);
    return new FCmpInst(C->getPredicate(), Operand(0), Operand(1),
                        Ctx.int1Ty());
  }
  case ValueKind::Select:
    return new SelectInst(Operand(0), Operand(1), Operand(2));
  case ValueKind::ZExt:
  case ValueKind::SExt:
  case ValueKind::Trunc:
  case ValueKind::SIToFP:
  case ValueKind::FPToSI:
    return new CastInst(I->getOpcode(), Operand(0), I->getType());
  case ValueKind::Alloca: {
    const auto *A = cast<AllocaInst>(I);
    return new AllocaInst(A->getAllocatedType(), A->getType(),
                          A->getNumElements());
  }
  case ValueKind::Load:
    return new LoadInst(I->getType(), Operand(0));
  case ValueKind::Store:
    return new StoreInst(Operand(0), Operand(1), Ctx.voidTy());
  case ValueKind::Gep: {
    const auto *G = cast<GepInst>(I);
    return new GepInst(G->getElementType(), Operand(0), Operand(1),
                       G->getType());
  }
  case ValueKind::Call: {
    const auto *C = cast<CallInst>(I);
    std::vector<Value *> Args;
    for (unsigned K = 0; K < C->getNumArgs(); ++K)
      Args.push_back(Operand(K));
    return new CallInst(C->getCallee(), Args, I->getType());
  }
  case ValueKind::Invoke: {
    const auto *C = cast<InvokeInst>(I);
    std::vector<Value *> Args;
    for (unsigned K = 0; K < C->getNumArgs(); ++K)
      Args.push_back(Operand(K));
    return new InvokeInst(C->getCallee(), Args, I->getType(),
                          C->getNormalDest(), C->getUnwindDest());
  }
  case ValueKind::LandingPad:
    return new LandingPadInst(I->getType(),
                              cast<LandingPadInst>(I)->isCleanup());
  case ValueKind::Resume:
    return new ResumeInst(Operand(0), Ctx.voidTy());
  case ValueKind::Phi: {
    const auto *P = cast<PhiInst>(I);
    auto *NewP = new PhiInst(P->getType());
    for (unsigned K = 0; K < P->getNumIncoming(); ++K)
      NewP->addIncoming(
          const_cast<Value *>(
              static_cast<const Value *>(P->getIncomingValue(K))),
          P->getIncomingBlock(K));
    return NewP;
  }
  case ValueKind::Br: {
    const auto *B = cast<BranchInst>(I);
    if (B->isConditional())
      return new BranchInst(Operand(0), B->getTrueDest(), B->getFalseDest(),
                            Ctx.voidTy());
    return new BranchInst(B->getTrueDest(), Ctx.voidTy());
  }
  case ValueKind::Switch: {
    const auto *S = cast<SwitchInst>(I);
    auto *NewS = new SwitchInst(Operand(0), S->getDefaultDest(), Ctx.voidTy());
    for (unsigned K = 0; K < S->getNumCases(); ++K)
      NewS->addCase(S->getCaseValue(K), S->getCaseDest(K));
    return NewS;
  }
  case ValueKind::Ret: {
    const auto *R = cast<RetInst>(I);
    if (R->hasReturnValue())
      return new RetInst(Operand(0), Ctx.voidTy());
    return new RetInst(Ctx.voidTy());
  }
  case ValueKind::Unreachable:
    return new UnreachableInst(Ctx.voidTy());
  default:
    assert(isa<BinaryOperator>(I) && "unhandled opcode in cloneInstruction");
    return new BinaryOperator(I->getOpcode(), Operand(0), Operand(1));
  }
}

void salssa::remapInstruction(Instruction *I, const CloneMaps &Maps) {
  // initOperand, not setOperand: the slots still hold cloneInstruction's
  // unregistered placeholders (see above).
  for (unsigned K = 0; K < I->getNumOperands(); ++K)
    I->initOperand(K, Maps.lookup(I->getOperand(K)));
  for (unsigned K = 0; K < I->getNumSuccessors(); ++K)
    I->setSuccessor(K, Maps.lookup(I->getSuccessor(K)));
  if (auto *P = dyn_cast<PhiInst>(I))
    for (unsigned K = 0; K < P->getNumIncoming(); ++K)
      P->setIncomingBlock(K, Maps.lookup(P->getIncomingBlock(K)));
}

Function *salssa::cloneFunction(const Function *F,
                                const std::string &NewName) {
  return cloneFunctionInto(F, *F->getParent(), NewName, {}, {});
}

Function *salssa::cloneFunctionInto(
    const Function *F, Module &TargetModule, const std::string &NewName,
    const std::map<const Value *, Value *> &ValueMap,
    const std::map<const Function *, Function *> &CalleeMap) {
  Context &Ctx = TargetModule.getContext();
  assert(&Ctx == &F->getParent()->getContext() &&
         "cross-module clone requires a shared Context");
  Function *NewF = TargetModule.createFunction(NewName, F->getFunctionType());

  CloneMaps Maps;
  Maps.Values.insert(ValueMap.begin(), ValueMap.end());
  for (unsigned I = 0; I < F->getNumArgs(); ++I) {
    Maps.Values[F->getArg(I)] = NewF->getArg(I);
    NewF->getArg(I)->setName(F->getArg(I)->getName());
  }
  for (const BasicBlock *BB : *F)
    Maps.Blocks[BB] = NewF->createBlock(BB->getName());
  for (const BasicBlock *BB : *F) {
    BasicBlock *NewBB = Maps.Blocks.at(BB);
    for (const Instruction *I : *BB) {
      Instruction *NewI = cloneInstruction(I, Ctx);
      NewI->setName(I->getName());
      NewBB->push_back(NewI);
      Maps.Values[I] = NewI;
    }
  }
  for (BasicBlock *BB : *NewF)
    for (Instruction *I : *BB) {
      remapInstruction(I, Maps);
      // Callees are direct Function pointers, outside CloneMaps' reach.
      if (auto *CB = dyn_cast<CallBase>(I)) {
        auto It = CalleeMap.find(CB->getCallee());
        if (It != CalleeMap.end())
          CB->setCallee(It->second);
      }
    }
  return NewF;
}
