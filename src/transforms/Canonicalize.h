//===- transforms/Canonicalize.h - Canonical shadow view for hashing ----------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic normalization pipeline behind
/// `MergeDriverOptions::Canonicalize`. Fingerprints and structural hashes
/// see raw syntax: two semantically equal functions written differently
/// (commuted operands, renamed temporaries, reassociated chains, dead
/// stores) rank far apart and never merge. This pass family produces a
/// canonical *shadow* view of a function — a scratch-module clone that is
/// simplified, commutative-ordered, reassociated, value-numbered and
/// dead-code-swept to a fixpoint, then renumbered — and computes the
/// Fingerprint / StructuralHash from that clone. The original body is
/// never touched: codegen, thunks and the interpreter differential all
/// keep seeing exactly what the frontend produced.
///
/// Everything here is deterministic and pointer-free in its ordering
/// decisions (instruction ordinals, argument indices, constant value
/// bits, global names), so the canonical StructuralHash is stable across
/// processes and safe to persist in the DecisionCache.
///
//===----------------------------------------------------------------------===//

#ifndef SALSSA_TRANSFORMS_CANONICALIZE_H
#define SALSSA_TRANSFORMS_CANONICALIZE_H

#include "merge/Fingerprint.h"
#include "merge/StructuralHash.h"

namespace salssa {

class Context;
class Function;

/// What the normalization fixpoint did (informational; tests assert
/// idempotence through it).
struct CanonicalizeStats {
  unsigned Iterations = 0;       ///< fixpoint rounds actually run
  unsigned OperandsCommuted = 0; ///< commutative operand swaps
  unsigned ChainsReassociated = 0; ///< integer chains rebuilt left-deep
  unsigned ValuesNumbered = 0;   ///< redundant pure instructions CSE'd
  unsigned DeadStoresSwept = 0;  ///< never-loaded alloca slots removed
  unsigned DeadInstsSwept = 0;   ///< dead code removed (incl. Simplify)
  unsigned ConstantsRespelled = 0; ///< sub-by-constant rewritten as add

  /// True when the fixpoint changed nothing — canonicalizing an
  /// already-canonical body must report this (idempotence).
  bool unchanged() const {
    return OperandsCommuted == 0 && ChainsReassociated == 0 &&
           ValuesNumbered == 0 && DeadStoresSwept == 0 &&
           DeadInstsSwept == 0 && ConstantsRespelled == 0;
  }
};

/// Normalizes \p F in place to its canonical form. Deterministic and
/// idempotent: a second application is a no-op (CanonicalizeStats::
/// unchanged()). Callers that must preserve the original body go through
/// canonicalFingerprint / canonicalStructuralHash below instead, which
/// run this on a scratch-module shadow clone.
CanonicalizeStats canonicalizeFunction(Function &F, Context &Ctx);

/// Fingerprint of \p F's canonical shadow view. Clones \p F into a
/// throwaway scratch module (same Context; globals and callees stay
/// referenced, not copied — constants and globals are not use-tracked,
/// so the scratch teardown leaves no trace), canonicalizes the clone and
/// fingerprints it. \p F itself is read, never written. Thread-safe
/// against concurrent shards: all mutation is scratch-local and Context
/// interning is internally locked.
Fingerprint canonicalFingerprint(const Function &F);

/// StructuralHash of \p F's canonical shadow view (same contract as
/// canonicalFingerprint). Stable across processes: safe as a persistent
/// DecisionCache key.
StructuralHash canonicalStructuralHash(const Function &F);

/// Dispatch helpers so call sites read as one line under the
/// MergeDriverOptions::Canonicalize flag: false routes to the raw
/// computation, bit-identical to the pre-canonicalization pipeline.
Fingerprint fingerprintFor(const Function &F, bool Canonical);
StructuralHash structuralHashFor(const Function &F, bool Canonical);

} // namespace salssa

#endif // SALSSA_TRANSFORMS_CANONICALIZE_H
