//===- transforms/Reg2Mem.cpp - Register demotion ------------------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//

#include "transforms/Reg2Mem.h"
#include "ir/Context.h"
#include "ir/IRBuilder.h"
#include "ir/Module.h"
#include <algorithm>

using namespace salssa;

namespace {

/// True when \p I's value is referenced outside its own basic block (or by
/// a phi, whose use site semantically sits on the incoming edge).
bool isUsedOutsideDefiningBlock(const Instruction *I) {
  for (const User *U : I->users()) {
    const auto *UI = cast<Instruction>(U);
    if (UI->getParent() != I->getParent() || UI->isPhi())
      return true;
  }
  return false;
}

/// Splits the edge Invoke->NormalDest by interposing a fresh block, so a
/// spill store for the invoke's result has a place to live that the invoke
/// dominates. Returns the new block.
BasicBlock *splitInvokeNormalEdge(InvokeInst *Inv, Context &Ctx) {
  BasicBlock *From = Inv->getParent();
  BasicBlock *To = Inv->getNormalDest();
  Function *F = From->getParent();
  BasicBlock *Mid = F->createBlock(From->getName() + ".spill", To);
  IRBuilder B(Ctx, Mid);
  B.createBr(To);
  Inv->setNormalDest(Mid);
  To->replacePhiUsesWith(From, Mid);
  return Mid;
}

/// Spills \p I to a fresh stack slot: a store after the definition and a
/// load in front of every user (for phi users: at the end of the incoming
/// block). Mirrors LLVM's DemoteRegToStack.
void demoteRegToStack(Instruction *I, Context &Ctx) {
  Function *F = I->getFunction();
  IRBuilder B(Ctx);
  // Slot lives in the entry block.
  B.setInsertPoint(F->getEntryBlock()->getFirstNonPhi());
  AllocaInst *Slot =
      B.createAlloca(I->getType(), 1,
                     I->hasName() ? I->getName() + ".slot" : "r2m.slot");

  // Snapshot users before placing the spill store (which is itself a user
  // of I and must not be rewritten).
  std::vector<User *> Users(I->users().begin(), I->users().end());

  // Spill store directly after the definition. For invokes the result is
  // only valid on the normal edge, so interpose a block there first; any
  // phi that consumed the invoke along that edge is retargeted to the new
  // block, and the edge loads below then land after this store.
  if (auto *Inv = dyn_cast<InvokeInst>(I)) {
    BasicBlock *Mid = splitInvokeNormalEdge(Inv, Ctx);
    B.setInsertPoint(Mid->getTerminator());
  } else {
    assert(!I->isTerminator() &&
           "only invokes among terminators produce values");
    // Insert after I (a next instruction exists: I is not a terminator).
    auto Next = std::next(std::find(I->getParent()->begin(),
                                    I->getParent()->end(), I));
    B.setInsertPoint(*Next);
  }
  B.createStore(I, Slot);

  for (User *U : Users) {
    auto *UI = cast<Instruction>(U);
    if (auto *P = dyn_cast<PhiInst>(UI)) {
      // One load per incoming edge that carries I.
      for (unsigned K = 0; K < P->getNumIncoming(); ++K) {
        if (P->getIncomingValue(K) != I)
          continue;
        BasicBlock *Pred = P->getIncomingBlock(K);
        B.setInsertPoint(Pred->getTerminator());
        Value *L = B.createLoad(I->getType(), Slot);
        P->setIncomingValue(K, L);
      }
      continue;
    }
    B.setInsertPoint(UI);
    Value *L = B.createLoad(I->getType(), Slot);
    for (unsigned K = 0; K < UI->getNumOperands(); ++K)
      if (UI->getOperand(K) == I)
        UI->setOperand(K, L);
  }
}

/// Replaces \p P with a stack slot: a store at the end of each incoming
/// block and a single load at the phi position. Mirrors LLVM's
/// DemotePHIToStack. All loads of all demoted phis sit above all edge
/// stores of the block, so mutually-referencing phis (swap/lost-copy
/// patterns) remain correct.
void demotePhiToStack(PhiInst *P, Context &Ctx) {
  Function *F = P->getFunction();
  IRBuilder B(Ctx);
  B.setInsertPoint(F->getEntryBlock()->getFirstNonPhi());
  AllocaInst *Slot = B.createAlloca(
      P->getType(), 1, P->hasName() ? P->getName() + ".slot" : "phi.slot");

  for (unsigned K = 0; K < P->getNumIncoming(); ++K) {
    BasicBlock *Pred = P->getIncomingBlock(K);
    Instruction *T = Pred->getTerminator();
    assert(T && "unterminated predecessor");
    assert(P->getIncomingValue(K) != T && "phi of its own edge terminator");
    B.setInsertPoint(T);
    B.createStore(P->getIncomingValue(K), Slot);
  }

  // The replacement load goes right after the phi section of the block.
  Instruction *FirstNonPhi = P->getParent()->getFirstNonPhi();
  assert(FirstNonPhi && "block with only phis");
  B.setInsertPoint(FirstNonPhi);
  Value *L = B.createLoad(P->getType(), Slot);
  if (P->hasName())
    cast<Instruction>(L)->setName(P->getName() + ".reload");
  P->replaceAllUsesWith(L);
  P->eraseFromParent();
}

} // namespace

Reg2MemStats salssa::demoteRegistersToMemory(Function &F, Context &Ctx) {
  Reg2MemStats Stats;
  Stats.InstructionsBefore = static_cast<unsigned>(F.getInstructionCount());

  // Pass 1: spill every value that crosses a block boundary. Snapshot
  // first; the pass inserts loads/stores while iterating.
  std::vector<Instruction *> CrossBlock;
  for (BasicBlock *BB : F)
    for (Instruction *I : *BB) {
      if (I->isPhi() || I->getType()->isVoid())
        continue;
      if (isa<AllocaInst>(I))
        continue; // slots stay slots
      if (isUsedOutsideDefiningBlock(I))
        CrossBlock.push_back(I);
    }
  for (Instruction *I : CrossBlock) {
    demoteRegToStack(I, Ctx);
    ++Stats.DemotedValues;
  }

  // Pass 2: eliminate every phi.
  std::vector<PhiInst *> Phis;
  for (BasicBlock *BB : F)
    for (Instruction *I : *BB)
      if (auto *P = dyn_cast<PhiInst>(I))
        Phis.push_back(P);
  for (PhiInst *P : Phis) {
    demotePhiToStack(P, Ctx);
    ++Stats.DemotedPhis;
  }

  Stats.InstructionsAfter = static_cast<unsigned>(F.getInstructionCount());
  return Stats;
}
