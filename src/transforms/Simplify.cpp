//===- transforms/Simplify.cpp - Cleanup passes --------------------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//

#include "transforms/Simplify.h"
#include "analysis/Dominators.h"
#include "ir/Context.h"
#include "ir/IRBuilder.h"
#include "ir/Module.h"
#include <algorithm>

using namespace salssa;

namespace {

/// Folds an integer binary op over constant bits (width-truncated by the
/// constant pool). Division by zero stays unfolded (it is UB at runtime;
/// we simply leave the instruction alone).
Value *foldIntBinOp(ValueKind Op, ConstantInt *L, ConstantInt *R,
                    Context &Ctx) {
  Type *Ty = L->getType();
  unsigned W = Ty->getIntegerBitWidth();
  uint64_t A = L->getZExtValue();
  uint64_t B = R->getZExtValue();
  int64_t SA = L->getSExtValue();
  int64_t SB = R->getSExtValue();
  switch (Op) {
  case ValueKind::Add:
    return Ctx.getInt(Ty, A + B);
  case ValueKind::Sub:
    return Ctx.getInt(Ty, A - B);
  case ValueKind::Mul:
    return Ctx.getInt(Ty, A * B);
  case ValueKind::SDiv:
    if (SB == 0 || (SA == INT64_MIN && SB == -1))
      return nullptr;
    return Ctx.getInt(Ty, static_cast<uint64_t>(SA / SB));
  case ValueKind::UDiv:
    return B == 0 ? nullptr : Ctx.getInt(Ty, A / B);
  case ValueKind::SRem:
    if (SB == 0 || (SA == INT64_MIN && SB == -1))
      return nullptr;
    return Ctx.getInt(Ty, static_cast<uint64_t>(SA % SB));
  case ValueKind::URem:
    return B == 0 ? nullptr : Ctx.getInt(Ty, A % B);
  case ValueKind::And:
    return Ctx.getInt(Ty, A & B);
  case ValueKind::Or:
    return Ctx.getInt(Ty, A | B);
  case ValueKind::Xor:
    return Ctx.getInt(Ty, A ^ B);
  case ValueKind::Shl:
    return B >= W ? Ctx.getInt(Ty, 0) : Ctx.getInt(Ty, A << B);
  case ValueKind::LShr:
    return B >= W ? Ctx.getInt(Ty, 0) : Ctx.getInt(Ty, A >> B);
  case ValueKind::AShr:
    return B >= W ? Ctx.getInt(Ty, SA < 0 ? ~uint64_t(0) : 0)
                  : Ctx.getInt(Ty, static_cast<uint64_t>(SA >> B));
  default:
    return nullptr;
  }
}

bool evalICmp(CmpPredicate P, ConstantInt *L, ConstantInt *R) {
  uint64_t A = L->getZExtValue(), B = R->getZExtValue();
  int64_t SA = L->getSExtValue(), SB = R->getSExtValue();
  switch (P) {
  case CmpPredicate::EQ:
    return A == B;
  case CmpPredicate::NE:
    return A != B;
  case CmpPredicate::SLT:
    return SA < SB;
  case CmpPredicate::SLE:
    return SA <= SB;
  case CmpPredicate::SGT:
    return SA > SB;
  case CmpPredicate::SGE:
    return SA >= SB;
  case CmpPredicate::ULT:
    return A < B;
  case CmpPredicate::ULE:
    return A <= B;
  case CmpPredicate::UGT:
    return A > B;
  case CmpPredicate::UGE:
    return A >= B;
  }
  return false;
}

/// Algebraic identities for integer binary ops.
Value *simplifyBinOpIdentities(BinaryOperator *B, Context &Ctx) {
  Value *L = B->getLHS();
  Value *R = B->getRHS();
  auto *RC = dyn_cast<ConstantInt>(R);
  auto *LC = dyn_cast<ConstantInt>(L);
  switch (B->getOpcode()) {
  case ValueKind::Add:
    if (RC && RC->isZero())
      return L;
    if (LC && LC->isZero())
      return R;
    break;
  case ValueKind::Sub:
    if (RC && RC->isZero())
      return L;
    if (L == R)
      return Ctx.getInt(B->getType(), 0);
    break;
  case ValueKind::Mul:
    if (RC && RC->isOne())
      return L;
    if (LC && LC->isOne())
      return R;
    if ((RC && RC->isZero()) || (LC && LC->isZero()))
      return Ctx.getInt(B->getType(), 0);
    break;
  case ValueKind::And:
    if (L == R)
      return L;
    if ((RC && RC->isZero()) || (LC && LC->isZero()))
      return Ctx.getInt(B->getType(), 0);
    break;
  case ValueKind::Or:
    if (L == R)
      return L;
    if (RC && RC->isZero())
      return L;
    if (LC && LC->isZero())
      return R;
    break;
  case ValueKind::Xor:
    if (L == R)
      return Ctx.getInt(B->getType(), 0);
    if (RC && RC->isZero())
      return L;
    if (LC && LC->isZero())
      return R;
    break;
  case ValueKind::Shl:
  case ValueKind::LShr:
  case ValueKind::AShr:
    if (RC && RC->isZero())
      return L;
    break;
  default:
    break;
  }
  return nullptr;
}

} // namespace

Value *salssa::simplifyInstructionValue(Instruction *I, Context &Ctx) {
  switch (I->getOpcode()) {
  case ValueKind::Select: {
    auto *S = cast<SelectInst>(I);
    if (S->getTrueValue() == S->getFalseValue())
      return S->getTrueValue();
    if (auto *C = dyn_cast<ConstantInt>(S->getCondition()))
      return C->isTrue() ? S->getTrueValue() : S->getFalseValue();
    // select c, x, undef -> x (and symmetric): undef may be chosen to be x.
    if (isa<UndefValue>(S->getFalseValue()))
      return S->getTrueValue();
    if (isa<UndefValue>(S->getTrueValue()))
      return S->getFalseValue();
    break;
  }
  case ValueKind::Phi: {
    auto *P = cast<PhiInst>(I);
    if (P->getNumIncoming() == 0)
      return Ctx.getUndef(P->getType());
    // NOTE: a phi whose incomings reduce to one value V (others undef or
    // self) may only fold when V dominates every user of the phi — the
    // undef entries exist precisely because V does not reach those paths
    // (LLVM guards the same fold with valueDominatesPHI). That check
    // requires a dominator tree, so it lives in simplifyInstructions; a
    // bare simplifyInstructionValue only folds the trivially safe cases.
    bool AllUndefOrSelf = true;
    for (unsigned K = 0; K < P->getNumIncoming(); ++K) {
      Value *V = P->getIncomingValue(K);
      if (V != P && !isa<UndefValue>(V)) {
        AllUndefOrSelf = false;
        break;
      }
    }
    if (AllUndefOrSelf)
      return Ctx.getUndef(P->getType());
    if (Value *V = P->hasConstantValue())
      if (!isa<Instruction>(V))
        return V; // constants/arguments dominate everything
    break;
  }
  case ValueKind::ICmp: {
    auto *C = cast<ICmpInst>(I);
    auto *LC = dyn_cast<ConstantInt>(C->getLHS());
    auto *RC = dyn_cast<ConstantInt>(C->getRHS());
    if (LC && RC)
      return Ctx.getInt1(evalICmp(C->getPredicate(), LC, RC));
    if (C->getLHS() == C->getRHS()) {
      switch (C->getPredicate()) {
      case CmpPredicate::EQ:
      case CmpPredicate::SLE:
      case CmpPredicate::SGE:
      case CmpPredicate::ULE:
      case CmpPredicate::UGE:
        return Ctx.getTrue();
      default:
        return Ctx.getFalse();
      }
    }
    break;
  }
  case ValueKind::ZExt: {
    auto *C = dyn_cast<ConstantInt>(I->getOperand(0));
    if (C)
      return Ctx.getInt(I->getType(), C->getZExtValue());
    break;
  }
  case ValueKind::SExt: {
    auto *C = dyn_cast<ConstantInt>(I->getOperand(0));
    if (C)
      return Ctx.getInt(I->getType(),
                        static_cast<uint64_t>(C->getSExtValue()));
    break;
  }
  case ValueKind::Trunc: {
    auto *C = dyn_cast<ConstantInt>(I->getOperand(0));
    if (C)
      return Ctx.getInt(I->getType(), C->getZExtValue());
    break;
  }
  default:
    if (auto *B = dyn_cast<BinaryOperator>(I)) {
      if (B->getType()->isInteger()) {
        auto *LC = dyn_cast<ConstantInt>(B->getLHS());
        auto *RC = dyn_cast<ConstantInt>(B->getRHS());
        if (LC && RC)
          if (Value *V = foldIntBinOp(B->getOpcode(), LC, RC, Ctx))
            return V;
        if (Value *V = simplifyBinOpIdentities(B, Ctx))
          return V;
      }
    }
    break;
  }
  return nullptr;
}

unsigned salssa::removeUnreachableBlocks(Function &F) {
  if (F.isDeclaration())
    return 0;
  std::set<const BasicBlock *> Reachable = reachableBlocks(F);
  std::vector<BasicBlock *> Dead;
  for (BasicBlock *BB : F)
    if (!Reachable.count(BB))
      Dead.push_back(BB);
  if (Dead.empty())
    return 0;
  // Remove phi entries in surviving blocks that came from dead edges.
  for (BasicBlock *BB : Dead)
    for (BasicBlock *Succ : BB->successors())
      if (Reachable.count(Succ))
        Succ->removePredecessorEntries(BB);
  // Sever all cross references, then delete.
  for (BasicBlock *BB : Dead)
    BB->dropAllBlockReferences();
  for (BasicBlock *BB : Dead)
    BB->eraseFromParent();
  return static_cast<unsigned>(Dead.size());
}

unsigned salssa::eliminateDeadCode(Function &F, bool PreserveTraps) {
  unsigned Removed = 0;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (BasicBlock *BB : F) {
      for (auto It = BB->begin(); It != BB->end();) {
        Instruction *I = *It++;
        if (I->isSideEffectFree() && !I->hasUses() &&
            !(PreserveTraps && I->mayTrap())) {
          I->eraseFromParent();
          ++Removed;
          Changed = true;
        }
      }
    }
  }

  // Dead phi webs: phis that only feed each other never reach the simple
  // no-uses test above. Keep the phis transitively reachable (through use
  // edges) from non-phi users; drop the rest as a group.
  std::vector<PhiInst *> AllPhis;
  std::set<PhiInst *> Live;
  std::vector<PhiInst *> Worklist;
  for (BasicBlock *BB : F)
    for (PhiInst *P : BB->phis()) {
      AllPhis.push_back(P);
      for (const User *U : P->users())
        if (!isa<PhiInst>(U)) {
          if (Live.insert(P).second)
            Worklist.push_back(P);
          break;
        }
    }
  while (!Worklist.empty()) {
    PhiInst *P = Worklist.back();
    Worklist.pop_back();
    for (unsigned K = 0; K < P->getNumIncoming(); ++K)
      if (auto *In = dyn_cast<PhiInst>(P->getIncomingValue(K)))
        if (Live.insert(In).second)
          Worklist.push_back(In);
  }
  std::vector<PhiInst *> Dead;
  for (PhiInst *P : AllPhis)
    if (!Live.count(P))
      Dead.push_back(P);
  if (!Dead.empty()) {
    for (PhiInst *P : Dead)
      P->dropAllReferences();
    for (PhiInst *P : Dead) {
      assert(!P->hasUses() && "dead phi web still referenced");
      P->eraseFromParent();
      ++Removed;
    }
  }
  return Removed;
}

namespace {

/// Replaces a conditional branch/switch with an unconditional branch to
/// \p Target, detaching phi entries of abandoned successors.
void foldTerminatorTo(Instruction *Term, BasicBlock *Target, Context &Ctx) {
  BasicBlock *BB = Term->getParent();
  std::set<BasicBlock *> Abandoned;
  for (BasicBlock *S : Term->successors())
    if (S != Target)
      Abandoned.insert(S);
  for (BasicBlock *S : Abandoned)
    S->removePredecessorEntries(BB);
  Term->dropAllReferences();
  Term->eraseFromParent();
  IRBuilder B(Ctx, BB);
  B.createBr(Target);
}

/// Folds constant-condition branches and switches, and degenerate
/// conditional branches whose successors coincide.
bool foldBranches(Function &F, Context &Ctx, SimplifyStats &Stats) {
  bool Changed = false;
  for (BasicBlock *BB : F) {
    Instruction *Term = BB->getTerminator();
    if (!Term)
      continue;
    if (auto *Br = dyn_cast<BranchInst>(Term)) {
      if (!Br->isConditional())
        continue;
      if (Br->getTrueDest() == Br->getFalseDest()) {
        foldTerminatorTo(Br, Br->getTrueDest(), Ctx);
        ++Stats.BranchesFolded;
        Changed = true;
        continue;
      }
      if (auto *C = dyn_cast<ConstantInt>(Br->getCondition())) {
        foldTerminatorTo(Br, C->isTrue() ? Br->getTrueDest()
                                         : Br->getFalseDest(),
                         Ctx);
        ++Stats.BranchesFolded;
        Changed = true;
      }
      continue;
    }
    if (auto *SW = dyn_cast<SwitchInst>(Term)) {
      if (auto *C = dyn_cast<ConstantInt>(SW->getCondition())) {
        BasicBlock *Target = SW->getDefaultDest();
        for (unsigned K = 0; K < SW->getNumCases(); ++K)
          if (SW->getCaseValue(K) == C)
            Target = SW->getCaseDest(K);
        foldTerminatorTo(SW, Target, Ctx);
        ++Stats.BranchesFolded;
        Changed = true;
      } else if (SW->getNumCases() == 0) {
        foldTerminatorTo(SW, SW->getDefaultDest(), Ctx);
        ++Stats.BranchesFolded;
        Changed = true;
      }
    }
  }
  return Changed;
}

/// Merges \p BB into its unique predecessor when the predecessor
/// unconditionally branches to it and has no other successors.
bool mergeBlocksIntoPredecessors(Function &F, Context &Ctx,
                                 SimplifyStats &Stats) {
  bool Changed = false;
  for (auto It = F.begin(); It != F.end();) {
    BasicBlock *BB = *It++;
    if (BB == F.getEntryBlock())
      continue;
    std::vector<BasicBlock *> Preds = BB->predecessors();
    if (Preds.size() != 1)
      continue;
    BasicBlock *Pred = Preds.front();
    if (Pred == BB)
      continue;
    auto *Br = dyn_cast_or_null<BranchInst>(Pred->getTerminator());
    if (!Br || Br->isConditional())
      continue;
    assert(Br->getTrueDest() == BB && "unique pred must branch here");
    // Dissolve single-entry phis (a self-referencing one can only sit in
    // unreachable code; undef is as good as anything there).
    for (PhiInst *P : BB->phis()) {
      assert(P->getNumIncoming() == 1 && "single-pred block phi arity");
      Value *V = P->getIncomingValue(0);
      if (V == P)
        V = Ctx.getUndef(P->getType());
      P->replaceAllUsesWith(V);
      P->eraseFromParent();
    }
    // Splice all instructions of BB after Pred's (removed) branch.
    Br->eraseFromParent();
    for (auto BIt = BB->begin(); BIt != BB->end();) {
      Instruction *I = *BIt++;
      I->removeFromParent();
      I->insertAtEnd(Pred);
    }
    // Successor phis now flow from Pred.
    for (BasicBlock *Succ : Pred->successors())
      Succ->replacePhiUsesWith(BB, Pred);
    BB->eraseFromParent();
    ++Stats.BlocksRemoved;
    Changed = true;
  }
  return Changed;
}

/// Removes blocks that contain only an unconditional branch by rerouting
/// their predecessors directly to the destination (LLVM's
/// TryToSimplifyUncondBranchFromEmptyBlock, conservative variant).
bool threadTrivialBlocks(Function &F, SimplifyStats &Stats) {
  bool Changed = false;
  for (auto It = F.begin(); It != F.end();) {
    BasicBlock *BB = *It++;
    if (BB == F.getEntryBlock())
      continue;
    if (BB->size() != 1)
      continue;
    auto *Br = dyn_cast<BranchInst>(BB->getTerminator());
    if (!Br || Br->isConditional())
      continue;
    BasicBlock *Dest = Br->getTrueDest();
    if (Dest == BB)
      continue;
    std::vector<BasicBlock *> Preds = BB->predecessors();
    if (Preds.empty())
      continue; // unreachable; left to removeUnreachableBlocks
    // Phi-consistency precondition: a pred that already reaches Dest must
    // agree on every phi value.
    bool Safe = true;
    std::vector<PhiInst *> DestPhis = Dest->phis();
    for (BasicBlock *P : Preds) {
      // An invoke edge into a plain block must keep its landing structure;
      // only plain branches/switches are rerouted here.
      if (isa<InvokeInst>(P->getTerminator())) {
        Safe = false;
        break;
      }
      for (PhiInst *Phi : DestPhis) {
        int ExistingIdx = Phi->indexOfBlock(P);
        if (ExistingIdx >= 0 &&
            Phi->getIncomingValue(static_cast<unsigned>(ExistingIdx)) !=
                Phi->getIncomingValueForBlock(BB)) {
          Safe = false;
          break;
        }
      }
      if (!Safe)
        break;
    }
    if (!Safe)
      continue;
    for (PhiInst *Phi : DestPhis) {
      Value *V = Phi->getIncomingValueForBlock(BB);
      int BBIdx = Phi->indexOfBlock(BB);
      Phi->removeIncoming(static_cast<unsigned>(BBIdx));
      for (BasicBlock *P : Preds)
        if (Phi->indexOfBlock(P) < 0)
          Phi->addIncoming(V, P);
    }
    for (BasicBlock *P : Preds)
      P->getTerminator()->replaceSuccessorWith(BB, Dest);
    BB->dropAllBlockReferences();
    BB->eraseFromParent();
    ++Stats.BlocksRemoved;
    Changed = true;
  }
  return Changed;
}

/// Merges identical phi-nodes within each block (same incoming value for
/// every incoming block).
bool mergeIdenticalPhis(Function &F, SimplifyStats &Stats) {
  bool Changed = false;
  for (BasicBlock *BB : F) {
    std::vector<PhiInst *> Phis = BB->phis();
    for (size_t A = 0; A < Phis.size(); ++A) {
      if (!Phis[A])
        continue;
      for (size_t B = A + 1; B < Phis.size(); ++B) {
        if (!Phis[B])
          continue;
        PhiInst *P1 = Phis[A];
        PhiInst *P2 = Phis[B];
        if (P1->getType() != P2->getType() ||
            P1->getNumIncoming() != P2->getNumIncoming())
          continue;
        bool Same = true;
        for (unsigned K = 0; K < P2->getNumIncoming(); ++K) {
          int Idx = P1->indexOfBlock(P2->getIncomingBlock(K));
          if (Idx < 0 || P1->getIncomingValue(static_cast<unsigned>(Idx)) !=
                             P2->getIncomingValue(K)) {
            Same = false;
            break;
          }
        }
        if (!Same)
          continue;
        P2->replaceAllUsesWith(P1);
        P2->eraseFromParent();
        Phis[B] = nullptr;
        ++Stats.PhisMerged;
        Changed = true;
      }
    }
  }
  return Changed;
}

/// One round of per-instruction simplification. Instruction-level RAUW
/// never changes the CFG, so one dominator tree serves the whole round
/// (used for the dominance-guarded phi fold).
bool simplifyInstructions(Function &F, Context &Ctx, SimplifyStats &Stats) {
  bool Changed = false;
  DominatorTree DT(F);
  for (BasicBlock *BB : F) {
    for (auto It = BB->begin(); It != BB->end();) {
      Instruction *I = *It++;
      Value *V = simplifyInstructionValue(I, Ctx);
      if (!V) {
        // The dominance-guarded phi fold: phi [v, A], [undef, B] -> v only
        // if v dominates every user of the phi.
        auto *P = dyn_cast<PhiInst>(I);
        if (!P)
          continue;
        Value *Common = P->hasConstantValue();
        auto *CI = dyn_cast_or_null<Instruction>(Common);
        if (!CI)
          continue;
        bool DominatesAllUsers = true;
        for (const User *U : P->users()) {
          const auto *UI = cast<Instruction>(U);
          if (UI == P)
            continue;
          if (const auto *UP = dyn_cast<PhiInst>(UI)) {
            // Must dominate the exit of every edge carrying the phi.
            for (unsigned K = 0; K < UP->getNumIncoming(); ++K)
              if (UP->getIncomingValue(K) == P &&
                  !DT.dominatesBlockExit(CI, UP->getIncomingBlock(K))) {
                DominatesAllUsers = false;
                break;
              }
          } else if (!DT.dominates(CI, UI)) {
            DominatesAllUsers = false;
          }
          if (!DominatesAllUsers)
            break;
        }
        if (!DominatesAllUsers)
          continue;
        V = Common;
      }
      if (V == I)
        continue;
      I->replaceAllUsesWith(V);
      I->eraseFromParent();
      ++Stats.InstructionsRemoved;
      Changed = true;
    }
  }
  return Changed;
}

} // namespace

SimplifyStats salssa::simplifyFunction(Function &F, Context &Ctx,
                                       bool PreserveTraps) {
  SimplifyStats Stats;
  if (F.isDeclaration())
    return Stats;
  const unsigned MaxIterations = 16;
  bool Changed = true;
  while (Changed && Stats.Iterations < MaxIterations) {
    ++Stats.Iterations;
    Changed = false;
    Changed |= simplifyInstructions(F, Ctx, Stats);
    Changed |= mergeIdenticalPhis(F, Stats);
    Changed |= foldBranches(F, Ctx, Stats);
    unsigned DeadBlocks = removeUnreachableBlocks(F);
    Stats.BlocksRemoved += DeadBlocks;
    Changed |= DeadBlocks != 0;
    Changed |= threadTrivialBlocks(F, Stats);
    Changed |= mergeBlocksIntoPredecessors(F, Ctx, Stats);
    unsigned Dce = eliminateDeadCode(F, PreserveTraps);
    Stats.InstructionsRemoved += Dce;
    Changed |= Dce != 0;
  }
  return Stats;
}
