//===- transforms/Mem2Reg.cpp - SSA construction (register promotion) ---------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//

#include "transforms/Mem2Reg.h"
#include <algorithm>
#include "analysis/Dominators.h"
#include "ir/Context.h"
#include "ir/IRBuilder.h"
#include "ir/Module.h"
#include <map>

using namespace salssa;

bool salssa::isPromotableAlloca(const AllocaInst *A) {
  if (A->getNumElements() != 1)
    return false; // array slots are addressable storage, not registers
  if (!A->getAllocatedType()->isFirstClass())
    return false;
  for (const User *U : A->users()) {
    if (const auto *L = dyn_cast<LoadInst>(U)) {
      if (L->getPointerOperand() != A)
        return false;
      if (L->getType() != A->getAllocatedType())
        return false;
      continue;
    }
    if (const auto *S = dyn_cast<StoreInst>(U)) {
      // The slot must be the address, not the stored value, and the type
      // must round-trip.
      if (S->getPointerOperand() != A || S->getValueOperand() == A)
        return false;
      if (S->getValueOperand()->getType() != A->getAllocatedType())
        return false;
      continue;
    }
    return false; // any other use (gep, call, select...) escapes the slot
  }
  return true;
}

namespace {

/// Runs Cytron et al. phi placement + renaming for a batch of allocas.
class PromotionDriver {
public:
  PromotionDriver(Function &F, Context &Ctx,
                  const std::vector<AllocaInst *> &Allocas)
      : F(F), Ctx(Ctx), Allocas(Allocas), DT(F) {}

  Mem2RegStats run() {
    for (unsigned I = 0; I < Allocas.size(); ++I) {
      assert(isPromotableAlloca(Allocas[I]) && "alloca is not promotable");
      SlotIndex[Allocas[I]] = I;
    }
    placePhis();
    renameFromEntry();
    cleanup();
    return Stats;
  }

private:
  void placePhis() {
    PhiSlot.clear();
    // Deterministic block ordering (RPO position) for phi placement; the
    // raw IDF set iterates in pointer order.
    std::map<const BasicBlock *, unsigned> RPOIndex;
    {
      unsigned Idx = 0;
      for (BasicBlock *BB : DT.getCFG().reversePostOrder())
        RPOIndex[BB] = Idx++;
    }
    for (AllocaInst *A : Allocas) {
      std::set<BasicBlock *> DefBlocks;
      for (User *U : A->users())
        if (auto *S = dyn_cast<StoreInst>(U))
          DefBlocks.insert(S->getParent());
      std::set<BasicBlock *> LiveIn = computeLiveInBlocks(A);
      std::set<BasicBlock *> IDF = DT.iteratedDominanceFrontier(DefBlocks);
      std::vector<BasicBlock *> Ordered;
      for (BasicBlock *BB : IDF)
        if (LiveIn.count(BB)) // pruned SSA: no phi where the slot is dead
          Ordered.push_back(BB);
      std::sort(Ordered.begin(), Ordered.end(),
                [&](BasicBlock *X, BasicBlock *Y) {
                  return RPOIndex.at(X) < RPOIndex.at(Y);
                });
      for (BasicBlock *BB : Ordered) {
        // One phi per (slot, block).
        auto *P = new PhiInst(A->getAllocatedType());
        P->setName(A->hasName() ? A->getName() + ".phi" : "m2r.phi");
        BB->insert(BB->begin(), P);
        PhiSlot[P] = SlotIndex.at(A);
        ++Stats.PhisInserted;
      }
    }
  }

  /// Blocks at whose entry the slot's value may still be read (the
  /// pruning set of LLVM's mem2reg): blocks that load before any store,
  /// closed backwards through store-free blocks.
  std::set<BasicBlock *> computeLiveInBlocks(AllocaInst *A) {
    std::set<BasicBlock *> UseBeforeDef;
    std::set<BasicBlock *> HasStore;
    for (User *U : A->users())
      if (auto *S = dyn_cast<StoreInst>(U))
        HasStore.insert(S->getParent());
    for (User *U : A->users()) {
      auto *L = dyn_cast<LoadInst>(U);
      if (!L)
        continue;
      BasicBlock *BB = L->getParent();
      if (!HasStore.count(BB)) {
        UseBeforeDef.insert(BB);
        continue;
      }
      // Mixed block: does a load come first?
      for (Instruction *I : *BB) {
        if (auto *St = dyn_cast<StoreInst>(I);
            St && St->getPointerOperand() == A)
          break;
        if (auto *Ld = dyn_cast<LoadInst>(I);
            Ld && Ld->getPointerOperand() == A) {
          UseBeforeDef.insert(BB);
          break;
        }
      }
    }
    // Backward closure through store-free blocks.
    std::set<BasicBlock *> LiveIn = UseBeforeDef;
    std::vector<BasicBlock *> Worklist(UseBeforeDef.begin(),
                                       UseBeforeDef.end());
    while (!Worklist.empty()) {
      BasicBlock *BB = Worklist.back();
      Worklist.pop_back();
      for (BasicBlock *Pred : DT.getCFG().predecessors(BB)) {
        if (HasStore.count(Pred))
          continue; // the store screens off entry liveness
        if (LiveIn.insert(Pred).second)
          Worklist.push_back(Pred);
      }
    }
    return LiveIn;
  }

  Value *undefFor(AllocaInst *A) {
    // Reads before any write observe undef — the entry pseudo-definition.
    return Ctx.getUndef(A->getAllocatedType());
  }

  void renameFromEntry() {
    // Iterative DFS over the dominator tree carrying per-slot value stacks.
    size_t N = Allocas.size();
    std::vector<Value *> Incoming(N, nullptr);
    for (unsigned I = 0; I < N; ++I)
      Incoming[I] = undefFor(Allocas[I]);

    struct Frame {
      BasicBlock *BB;
      std::vector<Value *> Values; // live definition per slot on entry
    };
    std::vector<Frame> Worklist;
    Worklist.push_back({F.getEntryBlock(), std::move(Incoming)});
    std::set<BasicBlock *> Visited;

    while (!Worklist.empty()) {
      Frame Fr = std::move(Worklist.back());
      Worklist.pop_back();
      if (!Visited.insert(Fr.BB).second)
        continue;
      BasicBlock *BB = Fr.BB;
      std::vector<Value *> &Cur = Fr.Values;

      for (auto It = BB->begin(); It != BB->end();) {
        Instruction *I = *It++;
        if (auto *P = dyn_cast<PhiInst>(I)) {
          auto PhiIt = PhiSlot.find(P);
          if (PhiIt != PhiSlot.end())
            Cur[PhiIt->second] = P;
          continue;
        }
        if (auto *L = dyn_cast<LoadInst>(I)) {
          auto SIt = SlotIndex.find(
              dyn_cast<AllocaInst>(L->getPointerOperand()));
          if (SIt != SlotIndex.end()) {
            L->replaceAllUsesWith(Cur[SIt->second]);
            L->eraseFromParent();
            ++Stats.LoadsRemoved;
          }
          continue;
        }
        if (auto *S = dyn_cast<StoreInst>(I)) {
          auto SIt = SlotIndex.find(
              dyn_cast<AllocaInst>(S->getPointerOperand()));
          if (SIt != SlotIndex.end()) {
            Cur[SIt->second] = S->getValueOperand();
            S->eraseFromParent();
            ++Stats.StoresRemoved;
          }
          continue;
        }
      }

      // Feed successors' slot-phis and queue dominator-tree children with
      // the current values. Successor phi feeding must happen per CFG
      // edge; value propagation per dominator tree. Using CFG successors
      // for phis and re-queuing via CFG is the classic approach: a
      // successor's non-phi code is renamed when visited with the values
      // that dominate it, which is exactly the state carried along the
      // dominator tree. We approximate by propagating over the CFG but
      // only renaming at first visit — correct because any value live into
      // a block from a non-dominating path must go through a placed phi,
      // which resets Cur for that slot.
      for (BasicBlock *Succ : BB->successors()) {
        for (PhiInst *P : Succ->phis()) {
          auto PhiIt = PhiSlot.find(P);
          if (PhiIt == PhiSlot.end())
            continue;
          if (P->indexOfBlock(BB) < 0)
            P->addIncoming(Cur[PhiIt->second], BB);
        }
        if (!Visited.count(Succ))
          Worklist.push_back({Succ, Cur});
      }
    }
  }

  void cleanup() {
    // Edges from unreachable blocks are never walked by renaming, so their
    // phi entries are missing; fill them with undef (they can never
    // execute), then drop the now-unused allocas.
    for (auto &[P, Slot] : PhiSlot) {
      (void)Slot;
      for (BasicBlock *Pred : P->getParent()->predecessors())
        if (P->indexOfBlock(Pred) < 0)
          P->addIncoming(Ctx.getUndef(P->getType()), Pred);
    }
    for (AllocaInst *A : Allocas) {
      // Loads/stores in unreachable code are never renamed; dissolve them
      // (dead code, any value will do).
      std::vector<User *> Remaining(A->users().begin(), A->users().end());
      for (User *U : Remaining) {
        auto *I = cast<Instruction>(U);
        if (auto *L = dyn_cast<LoadInst>(I)) {
          L->replaceAllUsesWith(Ctx.getUndef(L->getType()));
          L->eraseFromParent();
        } else {
          cast<StoreInst>(I)->eraseFromParent();
        }
      }
      assert(!A->hasUses() && "promotion left a slot use behind");
      A->eraseFromParent();
      ++Stats.PromotedAllocas;
    }
  }

  Function &F;
  Context &Ctx;
  std::vector<AllocaInst *> Allocas;
  DominatorTree DT;
  std::map<const AllocaInst *, unsigned> SlotIndex;
  std::map<PhiInst *, unsigned> PhiSlot;
  Mem2RegStats Stats;
};

} // namespace

Mem2RegStats salssa::promoteAllocas(Function &F, Context &Ctx,
                                    const std::vector<AllocaInst *> &Allocas) {
  if (Allocas.empty())
    return {};
  return PromotionDriver(F, Ctx, Allocas).run();
}

Mem2RegStats salssa::promoteAllocasToRegisters(Function &F, Context &Ctx) {
  std::vector<AllocaInst *> Promotable;
  for (BasicBlock *BB : F)
    for (Instruction *I : *BB)
      if (auto *A = dyn_cast<AllocaInst>(I))
        if (isPromotableAlloca(A))
          Promotable.push_back(A);
  return promoteAllocas(F, Ctx, Promotable);
}
