//===- transforms/Mem2Reg.h - SSA construction (register promotion) ----------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Register promotion: rewrites promotable stack slots into SSA values,
/// placing phi-nodes at iterated dominance frontiers (Cytron et al. 1991).
/// This is "the standard SSA construction algorithm provided by LLVM for
/// register promotion" that the paper relies on twice: FMSA uses it to
/// undo register demotion after merging, and SalSSA uses it to restore the
/// SSA dominance property (§4.3) — with phi-node coalescing implemented as
/// slot sharing before promotion (§4.4).
///
//===----------------------------------------------------------------------===//

#ifndef SALSSA_TRANSFORMS_MEM2REG_H
#define SALSSA_TRANSFORMS_MEM2REG_H

#include <vector>

namespace salssa {

class AllocaInst;
class Context;
class Function;

/// True when every use of \p A is a direct load from it or a store *to* it
/// (the address never escapes), i.e. the slot can be rewritten into SSA
/// form. Merged code whose store address is chosen by a select fails this
/// test — the exact failure mode of FMSA the paper describes in §3.
bool isPromotableAlloca(const AllocaInst *A);

/// Statistics from one promotion run.
struct Mem2RegStats {
  unsigned PromotedAllocas = 0;
  unsigned PhisInserted = 0;
  unsigned LoadsRemoved = 0;
  unsigned StoresRemoved = 0;
};

/// Promotes every promotable alloca in \p F. Returns statistics. Reads of
/// slots before any store yield undef (the "pseudo-definition at the entry
/// block" of §4.3).
Mem2RegStats promoteAllocasToRegisters(Function &F, Context &Ctx);

/// Promotes exactly \p Allocas (each must satisfy isPromotableAlloca).
Mem2RegStats promoteAllocas(Function &F, Context &Ctx,
                            const std::vector<AllocaInst *> &Allocas);

} // namespace salssa

#endif // SALSSA_TRANSFORMS_MEM2REG_H
