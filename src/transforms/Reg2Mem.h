//===- transforms/Reg2Mem.h - Register demotion -------------------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Register demotion: eliminates phi-nodes and cross-block SSA values by
/// spilling them through stack slots (LLVM's -reg2mem). FMSA must run this
/// before its core algorithm because its code generator cannot handle
/// phi-nodes; the paper shows it inflates functions by ~75% on average
/// (Fig 5) and is the root cause of FMSA's lost merging opportunities and
/// compile-time/memory overheads.
///
//===----------------------------------------------------------------------===//

#ifndef SALSSA_TRANSFORMS_REG2MEM_H
#define SALSSA_TRANSFORMS_REG2MEM_H

namespace salssa {

class Context;
class Function;

/// Statistics from one demotion run.
struct Reg2MemStats {
  unsigned DemotedValues = 0; ///< cross-block values spilled
  unsigned DemotedPhis = 0;   ///< phi-nodes eliminated
  unsigned InstructionsBefore = 0;
  unsigned InstructionsAfter = 0;

  /// Size inflation factor (the Fig 5 metric).
  double inflation() const {
    return InstructionsBefore == 0
               ? 1.0
               : static_cast<double>(InstructionsAfter) / InstructionsBefore;
  }
};

/// Demotes every phi-node and every value used outside its defining block
/// in \p F. After this pass the function contains no phi-nodes.
Reg2MemStats demoteRegistersToMemory(Function &F, Context &Ctx);

} // namespace salssa

#endif // SALSSA_TRANSFORMS_REG2MEM_H
