//===- transforms/Canonicalize.cpp - Canonical shadow view for hashing --------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//
//
// The normalization fixpoint below is a small GVN-style pipeline in the
// spirit of "Global Value Numbering: A Precise and Efficient Algorithm"
// (see PAPERS.md): commutative-operand ordering and chain reassociation
// rewrite syntactically-divergent-but-equal expressions into one spelling,
// dominator-scoped value numbering collapses the redundant recomputations
// drift introduces, and dead-store/dead-code sweeps remove what never
// mattered. Every ordering decision is pointer-free (instruction ordinals,
// argument indices, constant bits, global names) so the result — and the
// StructuralHash computed from it — is identical across processes.
//
//===----------------------------------------------------------------------===//

#include "transforms/Canonicalize.h"

#include "analysis/Dominators.h"
#include "ir/BasicBlock.h"
#include "ir/Constant.h"
#include "ir/Function.h"
#include "ir/Instruction.h"
#include "ir/Module.h"
#include "ir/Type.h"
#include "support/Casting.h"
#include "transforms/Cloning.h"
#include "transforms/Simplify.h"

#include <algorithm>
#include <cstring>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

namespace salssa {

namespace {

/// Stable, pointer-free key for a type: kind plus integer width. Types
/// are interned per Context, but their addresses are not reproducible
/// across processes — the canonical hash must be.
uint64_t typeKey(const Type *Ty) {
  uint64_t K = static_cast<uint64_t>(Ty->getKind()) << 32;
  if (Ty->isInteger())
    K |= Ty->getIntegerBitWidth();
  return K;
}

/// Total deterministic order over operand values. Lower ranks go on the
/// LHS of commutative operations: instructions (by position) before
/// arguments before constants, matching the usual "x + 1" spelling.
struct ValueRank {
  uint64_t Cat = 0; ///< 0 inst, 1 argument, 2 int, 3 fp, 4 null/undef, 5 global
  uint64_t A = 0;
  uint64_t B = 0;
  std::string S; ///< global name (category 5 only)

  bool operator<(const ValueRank &O) const {
    if (Cat != O.Cat)
      return Cat < O.Cat;
    if (A != O.A)
      return A < O.A;
    if (B != O.B)
      return B < O.B;
    return S < O.S;
  }
};

/// Instruction position map: blocks in function order, instructions in
/// block order. Recomputed by each subpass (mutations shift positions).
using OrdinalMap = std::unordered_map<const Value *, uint64_t>;

OrdinalMap computeOrdinals(const Function &F) {
  OrdinalMap Ord;
  uint64_t N = 0;
  for (const BasicBlock *BB : F)
    for (const Instruction *I : *BB)
      Ord[I] = N++;
  return Ord;
}

ValueRank rankOf(const Value *V, const OrdinalMap &Ord) {
  ValueRank R;
  if (auto *A = dyn_cast<Argument>(V)) {
    R.Cat = 1;
    R.A = A->getArgIndex();
    return R;
  }
  if (auto *CI = dyn_cast<ConstantInt>(V)) {
    R.Cat = 2;
    R.A = typeKey(CI->getType());
    R.B = CI->getZExtValue();
    return R;
  }
  if (auto *CF = dyn_cast<ConstantFP>(V)) {
    R.Cat = 3;
    R.A = typeKey(CF->getType());
    double D = CF->getValue();
    std::memcpy(&R.B, &D, sizeof(R.B));
    return R;
  }
  if (isa<UndefValue>(V) || isa<ConstantPointerNull>(V)) {
    R.Cat = 4;
    R.A = static_cast<uint64_t>(V->getValueKind());
    R.B = typeKey(V->getType());
    return R;
  }
  if (auto *G = dyn_cast<GlobalVariable>(V)) {
    R.Cat = 5;
    R.S = G->getName();
    return R;
  }
  // Instruction (or anything else definition-ordered).
  R.Cat = 0;
  auto It = Ord.find(V);
  R.A = It == Ord.end() ? ~uint64_t(0) : It->second;
  return R;
}

/// Integer opcodes the reassociation pass owns (commutative AND
/// associative — FP arithmetic is commutative but not associative, so
/// FAdd/FMul chains are left to the plain commute pass).
bool isReassociableKind(ValueKind K) {
  switch (K) {
  case ValueKind::Add:
  case ValueKind::Mul:
  case ValueKind::And:
  case ValueKind::Or:
  case ValueKind::Xor:
    return true;
  default:
    return false;
  }
}

/// True when \p V is an interior node of a reassociable chain hanging
/// off the \p Op-kind node it is an operand of: same opcode, same type,
/// and exactly one use (so re-expressing the chain cannot change any
/// other user's value).
bool isChainInterior(const Value *V, ValueKind Op, const Type *Ty) {
  auto *I = dyn_cast<BinaryOperator>(V);
  return I && I->getOpcode() == Op && I->getType() == Ty && I->hasOneUse();
}

/// True when \p BO itself is an interior node of some larger chain: its
/// single user continues the same opcode. (The operand-side
/// isChainInterior can't be asked about BO itself — every node trivially
/// matches its own opcode.)
bool feedsSameOpcodeChain(const BinaryOperator *BO) {
  if (!BO->hasOneUse())
    return false;
  auto *P = dyn_cast<BinaryOperator>(BO->users().front());
  return P && P->getOpcode() == BO->getOpcode() &&
         P->getType() == BO->getType();
}

/// True when \p BO belongs to a reassociable chain of three or more
/// leaves — either as an interior node or as a root over interior nodes.
/// The commute pass must leave those alone: reassociation owns their
/// shape, and fighting over it would oscillate the fixpoint.
bool partOfReassociableChain(const BinaryOperator *BO) {
  if (!isReassociableKind(BO->getOpcode()))
    return false;
  if (feedsSameOpcodeChain(BO))
    return true;
  return isChainInterior(BO->getLHS(), BO->getOpcode(), BO->getType()) ||
         isChainInterior(BO->getRHS(), BO->getOpcode(), BO->getType());
}

//===----------------------------------------------------------------------===//
// Pass 0: subtract-by-constant respelling
//===----------------------------------------------------------------------===//

/// `sub x, C` and `add x, (2^w - C)` are the same wraparound operation;
/// canonical form is the add spelling. Running before the ordering passes
/// hands them a single opcode to reason about — commute ordering and
/// reassociation see pure add chains instead of mixed add/sub fringes —
/// and two clones that drifted apart by flipping the spelling land in
/// the same opcode-histogram bucket. Integer-only: FP subtraction is not
/// an addition of a negation under IEEE rounding.
unsigned respellSubConstants(Function &F, Context &Ctx) {
  unsigned Respelled = 0;
  for (BasicBlock *BB : F) {
    // Snapshot: respelling replaces instructions.
    std::vector<Instruction *> Insts(BB->begin(), BB->end());
    for (Instruction *I : Insts) {
      auto *BO = dyn_cast<BinaryOperator>(I);
      if (!BO || BO->getOpcode() != ValueKind::Sub)
        continue;
      auto *C = dyn_cast<ConstantInt>(BO->getRHS());
      if (!C || !BO->getType()->isInteger())
        continue;
      auto *Add = new BinaryOperator(
          ValueKind::Add, BO->getLHS(),
          Ctx.getInt(BO->getType(), 0 - C->getZExtValue()));
      Add->setName(BO->getName());
      Add->insertBefore(BO);
      BO->replaceAllUsesWith(Add);
      BO->eraseFromParent();
      ++Respelled;
    }
  }
  return Respelled;
}

//===----------------------------------------------------------------------===//
// Pass 1: commutative operand ordering
//===----------------------------------------------------------------------===//

unsigned orderCommutativeOperands(Function &F) {
  OrdinalMap Ord = computeOrdinals(F);
  unsigned Swapped = 0;
  for (BasicBlock *BB : F) {
    for (Instruction *I : *BB) {
      if (auto *BO = dyn_cast<BinaryOperator>(I)) {
        if (!BO->isCommutative() || partOfReassociableChain(BO))
          continue;
        if (rankOf(BO->getRHS(), Ord) < rankOf(BO->getLHS(), Ord)) {
          BO->swapOperands();
          ++Swapped;
        }
        continue;
      }
      if (auto *CI = dyn_cast<CmpInst>(I)) {
        switch (CI->getPredicate()) {
        case CmpPredicate::SGT:
        case CmpPredicate::SGE:
        case CmpPredicate::UGT:
        case CmpPredicate::UGE:
          // Greater-than spellings normalize to their less-than mirror.
          CI->swapOperandsAndPredicate();
          ++Swapped;
          break;
        case CmpPredicate::EQ:
        case CmpPredicate::NE:
          // Symmetric predicates order their operands like a
          // commutative binop.
          if (rankOf(CI->getRHS(), Ord) < rankOf(CI->getLHS(), Ord)) {
            CI->swapOperandsAndPredicate();
            ++Swapped;
          }
          break;
        default:
          break;
        }
      }
    }
  }
  return Swapped;
}

//===----------------------------------------------------------------------===//
// Pass 2: reassociation of integer chains
//===----------------------------------------------------------------------===//

struct FlatChain {
  std::vector<Value *> Leaves;        ///< in-order leaf sequence
  std::vector<Instruction *> Interior; ///< DFS order, parent before child
  bool LeftDeep = true; ///< no interior node sat in an RHS slot
};

void flattenChain(BinaryOperator *Node, FlatChain &C) {
  for (unsigned Slot = 0; Slot < 2; ++Slot) {
    Value *V = Node->getOperand(Slot);
    if (isChainInterior(V, Node->getOpcode(), Node->getType())) {
      if (Slot == 1)
        C.LeftDeep = false;
      auto *Child = cast<BinaryOperator>(V);
      C.Interior.push_back(Child);
      flattenChain(Child, C);
    } else {
      C.Leaves.push_back(V);
    }
  }
}

unsigned reassociateChains(Function &F, Context &Ctx) {
  OrdinalMap Ord = computeOrdinals(F);
  unsigned Rebuilt = 0;
  for (BasicBlock *BB : F) {
    // Snapshot: rebuilding erases chain nodes from this block.
    std::vector<Instruction *> Insts(BB->begin(), BB->end());
    for (Instruction *Inst : Insts) {
      auto *Root = dyn_cast<BinaryOperator>(Inst);
      if (!Root || !isReassociableKind(Root->getOpcode()))
        continue;
      // Interior nodes are handled when their root is visited.
      if (feedsSameOpcodeChain(Root))
        continue;
      FlatChain C;
      flattenChain(Root, C);
      if (C.Leaves.size() < 3)
        continue; // a plain binop; the commute pass owns it

      // Fold constant leaves together through the existing Simplify
      // semantics, so "x+1+2" and "x+3" spell identically. A transient
      // node computes each fold; it never survives.
      std::vector<Value *> Leaves;
      std::vector<ConstantInt *> Consts;
      for (Value *L : C.Leaves) {
        if (auto *CI = dyn_cast<ConstantInt>(L))
          Consts.push_back(CI);
        else
          Leaves.push_back(L);
      }
      while (Consts.size() > 1) {
        auto *Tmp =
            new BinaryOperator(Root->getOpcode(), Consts[0], Consts[1]);
        Tmp->insertBefore(Root);
        Value *Folded = simplifyInstructionValue(Tmp, Ctx);
        Tmp->eraseFromParent();
        auto *FoldedCI = dyn_cast_or_null<ConstantInt>(Folded);
        if (!FoldedCI)
          break; // cannot fold; keep the rest as ordinary leaves
        Consts.erase(Consts.begin(), Consts.begin() + 2);
        Consts.insert(Consts.begin(), FoldedCI);
      }
      bool FoldedSome = Consts.size() + Leaves.size() < C.Leaves.size();

      // Canonical = left-deep shape, folded constants, leaves in rank
      // order. Bailing out here is what terminates the fixpoint.
      std::stable_sort(Leaves.begin(), Leaves.end(),
                       [&](Value *A, Value *B) {
                         return rankOf(A, Ord) < rankOf(B, Ord);
                       });
      for (ConstantInt *CI : Consts)
        Leaves.push_back(CI); // constants rank last by construction
      bool SameOrder = Leaves.size() == C.Leaves.size() &&
                       std::equal(Leaves.begin(), Leaves.end(),
                                  C.Leaves.begin());
      if (C.LeftDeep && !FoldedSome && SameOrder)
        continue;

      // Rebuild left-deep just before the root, retire the old chain.
      Value *Acc = Leaves[0];
      for (size_t I = 1; I < Leaves.size(); ++I) {
        auto *N = new BinaryOperator(Root->getOpcode(), Acc, Leaves[I]);
        N->insertBefore(Root);
        Acc = N;
      }
      Root->replaceAllUsesWith(Acc);
      Root->eraseFromParent();
      // Parent-before-child order: each erase drops the references that
      // kept its children alive.
      for (Instruction *Dead : C.Interior)
        Dead->eraseFromParent();
      ++Rebuilt;
    }
  }
  return Rebuilt;
}

//===----------------------------------------------------------------------===//
// Pass 3: dominator-scoped value numbering (CSE over pure expressions)
//===----------------------------------------------------------------------===//

bool isPureExpression(const Instruction *I) {
  if (I->isBinaryOp() || I->isCast())
    return true;
  switch (I->getValueKind()) {
  case ValueKind::ICmp:
  case ValueKind::FCmp:
  case ValueKind::Select:
  case ValueKind::Gep:
    return true;
  default:
    return false;
  }
}

unsigned valueNumberFunction(Function &F) {
  DominatorTree DT(F);
  // Expression key: opcode, result type, per-kind extras, operand
  // identities (first-encounter ids; matching is exact, so the ids only
  // need to be consistent within this walk).
  using Key = std::vector<uint64_t>;
  std::map<Key, std::vector<Instruction *>> Available;
  std::unordered_map<const Value *, uint64_t> Ids;
  auto idOf = [&](const Value *V) {
    return Ids.emplace(V, Ids.size() + 1).first->second;
  };
  auto makeKey = [&](Instruction *I) {
    Key K;
    K.push_back(static_cast<uint64_t>(I->getValueKind()));
    K.push_back(typeKey(I->getType()));
    if (auto *CI = dyn_cast<CmpInst>(I))
      K.push_back(static_cast<uint64_t>(CI->getPredicate()));
    if (auto *G = dyn_cast<GepInst>(I))
      K.push_back(typeKey(G->getElementType()));
    for (unsigned Op = 0; Op < I->getNumOperands(); ++Op)
      K.push_back(idOf(I->getOperand(Op)));
    return K;
  };
  unsigned Numbered = 0;
  std::function<void(BasicBlock *)> Walk = [&](BasicBlock *BB) {
    std::vector<Key> Pushed;
    std::vector<Instruction *> Insts(BB->begin(), BB->end());
    for (Instruction *I : Insts) {
      if (!isPureExpression(I))
        continue;
      Key K = makeKey(I);
      auto &Stack = Available[K];
      if (!Stack.empty()) {
        // A dominating identical expression exists: this one is it.
        I->replaceAllUsesWith(Stack.back());
        I->eraseFromParent();
        ++Numbered;
        continue;
      }
      Stack.push_back(I);
      Pushed.push_back(std::move(K));
    }
    for (BasicBlock *Child : DT.getChildren(BB))
      Walk(Child);
    for (Key &K : Pushed)
      Available[K].pop_back();
  };
  if (F.getNumBlocks() > 0)
    Walk(F.getEntryBlock());
  return Numbered;
}

//===----------------------------------------------------------------------===//
// Pass 4: dead store sweep
//===----------------------------------------------------------------------===//

/// Removes alloca slots whose every use is as the *pointer* of a store —
/// written, never read, never escaping — together with those stores.
/// This is what reduces drift-injected dead stores to nothing.
unsigned sweepDeadStores(Function &F) {
  std::vector<AllocaInst *> Allocas;
  for (BasicBlock *BB : F)
    for (Instruction *I : *BB)
      if (auto *A = dyn_cast<AllocaInst>(I))
        Allocas.push_back(A);
  unsigned Swept = 0;
  for (AllocaInst *A : Allocas) {
    if (!A->hasUses())
      continue; // plain dead code; the DCE pass sweeps it
    bool OnlyStorePointers = true;
    for (User *U : A->users()) {
      auto *S = dyn_cast<StoreInst>(U);
      if (!S || S->getValueOperand() == A) {
        OnlyStorePointers = false;
        break;
      }
    }
    if (!OnlyStorePointers)
      continue;
    std::vector<Instruction *> Stores;
    for (User *U : A->users()) {
      auto *S = cast<StoreInst>(U);
      if (std::find(Stores.begin(), Stores.end(), S) == Stores.end())
        Stores.push_back(S);
    }
    for (Instruction *S : Stores)
      S->eraseFromParent();
    A->eraseFromParent();
    ++Swept;
  }
  return Swept;
}

//===----------------------------------------------------------------------===//
// Pass 5: phi incoming order
//===----------------------------------------------------------------------===//

/// Orders every phi's incoming entries by predecessor layout position.
/// Incoming order is semantically free, but CFG simplification folds
/// blocks in whatever order they empty out — two clones whose dead code
/// emptied different blocks first would otherwise keep permuted (equal)
/// phis and hash apart.
unsigned orderPhiIncomings(Function &F) {
  std::unordered_map<const BasicBlock *, uint64_t> BlockOrd;
  uint64_t N = 0;
  for (const BasicBlock *BB : F)
    BlockOrd[BB] = N++;
  unsigned Reordered = 0;
  for (BasicBlock *BB : F) {
    for (Instruction *I : *BB) {
      if (!I->isPhi())
        continue;
      auto *Phi = cast<PhiInst>(I);
      std::vector<std::pair<Value *, BasicBlock *>> In;
      for (unsigned K = 0; K < Phi->getNumIncoming(); ++K)
        In.emplace_back(Phi->getIncomingValue(K), Phi->getIncomingBlock(K));
      auto ByLayout = [&](const std::pair<Value *, BasicBlock *> &A,
                          const std::pair<Value *, BasicBlock *> &B) {
        return BlockOrd[A.second] < BlockOrd[B.second];
      };
      if (std::is_sorted(In.begin(), In.end(), ByLayout))
        continue;
      std::stable_sort(In.begin(), In.end(), ByLayout);
      for (unsigned K = 0; K < Phi->getNumIncoming(); ++K) {
        Phi->setIncomingValue(K, In[K].first);
        Phi->setIncomingBlock(K, In[K].second);
      }
      ++Reordered;
    }
  }
  return Reordered;
}

//===----------------------------------------------------------------------===//
// Cosmetic renumbering
//===----------------------------------------------------------------------===//

/// Blocks b0..bN in layout order, arguments a0.., value-producing
/// instructions v0.. in program order, void results unnamed. The hash is
/// name-blind either way; renumbering makes shadow dumps line up between
/// clones when debugging a recall miss.
void renumberFunction(Function &F) {
  for (unsigned I = 0; I < F.getNumArgs(); ++I)
    F.getArg(I)->setName("a" + std::to_string(I));
  unsigned BlockN = 0, ValueN = 0;
  for (BasicBlock *BB : F) {
    BB->setName("b" + std::to_string(BlockN++));
    for (Instruction *I : *BB) {
      if (I->getType()->isVoid())
        I->setName("");
      else
        I->setName("v" + std::to_string(ValueN++));
    }
  }
}

} // namespace

CanonicalizeStats canonicalizeFunction(Function &F, Context &Ctx) {
  CanonicalizeStats Stats;
  if (F.isDeclaration())
    return Stats;
  // Bounded fixpoint: each pass exposes work for the others (a swept
  // store empties a block Simplify then folds; a reassociated chain
  // lines two clones' expressions up for value numbering; value
  // numbering strands dead code). Simplify runs *inside* the loop —
  // sweeps create new CFG-simplification opportunities, and an
  // already-canonical body must report a clean second application.
  // Eight rounds is far beyond what converging functions need; the
  // bound only guards pathological inputs.
  constexpr unsigned MaxIterations = 8;
  for (unsigned Iter = 0; Iter < MaxIterations; ++Iter) {
    unsigned Changed = 0;
    SimplifyStats SS = simplifyFunction(F, Ctx);
    unsigned N = SS.InstructionsRemoved + SS.BlocksRemoved +
                 SS.BranchesFolded + SS.PhisMerged;
    Stats.DeadInstsSwept += N;
    Changed += N;
    Stats.DeadStoresSwept += N = sweepDeadStores(F);
    Changed += N;
    Stats.ConstantsRespelled += N = respellSubConstants(F, Ctx);
    Changed += N;
    Stats.OperandsCommuted += N = orderCommutativeOperands(F);
    Changed += N;
    Stats.ChainsReassociated += N = reassociateChains(F, Ctx);
    Changed += N;
    Stats.ValuesNumbered += N = valueNumberFunction(F);
    Changed += N;
    Stats.DeadInstsSwept += N = eliminateDeadCode(F);
    Changed += N;
    Stats.OperandsCommuted += N = orderPhiIncomings(F);
    Changed += N;
    Stats.Iterations = Iter + 1;
    if (!Changed)
      break;
  }
  renumberFunction(F);
  return Stats;
}

namespace {

/// Clones \p F into \p Scratch and canonicalizes the clone. Empty
/// value/callee maps keep references to F's module-owned globals and
/// callees — exactly what the hash should see (it identifies globals by
/// name and callees by signature shape), and safe because constants and
/// globals are not use-tracked: the scratch module dies first and leaves
/// no trace on the source module.
Function *buildCanonicalShadow(const Function &F, Module &Scratch) {
  Function *Clone = cloneFunctionInto(&F, Scratch, F.getName(), {}, {});
  canonicalizeFunction(*Clone, Scratch.getContext());
  return Clone;
}

} // namespace

Fingerprint canonicalFingerprint(const Function &F) {
  if (F.isDeclaration())
    return Fingerprint::compute(F);
  Module Scratch(F.getName() + ".canon", F.getParent()->getContext());
  return Fingerprint::compute(*buildCanonicalShadow(F, Scratch));
}

StructuralHash canonicalStructuralHash(const Function &F) {
  if (F.isDeclaration())
    return computeStructuralHash(F);
  Module Scratch(F.getName() + ".canon", F.getParent()->getContext());
  return computeStructuralHash(*buildCanonicalShadow(F, Scratch));
}

Fingerprint fingerprintFor(const Function &F, bool Canonical) {
  return Canonical ? canonicalFingerprint(F) : Fingerprint::compute(F);
}

StructuralHash structuralHashFor(const Function &F, bool Canonical) {
  return Canonical ? canonicalStructuralHash(F) : computeStructuralHash(F);
}

} // namespace salssa
