//===- transforms/Simplify.h - Cleanup passes ---------------------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The clean-up stage of the merging pipeline (Fig 1 of the paper):
/// constant folding, algebraic simplification, select/phi folding (the
/// "existing optimizations from LLVM" that merge identical phi-nodes and
/// dissolve redundant selects), CFG simplification (unreachable block
/// removal, branch folding, block merging/threading) and dead code
/// elimination. Both FMSA and SalSSA run this after code generation; the
/// quality of merged code is measured after clean-up, as in the paper.
///
//===----------------------------------------------------------------------===//

#ifndef SALSSA_TRANSFORMS_SIMPLIFY_H
#define SALSSA_TRANSFORMS_SIMPLIFY_H

namespace salssa {

class Context;
class Function;
class Instruction;
class Module;
class Value;

/// Statistics from a simplification run.
struct SimplifyStats {
  unsigned InstructionsRemoved = 0;
  unsigned BlocksRemoved = 0;
  unsigned BranchesFolded = 0;
  unsigned PhisMerged = 0;
  unsigned Iterations = 0;
};

/// Returns a simpler value equivalent to \p I (constant folding and
/// algebraic identities), or null when no simplification applies. Does not
/// mutate the IR.
Value *simplifyInstructionValue(Instruction *I, Context &Ctx);

/// Removes blocks unreachable from the entry (fixing phis on the way).
unsigned removeUnreachableBlocks(Function &F);

/// Runs the full clean-up pipeline to a fixpoint (bounded).
///
/// \p PreserveTraps keeps dead instructions whose execution is an
/// observable trap in the reference interpreter (loads, integer
/// division — see Instruction::mayTrap). Required when simplifying
/// behaviour-pinned code: the merged-body cleanup runs under the
/// differential harness's "same trap status" bar, where erasing a dead
/// out-of-bounds load would delete the trap the original still hits.
/// Code whose behaviour is *defined* by the simplification (workload
/// builders shaping a population) uses the default aggressive mode.
SimplifyStats simplifyFunction(Function &F, Context &Ctx,
                               bool PreserveTraps = false);

/// Dead code elimination only: erases unused side-effect-free
/// instructions. Returns the number erased. \p PreserveTraps as in
/// simplifyFunction.
unsigned eliminateDeadCode(Function &F, bool PreserveTraps = false);

} // namespace salssa

#endif // SALSSA_TRANSFORMS_SIMPLIFY_H
