//===- analysis/CFG.cpp - CFG utilities ---------------------------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/CFG.h"
#include <algorithm>

using namespace salssa;

CFGInfo::CFGInfo(const Function &F) {
  if (F.isDeclaration())
    return;
  // Iterative DFS computing post-order; RPO is its reverse.
  std::vector<BasicBlock *> PostOrder;
  std::set<const BasicBlock *> Visited;
  // Stack of (block, next successor index).
  std::vector<std::pair<BasicBlock *, size_t>> Stack;
  BasicBlock *Entry = F.getEntryBlock();
  Stack.push_back({Entry, 0});
  Visited.insert(Entry);
  while (!Stack.empty()) {
    auto &[BB, NextIdx] = Stack.back();
    std::vector<BasicBlock *> Succs = BB->successors();
    if (NextIdx < Succs.size()) {
      BasicBlock *S = Succs[NextIdx++];
      if (Visited.insert(S).second)
        Stack.push_back({S, 0});
      continue;
    }
    PostOrder.push_back(BB);
    Stack.pop_back();
  }
  RPO.assign(PostOrder.rbegin(), PostOrder.rend());
  Reachable = std::move(Visited);

  // Unique predecessor sets over reachable edges.
  for (BasicBlock *BB : RPO) {
    std::vector<BasicBlock *> Succs = BB->successors();
    std::set<BasicBlock *> Seen;
    for (BasicBlock *S : Succs)
      if (Seen.insert(S).second)
        Preds[S].push_back(BB);
  }
}

const std::vector<BasicBlock *> &
CFGInfo::predecessors(const BasicBlock *BB) const {
  auto It = Preds.find(BB);
  return It == Preds.end() ? Empty : It->second;
}

std::set<const BasicBlock *> salssa::reachableBlocks(const Function &F) {
  CFGInfo CFG(F);
  std::set<const BasicBlock *> Result;
  for (const BasicBlock *BB : CFG.reversePostOrder())
    Result.insert(BB);
  return Result;
}
