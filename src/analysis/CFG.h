//===- analysis/CFG.h - CFG utilities ----------------------------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Control-flow graph queries computed from a snapshot of a function:
/// predecessor maps, traversal orders, reachability. Passes that mutate the
/// CFG recompute these; nothing here caches across mutations.
///
//===----------------------------------------------------------------------===//

#ifndef SALSSA_ANALYSIS_CFG_H
#define SALSSA_ANALYSIS_CFG_H

#include "ir/Function.h"
#include <map>
#include <set>
#include <vector>

namespace salssa {

/// An immutable snapshot of a function's CFG structure.
class CFGInfo {
public:
  explicit CFGInfo(const Function &F);

  /// Unique predecessor blocks of \p BB (no duplicate entries even when
  /// multiple edges exist from the same block).
  const std::vector<BasicBlock *> &predecessors(const BasicBlock *BB) const;

  /// Blocks in reverse post-order from the entry (unreachable blocks are
  /// excluded).
  const std::vector<BasicBlock *> &reversePostOrder() const { return RPO; }

  /// Post-order position (higher = earlier in RPO); unreachable blocks are
  /// absent.
  bool isReachable(const BasicBlock *BB) const {
    return Reachable.count(BB) != 0;
  }

  size_t getNumReachableBlocks() const { return Reachable.size(); }

private:
  std::map<const BasicBlock *, std::vector<BasicBlock *>> Preds;
  std::vector<BasicBlock *> RPO;
  std::set<const BasicBlock *> Reachable;
  std::vector<BasicBlock *> Empty;
};

/// Blocks of \p F reachable from the entry.
std::set<const BasicBlock *> reachableBlocks(const Function &F);

} // namespace salssa

#endif // SALSSA_ANALYSIS_CFG_H
