//===- analysis/Dominators.cpp - Dominator tree --------------------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
// Implements the iterative dominance algorithm of Cooper, Harvey & Kennedy,
// "A Simple, Fast Dominance Algorithm" (2001), and dominance frontiers per
// Cytron et al. (1991).
//
//===----------------------------------------------------------------------===//

#include "analysis/Dominators.h"

using namespace salssa;

DominatorTree::DominatorTree(const Function &F) : F(F), CFG(F) {
  const std::vector<BasicBlock *> &RPO = CFG.reversePostOrder();
  if (RPO.empty())
    return;
  for (unsigned I = 0; I < RPO.size(); ++I)
    RPOIndex[RPO[I]] = I;

  BasicBlock *Entry = RPO.front();
  IDom[Entry] = Entry; // sentinel: entry is its own idom internally

  auto Intersect = [&](BasicBlock *A, BasicBlock *B) {
    while (A != B) {
      while (RPOIndex.at(A) > RPOIndex.at(B))
        A = IDom.at(A);
      while (RPOIndex.at(B) > RPOIndex.at(A))
        B = IDom.at(B);
    }
    return A;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned I = 1; I < RPO.size(); ++I) {
      BasicBlock *BB = RPO[I];
      BasicBlock *NewIDom = nullptr;
      for (BasicBlock *P : CFG.predecessors(BB)) {
        if (!IDom.count(P))
          continue; // predecessor not yet processed
        NewIDom = NewIDom ? Intersect(NewIDom, P) : P;
      }
      assert(NewIDom && "reachable block with no processed predecessor");
      auto It = IDom.find(BB);
      if (It == IDom.end() || It->second != NewIDom) {
        IDom[BB] = NewIDom;
        Changed = true;
      }
    }
  }

  for (unsigned I = 1; I < RPO.size(); ++I)
    Children[IDom.at(RPO[I])].push_back(RPO[I]);
}

const std::vector<BasicBlock *> &
DominatorTree::getChildren(const BasicBlock *BB) const {
  auto It = Children.find(BB);
  return It == Children.end() ? EmptyChildren : It->second;
}

std::set<BasicBlock *> DominatorTree::iteratedDominanceFrontier(
    const std::set<BasicBlock *> &DefBlocks) {
  std::set<BasicBlock *> Result;
  std::vector<BasicBlock *> Worklist(DefBlocks.begin(), DefBlocks.end());
  while (!Worklist.empty()) {
    BasicBlock *BB = Worklist.back();
    Worklist.pop_back();
    if (!CFG.isReachable(BB))
      continue;
    for (BasicBlock *FBlock : dominanceFrontier(BB))
      if (Result.insert(FBlock).second)
        Worklist.push_back(FBlock);
  }
  return Result;
}

BasicBlock *DominatorTree::getIDom(const BasicBlock *BB) const {
  auto It = IDom.find(BB);
  if (It == IDom.end())
    return nullptr;
  // Entry's sentinel self-idom is reported as null.
  return It->second == BB ? nullptr : It->second;
}

bool DominatorTree::dominates(const BasicBlock *A,
                              const BasicBlock *B) const {
  if (!CFG.isReachable(B))
    return true; // vacuous: nothing executes in B
  if (!CFG.isReachable(A))
    return false;
  if (A == B)
    return true;
  const BasicBlock *Runner = B;
  unsigned AIdx = RPOIndex.at(A);
  while (true) {
    auto It = IDom.find(Runner);
    assert(It != IDom.end() && "reachable block missing from idom map");
    if (It->second == Runner)
      return false; // reached the entry without meeting A
    Runner = It->second;
    if (Runner == A)
      return true;
    // Dominators always have smaller RPO indices; early exit when passed.
    if (RPOIndex.at(Runner) < AIdx)
      return false;
  }
}

bool DominatorTree::dominates(const Instruction *Def,
                              const Instruction *User) const {
  const BasicBlock *DefBB = Def->getParent();
  const BasicBlock *UserBB = User->getParent();
  assert(DefBB && UserBB && "dominance query on unlinked instructions");
  if (DefBB != UserBB)
    return dominates(DefBB, UserBB);
  if (Def == User)
    return false; // an instruction does not dominate itself as a use
  // Phis at the block head execute "simultaneously on entry": a phi
  // dominates every non-phi in its block but no other phi.
  if (Def->isPhi() && !User->isPhi())
    return true;
  if (User->isPhi())
    return false;
  for (const Instruction *I : *DefBB) {
    if (I == Def)
      return true;
    if (I == User)
      return false;
  }
  assert(false && "instructions not found in their own parent block");
  return false;
}

bool DominatorTree::dominatesBlockExit(const Instruction *Def,
                                       const BasicBlock *BB) const {
  const BasicBlock *DefBB = Def->getParent();
  if (DefBB == BB)
    return true; // any instruction in BB executes before BB's exit edge
  return dominates(DefBB, BB);
}

const std::set<BasicBlock *> &
DominatorTree::dominanceFrontier(const BasicBlock *BB) {
  if (!FrontiersComputed) {
    FrontiersComputed = true;
    for (BasicBlock *B : CFG.reversePostOrder()) {
      const std::vector<BasicBlock *> &Preds = CFG.predecessors(B);
      if (Preds.size() < 2)
        continue;
      for (BasicBlock *P : Preds) {
        BasicBlock *Runner = P;
        BasicBlock *Stop = getIDom(B);
        while (Runner && Runner != Stop) {
          Frontiers[Runner].insert(B);
          Runner = getIDom(Runner);
        }
        // The entry has a null idom; if Stop is null the walk above ends
        // at the entry naturally (its getIDom is null).
        if (!Stop && Runner == nullptr) {
          // Walked past entry: nothing else to add.
        }
      }
    }
  }
  auto It = Frontiers.find(BB);
  return It == Frontiers.end() ? EmptyFrontier : It->second;
}
