//===- analysis/Dominators.h - Dominator tree --------------------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dominator tree built with the Cooper-Harvey-Kennedy iterative algorithm,
/// plus dominance frontiers (Cytron et al.) used by SSA construction. The
/// verifier uses instruction-level dominance to check the SSA dominance
/// property that SalSSA's code generator must restore (§4.3 of the paper).
///
//===----------------------------------------------------------------------===//

#ifndef SALSSA_ANALYSIS_DOMINATORS_H
#define SALSSA_ANALYSIS_DOMINATORS_H

#include "analysis/CFG.h"

namespace salssa {

/// Immediate-dominator tree over the reachable CFG of one function.
class DominatorTree {
public:
  explicit DominatorTree(const Function &F);

  /// Immediate dominator of \p BB (null for the entry or unreachable
  /// blocks).
  BasicBlock *getIDom(const BasicBlock *BB) const;

  /// Block-level dominance (reflexive). Unreachable blocks dominate
  /// nothing and are dominated by everything (vacuous truth, matching
  /// LLVM's convention for verifier purposes).
  bool dominates(const BasicBlock *A, const BasicBlock *B) const;

  /// Instruction-level dominance: true when \p Def's value is available at
  /// \p User. Same-block cases use instruction order; phi uses must be
  /// checked against the incoming block's terminator by the caller.
  bool dominates(const Instruction *Def, const Instruction *User) const;

  /// True when the value \p Def is available on exit from block \p BB.
  bool dominatesBlockExit(const Instruction *Def,
                          const BasicBlock *BB) const;

  /// Dominance frontier of \p BB (computed lazily on first query).
  const std::set<BasicBlock *> &dominanceFrontier(const BasicBlock *BB);

  /// Children of \p BB in the dominator tree.
  const std::vector<BasicBlock *> &getChildren(const BasicBlock *BB) const;

  /// Iterated dominance frontier of \p DefBlocks — the phi placement set
  /// of Cytron et al.'s SSA construction.
  std::set<BasicBlock *>
  iteratedDominanceFrontier(const std::set<BasicBlock *> &DefBlocks);

  const CFGInfo &getCFG() const { return CFG; }

private:
  unsigned rpoIndexOf(const BasicBlock *BB) const;

  const Function &F;
  CFGInfo CFG;
  std::map<const BasicBlock *, BasicBlock *> IDom;
  std::map<const BasicBlock *, std::vector<BasicBlock *>> Children;
  std::vector<BasicBlock *> EmptyChildren;
  std::map<const BasicBlock *, unsigned> RPOIndex;
  bool FrontiersComputed = false;
  std::map<const BasicBlock *, std::set<BasicBlock *>> Frontiers;
  std::set<BasicBlock *> EmptyFrontier;
};

} // namespace salssa

#endif // SALSSA_ANALYSIS_DOMINATORS_H
