//===- merge/MergeOptions.h - Merge configuration and statistics --------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Configuration knobs and statistics shared by the FMSA baseline and
/// SalSSA. The knobs correspond to the design choices the paper ablates:
/// phi-node coalescing (§4.4 / Fig 20), commutative operand reordering
/// (Fig 9) and the xor branch fusion (Fig 11).
///
//===----------------------------------------------------------------------===//

#ifndef SALSSA_MERGE_MERGEOPTIONS_H
#define SALSSA_MERGE_MERGEOPTIONS_H

#include "align/NeedlemanWunsch.h"
#include <cstddef>
#include <cstdint>
#include <string>

namespace salssa {

/// Which merging technique a pipeline run uses.
enum class MergeTechnique : uint8_t {
  FMSA,   ///< state of the art: register demotion + alignment (CGO'19)
  SalSSA, ///< this paper: direct SSA-form merging
};

/// How the driver selects which of a function's nearest candidates to
/// attempt (MergeDriverOptions::Selection). Fingerprint distance is only
/// a proxy for the real objective — code-size profit — so the non-paper
/// modes re-rank a widened distance slate by a cheap calibrated profit
/// estimate (ProfitModel, FunctionMerger.h) before spending alignment
/// time on the top-t.
enum class SelectionStrategy : uint8_t {
  /// The paper's scheme verbatim: top-t by (Manhattan distance, pool
  /// position). Bit-identical to the pre-selection-layer driver.
  Distance,
  /// Query a widened distance slate, annotate each hit with a ProfitModel
  /// estimate, re-rank by (estimated profit, same-module preference,
  /// distance, pool position), keep the top-t. Deterministic at every
  /// thread count (the model calibrates only from serial-order records).
  Profit,
  /// Profit ranking plus an exploration threshold t driven per round
  /// from observed selection outcomes (deep wins widen t, top-1 wins
  /// shrink it, bounded in [t, t+4]), and — in parallel runs — a commit
  /// window sized from the observed conflict + skip rate. The adaptive
  /// window never changes outcomes, only speculation waste.
  Adaptive,
};

/// How a whole-program session picks the *host* module — the one module
/// every merged function materializes in (CrossModuleMerger,
/// ShardedSessionRunner). An explicit setHostModule always wins over the
/// policy.
enum class HostPolicy : uint8_t {
  /// The first registered module (the legacy behaviour).
  First,
  /// The module with the largest estimated size (SizeModel under the
  /// session's TargetArch). Rationale: the biggest module contributes the
  /// most pool entries, so hosting there maximizes intra-module commits
  /// (no cross-module operand references, cheaper link layouts). Ties go
  /// to the earlier-registered module.
  Biggest,
  /// The module whose *definitions* receive the most call sites across
  /// the whole registered set (a static hotness proxy: no profile data is
  /// modelled, so call-site in-degree stands in for call frequency).
  /// Merged bodies land next to the callers that reach them most often.
  /// Ties go to the earlier-registered module.
  Hottest,
};

/// Code-generator options.
struct MergeCodeGenOptions {
  /// §4.4: coalesce disjoint definitions into one slot before SSA
  /// reconstruction (SalSSA-NoPC disables this; FMSA never has it).
  bool EnablePhiCoalescing = true;
  /// Fig 9: reorder commutative operands to avoid selects.
  bool EnableOperandReordering = true;
  /// Fig 11: merge crossed conditional branches with one xor instead of
  /// two label-selection blocks.
  bool EnableXorBranchFusion = true;
  /// DP variant for the alignment stage. Auto keeps the paper's full
  /// traceback matrix for normal pairs and switches to the linear-space
  /// variant past FullMatrixCellLimit cells (giant pairs).
  AlignMode Alignment = AlignMode::Auto;

  static MergeCodeGenOptions forTechnique(MergeTechnique T,
                                          bool PhiCoalescing = true) {
    MergeCodeGenOptions O;
    if (T == MergeTechnique::FMSA) {
      O.EnablePhiCoalescing = false; // the paper's novel optimization
      O.EnableXorBranchFusion = false;
    } else {
      O.EnablePhiCoalescing = PhiCoalescing;
    }
    return O;
  }
};

/// How far one pairwise merge attempt got. Recorded on
/// MergeAttemptStats (hence on every MergeRecord), and — because shard
/// splicing replays name allocation from records — also the authority on
/// whether an attempt burned a unique merged-function name: codegen runs
/// for Completed and BudgetBody attempts only.
enum class AttemptOutcome : uint8_t {
  /// The full pipeline ran: the merged function was generated and priced
  /// (it may still be unprofitable, or rejected later by the commit
  /// firewall).
  Completed = 0,
  /// Nothing ran: the pair's return types cannot merge.
  TypeMismatch,
  /// Rejected before code generation: the alignment cell/step budget was
  /// exceeded (or a BudgetBlowout fault fired).
  BudgetAlignment,
  /// Rejected after code generation: the merged body blew the size cap.
  /// The body was discarded, but its unique name was already burned.
  BudgetBody,
  /// The attempt aborted with an exception (real or injected) and was
  /// converted into a skipped pair by the attempt guard.
  Faulted,
  /// Nothing ran: the warm decision cache (merge/DecisionCache.h)
  /// recorded this attempt as a non-winner, so the whole pipeline was
  /// skipped. The unique merged-function name a cold run would have
  /// burned is burned anyway — replay must keep the name counter in
  /// lockstep with the cold run for byte-identical modules.
  CacheSkipped,
};

/// True when an attempt with this outcome consumed one unique
/// merged-function name (i.e. its code generation stage ran — or, for
/// CacheSkipped, was replayed as if it had).
inline bool attemptBurnedName(AttemptOutcome O) {
  return O == AttemptOutcome::Completed || O == AttemptOutcome::BudgetBody ||
         O == AttemptOutcome::CacheSkipped;
}

/// Per-attempt resource caps, enforced inside attemptMerge. Every cap
/// defaults to 0 = unlimited, which keeps the zero-fault/zero-budget
/// configuration bit-identical to the uncapped pipeline. A capped-out
/// attempt is not an error: it reports AttemptOutcome::BudgetAlignment /
/// BudgetBody and the driver counts it in MergeDriverStats::BudgetRejects
/// and moves on.
struct AttemptBudget {
  /// Cap on the alignment DP size, in cells (SeqLen1 x SeqLen2). The
  /// first line of defence against a giant pair blowing peak memory.
  uint64_t MaxAlignmentCells = 0;
  /// Cap on the *linear* work of one attempt (SeqLen1 + SeqLen2):
  /// linearization items, clone counts and repair work all scale with
  /// it.
  uint64_t MaxAttemptSteps = 0;
  /// Cap on the generated merged body, in size-model cost units
  /// (estimateFunctionSize + thunks). Bodies past the cap are discarded
  /// before the profitability decision.
  uint64_t MaxMergedBodySize = 0;

  bool any() const {
    return MaxAlignmentCells || MaxAttemptSteps || MaxMergedBodySize;
  }
};

/// Statistics of one pairwise merge attempt.
struct MergeAttemptStats {
  // Alignment.
  size_t SeqLen1 = 0;
  size_t SeqLen2 = 0;
  size_t MatchedPairs = 0;
  size_t AlignmentBytes = 0;   ///< DP footprint (Fig 22)
  double AlignmentSeconds = 0; ///< Fig 23
  // Code generation.
  double CodeGenSeconds = 0; ///< Fig 23 (includes repair + clean-up)
  unsigned SelectsInserted = 0;
  unsigned LabelSelectionBlocks = 0;
  unsigned XorFusions = 0;
  unsigned RepairSlots = 0;
  unsigned CoalescedPairs = 0;
  // Profitability.
  unsigned SizeF1 = 0;
  unsigned SizeF2 = 0;
  unsigned SizeMerged = 0; ///< merged fn + thunks, in cost-model units
  bool Profitable = false;
  // Containment.
  AttemptOutcome Outcome = AttemptOutcome::TypeMismatch; ///< how far it got
  /// Set at the serial commit stage when the would-be winner failed the
  /// always-on verifier firewall and was rolled back.
  bool VerifierRejected = false;
};

} // namespace salssa

#endif // SALSSA_MERGE_MERGEOPTIONS_H
