//===- merge/CandidateIndex.h - Near-linear candidate ranking -----------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The indexing layer that replaces the driver's O(n²) all-pairs
/// fingerprint scan. The pool's live fingerprints are held in a
/// two-level structure:
///
///  1. an LSH band table (Fingerprint::SketchBands buckets per entry):
///     functions sharing a band hash are probable near-duplicates, so a
///     query probes its own band buckets first to *seed* the running
///     top-k with very close candidates;
///
///  2. a per-return-type flat array of size buckets: because the ranking
///     metric is Manhattan distance over opcode counts,
///     |Size(A) - Size(B)| is a lower bound on distance(A, B). A query
///     walks outward from its own size bucket (gap 0, 1, 2, ...) and
///     stops — provably losing nothing — as soon as the size gap alone
///     exceeds the current k-th best distance. The buckets are plain
///     vectors indexed by instruction count, so each expansion step is
///     two array probes instead of a std::multimap pointer chase; this
///     is what pushes the pairing exponent from ~1.6 toward ~1.2 on
///     4k+ pools (bench_ranking_scaling).
///
/// Step 2 makes query() *exact*: it returns precisely the k nearest live
/// candidates under the brute-force ordering (distance, then insertion
/// id), no matter how the sketch behaves. Step 1 only accelerates it:
/// a tight early bound means the outward walk terminates after touching
/// a few size-neighbours instead of the whole pool. Every distance on
/// the shortlist is verified with the early-exit exact distance
/// (fingerprintDistance with a running bound), so committed-merge
/// decisions are bit-identical to the quadratic baseline — this is the
/// property ranking_test.cpp checks and bench_ranking_scaling measures.
///
/// insert is amortized O(SketchBands); retire additionally scans the
/// (tiny) size bucket and band buckets it leaves. The driver maintains
/// the index incrementally across committed merges and remerge
/// insertions instead of rescanning the pool.
///
//===----------------------------------------------------------------------===//

#ifndef SALSSA_MERGE_CANDIDATEINDEX_H
#define SALSSA_MERGE_CANDIDATEINDEX_H

#include "merge/Fingerprint.h"
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace salssa {

struct ProfitModel;

/// Incremental top-k nearest-fingerprint index over a pool of live
/// candidates. Ids are dense pool indices assigned by the caller.
class CandidateIndex {
public:
  /// One query hit. Ordered exactly like the brute-force ranking: by
  /// distance, ties by lower id (== earlier pool position). ModuleId is
  /// a caller-supplied payload echoed back from insert — cross-module
  /// sessions register every module's candidates in one index and use it
  /// to tell intra- from cross-module pairs; single-module drivers leave
  /// it 0. EstProfit is a ProfitModel estimate filled in only when the
  /// caller passes a model to query() (the profit-guided selection
  /// modes); neither payload ever participates in the index's ordering —
  /// re-ranking by profit is the *caller's* move (MergePipeline), so the
  /// index's exactness contract stays purely distance-based.
  struct Hit {
    uint64_t Distance = 0;
    uint32_t Id = 0;
    uint32_t ModuleId = 0;
    int64_t EstProfit = 0;
  };

  /// Cumulative instrumentation (for benchmarks and tests).
  struct Stats {
    uint64_t Queries = 0;
    uint64_t SeedProbes = 0;      ///< LSH bucket entries examined
    uint64_t ExpansionSteps = 0;  ///< size-map entries examined
    uint64_t DistanceCalls = 0;   ///< exact distance evaluations
  };

  /// Aggregate view of one merge-compatibility partition (all live
  /// entries sharing a return type — the only candidates ever at finite
  /// distance from each other, hence the provable independence boundary
  /// sharded sessions split on; see ShardedSessionRunner.h). Summaries
  /// are reported in *first-insertion order*, which is deterministic
  /// given the caller's insertion order — never in hash-map order.
  struct PartitionSummary {
    Type *RetTy = nullptr;
    /// First-insertion rank of this partition (== its index in the
    /// summary vector): a stable partition id across runs.
    uint32_t FirstSeen = 0;
    size_t Live = 0;
    /// Σ Fingerprint::Size over live entries.
    uint64_t SizeSum = 0;
    /// Σ Size² over live entries — the alignment-cost proxy shard
    /// balancing weighs partitions by (attempt cost is quadratic in
    /// function size, so SizeSum alone under-weights giant-function
    /// partitions).
    uint64_t CostSum = 0;
    /// The partition's dominant coarse-histogram group (argmax of the
    /// live entries' summed Fingerprint::GroupSum; ties to the lowest
    /// group): a cheap structural signature, mixed into the shard
    /// assignment seed so equal-weight partitions spread deterministically
    /// rather than by insertion accident.
    uint32_t CoarseBucket = 0;
  };

  /// Live-partition summaries in first-insertion order. Partitions whose
  /// every entry has been retired are still reported (Live == 0) so the
  /// FirstSeen ranks stay stable.
  std::vector<PartitionSummary> partitionSummaries() const;

  size_t numPartitions() const { return PartitionOrder.size(); }

  /// Registers \p FP under \p Id and makes it live. \p Id must not be
  /// currently live; ids should be dense (they index an internal vector).
  /// \p ModuleId tags the entry with its owning module (see Hit).
  void insert(uint32_t Id, const Fingerprint &FP, uint32_t ModuleId = 0);

  /// Removes \p Id from the live set (committed or consumed candidates).
  void retire(uint32_t Id);

  bool isLive(uint32_t Id) const {
    return Id < Entries.size() && Entries[Id].Live;
  }
  size_t liveCount() const { return NumLive; }

  /// Returns the \p K live candidates nearest to \p FP — exactly the
  /// first K entries of the brute-force (distance, id)-sorted ranking,
  /// excluding \p ExcludeId and any candidate with a different return
  /// type. Sorted ascending. When \p Model is non-null every returned
  /// hit additionally carries Model->estimate(FP, candidate, distance)
  /// in EstProfit (annotation only — it never changes which K are
  /// selected or their order).
  ///
  /// \p ExtraK is the *bounded extension* used by the profit-guided
  /// selection modes to widen their slate at (nearly) the plain query's
  /// cost: up to ExtraK additional candidates are returned — the next
  /// entries of the same brute-force ranking, but only those whose
  /// distance does not exceed the K-th best. The search bound (hence
  /// the size-bucket walk, hence the cost) stays exactly the top-K
  /// bound; the extension recycles candidates the walk examined anyway.
  /// The result is deterministic: the first min(K, live) hits are the
  /// exact top-K, the rest are the (distance, id)-ranked continuation
  /// truncated at the K-th-best distance.
  std::vector<Hit> query(const Fingerprint &FP, unsigned K,
                         uint32_t ExcludeId = UINT32_MAX,
                         const ProfitModel *Model = nullptr,
                         unsigned ExtraK = 0) const;

  const Stats &stats() const { return Counters; }

private:
  struct Entry {
    /// Owned copy (~330 bytes): the driver's pool reallocates on
    /// remerge push_back, so borrowing a pointer into it would dangle.
    Fingerprint FP;
    uint32_t ModuleId = 0;
    bool Live = false;
  };

  /// All same-return-type candidates (the only ones at finite distance).
  struct Partition {
    /// Live ids bucketed by Fingerprint::Size (bucket index == size):
    /// the exact-search backbone. Buckets only ever grow in count;
    /// MinSize/MaxSize are a monotone outer hull of the sizes ever
    /// inserted, so a query's outward walk may probe empty buckets left
    /// by retires — each probe is one vector-size check, far cheaper
    /// than keeping the hull tight.
    std::vector<std::vector<uint32_t>> SizeBuckets;
    uint32_t MinSize = UINT32_MAX;
    uint32_t MaxSize = 0;
    size_t NumLive = 0;
    /// Aggregates over the live entries, maintained by insert/retire,
    /// backing partitionSummaries().
    uint64_t SizeSum = 0;
    uint64_t CostSum = 0;
    std::array<uint64_t, Fingerprint::NumGroups> GroupAgg{};
    /// LSH band buckets: band-salted hash -> live ids.
    std::unordered_map<uint64_t, std::vector<uint32_t>> Bands;
  };

  Partition &partitionFor(Type *RetTy);
  const Partition *partitionFor(Type *RetTy) const;

  std::vector<Entry> Entries;
  std::unordered_map<Type *, Partition> Partitions;
  /// Return types in first-insertion order (never erased): the
  /// deterministic iteration order partitionSummaries() reports in.
  std::vector<Type *> PartitionOrder;
  size_t NumLive = 0;

  // Query-scoped scratch: epoch-stamped visited marks, reused across
  // queries to avoid per-query allocation (mutable: query() is
  // logically const).
  mutable std::vector<uint32_t> VisitEpoch;
  mutable uint32_t CurrentEpoch = 0;
  mutable Stats Counters;
};

} // namespace salssa

#endif // SALSSA_MERGE_CANDIDATEINDEX_H
