//===- merge/CrossModuleMerger.h - Whole-program merge session ----------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cross-module (whole-program) merging session. The paper evaluates
/// SalSSA inside one translation unit, but its ranking and alignment
/// machinery is module-agnostic; following the direction of "Optimistic
/// Global Function Merger" (Lee et al.), this session links any number of
/// Modules into one shared CandidateIndex and lets the MergePipeline
/// rank, attempt and commit merges across module boundaries.
///
/// Session lifecycle:
///
///   CrossModuleMerger Session(Options);
///   Session.addModule(M0);   // registration order is deterministic state
///   Session.addModule(M1);
///   ...
///   Session.setHostModule(M1);          // optional; default = first added
///   CrossModuleStats S = Session.run(); // one shot
///
/// run() begins with linker-style symbol resolution
/// (ir/SymbolResolution.h): same-named external declarations across the
/// registered modules are bound to one canonical function and call
/// sites retargeted, so calls into common libraries align across module
/// boundaries — without this binding step, clone families split across
/// translation units fail to match at every call site and cross-module
/// merging loses most of its profit.
///
/// Host module: every merged function materializes in exactly one
/// designated module, the *host* (default: the first registered module).
/// Attempts still build speculative functions in per-worker staging
/// modules; the commit stage moves the winner into the host with
/// Module::takeFunction/adoptFunction and rewrites both inputs — in
/// whichever modules they live — into thunks that tail-call the merged
/// function. Thunks keep each input's name, signature and module, so
/// every caller in every registered module (and any external caller) is
/// rewritten *implicitly*: call sites are untouched, the callee's body
/// dispatches. This is the paper's committing scheme, applied across
/// modules; the merged function is externally visible by construction
/// since calls resolve by Function pointer, not by per-module symbol
/// tables. Call-site redirection (rewriting callers to invoke the merged
/// function directly and dropping dead thunks) is a size win only with
/// visibility information this IR does not model, so the profitability
/// model keeps charging two thunks per commit (SizeModel), exactly as in
/// the single-module driver.
///
/// Determinism contract: pool order is (size desc, module registration
/// order, creation order) — all deterministic — and the MergePipeline's
/// optimistic-commit replay is module-count-agnostic, so for any module
/// set the session commits identical merges with identical records,
/// names and module bytes at every thread count. With one registered
/// module the session reproduces runFunctionMerging bit for bit
/// (MergeDriverOptions::CrossModule A/Bs exactly that).
///
/// Candidate selection: the session's global greedy order can consume
/// partners that per-module runs pair better — at a coarse split (K=2)
/// distance-ranked sessions can land a hair below per-module merging.
/// MergeDriverOptions::Selection = Profit/Adaptive re-ranks each
/// entry's slate by estimated profit with same-module tie-breaking
/// (prefer the local partner at equal score, leaving other modules'
/// partners for their own near-clones), which restores session >=
/// per-module at every split (bench_cross_module enforces it; the K=2
/// regression lives in tests/cross_module_test.cpp). See "Candidate
/// selection" in the directory README.
///
/// Ownership/teardown: after a session, merged functions in the host keep
/// operand references to input modules' globals. Own the registered
/// modules with a ModuleGroup (ir/Module.h) so teardown order cannot
/// dangle those references.
///
//===----------------------------------------------------------------------===//

#ifndef SALSSA_MERGE_CROSSMODULEMERGER_H
#define SALSSA_MERGE_CROSSMODULEMERGER_H

#include "merge/MergeDriver.h"

namespace salssa {

class Module;

/// Aggregate results of one cross-module session.
struct CrossModuleStats {
  /// The pipeline's stats, exactly as a single-module run reports them
  /// (records in serial order, CPU-second accounting, etc.).
  MergeDriverStats Driver;
  unsigned NumModules = 0;
  /// Commits pairing functions from different modules — the merges a
  /// per-module run structurally cannot find.
  unsigned CrossModuleMerges = 0;
  /// Commits whose inputs shared a module.
  unsigned IntraModuleMerges = 0;
  /// Link-step symbol resolution (ir/SymbolResolution.h), run before
  /// ranking: external symbols bound across modules, and call sites
  /// retargeted to their canonical callees.
  unsigned CanonicalSymbols = 0;
  unsigned RetargetedCalls = 0;
  /// Sum of estimateModuleSize over the registered modules, before and
  /// after the session (same SizeModel the profitability decisions use).
  uint64_t SizeBefore = 0;
  uint64_t SizeAfter = 0;

  double reductionPercent() const {
    if (SizeBefore == 0)
      return 0;
    return 100.0 * (1.0 - double(SizeAfter) / double(SizeBefore));
  }
};

/// One cross-module merging session: register modules, optionally pick a
/// host, run once. The session borrows the modules — it does not own
/// them — and must not outlive them.
class CrossModuleMerger {
public:
  explicit CrossModuleMerger(const MergeDriverOptions &Options);

  /// Registers \p M. All registered modules must share one Context.
  /// Registration order is deterministic session state (it breaks pool
  /// ties); callers wanting reproducible runs must register in a fixed
  /// order.
  void addModule(Module &M);

  /// Designates \p M (already registered) as the host module that will
  /// own every merged function, overriding MergeDriverOptions::Host.
  /// Without an explicit host, run() resolves the configured HostPolicy
  /// (First — the legacy default —, Biggest, or Hottest; see
  /// selectHostModule in ShardedSessionRunner.h).
  void setHostModule(Module &M);

  /// The explicitly designated host; before run() resolves a policy this
  /// reports the would-be HostPolicy::First choice.
  Module *hostModule() const { return Host; }
  size_t numModules() const { return Modules.size(); }

  /// Runs the session to quiescence. Call exactly once, after all
  /// addModule calls. When MergeDriverOptions::ShardCount != 1 the
  /// session delegates to a ShardedSessionRunner over the same module
  /// set and host — the sharded execution of exactly this session (see
  /// ShardedSessionRunner.h for the equivalence contract).
  CrossModuleStats run();

private:
  MergeDriverOptions Options;
  std::vector<Module *> Modules;
  Module *Host = nullptr;
  bool ExplicitHost = false;
  bool Ran = false;
};

} // namespace salssa

#endif // SALSSA_MERGE_CROSSMODULEMERGER_H
