//===- merge/FunctionMerger.cpp - Pairwise merge pipeline ----------------------===//
//
// Part of the SalSSA reproduction project, MIT license.
//
//===----------------------------------------------------------------------===//

#include "merge/FunctionMerger.h"
#include "align/Matcher.h"
#include "ir/IRBuilder.h"
#include "ir/Module.h"
#include "support/Chrono.h"
#include <chrono>

using namespace salssa;

ProfitModel ProfitModel::forArch(TargetArch Arch) {
  ProfitModel M;
  if (Arch == TargetArch::X86Like) {
    // Average lowered instruction on the CISC model is ~3-4 bytes; the
    // per-commit toll mirrors attemptMerge's thunk estimate (two thunks
    // of overhead + call + ret, a few argument moves each).
    M.BytesPerOverlap = 3.5;
    M.BytesPerMismatch = 1.0;
    M.OverheadBytes = 2 * (12 + 5 + 1 + 2 * 3);
  } else {
    M.BytesPerOverlap = 2.5;
    M.BytesPerMismatch = 1.0;
    M.OverheadBytes = 2 * (8 + 4 + 2 + 2 * 3);
  }
  return M;
}

void ProfitModel::observe(uint64_t Overlap, uint64_t Distance,
                          int ActualProfit) {
  if (Overlap == 0)
    return;
  // Invert the estimate at the observed profit: the bytes-per-aligned-
  // slot this attempt actually realized, given the fixed mismatch and
  // overhead terms. |A| + |B| = 2·overlap + D reconstructs the
  // similarity discount without needing the fingerprints here. Clamp
  // before folding so one pathological attempt (tiny overlap, huge
  // negative profit) cannot capsize the model.
  double Expected = double(Overlap) * (2.0 * double(Overlap) /
                                       double(2 * Overlap + Distance));
  double Implied = (double(ActualProfit) + OverheadBytes +
                    BytesPerMismatch * double(Distance)) /
                   Expected;
  if (Implied < MinBytesPerOverlap)
    Implied = MinBytesPerOverlap;
  else if (Implied > MaxBytesPerOverlap)
    Implied = MaxBytesPerOverlap;
  BytesPerOverlap = (1.0 - Alpha) * BytesPerOverlap + Alpha * Implied;
}

namespace {

/// Deterministically corrupts a generated merged body for the
/// FaultKind::CodeGenCorruption fault point: appends a second terminator
/// to the entry block, the exact shape of bug the structural verifier
/// exists to catch ("terminator in the middle of a block" + a bogus
/// back-edge). The body stays safe to size, print and erase — only the
/// commit firewall may reject it.
void corruptMergedBody(Function &Merged, Context &Ctx) {
  BasicBlock *Entry = Merged.getEntryBlock();
  if (!Entry || !Entry->getTerminator())
    return;
  IRBuilder B(Ctx, Entry);
  B.createBr(Entry);
}

/// Reconstructs an AlignmentResult from a cached entry list, validating
/// every step: lengths match the current linearization, the non-gap
/// indices cover both sequences exactly once in order, and every match
/// entry still satisfies itemsMatch. Returns false (leaving \p Out
/// unspecified) on the first inconsistency.
bool replayAlignment(const AlignmentReplay &Replay,
                     const std::vector<SeqItem> &Seq1,
                     const std::vector<SeqItem> &Seq2,
                     AlignmentResult &Out) {
  if (!Replay.Entries || Replay.SeqLen1 != Seq1.size() ||
      Replay.SeqLen2 != Seq2.size())
    return false;
  Out.Entries.clear();
  Out.Entries.reserve(Replay.Entries->size());
  Out.MatchedPairs = 0;
  int64_t Next1 = 0, Next2 = 0;
  for (const auto &[I1, I2] : *Replay.Entries) {
    if (I1 < 0 && I2 < 0)
      return false;
    if (I1 >= 0 && I1 != Next1++)
      return false;
    if (I2 >= 0 && I2 != Next2++)
      return false;
    if (I1 >= 0 && I2 >= 0) {
      if (!itemsMatch(Seq1[static_cast<size_t>(I1)],
                      Seq2[static_cast<size_t>(I2)]))
        return false;
      ++Out.MatchedPairs;
    }
    Out.Entries.push_back({static_cast<int>(I1), static_cast<int>(I2)});
  }
  if (Next1 != static_cast<int64_t>(Seq1.size()) ||
      Next2 != static_cast<int64_t>(Seq2.size()))
    return false;
  Out.DPBytes = 0; // no DP state: the whole point of the warm path
  Out.UsedLinearSpace = false;
  return true;
}

} // namespace

MergeAttempt salssa::attemptMerge(Function &F1, Function &F2,
                                  const MergeCodeGenOptions &Options,
                                  TargetArch Arch, unsigned SizeF1,
                                  unsigned SizeF2, Module *StagingModule,
                                  const AttemptBudget *Budget,
                                  const FaultInjectionConfig *Faults,
                                  const AlignmentReplay *Replay,
                                  bool CaptureAlignment) {
  MergeAttempt Attempt;
  Attempt.F1 = &F1;
  Attempt.F2 = &F2;
  if (F1.getReturnType() != F2.getReturnType())
    return Attempt; // Stats.Outcome stays TypeMismatch

  // Fault point: a pair the aligner "blows up on". Thrown before any
  // work so no partial state exists; the caller's attempt guard converts
  // it into a skipped pair. Keyed by the pair's names — identical
  // decision on the speculative and the inline re-attempt path.
  if (Faults)
    maybeInjectFault(*Faults, FaultKind::AlignmentThrow, F1.getName(),
                     F2.getName());

  // Linearization + alignment (instrumented).
  auto T0 = std::chrono::steady_clock::now();
  std::vector<SeqItem> Seq1 = linearizeFunction(F1);
  std::vector<SeqItem> Seq2 = linearizeFunction(F2);
  Attempt.Stats.SeqLen1 = Seq1.size();
  Attempt.Stats.SeqLen2 = Seq2.size();

  // Budget gate, before the quadratic stage: the DP cell count and the
  // linear work bound are both known from the sequences alone. The
  // BudgetBlowout fault forces this reject path without any caps
  // configured.
  bool BudgetHit =
      Budget &&
      ((Budget->MaxAlignmentCells &&
        uint64_t(Seq1.size()) * uint64_t(Seq2.size()) >
            Budget->MaxAlignmentCells) ||
       (Budget->MaxAttemptSteps &&
        uint64_t(Seq1.size()) + uint64_t(Seq2.size()) >
            Budget->MaxAttemptSteps));
  if (!BudgetHit && Faults)
    BudgetHit = faultFires(*Faults, FaultKind::BudgetBlowout, F1.getName(),
                           F2.getName());
  if (BudgetHit) {
    Attempt.Stats.AlignmentSeconds = secondsSince(T0);
    Attempt.Stats.Outcome = AttemptOutcome::BudgetAlignment;
    return Attempt;
  }

  AlignmentResult Alignment;
  if (!(Replay && replayAlignment(*Replay, Seq1, Seq2, Alignment)))
    Alignment = alignSequences(Seq1, Seq2, itemsMatch, Options.Alignment);
  Attempt.Stats.AlignmentSeconds = secondsSince(T0);
  Attempt.Stats.MatchedPairs = Alignment.MatchedPairs;
  Attempt.Stats.AlignmentBytes = Alignment.DPBytes;
  if (CaptureAlignment) {
    Attempt.AlignEntries.reserve(Alignment.Entries.size());
    for (const AlignedEntry &E : Alignment.Entries)
      Attempt.AlignEntries.emplace_back(static_cast<int32_t>(E.Idx1),
                                        static_cast<int32_t>(E.Idx2));
  }

  // Code generation + clean-up (instrumented).
  auto T1 = std::chrono::steady_clock::now();
  Attempt.Gen = generateMergedFunction(F1, F2, Seq1, Seq2, Alignment,
                                       Options, F1.getName() + ".m",
                                       StagingModule);
  // Fault point: a "codegen bug" — the attempt itself succeeds, the body
  // is wrong. Only the always-on commit firewall stands between this and
  // the host module.
  if (Faults && faultFires(*Faults, FaultKind::CodeGenCorruption,
                           F1.getName(), F2.getName()))
    corruptMergedBody(*Attempt.Gen.Merged,
                      Attempt.Gen.Merged->getParent()->getContext());
  Attempt.Stats.CodeGenSeconds = secondsSince(T1);
  Attempt.Stats.SelectsInserted = Attempt.Gen.SelectsInserted;
  Attempt.Stats.LabelSelectionBlocks = Attempt.Gen.LabelSelectionBlocks;
  Attempt.Stats.XorFusions = Attempt.Gen.XorFusions;
  Attempt.Stats.RepairSlots = Attempt.Gen.RepairSlots;
  Attempt.Stats.CoalescedPairs = Attempt.Gen.CoalescedPairs;

  // Profitability: merged function + the two thunk bodies must undercut
  // the two original bodies.
  Attempt.Stats.SizeF1 = SizeF1;
  Attempt.Stats.SizeF2 = SizeF2;
  unsigned ThunkCost = 0;
  {
    // A thunk is a call + ret + argument shuffling, plus the function
    // overhead; estimate it from the signature without materializing it.
    unsigned PerThunk = (Arch == TargetArch::X86Like ? 12 : 8) /*overhead*/ +
                        (Arch == TargetArch::X86Like ? 5 : 4) /*call*/ +
                        (Arch == TargetArch::X86Like ? 1 : 2) /*ret*/;
    PerThunk += 2 * static_cast<unsigned>(
                        Attempt.Gen.Signature.FnTy->getParamTypes().size());
    ThunkCost = 2 * PerThunk;
  }
  Attempt.Stats.SizeMerged =
      estimateFunctionSize(*Attempt.Gen.Merged, Arch) + ThunkCost;

  // Budget gate, post-codegen: discard oversized bodies before the
  // profitability decision. The unique name was already burned (codegen
  // ran) — AttemptOutcome::BudgetBody records that for the shard
  // splicer's name replay.
  if (Budget && Budget->MaxMergedBodySize &&
      uint64_t(Attempt.Stats.SizeMerged) > Budget->MaxMergedBodySize) {
    Module *M = Attempt.Gen.Merged->getParent();
    M->eraseFunction(Attempt.Gen.Merged);
    Attempt.Gen.Merged = nullptr;
    Attempt.Stats.Outcome = AttemptOutcome::BudgetBody;
    return Attempt; // Valid stays false: no merged function exists
  }

  Attempt.Stats.Profitable = Attempt.profit() > 0;
  Attempt.Stats.Outcome = AttemptOutcome::Completed;
  Attempt.Valid = true;
  return Attempt;
}

namespace {

/// Builds one thunk body: F(args...) { return Merged(fid, mapped args); }
void buildThunkBody(Function &F, Function &Merged, bool IsF1,
                    const MergedSignature &Sig, Context &Ctx) {
  F.clearBody();
  BasicBlock *Entry = F.createBlock("entry");
  IRBuilder B(Ctx, Entry);

  const std::vector<Type *> &Params = Merged.getFunctionType()->getParamTypes();
  std::vector<Value *> Args(Params.size(), nullptr);
  Args[0] = IsF1 ? Ctx.getTrue() : Ctx.getFalse();
  const std::vector<unsigned> &Map = IsF1 ? Sig.ArgIndex1 : Sig.ArgIndex2;
  for (unsigned I = 0; I < Map.size(); ++I)
    Args[Map[I]] = F.getArg(I);
  for (unsigned S = 1; S < Args.size(); ++S)
    if (!Args[S])
      Args[S] = Ctx.getUndef(Params[S]);

  CallInst *Call = B.createCall(&Merged, Args);
  if (F.getReturnType()->isVoid())
    B.createRetVoid();
  else
    B.createRet(Call);
}

} // namespace

void salssa::adoptMergedFunction(MergeAttempt &Attempt, Module &Dst,
                                 const std::string &Name) {
  assert(Attempt.Valid && Attempt.Gen.Merged && "adopting an invalid attempt");
  Function *Merged = Attempt.Gen.Merged;
  Module *Src = Merged->getParent();
  if (Src == &Dst && Merged->getName() == Name)
    return;
  Attempt.Gen.Merged = Dst.adoptFunction(Src->takeFunction(Merged), Name);
}

void salssa::commitMerge(MergeAttempt &Attempt, Context &Ctx) {
  assert(Attempt.Valid && "committing an invalid attempt");
  // The merged function may live in a different module than the inputs
  // (cross-module commits thunk into the host module); it must only
  // have left any per-worker staging module by now (structural check
  // via Module::isStaging).
  assert(Attempt.Gen.Merged->getParent() != nullptr &&
         !Attempt.Gen.Merged->getParent()->isStaging() &&
         "staged attempt committed without adoptMergedFunction");
  buildThunkBody(*Attempt.F1, *Attempt.Gen.Merged, /*IsF1=*/true,
                 Attempt.Gen.Signature, Ctx);
  buildThunkBody(*Attempt.F2, *Attempt.Gen.Merged, /*IsF1=*/false,
                 Attempt.Gen.Signature, Ctx);
}

void salssa::discardMerge(MergeAttempt &Attempt) {
  if (!Attempt.Valid || !Attempt.Gen.Merged)
    return;
  Module *M = Attempt.Gen.Merged->getParent();
  M->eraseFunction(Attempt.Gen.Merged);
  Attempt.Gen.Merged = nullptr;
  Attempt.Valid = false;
}
